/**
 * @file
 * Lightweight statistics utilities: geometric mean helpers and the flat
 * counter bundle each simulation run produces.
 */

#ifndef BOP_COMMON_STATS_HH
#define BOP_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serializer.hh"

namespace bop
{

/** Geometric mean of a vector of strictly positive values. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/**
 * Counters gathered during one simulation run, from the point of view of
 * core 0 (the paper reports all numbers for core 0 only).
 */
struct RunStats
{
    // -- progress -------------------------------------------------------
    std::uint64_t cycles = 0;          ///< measured cycles
    std::uint64_t instructions = 0;    ///< instructions retired on core 0

    // -- DL1 ------------------------------------------------------------
    std::uint64_t dl1Accesses = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t dl1PrefIssued = 0;   ///< L1 stride prefetches issued
    std::uint64_t dl1PrefDropTlb = 0;  ///< dropped on TLB2 miss

    // -- L2 -------------------------------------------------------------
    std::uint64_t l2Accesses = 0;      ///< core-side read accesses
    std::uint64_t l2Misses = 0;
    std::uint64_t l2PrefetchedHits = 0;///< hits with prefetch bit set
    std::uint64_t l2PrefIssued = 0;    ///< L2 prefetch requests issued
    std::uint64_t l2PrefDropped = 0;   ///< cancelled / filtered
    std::uint64_t l2PrefFills = 0;     ///< prefetched lines filled into L2
    std::uint64_t l2LatePromotions = 0;///< demand hits on in-flight prefetch
    std::uint64_t l2PrefUselessEvicted = 0; ///< evicted, prefetch bit set

    // -- L3 -------------------------------------------------------------
    std::uint64_t l3Accesses = 0;
    std::uint64_t l3Misses = 0;
    /**
     * Cycles a sharded L3 demand shard was parked on channel-local
     * read-queue congestion while other channels kept draining
     * (chip-wide). Structurally zero on <= 2-channel topologies, where
     * the shared L3 fill queue saturates first.
     */
    std::uint64_t l3ChannelStalls = 0;

    // -- TLB -------------------------------------------------------------
    std::uint64_t dtlb1Misses = 0;
    std::uint64_t tlb2Misses = 0;

    // -- branches --------------------------------------------------------
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    // -- DRAM (whole chip, all cores) ------------------------------------
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;

    // -- BO-specific (when the BO prefetcher is active on core 0) --------
    std::uint64_t boLearningPhases = 0;
    std::uint64_t boPrefetchOffPhases = 0;
    int boFinalOffset = 0;
    int boFinalScore = 0;

    /** Field-wise equality (the fast-forward equivalence gate compares
     *  whole runs; every counter above participates). */
    bool operator==(const RunStats &) const = default;

    /** Checkpoint every counter, in declaration order. */
    void
    serialize(Serializer &s)
    {
        s.value(cycles);
        s.value(instructions);
        s.value(dl1Accesses);
        s.value(dl1Misses);
        s.value(dl1PrefIssued);
        s.value(dl1PrefDropTlb);
        s.value(l2Accesses);
        s.value(l2Misses);
        s.value(l2PrefetchedHits);
        s.value(l2PrefIssued);
        s.value(l2PrefDropped);
        s.value(l2PrefFills);
        s.value(l2LatePromotions);
        s.value(l2PrefUselessEvicted);
        s.value(l3Accesses);
        s.value(l3Misses);
        s.value(l3ChannelStalls);
        s.value(dtlb1Misses);
        s.value(tlb2Misses);
        s.value(branches);
        s.value(branchMispredicts);
        s.value(dramReads);
        s.value(dramWrites);
        s.value(dramRowHits);
        s.value(dramRowMisses);
        s.value(boLearningPhases);
        s.value(boPrefetchOffPhases);
        s.value(boFinalOffset);
        s.value(boFinalScore);
    }

    /** Instructions per cycle for the measured window. */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** DRAM accesses (read + write) per 1000 instructions (Fig. 13). */
    double
    dramPer1kInstr() const
    {
        if (!instructions)
            return 0.0;
        return 1000.0 *
               static_cast<double>(dramReads + dramWrites) /
               static_cast<double>(instructions);
    }

    /** L2 misses per 1000 instructions. */
    double
    l2Mpki() const
    {
        if (!instructions)
            return 0.0;
        return 1000.0 * static_cast<double>(l2Misses) /
               static_cast<double>(instructions);
    }

    // -- L2 prefetch quality metrics (Sec. 6 discussion) ------------------
    //
    // A prefetched line is *useful* if the core requested it: either it
    // was already in the cache with its prefetch bit set when the demand
    // arrived (timely: l2PrefetchedHits — the bit is cleared on first
    // use, so each line counts once), or the demand caught it still in
    // flight (late: l2LatePromotions). It is *useless* if it was evicted
    // with its prefetch bit still set. Demand misses that had to go all
    // the way to the L3/DRAM themselves are l2Misses minus the late
    // promotions hidden inside them.

    /** Useful prefetches: timely + late. */
    std::uint64_t
    l2PrefUseful() const
    {
        return l2PrefetchedHits + l2LatePromotions;
    }

    /**
     * Prefetch coverage: fraction of would-be demand misses served
     * (fully or partially) by a prefetch. The paper quotes next-line
     * coverage of ~75% on 433/470 and >90% on 459/462 (Sec. 6).
     */
    double
    prefetchCoverage() const
    {
        const std::uint64_t full_misses = l2Misses - l2LatePromotions;
        const std::uint64_t denom = l2PrefUseful() + full_misses;
        return denom ? static_cast<double>(l2PrefUseful()) /
                           static_cast<double>(denom)
                     : 0.0;
    }

    /** Fraction of prefetched fills that were ever used. */
    double
    prefetchAccuracy() const
    {
        const std::uint64_t denom = l2PrefUseful() + l2PrefUselessEvicted;
        return denom ? static_cast<double>(l2PrefUseful()) /
                           static_cast<double>(denom)
                     : 0.0;
    }

    /** Fraction of useful prefetches that were timely (not late). */
    double
    prefetchTimeliness() const
    {
        const std::uint64_t useful = l2PrefUseful();
        return useful ? static_cast<double>(l2PrefetchedHits) /
                            static_cast<double>(useful)
                      : 0.0;
    }
};

} // namespace bop

#endif // BOP_COMMON_STATS_HH
