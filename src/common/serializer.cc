#include "common/serializer.hh"

#include <array>
#include <cstring>

namespace bop
{

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

CheckpointError::CheckpointError(const std::string &what,
                                 std::uint64_t byte_offset)
    : std::runtime_error(what + " (byte offset " +
                         std::to_string(byte_offset) + ")"),
      offset(byte_offset)
{
}

void
Serializer::value(double &v)
{
    std::uint64_t bits;
    if (saving()) {
        static_assert(sizeof(double) == sizeof(std::uint64_t));
        std::memcpy(&bits, &v, sizeof bits);
        putBits(bits, sizeof bits);
    } else {
        bits = getBits(sizeof bits);
        std::memcpy(&v, &bits, sizeof v);
    }
}

void
Serializer::valueVec(std::vector<double> &v)
{
    sizePrefix(v);
    for (double &e : v)
        value(e);
}

void
Serializer::boolVec(std::vector<bool> &v)
{
    std::uint64_t n = v.size();
    value(n);
    if (loading()) {
        if (n > maxElements)
            fail("implausible element count " + std::to_string(n));
        v.assign(static_cast<std::size_t>(n), false);
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
        std::uint8_t b = v[i] ? 1 : 0;
        value(b);
        if (loading())
            v[i] = b != 0;
    }
}

void
Serializer::str(std::string &s)
{
    std::uint64_t n = s.size();
    value(n);
    if (loading()) {
        if (n > maxElements)
            fail("implausible string length " + std::to_string(n));
        need(static_cast<std::size_t>(n));
        s.assign(reinterpret_cast<const char *>(data + cursor),
                 static_cast<std::size_t>(n));
        cursor += static_cast<std::size_t>(n);
    } else {
        for (const char c : s)
            out->push_back(static_cast<std::uint8_t>(c));
    }
}

void
Serializer::fail(const std::string &what) const
{
    throw CheckpointError(what, offset());
}

void
Serializer::finish(const std::string &what) const
{
    if (loading() && cursor != size) {
        throw CheckpointError(
            what + ": " + std::to_string(size - cursor) +
                " trailing byte(s) after the last field",
            baseOffset + cursor);
    }
}

void
Serializer::putBits(std::uint64_t bits, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out->push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

std::uint64_t
Serializer::getBits(std::size_t n)
{
    need(n);
    std::uint64_t bits = 0;
    for (std::size_t i = 0; i < n; ++i)
        bits |= static_cast<std::uint64_t>(data[cursor + i]) << (8 * i);
    cursor += n;
    return bits;
}

void
Serializer::need(std::size_t n) const
{
    if (size - cursor < n) {
        throw CheckpointError(
            "truncated payload: need " + std::to_string(n) +
                " byte(s), have " + std::to_string(size - cursor),
            baseOffset + cursor);
    }
}

} // namespace bop
