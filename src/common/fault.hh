/**
 * @file
 * Deterministic fault injection and job-failure vocabulary.
 *
 * Robustness code is only trustworthy when every failure path has
 * been executed, and real faults (a decompressor killed mid-stream, a
 * disk filling up under a checkpoint save, one wedged simulation in a
 * 200-job batch) are too rare and too messy to provoke on demand. The
 * FaultPlan singleton gives every such path a named trigger point:
 * arming `BOP_FAULT=point:N` (comma-separated for several points)
 * makes that point fire deterministically — and exactly once — so the
 * chaos battery (tests/test_chaos.cc) can drive each containment path
 * on every run.
 *
 * Two trigger disciplines, chosen per point:
 *
 *  - counted points fire on the Nth *hit* of the point (1-based),
 *    e.g. `ckpt_write_short:1` fails the first checkpoint save,
 *    `trace_read_eio:3` injects a transient read error on the third
 *    decompressor read;
 *  - indexed points fire for the job whose farm/serve `job_index`
 *    equals N (0-based; the surrounding FaultScope supplies it), e.g.
 *    `job_throw:2` makes job 2's simulation throw, `job_wedge:1`
 *    makes job 1 stop making progress until its deadline converts it
 *    into an error record.
 *
 * The armed points and their trigger sites are catalogued in
 * docs/ROBUSTNESS.md. An unarmed FaultPlan costs one relaxed atomic
 * load per trigger point — cheap enough to leave the hooks in
 * production code unconditionally.
 */

#ifndef BOP_COMMON_FAULT_HH
#define BOP_COMMON_FAULT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

namespace bop
{

/**
 * A job exceeded its wall-clock deadline (BOP_JOB_TIMEOUT /
 * --job-timeout). Its own exception type so the harness layers can
 * classify the resulting error record as kind "timeout".
 */
class JobTimeout : public std::runtime_error
{
  public:
    explicit JobTimeout(const std::string &what_)
        : std::runtime_error(what_)
    {
    }
};

/**
 * A transient host-I/O failure (`trace_read_eio`-class: a flaky read
 * from a decompressor pipe, a recoverable EIO). Its own exception type
 * so the harness layers classify the error record as kind "io" — the
 * one kind the bounded-retry machinery (`--retries`, docs/ROBUSTNESS.md
 * decision table) is allowed to re-enqueue.
 */
class TransientIoError : public std::runtime_error
{
  public:
    explicit TransientIoError(const std::string &what_)
        : std::runtime_error(what_)
    {
    }
};

/**
 * Error-record classification of an exception: "timeout" for
 * JobTimeout, "checkpoint" for CheckpointError, "io" for
 * TransientIoError, "simulation" for everything else. The strings are
 * part of the error-record grammar (docs/ROBUSTNESS.md) and must stay
 * stable.
 */
std::string faultKindOf(const std::exception &e);

/**
 * True for error-record kinds that represent weather, not bugs — the
 * only kinds bounded retry may re-enqueue. Currently just "io":
 * timeouts and checkpoint/simulation failures are deterministic and
 * would fail identically on every attempt.
 */
bool transientFaultKind(const std::string &kind);

/** Deterministic fault-injection plan (see file comment). */
class FaultPlan
{
  public:
    /** The process-wide plan; arms itself from BOP_FAULT on first
     *  use (throws std::runtime_error on a malformed spec). */
    static FaultPlan &global();

    /**
     * Replace the plan with @p spec: "point:N[,point:N...]" or "" to
     * disarm everything. Counters and fired flags reset. Throws
     * std::runtime_error naming the offending token on a bad spec.
     */
    void arm(const std::string &spec);

    /** Disarm every point. */
    void clear() { arm(""); }

    /**
     * Re-arm the plan from the BOP_FAULT environment variable (or
     * disarm everything when it is unset), resetting every hit counter
     * and exactly-once fired flag. Fired flags otherwise reset only at
     * process start, which would force multi-scenario test binaries
     * into env-var re-exec gymnastics to fire the same point twice.
     */
    void resetForTest();

    /** True when @p point is armed (fired or not). */
    bool armed(const std::string &point) const;

    /**
     * Counted trigger: increments the hit counter of @p point and
     * returns true when it reaches the armed value (1-based), exactly
     * once. Unarmed points return false without counting.
     */
    bool fireCounted(const std::string &point);

    /**
     * Indexed trigger: returns true when @p point is armed with value
     * @p ordinal (e.g. a job_index), exactly once per arming.
     */
    bool fireAt(const std::string &point, std::uint64_t ordinal);

  private:
    FaultPlan() = default;

    struct Arm
    {
        std::uint64_t target = 0;
        std::uint64_t hits = 0;
        bool fired = false;
    };

    mutable std::mutex m;
    std::map<std::string, Arm> plan;
    /// Fast path: trigger points skip the lock entirely when nothing
    /// is armed, so the hooks are free in production runs.
    std::atomic<bool> anyArmed{false};
};

/**
 * RAII marker of the job a worker thread is currently simulating, so
 * fault points deep in the stack (ExperimentRunner::simulateRecord,
 * checkpoint/trace code) can target jobs by their deterministic
 * farm/serve job_index rather than by scheduling-dependent hit order.
 */
class FaultScope
{
  public:
    explicit FaultScope(long job_index);
    ~FaultScope();

    FaultScope(const FaultScope &) = delete;
    FaultScope &operator=(const FaultScope &) = delete;

    /** Job index of the enclosing scope on this thread (-1 outside). */
    static long currentJob();

  private:
    long prev;
};

} // namespace bop

#endif // BOP_COMMON_FAULT_HH
