/**
 * @file
 * Proportional counters (paper Sec. 5.2).
 *
 * A group of saturating counters where, whenever any counter reaches CMAX,
 * *all* counters in the group are halved simultaneously. This gives more
 * weight to recent events and lets ratio comparisons between counters
 * adapt to phase changes. The paper uses proportional counter groups in
 * three places: the 5P insertion-policy selector (five 12-bit counters),
 * the per-core L3 miss-rate estimator (four 12-bit counters), and the
 * memory-controller fairness scheduler (four 7-bit counters per channel).
 */

#ifndef BOP_COMMON_PROP_COUNTER_HH
#define BOP_COMMON_PROP_COUNTER_HH

#include <cstdint>
#include <vector>

#include "common/serializer.hh"

namespace bop
{

/** A group of proportional counters with simultaneous halving. */
class PropCounterGroup
{
  public:
    /**
     * @param num_counters number of counters in the group
     * @param bits counter width in bits; CMAX = 2^bits - 1
     */
    PropCounterGroup(std::size_t num_counters, unsigned bits)
        : counters(num_counters, 0),
          cmax((1u << bits) - 1)
    {
    }

    /**
     * Increment one counter; when it reaches CMAX all counters in the
     * group are halved at the same time.
     */
    void
    increment(std::size_t idx)
    {
        if (++counters[idx] >= cmax) {
            for (auto &c : counters)
                c >>= 1;
        }
    }

    /** Current value of a counter. */
    std::uint32_t
    value(std::size_t idx) const
    {
        return counters[idx];
    }

    /** Number of counters in the group. */
    std::size_t
    size() const
    {
        return counters.size();
    }

    /** Maximum value any counter currently holds. */
    std::uint32_t
    maxValue() const
    {
        std::uint32_t m = 0;
        for (auto c : counters)
            m = c > m ? c : m;
        return m;
    }

    /** Index of the counter with the smallest value (ties: lowest index). */
    std::size_t
    argMin() const
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < counters.size(); ++i) {
            if (counters[i] < counters[best])
                best = i;
        }
        return best;
    }

    /** The saturation threshold CMAX. */
    std::uint32_t
    max() const
    {
        return cmax;
    }

    /** Reset every counter to zero. */
    void
    reset()
    {
        for (auto &c : counters)
            c = 0;
    }

    /** Checkpoint the counter values (group size is configuration). */
    void
    serialize(Serializer &s)
    {
        const std::size_t n = counters.size();
        s.valueVec(counters);
        if (s.loading() && counters.size() != n)
            s.fail("PropCounterGroup size mismatch");
    }

  private:
    std::vector<std::uint32_t> counters;
    std::uint32_t cmax;
};

} // namespace bop

#endif // BOP_COMMON_PROP_COUNTER_HH
