/**
 * @file
 * Fundamental types and address arithmetic shared by every module.
 *
 * The whole simulator works on 64-byte cache lines. Addresses are byte
 * addresses unless a variable is explicitly named `line` (line address =
 * byte address >> 6). Page arithmetic is parameterised by the page size
 * because the paper evaluates both 4KB and 4MB pages.
 */

#ifndef BOP_COMMON_TYPES_HH
#define BOP_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace bop
{

/** Byte address (virtual or physical; context-dependent). */
using Addr = std::uint64_t;

/** Line address, i.e. byte address >> lineShift. */
using LineAddr = std::uint64_t;

/** Core clock cycle count. */
using Cycle = std::uint64_t;

/**
 * Sentinel for "no cycle" / "never": later than every representable
 * event time. Used by the event-horizon plumbing (a component with no
 * self-scheduled future work reports this from nextEventAt) and by the
 * min-readyAt gates on the queues.
 */
constexpr Cycle neverCycle = ~static_cast<Cycle>(0);

/**
 * Identifier of a core (0..numCores-1). The core count is a runtime
 * property of the simulated chip, carried in SystemConfig; every
 * structure that is per-core (DRAM queues, fairness counters, 5P miss
 * counters) is sized from the configuration at construction.
 */
using CoreId = int;

/** log2(cache line size): 64-byte lines throughout (Table 1). */
constexpr unsigned lineShift = 6;

/** Cache line size in bytes. */
constexpr std::uint64_t lineBytes = 1ull << lineShift;

/** Convert a byte address to a line address. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> lineShift;
}

/** Convert a line address back to the byte address of its first byte. */
constexpr Addr
lineToAddr(LineAddr line)
{
    return line << lineShift;
}

/**
 * Memory page size configuration. The paper evaluates 4KB pages and 4MB
 * superpages; prefetchers must not cross page boundaries, so the page
 * size directly bounds the useful offset range.
 */
enum class PageSize : std::uint64_t
{
    FourKB = 4ull * 1024,
    FourMB = 4ull * 1024 * 1024,
};

/** Number of bytes in a page. */
constexpr std::uint64_t
pageBytes(PageSize ps)
{
    return static_cast<std::uint64_t>(ps);
}

/** Number of cache lines in a page. */
constexpr std::uint64_t
pageLines(PageSize ps)
{
    return pageBytes(ps) >> lineShift;
}

/** True iff two line addresses fall in the same memory page. */
constexpr bool
samePage(LineAddr a, LineAddr b, PageSize ps)
{
    const std::uint64_t page_line_mask = ~(pageLines(ps) - 1);
    return (a & page_line_mask) == (b & page_line_mask);
}

} // namespace bop

#endif // BOP_COMMON_TYPES_HH
