/**
 * @file
 * Small deterministic pseudo-random number generator.
 *
 * Every stochastic decision in the simulator (BIP insertion, workload
 * generators, virtual-to-physical randomisation) draws from a seeded
 * Xoshiro-style generator so that runs are exactly reproducible.
 */

#ifndef BOP_COMMON_RNG_HH
#define BOP_COMMON_RNG_HH

#include <cstdint>

#include "common/serializer.hh"

namespace bop
{

/** splitmix64 step; also used standalone as a mixing/hash function. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * xorshift128+ generator. Fast, good enough statistical quality for
 * simulation purposes, and trivially seedable/deterministic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        reseed(seed);
    }

    /** Re-seed the generator deterministically. */
    void
    reseed(std::uint64_t seed)
    {
        s0 = splitmix64(seed);
        s1 = splitmix64(s0 ^ 0xdeadbeefcafef00dull);
        if (s0 == 0 && s1 == 0)
            s1 = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0;
        const std::uint64_t y = s1;
        s0 = y;
        x ^= x << 23;
        s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1 + y;
    }

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

    /** Checkpoint the generator state (draw order is load-bearing). */
    void
    serialize(Serializer &s)
    {
        s.value(s0);
        s.value(s1);
    }

  private:
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
};

/**
 * Rng with a small refill buffer. Draw-heavy consumers (the synthetic
 * trace generators draw several values per instruction) refill the
 * buffer in one tight loop — the xorshift recurrences of consecutive
 * draws pipeline instead of being interleaved with consumer branches —
 * and then hand values out from plain array reads.
 *
 * The draw *stream* is exactly Rng's for the same seed: the buffer is
 * filled in generation order and consumed in order, and below()/
 * range()/chance() use Rng's formulas verbatim on the buffered next().
 * Draw order is load-bearing for reproducibility (every golden run
 * stat pins it), so buffering may batch draws but never reorder them.
 */
class BufferedRng
{
  public:
    explicit BufferedRng(std::uint64_t seed = 0x5eed) : rng(seed) {}

    /** Re-seed deterministically; undrawn buffered values are dropped
     *  (the stream restarts exactly like a fresh Rng(seed)). */
    void
    reseed(std::uint64_t seed)
    {
        rng.reseed(seed);
        pos = bufferSize;
    }

    /** Next raw 64-bit value (same stream as Rng::next). */
    std::uint64_t
    next()
    {
        if (pos == bufferSize)
            refill();
        return buf[pos++];
    }

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

    /**
     * Checkpoint the generator state *including* the refill buffer
     * and its consumption position: a save can land mid-buffer, and
     * dropping the undrawn values would skip pos..15 of the stream —
     * the latent restore hazard pinned by the checkpoint tests.
     */
    void
    serialize(Serializer &s)
    {
        rng.serialize(s);
        for (unsigned i = 0; i < bufferSize; ++i)
            s.value(buf[i]);
        s.value(pos);
        if (s.loading() && pos > bufferSize)
            s.fail("BufferedRng position out of range");
    }

  private:
    static constexpr unsigned bufferSize = 16;

    void
    refill()
    {
        for (unsigned i = 0; i < bufferSize; ++i)
            buf[i] = rng.next();
        pos = 0;
    }

    Rng rng;
    std::uint64_t buf[bufferSize] = {};
    unsigned pos = bufferSize; ///< == bufferSize when empty
};

} // namespace bop

#endif // BOP_COMMON_RNG_HH
