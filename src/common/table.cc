#include "common/table.hh"

#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace bop
{

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::size_t
TextTable::dataRows() const
{
    return rows.empty() ? 0 : rows.size() - 1;
}

std::string
TextTable::fmt(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    if (rows.empty())
        return;

    if (std::getenv("BOP_CSV")) {
        printCsv(os);
        return;
    }

    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    print_row(rows[0]);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (std::size_t r = 1; r < rows.size(); ++r)
        print_row(rows[r]);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (const char ch : cell) {
            if (ch == '"')
                quoted += '"';
            quoted += ch;
        }
        quoted += '"';
        return quoted;
    };
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << quote(row[c]);
        }
        os << '\n';
    }
}

} // namespace bop
