/**
 * @file
 * State serialization visitor for checkpoint/restore.
 *
 * One Serializer instance walks a component's state in either
 * direction: in Save mode every visit appends little-endian bytes to
 * an output buffer, in Load mode the same visits read them back, so a
 * component writes exactly one `serialize(Serializer &)` method and
 * save/restore can never disagree about field order. Scalars are
 * fixed-width little-endian regardless of host; doubles travel as
 * their IEEE-754 bit pattern.
 *
 * Load mode is defensive: every read is bounds-checked, element
 * counts are sanity-capped, and failures throw CheckpointError
 * carrying the absolute byte offset of the bad data (the caller
 * passes the payload's base offset within the checkpoint file), so a
 * truncated or corrupted checkpoint is rejected with a diagnostic
 * that names the byte, never a crash or a silent partial restore.
 *
 * The container format around these payloads (magic, version,
 * topology fingerprint, section framing, CRCs) lives in
 * src/harness/checkpoint.cc and is specified normatively in
 * docs/CHECKPOINT_FORMAT.md.
 */

#ifndef BOP_COMMON_SERIALIZER_HH
#define BOP_COMMON_SERIALIZER_HH

#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace bop
{

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/**
 * Checkpoint decode failure. The byte offset is absolute within the
 * checkpoint file (or byte buffer) being restored and is baked into
 * what() so every rejection names the offending byte.
 */
class CheckpointError : public std::runtime_error
{
  public:
    CheckpointError(const std::string &what, std::uint64_t byte_offset);

    std::uint64_t byteOffset() const { return offset; }

  private:
    std::uint64_t offset;
};

/** Bidirectional state visitor (see file comment). */
class Serializer
{
  public:
    /** Largest element count a Load-mode container visit accepts.
     *  Far above any real component (the L3 has ~2^17 lines) but far
     *  below anything that could OOM from a corrupted length. */
    static constexpr std::uint64_t maxElements = 1ull << 26;

    /** Save mode: visits append to @p out_buf. */
    explicit Serializer(std::vector<std::uint8_t> &out_buf)
        : out(&out_buf)
    {
    }

    /**
     * Load mode: visits read from @p payload. @p base_offset is the
     * absolute offset of payload[0] within the checkpoint file, used
     * to report error positions.
     */
    Serializer(const std::uint8_t *payload, std::size_t payload_size,
               std::uint64_t base_offset)
        : data(payload), size(payload_size), baseOffset(base_offset)
    {
    }

    bool saving() const { return out != nullptr; }
    bool loading() const { return out == nullptr; }

    /** Absolute byte offset of the next visit. */
    std::uint64_t
    offset() const
    {
        return baseOffset + (saving() ? out->size() : cursor);
    }

    /** Fixed-width little-endian scalar (integral, bool or enum). */
    template <typename T>
    void
    value(T &v)
    {
        static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                      "value() visits integral/enum scalars");
        if (saving())
            putBits(toBits(v), sizeof(T));
        else
            v = fromBits<T>(getBits(sizeof(T)));
    }

    /** Double as its IEEE-754 bit pattern (8 bytes LE). */
    void value(double &v);

    /** Vector of scalars: u64 count, then the elements. */
    template <typename T>
    void
    valueVec(std::vector<T> &v)
    {
        sizePrefix(v);
        for (T &e : v)
            value(e);
    }

    void valueVec(std::vector<double> &v);

    /** std::vector<bool>: u64 count, then one byte per element. */
    void boolVec(std::vector<bool> &v);

    /** String: u64 length, then the bytes. */
    void str(std::string &s);

    /**
     * Container of objects: u64 count, then @p each(serializer, elem)
     * per element. Works for std::vector and std::deque; on load the
     * container is resized (elements default-constructed) first.
     */
    template <typename C, typename F>
    void
    seq(C &c, F &&each)
    {
        sizePrefix(c);
        for (auto &e : c)
            each(*this, e);
    }

    /** Throw CheckpointError at the current offset. */
    [[noreturn]] void fail(const std::string &what) const;

    /**
     * Load mode: require that the payload was consumed exactly —
     * trailing bytes mean the writer and reader disagree about the
     * @p what structure, which must never pass silently.
     */
    void finish(const std::string &what) const;

  private:
    template <typename T>
    static std::uint64_t
    toBits(T v)
    {
        if constexpr (std::is_enum_v<T>) {
            return toBits(
                static_cast<std::underlying_type_t<T>>(v));
        } else if constexpr (std::is_same_v<T, bool>) {
            return v ? 1 : 0;
        } else {
            return static_cast<std::uint64_t>(
                static_cast<std::make_unsigned_t<T>>(v));
        }
    }

    template <typename T>
    static T
    fromBits(std::uint64_t bits)
    {
        if constexpr (std::is_enum_v<T>) {
            return static_cast<T>(
                fromBits<std::underlying_type_t<T>>(bits));
        } else if constexpr (std::is_same_v<T, bool>) {
            return bits != 0;
        } else {
            return static_cast<T>(
                static_cast<std::make_unsigned_t<T>>(bits));
        }
    }

    /** Visit a container's size and, on load, validate + resize. */
    template <typename C>
    void
    sizePrefix(C &c)
    {
        std::uint64_t n = c.size();
        value(n);
        if (loading()) {
            if (n > maxElements)
                fail("implausible element count " + std::to_string(n));
            // resize (not clear+resize): when the count matches the
            // live container — every fixed-geometry table — existing
            // elements survive, preserving constructor-derived fields
            // the visitor deliberately skips.
            c.resize(static_cast<std::size_t>(n));
        }
    }

    void putBits(std::uint64_t bits, std::size_t n);
    std::uint64_t getBits(std::size_t n);
    void need(std::size_t n) const;

    std::vector<std::uint8_t> *out = nullptr; ///< Save mode
    const std::uint8_t *data = nullptr;       ///< Load mode
    std::size_t size = 0;
    std::size_t cursor = 0;
    std::uint64_t baseOffset = 0;
};

} // namespace bop

#endif // BOP_COMMON_SERIALIZER_HH
