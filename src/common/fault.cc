#include "fault.hh"

#include <cstdlib>
#include <typeinfo>

#include "serializer.hh"

namespace bop
{

namespace
{

thread_local long tlsCurrentJob = -1;

} // namespace

std::string
faultKindOf(const std::exception &e)
{
    if (dynamic_cast<const JobTimeout *>(&e))
        return "timeout";
    if (dynamic_cast<const CheckpointError *>(&e))
        return "checkpoint";
    if (dynamic_cast<const TransientIoError *>(&e))
        return "io";
    return "simulation";
}

bool
transientFaultKind(const std::string &kind)
{
    return kind == "io";
}

FaultPlan &
FaultPlan::global()
{
    static FaultPlan *plan = [] {
        auto *p = new FaultPlan();
        if (const char *env = std::getenv("BOP_FAULT"))
            p->arm(env);
        return p;
    }();
    return *plan;
}

void
FaultPlan::arm(const std::string &spec)
{
    std::map<std::string, Arm> parsed;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        std::size_t colon = token.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= token.size()) {
            throw std::runtime_error(
                "BOP_FAULT: malformed token '" + token +
                "' (expected point:N)");
        }
        std::string point = token.substr(0, colon);
        std::string value = token.substr(colon + 1);
        std::uint64_t target = 0;
        for (char c : value) {
            if (c < '0' || c > '9') {
                throw std::runtime_error(
                    "BOP_FAULT: non-numeric ordinal in '" + token + "'");
            }
            target = target * 10 + static_cast<std::uint64_t>(c - '0');
        }
        parsed[point] = Arm{target, 0, false};
    }

    std::lock_guard<std::mutex> lk(m);
    plan = std::move(parsed);
    anyArmed.store(!plan.empty(), std::memory_order_release);
}

void
FaultPlan::resetForTest()
{
    const char *env = std::getenv("BOP_FAULT");
    arm(env != nullptr ? env : "");
}

bool
FaultPlan::armed(const std::string &point) const
{
    if (!anyArmed.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lk(m);
    return plan.count(point) != 0;
}

bool
FaultPlan::fireCounted(const std::string &point)
{
    if (!anyArmed.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lk(m);
    auto it = plan.find(point);
    if (it == plan.end() || it->second.fired)
        return false;
    if (++it->second.hits < it->second.target)
        return false;
    it->second.fired = true;
    return true;
}

bool
FaultPlan::fireAt(const std::string &point, std::uint64_t ordinal)
{
    if (!anyArmed.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lk(m);
    auto it = plan.find(point);
    if (it == plan.end() || it->second.fired ||
        it->second.target != ordinal) {
        return false;
    }
    it->second.fired = true;
    return true;
}

FaultScope::FaultScope(long job_index) : prev(tlsCurrentJob)
{
    tlsCurrentJob = job_index;
}

FaultScope::~FaultScope() { tlsCurrentJob = prev; }

long
FaultScope::currentJob()
{
    return tlsCurrentJob;
}

} // namespace bop
