/**
 * @file
 * Minimal fixed-width text table printer used by the benchmark harness to
 * render paper figures/tables as aligned console output.
 */

#ifndef BOP_COMMON_TABLE_HH
#define BOP_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace bop
{

/**
 * Accumulates rows of cells and prints them with per-column alignment.
 * The first row added is treated as the header and is underlined.
 */
class TextTable
{
  public:
    /** Append a row of cells. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: build a row from heterogeneous printable parts. */
    template <typename... Ts>
    void
    row(const Ts &...parts)
    {
        addRow(std::vector<std::string>{toCell(parts)...});
    }

    /**
     * Render the table to a stream: aligned text normally, or CSV when
     * the BOP_CSV environment variable is set (so every bench binary's
     * output becomes machine-readable for plotting without touching
     * the benches themselves).
     */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180 quoting for cells that need it). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows (excluding the header). */
    std::size_t dataRows() const;

    /** Format a double with fixed precision (helper for callers). */
    static std::string fmt(double v, int precision = 3);

  private:
    static std::string toCell(const std::string &s) { return s; }
    static std::string toCell(const char *s) { return s; }
    static std::string toCell(double v) { return fmt(v); }
    static std::string toCell(int v) { return std::to_string(v); }
    static std::string toCell(unsigned v) { return std::to_string(v); }
    static std::string toCell(long v) { return std::to_string(v); }
    static std::string toCell(unsigned long v) { return std::to_string(v); }
    static std::string toCell(long long v) { return std::to_string(v); }
    static std::string
    toCell(unsigned long long v)
    {
        return std::to_string(v);
    }

    std::vector<std::vector<std::string>> rows;
};

} // namespace bop

#endif // BOP_COMMON_TABLE_HH
