#include "dram/mem_controller.hh"

#include <algorithm>
#include <cassert>

namespace bop
{

MemoryController::MemoryController(const DramTiming &timing_,
                                   int channel_id, int num_cores)
    : timing(timing_), channelId(channel_id),
      readQueues(static_cast<std::size_t>(num_cores)),
      writeQueues(static_cast<std::size_t>(num_cores)),
      fairness(static_cast<std::size_t>(num_cores), 7)
{
    assert(num_cores >= 1);
}

bool
MemoryController::readQueueFull(CoreId core) const
{
    return readQueues[static_cast<std::size_t>(core)].size() >=
           queueCapacity;
}

bool
MemoryController::writeQueueFull(CoreId core) const
{
    return writeQueues[static_cast<std::size_t>(core)].size() >=
           queueCapacity;
}

bool
MemoryController::readQueueContains(LineAddr line) const
{
    if (pendingReadCount == 0)
        return false;
    for (const auto &q : readQueues) {
        for (const auto &r : q) {
            if (r.line == line)
                return true;
        }
    }
    return false;
}

void
MemoryController::enqueueRead(LineAddr line, const ReqMeta &meta, Cycle now)
{
    assert(!readQueueFull(meta.core));
    // The uncore routed this request here, so this controller's id is
    // the authoritative channel (mapToDram's default fold would record
    // a stale value on >2-channel chips).
    DramCoord coord = mapToDram(lineToAddr(line));
    coord.channel = channelId;
    readQueues[static_cast<std::size_t>(meta.core)].push_back(
        {line, meta, now, coord});
    ++pendingReadCount;
}

void
MemoryController::enqueueWrite(LineAddr line, CoreId core, Cycle now)
{
    assert(!writeQueueFull(core));
    DramCoord coord = mapToDram(lineToAddr(line));
    coord.channel = channelId;
    writeQueues[static_cast<std::size_t>(core)].push_back(
        {line, core, now, coord});
    ++pendingWriteCount;
}

std::size_t
MemoryController::readQueueSize(CoreId core) const
{
    return readQueues[static_cast<std::size_t>(core)].size();
}

std::size_t
MemoryController::writeQueueSize(CoreId core) const
{
    return writeQueues[static_cast<std::size_t>(core)].size();
}

bool
MemoryController::anyPending() const
{
    if (pendingReadCount > 0 || pendingWriteCount > 0)
        return true;
    return !completedReads.empty();
}

CoreId
MemoryController::laggingCore() const
{
    CoreId best = -1;
    for (CoreId c = 0; c < coreCount(); ++c) {
        if (readQueues[static_cast<std::size_t>(c)].empty())
            continue;
        if (best < 0 ||
            fairness.value(static_cast<std::size_t>(c)) <
                fairness.value(static_cast<std::size_t>(best))) {
            best = c;
        }
    }
    return best;
}

bool
MemoryController::servedHasRowHit() const
{
    for (const auto &r : readQueues[static_cast<std::size_t>(served)]) {
        if (timing.isRowHit(r.coord))
            return true;
    }
    return false;
}

bool
MemoryController::issueReadFrom(CoreId core, BusCycle bc)
{
    auto &q = readQueues[static_cast<std::size_t>(core)];
    if (q.empty())
        return false;

    // FR-FCFS: oldest row-hit first, else oldest request.
    auto pick = q.end();
    for (auto it = q.begin(); it != q.end(); ++it) {
        if (timing.isRowHit(it->coord)) {
            pick = it;
            break;
        }
    }
    if (pick == q.end())
        pick = q.begin();

    const DramAccessTiming t = timing.apply(pick->coord, false, bc);
    ++chanStats.reads;
    if (t.rowResult == RowResult::Hit)
        ++chanStats.rowHits;
    else
        ++chanStats.rowMisses;

    CompletedRead done;
    done.line = pick->line;
    done.meta = pick->meta;
    done.finishCycle = t.dataEnd * timing.params().busRatio;
    minFinishAt = std::min(minFinishAt, done.finishCycle);
    completedReads.push_back(done);

    fairness.increment(static_cast<std::size_t>(core));
    q.erase(pick);
    --pendingReadCount;
    return true;
}

bool
MemoryController::issueWrite(BusCycle bc)
{
    // Out-of-order write selection: any row-hit write first, preferring
    // the fullest queue; otherwise the oldest write of the fullest queue.
    CoreId best_core = -1;
    std::deque<WriteReq>::iterator best_it;
    bool best_is_hit = false;
    std::size_t best_len = 0;

    for (CoreId c = 0; c < coreCount(); ++c) {
        auto &q = writeQueues[static_cast<std::size_t>(c)];
        if (q.empty())
            continue;
        for (auto it = q.begin(); it != q.end(); ++it) {
            const bool hit = timing.isRowHit(it->coord);
            if (best_core < 0 || (hit && !best_is_hit) ||
                (hit == best_is_hit && q.size() > best_len)) {
                best_core = c;
                best_it = it;
                best_is_hit = hit;
                best_len = q.size();
            }
            if (hit)
                break; // oldest row hit in this queue is enough
        }
    }
    if (best_core < 0)
        return false;

    const DramAccessTiming t = timing.apply(best_it->coord, true, bc);
    ++chanStats.writes;
    if (t.rowResult == RowResult::Hit)
        ++chanStats.rowHits;
    else
        ++chanStats.rowMisses;
    writeQueues[static_cast<std::size_t>(best_core)].erase(best_it);
    --pendingWriteCount;
    return true;
}

bool
MemoryController::scheduleStep(BusCycle bc)
{
    // Enter write-drain mode when a write queue fills up.
    if (writeDrainRemaining == 0) {
        for (CoreId c = 0; c < coreCount(); ++c) {
            if (writeQueueFull(c)) {
                writeDrainRemaining = writeBatchSize;
                ++chanStats.writeBatches;
                break;
            }
        }
    }

    if (writeDrainRemaining > 0) {
        if (issueWrite(bc)) {
            --writeDrainRemaining;
            return true;
        }
        writeDrainRemaining = 0; // queues drained early
    }

    const CoreId lagging = laggingCore();
    if (lagging < 0) {
        // No reads pending: opportunistically drain a write so idle
        // phases do not strand dirty data and stall L3 evictions.
        return issueWrite(bc);
    }

    // Urgent mode preempts steady mode (Sec. 5.3).
    if (!l3FillFull && lagging != served &&
        fairness.value(static_cast<std::size_t>(served)) >
            fairness.value(static_cast<std::size_t>(lagging)) +
                urgentThreshold) {
        ++chanStats.urgentIssues;
        return issueReadFrom(lagging, bc);
    }

    // Steady mode: re-pick the served core only when it has no pending
    // row-buffer-hitting read (Sec. 5.3); the proportional counters
    // then pick the least-served core.
    if (readQueues[static_cast<std::size_t>(served)].empty() ||
        !servedHasRowHit())
        served = lagging;
    return issueReadFrom(served, bc);
}

void
MemoryController::tick(Cycle now)
{
    const unsigned ratio = timing.params().busRatio;
    if (now == lastTicked + 1) {
        if (++busPhase >= ratio) {
            busPhase = 0;
            ++busCycleNum;
        }
    } else {
        busPhase = static_cast<unsigned>(now % ratio);
        busCycleNum = now / ratio;
    }
    lastTicked = now;
    if (busPhase != 0)
        return;
    const BusCycle bc = busCycleNum;

    // Idle gate: with nothing queued and no drain batch open,
    // scheduleStep cannot issue or change state — skip it.
    if (pendingReadCount == 0 && pendingWriteCount == 0 &&
        writeDrainRemaining == 0) {
        return;
    }

    // Issue at most one request per bus cycle, and never run the
    // command stream more than a couple of bursts ahead of the data
    // bus: a real controller's scheduling window stays adaptive, and
    // locking decisions arbitrarily far into the future would defeat
    // FR-FCFS and the fairness counters.
    if (timing.busFreeAt() <= bc + 2 * timing.params().tBURST)
        scheduleStep(bc);
}

Cycle
MemoryController::nextEventAt(Cycle now) const
{
    const Cycle next = now + 1;
    Cycle ev = neverCycle;

    // Finished reads are handed back when the hierarchy polls at
    // finishCycle (drainDramCompletions runs every simulated step).
    if (minFinishAt != neverCycle)
        ev = std::max(next, minFinishAt);

    // Scheduling decisions happen on bus edges while work is pending —
    // but tick() also refuses to run the command stream more than
    // 2*tBURST ahead of the data bus, so while that throttle holds the
    // next actionable edge is the one where the window reopens.
    if (pendingReadCount > 0 || pendingWriteCount > 0 ||
        writeDrainRemaining > 0) {
        const unsigned ratio = timing.params().busRatio;
        const BusCycle window = 2 * timing.params().tBURST;
        BusCycle bc = now / ratio + 1; // first edge strictly after now
        if (timing.busFreeAt() > window)
            bc = std::max(bc, timing.busFreeAt() - window);
        ev = std::min(ev, bc * ratio);
    }
    return ev;
}

std::vector<CompletedRead>
MemoryController::popCompleted(Cycle now)
{
    std::vector<CompletedRead> out;
    if (minFinishAt > now)
        return out;
    minFinishAt = neverCycle;
    auto it = completedReads.begin();
    while (it != completedReads.end()) {
        if (it->finishCycle <= now) {
            out.push_back(*it);
            it = completedReads.erase(it);
        } else {
            minFinishAt = std::min(minFinishAt, it->finishCycle);
            ++it;
        }
    }
    return out;
}

} // namespace bop
