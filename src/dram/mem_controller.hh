/**
 * @file
 * Per-channel memory controller (paper Sec. 5.3).
 *
 * Each channel has its own controller working independently. For
 * fairness, every core owns a 32-entry read queue and a 32-entry write
 * queue in each controller. Scheduling:
 *
 *  - steady mode: a "served core" is selected through four 7-bit
 *    proportional counters (one per core, incremented when a read from
 *    that core issues). The served core changes only when a write queue
 *    fills up or when the served core has no pending read hitting an
 *    open row buffer. Reads use FR-FCFS; rows are left open. Writes
 *    drain in batches of 16, selected out-of-order for row locality
 *    and bank parallelism.
 *  - urgent mode (preempts steady): the lagging core is the one with
 *    the smallest counter among non-empty read queues; if the L3 fill
 *    queue is not full and served-minus-lagging counter difference
 *    exceeds 31, a lagging-core read issues instead.
 *
 * Demand and prefetch reads are treated identically. The read queues
 * are associatively searched before insertion (redundant prefetch
 * removal, Sec. 6.3 footnote).
 */

#ifndef BOP_DRAM_MEM_CONTROLLER_HH
#define BOP_DRAM_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cache/req.hh"
#include "common/prop_counter.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/dram_timing.hh"

namespace bop
{

/** Aggregate DRAM statistics for one channel. */
struct DramChannelStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t urgentIssues = 0;
    std::uint64_t writeBatches = 0;
};

/** A finished read travelling back up the hierarchy. */
struct CompletedRead
{
    LineAddr line = 0;
    ReqMeta meta;
    Cycle finishCycle = 0; ///< core cycle the data is available at the L3
};

/** One memory channel's controller + timing state. */
class MemoryController
{
  public:
    /** Queue capacity per core per direction (Table 1). */
    static constexpr std::size_t queueCapacity = 32;
    /** Write-drain batch size (Sec. 5.3). */
    static constexpr int writeBatchSize = 16;
    /** Urgent-mode counter-difference threshold (Sec. 5.3). */
    static constexpr std::uint32_t urgentThreshold = 31;

    /**
     * @param timing     DDR3 timing parameters
     * @param channel_id this channel's index
     * @param num_cores  cores sharing the channel: one read queue, one
     *                   write queue and one fairness counter each
     *                   (deliberately no default — the queues index by
     *                   CoreId unchecked, so the topology must be
     *                   stated explicitly)
     */
    MemoryController(const DramTiming &timing, int channel_id,
                     int num_cores);

    // -- enqueue side -----------------------------------------------------
    bool readQueueFull(CoreId core) const;
    bool writeQueueFull(CoreId core) const;
    /** Associative search of all read queues (prefetch dedup). */
    bool readQueueContains(LineAddr line) const;
    void enqueueRead(LineAddr line, const ReqMeta &meta, Cycle now);
    void enqueueWrite(LineAddr line, CoreId core, Cycle now);

    /** Urgent mode needs to know whether the L3 fill queue has room. */
    void setL3FillQueueFull(bool full) { l3FillFull = full; }

    // -- scheduling --------------------------------------------------------
    /** Advance to @p now (core cycles); schedules on bus-cycle edges. */
    void tick(Cycle now);

    /**
     * Earliest core cycle > @p now at which this controller can act:
     * the next bus edge inside the scheduling look-ahead window while
     * any request is queued (or a write-drain batch is open), or the
     * completion time of a finished read awaiting pickup. neverCycle
     * when fully idle. Contract (event-horizon fast-forward): ticking
     * at any cycle strictly between @p now and the returned horizon
     * would neither issue a request nor complete one.
     */
    Cycle nextEventAt(Cycle now) const;

    /** Drain reads whose data is available by @p now. */
    std::vector<CompletedRead> popCompleted(Cycle now);

    /**
     * Cheap per-tick gate for the completion drain: most cycles finish
     * no read, and the caller should not pay a vector round trip to
     * learn that.
     */
    bool hasCompletedReads() const { return !completedReads.empty(); }

    /**
     * Earliest finishCycle among completed-but-unclaimed reads
     * (neverCycle when none). Scheduled reads sit here until their
     * data-bus burst ends, so this gates the per-tick drain — and it
     * is the completion half of nextEventAt().
     */
    Cycle nextCompletionAt() const { return minFinishAt; }

    // -- observability -----------------------------------------------------
    const DramChannelStats &stats() const { return chanStats; }
    CoreId servedCore() const { return served; }
    int coreCount() const { return static_cast<int>(readQueues.size()); }
    std::size_t readQueueSize(CoreId core) const;
    std::size_t writeQueueSize(CoreId core) const;
    bool anyPending() const;

    /**
     * Checkpoint queues, fairness counters, scheduling mode, bank/bus
     * timing and completed-but-unclaimed reads. The incrementally
     * maintained counts and bus-edge bookkeeping are serialized (not
     * rebuilt) so the restored controller is field-identical.
     */
    void
    serialize(Serializer &s)
    {
        const std::size_t cores = readQueues.size();
        timing.serialize(s);
        for (auto &q : readQueues) {
            s.seq(q, [](Serializer &sr, ReadReq &r) {
                sr.value(r.line);
                r.meta.serialize(sr);
                sr.value(r.enqueued);
                sr.value(r.coord.channel);
                sr.value(r.coord.bank);
                sr.value(r.coord.rowOffset);
                sr.value(r.coord.row);
            });
            if (s.loading() && q.size() > queueCapacity)
                s.fail("DRAM read queue over capacity");
        }
        for (auto &q : writeQueues) {
            s.seq(q, [](Serializer &sr, WriteReq &w) {
                sr.value(w.line);
                sr.value(w.core);
                sr.value(w.enqueued);
                sr.value(w.coord.channel);
                sr.value(w.coord.bank);
                sr.value(w.coord.rowOffset);
                sr.value(w.coord.row);
            });
            if (s.loading() && q.size() > queueCapacity)
                s.fail("DRAM write queue over capacity");
        }
        fairness.serialize(s);
        std::uint64_t reads64 = pendingReadCount;
        std::uint64_t writes64 = pendingWriteCount;
        s.value(reads64);
        s.value(writes64);
        s.value(served);
        s.value(writeDrainRemaining);
        s.value(l3FillFull);
        s.value(lastTicked);
        s.value(busPhase);
        s.value(busCycleNum);
        s.seq(completedReads, [](Serializer &sr, CompletedRead &c) {
            sr.value(c.line);
            c.meta.serialize(sr);
            sr.value(c.finishCycle);
        });
        s.value(minFinishAt);
        s.value(chanStats.reads);
        s.value(chanStats.writes);
        s.value(chanStats.rowHits);
        s.value(chanStats.rowMisses);
        s.value(chanStats.urgentIssues);
        s.value(chanStats.writeBatches);
        if (s.loading()) {
            if (readQueues.size() != cores || writeQueues.size() != cores)
                s.fail("DRAM controller core count mismatch");
            if (reads64 > cores * queueCapacity ||
                writes64 > cores * queueCapacity)
                s.fail("DRAM pending counts out of range");
            pendingReadCount = static_cast<std::size_t>(reads64);
            pendingWriteCount = static_cast<std::size_t>(writes64);
            if (served < 0 || static_cast<std::size_t>(served) >= cores)
                s.fail("DRAM served core out of range");
        }
    }

  private:
    struct ReadReq
    {
        LineAddr line;
        ReqMeta meta;
        Cycle enqueued;
        DramCoord coord;
    };
    struct WriteReq
    {
        LineAddr line;
        CoreId core;
        Cycle enqueued;
        DramCoord coord;
    };

    /** One scheduling decision at bus cycle @p bc. Returns true if a
     *  request issued. */
    bool scheduleStep(BusCycle bc);
    bool issueWrite(BusCycle bc);
    bool issueReadFrom(CoreId core, BusCycle bc);
    /** Core with smallest counter among non-empty read queues; -1. */
    CoreId laggingCore() const;
    bool servedHasRowHit() const;

    DramChannelTiming timing;
    int channelId;
    std::vector<std::deque<ReadReq>> readQueues;
    std::vector<std::deque<WriteReq>> writeQueues;
    PropCounterGroup fairness;
    std::size_t pendingReadCount = 0;  ///< over all read queues (CAM gate)
    std::size_t pendingWriteCount = 0; ///< over all write queues
    CoreId served = 0;
    int writeDrainRemaining = 0;
    bool l3FillFull = false;
    Cycle lastTicked = 0;
    /**
     * Bus-edge bookkeeping: tick() runs every core cycle and the
     * core/bus ratio is a runtime value, so deriving the bus cycle with
     * divisions every call is measurable. The counters advance
     * incrementally while calls stay contiguous (the simulator's case)
     * and fall back to the exact divide on any gap.
     */
    unsigned busPhase = 0;
    BusCycle busCycleNum = 0;
    std::vector<CompletedRead> completedReads;
    Cycle minFinishAt = neverCycle; ///< min finishCycle in completedReads
    DramChannelStats chanStats;
};

} // namespace bop

#endif // BOP_DRAM_MEM_CONTROLLER_HH
