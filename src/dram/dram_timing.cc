#include "dram/dram_timing.hh"

#include <algorithm>

namespace bop
{

DramChannelTiming::DramChannelTiming(const DramTiming &timing_)
    : timing(timing_)
{
}

bool
DramChannelTiming::isRowHit(const DramCoord &c) const
{
    const BankState &b = banks[c.bank];
    return b.rowOpen && b.row == c.row;
}

bool
DramChannelTiming::openRowOf(int bank, std::uint64_t &row_out) const
{
    if (!banks[bank].rowOpen)
        return false;
    row_out = banks[bank].row;
    return true;
}

DramAccessTiming
DramChannelTiming::preview(const DramCoord &c, bool is_write,
                           BusCycle now) const
{
    const BankState &b = banks[c.bank];
    DramAccessTiming t;

    BusCycle cas_at = 0;
    if (b.rowOpen && b.row == c.row) {
        t.rowResult = RowResult::Hit;
        cas_at = std::max(now, b.readyAt);
        t.issueAt = cas_at;
    } else if (!b.rowOpen) {
        t.rowResult = RowResult::Closed;
        const BusCycle act_at = std::max(now, b.readyAt);
        cas_at = act_at + timing.tRCD;
        t.issueAt = act_at;
    } else {
        t.rowResult = RowResult::Conflict;
        // Precharge must respect tRAS since activate, tRTP since the
        // last read CAS and tWR since the last write's data end.
        BusCycle pre_at = std::max(now, b.readyAt);
        pre_at = std::max(pre_at, b.lastActAt + timing.tRAS);
        pre_at = std::max(pre_at, b.lastReadCasAt + timing.tRTP);
        pre_at = std::max(pre_at, b.lastWriteDataEnd + timing.tWR);
        const BusCycle act_at = pre_at + timing.tRP;
        cas_at = act_at + timing.tRCD;
        t.issueAt = pre_at;
    }

    // Write-to-read turnaround on the channel.
    if (!is_write && lastWriteBurstEnd > 0)
        cas_at = std::max(cas_at, lastWriteBurstEnd + timing.tWTR);

    const unsigned cas_lat = is_write ? timing.tCWL : timing.tCL;
    BusCycle data_start = cas_at + cas_lat;
    data_start = std::max(data_start, dataBusFreeAt);
    t.dataStart = data_start;
    t.dataEnd = data_start + timing.tBURST;
    return t;
}

DramAccessTiming
DramChannelTiming::apply(const DramCoord &c, bool is_write, BusCycle now)
{
    const DramAccessTiming t = preview(c, is_write, now);
    BankState &b = banks[c.bank];

    if (t.rowResult != RowResult::Hit) {
        b.lastActAt = (t.rowResult == RowResult::Closed)
                          ? t.issueAt
                          : t.issueAt + timing.tRP;
    }
    b.rowOpen = true;
    b.row = c.row;

    // The CAS time is the data start minus the CAS latency (the data
    // start may have been pushed by the shared bus).
    const unsigned cas_lat = is_write ? timing.tCWL : timing.tCL;
    const BusCycle cas_at = t.dataStart - cas_lat;
    b.readyAt = cas_at + timing.tBURST;
    if (is_write) {
        b.lastWriteDataEnd = t.dataEnd;
        lastWriteBurstEnd = t.dataEnd;
    } else {
        b.lastReadCasAt = cas_at;
    }

    dataBusFreeAt = t.dataEnd;
    return t;
}

} // namespace bop
