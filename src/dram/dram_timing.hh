/**
 * @file
 * DDR3 bank timing model (paper Table 1).
 *
 * All parameters are in *bus cycles*; one bus cycle equals four core
 * cycles. The model tracks, per bank, the open row and the earliest
 * times the next precharge/activate/CAS may issue, honouring tRCD, tRP,
 * tRAS, tCL, tCWL, tRTP, tWR, tWTR and tBURST, plus a shared data bus
 * per channel. Refresh and power constraints (tFAW) are not modeled,
 * as in the paper (Sec. 5.3).
 */

#ifndef BOP_DRAM_DRAM_TIMING_HH
#define BOP_DRAM_DRAM_TIMING_HH

#include <cstdint>

#include "common/serializer.hh"
#include "common/types.hh"
#include "dram/address_map.hh"

namespace bop
{

/** Bus-cycle count. */
using BusCycle = std::uint64_t;

/** DDR3 timing parameters in bus cycles (defaults: paper Table 1). */
struct DramTiming
{
    unsigned tCL = 11;    ///< CAS (read) latency
    unsigned tRCD = 11;   ///< activate to CAS
    unsigned tRP = 11;    ///< precharge latency
    unsigned tRAS = 33;   ///< activate to precharge
    unsigned tCWL = 8;    ///< CAS write latency
    unsigned tRTP = 6;    ///< read to precharge
    unsigned tWR = 12;    ///< write recovery (data end to precharge)
    unsigned tWTR = 6;    ///< write-to-read turnaround
    unsigned tBURST = 4;  ///< data burst (8 beats on a 64-bit bus)
    unsigned busRatio = 4;///< core cycles per bus cycle
};

/** Outcome classification of a DRAM access (row-buffer behaviour). */
enum class RowResult
{
    Hit,      ///< open row matched: CAS only
    Closed,   ///< bank idle: ACT + CAS
    Conflict, ///< other row open: PRE + ACT + CAS
};

/** What the timing model computed for one scheduled access. */
struct DramAccessTiming
{
    RowResult rowResult = RowResult::Closed;
    BusCycle issueAt = 0;    ///< first command (PRE/ACT/CAS) bus cycle
    BusCycle dataStart = 0;  ///< data burst start on the bus
    BusCycle dataEnd = 0;    ///< data burst end (completion for reads)
};

/**
 * Timing state of one DRAM channel: per-bank row/command state plus the
 * shared data bus. The scheduler asks "when would this access finish?"
 * via preview() and commits its choice via apply().
 */
class DramChannelTiming
{
  public:
    explicit DramChannelTiming(const DramTiming &timing);

    /** Compute the timing an access would have if scheduled at @p now. */
    DramAccessTiming preview(const DramCoord &c, bool is_write,
                             BusCycle now) const;

    /** Commit an access (updates bank and bus state). */
    DramAccessTiming apply(const DramCoord &c, bool is_write, BusCycle now);

    /** Would the access at @p now be a row-buffer hit? */
    bool isRowHit(const DramCoord &c) const;

    /** First bus cycle the shared data bus is free again. */
    BusCycle busFreeAt() const { return dataBusFreeAt; }

    /** The open row in a bank (tests). Returns false if bank closed. */
    bool openRowOf(int bank, std::uint64_t &row_out) const;

    const DramTiming &params() const { return timing; }

    /** Checkpoint all bank states and the shared data-bus state. */
    void
    serialize(Serializer &s)
    {
        for (auto &b : banks) {
            s.value(b.rowOpen);
            s.value(b.row);
            s.value(b.lastActAt);
            s.value(b.readyAt);
            s.value(b.lastReadCasAt);
            s.value(b.lastWriteDataEnd);
        }
        s.value(dataBusFreeAt);
        s.value(lastWriteBurstEnd);
    }

  private:
    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t row = 0;
        BusCycle lastActAt = 0;        ///< last activate time
        BusCycle readyAt = 0;          ///< earliest next command
        BusCycle lastReadCasAt = 0;    ///< for tRTP
        BusCycle lastWriteDataEnd = 0; ///< for tWR
    };

    DramTiming timing;
    BankState banks[numBanks];
    BusCycle dataBusFreeAt = 0;
    BusCycle lastWriteBurstEnd = 0;    ///< channel-level tWTR reference
};

} // namespace bop

#endif // BOP_DRAM_DRAM_TIMING_HH
