/**
 * @file
 * Physical-address-to-DRAM mapping (paper Sec. 5.3).
 *
 * With a32..a6 the line-address bits of a byte address (a5..a0 the line
 * offset), the paper maps, for its 2-channel configuration:
 *
 *   Channel (1 bit) : a11 ^ a10 ^ a9 ^ a8
 *   Bank    (3 bits): (a16^a13, a15^a12, a14^a11)
 *   Row off (7 bits): (a13,a12,a11,a10,a9,a7,a6)
 *   Row             : (a32, ..., a17)
 *
 * The XOR folding spreads sequential streams over both channels and all
 * eight banks while keeping 8KB of spatial locality per row buffer.
 *
 * The channel map generalizes to any power-of-two channel count M=2^k:
 * the k channel bits are the XOR-fold of four consecutive k-bit fields
 * of the address starting at bit 8, which for k=1 reduces exactly to
 * the paper's a11^a10^a9^a8. The bank/row mapping is per channel and
 * does not depend on the channel count.
 */

#ifndef BOP_DRAM_ADDRESS_MAP_HH
#define BOP_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"

namespace bop
{

/** Decomposed DRAM coordinates of a physical address. */
struct DramCoord
{
    int channel = 0;        ///< 0..numChannels-1
    int bank = 0;           ///< 0..7
    std::uint32_t rowOffset = 0; ///< line within the row (0..127)
    std::uint64_t row = 0;  ///< row id within the bank
};

/** Largest supported channel count (4 XOR fields of 4 bits each). */
constexpr int maxDramChannels = 16;

/** Banks per channel (8 banks/chip, one rank of 8 chips lock-stepped). */
constexpr int numBanks = 8;

/**
 * Channel of a physical byte address for a power-of-two channel count.
 * With 2 channels this is the paper's a11^a10^a9^a8.
 */
int channelOfAddr(Addr paddr, int num_channels);

/** Channel of a line address (convenience wrapper). */
int channelOfLine(LineAddr line, int num_channels);

/**
 * Map a physical byte address to DRAM coordinates. @p num_channels
 * defaults to the paper's 2-channel chip (Table 1).
 */
DramCoord mapToDram(Addr paddr, int num_channels = 2);

} // namespace bop

#endif // BOP_DRAM_ADDRESS_MAP_HH
