/**
 * @file
 * Physical-address-to-DRAM mapping (paper Sec. 5.3).
 *
 * With a32..a6 the line-address bits of a byte address (a5..a0 the line
 * offset), the paper maps:
 *
 *   Channel (1 bit) : a11 ^ a10 ^ a9 ^ a8
 *   Bank    (3 bits): (a16^a13, a15^a12, a14^a11)
 *   Row off (7 bits): (a13,a12,a11,a10,a9,a7,a6)
 *   Row             : (a32, ..., a17)
 *
 * The XOR folding spreads sequential streams over both channels and all
 * eight banks while keeping 8KB of spatial locality per row buffer.
 */

#ifndef BOP_DRAM_ADDRESS_MAP_HH
#define BOP_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"

namespace bop
{

/** Decomposed DRAM coordinates of a physical address. */
struct DramCoord
{
    int channel = 0;        ///< 0..1
    int bank = 0;           ///< 0..7
    std::uint32_t rowOffset = 0; ///< line within the row (0..127)
    std::uint64_t row = 0;  ///< row id within the bank
};

/** Number of memory channels (Table 1). */
constexpr int numChannels = 2;

/** Banks per channel (8 banks/chip, one rank of 8 chips lock-stepped). */
constexpr int numBanks = 8;

/** Map a physical byte address to DRAM coordinates. */
DramCoord mapToDram(Addr paddr);

} // namespace bop

#endif // BOP_DRAM_ADDRESS_MAP_HH
