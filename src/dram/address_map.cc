#include "dram/address_map.hh"

namespace bop
{

namespace
{

/** Extract bit @p i of @p v. */
inline std::uint64_t
bit(Addr v, unsigned i)
{
    return (v >> i) & 1;
}

} // namespace

DramCoord
mapToDram(Addr paddr)
{
    DramCoord c;
    c.channel = static_cast<int>(bit(paddr, 11) ^ bit(paddr, 10) ^
                                 bit(paddr, 9) ^ bit(paddr, 8));

    const std::uint64_t b2 = bit(paddr, 16) ^ bit(paddr, 13);
    const std::uint64_t b1 = bit(paddr, 15) ^ bit(paddr, 12);
    const std::uint64_t b0 = bit(paddr, 14) ^ bit(paddr, 11);
    c.bank = static_cast<int>((b2 << 2) | (b1 << 1) | b0);

    c.rowOffset = static_cast<std::uint32_t>(
        (bit(paddr, 13) << 6) | (bit(paddr, 12) << 5) |
        (bit(paddr, 11) << 4) | (bit(paddr, 10) << 3) |
        (bit(paddr, 9) << 2) | (bit(paddr, 7) << 1) | bit(paddr, 6));

    c.row = paddr >> 17;
    return c;
}

} // namespace bop
