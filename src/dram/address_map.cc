#include "dram/address_map.hh"

#include <bit>
#include <cassert>

namespace bop
{

namespace
{

/** Extract bit @p i of @p v. */
inline std::uint64_t
bit(Addr v, unsigned i)
{
    return (v >> i) & 1;
}

} // namespace

int
channelOfAddr(Addr paddr, int num_channels)
{
    assert(num_channels >= 1 && num_channels <= maxDramChannels &&
           std::has_single_bit(static_cast<unsigned>(num_channels)));
    if (num_channels == 1)
        return 0;
    const unsigned k =
        static_cast<unsigned>(std::countr_zero(
            static_cast<unsigned>(num_channels)));
    const std::uint64_t mask = static_cast<std::uint64_t>(num_channels) - 1;
    std::uint64_t ch = 0;
    for (unsigned field = 0; field < 4; ++field)
        ch ^= (paddr >> (8 + field * k)) & mask;
    return static_cast<int>(ch);
}

int
channelOfLine(LineAddr line, int num_channels)
{
    return channelOfAddr(lineToAddr(line), num_channels);
}

DramCoord
mapToDram(Addr paddr, int num_channels)
{
    DramCoord c;
    c.channel = channelOfAddr(paddr, num_channels);

    const std::uint64_t b2 = bit(paddr, 16) ^ bit(paddr, 13);
    const std::uint64_t b1 = bit(paddr, 15) ^ bit(paddr, 12);
    const std::uint64_t b0 = bit(paddr, 14) ^ bit(paddr, 11);
    c.bank = static_cast<int>((b2 << 2) | (b1 << 1) | b0);

    c.rowOffset = static_cast<std::uint32_t>(
        (bit(paddr, 13) << 6) | (bit(paddr, 12) << 5) |
        (bit(paddr, 11) << 4) | (bit(paddr, 10) << 3) |
        (bit(paddr, 9) << 2) | (bit(paddr, 7) << 1) | bit(paddr, 6));

    c.row = paddr >> 17;
    return c;
}

} // namespace bop
