#include "trace/trace_reader.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/fault.hh"
#include "trace/trace_io.hh"

namespace bop
{

namespace
{

/** Quote @p s for /bin/sh: single quotes, ' spelled '\''. */
std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (const char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

std::string
stripCompressionSuffix(const std::string &path)
{
    for (const char *suffix : {".gz", ".xz"}) {
        const std::size_t n = std::strlen(suffix);
        if (path.size() > n &&
            path.compare(path.size() - n, n, suffix) == 0)
            return path.substr(0, path.size() - n);
    }
    return path;
}

bool
hasSuffix(const std::string &path, const std::string &suffix)
{
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

// Offsets inside one 64-byte ChampSim input_instr record.
constexpr std::size_t csIp = 0;
constexpr std::size_t csIsBranch = 8;
constexpr std::size_t csBranchTaken = 9;
constexpr std::size_t csDestRegs = 10; ///< 2 x u8
constexpr std::size_t csSrcRegs = 12;  ///< 4 x u8
constexpr std::size_t csDestMem = 16;  ///< 2 x u64
constexpr std::size_t csSrcMem = 32;   ///< 4 x u64
constexpr std::size_t csNumDest = 2;
constexpr std::size_t csNumSrc = 4;

} // namespace

const char *
traceFormatName(TraceFormat format)
{
    switch (format) {
      case TraceFormat::Boptrace:
        return "boptrace";
      case TraceFormat::ChampSim:
        return "champsim";
    }
    return "unknown";
}

const char *
traceCompressionName(TraceCompression compression)
{
    switch (compression) {
      case TraceCompression::None:
        return "none";
      case TraceCompression::Gzip:
        return "gzip";
      case TraceCompression::Xz:
        return "xz";
    }
    return "unknown";
}

// -- ByteStream ---------------------------------------------------------------

std::size_t
ByteStream::read(unsigned char *buf, std::size_t n)
{
    std::size_t got = 0;
    while (got < n && !pushback.empty()) {
        buf[got++] = pushback.back();
        pushback.pop_back();
    }
    if (got < n)
        got += readRaw(buf + got, n - got);
    consumed += got;
    return got;
}

bool
ByteStream::readExact(unsigned char *buf, std::size_t n)
{
    const std::size_t got = read(buf, n);
    if (got == 0)
        return false;
    if (got < n) {
        throw std::runtime_error(
            "unexpected end of stream at byte offset " +
            std::to_string(offset()) + " (needed " + std::to_string(n) +
            " bytes, got " + std::to_string(got) + ")");
    }
    return true;
}

void
ByteStream::unread(const unsigned char *buf, std::size_t n)
{
    // Stored reversed so read() pops in the original order.
    for (std::size_t i = n; i > 0; --i)
        pushback.push_back(buf[i - 1]);
    consumed -= n;
}

std::uint64_t
ByteStream::skip(std::uint64_t n)
{
    std::uint64_t done = 0;
    while (done < n && !pushback.empty()) {
        pushback.pop_back();
        ++done;
    }
    done += skipRaw(n - done);
    consumed += done;
    return done;
}

std::uint64_t
ByteStream::skipRaw(std::uint64_t n)
{
    unsigned char scratch[4096];
    std::uint64_t done = 0;
    while (done < n) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - done, sizeof(scratch)));
        const std::size_t got = readRaw(scratch, want);
        done += got;
        if (got < want)
            break; // EOF
    }
    return done;
}

FileByteStream::FileByteStream(const std::string &path)
    : in(path, std::ios::binary)
{
    if (!in)
        throw std::runtime_error("cannot open trace file " + path);
    in.seekg(0, std::ios::end);
    size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);
}

std::size_t
FileByteStream::readRaw(unsigned char *buf, std::size_t n)
{
    in.read(reinterpret_cast<char *>(buf),
            static_cast<std::streamsize>(n));
    return static_cast<std::size_t>(in.gcount());
}

std::uint64_t
FileByteStream::skipRaw(std::uint64_t n)
{
    const std::uint64_t pos = static_cast<std::uint64_t>(in.tellg());
    const std::uint64_t remaining = pos < size ? size - pos : 0;
    const std::uint64_t k = std::min(n, remaining);
    in.seekg(static_cast<std::streamoff>(k), std::ios::cur);
    return k;
}

PipeByteStream::PipeByteStream(const std::string &tool,
                               const std::string &path)
    : command(tool + " -dc " + shellQuote(path))
{
    pipe = ::popen(command.c_str(), "r");
    if (!pipe) {
        throw std::runtime_error("cannot spawn decompressor: " +
                                 command);
    }
}

PipeByteStream::~PipeByteStream()
{
    // Destructors must not throw; readers that reach EOF have already
    // checked the exit status via finish().
    if (pipe) {
        ::pclose(pipe);
        pipe = nullptr;
    }
}

std::size_t
PipeByteStream::readRaw(unsigned char *buf, std::size_t n)
{
    if (!pipe)
        return 0;
    std::size_t got = 0;
    int retries = 0;
    while (got < n) {
        // Injection point trace_read_eio (docs/ROBUSTNESS.md): one
        // transient read failure on the Nth readRaw call, recovered
        // by the same bounded retry that handles a real EINTR — the
        // decompressed bytes are identical to an uninjected run.
        if (FaultPlan::global().fireCounted("trace_read_eio")) {
            ++retries;
            std::fprintf(stderr,
                         "trace: transient read error (injected) at "
                         "decompressed byte %llu, retry %d/%d: %s\n",
                         static_cast<unsigned long long>(offset() + got),
                         retries, maxTransientRetries, command.c_str());
            continue;
        }

        got += std::fread(buf + got, 1, n - got, pipe);
        if (got == n)
            break;

        if (std::ferror(pipe)) {
            const int err = errno;
            if ((err == EINTR || err == EAGAIN) &&
                retries < maxTransientRetries) {
                ++retries;
                std::clearerr(pipe);
                std::fprintf(
                    stderr,
                    "trace: transient read error (%s) at decompressed "
                    "byte %llu, retry %d/%d: %s\n",
                    std::strerror(err),
                    static_cast<unsigned long long>(offset() + got),
                    retries, maxTransientRetries, command.c_str());
                continue;
            }
            // Retry budget exhausted (or a non-EINTR/EAGAIN errno):
            // classified TransientIoError so the error record carries
            // kind "io" — the one kind the farm/serve bounded-retry
            // path (--retries) may re-enqueue the whole job for.
            throw TransientIoError(
                "read error from decompressor (" +
                std::string(std::strerror(err)) + ") after " +
                std::to_string(offset() + got) +
                " decompressed byte(s): " + command);
        }

        // Clean EOF from the child: collect its exit status so a
        // decompressor killed mid-stream surfaces here with the byte
        // offset, never as silently truncated trace data.
        finish(offset() + got);
        break;
    }
    return got;
}

void
PipeByteStream::finish(std::uint64_t decompressed)
{
    if (!pipe)
        return;
    const int status = ::pclose(pipe);
    pipe = nullptr;
    if (status != 0) {
        throw std::runtime_error(
            "decompressor failed (exit status " + std::to_string(status) +
            ") after " + std::to_string(decompressed) +
            " decompressed byte(s): " + command);
    }
}

std::pair<std::unique_ptr<ByteStream>, TraceCompression>
openByteStream(const std::string &path)
{
    auto file = std::make_unique<FileByteStream>(path);
    unsigned char magic[6] = {};
    const std::size_t got = file->read(magic, sizeof(magic));

    if (got >= 2 && magic[0] == 0x1f && magic[1] == 0x8b) {
        return {std::make_unique<PipeByteStream>("gzip", path),
                TraceCompression::Gzip};
    }
    static const unsigned char xzMagic[6] = {0xfd, '7', 'z',
                                             'X',  'Z', 0x00};
    if (got >= 6 && std::memcmp(magic, xzMagic, 6) == 0) {
        return {std::make_unique<PipeByteStream>("xz", path),
                TraceCompression::Xz};
    }
    file->unread(magic, got);
    return {std::move(file), TraceCompression::None};
}

// -- BoptraceReader -----------------------------------------------------------

BoptraceReader::BoptraceReader(std::unique_ptr<ByteStream> stream,
                               TraceCompression compression,
                               std::string path_)
    : in(std::move(stream)), comp(compression), path(std::move(path_))
{
    unsigned char header[24];
    if (!in->readExact(header, sizeof(header)) ||
        std::memcmp(header, traceMagic, 8) != 0)
        throw std::runtime_error("bad BOPTRACE magic in " + path);
    std::uint32_t ver = 0;
    for (int i = 0; i < 4; ++i)
        ver |= static_cast<std::uint32_t>(header[8 + i]) << (8 * i);
    if (ver != traceVersion) {
        throw std::runtime_error("unsupported BOPTRACE version " +
                                 std::to_string(ver) + " in " + path);
    }
    count = getLE64(header + 16);
    if (count == 0)
        throw std::runtime_error("empty trace " + path);

    // When the payload size is knowable up front, reject any file
    // whose length disagrees with the header record count — a short
    // file would otherwise silently replay a partial loop, a long one
    // hides trailing garbage. Report where the disagreement starts.
    if (const auto total = in->totalBytes()) {
        const std::uint64_t expected =
            sizeof(header) + count * traceRecordBytes;
        if (*total != expected) {
            throw std::runtime_error(
                path + ": header declares " + std::to_string(count) +
                " records (" + std::to_string(expected) +
                " bytes) but the file is " + std::to_string(*total) +
                " bytes — " +
                (*total < expected ? "truncated at" : "trailing data from") +
                " byte offset " +
                std::to_string(std::min(*total, expected)));
        }
    }
}

bool
BoptraceReader::next(TraceInstr &out)
{
    if (produced == count)
        return false;
    unsigned char buf[traceRecordBytes];
    if (!in->readExact(buf, sizeof(buf))) {
        throw std::runtime_error(
            path + ": truncated at byte offset " +
            std::to_string(in->offset()) + " — header declares " +
            std::to_string(count) + " records, stream ended after " +
            std::to_string(produced));
    }
    out = decodeTraceInstr(buf);
    ++produced;
    return true;
}

std::uint64_t
TraceReader::skipInstructions(std::uint64_t n)
{
    TraceInstr discard;
    std::uint64_t done = 0;
    while (done < n && next(discard))
        ++done;
    return done;
}

std::uint64_t
BoptraceReader::skipInstructions(std::uint64_t n)
{
    const std::uint64_t k = std::min(n, count - produced);
    const std::uint64_t skipped = in->skip(k * traceRecordBytes);
    if (skipped != k * traceRecordBytes) {
        throw std::runtime_error(
            path + ": truncated at byte offset " +
            std::to_string(in->offset()) + " — header declares " +
            std::to_string(count) + " records, skip of " +
            std::to_string(k) + " from record " +
            std::to_string(produced) + " ran off the end");
    }
    produced += k;
    return k;
}

// -- ChampSimReader -----------------------------------------------------------

ChampSimReader::ChampSimReader(std::unique_ptr<ByteStream> stream,
                               TraceCompression compression,
                               std::string path_)
    : in(std::move(stream)), comp(compression), path(std::move(path_))
{
    // Before the first load-bearing record the canonical load-result
    // register is considered live, so a capture window that opens on
    // instructions depending on an uncaptured load round-trips. A
    // dependence with no preceding load is inert in the core model,
    // so this is harmless for foreign traces.
    lastLoadDest = {champsimRegLoadDest, 0};
    haveLoadDest = true;

    if (const auto total = in->totalBytes()) {
        if (*total == 0)
            throw std::runtime_error("empty trace " + path);
        if (*total % champsimRecordBytes != 0) {
            throw std::runtime_error(
                path + ": not a whole number of " +
                std::to_string(champsimRecordBytes) +
                "-byte ChampSim records (" + std::to_string(*total) +
                " bytes; trailing partial record at byte offset " +
                std::to_string(*total - *total % champsimRecordBytes) +
                ")");
        }
    }
}

bool
ChampSimReader::refill()
{
    unsigned char buf[champsimRecordBytes];
    try {
        if (!in->readExact(buf, sizeof(buf)))
            return false;
    } catch (const std::runtime_error &e) {
        throw std::runtime_error(path + ": truncated ChampSim record: " +
                                 e.what());
    }

    const Addr pc = getLE64(buf + csIp);
    const bool isBranch = buf[csIsBranch] != 0;
    const bool taken = buf[csBranchTaken] != 0;

    // Dataflow: does this instruction read a register the most recent
    // load produced?
    bool dep = false;
    for (std::size_t s = 0; s < csNumSrc && !dep; ++s) {
        const unsigned char reg = buf[csSrcRegs + s];
        if (reg == 0 || !haveLoadDest)
            continue;
        dep = reg == lastLoadDest[0] || reg == lastLoadDest[1];
    }

    bool fp = false;
    for (std::size_t s = 0; s < csNumSrc && !fp; ++s)
        fp = buf[csSrcRegs + s] == champsimRegFpMarker;

    bool emitted = false;
    bool emittedLoad = false;
    auto emit = [&](InstrKind kind, Addr vaddr, bool takenFlag) {
        TraceInstr instr;
        instr.kind = kind;
        instr.pc = pc;
        instr.vaddr = vaddr;
        instr.taken = takenFlag;
        instr.dependsOnPrevLoad = dep;
        pending.push_back(instr);
        emitted = true;
    };

    for (std::size_t s = 0; s < csNumSrc; ++s) {
        const Addr vaddr = getLE64(buf + csSrcMem + 8 * s);
        if (vaddr != 0) {
            emit(InstrKind::Load, vaddr, false);
            emittedLoad = true;
        }
    }
    for (std::size_t d = 0; d < csNumDest; ++d) {
        const Addr vaddr = getLE64(buf + csDestMem + 8 * d);
        if (vaddr != 0)
            emit(InstrKind::Store, vaddr, false);
    }
    if (isBranch)
        emit(InstrKind::Branch, 0, taken);
    if (!emitted)
        emit(fp ? InstrKind::FpOp : InstrKind::IntOp, 0, false);

    if (emittedLoad) {
        lastLoadDest = {buf[csDestRegs], buf[csDestRegs + 1]};
        // All-zero destination slots mean the load's result register
        // is unknown; nothing downstream can match it.
        haveLoadDest = lastLoadDest[0] != 0 || lastLoadDest[1] != 0;
    }
    return true;
}

bool
ChampSimReader::next(TraceInstr &out)
{
    if (pending.empty() && !refill())
        return false;
    out = pending.front();
    pending.pop_front();
    return true;
}

// -- autodetection ------------------------------------------------------------

std::unique_ptr<TraceReader>
openTraceReader(const std::string &path)
{
    auto [stream, compression] = openByteStream(path);

    unsigned char magic[8] = {};
    const std::size_t got = stream->read(magic, sizeof(magic));
    stream->unread(magic, got);

    if (got == sizeof(magic) &&
        std::memcmp(magic, traceMagic, sizeof(magic)) == 0) {
        return std::make_unique<BoptraceReader>(std::move(stream),
                                                compression, path);
    }
    // Extension fallback: a `.bt` file without the magic is corrupt —
    // reject rather than reinterpret it as headerless ChampSim data.
    if (hasSuffix(stripCompressionSuffix(path), ".bt")) {
        throw std::runtime_error("bad BOPTRACE magic in " + path +
                                 " (.bt file without BOPTRACE header)");
    }
    return std::make_unique<ChampSimReader>(std::move(stream),
                                            compression, path);
}

// -- ChampSim writer ----------------------------------------------------------

void
encodeChampSimInstr(const TraceInstr &instr, unsigned char *buf)
{
    std::memset(buf, 0, champsimRecordBytes);
    putLE64(buf + csIp, instr.pc);
    switch (instr.kind) {
      case InstrKind::Load:
        putLE64(buf + csSrcMem, instr.vaddr);
        buf[csDestRegs] = champsimRegLoadDest;
        break;
      case InstrKind::Store:
        putLE64(buf + csDestMem, instr.vaddr);
        break;
      case InstrKind::Branch:
        buf[csIsBranch] = 1;
        buf[csBranchTaken] = instr.taken ? 1 : 0;
        break;
      case InstrKind::FpOp:
        buf[csSrcRegs + 1] = champsimRegFpMarker;
        break;
      case InstrKind::IntOp:
        break;
    }
    if (instr.dependsOnPrevLoad)
        buf[csSrcRegs] = champsimRegLoadDest;
}

ChampSimTraceWriter::ChampSimTraceWriter(const std::string &path_)
    : out(path_, std::ios::binary | std::ios::trunc), path(path_)
{
    if (!out) {
        throw std::runtime_error("ChampSimTraceWriter: cannot open " +
                                 path);
    }
}

ChampSimTraceWriter::~ChampSimTraceWriter()
{
    try {
        close();
    } catch (...) {
    }
}

void
ChampSimTraceWriter::append(const TraceInstr &instr)
{
    if (closed)
        throw std::runtime_error("ChampSimTraceWriter: append after close");
    unsigned char buf[champsimRecordBytes];
    encodeChampSimInstr(instr, buf);
    out.write(reinterpret_cast<const char *>(buf), sizeof(buf));
    ++numRecords;
}

void
ChampSimTraceWriter::close()
{
    if (closed)
        return;
    closed = true;
    out.close();
    if (!out) {
        throw std::runtime_error("ChampSimTraceWriter: error closing " +
                                 path);
    }
}

TraceFormat
traceFormatForPath(const std::string &path)
{
    const std::string base = stripCompressionSuffix(path);
    for (const char *suffix : {".champsim", ".champsimtrace", ".trace"})
        if (hasSuffix(base, suffix))
            return TraceFormat::ChampSim;
    return TraceFormat::Boptrace;
}

std::unique_ptr<TraceSink>
makeTraceSink(const std::string &path, TraceFormat format)
{
    if (format == TraceFormat::ChampSim)
        return std::make_unique<ChampSimTraceWriter>(path);
    return std::make_unique<TraceWriter>(path);
}

} // namespace bop
