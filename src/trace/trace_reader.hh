/**
 * @file
 * Pluggable trace frontend: format autodetection, streaming readers
 * and writers for every on-disk trace format the simulator speaks.
 *
 * The paper evaluates BO on Pin-captured traces (Sec. 5); the wider
 * prefetching community distributes workload captures in the
 * ChampSim/DPC fixed-record format (one 64-byte input-instruction
 * record per retired instruction, usually gzip- or xz-compressed).
 * This layer decodes both that format and this repository's native
 * BOPTRACE container into `TraceInstr` streams behind one interface,
 * so every consumer (`FileTrace`, `bopsim --trace`, `boptrace
 * convert/info`) is format-agnostic.
 *
 * Layering:
 *
 *   ByteStream        sequential bytes + consumed-offset + pushback;
 *                     concrete: plain file, or a `gzip -dc`/`xz -dc`
 *                     subprocess pipe for compressed traces
 *   TraceReader       finite stream of decoded TraceInstr records
 *   TraceSink         streaming trace writer (BOPTRACE or ChampSim)
 *   openTraceReader   compression sniff -> decompressed magic sniff
 *                     -> extension fallback -> concrete reader
 *
 * The byte-level layout of both formats (and the canonical-subset
 * conventions the ChampSim writer uses) is specified normatively in
 * docs/TRACE_FORMATS.md.
 */

#ifndef BOP_TRACE_TRACE_READER_HH
#define BOP_TRACE_TRACE_READER_HH

#include <array>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hh"

namespace bop
{

/** On-disk trace formats the frontend can decode and encode. */
enum class TraceFormat
{
    Boptrace, ///< native 24-byte header + 19-byte records
    ChampSim, ///< headerless 64-byte input_instr records
};

/** Transparent decompression applied while reading. */
enum class TraceCompression
{
    None,
    Gzip, ///< piped through `gzip -dc`
    Xz,   ///< piped through `xz -dc`
};

/** Lower-case name for messages and JSON tags ("boptrace", ...). */
const char *traceFormatName(TraceFormat format);

/** Lower-case name ("none", "gzip", "xz"). */
const char *traceCompressionName(TraceCompression compression);

// -- byte streams -------------------------------------------------------------

/**
 * A sequential byte source that tracks the number of bytes consumed
 * (so malformed-trace errors can report exact byte offsets) and
 * supports pushing sniffed bytes back for the next reader.
 */
class ByteStream
{
  public:
    virtual ~ByteStream() = default;

    /** Read up to @p n bytes; returns bytes produced (< n at EOF). */
    std::size_t read(unsigned char *buf, std::size_t n);

    /** Read exactly @p n bytes, or return false at a clean EOF with
     *  zero bytes; throws std::runtime_error on a partial record. */
    bool readExact(unsigned char *buf, std::size_t n);

    /** Push @p n bytes back; they are returned by the next read(). */
    void unread(const unsigned char *buf, std::size_t n);

    /**
     * Discard up to @p n bytes; returns the number actually skipped
     * (< n only at EOF). A plain file seeks; pipes read-and-discard.
     */
    std::uint64_t skip(std::uint64_t n);

    /** Bytes handed out so far (pushed-back bytes not yet re-read
     *  are excluded). */
    std::uint64_t offset() const { return consumed; }

    /** Total stream size when knowable up front (a plain uncompressed
     *  file); nullopt for pipes. */
    virtual std::optional<std::uint64_t> totalBytes() const
    {
        return std::nullopt;
    }

  protected:
    /** Produce up to @p n bytes from the underlying source. */
    virtual std::size_t readRaw(unsigned char *buf, std::size_t n) = 0;

    /** Discard up to @p n bytes from the underlying source; the
     *  default reads into a scratch buffer, seekable sources seek. */
    virtual std::uint64_t skipRaw(std::uint64_t n);

  private:
    std::vector<unsigned char> pushback; ///< stored reversed
    std::uint64_t consumed = 0;
};

/** ByteStream over a plain file. */
class FileByteStream : public ByteStream
{
  public:
    /** Throws std::runtime_error when the file cannot be opened. */
    explicit FileByteStream(const std::string &path);

    std::optional<std::uint64_t> totalBytes() const override
    {
        return size;
    }

  protected:
    std::size_t readRaw(unsigned char *buf, std::size_t n) override;
    std::uint64_t skipRaw(std::uint64_t n) override; ///< seeks

  private:
    std::ifstream in;
    std::uint64_t size = 0;
};

/**
 * ByteStream over the stdout of a decompressor subprocess
 * (`gzip -dc` / `xz -dc`). The subprocess exit status is checked at
 * EOF so a corrupt archive surfaces as an exception — naming the
 * decompressed byte offset and the child's exit status — never as
 * silently truncated trace data. Transient read errors (EINTR/EAGAIN,
 * e.g. a signal interrupting the pipe read) are retried up to
 * maxTransientRetries times with a stderr diagnostic per attempt.
 */
class PipeByteStream : public ByteStream
{
  public:
    /** Spawn @p tool ("gzip" or "xz") decompressing @p path. */
    PipeByteStream(const std::string &tool, const std::string &path);
    ~PipeByteStream() override;

    PipeByteStream(const PipeByteStream &) = delete;
    PipeByteStream &operator=(const PipeByteStream &) = delete;

    /** Transient-read retry bound before the error is permanent. */
    static constexpr int maxTransientRetries = 3;

  protected:
    std::size_t readRaw(unsigned char *buf, std::size_t n) override;

  private:
    /** pclose + exit-status check; @p decompressed names the byte
     *  offset in the failure message. Throws on nonzero status. */
    void finish(std::uint64_t decompressed);

    std::FILE *pipe = nullptr;
    std::string command;
};

/**
 * Open @p path for reading, transparently decompressing when the raw
 * file starts with a gzip or xz magic number. Returns the stream and
 * the compression that was detected.
 */
std::pair<std::unique_ptr<ByteStream>, TraceCompression>
openByteStream(const std::string &path);

// -- readers ------------------------------------------------------------------

/** A finite, forward-only stream of decoded trace instructions. */
class TraceReader
{
  public:
    virtual ~TraceReader() = default;

    /** Decode the next instruction into @p out; false at end of
     *  trace. Throws std::runtime_error on malformed input, with the
     *  offending byte offset in the message. */
    virtual bool next(TraceInstr &out) = 0;

    virtual TraceFormat format() const = 0;
    virtual TraceCompression compression() const = 0;

    /** Record count declared by the container header, when the
     *  format has one (BOPTRACE); 0 otherwise. */
    virtual std::uint64_t declaredRecords() const { return 0; }

    /**
     * Discard the next @p n instructions; returns the number actually
     * skipped (< n only when the trace ends first). The base
     * implementation streams decode-and-discard (ChampSim has no
     * random access: records expand to a variable number of
     * instructions); BOPTRACE overrides with a byte seek over its
     * fixed 19-byte records.
     */
    virtual std::uint64_t skipInstructions(std::uint64_t n);
};

/** Reader for the native BOPTRACE v1 container. */
class BoptraceReader : public TraceReader
{
  public:
    /**
     * Parse the header from @p stream (which must be positioned at
     * the magic). When the stream's total size is known, the payload
     * length is validated against the header record count up front —
     * a truncated or padded file is rejected with the byte offset
     * where the mismatch begins.
     */
    BoptraceReader(std::unique_ptr<ByteStream> stream,
                   TraceCompression compression, std::string path);

    bool next(TraceInstr &out) override;
    TraceFormat format() const override { return TraceFormat::Boptrace; }
    TraceCompression compression() const override { return comp; }
    std::uint64_t declaredRecords() const override { return count; }

    /** One record per instruction at a fixed 19 bytes: a skip is a
     *  bounded byte seek (a read-through on compressed pipes). */
    std::uint64_t skipInstructions(std::uint64_t n) override;

  private:
    std::unique_ptr<ByteStream> in;
    TraceCompression comp;
    std::string path;
    std::uint64_t count = 0;
    std::uint64_t produced = 0;
};

/**
 * Importer for ChampSim/DPC input-instruction traces.
 *
 * Each 64-byte record carries one retired instruction: PC, branch
 * info, 2 destination + 4 source registers, 2 destination + 4 source
 * memory operands (0 = unused slot). A record expands to one
 * TraceInstr per memory operand (sources as loads, then destinations
 * as stores), followed by a Branch record when `is_branch` is set, or
 * a plain ALU op when the instruction touched no memory at all.
 *
 * `dependsOnPrevLoad` is inferred from register dataflow: an
 * instruction depends on the previous load when one of its source
 * registers matches a destination register of the most recent
 * load-bearing instruction.
 */
class ChampSimReader : public TraceReader
{
  public:
    ChampSimReader(std::unique_ptr<ByteStream> stream,
                   TraceCompression compression, std::string path);

    bool next(TraceInstr &out) override;
    TraceFormat format() const override { return TraceFormat::ChampSim; }
    TraceCompression compression() const override { return comp; }

  private:
    bool refill(); ///< decode one raw record into `pending`

    std::unique_ptr<ByteStream> in;
    TraceCompression comp;
    std::string path;
    std::deque<TraceInstr> pending;
    std::array<unsigned char, 2> lastLoadDest{};
    bool haveLoadDest = false;
};

/** Size of one raw ChampSim input_instr record in bytes. */
constexpr std::size_t champsimRecordBytes = 64;

/** Register id the canonical ChampSim writer assigns to load
 *  results (and to the sources of load-dependent instructions). */
constexpr unsigned char champsimRegLoadDest = 2;

/** Register id marking long-latency FP ops in the canonical subset. */
constexpr unsigned char champsimRegFpMarker = 60;

/**
 * Open @p path with transparent decompression and format
 * autodetection: a decompressed stream starting with the BOPTRACE
 * magic gets the native reader; anything else is treated as a
 * ChampSim trace — unless the extension claims BOPTRACE (`.bt`), in
 * which case the bad magic is a hard error rather than a silent
 * reinterpretation.
 */
std::unique_ptr<TraceReader> openTraceReader(const std::string &path);

// -- writers ------------------------------------------------------------------

/** A streaming trace writer; one concrete sink per on-disk format. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append one instruction. */
    virtual void append(const TraceInstr &instr) = 0;

    /** Finalise the file; throws on I/O failure. */
    virtual void close() = 0;

    /** Records written so far. */
    virtual std::uint64_t count() const = 0;

    virtual TraceFormat format() const = 0;
};

/**
 * ChampSim writer emitting the canonical one-record-per-TraceInstr
 * subset (docs/TRACE_FORMATS.md): loads carry their operand in
 * source_memory[0] and define champsimRegLoadDest; stores use
 * destination_memory[0]; FP ops carry the FP marker register; a
 * load-dependent instruction sources champsimRegLoadDest so the
 * importer's dataflow inference reconstructs the dependence bit.
 */
class ChampSimTraceWriter : public TraceSink
{
  public:
    explicit ChampSimTraceWriter(const std::string &path);
    ~ChampSimTraceWriter() override;

    ChampSimTraceWriter(const ChampSimTraceWriter &) = delete;
    ChampSimTraceWriter &operator=(const ChampSimTraceWriter &) = delete;

    void append(const TraceInstr &instr) override;
    void close() override;
    std::uint64_t count() const override { return numRecords; }
    TraceFormat format() const override { return TraceFormat::ChampSim; }

  private:
    std::ofstream out;
    std::string path;
    std::uint64_t numRecords = 0;
    bool closed = false;
};

/** Encode one TraceInstr as a canonical-subset ChampSim record
 *  (champsimRecordBytes bytes). */
void encodeChampSimInstr(const TraceInstr &instr, unsigned char *buf);

/** Pick the trace format a path's extension implies (`.champsim`,
 *  `.champsimtrace`, `.trace` -> ChampSim; everything else ->
 *  BOPTRACE), ignoring trailing `.gz`/`.xz`. */
TraceFormat traceFormatForPath(const std::string &path);

/** Open a streaming writer producing @p format at @p path. */
std::unique_ptr<TraceSink> makeTraceSink(const std::string &path,
                                         TraceFormat format);

} // namespace bop

#endif // BOP_TRACE_TRACE_READER_HH
