#include "trace/workloads.hh"

#include <map>
#include <stdexcept>

namespace bop
{

namespace
{

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/**
 * Shorthand stream builders. The accesses-per-element defaults and the
 * per-workload reuse fractions below were calibrated so the baseline
 * (next-line + 5P + DL1 stride) lands in the paper's Fig. 2 / Fig. 13
 * regimes: cache-resident benchmarks at L2 MPKI < 5 and IPC > 1,
 * memory-heavy ones at 15-40 DRAM accesses per 1000 instructions.
 */
StreamSpec
seqStream(std::uint64_t region, std::int64_t step, double weight,
          double stores = 0.0, int accesses_per_element = 3,
          double reuse = 0.0)
{
    StreamSpec s;
    s.pattern = StreamPattern::Sequential;
    s.regionBytes = region;
    s.stepBytes = step;
    s.weight = weight;
    s.storeRatio = stores;
    s.accessesPerElement = accesses_per_element;
    s.reuseFraction = reuse;
    return s;
}

StreamSpec
stridedStream(std::uint64_t region, std::int64_t stride, double weight,
              double stores = 0.0, int accesses_per_element = 12,
              double reuse = 0.0)
{
    StreamSpec s;
    s.pattern = StreamPattern::Strided;
    s.regionBytes = region;
    s.stepBytes = stride;
    s.weight = weight;
    s.storeRatio = stores;
    s.accessesPerElement = accesses_per_element;
    s.reuseFraction = reuse;
    return s;
}

StreamSpec
chaseStream(std::uint64_t region, double weight,
            int accesses_per_element = 4, double reuse = 0.0)
{
    StreamSpec s;
    s.pattern = StreamPattern::PointerChase;
    s.regionBytes = region;
    s.weight = weight;
    s.accessesPerElement = accesses_per_element;
    s.reuseFraction = reuse;
    return s;
}

StreamSpec
randomStream(std::uint64_t region, double weight, double stores = 0.0,
             int accesses_per_element = 6, double reuse = 0.0)
{
    StreamSpec s;
    s.pattern = StreamPattern::Random;
    s.regionBytes = region;
    s.weight = weight;
    s.storeRatio = stores;
    s.accessesPerElement = accesses_per_element;
    s.reuseFraction = reuse;
    return s;
}

/** Build the full spec table once. */
std::map<std::string, WorkloadSpec>
buildSpecs()
{
    std::map<std::string, WorkloadSpec> specs;

    auto add = [&](WorkloadSpec w) { specs[w.name] = std::move(w); };

    {   // 400.perlbench: interpreter; small hot WS, branchy, low MPKI.
        WorkloadSpec w;
        w.name = "400.perlbench";
        w.depFraction = 0.35;
        w.memFraction = 0.34;
        w.branchFraction = 0.20;
        w.branchRandomFraction = 0.08;
        w.branchBias = 0.7;
        w.streams = {randomStream(192 * KB, 0.55, 0.0, 6, 0.6),
                     chaseStream(512 * KB, 0.15, 4, 0.5),
                     seqStream(128 * KB, 8, 0.3, 0.3, 3, 0.5)};
        add(w);
    }
    {   // 401.bzip2: block compression; medium WS, mixed strides.
        WorkloadSpec w;
        w.name = "401.bzip2";
        w.depFraction = 0.3;
        w.memFraction = 0.32;
        w.branchFraction = 0.15;
        w.branchRandomFraction = 0.12;
        w.branchBias = 0.65;
        w.streams = {stridedStream(2 * MB, 64, 0.5, 0.0, 12, 0.3),
                     randomStream(768 * KB, 0.3, 0.0, 6, 0.5),
                     seqStream(512 * KB, 8, 0.2, 0.4, 3, 0.3)};
        add(w);
    }
    {   // 403.gcc: compiler; irregular + sequential, pollution-
        // sensitive mix (IP3 of 5P helps here in the paper).
        WorkloadSpec w;
        w.name = "403.gcc";
        w.depFraction = 0.35;
        w.memFraction = 0.36;
        w.branchFraction = 0.20;
        w.branchRandomFraction = 0.10;
        w.branchBias = 0.65;
        w.streams = {randomStream(768 * KB, 0.35, 0.0, 6, 0.5),
                     seqStream(1 * MB, 16, 0.35, 0.2, 3, 0.3),
                     chaseStream(512 * KB, 0.3, 4, 0.4)};
        add(w);
    }
    {   // 410.bwaves: FP; several long unit-stride streams, huge WS.
        WorkloadSpec w;
        w.name = "410.bwaves";
        w.depFraction = 0.25;
        w.memFraction = 0.40;
        w.branchFraction = 0.06;
        w.fpFraction = 0.7;
        w.loopPeriod = 32;
        w.streams = {seqStream(30 * MB, 8, 1.0),
                     seqStream(30 * MB, 8, 1.0),
                     seqStream(30 * MB, 8, 0.8, 0.5)};
        add(w);
    }
    {   // 416.gamess: FP compute-bound, cache-resident.
        WorkloadSpec w;
        w.name = "416.gamess";
        w.depFraction = 0.15;
        w.memFraction = 0.26;
        w.branchFraction = 0.10;
        w.branchRandomFraction = 0.05;
        w.branchBias = 0.7;
        w.fpFraction = 0.8;
        w.opDepFraction = 0.3;
        w.streams = {stridedStream(256 * KB, 64, 0.7, 0.0, 12, 0.6),
                     randomStream(128 * KB, 0.3, 0.0, 6, 0.6)};
        add(w);
    }
    {   // 429.mcf: pointer chasing over a big graph; very high MPKI;
        // the workload where throttling/RR-size effects show (Sec. 6.1,
        // 6.2).
        WorkloadSpec w;
        w.name = "429.mcf";
        w.depFraction = 0.4;
        w.memFraction = 0.42;
        w.branchFraction = 0.19;
        w.branchRandomFraction = 0.25;
        w.branchBias = 0.6;
        w.opDepFraction = 0.3;
        w.streams = {chaseStream(20 * MB, 0.55, 6, 0.2),
                     randomStream(2 * MB, 0.2, 0.0, 4, 0.3),
                     seqStream(4 * MB, 16, 0.25, 0.25, 3, 0.2)};
        add(w);
    }
    {   // 433.milc: lattice QCD; strided with 32-line period, huge WS;
        // multiple arrays through the same code defeat the PC-indexed
        // DL1 stride prefetcher (paper fn. 11); peaks at k*32.
        WorkloadSpec w;
        w.name = "433.milc";
        w.depFraction = 0.25;
        w.memFraction = 0.35;
        w.branchFraction = 0.05;
        w.fpFraction = 0.75;
        w.loopPeriod = 32;
        for (int i = 0; i < 4; ++i) {
            StreamSpec s = stridedStream(24 * MB, 32 * 64, 1.0,
                                         i == 3 ? 0.5 : 0.0, 16);
            s.sharedPcGroup = 7;
            s.phaseBytes = static_cast<std::uint64_t>(i) * 8 * 64;
            s.regionId = 40 + i;
            w.streams.push_back(s);
        }
        add(w);
    }
    {   // 434.zeusmp: FP stencils, medium strides, large WS.
        WorkloadSpec w;
        w.name = "434.zeusmp";
        w.depFraction = 0.25;
        w.memFraction = 0.36;
        w.branchFraction = 0.07;
        w.fpFraction = 0.7;
        w.streams = {stridedStream(16 * MB, 320, 0.6, 0.2, 16, 0.3),
                     stridedStream(16 * MB, 192, 0.4, 0.0, 16, 0.3)};
        add(w);
    }
    {   // 435.gromacs: molecular dynamics; mostly cache-resident.
        WorkloadSpec w;
        w.name = "435.gromacs";
        w.depFraction = 0.15;
        w.memFraction = 0.30;
        w.branchFraction = 0.09;
        w.branchRandomFraction = 0.06;
        w.branchBias = 0.7;
        w.fpFraction = 0.8;
        w.streams = {seqStream(384 * KB, 8, 0.6, 0.0, 3, 0.5),
                     randomStream(512 * KB, 0.4, 0.0, 6, 0.6)};
        add(w);
    }
    {   // 436.cactusADM: FP stencil, 6-line stride, large WS.
        WorkloadSpec w;
        w.name = "436.cactusADM";
        w.depFraction = 0.25;
        w.memFraction = 0.38;
        w.branchFraction = 0.05;
        w.fpFraction = 0.75;
        w.streams = {stridedStream(24 * MB, 6 * 64, 0.7, 0.3, 16, 0.2),
                     seqStream(4 * MB, 8, 0.3, 0.0, 3, 0.2)};
        add(w);
    }
    {   // 437.leslie3d: FP; several unit-stride streams, large WS.
        WorkloadSpec w;
        w.name = "437.leslie3d";
        w.depFraction = 0.25;
        w.memFraction = 0.40;
        w.branchFraction = 0.06;
        w.fpFraction = 0.75;
        w.streams = {seqStream(20 * MB, 8, 1.0),
                     seqStream(20 * MB, 8, 1.0, 0.3),
                     stridedStream(12 * MB, 192, 0.5, 0.0, 16)};
        add(w);
    }
    {   // 444.namd: FP compute-bound, small WS.
        WorkloadSpec w;
        w.name = "444.namd";
        w.depFraction = 0.15;
        w.memFraction = 0.28;
        w.branchFraction = 0.08;
        w.branchRandomFraction = 0.05;
        w.branchBias = 0.7;
        w.fpFraction = 0.85;
        w.opDepFraction = 0.3;
        w.streams = {stridedStream(512 * KB, 64, 0.6, 0.0, 12, 0.6),
                     randomStream(384 * KB, 0.4, 0.0, 6, 0.6)};
        add(w);
    }
    {   // 445.gobmk: game tree search; branchy, irregular, modest WS.
        WorkloadSpec w;
        w.name = "445.gobmk";
        w.depFraction = 0.35;
        w.memFraction = 0.30;
        w.branchFraction = 0.22;
        w.branchRandomFraction = 0.20;
        w.branchBias = 0.6;
        w.streams = {randomStream(512 * KB, 0.6, 0.0, 6, 0.6),
                     seqStream(256 * KB, 8, 0.4, 0.3, 3, 0.4)};
        add(w);
    }
    {   // 447.dealII: FEM; mixed pointer/sequential, medium WS.
        WorkloadSpec w;
        w.name = "447.dealII";
        w.depFraction = 0.3;
        w.memFraction = 0.35;
        w.branchFraction = 0.14;
        w.branchRandomFraction = 0.08;
        w.branchBias = 0.7;
        w.fpFraction = 0.5;
        w.streams = {chaseStream(1 * MB, 0.3, 4, 0.4),
                     seqStream(2 * MB, 8, 0.5, 0.0, 3, 0.3),
                     randomStream(1 * MB, 0.2, 0.0, 6, 0.5)};
        add(w);
    }
    {   // 450.soplex: LP solver; sparse matrix sweeps, high MPKI.
        WorkloadSpec w;
        w.name = "450.soplex";
        w.depFraction = 0.3;
        w.memFraction = 0.40;
        w.branchFraction = 0.15;
        w.branchRandomFraction = 0.10;
        w.branchBias = 0.65;
        w.streams = {stridedStream(16 * MB, 384, 0.4, 0.0, 16),
                     randomStream(4 * MB, 0.35, 0.0, 6, 0.5),
                     seqStream(4 * MB, 8, 0.2, 0.2, 3, 0.2)};
        add(w);
    }
    {   // 453.povray: ray tracing; compute-bound, tiny WS.
        WorkloadSpec w;
        w.name = "453.povray";
        w.depFraction = 0.15;
        w.memFraction = 0.26;
        w.branchFraction = 0.17;
        w.branchRandomFraction = 0.10;
        w.branchBias = 0.7;
        w.fpFraction = 0.8;
        w.streams = {randomStream(256 * KB, 0.7, 0.0, 6, 0.7),
                     seqStream(128 * KB, 8, 0.3, 0.3, 3, 0.6)};
        add(w);
    }
    {   // 454.calculix: FP; strided, mostly L3-resident.
        WorkloadSpec w;
        w.name = "454.calculix";
        w.depFraction = 0.2;
        w.memFraction = 0.30;
        w.branchFraction = 0.09;
        w.fpFraction = 0.75;
        w.streams = {stridedStream(4 * MB, 128, 0.6, 0.0, 16, 0.4),
                     seqStream(1 * MB, 8, 0.4, 0.2, 3, 0.4)};
        add(w);
    }
    {   // 456.hmmer: dynamic programming over small tables; L2-resident.
        WorkloadSpec w;
        w.name = "456.hmmer";
        w.depFraction = 0.2;
        w.memFraction = 0.38;
        w.branchFraction = 0.10;
        w.branchRandomFraction = 0.05;
        w.branchBias = 0.7;
        w.streams = {seqStream(192 * KB, 8, 0.8, 0.3, 3, 0.5),
                     randomStream(96 * KB, 0.2, 0.0, 6, 0.6)};
        add(w);
    }
    {   // 458.sjeng: chess; branchy, hash-table randomness.
        WorkloadSpec w;
        w.name = "458.sjeng";
        w.depFraction = 0.3;
        w.memFraction = 0.28;
        w.branchFraction = 0.21;
        w.branchRandomFraction = 0.20;
        w.branchBias = 0.6;
        w.streams = {randomStream(1 * MB, 0.7, 0.0, 6, 0.55),
                     seqStream(128 * KB, 8, 0.3, 0.3, 3, 0.4)};
        add(w);
    }
    {   // 459.GemsFDTD: FDTD solver; stride 29.34 lines (1878B), so the
        // best offsets are near — but not on — multiples of 29 and off
        // the 52-entry list except for 30 (paper Fig. 8 discussion).
        WorkloadSpec w;
        w.name = "459.GemsFDTD";
        w.depFraction = 0.25;
        w.memFraction = 0.35;
        w.branchFraction = 0.05;
        w.fpFraction = 0.75;
        for (int i = 0; i < 2; ++i) {
            StreamSpec s = stridedStream(24 * MB, 1878, 1.0,
                                         i == 1 ? 0.4 : 0.0, 24);
            s.sharedPcGroup = 9;
            s.regionId = 50 + i;
            w.streams.push_back(s);
        }
        add(w);
    }
    {   // 462.libquantum: long sequential read-modify-write streams;
        // bandwidth-hungry, needs very large offsets for timeliness.
        WorkloadSpec w;
        w.name = "462.libquantum";
        w.depFraction = 0.25;
        w.memFraction = 0.36;
        w.branchFraction = 0.12;
        w.loopPeriod = 64;
        w.streams = {seqStream(48 * MB, 16, 1.0, 0.45)};
        add(w);
    }
    {   // 464.h264ref: video coding; small strides, modest WS.
        WorkloadSpec w;
        w.name = "464.h264ref";
        w.depFraction = 0.25;
        w.memFraction = 0.34;
        w.branchFraction = 0.14;
        w.branchRandomFraction = 0.10;
        w.branchBias = 0.65;
        w.streams = {stridedStream(1 * MB, 320, 0.5, 0.0, 12, 0.4),
                     seqStream(512 * KB, 8, 0.5, 0.3, 3, 0.4)};
        add(w);
    }
    {   // 465.tonto: FP; clean constant strides from few PCs — the DL1
        // stride prefetcher shines here (paper Fig. 4: up to +39%).
        WorkloadSpec w;
        w.name = "465.tonto";
        w.depFraction = 0.25;
        w.memFraction = 0.36;
        w.branchFraction = 0.08;
        w.fpFraction = 0.8;
        w.streams = {stridedStream(4 * MB, 96, 0.7, 0.0, 12, 0.2),
                     stridedStream(2 * MB, 64, 0.3, 0.3, 12, 0.2)};
        add(w);
    }
    {   // 470.lbm: lattice Boltzmann; cell stride 5 lines with a second
        // field at +3 lines: peaks at k*5, secondary peaks at k*5+3
        // (paper Fig. 8). Store-heavy, huge WS.
        WorkloadSpec w;
        w.name = "470.lbm";
        w.depFraction = 0.25;
        w.memFraction = 0.38;
        w.branchFraction = 0.04;
        w.fpFraction = 0.8;
        StreamSpec a = stridedStream(40 * MB, 5 * 64, 1.0, 0.3, 16);
        a.regionId = 60;
        a.sharedPcGroup = 11;
        StreamSpec b = stridedStream(40 * MB, 5 * 64, 0.8, 0.5, 16);
        b.regionId = 60;
        b.phaseBytes = 3 * 64;
        b.sharedPcGroup = 11;
        w.streams = {a, b};
        add(w);
    }
    {   // 471.omnetpp: discrete event simulation; pointer-heavy.
        WorkloadSpec w;
        w.name = "471.omnetpp";
        w.depFraction = 0.4;
        w.memFraction = 0.38;
        w.branchFraction = 0.18;
        w.branchRandomFraction = 0.12;
        w.branchBias = 0.65;
        w.streams = {chaseStream(3 * MB, 0.5, 6, 0.3),
                     randomStream(1 * MB, 0.25, 0.0, 6, 0.5),
                     seqStream(2 * MB, 16, 0.25, 0.3, 3, 0.3)};
        add(w);
    }
    {   // 473.astar: path finding; pointer chasing, medium WS.
        WorkloadSpec w;
        w.name = "473.astar";
        w.depFraction = 0.4;
        w.memFraction = 0.40;
        w.branchFraction = 0.17;
        w.branchRandomFraction = 0.15;
        w.branchBias = 0.6;
        w.streams = {chaseStream(2 * MB, 0.5, 6, 0.3),
                     stridedStream(2 * MB, 64, 0.3, 0.0, 12, 0.3),
                     randomStream(512 * KB, 0.2, 0.0, 6, 0.5)};
        add(w);
    }
    {   // 481.wrf: weather model; multi-stride FP stencils.
        WorkloadSpec w;
        w.name = "481.wrf";
        w.depFraction = 0.25;
        w.memFraction = 0.35;
        w.branchFraction = 0.08;
        w.fpFraction = 0.75;
        w.streams = {seqStream(12 * MB, 8, 0.5, 0.0, 3, 0.2),
                     stridedStream(8 * MB, 320, 0.3, 0.2, 16, 0.2),
                     stridedStream(6 * MB, 192, 0.2, 0.0, 16, 0.2)};
        add(w);
    }
    {   // 482.sphinx3: speech recognition; sequential scoring sweeps.
        WorkloadSpec w;
        w.name = "482.sphinx3";
        w.depFraction = 0.25;
        w.memFraction = 0.36;
        w.branchFraction = 0.11;
        w.fpFraction = 0.6;
        w.streams = {seqStream(5 * MB, 8, 0.7, 0.0, 3, 0.2),
                     randomStream(512 * KB, 0.3, 0.0, 6, 0.5)};
        add(w);
    }
    {   // 483.xalancbmk: XSLT; pointer-heavy, branchy.
        WorkloadSpec w;
        w.name = "483.xalancbmk";
        w.depFraction = 0.4;
        w.memFraction = 0.38;
        w.branchFraction = 0.21;
        w.branchRandomFraction = 0.12;
        w.branchBias = 0.65;
        w.streams = {chaseStream(2 * MB, 0.45, 6, 0.35),
                     randomStream(2 * MB, 0.3, 0.0, 6, 0.4),
                     seqStream(1 * MB, 16, 0.25, 0.2, 3, 0.3)};
        add(w);
    }

    return specs;
}

const std::map<std::string, WorkloadSpec> &
specTable()
{
    static const std::map<std::string, WorkloadSpec> specs = buildSpecs();
    return specs;
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &[name, spec] : specTable())
            v.push_back(name);
        return v; // std::map iterates in lexicographic = paper order
    }();
    return names;
}

std::string
shortName(const std::string &benchmark)
{
    const auto dot = benchmark.find('.');
    return dot == std::string::npos ? benchmark : benchmark.substr(0, dot);
}

WorkloadSpec
workloadSpec(const std::string &benchmark)
{
    const auto it = specTable().find(benchmark);
    if (it == specTable().end())
        throw std::invalid_argument("unknown benchmark: " + benchmark);
    return it->second;
}

std::unique_ptr<TraceSource>
makeWorkload(const std::string &benchmark, std::uint64_t seed)
{
    return std::make_unique<SyntheticTrace>(workloadSpec(benchmark), seed);
}

std::unique_ptr<TraceSource>
makeThrasher(std::uint64_t seed)
{
    return std::make_unique<SyntheticTrace>(makeThrasherSpec(), seed);
}

const std::vector<std::string> &
memoryHeavyBenchmarks()
{
    static const std::vector<std::string> names = {
        "403.gcc",     "410.bwaves",      "429.mcf",  "433.milc",
        "434.zeusmp",  "436.cactusADM",   "437.leslie3d",
        "447.dealII",  "450.soplex",      "459.GemsFDTD",
        "462.libquantum", "470.lbm",      "471.omnetpp",
        "473.astar",   "481.wrf",         "483.xalancbmk",
    };
    return names;
}

} // namespace bop
