/**
 * @file
 * Binary trace file I/O: the native BOPTRACE container, and the
 * looping FileTrace replay source that accepts every format the
 * pluggable frontend (trace_reader.hh) can decode.
 *
 * The paper drives its simulator with Pin traces; this repository's
 * built-in workloads are generative, but a downstream user will want
 * to run their *own* traces — either captures made with `boptrace`
 * or ChampSim/DPC traces from the community. This module defines the
 * native on-disk format (the natural serialisation of TraceInstr), a
 * writer, and a TraceSource that replays a file — in a loop, because
 * the simulator's trace sources are endless streams (Sec. 5: samples
 * are stitched together and the harness decides the instruction
 * budget).
 *
 * BOPTRACE format: a 24-byte header (magic "BOPTRACE", 4-byte
 * version, 4 bytes reserved, 8-byte record count) followed by
 * fixed-size 19-byte little-endian records:
 *
 *   byte  0      kind (InstrKind) | flags (taken=0x10, dep=0x20)
 *   bytes 1..8   pc
 *   bytes 9..16  vaddr (loads/stores; 0 otherwise)
 *   bytes 17..18 reserved (zero)
 *
 * Fixed-size records keep random access trivial (sampling, slicing);
 * traces compress well externally if storage matters. The normative
 * byte-level specification of this format — and of the supported
 * ChampSim record layout — lives in docs/TRACE_FORMATS.md.
 */

#ifndef BOP_TRACE_TRACE_IO_HH
#define BOP_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "trace/trace_reader.hh"

namespace bop
{

/** Magic bytes at the start of every trace file. */
constexpr char traceMagic[8] = {'B', 'O', 'P', 'T', 'R', 'A', 'C', 'E'};

/** Current trace format version. */
constexpr std::uint32_t traceVersion = 1;

/** Size of one serialised record in bytes. */
constexpr std::size_t traceRecordBytes = 19;

/** Little-endian u64 store, shared by every format reader/writer. */
inline void
putLE64(unsigned char *buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
}

/** Little-endian u64 load. */
inline std::uint64_t
getLE64(const unsigned char *buf)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return v;
}

/** Serialise one record into @p buf (traceRecordBytes bytes). */
void encodeTraceInstr(const TraceInstr &instr, unsigned char *buf);

/** Deserialise one record from @p buf. */
TraceInstr decodeTraceInstr(const unsigned char *buf);

/** Streaming BOPTRACE file writer. */
class TraceWriter : public TraceSink
{
  public:
    /** Open @p path for writing; throws std::runtime_error on failure. */
    explicit TraceWriter(const std::string &path);

    /** Flushes the header (record count) and closes the file. */
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction. */
    void append(const TraceInstr &instr) override;

    /** Records written so far. */
    std::uint64_t count() const override { return numRecords; }

    /** Finalise explicitly (also done by the destructor). */
    void close() override;

    TraceFormat format() const override { return TraceFormat::Boptrace; }

  private:
    std::ofstream out;
    std::string path;
    std::uint64_t numRecords = 0;
    bool closed = false;
};

/**
 * TraceSource replaying a trace file in an endless loop.
 *
 * The file's format and compression are autodetected
 * (openTraceReader); the whole decoded trace is loaded into memory at
 * construction (records are small; a 50M-instruction sample is under
 * 2GB — the paper-scale use case; for this repository's budgets files
 * are tiny). A BOPTRACE file whose payload size disagrees with its
 * header record count is rejected with the byte offset of the
 * mismatch.
 */
class FileTrace : public TraceSource
{
  public:
    /**
     * Load @p path; throws std::runtime_error on malformed files.
     *
     * @param skip    instructions to discard before the replay window
     *                (a byte seek for BOPTRACE's fixed records,
     *                streaming decode-and-discard for ChampSim input)
     * @param sample  cap on the window length in instructions; 0 means
     *                "to the end of the trace". SimPoint-style region
     *                slicing of long DPC traces: `--skip N --sample M`
     *                replays [N, N+M) in a loop.
     *
     * A window that selects no instructions (skip at or past the end
     * of the trace) is rejected.
     */
    explicit FileTrace(const std::string &path, std::uint64_t skip = 0,
                       std::uint64_t sample = 0);

    TraceInstr next() override;
    std::string name() const override { return label; }

    std::uint64_t records() const { return instrs.size(); }

    /** On-disk format the file was decoded from. */
    TraceFormat format() const { return fmt; }

    /** Compression the file was read through. */
    TraceCompression compression() const { return comp; }

    /**
     * Provenance tag for run records, e.g. "lbm.champsim.xz
     * (champsim+xz)" — file name, decoded format, and compression
     * when any; a skip/sample window is appended as "[skip=N]" /
     * "[skip=N,sample=M]" so sliced runs never alias full-trace runs
     * in bench artifacts.
     */
    std::string sourceTag() const;

    /**
     * Checkpoint the replay position (the decoded records themselves
     * are reloaded from the trace file at construction).
     */
    void
    serialize(Serializer &s) override
    {
        std::uint64_t pos64 = pos;
        s.value(pos64);
        if (s.loading()) {
            if (pos64 >= instrs.size())
                s.fail("trace replay position out of range");
            pos = static_cast<std::size_t>(pos64);
        }
    }

  private:
    std::string label;
    TraceFormat fmt = TraceFormat::Boptrace;
    TraceCompression comp = TraceCompression::None;
    std::uint64_t skipped = 0;  ///< window start (instructions)
    std::uint64_t sampled = 0;  ///< requested window cap (0 = rest)
    std::vector<TraceInstr> instrs;
    std::size_t pos = 0;
};

/**
 * Capture @p count instructions from @p source into file @p path,
 * serialised as @p format (default: whatever the path's extension
 * implies — `.champsim`/`.champsimtrace`/`.trace` produce ChampSim
 * records, everything else BOPTRACE).
 * Returns the number of records written (== count).
 */
std::uint64_t captureTrace(TraceSource &source, std::uint64_t count,
                           const std::string &path);
std::uint64_t captureTrace(TraceSource &source, std::uint64_t count,
                           const std::string &path, TraceFormat format);

} // namespace bop

#endif // BOP_TRACE_TRACE_IO_HH
