/**
 * @file
 * Binary trace file I/O.
 *
 * The paper drives its simulator with Pin traces; this repository's
 * built-in workloads are generative, but a downstream user will want
 * to run their *own* traces. This module defines a compact record
 * format (the natural serialisation of TraceInstr), a writer, and a
 * TraceSource that replays a file — in a loop, because the simulator's
 * trace sources are endless streams (Sec. 5: samples are stitched
 * together and the harness decides the instruction budget).
 *
 * Format: a 24-byte header (magic "BOPTRACE", 4-byte version, 4 bytes
 * reserved, 8-byte record count) followed by fixed-size 19-byte
 * little-endian records:
 *
 *   byte  0      kind (InstrKind) | flags (taken=0x10, dep=0x20)
 *   bytes 1..8   pc
 *   bytes 9..16  vaddr (loads/stores; 0 otherwise)
 *   bytes 17..18 reserved (zero)
 *
 * Fixed-size records keep random access trivial (sampling, slicing);
 * traces compress well externally if storage matters.
 */

#ifndef BOP_TRACE_TRACE_IO_HH
#define BOP_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace bop
{

/** Magic bytes at the start of every trace file. */
constexpr char traceMagic[8] = {'B', 'O', 'P', 'T', 'R', 'A', 'C', 'E'};

/** Current trace format version. */
constexpr std::uint32_t traceVersion = 1;

/** Size of one serialised record in bytes. */
constexpr std::size_t traceRecordBytes = 19;

/** Serialise one record into @p buf (traceRecordBytes bytes). */
void encodeTraceInstr(const TraceInstr &instr, unsigned char *buf);

/** Deserialise one record from @p buf. */
TraceInstr decodeTraceInstr(const unsigned char *buf);

/** Streaming trace file writer. */
class TraceWriter
{
  public:
    /** Open @p path for writing; throws std::runtime_error on failure. */
    explicit TraceWriter(const std::string &path);

    /** Flushes the header (record count) and closes the file. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction. */
    void append(const TraceInstr &instr);

    /** Records written so far. */
    std::uint64_t count() const { return numRecords; }

    /** Finalise explicitly (also done by the destructor). */
    void close();

  private:
    std::ofstream out;
    std::string path;
    std::uint64_t numRecords = 0;
    bool closed = false;
};

/**
 * TraceSource replaying a trace file in an endless loop.
 *
 * The whole file is loaded into memory at construction (records are
 * 19 bytes; a 50M-instruction sample is under 1GB — the paper-scale
 * use case; for this repository's budgets files are tiny).
 */
class FileTrace : public TraceSource
{
  public:
    /** Load @p path; throws std::runtime_error on malformed files. */
    explicit FileTrace(const std::string &path);

    TraceInstr next() override;
    std::string name() const override { return label; }

    std::uint64_t records() const { return instrs.size(); }

  private:
    std::string label;
    std::vector<TraceInstr> instrs;
    std::size_t pos = 0;
};

/**
 * Capture @p count instructions from @p source into file @p path.
 * Returns the number of records written (== count).
 */
std::uint64_t captureTrace(TraceSource &source, std::uint64_t count,
                           const std::string &path);

} // namespace bop

#endif // BOP_TRACE_TRACE_IO_HH
