/**
 * @file
 * Instruction trace interface.
 *
 * The paper drives its simulator with Pin traces of SPEC CPU2006; we
 * drive ours with deterministic synthetic generators (see workloads.hh)
 * exposing the same information a trace record carries: instruction
 * kind, PC, data virtual address for memory ops, and branch outcome.
 *
 * `dependsOnPrevLoad` models the data-dependence structure that decides
 * memory-level parallelism: a dependent instruction cannot execute (and
 * a dependent load cannot even issue its access) before the most recent
 * preceding load completes. Pointer-chasing workloads set it on nearly
 * every load; streaming workloads on almost none.
 */

#ifndef BOP_TRACE_TRACE_HH
#define BOP_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/serializer.hh"
#include "common/types.hh"

namespace bop
{

/** Kind of a trace instruction. */
enum class InstrKind : std::uint8_t
{
    IntOp,   ///< short-latency ALU op
    FpOp,    ///< longer-latency FP op
    Load,
    Store,
    Branch,  ///< conditional branch
};

/** One trace record. */
struct TraceInstr
{
    InstrKind kind = InstrKind::IntOp;
    Addr pc = 0;
    Addr vaddr = 0;          ///< loads/stores only
    bool taken = false;      ///< branches only
    bool dependsOnPrevLoad = false;

    /** Checkpoint every field (records can sit in a core's ROB). */
    void
    serialize(Serializer &s)
    {
        s.value(kind);
        s.value(pc);
        s.value(vaddr);
        s.value(taken);
        s.value(dependsOnPrevLoad);
    }
};

/** An endless, deterministic instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next instruction (streams never end). */
    virtual TraceInstr next() = 0;

    /** Name of the workload (e.g. "462.libquantum"). */
    virtual std::string name() const = 0;

    /**
     * Checkpoint the source's read position and generator state.
     * Default: stateless source (nothing to save).
     */
    virtual void serialize(Serializer &s) { (void)s; }
};

} // namespace bop

#endif // BOP_TRACE_TRACE_HH
