#include "trace/trace_io.hh"

#include <cstring>
#include <stdexcept>

namespace bop
{

namespace
{

void
put64(unsigned char *buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
get64(const unsigned char *buf)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return v;
}

constexpr unsigned char kindMask = 0x0f;
constexpr unsigned char takenFlag = 0x10;
constexpr unsigned char depFlag = 0x20;

} // namespace

void
encodeTraceInstr(const TraceInstr &instr, unsigned char *buf)
{
    unsigned char head =
        static_cast<unsigned char>(instr.kind) & kindMask;
    if (instr.taken)
        head |= takenFlag;
    if (instr.dependsOnPrevLoad)
        head |= depFlag;
    buf[0] = head;
    put64(buf + 1, instr.pc);
    put64(buf + 9, instr.vaddr);
    buf[17] = 0;
    buf[18] = 0;
}

TraceInstr
decodeTraceInstr(const unsigned char *buf)
{
    TraceInstr instr;
    const unsigned char head = buf[0];
    const unsigned char kind = head & kindMask;
    if (kind > static_cast<unsigned char>(InstrKind::Branch))
        throw std::runtime_error("trace record with invalid kind");
    instr.kind = static_cast<InstrKind>(kind);
    instr.taken = (head & takenFlag) != 0;
    instr.dependsOnPrevLoad = (head & depFlag) != 0;
    instr.pc = get64(buf + 1);
    instr.vaddr = get64(buf + 9);
    return instr;
}

// -- TraceWriter --------------------------------------------------------------

TraceWriter::TraceWriter(const std::string &path_)
    : out(path_, std::ios::binary | std::ios::trunc), path(path_)
{
    if (!out)
        throw std::runtime_error("TraceWriter: cannot open " + path);
    // Header: magic, version, record count (patched on close).
    unsigned char header[16];
    std::memcpy(header, traceMagic, 8);
    std::uint32_t ver = traceVersion;
    for (int i = 0; i < 4; ++i)
        header[8 + i] = static_cast<unsigned char>(ver >> (8 * i));
    header[12] = header[13] = header[14] = header[15] = 0;
    out.write(reinterpret_cast<const char *>(header), sizeof(header));
    // Record count lives after the fixed header.
    unsigned char zero[8] = {};
    out.write(reinterpret_cast<const char *>(zero), sizeof(zero));
}

TraceWriter::~TraceWriter()
{
    // Destructors must not throw: swallow close errors here. Callers
    // that care about the result (captureTrace, the CLI) call close()
    // explicitly and get the exception.
    try {
        close();
    } catch (...) {
    }
}

void
TraceWriter::append(const TraceInstr &instr)
{
    if (closed)
        throw std::runtime_error("TraceWriter: append after close");
    unsigned char buf[traceRecordBytes];
    encodeTraceInstr(instr, buf);
    out.write(reinterpret_cast<const char *>(buf), sizeof(buf));
    ++numRecords;
}

void
TraceWriter::close()
{
    if (closed)
        return;
    closed = true;
    // Patch the record count at offset 16.
    out.seekp(16);
    unsigned char buf[8];
    put64(buf, numRecords);
    out.write(reinterpret_cast<const char *>(buf), sizeof(buf));
    out.close();
    if (!out)
        throw std::runtime_error("TraceWriter: error closing " + path);
}

// -- FileTrace ----------------------------------------------------------------

FileTrace::FileTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("FileTrace: cannot open " + path);

    unsigned char header[24];
    in.read(reinterpret_cast<char *>(header), sizeof(header));
    if (!in || std::memcmp(header, traceMagic, 8) != 0)
        throw std::runtime_error("FileTrace: bad magic in " + path);
    std::uint32_t ver = 0;
    for (int i = 0; i < 4; ++i)
        ver |= static_cast<std::uint32_t>(header[8 + i]) << (8 * i);
    if (ver != traceVersion)
        throw std::runtime_error("FileTrace: unsupported version in " +
                                 path);
    const std::uint64_t count = get64(header + 16);
    if (count == 0)
        throw std::runtime_error("FileTrace: empty trace " + path);

    instrs.reserve(count);
    unsigned char buf[traceRecordBytes];
    for (std::uint64_t i = 0; i < count; ++i) {
        in.read(reinterpret_cast<char *>(buf), sizeof(buf));
        if (!in) {
            throw std::runtime_error(
                "FileTrace: truncated trace " + path);
        }
        instrs.push_back(decodeTraceInstr(buf));
    }

    // Label = file name without directories.
    const auto slash = path.find_last_of('/');
    label = slash == std::string::npos ? path : path.substr(slash + 1);
}

TraceInstr
FileTrace::next()
{
    const TraceInstr &instr = instrs[pos];
    pos = (pos + 1) % instrs.size();
    return instr;
}

// -- capture helper -----------------------------------------------------------

std::uint64_t
captureTrace(TraceSource &source, std::uint64_t count,
             const std::string &path)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.append(source.next());
    writer.close();
    return writer.count();
}

} // namespace bop
