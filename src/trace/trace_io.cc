#include "trace/trace_io.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "trace/trace_reader.hh"

namespace bop
{

namespace
{

constexpr unsigned char kindMask = 0x0f;
constexpr unsigned char takenFlag = 0x10;
constexpr unsigned char depFlag = 0x20;

} // namespace

void
encodeTraceInstr(const TraceInstr &instr, unsigned char *buf)
{
    unsigned char head =
        static_cast<unsigned char>(instr.kind) & kindMask;
    if (instr.taken)
        head |= takenFlag;
    if (instr.dependsOnPrevLoad)
        head |= depFlag;
    buf[0] = head;
    putLE64(buf + 1, instr.pc);
    putLE64(buf + 9, instr.vaddr);
    buf[17] = 0;
    buf[18] = 0;
}

TraceInstr
decodeTraceInstr(const unsigned char *buf)
{
    TraceInstr instr;
    const unsigned char head = buf[0];
    const unsigned char kind = head & kindMask;
    if (kind > static_cast<unsigned char>(InstrKind::Branch))
        throw std::runtime_error("trace record with invalid kind");
    instr.kind = static_cast<InstrKind>(kind);
    instr.taken = (head & takenFlag) != 0;
    instr.dependsOnPrevLoad = (head & depFlag) != 0;
    instr.pc = getLE64(buf + 1);
    instr.vaddr = getLE64(buf + 9);
    return instr;
}

// -- TraceWriter --------------------------------------------------------------

TraceWriter::TraceWriter(const std::string &path_)
    : out(path_, std::ios::binary | std::ios::trunc), path(path_)
{
    if (!out)
        throw std::runtime_error("TraceWriter: cannot open " + path);
    // Header: magic, version, record count (patched on close).
    unsigned char header[16];
    std::memcpy(header, traceMagic, 8);
    std::uint32_t ver = traceVersion;
    for (int i = 0; i < 4; ++i)
        header[8 + i] = static_cast<unsigned char>(ver >> (8 * i));
    header[12] = header[13] = header[14] = header[15] = 0;
    out.write(reinterpret_cast<const char *>(header), sizeof(header));
    // Record count lives after the fixed header.
    unsigned char zero[8] = {};
    out.write(reinterpret_cast<const char *>(zero), sizeof(zero));
}

TraceWriter::~TraceWriter()
{
    // Destructors must not throw: swallow close errors here. Callers
    // that care about the result (captureTrace, the CLI) call close()
    // explicitly and get the exception.
    try {
        close();
    } catch (...) {
    }
}

void
TraceWriter::append(const TraceInstr &instr)
{
    if (closed)
        throw std::runtime_error("TraceWriter: append after close");
    unsigned char buf[traceRecordBytes];
    encodeTraceInstr(instr, buf);
    out.write(reinterpret_cast<const char *>(buf), sizeof(buf));
    ++numRecords;
}

void
TraceWriter::close()
{
    if (closed)
        return;
    closed = true;
    // Patch the record count at offset 16.
    out.seekp(16);
    unsigned char buf[8];
    putLE64(buf, numRecords);
    out.write(reinterpret_cast<const char *>(buf), sizeof(buf));
    out.close();
    if (!out)
        throw std::runtime_error("TraceWriter: error closing " + path);
}

// -- FileTrace ----------------------------------------------------------------

FileTrace::FileTrace(const std::string &path, std::uint64_t skip,
                     std::uint64_t sample)
    : skipped(skip), sampled(sample)
{
    auto reader = openTraceReader(path);
    fmt = reader->format();
    comp = reader->compression();

    if (skip > 0 && reader->skipInstructions(skip) < skip) {
        throw std::runtime_error(
            "FileTrace: --skip " + std::to_string(skip) +
            " reaches past the end of " + path);
    }

    // The header count steers the reserve but is capped: on a piped
    // (compressed) stream it cannot be cross-checked against the
    // payload size up front, and a lying header must produce the
    // reader's truncation diagnostic, not a bad_alloc here.
    constexpr std::uint64_t reserveCap = 1u << 24;
    std::uint64_t reserve = sample;
    if (const std::uint64_t declared = reader->declaredRecords()) {
        const std::uint64_t rest = declared - skip;
        reserve = sample ? std::min(sample, rest) : rest;
    }
    if (reserve)
        instrs.reserve(std::min(reserve, reserveCap));
    TraceInstr instr;
    while ((sample == 0 || instrs.size() < sample) &&
           reader->next(instr))
        instrs.push_back(instr);
    if (instrs.empty())
        throw std::runtime_error("FileTrace: empty trace " + path);

    // Label = file name without directories.
    const auto slash = path.find_last_of('/');
    label = slash == std::string::npos ? path : path.substr(slash + 1);
}

TraceInstr
FileTrace::next()
{
    const TraceInstr &instr = instrs[pos];
    pos = (pos + 1) % instrs.size();
    return instr;
}

std::string
FileTrace::sourceTag() const
{
    std::string tag = label + " (" + traceFormatName(fmt);
    if (comp != TraceCompression::None)
        tag += std::string("+") + traceCompressionName(comp);
    tag += ")";
    if (skipped || sampled) {
        tag += "[skip=" + std::to_string(skipped);
        if (sampled)
            tag += ",sample=" + std::to_string(sampled);
        tag += "]";
    }
    return tag;
}

// -- capture helper -----------------------------------------------------------

std::uint64_t
captureTrace(TraceSource &source, std::uint64_t count,
             const std::string &path)
{
    return captureTrace(source, count, path, traceFormatForPath(path));
}

std::uint64_t
captureTrace(TraceSource &source, std::uint64_t count,
             const std::string &path, TraceFormat format)
{
    auto sink = makeTraceSink(path, format);
    for (std::uint64_t i = 0; i < count; ++i)
        sink->append(source.next());
    sink->close();
    return sink->count();
}

} // namespace bop
