#include "trace/generators.hh"

#include <cassert>

namespace bop
{

SyntheticTrace::SyntheticTrace(WorkloadSpec spec_, std::uint64_t seed)
    : spec(std::move(spec_)),
      rng(seed ^ splitmix64(0xabcdef ^ spec.name.size()))
{
    assert(!spec.streams.empty());

    double cum = 0.0;
    for (std::size_t i = 0; i < spec.streams.size(); ++i) {
        const StreamSpec &ss = spec.streams[i];
        StreamState st;
        st.spec = &spec.streams[i];

        // Disjoint 16GB-aligned virtual regions per region id (streams
        // sharing a regionId interleave within one region via phase).
        const int region = ss.regionId >= 0 ? ss.regionId
                                            : static_cast<int>(i) + 64;
        st.base = (static_cast<Addr>(region) + 1) * (1ull << 34) +
                  ss.phaseBytes;

        // PC layout: shared groups collapse onto one PC range.
        const int pc_group = ss.sharedPcGroup >= 0
                                 ? ss.sharedPcGroup
                                 : static_cast<int>(i) + 32;
        st.pcBase = 0x400000 + static_cast<Addr>(pc_group) * 0x1000;

        st.chase = splitmix64(seed + i);
        streams.push_back(st);
        cum += ss.weight;
        cumWeights.push_back(cum);
    }
    opPc = 0x7f0000;
}

Addr
SyntheticTrace::patternAddr(StreamState &st)
{
    const StreamSpec &ss = *st.spec;
    switch (ss.pattern) {
      case StreamPattern::Sequential:
      case StreamPattern::Strided: {
        const Addr a = st.base + st.cursor;
        // This runs per generated memory access and the runtime-divisor
        // division was measurable: one subtract covers the common
        // forward stride, the modulo keeps large/negative (wrapped)
        // steps O(1) with the exact old ring semantics.
        st.cursor += static_cast<std::uint64_t>(ss.stepBytes);
        if (st.cursor >= ss.regionBytes) {
            st.cursor -= ss.regionBytes;
            if (st.cursor >= ss.regionBytes)
                st.cursor %= ss.regionBytes;
        }
        return a;
      }
      case StreamPattern::PointerChase: {
        st.chase = splitmix64(st.chase);
        const std::uint64_t region_lines = ss.regionBytes >> lineShift;
        const std::uint64_t prev_line =
            (st.chasePrev - st.base) >> lineShift;
        std::uint64_t line;
        if (st.chasePrev != 0 &&
            static_cast<double>(st.chase & 0xffff) <
                ss.chaseLocality * 65536.0) {
            // Allocation-order locality: neighbour node, 1..4 lines on.
            line = (prev_line + 1 + ((st.chase >> 16) & 3)) %
                   region_lines;
        } else {
            line = (st.chase >> 16) % region_lines;
        }
        const Addr a = st.base + (line << lineShift);
        st.chasePrev = a;
        return a;
      }
      case StreamPattern::Random: {
        const std::uint64_t line =
            rng.next() % (ss.regionBytes >> lineShift);
        return st.base + (line << lineShift);
      }
    }
    return st.base;
}

Addr
SyntheticTrace::streamAddr(StreamState &st)
{
    const StreamSpec &ss = *st.spec;

    // Temporal reuse: revisit a random recent element (DL1-resident
    // short-range locality).
    st.lastWasReuse = false;
    if (ss.reuseFraction > 0.0 && !st.recent.empty() &&
        rng.chance(ss.reuseFraction)) {
        st.lastWasReuse = true;
        st.lastSubIndex = static_cast<int>(rng.below(8));
        const Addr elem = st.recent[rng.below(st.recent.size())];
        return elem + static_cast<Addr>(st.lastSubIndex) * 8;
    }

    // Multiple accesses per element: read several "fields" of the
    // element (same line, +8B offsets — DL1 hits after the first)
    // before moving the cursor on. Each field index is produced by a
    // distinct PC (see next()), so per-PC strides remain constant and
    // the DL1 stride prefetcher sees what it would see in real code.
    if (ss.accessesPerElement > 1) {
        if (st.subAccess == 0 || st.elementAddr == 0) {
            st.elementAddr = ss.scramble > 0.0 ? scrambledAddr(st)
                                               : patternAddr(st);
            rememberElement(st, st.elementAddr);
        }
        st.lastSubIndex = st.subAccess;
        const Addr a =
            st.elementAddr + static_cast<Addr>(st.subAccess % 8) * 8;
        if (++st.subAccess == ss.accessesPerElement)
            st.subAccess = 0;
        return a;
    }

    st.lastSubIndex = 0;
    const Addr a = ss.scramble <= 0.0 ? patternAddr(st)
                                      : scrambledAddr(st);
    rememberElement(st, a);
    return a;
}

void
SyntheticTrace::rememberElement(StreamState &st, Addr elem)
{
    if (st.spec->reuseFraction <= 0.0)
        return;
    constexpr std::size_t ring = 16;
    if (st.recent.size() < ring) {
        st.recent.push_back(elem);
    } else {
        st.recent[st.recentPos] = elem;
        st.recentPos = (st.recentPos + 1) % ring;
    }
}

Addr
SyntheticTrace::scrambledAddr(StreamState &st)
{
    const StreamSpec &ss = *st.spec;

    // Scrambling (Sec. 3.1): keep a small pool of upcoming addresses
    // and emit them mildly out of order.
    constexpr std::size_t pool_size = 8;
    while (st.pool.size() < pool_size)
        st.pool.push_back(patternAddr(st));
    std::size_t pick = 0;
    if (rng.chance(ss.scramble))
        pick = rng.below(st.pool.size());
    const Addr a = st.pool[pick];
    st.pool.erase(st.pool.begin() + static_cast<std::ptrdiff_t>(pick));
    return a;
}

TraceInstr
SyntheticTrace::next()
{
    TraceInstr instr;
    const double r =
        static_cast<double>(rng.next() >> 11) * (1.0 / 9007199254740992.0);

    if (r < spec.memFraction) {
        // Pick a stream by weight.
        const double total = cumWeights.back();
        const double pick = static_cast<double>(rng.next() >> 11) *
                            (1.0 / 9007199254740992.0) * total;
        std::size_t idx = 0;
        while (idx + 1 < cumWeights.size() && pick >= cumWeights[idx])
            ++idx;
        StreamState &st = streams[idx];
        const StreamSpec &ss = *st.spec;

        instr.vaddr = streamAddr(st);
        instr.kind = rng.chance(ss.storeRatio) ? InstrKind::Store
                                               : InstrKind::Load;
        // One PC per element field (so each PC's stride is constant);
        // multi-PC streams additionally rotate through pcCount PCs.
        // Reuse accesses are separate instructions in real code, so
        // they use their own PC range and never pollute the stride
        // history of the streaming PCs.
        instr.pc = st.pcBase +
                   static_cast<Addr>(st.lastSubIndex) * 4 +
                   static_cast<Addr>(st.pcIndex) * 64 +
                   (st.lastWasReuse ? 0x800 : 0);
        if (ss.pcCount > 1 && ++st.pcIndex == ss.pcCount)
            st.pcIndex = 0;

        instr.dependsOnPrevLoad =
            ss.pattern == StreamPattern::PointerChase ||
            rng.chance(spec.depFraction);
    } else if (r < spec.memFraction + spec.branchFraction) {
        instr.kind = InstrKind::Branch;
        if (rng.chance(spec.branchRandomFraction)) {
            // Data-dependent, hard-to-predict branch.
            instr.pc = 0x500000;
            instr.taken = rng.chance(spec.branchBias);
            instr.dependsOnPrevLoad = rng.chance(0.5);
        } else {
            // Loop branch: taken except every loopPeriod-th execution
            // (phase counter == the modulo, without the division).
            instr.pc = 0x500100;
            ++loopCounter;
            if (loopCounter == static_cast<std::uint64_t>(spec.loopPeriod))
                loopCounter = 0;
            instr.taken = loopCounter != 0;
        }
    } else {
        instr.kind = rng.chance(spec.fpFraction) ? InstrKind::FpOp
                                                 : InstrKind::IntOp;
        instr.pc = opPc;
        instr.dependsOnPrevLoad = rng.chance(spec.opDepFraction);
    }
    return instr;
}

WorkloadSpec
makeThrasherSpec()
{
    WorkloadSpec w;
    w.name = "thrasher";
    w.memFraction = 0.6;
    w.branchFraction = 0.05;
    w.branchRandomFraction = 0.0;
    w.loopPeriod = 64;
    w.opDepFraction = 0.0;
    StreamSpec s;
    s.pattern = StreamPattern::Sequential;
    s.regionBytes = 64ull << 20; // 64MB: 8x the L3
    s.stepBytes = 8;             // write every word, like a huge memset
    s.storeRatio = 1.0;
    w.streams.push_back(s);
    return w;
}

} // namespace bop
