/**
 * @file
 * The 29 SPEC CPU2006-like synthetic workloads.
 *
 * Each workload reproduces the documented memory behaviour of its
 * namesake as far as offset prefetching is concerned (working-set size,
 * line-stride structure, MLP/dependence structure, branch behaviour).
 * The four benchmarks the paper analyses in Fig. 8 are shaped exactly
 * to their described offset-response curves:
 *
 *   433.milc        strided, period 32 lines, huge WS (peaks at k*32)
 *   459.GemsFDTD    stride ~29.3 lines (peaks near k*29, off-list)
 *   470.lbm         two fields, stride 5 lines with +3-line phase
 *                   (peaks at k*5, secondary at k*5+3)
 *   462.libquantum  long sequential streams, bandwidth-bound
 *
 * See DESIGN.md for the substitution rationale.
 */

#ifndef BOP_TRACE_WORKLOADS_HH
#define BOP_TRACE_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/generators.hh"
#include "trace/trace.hh"

namespace bop
{

/** The 29 benchmark names, in the paper's x-axis order. */
const std::vector<std::string> &benchmarkNames();

/** Short names (the numeric prefix) used on the paper's x-axes. */
std::string shortName(const std::string &benchmark);

/** Spec for one benchmark (throws on unknown name). */
WorkloadSpec workloadSpec(const std::string &benchmark);

/** Build a trace source for one benchmark. */
std::unique_ptr<TraceSource> makeWorkload(const std::string &benchmark,
                                          std::uint64_t seed);

/** Build the cache-thrashing micro-benchmark trace (Sec. 5.1). */
std::unique_ptr<TraceSource> makeThrasher(std::uint64_t seed);

/**
 * The benchmarks Fig. 13 plots (the ones with non-negligible DRAM
 * traffic; the paper omits the others).
 */
const std::vector<std::string> &memoryHeavyBenchmarks();

} // namespace bop

#endif // BOP_TRACE_WORKLOADS_HH
