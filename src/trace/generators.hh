/**
 * @file
 * Synthetic trace generation.
 *
 * A WorkloadSpec composes weighted access streams (sequential, strided,
 * pointer-chasing, uniform-random) with instruction-mix parameters
 * (memory/branch/FP fractions, dependence structure, branch behaviour).
 * SyntheticTrace turns a spec into a deterministic instruction stream.
 *
 * The streams are engineered to reproduce the *line-stride structure*
 * of the paper's workloads (Sec. 3 examples, Sec. 6 / Fig. 8 analysis):
 * that structure — not the exact instruction semantics — is what offset
 * prefetchers respond to. See workloads.cc for the 29 benchmark specs
 * and the substitution notes in DESIGN.md.
 */

#ifndef BOP_TRACE_GENERATORS_HH
#define BOP_TRACE_GENERATORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace bop
{

/** Address-pattern kind of one stream. */
enum class StreamPattern
{
    Sequential,   ///< cursor advances by stepBytes
    Strided,      ///< same mechanics, conventionally larger stride
    PointerChase, ///< random walk; loads depend on the previous load
    Random,       ///< uniform random in the region, independent
};

/** One memory access stream. */
struct StreamSpec
{
    StreamPattern pattern = StreamPattern::Sequential;
    std::uint64_t regionBytes = 1 << 20; ///< stream working set
    std::int64_t stepBytes = 64;         ///< cursor advance per element
    double weight = 1.0;                 ///< selection weight
    double storeRatio = 0.0;             ///< fraction of accesses storing
    double scramble = 0.0;               ///< out-of-order emission prob.
    /**
     * Accesses issued per element before the cursor advances. Real
     * programs read several fields of each record (sub-line accesses
     * that hit the DL1), which is what keeps SPEC L2 miss rates in the
     * tens-of-MPKI range instead of one miss per memory instruction.
     * Extra accesses touch the element's first line at +8B offsets.
     */
    int accessesPerElement = 1;
    /**
     * Probability that an access revisits one of the last 16 elements
     * instead of advancing — the short-range temporal locality that
     * makes compute-bound benchmarks live in the DL1.
     */
    double reuseFraction = 0.0;
    /**
     * PointerChase only: probability that the next node sits within a
     * few lines of the current one (allocation-order locality). Real
     * pointer-heavy codes allocate neighbouring nodes together, which
     * is what gives next-line prefetching its partial coverage on
     * them; 0 makes the chase uniformly random.
     */
    double chaseLocality = 0.35;
    /**
     * Line phase added to the region base, so multiple streams can
     * interleave inside one region (e.g. the 470.lbm-like two-field
     * pattern: stride 5 lines with a +3-line phase companion).
     */
    std::uint64_t phaseBytes = 0;
    /**
     * Region id: streams with equal region ids share one memory region
     * (phase-interleaved); distinct ids get disjoint regions.
     */
    int regionId = -1;
    /**
     * PC behaviour: 1 = a single load PC drives the stream (the DL1
     * stride prefetcher can learn it); N>1 = N PCs used round-robin;
     * sharedPcGroup >= 0 makes streams share a PC group, interleaving
     * their strides under one PC and defeating the PC-indexed DL1
     * prefetcher (as happens for 433.milc in the paper, Sec. 6 fn. 11).
     */
    int pcCount = 1;
    int sharedPcGroup = -1;
};

/** Full workload description. */
struct WorkloadSpec
{
    std::string name;
    double memFraction = 0.35;    ///< instructions that are loads/stores
    double branchFraction = 0.12; ///< instructions that are branches
    double fpFraction = 0.0;      ///< of plain ops, fraction FP
    double depFraction = 0.0;     ///< extra load-dep probability (mem ops)
    double opDepFraction = 0.1;   ///< plain ops depending on prev load
    /** Fraction of branches that are data-dependent & hard to predict. */
    double branchRandomFraction = 0.1;
    double branchBias = 0.5;      ///< taken-probability of random branches
    int loopPeriod = 16;          ///< loop branches: not-taken every Nth
    std::vector<StreamSpec> streams;
};

/** Deterministic trace source driven by a WorkloadSpec. */
class SyntheticTrace : public TraceSource
{
  public:
    SyntheticTrace(WorkloadSpec spec, std::uint64_t seed);

    TraceInstr next() override;
    std::string name() const override { return spec.name; }

    const WorkloadSpec &specification() const { return spec; }

    /**
     * Checkpoint the RNG (including its refill buffer position) and
     * every stream's mutable cursor state. The spec, the stream bases
     * and the PC layout are constructor-derived and not serialized;
     * the scramble pool and reuse ring hold addresses drawn during
     * generation and are.
     */
    void
    serialize(Serializer &s) override
    {
        const std::size_t n = streams.size();
        rng.serialize(s);
        s.seq(streams, [](Serializer &sr, StreamState &st) {
            sr.value(st.cursor);
            sr.value(st.chase);
            sr.value(st.chasePrev);
            sr.value(st.pcIndex);
            sr.value(st.elementAddr);
            sr.value(st.subAccess);
            sr.value(st.lastSubIndex);
            sr.value(st.lastWasReuse);
            sr.valueVec(st.pool);
            sr.valueVec(st.recent);
            std::uint64_t pos64 = st.recentPos;
            sr.value(pos64);
            if (sr.loading()) {
                if (!st.recent.empty() && pos64 >= st.recent.size())
                    sr.fail("reuse ring position out of range");
                st.recentPos = static_cast<std::size_t>(pos64);
            }
        });
        s.value(loopCounter);
        s.value(opPc);
        if (s.loading() && streams.size() != n)
            s.fail("synthetic trace stream count mismatch");
    }

  private:
    struct StreamState
    {
        const StreamSpec *spec = nullptr;
        Addr base = 0;
        std::uint64_t cursor = 0;
        std::uint64_t chase = 0;
        /**
         * Previous pointer-chase element (0 before the first), tracked
         * inside patternAddr so the chaseLocality neighbour branch
         * works for both accessesPerElement paths. elementAddr cannot
         * serve this role: the accessesPerElement == 1 path never sets
         * it, which used to silently disable the locality knob.
         */
        Addr chasePrev = 0;
        Addr pcBase = 0;
        int pcIndex = 0;
        Addr elementAddr = 0;   ///< current element's base address
        int subAccess = 0;      ///< accesses already made to the element
        int lastSubIndex = 0;   ///< field index of the last access
        bool lastWasReuse = false; ///< last access came from the ring
        std::vector<Addr> pool; ///< scramble lookahead pool
        std::vector<Addr> recent; ///< ring of recent elements (reuse)
        std::size_t recentPos = 0;
    };

    /** Next address for a stream, honouring pattern and scramble. */
    Addr streamAddr(StreamState &st);
    /** Pattern address drawn through the scramble pool. */
    Addr scrambledAddr(StreamState &st);
    /** Record an element in the stream's reuse ring. */
    void rememberElement(StreamState &st, Addr elem);
    /** Raw in-order next address of the stream's pattern. */
    Addr patternAddr(StreamState &st);

    WorkloadSpec spec;
    /** Buffered so per-instruction draw bursts refill in one tight
     *  loop; the draw stream is bit-identical to a plain Rng. */
    BufferedRng rng;
    std::vector<StreamState> streams;
    std::vector<double> cumWeights;
    std::uint64_t loopCounter = 0;
    Addr opPc = 0;
};

/**
 * The Sec. 5.1 cache-thrashing micro-benchmark: writes a huge array,
 * "going through the array quickly and sequentially".
 */
WorkloadSpec makeThrasherSpec();

} // namespace bop

#endif // BOP_TRACE_GENERATORS_HH
