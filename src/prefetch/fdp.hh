/**
 * @file
 * Feedback-Directed Prefetching (FDP) [Srinath et al., HPCA'07].
 *
 * The paper cites FDP (ref [37]) as the prefetcher SBP was originally
 * shown to outperform; it is included here so the full comparison chain
 * next-line < FDP < SBP < BO of the two papers can be reproduced on one
 * substrate.
 *
 * FDP is a stream prefetcher whose aggressiveness — the (distance,
 * degree) pair — is adjusted dynamically by three sampled feedback
 * metrics:
 *
 *  - *accuracy*: used prefetches / issued prefetches. Counted with the
 *    L2 prefetch bits (a prefetched hit is the first use of a
 *    prefetched line) plus late-promotion events.
 *  - *lateness*: late prefetches / useful prefetches. A prefetch is
 *    late when the demand catches it still in flight, which the
 *    hierarchy reports through onLatePromotion().
 *  - *pollution*: demand misses caused by prefetch evictions / demand
 *    misses. Lines evicted by prefetch fills are remembered in a Bloom
 *    filter; a demand miss hitting the filter is a pollution miss.
 *
 * At the end of every sampling interval the three metrics are
 * classified (high/low against thresholds) and indexed into the
 * original paper's adjustment table, moving the aggressiveness level
 * up, down, or not at all across five presets from (4,1) "very
 * conservative" to (64,4) "very aggressive".
 *
 * The stream engine follows the original design: it allocates a
 * tracker per miss region, trains on two further misses to establish a
 * direction, and then issues `degree` prefetches `distance` ahead of
 * the stream head, never crossing a page boundary.
 */

#ifndef BOP_PREFETCH_FDP_HH
#define BOP_PREFETCH_FDP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prefetch/bloom.hh"
#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** FDP parameters; defaults follow Srinath et al. scaled to our L2. */
struct FdpConfig
{
    int trackers = 64;          ///< simultaneous streams tracked
    int trainWindow = 16;       ///< lines around the head that train
    int trainThreshold = 2;     ///< monotonic hits needed to go live

    /** Eligible L2 accesses per feedback sampling interval. */
    int sampleInterval = 2048;

    double accHigh = 0.75;      ///< accuracy >= accHigh is "high"
    double accLow = 0.40;       ///< accuracy < accLow is "low"
    double lateThreshold = 0.01;///< lateness fraction considered "late"
    double polThreshold = 0.005;///< pollution fraction considered high

    std::size_t pollutionBits = 4096; ///< pollution Bloom filter size
    unsigned pollutionHashes = 2;

    int initialLevel = 2;       ///< start at "middle" aggressiveness
    std::uint64_t seed = 0xfd9;
};

/** The Feedback-Directed stream Prefetcher. */
class FdpPrefetcher : public L2Prefetcher
{
  public:
    /** One aggressiveness preset: prefetch distance and degree. */
    struct Level
    {
        int distance;
        int degree;
    };

    /** The five presets of the original paper (Table 4 of [37]). */
    static const std::vector<Level> &levels();

    FdpPrefetcher(PageSize page_size, FdpConfig cfg = {});

    void onAccess(const L2AccessEvent &ev,
                  std::vector<LineAddr> &out) override;
    void onFill(const L2FillEvent &ev) override;
    void onEvict(const L2EvictEvent &ev) override;
    void onLatePromotion(LineAddr line, Cycle now) override;

    /**
     * Like every degree-N prefetcher in this study (paper Sec. 6.3),
     * FDP checks the L2 tags before issuing: level changes re-cover
     * line ranges already fetched, and redundant requests would occupy
     * fill-queue entries that demand misses need.
     */
    bool requiresTagCheck() const override { return true; }

    std::string name() const override { return "fdp"; }

    /** Current prefetch distance (closest analogue of an offset). */
    int currentOffset() const override
    {
        return levels()[static_cast<std::size_t>(level)].distance;
    }

    // -- introspection (tests, benches) ----------------------------------
    int aggressivenessLevel() const { return level; }
    double lastAccuracy() const { return lastAcc; }
    double lastLateness() const { return lastLate; }
    double lastPollution() const { return lastPol; }
    std::uint64_t intervalsElapsed() const { return intervals; }
    int trainedStreams() const;

    /**
     * Checkpoint trackers, the aggressiveness level, the in-flight
     * interval counters, the pollution filter and the last interval's
     * metrics.
     */
    void
    serialize(Serializer &s) override
    {
        const std::size_t n = trackers.size();
        s.seq(trackers, [](Serializer &sr, Tracker &t) {
            sr.value(t.valid);
            sr.value(t.head);
            sr.value(t.direction);
            sr.value(t.confidence);
            sr.value(t.lruStamp);
        });
        s.value(stamp);
        s.value(level);
        s.value(accessesThisInterval);
        s.value(issued);
        s.value(used);
        s.value(late);
        s.value(polMisses);
        s.value(demandMisses);
        pollution.serialize(s);
        s.value(lastAcc);
        s.value(lastLate);
        s.value(lastPol);
        s.value(intervals);
        if (s.loading()) {
            if (trackers.size() != n)
                s.fail("FDP tracker table size mismatch");
            if (level < 0 ||
                static_cast<std::size_t>(level) >= levels().size())
                s.fail("FDP aggressiveness level out of range");
        }
    }

  private:
    struct Tracker
    {
        bool valid = false;
        LineAddr head = 0;      ///< most recent line of the stream
        int direction = 0;      ///< +1 ascending, -1 descending, 0 new
        int confidence = 0;     ///< monotonic hits seen so far
        std::uint64_t lruStamp = 0;
    };

    Tracker *findTracker(LineAddr line);
    Tracker &allocateTracker(LineAddr line);

    /** Issue prefetches for a trained tracker into @p out. */
    void issueFromTracker(Tracker &t, std::vector<LineAddr> &out);

    /** Close the sampling interval and adjust the level. */
    void endInterval();

    FdpConfig cfg;
    std::vector<Tracker> trackers;
    std::uint64_t stamp = 0;

    int level;                  ///< index into levels()

    // interval counters
    int accessesThisInterval = 0;
    std::uint64_t issued = 0;   ///< prefetches issued this interval
    std::uint64_t used = 0;     ///< prefetched hits + late promotions
    std::uint64_t late = 0;     ///< late promotions this interval
    std::uint64_t polMisses = 0;///< demand misses hitting pollution filter
    std::uint64_t demandMisses = 0;

    BloomFilter pollution;

    // last interval's metrics (introspection)
    double lastAcc = 0.0;
    double lastLate = 0.0;
    double lastPol = 0.0;
    std::uint64_t intervals = 0;
};

} // namespace bop

#endif // BOP_PREFETCH_FDP_HH
