/**
 * @file
 * Common interface for L2 prefetchers (paper Sec. 5.6).
 *
 * All L2 prefetchers studied in the paper share these properties: they
 * ignore load/store PCs, operate on physical line addresses, never cross
 * page boundaries (prefetch addresses are formed by modifying page-offset
 * bits only), and are triggered by core-side L2 *read* accesses that miss
 * or hit a line whose prefetch bit is set ("prefetched hit"). The input
 * stream includes L1 prefetch requests.
 */

#ifndef BOP_PREFETCH_L2_PREFETCHER_HH
#define BOP_PREFETCH_L2_PREFETCHER_HH

#include <string>
#include <vector>

#include "common/serializer.hh"
#include "common/types.hh"

namespace bop
{

/** A core-side read access observed at the L2. */
struct L2AccessEvent
{
    LineAddr line = 0;       ///< physical line address
    bool miss = false;       ///< L2 miss
    bool prefetchedHit = false; ///< L2 hit with prefetch bit set
    Cycle cycle = 0;
};

/** A block fill observed at the L2. */
struct L2FillEvent
{
    LineAddr line = 0;       ///< physical line address inserted
    bool wasPrefetch = false;///< issued as an L2 prefetch (even if promoted)
    Cycle cycle = 0;
};

/** A block evicted from the L2 by a fill. */
struct L2EvictEvent
{
    LineAddr line = 0;          ///< victim line address
    bool victimWasPrefetch = false; ///< victim's prefetch bit still set
    bool byPrefetchFill = false;///< the evicting fill was a prefetch
    Cycle cycle = 0;
};

/**
 * Abstract L2 prefetcher.
 *
 * The memory hierarchy calls onAccess() for every core-side read access
 * and onFill() for every block inserted into the L2, and issues the
 * prefetch line addresses the prefetcher returns (after the same-page
 * check, queue dedup, and — if requiresTagCheck() — an L2 tag probe).
 */
class L2Prefetcher
{
  public:
    explicit L2Prefetcher(PageSize page_size) : pageSize(page_size) {}
    virtual ~L2Prefetcher() = default;

    /**
     * Observe a core-side read access; append prefetch candidates (line
     * addresses, already page-checked by the implementation) to @p out.
     */
    virtual void onAccess(const L2AccessEvent &ev,
                          std::vector<LineAddr> &out) = 0;

    /** Observe a fill into the L2. Default: ignore. */
    virtual void onFill(const L2FillEvent &ev) { (void)ev; }

    /**
     * Observe an eviction from the L2. Default: ignore. Feedback-driven
     * prefetchers (FDP) use this to measure pollution and uselessness;
     * the adaptive-throttling BO extension uses it to tune BADSCORE.
     */
    virtual void onEvict(const L2EvictEvent &ev) { (void)ev; }

    /**
     * A demand miss caught one of this prefetcher's requests still in
     * flight (late-prefetch promotion, Sec. 5.4). Default: ignore.
     * This is the hardware-observable "prefetch was useful but late"
     * signal FDP's lateness feedback is built on.
     */
    virtual void onLatePromotion(LineAddr line, Cycle now)
    {
        (void)line;
        (void)now;
    }

    /**
     * Whether the hierarchy must probe the L2 tags and drop the prefetch
     * if the line is already cached. Degree-N prefetchers (SBP) need
     * this; degree-one prefetchers do not (paper Sec. 4.3 / 6.3).
     */
    virtual bool requiresTagCheck() const { return false; }

    /** Human-readable name. */
    virtual std::string name() const = 0;

    /** Current prefetch offset if meaningful (debug/stats); else 0. */
    virtual int currentOffset() const { return 0; }

    /** Whether prefetch issue is currently enabled (throttling state). */
    virtual bool prefetchEnabled() const { return true; }

    /**
     * Checkpoint the prefetcher's mutable tables/state. Default: no
     * state (stateless prefetchers like fixed-offset and next-line).
     */
    virtual void serialize(Serializer &s) { (void)s; }

    PageSize page() const { return pageSize; }

  protected:
    /** Same-page helper available to implementations. */
    bool
    inSamePage(LineAddr a, LineAddr b) const
    {
        return samePage(a, b, pageSize);
    }

    PageSize pageSize;
};

/** A prefetcher that never prefetches (the "no prefetch" baseline). */
class NullPrefetcher : public L2Prefetcher
{
  public:
    using L2Prefetcher::L2Prefetcher;

    void
    onAccess(const L2AccessEvent &ev, std::vector<LineAddr> &out) override
    {
        (void)ev;
        (void)out;
    }

    std::string name() const override { return "none"; }
    bool prefetchEnabled() const override { return false; }
};

} // namespace bop

#endif // BOP_PREFETCH_L2_PREFETCHER_HH
