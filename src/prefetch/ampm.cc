#include "prefetch/ampm.hh"

#include <bit>
#include <cassert>

namespace bop
{

AmpmPrefetcher::AmpmPrefetcher(PageSize page_size, AmpmConfig cfg_)
    : L2Prefetcher(page_size),
      cfg(cfg_),
      zoneShift(static_cast<unsigned>(
          std::countr_zero(static_cast<unsigned>(cfg_.zoneLines))))
{
    assert(cfg.zoneLines > 0 && cfg.zoneLines <= 64 &&
           (cfg.zoneLines & (cfg.zoneLines - 1)) == 0);
    zones.resize(static_cast<std::size_t>(cfg.zones));
}

std::uint64_t
AmpmPrefetcher::zoneOf(LineAddr line) const
{
    return line >> zoneShift;
}

const AmpmPrefetcher::Zone *
AmpmPrefetcher::findZone(std::uint64_t zone_id) const
{
    for (const auto &z : zones) {
        if (z.valid && z.id == zone_id)
            return &z;
    }
    return nullptr;
}

AmpmPrefetcher::Zone &
AmpmPrefetcher::touchZone(std::uint64_t zone_id)
{
    Zone *victim = &zones[0];
    for (auto &z : zones) {
        if (z.valid && z.id == zone_id) {
            z.lruStamp = ++stamp;
            return z;
        }
        if (!z.valid)
            victim = &z;
        else if (victim->valid && z.lruStamp < victim->lruStamp)
            victim = &z;
    }
    *victim = Zone{};
    victim->valid = true;
    victim->id = zone_id;
    victim->lruStamp = ++stamp;
    return *victim;
}

bool
AmpmPrefetcher::accessed(LineAddr line) const
{
    const Zone *z = findZone(zoneOf(line));
    if (!z)
        return false;
    const unsigned bit =
        static_cast<unsigned>(line & (static_cast<LineAddr>(
                                          cfg.zoneLines) - 1));
    return (z->map >> bit) & 1;
}

bool
AmpmPrefetcher::lineMarked(LineAddr line) const
{
    return accessed(line);
}

void
AmpmPrefetcher::onAccess(const L2AccessEvent &ev,
                         std::vector<LineAddr> &out)
{
    if (!ev.miss && !ev.prefetchedHit)
        return;

    // Mark the access in its zone map.
    Zone &z = touchZone(zoneOf(ev.line));
    const unsigned bit = static_cast<unsigned>(
        ev.line & (static_cast<LineAddr>(cfg.zoneLines) - 1));
    z.map |= 1ull << bit;

    // Pattern matching: stride k is confirmed when X-k and X-2k were
    // both accessed; then X+k is a likely future access. Small strides
    // first (they dominate), positive before negative.
    int issued = 0;
    for (int k = 1; k <= cfg.maxStride && issued < cfg.maxDegree; ++k) {
        for (const int dir : {+1, -1}) {
            if (issued >= cfg.maxDegree)
                break;
            const std::int64_t s = static_cast<std::int64_t>(dir) * k;
            const std::int64_t x = static_cast<std::int64_t>(ev.line);
            if (x - s < 0 || x - 2 * s < 0 || x + s < 0)
                continue;
            if (accessed(static_cast<LineAddr>(x - s)) &&
                accessed(static_cast<LineAddr>(x - 2 * s))) {
                const LineAddr target = static_cast<LineAddr>(x + s);
                if (inSamePage(ev.line, target)) {
                    out.push_back(target);
                    ++issued;
                }
            }
        }
    }
}

} // namespace bop
