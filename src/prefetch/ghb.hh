/**
 * @file
 * Global History Buffer (GHB) delta-correlation prefetcher — the C/DC
 * scheme of Nesbit et al. [AC/DC, PACT'04; GHB, HPCA'04], the paper's
 * ref [22].
 *
 * Section 3.2 of the Best-Offset paper observes that "a delta
 * correlation prefetcher observing L2 accesses (such as AC/DC) would
 * work perfectly" on periodic line-stride sequences (1,2,1,2,...). This
 * module provides that comparison point.
 *
 * Structure (the GHB of [HPCA'04]):
 *
 *  - a circular *global history buffer* holding the last N eligible L2
 *    access line addresses in FIFO order;
 *  - an *index table* mapping a localising key — here the CZone, the
 *    high-order bits of the line address, because L2 prefetchers have
 *    no PCs (paper Sec. 5.6) — to the most recent GHB entry for that
 *    key; entries chain backwards through link pointers, so walking a
 *    chain yields the zone's recent accesses newest-first.
 *
 * Prediction (the DC part of [PACT'04]): from the chain, build the
 * zone's delta history oldest-first; take the last two deltas as the
 * correlation key; find the key's earliest occurrence in the history;
 * then replay the deltas that followed that occurrence, accumulating
 * them onto the current address, as prefetch predictions (up to
 * `degree`, stopping at the page boundary).
 *
 * The *adaptive* CZone part of AC/DC is modeled with an epoch
 * mechanism: candidate zone sizes are evaluated round-robin, an
 * epoch's score being the number of eligible accesses that had been
 * predicted by the prefetcher during that epoch; after each full pass
 * the best-scoring zone size is used for a run of "exploit" epochs
 * before re-evaluating.
 */

#ifndef BOP_PREFETCH_GHB_HH
#define BOP_PREFETCH_GHB_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** C/DC parameters; defaults follow Nesbit et al. scaled to our L2. */
struct GhbConfig
{
    std::size_t historyEntries = 256; ///< GHB depth
    std::size_t indexEntries = 256;   ///< index table size (direct-mapped)
    int degree = 4;                   ///< max prefetches per trigger
    int maxChainWalk = 16;            ///< history depth used per zone

    /** log2(lines) of each candidate CZone size; 6 = 4KB zones. */
    std::vector<unsigned> zoneLineBitsCandidates = {6, 8, 10};
    bool adaptiveZones = true;        ///< evaluate candidates in epochs
    int epochAccesses = 1024;         ///< epoch length (eligible accesses)
    int exploitEpochs = 4;            ///< epochs run on the winner
};

/** GHB-based CZone / Delta-Correlation (C/DC) prefetcher. */
class GhbAcdcPrefetcher : public L2Prefetcher
{
  public:
    GhbAcdcPrefetcher(PageSize page_size, GhbConfig cfg = {});

    void onAccess(const L2AccessEvent &ev,
                  std::vector<LineAddr> &out) override;

    bool requiresTagCheck() const override { return true; }
    std::string name() const override { return "acdc"; }

    // -- introspection (tests, benches) ----------------------------------
    unsigned currentZoneLineBits() const { return zoneBits; }
    std::uint64_t epochsElapsed() const { return epochs; }
    int lastEpochScore() const { return lastScore; }

    /**
     * Pure delta-correlation kernel, exposed for unit tests: given a
     * zone's line-address history oldest-first, predict the next
     * @p degree line addresses (empty when no correlation is found).
     */
    static std::vector<LineAddr>
    correlate(const std::vector<LineAddr> &history, int degree);

    /**
     * Checkpoint the GHB, index table and adaptation state. The
     * `predicted` set is serialized as a sorted vector so re-saving a
     * restored prefetcher is byte-identical to the original save.
     */
    void
    serialize(Serializer &s) override
    {
        const std::size_t hist_n = history.size();
        const std::size_t index_n = index.size();
        s.seq(history, [](Serializer &sr, GhbEntry &e) {
            sr.value(e.line);
            sr.value(e.prevSerial);
            sr.value(e.hasPrev);
        });
        s.seq(index, [](Serializer &sr, IndexEntry &e) {
            sr.value(e.valid);
            sr.value(e.key);
            sr.value(e.serial);
        });
        s.value(nextSerial);
        s.value(zoneBits);
        std::uint64_t cand64 = candIdx;
        s.value(cand64);
        s.value(exploiting);
        s.value(epochsLeft);
        s.value(accessesThisEpoch);
        s.value(scoreThisEpoch);
        s.value(lastScore);
        s.valueVec(candScores);
        s.value(epochs);
        std::vector<LineAddr> pred(predicted.begin(), predicted.end());
        std::sort(pred.begin(), pred.end());
        s.valueVec(pred);
        if (s.loading()) {
            if (history.size() != hist_n || index.size() != index_n)
                s.fail("GHB geometry mismatch");
            if (cand64 >= cfg.zoneLineBitsCandidates.size())
                s.fail("GHB candidate index out of range");
            candIdx = static_cast<std::size_t>(cand64);
            predicted.clear();
            predicted.insert(pred.begin(), pred.end());
        }
    }

  private:
    struct GhbEntry
    {
        LineAddr line = 0;
        /** Global serial number of the previous same-zone entry. */
        std::uint64_t prevSerial = 0;
        bool hasPrev = false;
    };

    struct IndexEntry
    {
        bool valid = false;
        std::uint64_t key = 0;     ///< full zone key (tag check)
        std::uint64_t serial = 0;  ///< most recent GHB serial for key
    };

    std::uint64_t zoneKey(LineAddr line) const
    {
        return line >> zoneBits;
    }

    /** Walk the chain for @p key; returns history oldest-first. */
    std::vector<LineAddr> chainHistory(std::uint64_t key) const;

    /** Push an access into the GHB and index table. */
    void record(LineAddr line);

    /** Close an adaptation epoch. */
    void endEpoch();

    GhbConfig cfg;
    std::vector<GhbEntry> history;  ///< circular, indexed by serial % N
    std::vector<IndexEntry> index;
    std::uint64_t nextSerial = 1;   ///< 0 is the "invalid" serial

    unsigned zoneBits;              ///< current zone size (log2 lines)

    // adaptation state
    std::size_t candIdx = 0;        ///< candidate under evaluation
    bool exploiting = false;
    int epochsLeft = 0;
    int accessesThisEpoch = 0;
    int scoreThisEpoch = 0;
    int lastScore = 0;
    std::vector<int> candScores;
    std::uint64_t epochs = 0;

    /** Recent predictions, for scoring the adaptation epochs. */
    std::unordered_set<LineAddr> predicted;
    std::vector<LineAddr> scratch;
};

} // namespace bop

#endif // BOP_PREFETCH_GHB_HH
