/**
 * @file
 * Bit-vector Bloom filter used by the Sandbox prefetcher's sandbox
 * (paper Sec. 6.3: 2048 bits, 3 hash functions).
 */

#ifndef BOP_PREFETCH_BLOOM_HH
#define BOP_PREFETCH_BLOOM_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace bop
{

/** Fixed-size Bloom filter over line addresses. */
class BloomFilter
{
  public:
    /**
     * @param bits   filter size in bits (power of two)
     * @param hashes number of hash functions
     * @param seed   seed differentiating the hash family
     */
    explicit BloomFilter(std::size_t bits = 2048, unsigned hashes = 3,
                         std::uint64_t seed = 0xb100f);

    /** Insert a line address. */
    void insert(LineAddr line);

    /** Membership test (may report false positives, never negatives). */
    bool maybeContains(LineAddr line) const;

    /** Clear all bits. */
    void clear();

    /** Number of set bits (tests/debug). */
    std::size_t popcount() const;

    std::size_t sizeBits() const { return bitCount; }

    /** Checkpoint the bit vector (geometry/seed are config-derived). */
    void
    serialize(Serializer &s)
    {
        const std::size_t n = words.size();
        s.valueVec(words);
        if (s.loading() && words.size() != n)
            s.fail("Bloom filter size mismatch");
    }

  private:
    std::size_t indexOf(LineAddr line, unsigned k) const;

    std::size_t bitCount;
    unsigned numHashes;
    std::uint64_t seed;
    std::vector<std::uint64_t> words;
};

} // namespace bop

#endif // BOP_PREFETCH_BLOOM_HH
