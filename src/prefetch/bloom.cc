#include "prefetch/bloom.hh"

#include <bit>
#include <cassert>

namespace bop
{

BloomFilter::BloomFilter(std::size_t bits, unsigned hashes,
                         std::uint64_t seed_)
    : bitCount(bits), numHashes(hashes), seed(seed_)
{
    assert(bits >= 64 && (bits & (bits - 1)) == 0);
    words.assign(bits / 64, 0);
}

std::size_t
BloomFilter::indexOf(LineAddr line, unsigned k) const
{
    // Independent hash functions from one mixer by folding in the
    // function index and the filter seed.
    const std::uint64_t h =
        splitmix64(line ^ seed ^ (static_cast<std::uint64_t>(k) << 56));
    return static_cast<std::size_t>(h & (bitCount - 1));
}

void
BloomFilter::insert(LineAddr line)
{
    for (unsigned k = 0; k < numHashes; ++k) {
        const std::size_t bit = indexOf(line, k);
        words[bit >> 6] |= 1ull << (bit & 63);
    }
}

bool
BloomFilter::maybeContains(LineAddr line) const
{
    for (unsigned k = 0; k < numHashes; ++k) {
        const std::size_t bit = indexOf(line, k);
        if (!(words[bit >> 6] & (1ull << (bit & 63))))
            return false;
    }
    return true;
}

void
BloomFilter::clear()
{
    for (auto &w : words)
        w = 0;
}

std::size_t
BloomFilter::popcount() const
{
    std::size_t n = 0;
    for (auto w : words)
        n += static_cast<std::size_t>(std::popcount(w));
    return n;
}

} // namespace bop
