/**
 * @file
 * Fixed-offset L2 prefetcher: prefetch X+D for a constant D.
 *
 * D=1 is the paper's default next-line prefetcher (Sec. 5.6, [Smith'82]
 * with prefetch bits); Figs. 7 and 8 sweep D. The same-page constraint
 * applies as with every L2 prefetcher.
 */

#ifndef BOP_PREFETCH_FIXED_OFFSET_HH
#define BOP_PREFETCH_FIXED_OFFSET_HH

#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** Prefetch line X+D on every eligible access to line X. */
class FixedOffsetPrefetcher : public L2Prefetcher
{
  public:
    FixedOffsetPrefetcher(PageSize page_size, int offset_)
        : L2Prefetcher(page_size), offset(offset_)
    {
    }

    void
    onAccess(const L2AccessEvent &ev, std::vector<LineAddr> &out) override
    {
        if (!ev.miss && !ev.prefetchedHit)
            return;
        const LineAddr target = ev.line + static_cast<LineAddr>(offset);
        if (inSamePage(ev.line, target))
            out.push_back(target);
    }

    std::string
    name() const override
    {
        return offset == 1 ? "next-line" : "offset-" + std::to_string(offset);
    }

    int currentOffset() const override { return offset; }

  private:
    int offset;
};

/** Convenience alias matching the paper's terminology. */
class NextLinePrefetcher : public FixedOffsetPrefetcher
{
  public:
    explicit NextLinePrefetcher(PageSize page_size)
        : FixedOffsetPrefetcher(page_size, 1)
    {
    }
};

} // namespace bop

#endif // BOP_PREFETCH_FIXED_OFFSET_HH
