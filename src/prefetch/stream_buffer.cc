#include "prefetch/stream_buffer.hh"

#include <algorithm>

namespace bop
{

StreamBufferPrefetcher::StreamBufferPrefetcher(PageSize page_size,
                                               StreamBufferConfig cfg_)
    : L2Prefetcher(page_size),
      cfg(cfg_),
      buffers(static_cast<std::size_t>(cfg_.buffers))
{
}

StreamBufferPrefetcher::Buffer *
StreamBufferPrefetcher::findBuffer(LineAddr line)
{
    for (Buffer &b : buffers) {
        if (!b.valid)
            continue;
        if (std::find(b.fifo.begin(), b.fifo.end(), line) !=
            b.fifo.end()) {
            return &b;
        }
    }
    return nullptr;
}

void
StreamBufferPrefetcher::topUp(Buffer &b, std::vector<LineAddr> &out)
{
    while (static_cast<int>(b.fifo.size()) < cfg.depth) {
        // Stop at the page boundary: the buffer simply stalls there,
        // as every L2 prefetcher in this study must (Sec. 5.6). Use
        // the previous requested line (or the stream origin) as the
        // page reference.
        const LineAddr ref = b.fifo.empty() ? b.nextLine - 1
                                            : b.fifo.back();
        if (!inSamePage(ref, b.nextLine))
            break;
        b.fifo.push_back(b.nextLine);
        out.push_back(b.nextLine);
        ++b.nextLine;
    }
}

void
StreamBufferPrefetcher::allocate(LineAddr line, std::vector<LineAddr> &out)
{
    Buffer *victim = &buffers[0];
    for (Buffer &b : buffers) {
        if (!b.valid) {
            victim = &b;
            break;
        }
        if (b.lruStamp < victim->lruStamp)
            victim = &b;
    }
    victim->valid = true;
    victim->fifo.clear();
    victim->nextLine = line + 1;
    victim->lruStamp = ++stamp;
    topUp(*victim, out);
}

void
StreamBufferPrefetcher::onAccess(const L2AccessEvent &ev,
                                 std::vector<LineAddr> &out)
{
    Buffer *b = findBuffer(ev.line);

    if (b) {
        // A demand access consumed a line this buffer requested. In the
        // original hardware only a *head* hit moves a line into the
        // cache; accesses deeper in the FIFO (scrambling) squash the
        // skipped entries, which is what popping up to the match models.
        b->lruStamp = ++stamp;
        while (!b->fifo.empty() && b->fifo.front() != ev.line)
            b->fifo.pop_front();
        if (!b->fifo.empty())
            b->fifo.pop_front();
        topUp(*b, out);
        return;
    }

    if (!ev.miss)
        return; // buffers allocate on misses only (Jouppi)

    if (cfg.allocationFilter && findBuffer(ev.line + 1))
        return; // an existing stream already covers what we'd fetch

    allocate(ev.line, out);
}

int
StreamBufferPrefetcher::activeBuffers() const
{
    int n = 0;
    for (const Buffer &b : buffers) {
        if (b.valid)
            ++n;
    }
    return n;
}

std::vector<LineAddr>
StreamBufferPrefetcher::bufferLines(int i) const
{
    const Buffer &b = buffers[static_cast<std::size_t>(i)];
    return {b.fifo.begin(), b.fifo.end()};
}

} // namespace bop
