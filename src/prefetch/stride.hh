/**
 * @file
 * DL1 stride prefetcher (paper Sec. 5.5).
 *
 * A 64-entry prefetch table accessed with the PC of load/store
 * micro-ops. Each entry holds a tag, the last (virtual) address, the
 * last stride, a 4-bit confidence counter and LRU bits. The table is
 * *updated at retirement* (so accesses are seen in program order) while
 * *prefetch requests are issued at DL1 access time* (miss or prefetched
 * hit) — with a fixed prefetch distance of 16 strides:
 *
 *     prefetchaddr = currentaddr + 16 * stride     (conf == 15 only)
 *
 * A 16-entry filter drops prefetches to recently prefetched lines;
 * the hierarchy then translates through the TLB2 (dropping on a miss)
 * and issues to the uncore.
 */

#ifndef BOP_PREFETCH_STRIDE_HH
#define BOP_PREFETCH_STRIDE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serializer.hh"
#include "common/types.hh"

namespace bop
{

/** Configuration of the DL1 stride prefetcher. */
struct StrideConfig
{
    std::size_t tableEntries = 64;
    unsigned ways = 4;                ///< table associativity
    int confidenceMax = 15;           ///< 4-bit confidence, issue at max
    int prefetchDistance = 16;        ///< strides ahead (paper: 16)
    std::size_t filterEntries = 16;   ///< recent-prefetch line filter
};

/** PC-indexed stride prefetcher for the DL1. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(StrideConfig cfg = {});

    /**
     * Update the table at retirement of a load/store micro-op (program
     * order, virtual addresses — Sec. 5.5).
     */
    void onRetire(Addr pc, Addr vaddr);

    /**
     * DL1 access notification (miss or prefetched hit only). Returns the
     * *virtual* byte address to prefetch, or nullopt. The caller is
     * responsible for TLB translation and issue.
     */
    std::optional<Addr> onAccess(Addr pc, Addr vaddr);

    /** Tests: confidence of the entry for @p pc (-1 if absent). */
    int confidenceOf(Addr pc) const;
    /** Tests: current stride of the entry for @p pc (0 if absent). */
    std::int64_t strideOf(Addr pc) const;

    /** Checkpoint table, PC tags, recent-prefetch filter, LRU clock. */
    void
    serialize(Serializer &s)
    {
        const std::size_t entries = table.size();
        s.seq(table, [](Serializer &sr, Entry &e) {
            sr.value(e.lastAddr);
            sr.value(e.stride);
            sr.value(e.confidence);
            sr.value(e.lruStamp);
        });
        s.valueVec(pcTags);
        s.valueVec(filter);
        std::uint64_t head64 = filterHead;
        s.value(head64);
        s.value(stamp);
        if (s.loading()) {
            // The recent-prefetch ring grows on demand up to its
            // capacity, and its head only advances once it is full.
            if (table.size() != entries || pcTags.size() != entries ||
                filter.size() > cfg.filterEntries)
                s.fail("stride table geometry mismatch");
            const bool ringFull = cfg.filterEntries > 0 &&
                                  filter.size() == cfg.filterEntries;
            if (ringFull ? head64 >= cfg.filterEntries : head64 != 0)
                s.fail("stride filter head out of range");
            filterHead = static_cast<std::size_t>(head64);
        }
    }

  private:
    struct Entry
    {
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        int confidence = 0;
        std::uint64_t lruStamp = 0;
    };

    /** Sentinel PC tag for free table slots (no real PC reaches ~0). */
    static constexpr Addr freePc = ~static_cast<Addr>(0);

    Entry *find(Addr pc);
    const Entry *find(Addr pc) const;
    Entry &allocate(Addr pc);
    bool filterAllows(LineAddr line);

    StrideConfig cfg;
    std::size_t numSets;
    std::vector<Entry> table;   ///< numSets * ways
    /**
     * PC tags parallel to table (freePc = empty slot). The table is
     * probed twice per memory micro-op, so the match scans this flat
     * 8-byte-stride array instead of the fat entry structs.
     */
    std::vector<Addr> pcTags;
    std::vector<LineAddr> filter; ///< flat ring of recent prefetch lines
    std::size_t filterHead = 0;   ///< oldest ring entry (next overwrite)
    std::uint64_t stamp = 0;
};

} // namespace bop

#endif // BOP_PREFETCH_STRIDE_HH
