/**
 * @file
 * AMPM-lite: simplified Access Map Pattern Matching prefetcher
 * [Ishii et al., JILP'11] (extension).
 *
 * AMPM won DPC-1 and is the reference point the Sandbox paper compares
 * against ("SBP matches or even slightly outperforms the more complex
 * AMPM", cited in Sec. 2/6.3 of the BO paper). This is a faithful-in-
 * spirit reduction: per-zone bitmaps of recently accessed lines, and
 * on each eligible access pattern matching over candidate strides k —
 * if lines X-k and X-2k were both accessed, X+k is a predicted future
 * access and is prefetched. Degree-limited; requires an L2 tag check
 * like every degree-N prefetcher in this repository.
 */

#ifndef BOP_PREFETCH_AMPM_HH
#define BOP_PREFETCH_AMPM_HH

#include <cstdint>
#include <vector>

#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** AMPM-lite parameters. */
struct AmpmConfig
{
    int zones = 64;          ///< tracked zones (LRU)
    int zoneLines = 64;      ///< lines per zone (4KB zones)
    int maxStride = 16;      ///< candidate strides 1..maxStride (±)
    int maxDegree = 2;       ///< prefetches issued per access
};

/** Simplified Access Map Pattern Matching prefetcher. */
class AmpmPrefetcher : public L2Prefetcher
{
  public:
    AmpmPrefetcher(PageSize page_size, AmpmConfig cfg = {});

    void onAccess(const L2AccessEvent &ev,
                  std::vector<LineAddr> &out) override;

    bool requiresTagCheck() const override { return true; }
    std::string name() const override { return "ampm"; }

    /** Tests: is a line currently marked accessed in its zone map? */
    bool lineMarked(LineAddr line) const;

    /** Checkpoint the zone table and LRU clock. */
    void
    serialize(Serializer &s) override
    {
        const std::size_t n = zones.size();
        s.seq(zones, [](Serializer &sr, Zone &z) {
            sr.value(z.valid);
            sr.value(z.id);
            sr.value(z.map);
            sr.value(z.lruStamp);
        });
        s.value(stamp);
        if (s.loading() && zones.size() != n)
            s.fail("AMPM zone table size mismatch");
    }

  private:
    struct Zone
    {
        bool valid = false;
        std::uint64_t id = 0;      ///< line address >> log2(zoneLines)
        std::uint64_t map = 0;     ///< accessed-line bitmap (<=64 lines)
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t zoneOf(LineAddr line) const;
    const Zone *findZone(std::uint64_t zone_id) const;
    Zone &touchZone(std::uint64_t zone_id);
    /** Bit test across zone boundaries (neighbour zones consulted). */
    bool accessed(LineAddr line) const;

    AmpmConfig cfg;
    unsigned zoneShift;
    std::vector<Zone> zones;
    std::uint64_t stamp = 0;
};

} // namespace bop

#endif // BOP_PREFETCH_AMPM_HH
