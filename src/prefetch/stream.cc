#include "prefetch/stream.hh"

#include <cstdlib>

namespace bop
{

StreamPrefetcher::StreamPrefetcher(PageSize page_size, StreamConfig cfg_)
    : L2Prefetcher(page_size), cfg(cfg_)
{
    trackers.resize(static_cast<std::size_t>(cfg.trackers));
}

StreamPrefetcher::Tracker *
StreamPrefetcher::findTracker(LineAddr line)
{
    Tracker *best = nullptr;
    for (auto &t : trackers) {
        if (!t.valid)
            continue;
        const std::int64_t delta = static_cast<std::int64_t>(line) -
                                   static_cast<std::int64_t>(t.head);
        if (delta != 0 && std::llabs(delta) <= cfg.windowLines) {
            if (!best || t.lruStamp > best->lruStamp)
                best = &t;
        }
    }
    return best;
}

StreamPrefetcher::Tracker &
StreamPrefetcher::allocateTracker(LineAddr line)
{
    Tracker *victim = &trackers[0];
    for (auto &t : trackers) {
        if (!t.valid) {
            victim = &t;
            break;
        }
        if (t.lruStamp < victim->lruStamp)
            victim = &t;
    }
    *victim = Tracker{};
    victim->valid = true;
    victim->head = line;
    return *victim;
}

int
StreamPrefetcher::trainedStreams() const
{
    int n = 0;
    for (const auto &t : trackers)
        n += t.valid && t.confidence >= cfg.trainThreshold;
    return n;
}

void
StreamPrefetcher::onAccess(const L2AccessEvent &ev,
                           std::vector<LineAddr> &out)
{
    if (!ev.miss && !ev.prefetchedHit)
        return;

    Tracker *t = findTracker(ev.line);
    if (!t) {
        allocateTracker(ev.line).lruStamp = ++stamp;
        return;
    }

    const std::int64_t delta = static_cast<std::int64_t>(ev.line) -
                               static_cast<std::int64_t>(t->head);
    const int dir = delta > 0 ? 1 : -1;
    if (t->direction == dir) {
        ++t->confidence;
    } else {
        t->direction = dir;
        t->confidence = 1;
    }
    t->head = ev.line;
    t->lruStamp = ++stamp;

    if (t->confidence < cfg.trainThreshold)
        return;

    // Trained: prefetch `degree` lines starting `distance` ahead.
    for (int k = 0; k < cfg.degree; ++k) {
        const std::int64_t target =
            static_cast<std::int64_t>(ev.line) +
            static_cast<std::int64_t>(dir) * (cfg.distance + k);
        if (target >= 0 &&
            inSamePage(ev.line, static_cast<LineAddr>(target))) {
            out.push_back(static_cast<LineAddr>(target));
        }
    }
}

} // namespace bop
