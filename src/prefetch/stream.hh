/**
 * @file
 * Stream prefetcher (extension; paper Sec. 2 background).
 *
 * A classical L2 stream prefetcher in the Jouppi / Palacharla-Kessler
 * tradition, included as an extra comparison point beyond the paper's
 * evaluation: unlike offset prefetchers it *detects* streams before
 * issuing, tracking per-region ascending/descending miss runs in a
 * small tracker table, then prefetches `degree` lines at `distance`
 * ahead of the stream head. This is the class of prefetcher offset
 * prefetching deliberately avoids — no stream state, no training
 * delay — which is what the comparison illustrates.
 */

#ifndef BOP_PREFETCH_STREAM_HH
#define BOP_PREFETCH_STREAM_HH

#include <cstdint>
#include <vector>

#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** Stream prefetcher parameters. */
struct StreamConfig
{
    int trackers = 16;       ///< simultaneous streams tracked
    int windowLines = 16;    ///< tracker match window (lines)
    int trainThreshold = 2;  ///< monotonic hits before issuing
    int distance = 8;        ///< prefetch-ahead distance (lines)
    int degree = 2;          ///< lines prefetched per trigger
};

/** Classical stream prefetcher at the L2. */
class StreamPrefetcher : public L2Prefetcher
{
  public:
    StreamPrefetcher(PageSize page_size, StreamConfig cfg = {});

    void onAccess(const L2AccessEvent &ev,
                  std::vector<LineAddr> &out) override;

    std::string name() const override { return "stream"; }
    int currentOffset() const override { return cfg.distance; }

    /** Number of currently trained trackers (tests). */
    int trainedStreams() const;

    /** Checkpoint the tracker table and LRU clock. */
    void
    serialize(Serializer &s) override
    {
        const std::size_t n = trackers.size();
        s.seq(trackers, [](Serializer &sr, Tracker &t) {
            sr.value(t.valid);
            sr.value(t.head);
            sr.value(t.direction);
            sr.value(t.confidence);
            sr.value(t.lruStamp);
        });
        s.value(stamp);
        if (s.loading() && trackers.size() != n)
            s.fail("stream tracker table size mismatch");
    }

  private:
    struct Tracker
    {
        bool valid = false;
        LineAddr head = 0;      ///< last line seen in the stream
        int direction = 0;      ///< +1 ascending, -1 descending, 0 new
        int confidence = 0;
        std::uint64_t lruStamp = 0;
    };

    Tracker *findTracker(LineAddr line);
    Tracker &allocateTracker(LineAddr line);

    StreamConfig cfg;
    std::vector<Tracker> trackers;
    std::uint64_t stamp = 0;
};

} // namespace bop

#endif // BOP_PREFETCH_STREAM_HH
