#include "prefetch/fdp.hh"

#include <algorithm>
#include <cstdlib>

namespace bop
{

const std::vector<FdpPrefetcher::Level> &
FdpPrefetcher::levels()
{
    // The five aggressiveness presets of Srinath et al. (Table 4):
    // very conservative ... very aggressive.
    static const std::vector<Level> presets = {
        {4, 1}, {8, 1}, {16, 2}, {32, 4}, {64, 4},
    };
    return presets;
}

FdpPrefetcher::FdpPrefetcher(PageSize page_size, FdpConfig cfg_)
    : L2Prefetcher(page_size),
      cfg(cfg_),
      trackers(static_cast<std::size_t>(cfg_.trackers)),
      level(std::clamp(cfg_.initialLevel, 0,
                       static_cast<int>(levels().size()) - 1)),
      pollution(cfg_.pollutionBits, cfg_.pollutionHashes, cfg_.seed)
{
}

FdpPrefetcher::Tracker *
FdpPrefetcher::findTracker(LineAddr line)
{
    // A tracker matches when the line falls inside the training window
    // around its head, in either direction.
    Tracker *best = nullptr;
    for (Tracker &t : trackers) {
        if (!t.valid)
            continue;
        const std::int64_t delta = static_cast<std::int64_t>(line) -
                                   static_cast<std::int64_t>(t.head);
        if (std::abs(delta) <= cfg.trainWindow) {
            if (!best || t.lruStamp > best->lruStamp)
                best = &t;
        }
    }
    return best;
}

FdpPrefetcher::Tracker &
FdpPrefetcher::allocateTracker(LineAddr line)
{
    Tracker *lru = &trackers[0];
    for (Tracker &t : trackers) {
        if (!t.valid) {
            lru = &t;
            break;
        }
        if (t.lruStamp < lru->lruStamp)
            lru = &t;
    }
    *lru = Tracker{};
    lru->valid = true;
    lru->head = line;
    return *lru;
}

void
FdpPrefetcher::issueFromTracker(Tracker &t, std::vector<LineAddr> &out)
{
    const Level lv = levels()[static_cast<std::size_t>(level)];
    for (int i = 1; i <= lv.degree; ++i) {
        const std::int64_t target =
            static_cast<std::int64_t>(t.head) +
            t.direction * (lv.distance + i - 1);
        if (target < 0)
            break;
        const LineAddr line = static_cast<LineAddr>(target);
        if (!inSamePage(t.head, line))
            break;
        out.push_back(line);
        ++issued;
    }
}

void
FdpPrefetcher::onAccess(const L2AccessEvent &ev, std::vector<LineAddr> &out)
{
    if (ev.prefetchedHit)
        ++used; // first demand touch of a prefetched line

    if (ev.miss) {
        ++demandMisses;
        if (pollution.maybeContains(ev.line))
            ++polMisses;
    }

    Tracker *t = findTracker(ev.line);
    if (!t) {
        if (ev.miss)
            allocateTracker(ev.line);
    } else {
        t->lruStamp = ++stamp;
        const std::int64_t delta = static_cast<std::int64_t>(ev.line) -
                                   static_cast<std::int64_t>(t->head);
        if (delta != 0) {
            const int dir = delta > 0 ? 1 : -1;
            if (t->direction == 0 || t->direction == dir) {
                t->direction = dir;
                t->confidence =
                    std::min(t->confidence + 1, cfg.trainThreshold);
            } else {
                // Direction flip: retrain in place.
                t->direction = dir;
                t->confidence = 0;
            }
            t->head = ev.line;
            if (t->confidence >= cfg.trainThreshold)
                issueFromTracker(*t, out);
        }
    }

    if (++accessesThisInterval >= cfg.sampleInterval)
        endInterval();
}

void
FdpPrefetcher::onFill(const L2FillEvent &ev)
{
    (void)ev; // issue counting happens at issue time
}

void
FdpPrefetcher::onEvict(const L2EvictEvent &ev)
{
    // Remember lines displaced by prefetch fills: if the core demand
    // misses on one of them soon, the prefetcher polluted the cache.
    if (ev.byPrefetchFill)
        pollution.insert(ev.line);
}

void
FdpPrefetcher::onLatePromotion(LineAddr line, Cycle now)
{
    (void)line;
    (void)now;
    ++used;
    ++late;
}

void
FdpPrefetcher::endInterval()
{
    lastAcc = issued ? static_cast<double>(used) /
                           static_cast<double>(issued)
                     : 0.0;
    lastLate = used ? static_cast<double>(late) /
                          static_cast<double>(used)
                    : 0.0;
    lastPol = demandMisses ? static_cast<double>(polMisses) /
                                 static_cast<double>(demandMisses)
                           : 0.0;

    // Classify and adjust (the decision structure of [37], Table 5):
    // high accuracy pushes up unless prefetches are late *and*
    // polluting; low accuracy pushes down; polluting mid-accuracy
    // states also push down.
    const bool acc_high = lastAcc >= cfg.accHigh;
    const bool acc_low = lastAcc < cfg.accLow;
    const bool is_late = lastLate > cfg.lateThreshold;
    const bool is_pol = lastPol > cfg.polThreshold;

    int adjust = 0;
    if (acc_high) {
        // Late prefetches at high accuracy mean we are not aggressive
        // enough — unless we are also polluting, in which case hold.
        adjust = is_pol ? (is_late ? 0 : -1) : 1;
    } else if (acc_low) {
        adjust = -1;
    } else {
        // Medium accuracy: back off when hurting (pollution), hold
        // otherwise — even when late. Only high accuracy justifies
        // more aggressiveness ([37], Table 5); pushing on medium
        // accuracy oscillates against the page-boundary clipping that
        // caps the useful distance on small pages.
        if (is_pol)
            adjust = -1;
    }
    level = std::clamp(level + adjust, 0,
                       static_cast<int>(levels().size()) - 1);

    issued = used = late = polMisses = demandMisses = 0;
    accessesThisInterval = 0;
    // Ageing: forget old pollution evidence each interval so the filter
    // does not saturate (the original uses a periodically-reset filter).
    pollution.clear();
    ++intervals;
}

int
FdpPrefetcher::trainedStreams() const
{
    int n = 0;
    for (const Tracker &t : trackers) {
        if (t.valid && t.confidence >= cfg.trainThreshold)
            ++n;
    }
    return n;
}

} // namespace bop
