/**
 * @file
 * Stream buffers [Jouppi, ISCA'90], the paper's ref [15] — the classic
 * sequential prefetching mechanism the Sec. 2 background contrasts
 * offset prefetching with.
 *
 * The original design holds prefetched lines in small FIFOs beside the
 * cache: a miss that matches no buffer allocates one (starting at the
 * missing line + 1), a demand access hitting a buffer *head* moves that
 * line into the cache and the buffer fetches one more line to stay
 * full. Multiple buffers capture interleaved streams.
 *
 * Substitution note (DESIGN.md): our substrate prefetches into the L2
 * proper rather than into separate buffer storage — the L2's prefetch
 * bits already measure pollution, and the paper's own L2 prefetchers
 * all fill the cache directly. The FIFO state here therefore tracks
 * *what each buffer has requested*, steering allocation and top-up
 * exactly like the original, while the blocks themselves live in the
 * L2. Jouppi's "incremented" addresses are ascending only; allocation
 * stops at page boundaries like every L2 prefetcher in this study.
 */

#ifndef BOP_PREFETCH_STREAM_BUFFER_HH
#define BOP_PREFETCH_STREAM_BUFFER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** Stream-buffer parameters (Jouppi's multi-way stream buffers). */
struct StreamBufferConfig
{
    int buffers = 4;     ///< number of stream buffers
    int depth = 8;       ///< lines each buffer runs ahead
    /**
     * Allocate only on misses whose next line is not already tracked
     * ("allocation filter": avoids burning a buffer on an isolated
     * miss that an existing stream will cover).
     */
    bool allocationFilter = true;
};

/** Multi-way sequential stream buffers at the L2. */
class StreamBufferPrefetcher : public L2Prefetcher
{
  public:
    StreamBufferPrefetcher(PageSize page_size,
                           StreamBufferConfig cfg = {});

    void onAccess(const L2AccessEvent &ev,
                  std::vector<LineAddr> &out) override;

    bool requiresTagCheck() const override { return true; }
    std::string name() const override { return "streambuf"; }

    // -- introspection (tests) --------------------------------------------
    int activeBuffers() const;

    /** FIFO contents of buffer @p i, head first (tests). */
    std::vector<LineAddr> bufferLines(int i) const;

    /** Checkpoint every buffer's FIFO and the LRU clock. */
    void
    serialize(Serializer &s) override
    {
        const std::size_t n = buffers.size();
        s.seq(buffers, [this](Serializer &sr, Buffer &b) {
            sr.value(b.valid);
            sr.seq(b.fifo, [](Serializer &sq, LineAddr &l) {
                sq.value(l);
            });
            sr.value(b.nextLine);
            sr.value(b.lruStamp);
            if (sr.loading() &&
                b.fifo.size() > static_cast<std::size_t>(cfg.depth))
                sr.fail("stream buffer FIFO over depth");
        });
        s.value(stamp);
        if (s.loading() && buffers.size() != n)
            s.fail("stream buffer count mismatch");
    }

  private:
    struct Buffer
    {
        bool valid = false;
        std::deque<LineAddr> fifo;  ///< lines requested, head first
        LineAddr nextLine = 0;      ///< next line to request
        std::uint64_t lruStamp = 0;
    };

    /** Find the buffer holding @p line anywhere in its FIFO. */
    Buffer *findBuffer(LineAddr line);

    /** Allocate (recycling the LRU buffer) for a stream at @p line+1. */
    void allocate(LineAddr line, std::vector<LineAddr> &out);

    /** Keep @p b full up to depth, appending requests to @p out. */
    void topUp(Buffer &b, std::vector<LineAddr> &out);

    StreamBufferConfig cfg;
    std::vector<Buffer> buffers;
    std::uint64_t stamp = 0;
};

} // namespace bop

#endif // BOP_PREFETCH_STREAM_BUFFER_HH
