#include "prefetch/stride.hh"

#include <algorithm>
#include <cassert>

namespace bop
{

StridePrefetcher::StridePrefetcher(StrideConfig cfg_)
    : cfg(cfg_), numSets(cfg_.tableEntries / cfg_.ways)
{
    assert(numSets > 0 && (numSets & (numSets - 1)) == 0);
    table.resize(cfg.tableEntries);
    pcTags.assign(cfg.tableEntries, freePc);
}

StridePrefetcher::Entry *
StridePrefetcher::find(Addr pc)
{
    const std::size_t base = ((pc >> 2) & (numSets - 1)) * cfg.ways;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        if (pcTags[base + w] == pc)
            return &table[base + w];
    }
    return nullptr;
}

const StridePrefetcher::Entry *
StridePrefetcher::find(Addr pc) const
{
    return const_cast<StridePrefetcher *>(this)->find(pc);
}

StridePrefetcher::Entry &
StridePrefetcher::allocate(Addr pc)
{
    assert(pc != freePc && "pc collides with the free-slot sentinel");
    const std::size_t base = ((pc >> 2) & (numSets - 1)) * cfg.ways;
    std::size_t victim = base;
    for (unsigned w = 0; w < cfg.ways; ++w) {
        const std::size_t s = base + w;
        if (pcTags[s] == freePc) {
            victim = s;
            break;
        }
        if (table[s].lruStamp < table[victim].lruStamp)
            victim = s;
    }
    table[victim] = Entry{};
    pcTags[victim] = pc;
    return table[victim];
}

void
StridePrefetcher::onRetire(Addr pc, Addr vaddr)
{
    Entry *e = find(pc);
    if (!e)
        e = &allocate(pc);

    const std::int64_t new_stride =
        static_cast<std::int64_t>(vaddr) -
        static_cast<std::int64_t>(e->lastAddr);

    // Paper: if currentaddr == lastaddr + stride, increment confidence,
    // otherwise reset it to zero; then update stride and lastaddr.
    if (e->lastAddr != 0 && new_stride == e->stride) {
        if (e->confidence < cfg.confidenceMax)
            ++e->confidence;
    } else {
        e->confidence = 0;
    }
    e->stride = new_stride;
    e->lastAddr = vaddr;
    e->lruStamp = ++stamp;
}

bool
StridePrefetcher::filterAllows(LineAddr line)
{
    if (std::find(filter.begin(), filter.end(), line) != filter.end())
        return false;
    if (cfg.filterEntries == 0)
        return true;
    // Flat ring: overwrite the oldest entry once the filter is full
    // (membership is all that matters, so order within the ring is
    // irrelevant to the scan above).
    if (filter.size() < cfg.filterEntries) {
        filter.push_back(line);
    } else {
        filter[filterHead] = line;
        filterHead = (filterHead + 1) % cfg.filterEntries;
    }
    return true;
}

std::optional<Addr>
StridePrefetcher::onAccess(Addr pc, Addr vaddr)
{
    Entry *e = find(pc);
    if (!e || e->stride == 0 || e->confidence < cfg.confidenceMax)
        return std::nullopt;
    e->lruStamp = ++stamp;

    const std::int64_t delta =
        e->stride * static_cast<std::int64_t>(cfg.prefetchDistance);
    const Addr target = static_cast<Addr>(
        static_cast<std::int64_t>(vaddr) + delta);

    if (!filterAllows(lineOf(target)))
        return std::nullopt;
    return target;
}

int
StridePrefetcher::confidenceOf(Addr pc) const
{
    const Entry *e = find(pc);
    return e ? e->confidence : -1;
}

std::int64_t
StridePrefetcher::strideOf(Addr pc) const
{
    const Entry *e = find(pc);
    return e ? e->stride : 0;
}

} // namespace bop
