/**
 * @file
 * Sandbox prefetcher (SBP) [Pugsley et al., HPCA'14], in the modified
 * form the paper compares against (Sec. 6.3):
 *
 *  - same 52-offset candidate list as the BO prefetcher;
 *  - a 2048-bit Bloom filter with 3 hash functions as the sandbox;
 *  - an evaluation period of 256 eligible L2 accesses (miss or
 *    prefetched hit) per candidate offset;
 *  - during a period with candidate D, each access X performs a fake
 *    prefetch (inserts X+D into the filter) and checks the filter for
 *    X, X-D, X-2D and X-3D, incrementing D's score on every hit;
 *  - offsets whose score passes accuracy cutoffs issue real prefetches
 *    with degree 1, 2 or 3 depending on the score;
 *  - the L2 tags are looked up before issuing (degree-N prefetching
 *    generates redundant requests; paper assumes this check is free).
 *
 * The sandbox method measures accuracy only — not timeliness — which is
 * precisely the weakness the BO prefetcher addresses.
 */

#ifndef BOP_PREFETCH_SANDBOX_HH
#define BOP_PREFETCH_SANDBOX_HH

#include <cstdint>
#include <vector>

#include "prefetch/bloom.hh"
#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** Tunables for the Sandbox prefetcher. */
struct SbpConfig
{
    /** Eligible accesses per candidate evaluation period. */
    int evalPeriod = 256;
    std::size_t bloomBits = 2048;
    unsigned bloomHashes = 3;
    /**
     * Score cutoffs (relative to evalPeriod) for issuing with degree
     * >= 1 / 2 / 3. Defaults: 75% / 90% / 97% — the sandbox method only
     * issues for candidates whose measured accuracy is high, which is
     * what keeps its pollution acceptable without a timeliness signal.
     */
    int cutoffDegree1 = 192;
    int cutoffDegree2 = 232;
    int cutoffDegree3 = 248;
    /**
     * Cap on simultaneously active offsets (best scores win). The
     * original SBP has a small candidate set; with the 52-entry list an
     * uncapped prefetch set could issue dozens of requests per access.
     */
    int maxActiveOffsets = 2;
    std::uint64_t seed = 0x5b9;
};

/** Sandbox (SBP) offset prefetcher. */
class SandboxPrefetcher : public L2Prefetcher
{
  public:
    SandboxPrefetcher(PageSize page_size, std::vector<int> offsets,
                      SbpConfig cfg = {});

    void onAccess(const L2AccessEvent &ev,
                  std::vector<LineAddr> &out) override;

    bool requiresTagCheck() const override { return true; }
    std::string name() const override { return "sbp"; }

    /** Highest-scoring active offset (debug). */
    int currentOffset() const override;

    /** Active prefetch set: (offset, degree) pairs. Exposed for tests. */
    struct ActiveOffset
    {
        int offset;
        int degree;
        int score;
    };
    const std::vector<ActiveOffset> &activeSet() const { return active; }

    /** Candidate currently being evaluated in the sandbox (tests). */
    int candidateUnderEvaluation() const { return offsets[candIndex]; }

    /**
     * Checkpoint the score table, sandbox filter, in-period counters
     * and the active prefetch set (offset list is config-derived).
     */
    void
    serialize(Serializer &s) override
    {
        const std::size_t n = offsets.size();
        s.valueVec(scores);
        s.boolVec(evaluated);
        sandbox.serialize(s);
        std::uint64_t cand64 = candIndex;
        s.value(cand64);
        s.value(accessesThisPeriod);
        s.value(scoreThisPeriod);
        s.value(insertedThisPeriod);
        s.seq(active, [](Serializer &sr, ActiveOffset &a) {
            sr.value(a.offset);
            sr.value(a.degree);
            sr.value(a.score);
        });
        if (s.loading()) {
            if (scores.size() != n || evaluated.size() != n)
                s.fail("SBP score table size mismatch");
            if (cand64 >= n)
                s.fail("SBP candidate index out of range");
            candIndex = static_cast<std::size_t>(cand64);
        }
    }

  private:
    /** Finish the current candidate's period and move to the next. */
    void rotateCandidate();
    /** Recompute the active prefetch set from the score table. */
    void rebuildActiveSet();

    SbpConfig cfg;
    std::vector<int> offsets;     ///< candidate offsets (positive)
    std::vector<int> scores;      ///< last completed score per candidate
    std::vector<bool> evaluated;  ///< candidate has a valid score
    BloomFilter sandbox;
    std::size_t candIndex = 0;    ///< candidate currently in the sandbox
    int accessesThisPeriod = 0;
    int scoreThisPeriod = 0;
    int insertedThisPeriod = 0;   ///< fake prefetches that passed the
                                  ///< page check (score normaliser)
    std::vector<ActiveOffset> active;
};

} // namespace bop

#endif // BOP_PREFETCH_SANDBOX_HH
