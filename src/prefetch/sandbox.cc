#include "prefetch/sandbox.hh"

#include <algorithm>
#include <cassert>

namespace bop
{

SandboxPrefetcher::SandboxPrefetcher(PageSize page_size,
                                     std::vector<int> offsets_,
                                     SbpConfig cfg_)
    : L2Prefetcher(page_size),
      cfg(cfg_),
      offsets(std::move(offsets_)),
      scores(offsets.size(), 0),
      evaluated(offsets.size(), false),
      sandbox(cfg_.bloomBits, cfg_.bloomHashes, cfg_.seed)
{
    assert(!offsets.empty());
}

void
SandboxPrefetcher::rotateCandidate()
{
    // Normalise the score to the number of fake prefetches that were
    // actually inserted: with small pages, large candidate offsets
    // cross the page boundary on a fraction of accesses and insert
    // nothing — accuracy must be judged against the prefetches the
    // offset *could* have issued, or large offsets can never qualify
    // at 4KB pages no matter how accurate they are.
    if (insertedThisPeriod > 0) {
        scores[candIndex] = static_cast<int>(
            static_cast<long long>(scoreThisPeriod) * cfg.evalPeriod /
            insertedThisPeriod);
    } else {
        scores[candIndex] = 0;
    }
    evaluated[candIndex] = true;
    candIndex = (candIndex + 1) % offsets.size();
    accessesThisPeriod = 0;
    scoreThisPeriod = 0;
    insertedThisPeriod = 0;
    sandbox.clear();
    rebuildActiveSet();
}

void
SandboxPrefetcher::rebuildActiveSet()
{
    active.clear();
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        if (!evaluated[i] || scores[i] < cfg.cutoffDegree1)
            continue;
        int degree = 1;
        if (scores[i] >= cfg.cutoffDegree3)
            degree = 3;
        else if (scores[i] >= cfg.cutoffDegree2)
            degree = 2;
        active.push_back({offsets[i], degree, scores[i]});
    }
    // Keep only the best-scoring offsets (stable towards small offsets
    // on ties, matching the candidate list order).
    std::stable_sort(active.begin(), active.end(),
                     [](const ActiveOffset &a, const ActiveOffset &b) {
                         return a.score > b.score;
                     });
    if (active.size() > static_cast<std::size_t>(cfg.maxActiveOffsets))
        active.resize(static_cast<std::size_t>(cfg.maxActiveOffsets));
}

int
SandboxPrefetcher::currentOffset() const
{
    return active.empty() ? 0 : active.front().offset;
}

void
SandboxPrefetcher::onAccess(const L2AccessEvent &ev,
                            std::vector<LineAddr> &out)
{
    if (!ev.miss && !ev.prefetchedHit)
        return;

    const LineAddr x = ev.line;
    const int d = offsets[candIndex];

    // Sandbox evaluation: score hits for X, X-D, X-2D, X-3D, then fake-
    // prefetch X+D. Checking before inserting avoids the degenerate
    // self-hit where X+D==X (cannot happen with positive offsets, but
    // the order also matches hardware which reads before it writes).
    for (int k = 0; k <= 3; ++k) {
        const LineAddr probe = x - static_cast<LineAddr>(k) *
                                       static_cast<LineAddr>(d);
        if (sandbox.maybeContains(probe))
            ++scoreThisPeriod;
    }
    const LineAddr fake = x + static_cast<LineAddr>(d);
    if (inSamePage(x, fake)) {
        sandbox.insert(fake);
        ++insertedThisPeriod;
    }

    if (++accessesThisPeriod >= cfg.evalPeriod)
        rotateCandidate();

    // Real prefetches from the currently active set.
    for (const auto &ao : active) {
        for (int k = 1; k <= ao.degree; ++k) {
            const LineAddr target = x + static_cast<LineAddr>(k) *
                                            static_cast<LineAddr>(ao.offset);
            if (inSamePage(x, target))
                out.push_back(target);
        }
    }
}

} // namespace bop
