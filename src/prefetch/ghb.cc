#include "prefetch/ghb.hh"

#include <algorithm>
#include <cassert>

namespace bop
{

GhbAcdcPrefetcher::GhbAcdcPrefetcher(PageSize page_size, GhbConfig cfg_)
    : L2Prefetcher(page_size),
      cfg(cfg_),
      history(cfg_.historyEntries),
      index(cfg_.indexEntries),
      candScores(cfg_.zoneLineBitsCandidates.size(), 0)
{
    assert(!cfg.zoneLineBitsCandidates.empty());
    zoneBits = cfg.zoneLineBitsCandidates.front();
    if (!cfg.adaptiveZones)
        exploiting = true; // stay on the first candidate forever
}

std::vector<LineAddr>
GhbAcdcPrefetcher::correlate(const std::vector<LineAddr> &history,
                             int degree)
{
    std::vector<LineAddr> out;
    if (history.size() < 4 || degree <= 0)
        return out;

    // Delta stream, oldest-first. Deltas are signed line strides.
    std::vector<std::int64_t> deltas;
    deltas.reserve(history.size() - 1);
    for (std::size_t i = 1; i < history.size(); ++i) {
        deltas.push_back(static_cast<std::int64_t>(history[i]) -
                         static_cast<std::int64_t>(history[i - 1]));
    }

    // Correlation key: the last two deltas.
    const std::size_t n = deltas.size();
    if (n < 3)
        return out;
    const std::int64_t k1 = deltas[n - 2];
    const std::int64_t k2 = deltas[n - 1];

    // Find the key's earliest occurrence strictly before the end.
    std::size_t match = n; // sentinel: not found
    for (std::size_t j = 0; j + 2 < n; ++j) {
        if (deltas[j] == k1 && deltas[j + 1] == k2) {
            match = j;
            break;
        }
    }
    if (match == n)
        return out;

    // Replay the deltas that followed the match, wrapping around the
    // replay window like C/DC does (the periodic pattern repeats).
    std::int64_t addr = static_cast<std::int64_t>(history.back());
    std::size_t pos = match + 2;
    for (int i = 0; i < degree; ++i) {
        if (pos >= n) {
            // Wrap: continue replaying from the match point, so a
            // periodic delta sequence extends indefinitely.
            pos = match;
        }
        addr += deltas[pos++];
        if (addr < 0)
            break;
        out.push_back(static_cast<LineAddr>(addr));
    }
    return out;
}

std::vector<LineAddr>
GhbAcdcPrefetcher::chainHistory(std::uint64_t key) const
{
    std::vector<LineAddr> newest_first;

    const IndexEntry &ie = index[key % index.size()];
    if (!ie.valid || ie.key != key)
        return newest_first;

    std::uint64_t serial = ie.serial;
    for (int walked = 0; walked < cfg.maxChainWalk; ++walked) {
        // A serial is still resident iff it is within the last N
        // insertions (the buffer is circular).
        if (serial == 0 || serial + history.size() < nextSerial)
            break;
        const GhbEntry &e = history[serial % history.size()];
        newest_first.push_back(e.line);
        if (!e.hasPrev)
            break;
        serial = e.prevSerial;
    }

    std::reverse(newest_first.begin(), newest_first.end());
    return newest_first; // now oldest-first
}

void
GhbAcdcPrefetcher::record(LineAddr line)
{
    const std::uint64_t key = zoneKey(line);
    IndexEntry &ie = index[key % index.size()];

    GhbEntry entry;
    entry.line = line;
    if (ie.valid && ie.key == key &&
        ie.serial + history.size() >= nextSerial) {
        entry.prevSerial = ie.serial;
        entry.hasPrev = true;
    }

    const std::uint64_t serial = nextSerial++;
    history[serial % history.size()] = entry;
    ie.valid = true;
    ie.key = key;
    ie.serial = serial;
}

void
GhbAcdcPrefetcher::onAccess(const L2AccessEvent &ev,
                            std::vector<LineAddr> &out)
{
    // Epoch scoring: count accesses this prefetcher had predicted.
    if (cfg.adaptiveZones) {
        if (predicted.erase(ev.line))
            ++scoreThisEpoch;
    }

    record(ev.line);

    scratch = correlate(chainHistory(zoneKey(ev.line)), cfg.degree);
    for (const LineAddr target : scratch) {
        if (!inSamePage(ev.line, target))
            continue; // later replay steps may fold back into the page
        out.push_back(target);
        if (cfg.adaptiveZones && predicted.size() < 4096)
            predicted.insert(target);
    }

    if (cfg.adaptiveZones &&
        ++accessesThisEpoch >= cfg.epochAccesses) {
        endEpoch();
    }
}

void
GhbAcdcPrefetcher::endEpoch()
{
    lastScore = scoreThisEpoch;
    ++epochs;

    if (exploiting) {
        if (--epochsLeft <= 0)
            exploiting = false; // next epoch starts a new evaluation pass
    } else {
        candScores[candIdx] = scoreThisEpoch;
        ++candIdx;
        if (candIdx >= cfg.zoneLineBitsCandidates.size()) {
            // Pass complete: exploit the best-scoring zone size.
            const std::size_t best = static_cast<std::size_t>(
                std::max_element(candScores.begin(), candScores.end()) -
                candScores.begin());
            zoneBits = cfg.zoneLineBitsCandidates[best];
            candIdx = 0;
            exploiting = true;
            epochsLeft = cfg.exploitEpochs;
        } else {
            zoneBits = cfg.zoneLineBitsCandidates[candIdx];
        }
    }

    accessesThisEpoch = 0;
    scoreThisEpoch = 0;
    predicted.clear();
}

} // namespace bop
