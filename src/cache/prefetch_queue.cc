#include "cache/prefetch_queue.hh"

namespace bop
{

bool
PrefetchQueue::insert(const PrefetchRequest &req)
{
    bool cancelled = false;
    if (queue.size() >= capacity) {
        queue.pop_front();
        cancelled = true;
    }
    queue.push_back(req);
    return cancelled;
}

bool
PrefetchQueue::contains(LineAddr line) const
{
    for (const auto &req : queue) {
        if (req.line == line)
            return true;
    }
    return false;
}

const PrefetchRequest *
PrefetchQueue::peekReady(Cycle now) const
{
    for (const auto &req : queue) {
        if (req.readyAt <= now)
            return &req;
    }
    return nullptr;
}

void
PrefetchQueue::popFront(Cycle now)
{
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->readyAt <= now) {
            queue.erase(it);
            return;
        }
    }
}

std::optional<PrefetchRequest>
PrefetchQueue::popReady(Cycle now)
{
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->readyAt <= now) {
            PrefetchRequest req = *it;
            queue.erase(it);
            return req;
        }
    }
    return std::nullopt;
}

} // namespace bop
