#include "cache/prefetch_queue.hh"

namespace bop
{

void
PrefetchQueue::recomputeMinReady()
{
    minReady = noneReady;
    for (const auto &req : queue) {
        if (req.readyAt < minReady)
            minReady = req.readyAt;
    }
}

bool
PrefetchQueue::insert(const PrefetchRequest &req)
{
    bool cancelled = false;
    if (queue.size() >= capacity) {
        queue.pop_front();
        cancelled = true;
        recomputeMinReady();
    }
    queue.push_back(req);
    if (req.readyAt < minReady)
        minReady = req.readyAt;
    return cancelled;
}

bool
PrefetchQueue::contains(LineAddr line) const
{
    for (const auto &req : queue) {
        if (req.line == line)
            return true;
    }
    return false;
}

const PrefetchRequest *
PrefetchQueue::peekReady(Cycle now) const
{
    // The drain runs every cycle; minReady (maintained on mutation)
    // gates the scan so idle cycles cost one compare.
    if (minReady > now)
        return nullptr;
    for (const auto &req : queue) {
        if (req.readyAt <= now)
            return &req;
    }
    return nullptr;
}

void
PrefetchQueue::popFront(Cycle now)
{
    if (minReady > now)
        return;
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->readyAt <= now) {
            queue.erase(it);
            recomputeMinReady();
            return;
        }
    }
}

std::optional<PrefetchRequest>
PrefetchQueue::popReady(Cycle now)
{
    if (minReady > now)
        return std::nullopt;
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->readyAt <= now) {
            PrefetchRequest req = *it;
            queue.erase(it);
            recomputeMinReady();
            return req;
        }
    }
    return std::nullopt;
}

} // namespace bop
