#include "cache/drrip.hh"

#include <cassert>

namespace bop
{

void
DrripPolicy::reset(std::size_t sets, unsigned ways)
{
    rrpv.assign(sets, std::vector<std::uint8_t>(ways, rrpvMax));
    psel = pselMax / 2;
}

bool
DrripPolicy::isSrripLeader(std::size_t set) const
{
    return (set % constituencySize) == 0;
}

bool
DrripPolicy::isBrripLeader(std::size_t set) const
{
    return (set % constituencySize) == constituencySize / 2;
}

bool
DrripPolicy::useBrrip(std::size_t set) const
{
    if (isSrripLeader(set))
        return false;
    if (isBrripLeader(set))
        return true;
    // PSEL counts SRRIP-leader misses up, BRRIP-leader misses down; a
    // high PSEL therefore means SRRIP is missing more -> use BRRIP.
    return psel > pselMax / 2;
}

unsigned
DrripPolicy::victim(std::size_t set)
{
    auto &vals = rrpv[set];
    for (;;) {
        for (unsigned w = 0; w < vals.size(); ++w) {
            if (vals[w] == rrpvMax)
                return w;
        }
        for (auto &v : vals)
            ++v;
    }
}

unsigned
DrripPolicy::victimPeek(std::size_t set) const
{
    // The increment-until-saturated loop in victim() always evicts the
    // lowest-index way holding the current maximum RRPV.
    const auto &vals = rrpv[set];
    unsigned best = 0;
    for (unsigned w = 1; w < vals.size(); ++w) {
        if (vals[w] > vals[best])
            best = w;
    }
    return best;
}

void
DrripPolicy::onHit(std::size_t set, unsigned way)
{
    rrpv[set][way] = 0;
}

void
DrripPolicy::onFill(std::size_t set, unsigned way, const FillInfo &info)
{
    // Set dueling feedback: count demand misses in leader sets.
    if (info.demand) {
        if (isSrripLeader(set) && psel < pselMax)
            ++psel;
        else if (isBrripLeader(set) && psel > 0)
            --psel;
    }

    const bool brrip = useBrrip(set);
    if (brrip)
        rrpv[set][way] = (rng.below(32) == 0) ? rrpvMax - 1 : rrpvMax;
    else
        rrpv[set][way] = rrpvMax - 1;
}

} // namespace bop
