#include "cache/drrip.hh"

namespace bop
{

void
DrripPolicy::reset(std::size_t sets, unsigned ways)
{
    resetFlatState(sets, ways, rrpvMax);
    if (packed) {
        // Every in-range nibble at rrpvMax, filler nibbles at 0xF.
        const std::uint64_t init =
            ((nibbleOnes * rrpvMax) & packedWaysMask()) | ~packedWaysMask();
        words.assign(sets, init);
    }
    shared->psel = pselMax / 2;
    leaderTable.resize(sets);
    for (std::size_t set = 0; set < sets; ++set) {
        const std::size_t global =
            globalSetIds.empty() ? set : globalSetIds[set];
        leaderTable[set] = isSrripLeader(global)   ? srripLeader
                           : isBrripLeader(global) ? brripLeader
                                                   : follower;
    }
}

bool
DrripPolicy::isSrripLeader(std::size_t set) const
{
    return (set % constituencySize) == 0;
}

bool
DrripPolicy::isBrripLeader(std::size_t set) const
{
    return (set % constituencySize) == constituencySize / 2;
}

bool
DrripPolicy::useBrrip(std::size_t set) const
{
    const std::uint8_t kind = leaderTable[set];
    if (kind == srripLeader)
        return false;
    if (kind == brripLeader)
        return true;
    // PSEL counts SRRIP-leader misses up, BRRIP-leader misses down; a
    // high PSEL therefore means SRRIP is missing more -> use BRRIP.
    return shared->psel > pselMax / 2;
}

unsigned
DrripPolicy::victim(std::size_t set)
{
    // Evict the lowest-index way at the distant RRPV, aging every way
    // until one saturates. All RRPVs are <= rrpvMax - 1 whenever the
    // aging step runs, so the packed per-nibble add cannot carry.
    if (packed) {
        for (;;) {
            const unsigned w = findNibble(words[set], rrpvMax);
            if (w < numWays)
                return w;
            words[set] += nibbleOnes & packedWaysMask();
        }
    }
    std::uint8_t *vals = &wide[set * numWays];
    for (;;) {
        for (unsigned w = 0; w < numWays; ++w) {
            if (vals[w] == rrpvMax)
                return w;
        }
        for (unsigned w = 0; w < numWays; ++w)
            ++vals[w];
    }
}

unsigned
DrripPolicy::victimPeek(std::size_t set) const
{
    // The increment-until-saturated loop in victim() always evicts the
    // lowest-index way holding the current maximum RRPV.
    unsigned best = 0;
    for (unsigned w = 1; w < numWays; ++w) {
        if (rrpvOf(set, w) > rrpvOf(set, best))
            best = w;
    }
    return best;
}

void
DrripPolicy::onFill(std::size_t set, unsigned way, const FillInfo &info)
{
    // Set dueling feedback: count demand misses in leader sets.
    if (info.demand) {
        const std::uint8_t kind = leaderTable[set];
        if (kind == srripLeader && shared->psel < pselMax)
            ++shared->psel;
        else if (kind == brripLeader && shared->psel > 0)
            --shared->psel;
    }

    const bool brrip = useBrrip(set);
    if (brrip)
        setRrpv(set, way,
                (shared->rng.below(32) == 0) ? rrpvMax - 1 : rrpvMax);
    else
        setRrpv(set, way, rrpvMax - 1);
}

} // namespace bop
