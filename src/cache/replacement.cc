#include "cache/replacement.hh"

#include <algorithm>
#include <cassert>

namespace bop
{

void
StackPolicy::reset(std::size_t sets, unsigned ways)
{
    numWays = ways;
    stacks.assign(sets, {});
    for (auto &stack : stacks) {
        stack.resize(ways);
        for (unsigned w = 0; w < ways; ++w)
            stack[w] = static_cast<std::uint8_t>(w);
    }
}

unsigned
StackPolicy::victim(std::size_t set)
{
    return stacks[set].back();
}

unsigned
StackPolicy::victimPeek(std::size_t set) const
{
    return stacks[set].back();
}

void
StackPolicy::onHit(std::size_t set, unsigned way)
{
    touchMru(set, way);
}

unsigned
StackPolicy::positionOf(std::size_t set, unsigned way) const
{
    const auto &stack = stacks[set];
    for (unsigned p = 0; p < stack.size(); ++p) {
        if (stack[p] == way)
            return p;
    }
    assert(false && "way not present in recency stack");
    return 0;
}

void
StackPolicy::touchMru(std::size_t set, unsigned way)
{
    auto &stack = stacks[set];
    auto it = std::find(stack.begin(), stack.end(),
                        static_cast<std::uint8_t>(way));
    assert(it != stack.end());
    stack.erase(it);
    stack.insert(stack.begin(), static_cast<std::uint8_t>(way));
}

void
StackPolicy::touchLru(std::size_t set, unsigned way)
{
    auto &stack = stacks[set];
    auto it = std::find(stack.begin(), stack.end(),
                        static_cast<std::uint8_t>(way));
    assert(it != stack.end());
    stack.erase(it);
    stack.push_back(static_cast<std::uint8_t>(way));
}

void
LruPolicy::onFill(std::size_t set, unsigned way, const FillInfo &info)
{
    (void)info;
    touchMru(set, way);
}

void
BipPolicy::onFill(std::size_t set, unsigned way, const FillInfo &info)
{
    (void)info;
    if (rng.below(invProb) == 0)
        touchMru(set, way);
    else
        touchLru(set, way);
}

} // namespace bop
