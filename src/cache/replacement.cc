#include "cache/replacement.hh"

#include <cassert>

namespace bop
{

namespace
{

/** Nibble p holds p: the identity recency permutation for 16 ways. */
constexpr std::uint64_t identityNibbles = 0xfedcba9876543210ull;

} // namespace

void
StackPolicy::reset(std::size_t sets, unsigned ways)
{
    resetFlatState(sets, ways, 0);
    if (packed) {
        // Identity order (way w at position w), filler nibbles at 0xF.
        const std::uint64_t init =
            (identityNibbles & packedWaysMask()) | ~packedWaysMask();
        words.assign(sets, init);
    } else {
        for (std::size_t s = 0; s < sets; ++s)
            for (unsigned w = 0; w < ways; ++w)
                wide[s * ways + w] = static_cast<std::uint8_t>(w);
    }
}

unsigned
StackPolicy::victim(std::size_t set)
{
    return lruWay(set);
}

unsigned
StackPolicy::victimPeek(std::size_t set) const
{
    return lruWay(set);
}

unsigned
StackPolicy::positionOf(std::size_t set, unsigned way) const
{
    if (packed) {
        const unsigned p = findNibble(words[set], way);
        assert(p < numWays && "way not present in recency stack");
        return p;
    }
    const std::uint8_t *stack = &wide[set * numWays];
    for (unsigned p = 0; p < numWays; ++p) {
        if (stack[p] == way)
            return p;
    }
    assert(false && "way not present in recency stack");
    return 0;
}

void
LruPolicy::onFill(std::size_t set, unsigned way, const FillInfo &info)
{
    (void)info;
    touchMru(set, way);
}

void
BipPolicy::onFill(std::size_t set, unsigned way, const FillInfo &info)
{
    (void)info;
    if (rng.below(invProb) == 0)
        touchMru(set, way);
    else
        touchLru(set, way);
}

} // namespace bop
