#include "cache/policy_5p.hh"

#include <cassert>

namespace bop
{

void
Policy5P::reset(std::size_t sets, unsigned ways)
{
    StackPolicy::reset(sets, ways);
    shared->policyCounters.reset();
    shared->coreMissCounters.reset();
    assert((globalSetIds.empty() || globalSetIds.size() == sets) &&
           "bank set translation must cover every local set");
    leaderTable.resize(sets);
    for (std::size_t set = 0; set < sets; ++set) {
        const std::size_t global =
            globalSetIds.empty() ? set : globalSetIds[set];
        leaderTable[set] =
            static_cast<std::int8_t>(computeLeaderPolicy(global));
    }
}

int
Policy5P::computeLeaderPolicy(std::size_t set) const
{
    // Spread the five leader sets across the constituency so they do not
    // cluster in one region of the index space.
    const std::size_t pos = set % constituencySize;
    for (int i = 0; i < numInsertionPolicies; ++i) {
        if (pos == static_cast<std::size_t>(i) * (constituencySize /
                                                  numInsertionPolicies))
            return i;
    }
    return -1;
}

int
Policy5P::leaderPolicyOf(std::size_t set) const
{
    assert(set < leaderTable.size() && "set out of range: reset() first");
    return leaderTable[set];
}

InsertionPolicy
Policy5P::followerPolicy() const
{
    return static_cast<InsertionPolicy>(shared->policyCounters.argMin());
}

bool
Policy5P::coreHasLowMissRate(CoreId core) const
{
    const std::uint32_t max_val = shared->coreMissCounters.maxValue();
    return shared->coreMissCounters.value(static_cast<std::size_t>(core)) <
           max_val / 4;
}

void
Policy5P::applyInsertion(InsertionPolicy ip, std::size_t set, unsigned way,
                         const FillInfo &info)
{
    bool mru = false;
    switch (ip) {
      case InsertionPolicy::IP1_Mru:
        mru = true;
        break;
      case InsertionPolicy::IP2_Bip:
        mru = shared->rng.below(32) == 0;
        break;
      case InsertionPolicy::IP3_DemandMru:
        mru = info.demand;
        break;
      case InsertionPolicy::IP4_LowMissCoreMru:
        mru = coreHasLowMissRate(info.core);
        break;
      case InsertionPolicy::IP5_DemandLowMissCoreMru:
        mru = info.demand && coreHasLowMissRate(info.core);
        break;
    }
    if (mru)
        touchMru(set, way);
    else
        touchLru(set, way);
}

void
Policy5P::onFill(std::size_t set, unsigned way, const FillInfo &info)
{
    // Track per-core pressure on the cache: every insertion counts.
    shared->coreMissCounters.increment(static_cast<std::size_t>(info.core));

    const int leader = leaderPolicyOf(set);
    if (leader >= 0) {
        // Leader sets always apply their dedicated policy, and demand
        // misses in them "vote" against that policy.
        if (info.demand)
            shared->policyCounters.increment(
                static_cast<std::size_t>(leader));
        applyInsertion(static_cast<InsertionPolicy>(leader), set, way, info);
    } else {
        applyInsertion(followerPolicy(), set, way, info);
    }
}

} // namespace bop
