/**
 * @file
 * Cache fill queue with associative (CAM) search — the paper's
 * replacement for L2/L3 MSHRs (Sec. 5.4).
 *
 * Life cycle of an entry:
 *   - allocate(): reserved when a miss request is issued to the next
 *     level ("a request is not issued until there is a free entry");
 *   - fillData(): the next level hit, the block is written into the
 *     queue and waits to be inserted into the cache;
 *   - release(): the next level missed too — the entry is freed and the
 *     request travels on (it will come back later via
 *     allocateWithData() when the block is forwarded from outer levels);
 *   - popReady(): the cache inserts blocks from the queue.
 *
 * The CAM supports the late-prefetch optimisation: a demand miss that
 * matches an in-flight prefetch entry is dropped and the entry promoted
 * from prefetch to demand.
 */

#ifndef BOP_CACHE_FILL_QUEUE_HH
#define BOP_CACHE_FILL_QUEUE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/req.hh"
#include "common/types.hh"

namespace bop
{

/** One fill-queue slot. */
struct FillQueueEntry
{
    bool valid = false;
    LineAddr line = 0;
    bool hasData = false;
    Cycle readyAt = 0;      ///< earliest cycle the block may be inserted
    bool isPrefetch = false;///< live status; cleared by promotion
    ReqMeta meta;
    std::uint32_t id = 0;
};

/**
 * Occupancy/id bookkeeping shared by the banks of a banked fill queue.
 *
 * A channel-banked L3 splits its fill queue into per-bank FIFOs, but
 * the structure must still behave as ONE queue architecturally: a
 * single capacity (backpressure fires on total occupancy, not per
 * bank) and a single monotonic id sequence (ids define the global
 * drain order the banks' drains are merged in). Banks point at one
 * group; a standalone queue owns a private one.
 */
struct FillQueueGroup
{
    explicit FillQueueGroup(std::size_t capacity_) : capacity(capacity_) {}

    std::size_t capacity;
    std::size_t liveEntries = 0;
    std::uint32_t nextId = 1;
};

/** Fixed-capacity fill queue with FIFO-ish drain and CAM search. */
class FillQueue
{
  public:
    FillQueue(std::string name, std::size_t capacity);

    /**
     * Bank constructor: this queue is one bank of a larger structure
     * whose capacity/occupancy/id sequence live in @p group_ (which
     * must outlive the queue). The bank sizes its slot array at the
     * full group capacity so any skew of entries across banks fits.
     */
    FillQueue(std::string name, FillQueueGroup &group_);

    bool full() const { return group->liveEntries >= group->capacity; }
    /** Live entries in this queue/bank (not the whole group). */
    std::size_t size() const { return liveEntries; }
    std::size_t cap() const { return group->capacity; }

    /**
     * Data-less ("waiting") allocations keep a couple of slots in
     * reserve for returning data, so the queue can never be entirely
     * occupied by entries that depend on further downstream progress
     * (deadlock avoidance; see MemHierarchy).
     */
    bool
    canAllocateWaiting() const
    {
        return group->liveEntries + waitingReserve < group->capacity;
    }

    /** Reserve an entry for a miss issued to the next level. */
    std::uint32_t allocate(LineAddr line, const ReqMeta &meta,
                           bool is_prefetch);

    /** Free an entry whose request missed in the next level. */
    void release(std::uint32_t id);

    /** Data for a previously allocated entry arrived. */
    void fillData(std::uint32_t id, Cycle ready_at);

    /** Allocate an entry that already carries data (forwarded block). */
    std::uint32_t allocateWithData(LineAddr line, const ReqMeta &meta,
                                   bool is_prefetch, Cycle ready_at);

    /** CAM search by line address; nullptr if absent. */
    FillQueueEntry *find(LineAddr line);
    const FillQueueEntry *find(LineAddr line) const;

    /**
     * Remove and return the oldest entry whose data is ready at @p now.
     * (The paper drains the queue in FIFO order; entries still waiting
     * for next-level data are skipped, which can only reorder an L3-hit
     * fill ahead of an older in-flight allocation.)
     */
    std::optional<FillQueueEntry> popReady(Cycle now);

    /**
     * Peek at the oldest ready entry without removing it (so the caller
     * can test backpressure gates first); nullptr if none.
     */
    FillQueueEntry *peekReady(Cycle now);

    /** Remove a specific (peeked) entry. */
    void removeById(std::uint32_t id) { release(id); }

    /** Entry lookup by id (must be live). */
    FillQueueEntry &entry(std::uint32_t id);

    /**
     * Smallest readyAt among entries that carry data (neverCycle when
     * none do) — the earliest cycle a drain could pop something.
     * Entries still waiting for next-level data contribute nothing:
     * their unblocking event belongs to a downstream component's
     * horizon. Maintained incrementally (recomputed only when the
     * minimum entry leaves); used by the event-horizon fast-forward.
     */
    Cycle minReadyAt() const { return minDataReady; }

    /**
     * Checkpoint this queue/bank's slots and drain order, including
     * the incrementally maintained occupancy counts and min-ready
     * gate (pure functions of the slots, serialized rather than
     * rebuilt so the restored queue is field-identical). A standalone
     * queue also checkpoints its private group; banks do not — the
     * hierarchy serializes the shared group exactly once.
     */
    void
    serialize(Serializer &s)
    {
        const std::size_t capacity = slots.size();
        s.seq(slots, [](Serializer &sr, FillQueueEntry &e) {
            sr.value(e.valid);
            sr.value(e.line);
            sr.value(e.hasData);
            sr.value(e.readyAt);
            sr.value(e.isPrefetch);
            e.meta.serialize(sr);
            sr.value(e.id);
        });
        s.valueVec(fifo);
        std::uint64_t live64 = liveEntries;
        std::uint64_t data64 = dataEntries;
        s.value(live64);
        s.value(data64);
        s.value(minDataReady);
        if (ownGroup) {
            std::uint64_t group_live = group->liveEntries;
            s.value(group_live);
            s.value(group->nextId);
            if (s.loading()) {
                if (group_live > group->capacity)
                    s.fail("fill queue '" + name +
                           "' group occupancy out of range");
                group->liveEntries =
                    static_cast<std::size_t>(group_live);
            }
        }
        if (s.loading()) {
            if (slots.size() != capacity || fifo.size() > capacity)
                s.fail("fill queue '" + name + "' capacity mismatch");
            if (live64 > capacity || data64 > live64)
                s.fail("fill queue '" + name +
                       "' occupancy out of range");
            liveEntries = static_cast<std::size_t>(live64);
            dataEntries = static_cast<std::size_t>(data64);
        }
    }

  private:
    std::size_t slotOf(std::uint32_t id) const;

    /** Re-derive minDataReady after the minimum entry left. */
    void recomputeMinDataReady();

    /** Slots reserved against waiting-entry exhaustion. */
    static constexpr std::size_t waitingReserve = 2;

    std::string name;
    /** Private group for the standalone (non-banked) constructor. */
    std::unique_ptr<FillQueueGroup> ownGroup;
    /** Shared occupancy/id bookkeeping (== ownGroup.get() standalone). */
    FillQueueGroup *group;
    std::size_t liveEntries = 0; ///< live entries in THIS queue/bank
    /**
     * Live entries whose data has arrived. The ready-drain scans run
     * every cycle and on most cycles no entry carries data yet; this
     * count lets them bail before touching the fifo at all.
     */
    std::size_t dataEntries = 0;
    Cycle minDataReady = neverCycle; ///< min readyAt over data entries
    std::vector<FillQueueEntry> slots;
    /**
     * Live slot indices in allocation order. A flat vector (capacity
     * reserved up front): the per-cycle scans walk one contiguous run,
     * and the occasional mid-erase is a short memmove.
     */
    std::vector<std::uint32_t> fifo;
};

} // namespace bop

#endif // BOP_CACHE_FILL_QUEUE_HH
