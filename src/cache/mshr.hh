/**
 * @file
 * DL1 miss status holding registers.
 *
 * The paper keeps MSHRs only at the DL1 (Sec. 5.4): they track which
 * loads/stores wait on a missing block, coalesce requests to the same
 * line, and prevent redundant miss requests. L2/L3 use fill-queue CAMs
 * instead. Table 1: 32 DL1 block requests.
 */

#ifndef BOP_CACHE_MSHR_HH
#define BOP_CACHE_MSHR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serializer.hh"
#include "common/types.hh"

namespace bop
{

/** One MSHR: a pending DL1 block request plus its waiting micro-ops. */
struct MshrEntry
{
    bool valid = false;
    LineAddr line = 0;
    bool prefetchOnly = true;   ///< no demand waiter yet
    bool storeIntent = false;   ///< a store waits: fill becomes dirty
    int storeWaiters = 0;       ///< store-queue slots to free on fill
    std::vector<std::uint32_t> waiters; ///< ROB indices to wake
    Cycle issuedAt = 0;
    std::uint32_t id = 0;
};

/**
 * Fixed-size MSHR file with line-address matching.
 *
 * The CAM probe runs on every DL1 request, so the line match scans a
 * flat tag array (invalid slots hold a sentinel no simulated line can
 * equal) instead of striding over the fat entry structs, and skips the
 * scan entirely while the file is empty.
 */
class MshrFile
{
  public:
    explicit MshrFile(std::size_t capacity);

    bool full() const { return live >= entries.size(); }
    std::size_t size() const { return live; }

    /** Find the MSHR tracking @p line, if any. */
    MshrEntry *find(LineAddr line);

    /**
     * Allocate an MSHR for @p line. Caller must have checked full() and
     * that no entry for the line exists. Returns the entry id.
     */
    std::uint32_t allocate(LineAddr line, bool prefetch_only, Cycle now);

    /** Complete (deallocate) the MSHR for @p line; returns its state. */
    std::optional<MshrEntry> complete(LineAddr line);

    /** Complete by id. */
    std::optional<MshrEntry> completeById(std::uint32_t id);

    /** Checkpoint every slot (capacity is configuration). */
    void
    serialize(Serializer &s)
    {
        const std::size_t capacity = entries.size();
        s.seq(entries, [](Serializer &sr, MshrEntry &e) {
            sr.value(e.valid);
            sr.value(e.line);
            sr.value(e.prefetchOnly);
            sr.value(e.storeIntent);
            sr.value(e.storeWaiters);
            sr.valueVec(e.waiters);
            sr.value(e.issuedAt);
            sr.value(e.id);
        });
        s.valueVec(lineTags);
        std::uint64_t live64 = live;
        s.value(live64);
        s.value(nextId);
        if (s.loading()) {
            if (entries.size() != capacity ||
                lineTags.size() != capacity)
                s.fail("MSHR file capacity mismatch");
            if (live64 > capacity)
                s.fail("MSHR live count out of range");
            live = static_cast<std::size_t>(live64);
        }
    }

  private:
    /** Sentinel tag for free slots (no line address reaches ~0). */
    static constexpr LineAddr freeTag = ~static_cast<LineAddr>(0);

    /** Slot holding @p line, or the capacity when absent. */
    std::size_t slotOf(LineAddr line) const;

    std::vector<MshrEntry> entries;
    std::vector<LineAddr> lineTags; ///< parallel to entries; freeTag = free
    std::size_t live = 0;
    std::uint32_t nextId = 1;
};

} // namespace bop

#endif // BOP_CACHE_MSHR_HH
