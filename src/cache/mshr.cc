#include "cache/mshr.hh"

#include <cassert>

namespace bop
{

MshrFile::MshrFile(std::size_t capacity)
{
    entries.resize(capacity);
}

MshrEntry *
MshrFile::find(LineAddr line)
{
    for (auto &e : entries) {
        if (e.valid && e.line == line)
            return &e;
    }
    return nullptr;
}

std::uint32_t
MshrFile::allocate(LineAddr line, bool prefetch_only, Cycle now)
{
    assert(!full());
    assert(!find(line) && "caller must coalesce instead of reallocating");
    for (auto &e : entries) {
        if (!e.valid) {
            e.valid = true;
            e.line = line;
            e.prefetchOnly = prefetch_only;
            e.storeIntent = false;
            e.storeWaiters = 0;
            e.waiters.clear();
            e.issuedAt = now;
            e.id = nextId++;
            ++live;
            return e.id;
        }
    }
    assert(false);
    return 0;
}

std::optional<MshrEntry>
MshrFile::complete(LineAddr line)
{
    for (auto &e : entries) {
        if (e.valid && e.line == line) {
            MshrEntry copy = e;
            e.valid = false;
            --live;
            return copy;
        }
    }
    return std::nullopt;
}

std::optional<MshrEntry>
MshrFile::completeById(std::uint32_t id)
{
    for (auto &e : entries) {
        if (e.valid && e.id == id) {
            MshrEntry copy = e;
            e.valid = false;
            --live;
            return copy;
        }
    }
    return std::nullopt;
}

} // namespace bop
