#include "cache/mshr.hh"

#include <cassert>

namespace bop
{

MshrFile::MshrFile(std::size_t capacity)
{
    entries.resize(capacity);
    lineTags.assign(capacity, freeTag);
}

std::size_t
MshrFile::slotOf(LineAddr line) const
{
    if (live == 0)
        return lineTags.size();
    for (std::size_t s = 0; s < lineTags.size(); ++s) {
        if (lineTags[s] == line)
            return s;
    }
    return lineTags.size();
}

MshrEntry *
MshrFile::find(LineAddr line)
{
    const std::size_t s = slotOf(line);
    return s < entries.size() ? &entries[s] : nullptr;
}

std::uint32_t
MshrFile::allocate(LineAddr line, bool prefetch_only, Cycle now)
{
    assert(!full());
    assert(!find(line) && "caller must coalesce instead of reallocating");
    assert(line != freeTag && "line address collides with the free-slot "
                              "sentinel");
    for (std::size_t s = 0; s < entries.size(); ++s) {
        MshrEntry &e = entries[s];
        if (!e.valid) {
            e.valid = true;
            e.line = line;
            e.prefetchOnly = prefetch_only;
            e.storeIntent = false;
            e.storeWaiters = 0;
            e.waiters.clear();
            e.issuedAt = now;
            e.id = nextId++;
            lineTags[s] = line;
            ++live;
            return e.id;
        }
    }
    assert(false);
    return 0;
}

std::optional<MshrEntry>
MshrFile::complete(LineAddr line)
{
    const std::size_t s = slotOf(line);
    if (s == entries.size())
        return std::nullopt;
    MshrEntry copy = entries[s];
    entries[s].valid = false;
    lineTags[s] = freeTag;
    --live;
    return copy;
}

std::optional<MshrEntry>
MshrFile::completeById(std::uint32_t id)
{
    for (std::size_t s = 0; s < entries.size(); ++s) {
        MshrEntry &e = entries[s];
        if (e.valid && e.id == id) {
            MshrEntry copy = e;
            e.valid = false;
            lineTags[s] = freeTag;
            --live;
            return copy;
        }
    }
    return std::nullopt;
}

} // namespace bop
