#include "cache/fill_queue.hh"

#include <cassert>
#include <stdexcept>

namespace bop
{

FillQueue::FillQueue(std::string name_, std::size_t capacity_)
    : name(std::move(name_)),
      ownGroup(std::make_unique<FillQueueGroup>(capacity_)),
      group(ownGroup.get())
{
    slots.resize(group->capacity);
    fifo.reserve(group->capacity);
}

FillQueue::FillQueue(std::string name_, FillQueueGroup &group_)
    : name(std::move(name_)), group(&group_)
{
    slots.resize(group->capacity);
    fifo.reserve(group->capacity);
}

std::size_t
FillQueue::slotOf(std::uint32_t id) const
{
    // The fifo holds exactly the live slots, so scanning it visits
    // size() entries instead of all capacity slots.
    for (const std::uint32_t s : fifo) {
        if (slots[s].id == id)
            return s;
    }
    throw std::logic_error(name + ": unknown fill queue entry id");
}

std::uint32_t
FillQueue::allocate(LineAddr line, const ReqMeta &meta, bool is_prefetch)
{
    assert(!full() && "caller must check full() before allocating");
    for (std::size_t s = 0; s < slots.size(); ++s) {
        FillQueueEntry &slot = slots[s];
        if (!slot.valid) {
            slot.valid = true;
            slot.line = line;
            slot.hasData = false;
            slot.readyAt = 0;
            slot.isPrefetch = is_prefetch;
            slot.meta = meta;
            slot.id = group->nextId++;
            fifo.push_back(static_cast<std::uint32_t>(s));
            ++liveEntries;
            ++group->liveEntries;
            return slot.id;
        }
    }
    throw std::logic_error(name + ": no free slot despite !full()");
}

void
FillQueue::release(std::uint32_t id)
{
    for (auto it = fifo.begin(); it != fifo.end(); ++it) {
        FillQueueEntry &slot = slots[*it];
        if (slot.id == id) {
            const bool had_data = slot.hasData;
            const Cycle ready = slot.readyAt;
            slot.valid = false;
            slot.hasData = false;
            --liveEntries;
            --group->liveEntries;
            // Erase before recomputing the minimum, or the scan would
            // still see the dying entry and pin a stale value.
            fifo.erase(it);
            if (had_data) {
                --dataEntries;
                if (ready == minDataReady)
                    recomputeMinDataReady();
            }
            return;
        }
    }
    throw std::logic_error(name + ": unknown fill queue entry id");
}

void
FillQueue::fillData(std::uint32_t id, Cycle ready_at)
{
    const std::size_t s = slotOf(id);
    if (!slots[s].hasData)
        ++dataEntries;
    slots[s].hasData = true;
    slots[s].readyAt = ready_at;
    if (ready_at < minDataReady)
        minDataReady = ready_at;
}

std::uint32_t
FillQueue::allocateWithData(LineAddr line, const ReqMeta &meta,
                            bool is_prefetch, Cycle ready_at)
{
    const std::uint32_t id = allocate(line, meta, is_prefetch);
    fillData(id, ready_at);
    return id;
}

FillQueueEntry *
FillQueue::find(LineAddr line)
{
    // The CAM is probed on every request travelling between cache
    // levels, so the scan is occupancy-bounded: skip the whole search
    // when empty and stop once every live entry has been inspected.
    if (liveEntries == 0)
        return nullptr;
    std::size_t seen = 0;
    for (auto &slot : slots) {
        if (!slot.valid)
            continue;
        if (slot.line == line)
            return &slot;
        if (++seen == liveEntries)
            break;
    }
    return nullptr;
}

const FillQueueEntry *
FillQueue::find(LineAddr line) const
{
    return const_cast<FillQueue *>(this)->find(line);
}

FillQueueEntry *
FillQueue::peekReady(Cycle now)
{
    if (dataEntries == 0)
        return nullptr;
    for (const std::uint32_t s : fifo) {
        FillQueueEntry &slot = slots[s];
        if (slot.hasData && slot.readyAt <= now)
            return &slot;
    }
    return nullptr;
}

std::optional<FillQueueEntry>
FillQueue::popReady(Cycle now)
{
    if (dataEntries == 0)
        return std::nullopt;
    for (auto it = fifo.begin(); it != fifo.end(); ++it) {
        FillQueueEntry &slot = slots[*it];
        if (slot.hasData && slot.readyAt <= now) {
            FillQueueEntry copy = slot;
            slot.valid = false;
            slot.hasData = false;
            --dataEntries;
            --liveEntries;
            --group->liveEntries;
            fifo.erase(it);
            if (copy.readyAt == minDataReady)
                recomputeMinDataReady();
            return copy;
        }
    }
    return std::nullopt;
}

void
FillQueue::recomputeMinDataReady()
{
    minDataReady = neverCycle;
    if (dataEntries == 0)
        return;
    std::size_t seen = 0;
    for (const std::uint32_t s : fifo) {
        const FillQueueEntry &slot = slots[s];
        if (!slot.hasData)
            continue;
        if (slot.readyAt < minDataReady)
            minDataReady = slot.readyAt;
        if (++seen == dataEntries)
            break;
    }
}

FillQueueEntry &
FillQueue::entry(std::uint32_t id)
{
    return slots[slotOf(id)];
}


} // namespace bop
