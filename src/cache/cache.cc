#include "cache/cache.hh"

#include <cassert>
#include <stdexcept>

namespace bop
{

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(std::string name_, std::uint64_t size_bytes,
                             unsigned ways_,
                             std::unique_ptr<ReplacementPolicy> policy_)
    : name(std::move(name_)),
      sets(size_bytes / lineBytes / ways_),
      ways(ways_),
      policy(std::move(policy_))
{
    if (!policy)
        throw std::invalid_argument(name + ": null replacement policy");
    if (sets == 0 || !isPowerOfTwo(sets))
        throw std::invalid_argument(name + ": set count must be a power "
                                           "of two and non-zero");
    linesArr.assign(sets * ways, {});
    policy->reset(sets, ways);
}

CacheLineState *
SetAssocCache::lookup(LineAddr line, unsigned &way_out)
{
    const std::size_t set = setOf(line);
    for (unsigned w = 0; w < ways; ++w) {
        CacheLineState &ls = linesArr[set * ways + w];
        if (ls.valid && ls.line == line) {
            way_out = w;
            return &ls;
        }
    }
    return nullptr;
}

CacheAccessResult
SetAssocCache::access(LineAddr line, bool is_write, bool from_core_side)
{
    CacheAccessResult res;
    unsigned way = 0;
    CacheLineState *ls = lookup(line, way);
    if (!ls)
        return res;

    res.hit = true;
    res.way = way;
    if (from_core_side) {
        res.prefetchedHit = ls->prefetchBit;
        ls->prefetchBit = false;
    }
    if (is_write)
        ls->dirty = true;
    policy->onHit(setOf(line), way);
    return res;
}

bool
SetAssocCache::probe(LineAddr line) const
{
    const std::size_t set = line & (sets - 1);
    for (unsigned w = 0; w < ways; ++w) {
        const CacheLineState &ls = linesArr[set * ways + w];
        if (ls.valid && ls.line == line)
            return true;
    }
    return false;
}

CacheVictim
SetAssocCache::insert(LineAddr line, const CacheFill &fill)
{
    assert(!probe(line) && "duplicate insertion: caller must tag-check");

    const std::size_t set = setOf(line);
    CacheVictim victim;

    // Prefer an invalid way; otherwise ask the policy for a victim.
    unsigned way = ways;
    for (unsigned w = 0; w < ways; ++w) {
        if (!linesArr[set * ways + w].valid) {
            way = w;
            break;
        }
    }
    if (way == ways) {
        way = policy->victim(set);
        const CacheLineState &old = linesArr[set * ways + way];
        victim.valid = true;
        victim.line = old.line;
        victim.dirty = old.dirty;
        victim.core = old.fillCore;
        victim.prefetchBit = old.prefetchBit;
    }

    CacheLineState &ls = linesArr[set * ways + way];
    ls.valid = true;
    ls.line = line;
    ls.dirty = fill.markDirty;
    ls.prefetchBit = fill.markPrefetch;
    ls.fillCore = fill.core;

    policy->onFill(set, way, FillInfo{fill.core, fill.demand});
    return victim;
}

CacheVictim
SetAssocCache::peekVictim(LineAddr line) const
{
    const std::size_t set = line & (sets - 1);
    CacheVictim victim;
    for (unsigned w = 0; w < ways; ++w) {
        if (!linesArr[set * ways + w].valid)
            return victim; // an invalid way will be used: no eviction
    }
    const unsigned way = policy->victimPeek(set);
    const CacheLineState &old = linesArr[set * ways + way];
    victim.valid = true;
    victim.line = old.line;
    victim.dirty = old.dirty;
    victim.core = old.fillCore;
    victim.prefetchBit = old.prefetchBit;
    return victim;
}

bool
SetAssocCache::invalidate(LineAddr line)
{
    unsigned way = 0;
    CacheLineState *ls = lookup(line, way);
    if (!ls)
        return false;
    ls->valid = false;
    ls->dirty = false;
    ls->prefetchBit = false;
    return true;
}

const CacheLineState *
SetAssocCache::findLine(LineAddr line) const
{
    const std::size_t set = line & (sets - 1);
    for (unsigned w = 0; w < ways; ++w) {
        const CacheLineState &ls = linesArr[set * ways + w];
        if (ls.valid && ls.line == line)
            return &ls;
    }
    return nullptr;
}

} // namespace bop
