#include "cache/cache.hh"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace bop
{

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(std::string name_, std::uint64_t size_bytes,
                             unsigned ways_,
                             std::unique_ptr<ReplacementPolicy> policy_)
    : SetAssocCache(std::move(name_),
                    ways_ ? size_bytes / lineBytes / ways_ : 0, ways_,
                    std::move(policy_),
                    SetIndexFold::identity(
                        ways_ ? size_bytes / lineBytes / ways_ : 1))
{
}

SetAssocCache::SetAssocCache(std::string name_, std::size_t num_sets,
                             unsigned ways_,
                             std::unique_ptr<ReplacementPolicy> policy_,
                             const SetIndexFold &fold_)
    : name(std::move(name_)),
      sets(num_sets),
      ways(ways_),
      fold(fold_),
      policy(std::move(policy_))
{
    if (!policy)
        throw std::invalid_argument(name + ": null replacement policy");
    if (ways == 0 || ways > 64)
        throw std::invalid_argument(name + ": way count must be 1..64");
    if (sets == 0 || !isPowerOfTwo(sets))
        throw std::invalid_argument(name + ": set count must be a power "
                                           "of two and non-zero");
    tags.assign(sets * ways, invalidTag);
    dirtyBits.assign(sets * ways, 0);
    prefetchBits.assign(sets * ways, 0);
    fillCores.assign(sets * ways, 0);
    validMask.assign(sets, 0);
    policy->reset(sets, ways);
}

std::uint64_t
SetAssocCache::fullSetMask() const
{
    return ways == 64 ? ~0ull : (1ull << ways) - 1;
}

unsigned
SetAssocCache::findWay(std::size_t set, LineAddr line) const
{
    const LineAddr *row = &tags[set * ways];
    for (unsigned w = 0; w < ways; ++w) {
        if (row[w] == line)
            return w;
    }
    return ways;
}

CacheAccessResult
SetAssocCache::access(LineAddr line, bool is_write, bool from_core_side)
{
    CacheAccessResult res;
    const std::size_t set = setOf(line);
    const unsigned way = findWay(set, line);
    if (way == ways)
        return res;

    const std::size_t idx = set * ways + way;
    res.hit = true;
    res.way = way;
    if (from_core_side) {
        res.prefetchedHit = prefetchBits[idx] != 0;
        prefetchBits[idx] = 0;
    }
    if (is_write)
        dirtyBits[idx] = 1;
    policy->onHit(set, way);
    return res;
}

bool
SetAssocCache::probe(LineAddr line) const
{
    return findWay(setOf(line), line) != ways;
}

CacheVictim
SetAssocCache::victimAt(std::size_t set, unsigned way) const
{
    const std::size_t idx = set * ways + way;
    CacheVictim victim;
    victim.valid = true;
    victim.line = tags[idx];
    victim.dirty = dirtyBits[idx] != 0;
    victim.core = fillCores[idx];
    victim.prefetchBit = prefetchBits[idx] != 0;
    return victim;
}

CacheVictim
SetAssocCache::insert(LineAddr line, const CacheFill &fill)
{
    assert(!probe(line) && "duplicate insertion: caller must tag-check");
    assert(line != invalidTag && "line address collides with the "
                                 "invalid-tag sentinel");

    const std::size_t set = setOf(line);
    CacheVictim victim;

    // Prefer the first invalid way; otherwise ask the policy for a victim.
    unsigned way;
    const std::uint64_t invalid = ~validMask[set] & fullSetMask();
    if (invalid != 0) {
        way = static_cast<unsigned>(std::countr_zero(invalid));
    } else {
        way = policy->victim(set);
        victim = victimAt(set, way);
    }

    const std::size_t idx = set * ways + way;
    tags[idx] = line;
    dirtyBits[idx] = fill.markDirty ? 1 : 0;
    prefetchBits[idx] = fill.markPrefetch ? 1 : 0;
    fillCores[idx] = fill.core;
    validMask[set] |= 1ull << way;

    if (policy->fillIsMruTouch())
        policy->onHit(set, way);
    else
        policy->onFill(set, way, FillInfo{fill.core, fill.demand});
    return victim;
}

CacheVictim
SetAssocCache::peekVictim(LineAddr line) const
{
    const std::size_t set = setOf(line);
    if (validMask[set] != fullSetMask())
        return {}; // an invalid way will be used: no eviction
    return victimAt(set, policy->victimPeek(set));
}

bool
SetAssocCache::invalidate(LineAddr line)
{
    const std::size_t set = setOf(line);
    const unsigned way = findWay(set, line);
    if (way == ways)
        return false;
    const std::size_t idx = set * ways + way;
    tags[idx] = invalidTag;
    dirtyBits[idx] = 0;
    prefetchBits[idx] = 0;
    validMask[set] &= ~(1ull << way);
    return true;
}

std::optional<CacheLineState>
SetAssocCache::findLine(LineAddr line) const
{
    const std::size_t set = setOf(line);
    const unsigned way = findWay(set, line);
    if (way == ways)
        return std::nullopt;
    const std::size_t idx = set * ways + way;
    CacheLineState ls;
    ls.valid = true;
    ls.line = tags[idx];
    ls.dirty = dirtyBits[idx] != 0;
    ls.prefetchBit = prefetchBits[idx] != 0;
    ls.fillCore = fillCores[idx];
    return ls;
}

} // namespace bop
