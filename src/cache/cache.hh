/**
 * @file
 * Generic set-associative cache tag array with prefetch bits.
 *
 * Only tags and per-line metadata are modeled (trace-driven simulation
 * carries no data values). Each line has a dirty bit and a prefetch bit:
 * the prefetch bit is set when a prefetched line is filled and reset the
 * first time the line is requested from the core side (paper Sec. 5.6),
 * which is how "prefetched hits" are recognised as prefetcher trigger
 * events and how useless prefetches are measured.
 *
 * The tag array is stored structure-of-arrays: lookups scan one
 * contiguous 8-byte-stride `tags` run per set (invalid ways hold a
 * sentinel tag no simulated line address can equal, so the scan is a
 * single compare per way), while the dirty/prefetch bits and fill-core
 * ids live in parallel flat arrays touched only on a hit or fill.
 * Validity is one bitmask word per set, so "first invalid way" and
 * "set full" are a mask op instead of a scan.
 */

#ifndef BOP_CACHE_CACHE_HH
#define BOP_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/types.hh"

namespace bop
{

/** Snapshot of one line's tag-array state (findLine result). */
struct CacheLineState
{
    bool valid = false;
    LineAddr line = 0;      ///< full line address (tag + index)
    bool dirty = false;
    bool prefetchBit = false;
    CoreId fillCore = 0;    ///< core that caused the fill
};

/** Outcome of a cache lookup. */
struct CacheAccessResult
{
    bool hit = false;
    bool prefetchedHit = false; ///< hit on a line whose prefetch bit was set
    unsigned way = 0;
};

/** Block evicted by an insertion (for writeback generation). */
struct CacheVictim
{
    bool valid = false;     ///< false when an invalid way was used
    LineAddr line = 0;
    bool dirty = false;
    CoreId core = 0;        ///< core that had filled the victim
    /**
     * The victim's prefetch bit was still set, i.e. the line was
     * prefetched but never requested by the core before eviction — a
     * useless prefetch (the measurement next-line prefetching's
     * prefetch bits were introduced for, Sec. 2 [33]).
     */
    bool prefetchBit = false;
};

/** Metadata for inserting a block. */
struct CacheFill
{
    CoreId core = 0;
    bool demand = true;        ///< demand fill (vs prefetch fill)
    bool markPrefetch = false; ///< set the line's prefetch bit
    bool markDirty = false;    ///< e.g. writeback fills
};

/**
 * How a cache derives its set index from a line address:
 *
 *     set = (line & lowMask) | ((line >> shift) & highMask)
 *
 * The default (shift 0, masks partitioning sets-1) is the classic
 * `line & (sets-1)`. A channel bank of a larger cache uses shift = k
 * (k = log2 channels) to squeeze out the k line-address bits that the
 * DRAM channel XOR-fold pins once the bank is fixed, giving each bank
 * a dense local set index over its sets/channels share of the array.
 */
struct SetIndexFold
{
    unsigned shift = 0;
    std::uint64_t lowMask = 0;
    std::uint64_t highMask = 0;

    /** Identity fold: set = line & (sets-1). */
    static SetIndexFold identity(std::size_t sets)
    {
        return {0, (sets - 1) & 0x3ull, (sets - 1) & ~0x3ull};
    }
};

/** Set-associative, write-back, non-inclusive cache tag array. */
class SetAssocCache
{
  public:
    /**
     * @param name        debug name
     * @param size_bytes  total capacity; must be sets*ways*64
     * @param ways        associativity (1..64)
     * @param policy      replacement policy (owned)
     */
    SetAssocCache(std::string name, std::uint64_t size_bytes, unsigned ways,
                  std::unique_ptr<ReplacementPolicy> policy);

    /**
     * Bank constructor: explicit set count plus the index fold mapping
     * line addresses into this bank's local sets (see SetIndexFold).
     * The caller guarantees every line routed here folds into
     * [0, num_sets).
     */
    SetAssocCache(std::string name, std::size_t num_sets, unsigned ways,
                  std::unique_ptr<ReplacementPolicy> policy,
                  const SetIndexFold &fold);

    /**
     * Core-side read/write access.
     *
     * On a hit the replacement state is updated; if @p from_core_side the
     * prefetch bit is cleared (and its previous value reported so the
     * caller can detect prefetched hits). A write hit sets the dirty bit.
     */
    CacheAccessResult access(LineAddr line, bool is_write,
                             bool from_core_side = true);

    /** Tag check with no state change (used before issuing prefetches). */
    bool probe(LineAddr line) const;

    /**
     * Insert a block, evicting if necessary. Returns the victim (if any)
     * so the caller can generate a writeback.
     */
    CacheVictim insert(LineAddr line, const CacheFill &fill);

    /**
     * Predict what insert() would evict, without changing any state
     * (used to check writeback backpressure before committing a fill).
     */
    CacheVictim peekVictim(LineAddr line) const;

    /** Invalidate a line if present; returns true if it was present. */
    bool invalidate(LineAddr line);

    /** Direct line-state inspection (tests/debug). */
    std::optional<CacheLineState> findLine(LineAddr line) const;

    std::size_t numSets() const { return sets; }
    unsigned numWays() const { return ways; }
    std::size_t setOf(LineAddr line) const
    {
        return (line & fold.lowMask) | ((line >> fold.shift) & fold.highMask);
    }
    const std::string &cacheName() const { return name; }

    /** Access to the replacement policy (tests/config). */
    ReplacementPolicy &replacementPolicy() { return *policy; }

    /** Checkpoint the tag-array state and the replacement policy. */
    void
    serialize(Serializer &s)
    {
        const std::size_t lines = tags.size();
        s.valueVec(tags);
        s.valueVec(dirtyBits);
        s.valueVec(prefetchBits);
        s.valueVec(fillCores);
        s.valueVec(validMask);
        if (s.loading() &&
            (tags.size() != lines || dirtyBits.size() != lines ||
             prefetchBits.size() != lines || fillCores.size() != lines ||
             validMask.size() != sets))
            s.fail("cache '" + name + "' geometry mismatch");
        policy->serialize(s);
    }

  private:
    /**
     * Sentinel stored in invalid ways' tag slots. No simulated line
     * address can equal it (line addresses are byte addresses >> 6, so
     * an all-ones line would need a 70-bit byte address), which keeps
     * the lookup scan a single compare per way.
     */
    static constexpr LineAddr invalidTag = ~static_cast<LineAddr>(0);

    /**
     * Shared tag-scan core for access/probe/invalidate/findLine:
     * way holding @p line in @p set, or the way count when absent.
     */
    unsigned findWay(std::size_t set, LineAddr line) const;

    /** Snapshot the (valid) block at set/way as an eviction victim. */
    CacheVictim victimAt(std::size_t set, unsigned way) const;

    /** Bitmask covering every way of one set. */
    std::uint64_t fullSetMask() const;

    std::string name;
    std::size_t sets;
    unsigned ways;
    SetIndexFold fold;
    std::unique_ptr<ReplacementPolicy> policy;

    // Structure-of-arrays line state, all sets * ways, row-major.
    std::vector<LineAddr> tags;            ///< invalidTag when invalid
    std::vector<std::uint8_t> dirtyBits;
    std::vector<std::uint8_t> prefetchBits;
    std::vector<CoreId> fillCores;
    std::vector<std::uint64_t> validMask;  ///< per-set bitmask of valid ways
};

} // namespace bop

#endif // BOP_CACHE_CACHE_HH
