/**
 * @file
 * DRRIP replacement [Jaleel et al., ISCA'10], used by the paper's Fig. 3
 * comparison against the 5P baseline policy.
 *
 * 2-bit re-reference prediction values (RRPV). SRRIP inserts at RRPV=2,
 * BRRIP inserts at RRPV=3 except with probability 1/32 at RRPV=2. Set
 * dueling between SRRIP and BRRIP leader sets drives a PSEL counter that
 * selects the policy used by follower sets.
 */

#ifndef BOP_CACHE_DRRIP_HH
#define BOP_CACHE_DRRIP_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"
#include "common/rng.hh"

namespace bop
{

/** DRRIP: SRRIP/BRRIP set dueling on 2-bit RRPVs. */
class DrripPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param seed RNG seed for BRRIP's 1/32 near-insertions
     * @param constituency leader-set spacing (one SRRIP + one BRRIP
     *        leader per @p constituency consecutive sets)
     */
    explicit DrripPolicy(std::uint64_t seed = 0xdead,
                         std::size_t constituency = 64)
        : rng(seed), constituencySize(constituency)
    {
    }

    void reset(std::size_t sets, unsigned ways) override;
    unsigned victim(std::size_t set) override;
    unsigned victimPeek(std::size_t set) const override;
    void onHit(std::size_t set, unsigned way) override;
    void onFill(std::size_t set, unsigned way, const FillInfo &info) override;

    /** Exposed for tests: current PSEL value. */
    int pselValue() const { return psel; }
    /** Exposed for tests: leader-set classification. */
    bool isSrripLeader(std::size_t set) const;
    bool isBrripLeader(std::size_t set) const;

  private:
    static constexpr std::uint8_t rrpvMax = 3;     // 2-bit RRPV
    static constexpr int pselMax = 1023;           // 10-bit PSEL

    bool useBrrip(std::size_t set) const;

    Rng rng;
    std::size_t constituencySize;
    int psel = pselMax / 2;
    std::vector<std::vector<std::uint8_t>> rrpv;
};

} // namespace bop

#endif // BOP_CACHE_DRRIP_HH
