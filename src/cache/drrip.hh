/**
 * @file
 * DRRIP replacement [Jaleel et al., ISCA'10], used by the paper's Fig. 3
 * comparison against the 5P baseline policy.
 *
 * 2-bit re-reference prediction values (RRPV). SRRIP inserts at RRPV=2,
 * BRRIP inserts at RRPV=3 except with probability 1/32 at RRPV=2. Set
 * dueling between SRRIP and BRRIP leader sets drives a PSEL counter that
 * selects the policy used by follower sets.
 *
 * RRPVs live in the flat base-class state: one packed 64-bit word per
 * set (way w's RRPV in nibble w) for up to 16 ways, a flat byte array
 * beyond that. Hits clear the RRPV through the base class's non-virtual
 * onHit fast path.
 */

#ifndef BOP_CACHE_DRRIP_HH
#define BOP_CACHE_DRRIP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/replacement.hh"
#include "common/rng.hh"

namespace bop
{

/**
 * DRRIP state global to the whole cache: the BRRIP RNG and the duel
 * PSEL counter. Bank instances of a channel-banked LLC share one so
 * the global draw/duel order matches the monolithic cache exactly.
 */
struct DrripSharedState
{
    explicit DrripSharedState(std::uint64_t seed) : rng(seed) {}

    Rng rng;
    int psel = 0; ///< re-initialised by DrripPolicy::reset()
};

/** DRRIP: SRRIP/BRRIP set dueling on 2-bit RRPVs. */
class DrripPolicy final : public ReplacementPolicy
{
  public:
    /**
     * @param seed RNG seed for BRRIP's 1/32 near-insertions
     * @param constituency leader-set spacing (one SRRIP + one BRRIP
     *        leader per @p constituency consecutive sets)
     */
    explicit DrripPolicy(std::uint64_t seed = 0xdead,
                         std::size_t constituency = 64)
        : ReplacementPolicy(HitUpdate::RrpvClear),
          shared(std::make_shared<DrripSharedState>(seed)),
          constituencySize(constituency)
    {
    }

    /**
     * Bank constructor: share cache-global state with sibling banks and
     * translate this bank's dense local set ids back to the monolithic
     * cache's ids (@p global_sets, one entry per local set) so the
     * leader-set layout is preserved exactly.
     */
    DrripPolicy(std::shared_ptr<DrripSharedState> shared_state,
                std::vector<std::size_t> global_sets,
                std::size_t constituency = 64)
        : ReplacementPolicy(HitUpdate::RrpvClear),
          shared(std::move(shared_state)),
          constituencySize(constituency),
          globalSetIds(std::move(global_sets))
    {
    }

    void reset(std::size_t sets, unsigned ways) override;
    unsigned victim(std::size_t set) override;
    unsigned victimPeek(std::size_t set) const override;
    void onFill(std::size_t set, unsigned way, const FillInfo &info) override;

    /**
     * Checkpoint RRPVs plus the cache-global duel state. Banked LLCs
     * serialize the shared state once per bank; every bank writes (and
     * restores) identical values, so the round trip is idempotent and
     * byte-stable in either direction.
     */
    void
    serialize(Serializer &s) override
    {
        ReplacementPolicy::serialize(s);
        shared->rng.serialize(s);
        s.value(shared->psel);
    }

    /** Exposed for tests: current PSEL value. */
    int pselValue() const { return shared->psel; }
    /** Exposed for tests: leader-set classification. */
    bool isSrripLeader(std::size_t set) const;
    bool isBrripLeader(std::size_t set) const;

  private:
    static constexpr std::uint8_t rrpvMax = 3;     // 2-bit RRPV
    static constexpr int pselMax = 1023;           // 10-bit PSEL

    /** Leader-set classification, precomputed per set in reset(). */
    enum LeaderKind : std::uint8_t
    {
        follower = 0,
        srripLeader = 1,
        brripLeader = 2,
    };

    bool useBrrip(std::size_t set) const;

    std::uint8_t
    rrpvOf(std::size_t set, unsigned way) const
    {
        if (packed)
            return static_cast<std::uint8_t>(
                (words[set] >> (4u * way)) & nibbleMask);
        return wide[set * numWays + way];
    }

    void
    setRrpv(std::size_t set, unsigned way, std::uint8_t value)
    {
        if (packed)
            words[set] = (words[set] & ~(nibbleMask << (4u * way))) |
                         (static_cast<std::uint64_t>(value) << (4u * way));
        else
            wide[set * numWays + way] = value;
    }

    std::shared_ptr<DrripSharedState> shared;
    std::size_t constituencySize;
    /**
     * Local-to-monolithic set-id translation for bank instances (empty
     * = identity). Only consulted in reset() for the leader table.
     */
    std::vector<std::size_t> globalSetIds;
    /**
     * Flat per-set LeaderKind table: onFill consults the leader status
     * on every insertion, and the two modulo reductions were measurable
     * there.
     */
    std::vector<std::uint8_t> leaderTable;
};

} // namespace bop

#endif // BOP_CACHE_DRRIP_HH
