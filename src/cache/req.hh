/**
 * @file
 * Request metadata that travels with a block through the memory
 * hierarchy (paper Sec. 5.4: "Some metadata (a few bits) is associated
 * with each request as it travels through the memory hierarchy,
 * indicating its type ... and in which cache levels the block will have
 * to be inserted").
 */

#ifndef BOP_CACHE_REQ_HH
#define BOP_CACHE_REQ_HH

#include <cstdint>

#include "common/serializer.hh"
#include "common/types.hh"

namespace bop
{

/** What kind of request originally produced this block. */
enum class ReqType : std::uint8_t
{
    DemandRead,  ///< DL1 load/store miss
    L1Prefetch,  ///< DL1 stride-prefetcher request
    L2Prefetch,  ///< L2 prefetcher request (BO / next-line / SBP / ...)
    Writeback,   ///< dirty eviction moving down the hierarchy
};

/** Sentinel for "no MSHR attached". */
constexpr std::uint32_t invalidMshr = 0xffffffffu;

/** Per-request metadata carried through queues and fill queues. */
struct ReqMeta
{
    CoreId core = 0;
    ReqType type = ReqType::DemandRead;

    /** Block must be forwarded into the DL1 when inserted into the L2. */
    bool needL1 = false;
    /** Block must be forwarded into the L2 when inserted into the L3. */
    bool needL2 = false;

    /**
     * The request started life as an L2 prefetch. Unlike the live
     * "is prefetch" status (which late-prefetch promotion clears), this
     * survives promotion: the BO prefetcher records the base address of
     * *completed* prefetches in its RR table whether or not a demand
     * caught up with them in flight.
     */
    bool wasL2Prefetch = false;

    /** DL1 prefetch-bit marking when the block reaches the DL1. */
    bool l1PrefetchBit = false;

    /** Offset D in effect when an L2 prefetch was issued (RR base). */
    int prefetchOffset = 0;

    /** DL1 MSHR to complete when the block arrives (if needL1). */
    std::uint32_t mshrId = invalidMshr;

    /** L2 fill-queue entry reserved for this request (if any). */
    std::uint32_t l2FillId = invalidMshr;

    /** L3 fill-queue entry reserved for this request (if any). */
    std::uint32_t l3FillId = invalidMshr;

    /** Cycle the originating access started (latency bookkeeping). */
    Cycle birth = 0;

    /** Checkpoint every field, in declaration order. */
    void
    serialize(Serializer &s)
    {
        s.value(core);
        s.value(type);
        s.value(needL1);
        s.value(needL2);
        s.value(wasL2Prefetch);
        s.value(l1PrefetchBit);
        s.value(prefetchOffset);
        s.value(mshrId);
        s.value(l2FillId);
        s.value(l3FillId);
        s.value(birth);
    }
};

} // namespace bop

#endif // BOP_CACHE_REQ_HH
