/**
 * @file
 * The paper's 5P last-level-cache replacement policy (Sec. 5.2).
 *
 * 5P is DIP-style set sampling extended to five insertion policies:
 *   IP1: MRU insertion (classical LRU replacement)
 *   IP2: bimodal LRU/MRU insertion (BIP)
 *   IP3: MRU insertion only for demand misses (prefetch fills go to LRU)
 *   IP4: MRU insertion only for blocks fetched by a low-miss-rate core
 *   IP5: MRU only for demand misses from a low-miss-rate core
 *
 * Because more than two policies compete, DIP's single PSEL counter is
 * replaced by one "proportional counter" per policy: a demand-miss fill
 * into a set dedicated to IPi increments counter Ci; all five counters
 * are halved when any reaches CMAX; follower sets use the policy with
 * the lowest counter (fewest recent demand misses).
 *
 * Core miss rates are tracked the same way with four per-core counters:
 * a core is "low miss rate" when its counter is below 1/4 of the current
 * maximum (Sec. 5.2). On a hit, the block always moves to MRU.
 */

#ifndef BOP_CACHE_POLICY_5P_HH
#define BOP_CACHE_POLICY_5P_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/replacement.hh"
#include "common/prop_counter.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace bop
{

/** The five insertion policies competing inside 5P. */
enum class InsertionPolicy : int
{
    IP1_Mru = 0,
    IP2_Bip = 1,
    IP3_DemandMru = 2,
    IP4_LowMissCoreMru = 3,
    IP5_DemandLowMissCoreMru = 4,
};

/** Number of insertion policies in 5P. */
constexpr int numInsertionPolicies = 5;

/**
 * 5P state that is global to the whole LLC, not per-set: the BIP RNG
 * and the proportional counter groups. When the L3 is banked per DRAM
 * channel, every bank's Policy5P instance shares one of these, so the
 * global draw/halving order is identical to the monolithic cache's.
 */
struct Policy5PSharedState
{
    Policy5PSharedState(std::uint64_t seed, int num_cores,
                        unsigned counter_bits)
        : rng(seed),
          policyCounters(numInsertionPolicies, counter_bits),
          coreMissCounters(static_cast<std::size_t>(num_cores),
                          counter_bits)
    {
    }

    Rng rng;
    PropCounterGroup policyCounters;
    PropCounterGroup coreMissCounters;
};

/** The 5P prefetch- and core-aware replacement policy. */
class Policy5P final : public StackPolicy
{
  public:
    /**
     * @param seed          RNG seed for the BIP component
     * @param num_cores     cores sharing the cache (one miss counter
     *                      each; the paper's chip has 4)
     * @param constituency  sets per constituency (paper: 128)
     * @param counter_bits  width of the proportional counters (paper: 12)
     */
    explicit Policy5P(std::uint64_t seed = 0x5105, int num_cores = 4,
                      std::size_t constituency = 128,
                      unsigned counter_bits = 12)
        : shared(std::make_shared<Policy5PSharedState>(seed, num_cores,
                                                       counter_bits)),
          constituencySize(constituency)
    {
    }

    /**
     * Bank constructor: share LLC-global state with sibling banks and
     * translate this bank's dense local set ids back to the monolithic
     * cache's set ids (@p global_sets, one entry per local set) so the
     * leader-set layout is preserved exactly.
     */
    Policy5P(std::shared_ptr<Policy5PSharedState> shared_state,
             std::vector<std::size_t> global_sets,
             std::size_t constituency = 128)
        : shared(std::move(shared_state)),
          constituencySize(constituency),
          globalSetIds(std::move(global_sets))
    {
    }

    void reset(std::size_t sets, unsigned ways) override;
    void onFill(std::size_t set, unsigned way, const FillInfo &info) override;

    /**
     * Checkpoint recency stacks plus the LLC-global selector state.
     * Like DRRIP, banked instances serialize the shared state once per
     * bank — idempotent both directions, so save→restore→save is
     * byte-identical.
     */
    void
    serialize(Serializer &s) override
    {
        ReplacementPolicy::serialize(s);
        shared->rng.serialize(s);
        shared->policyCounters.serialize(s);
        shared->coreMissCounters.serialize(s);
    }

    /**
     * Leader-set mapping: within each constituency, one set is dedicated
     * to each insertion policy. Returns the policy index for a leader
     * set, or -1 for follower sets. Exposed for tests. Answered from a
     * flat per-set table built in reset() (onFill runs once per cache
     * insertion, and the modulo arithmetic was measurable there).
     */
    int leaderPolicyOf(std::size_t set) const;

    /** Policy currently used by follower sets. Exposed for tests. */
    InsertionPolicy followerPolicy() const;

    /** True iff @p core currently counts as low-miss-rate. */
    bool coreHasLowMissRate(CoreId core) const;

    /** Counter value for insertion policy @p i (tests/debug). */
    std::uint32_t policyCounter(int i) const
    {
        return shared->policyCounters.value(static_cast<std::size_t>(i));
    }

  private:
    /** Apply insertion policy @p ip to the just-filled way. */
    void applyInsertion(InsertionPolicy ip, std::size_t set, unsigned way,
                        const FillInfo &info);

    /** Leader policy of a set from the constituency layout alone. */
    int computeLeaderPolicy(std::size_t set) const;

    std::shared_ptr<Policy5PSharedState> shared;
    std::size_t constituencySize;
    /**
     * Local-to-monolithic set-id translation for bank instances (empty
     * = identity, the monolithic cache). Only consulted in reset() when
     * building the leader table.
     */
    std::vector<std::size_t> globalSetIds;
    /** Per-set leader policy (-1 follower), precomputed in reset(). */
    std::vector<std::int8_t> leaderTable;
};

} // namespace bop

#endif // BOP_CACHE_POLICY_5P_HH
