/**
 * @file
 * The 8-entry L2 prefetch queue (paper Sec. 5.4): "Prefetch requests
 * wait in an 8-entry prefetch queue until they can access the L3 cache.
 * When a prefetch request is inserted into the queue, and if the queue
 * is full, the oldest request is cancelled." Prefetches have the lowest
 * priority for L3 access, and the queue is associatively searched to
 * drop redundant prefetches before insertion.
 */

#ifndef BOP_CACHE_PREFETCH_QUEUE_HH
#define BOP_CACHE_PREFETCH_QUEUE_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "cache/req.hh"
#include "common/types.hh"

namespace bop
{

/** A pending L2 prefetch request waiting for L3 access. */
struct PrefetchRequest
{
    LineAddr line = 0;
    ReqMeta meta;
    Cycle readyAt = 0;  ///< earliest cycle it may access the L3
};

/** Bounded FIFO with oldest-cancel overflow and associative search. */
class PrefetchQueue
{
  public:
    explicit PrefetchQueue(std::size_t capacity_) : capacity(capacity_) {}

    /**
     * Insert a request; if the queue is full the oldest request is
     * cancelled. @return true if an old request was cancelled.
     */
    bool insert(const PrefetchRequest &req);

    /** Associative search (for redundant-prefetch dropping). */
    bool contains(LineAddr line) const;

    /** Pop the oldest request that is ready at @p now. */
    std::optional<PrefetchRequest> popReady(Cycle now);

    /** Peek the oldest ready request (for backpressure checks). */
    const PrefetchRequest *peekReady(Cycle now) const;

    /** Remove the oldest ready request (after a successful peek). */
    void popFront(Cycle now);

    std::size_t size() const { return queue.size(); }
    bool empty() const { return queue.empty(); }
    std::size_t cap() const { return capacity; }

    /**
     * Smallest readyAt in the queue; neverCycle when empty. Already
     * maintained for the per-cycle ready gate — the event-horizon
     * fast-forward reads it as this queue's next-event time.
     */
    Cycle minReadyAt() const { return minReady; }

    /** Checkpoint the queued requests and the min-ready gate. */
    void
    serialize(Serializer &s)
    {
        s.seq(queue, [](Serializer &sr, PrefetchRequest &r) {
            sr.value(r.line);
            r.meta.serialize(sr);
            sr.value(r.readyAt);
        });
        s.value(minReady);
        if (s.loading() && queue.size() > capacity)
            s.fail("prefetch queue over capacity");
    }

  private:
    /** Sentinel: no queued request can ever become ready. */
    static constexpr Cycle noneReady = neverCycle;

    void recomputeMinReady();

    std::size_t capacity;
    std::deque<PrefetchRequest> queue;
    /**
     * Smallest readyAt in the queue (noneReady when empty), maintained
     * on every mutation so the per-cycle ready checks can bail with one
     * compare instead of scanning the queue.
     */
    Cycle minReady = noneReady;
};

} // namespace bop

#endif // BOP_CACHE_PREFETCH_QUEUE_HH
