/**
 * @file
 * Cache replacement policy interface plus the simple stack-based policies
 * (LRU, BIP). The paper's 5P policy and DRRIP live in their own files.
 *
 * Policies manage a per-set recency/age state and answer three questions:
 * which way to evict, what to do on a hit, and where to insert a fill.
 * The cache itself prefers invalid ways before consulting the policy.
 */

#ifndef BOP_CACHE_REPLACEMENT_HH
#define BOP_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace bop
{

/**
 * Metadata describing the fill that is being inserted, used by
 * prefetch-aware / core-aware insertion policies.
 */
struct FillInfo
{
    CoreId core = 0;        ///< core the block was fetched for
    bool demand = true;     ///< true: demand miss; false: prefetch fill
};

/** Abstract replacement policy for one set-associative array. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** (Re)size internal state for a sets x ways array; clears state. */
    virtual void reset(std::size_t sets, unsigned ways) = 0;

    /** Choose a victim way in a full set. */
    virtual unsigned victim(std::size_t set) = 0;

    /**
     * Predict the victim way without mutating policy state (used to
     * test backpressure conditions before committing an insertion).
     * Must return the same way victim() would.
     */
    virtual unsigned victimPeek(std::size_t set) const = 0;

    /** Update state after a hit on @p way. */
    virtual void onHit(std::size_t set, unsigned way) = 0;

    /** Update state after filling @p way with a new block. */
    virtual void onFill(std::size_t set, unsigned way,
                        const FillInfo &info) = 0;
};

/**
 * Base class for policies keeping an explicit per-set recency stack
 * (position 0 = MRU, position ways-1 = LRU).
 */
class StackPolicy : public ReplacementPolicy
{
  public:
    void reset(std::size_t sets, unsigned ways) override;
    unsigned victim(std::size_t set) override;
    unsigned victimPeek(std::size_t set) const override;
    void onHit(std::size_t set, unsigned way) override;

    /** Recency position of a way (0 = MRU). Exposed for tests. */
    unsigned positionOf(std::size_t set, unsigned way) const;

  protected:
    /** Move a way to the MRU position. */
    void touchMru(std::size_t set, unsigned way);
    /** Move a way to the LRU position. */
    void touchLru(std::size_t set, unsigned way);

    unsigned numWays = 0;
    /** stacks[set] lists way indices from MRU (front) to LRU (back). */
    std::vector<std::vector<std::uint8_t>> stacks;
};

/** Classical LRU: always insert at MRU. */
class LruPolicy : public StackPolicy
{
  public:
    void onFill(std::size_t set, unsigned way, const FillInfo &info) override;
};

/**
 * Bimodal insertion (BIP): insert at LRU, promoting to MRU with
 * probability 1/32 [Qureshi et al., ISCA'07]. Used standalone and as the
 * IP2 component of the 5P policy.
 */
class BipPolicy : public StackPolicy
{
  public:
    explicit BipPolicy(std::uint64_t seed = 0xb1b0, unsigned inv_prob = 32)
        : rng(seed), invProb(inv_prob)
    {
    }

    void onFill(std::size_t set, unsigned way, const FillInfo &info) override;

  private:
    Rng rng;
    unsigned invProb;
};

} // namespace bop

#endif // BOP_CACHE_REPLACEMENT_HH
