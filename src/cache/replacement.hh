/**
 * @file
 * Cache replacement policy interface plus the simple stack-based policies
 * (LRU, BIP). The paper's 5P policy and DRRIP live in their own files.
 *
 * Policies manage a per-set recency/age state and answer three questions:
 * which way to evict, what to do on a hit, and where to insert a fill.
 * The cache itself prefers invalid ways before consulting the policy.
 *
 * Hot-path layout: every policy keeps its per-set state in flat arrays
 * sized once in reset() — no per-access allocation, no nested vectors.
 * For arrays of up to 16 ways the whole per-set state packs into one
 * 64-bit word (4 bits per way), so the dominant operations — promoting
 * a way to MRU on a hit, clearing an RRPV — are a handful of shifts and
 * masks on one cached word. Wider arrays fall back to a flat
 * sets*ways byte array with identical semantics. The hit update is
 * deliberately *non-virtual*: every policy's hit behavior is one of two
 * flat-word updates (stack MRU-promotion or RRPV-clear), selected by a
 * tag the concrete policy sets at construction, so SetAssocCache::access
 * pays no virtual dispatch on the hit path.
 */

#ifndef BOP_CACHE_REPLACEMENT_HH
#define BOP_CACHE_REPLACEMENT_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace bop
{

/**
 * Metadata describing the fill that is being inserted, used by
 * prefetch-aware / core-aware insertion policies.
 */
struct FillInfo
{
    CoreId core = 0;        ///< core the block was fetched for
    bool demand = true;     ///< true: demand miss; false: prefetch fill
};

/** Abstract replacement policy for one set-associative array. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** (Re)size internal state for a sets x ways array; clears state. */
    virtual void reset(std::size_t sets, unsigned ways) = 0;

    /** Choose a victim way in a full set. */
    virtual unsigned victim(std::size_t set) = 0;

    /**
     * Predict the victim way without mutating policy state (used to
     * test backpressure conditions before committing an insertion).
     * Must return the same way victim() would.
     */
    virtual unsigned victimPeek(std::size_t set) const = 0;

    /** Update state after filling @p way with a new block. */
    virtual void onFill(std::size_t set, unsigned way,
                        const FillInfo &info) = 0;

    /**
     * Update state after a hit on @p way. Non-virtual: dispatches on the
     * HitUpdate tag fixed at construction, so the cache's hit path costs
     * one predictable branch instead of a virtual call.
     */
    void
    onHit(std::size_t set, unsigned way)
    {
        if (hitUpdate == HitUpdate::StackMru)
            touchMru(set, way);
        else if (packed)
            words[set] &= ~(nibbleMask << (way * 4u)); // RRPV -> 0
        else
            wide[set * numWays + way] = 0;
    }

    /**
     * True when onFill is unconditionally the same MRU-touch as onHit
     * (classical LRU), letting the cache route fills through the
     * non-virtual hit path too.
     */
    bool fillIsMruTouch() const { return mruFill; }

    /**
     * Checkpoint the per-set state (packed words or wide bytes).
     * Policies with extra mutable state (BIP's RNG, DRRIP's PSEL +
     * RNG, 5P's counters) extend this; geometry/config fields are
     * rebuilt by reset() at construction and are not serialized.
     */
    virtual void
    serialize(Serializer &s)
    {
        s.valueVec(words);
        s.valueVec(wide);
    }

  protected:
    /** The two hit-update flavors shared by all concrete policies. */
    enum class HitUpdate : std::uint8_t
    {
        StackMru,  ///< promote the way to the MRU recency position
        RrpvClear, ///< zero the way's re-reference prediction value
    };

    explicit ReplacementPolicy(HitUpdate hit) : hitUpdate(hit) {}

    /** Widest geometry whose per-set state fits one packed word. */
    static constexpr unsigned maxPackedWays = 16;
    static constexpr std::uint64_t nibbleMask = 0xf;
    /** 1 in every nibble: per-nibble broadcast/increment constant. */
    static constexpr std::uint64_t nibbleOnes = 0x1111111111111111ull;

    /**
     * Size the flat state for a sets x ways array. Chooses the packed
     * one-word-per-set layout when ways <= maxPackedWays (the caller
     * then fills `words` with its per-policy init word), else the flat
     * byte array filled with @p wide_init.
     */
    void
    resetFlatState(std::size_t sets, unsigned ways, std::uint8_t wide_init)
    {
        numWays = ways;
        packed = ways <= maxPackedWays;
        if (packed) {
            words.clear();
            wide.clear();
        } else {
            wide.assign(sets * ways, wide_init);
            words.clear();
        }
    }

    /** Mask covering the low numWays nibbles of a packed word. */
    std::uint64_t
    packedWaysMask() const
    {
        return numWays == maxPackedWays
                   ? ~0ull
                   : (1ull << (4u * numWays)) - 1;
    }

    /**
     * Index of the LOWEST nibble holding @p value, or >= 16 when no
     * nibble matches (branchless zero-nibble SWAR scan; borrow
     * propagation can only flag false positives above the lowest true
     * match, so the lowest-set-bit pick below is exact, and a
     * match-free word produces no borrows at all). DRRIP relies on
     * both properties: its victim scan has zero or several matching
     * nibbles. Out-of-range filler nibbles are 0xF, which cannot match
     * any way index or RRPV value of a <16-way array.
     */
    static unsigned
    findNibble(std::uint64_t word, unsigned value)
    {
        const std::uint64_t x = word ^ (nibbleOnes * value);
        // High bit of each nibble that was zero in x; countr_zero(0) is
        // 64, giving the >= 16 no-match return.
        const std::uint64_t zero =
            (x - nibbleOnes) & ~x & (nibbleOnes << 3);
        return static_cast<unsigned>(std::countr_zero(zero)) / 4u;
    }

    /** Promote @p way to the MRU position (recency-stack policies). */
    void
    touchMru(std::size_t set, unsigned way)
    {
        if (packed) {
            std::uint64_t &word = words[set];
            const unsigned p = findNibble(word, way);
            assert(p < numWays && "way not present in recency stack");
            const std::uint64_t low = word & ((1ull << (4u * p)) - 1);
            // Keep nibbles above p (double shift avoids UB at p == 15).
            word = (word & ((~0ull << (4u * p)) << 4)) | (low << 4) | way;
        } else {
            std::uint8_t *stack = &wide[set * numWays];
            unsigned p = 0;
            while (stack[p] != way) {
                ++p;
                assert(p < numWays && "way not present in recency stack");
            }
            for (; p > 0; --p)
                stack[p] = stack[p - 1];
            stack[0] = static_cast<std::uint8_t>(way);
        }
    }

    /** Demote @p way to the LRU position (recency-stack policies). */
    void
    touchLru(std::size_t set, unsigned way)
    {
        if (packed) {
            std::uint64_t &word = words[set];
            const unsigned p = findNibble(word, way);
            assert(p < numWays && "way not present in recency stack");
            const std::uint64_t low = word & ((1ull << (4u * p)) - 1);
            const std::uint64_t mid =
                ((word >> (4u * p)) >> 4) &
                ((1ull << (4u * (numWays - 1 - p))) - 1);
            word = (word & ~packedWaysMask()) |
                   (static_cast<std::uint64_t>(way)
                    << (4u * (numWays - 1))) |
                   (mid << (4u * p)) | low;
        } else {
            std::uint8_t *stack = &wide[set * numWays];
            unsigned p = 0;
            while (stack[p] != way) {
                ++p;
                assert(p < numWays && "way not present in recency stack");
            }
            for (; p + 1 < numWays; ++p)
                stack[p] = stack[p + 1];
            stack[numWays - 1] = static_cast<std::uint8_t>(way);
        }
    }

    HitUpdate hitUpdate;
    bool mruFill = false; ///< set by LruPolicy; see fillIsMruTouch()
    bool packed = true;
    unsigned numWays = 0;
    /**
     * Packed layout: one word per set. Recency-stack policies store the
     * way at recency position p in nibble p (position 0 = MRU); unused
     * high nibbles hold 0xF. DRRIP stores way w's RRPV in nibble w.
     */
    std::vector<std::uint64_t> words;
    /** Wide layout (> maxPackedWays): sets*ways entries, same meaning. */
    std::vector<std::uint8_t> wide;
};

/**
 * Base class for policies keeping an explicit per-set recency stack
 * (position 0 = MRU, position ways-1 = LRU).
 */
class StackPolicy : public ReplacementPolicy
{
  public:
    StackPolicy() : ReplacementPolicy(HitUpdate::StackMru) {}

    void reset(std::size_t sets, unsigned ways) override;
    unsigned victim(std::size_t set) override;
    unsigned victimPeek(std::size_t set) const override;

    /** Recency position of a way (0 = MRU). Exposed for tests. */
    unsigned positionOf(std::size_t set, unsigned way) const;

  protected:
    /** Way currently at the LRU position of @p set. */
    unsigned
    lruWay(std::size_t set) const
    {
        if (packed)
            return static_cast<unsigned>(
                (words[set] >> (4u * (numWays - 1))) & nibbleMask);
        return wide[set * numWays + numWays - 1];
    }
};

/** Classical LRU: always insert at MRU. */
class LruPolicy final : public StackPolicy
{
  public:
    LruPolicy() { mruFill = true; }

    void onFill(std::size_t set, unsigned way, const FillInfo &info) override;
};

/**
 * Bimodal insertion (BIP): insert at LRU, promoting to MRU with
 * probability 1/32 [Qureshi et al., ISCA'07]. Used standalone and as the
 * IP2 component of the 5P policy.
 */
class BipPolicy final : public StackPolicy
{
  public:
    explicit BipPolicy(std::uint64_t seed = 0xb1b0, unsigned inv_prob = 32)
        : rng(seed), invProb(inv_prob)
    {
    }

    void onFill(std::size_t set, unsigned way, const FillInfo &info) override;

    void
    serialize(Serializer &s) override
    {
        ReplacementPolicy::serialize(s);
        rng.serialize(s);
    }

  private:
    Rng rng;
    unsigned invProb;
};

} // namespace bop

#endif // BOP_CACHE_REPLACEMENT_HH
