/**
 * @file
 * Translation lookaside buffers (Table 1: DTLB1 64 entries, TLB2 512).
 *
 * Trace-driven translation itself is done by VirtualMemory; the TLBs
 * only model the *latency* of translation (and the Sec. 5.5 rule that
 * L1 prefetch requests are dropped on a TLB2 miss). Set-associative
 * with LRU, tracking virtual page numbers.
 */

#ifndef BOP_SIM_TLB_HH
#define BOP_SIM_TLB_HH

#include <cstdint>
#include <vector>

#include "common/serializer.hh"
#include "common/types.hh"

namespace bop
{

/** Set-associative LRU TLB over virtual page numbers. */
class Tlb
{
  public:
    Tlb(std::size_t entries, unsigned ways);

    /** Lookup @p vpn; updates recency on hit. */
    bool lookup(Addr vpn);

    /** Lookup without inserting or updating recency (prefetch probes). */
    bool probe(Addr vpn) const;

    /** Insert @p vpn (no-op if present; refreshes recency). */
    void insert(Addr vpn);

    /** Drop all entries. */
    void flush();

    std::size_t entryCount() const { return vpns.size(); }

    /** Checkpoint tags, recency stamps and the LRU clock. */
    void
    serialize(Serializer &s)
    {
        const std::size_t entries = vpns.size();
        s.valueVec(vpns);
        s.valueVec(stamps);
        s.value(clock);
        if (s.loading() &&
            (vpns.size() != entries || stamps.size() != entries))
            s.fail("TLB geometry mismatch");
    }

  private:
    /** Sentinel tag for free slots (no virtual page number reaches ~0). */
    static constexpr Addr freeVpn = ~static_cast<Addr>(0);

    std::size_t setOf(Addr vpn) const { return vpn & (numSets - 1); }

    std::size_t numSets;
    unsigned ways;
    // Structure-of-arrays: lookups run on every load, so the tag match
    // scans a flat 8-byte-stride run; the LRU stamps live beside it and
    // are touched only on hit/insert.
    std::vector<Addr> vpns;   ///< freeVpn when the slot is empty
    std::vector<std::uint64_t> stamps;
    std::uint64_t clock = 0;
};

/** Two-level data-TLB hierarchy with fixed miss penalties. */
class TlbHierarchy
{
  public:
    /** Extra cycles for a DTLB1 miss that hits in the TLB2. */
    static constexpr unsigned tlb2Latency = 7;
    /** Extra cycles for a full page walk on TLB2 miss. */
    static constexpr unsigned walkLatency = 50;

    TlbHierarchy()
        : dtlb1(64, 4), tlb2(512, 8)
    {
    }

    /**
     * Translate-for-latency on a demand access: returns the extra
     * cycles spent on translation and updates both TLB levels.
     */
    unsigned demandAccess(Addr vpn, std::uint64_t &dtlb1_misses,
                          std::uint64_t &tlb2_misses);

    /**
     * TLB2 probe for an L1 prefetch request (Sec. 5.5): returns true if
     * the translation is available (DTLB1 or TLB2 hit); on false the
     * prefetch must be dropped. Does not walk.
     */
    bool prefetchProbe(Addr vpn) const;

    Tlb &level1() { return dtlb1; }
    Tlb &level2() { return tlb2; }

    /** Checkpoint both TLB levels. */
    void
    serialize(Serializer &s)
    {
        dtlb1.serialize(s);
        tlb2.serialize(s);
    }

  private:
    Tlb dtlb1;
    Tlb tlb2;
};

} // namespace bop

#endif // BOP_SIM_TLB_HH
