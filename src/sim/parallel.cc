#include "sim/parallel.hh"

namespace bop
{

WorkerPool::WorkerPool(unsigned workers_) : workers(workers_ ? workers_ : 1)
{
    for (unsigned w = 1; w < workers; ++w)
        helpers.emplace_back([this, w] { helperLoop(w); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(m);
        stopping = true;
    }
    cvStart.notify_all();
    for (std::thread &t : helpers)
        t.join();
}

void
WorkerPool::runImpl(std::size_t items, Trampoline call, void *ctx)
{
    if (workers == 1 || items <= 1) {
        for (std::size_t i = 0; i < items; ++i)
            call(ctx, i);
        return;
    }

    {
        std::lock_guard<std::mutex> lk(m);
        job = call;
        jobCtx = ctx;
        jobItems = items;
        pending = workers - 1;
        ++epoch;
    }
    cvStart.notify_all();

    // The caller is worker 0: it takes its own item stripe instead of
    // blocking, so a 1-item phase never pays a thread hand-off.
    for (std::size_t i = 0; i < items; i += workers)
        call(ctx, i);

    std::unique_lock<std::mutex> lk(m);
    cvDone.wait(lk, [this] { return pending == 0; });
    job = nullptr;
    jobCtx = nullptr;
}

void
WorkerPool::helperLoop(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        Trampoline call = nullptr;
        void *ctx = nullptr;
        std::size_t items = 0;
        {
            std::unique_lock<std::mutex> lk(m);
            cvStart.wait(lk, [this, seen] {
                return stopping || epoch != seen;
            });
            if (stopping)
                return;
            seen = epoch;
            call = job;
            ctx = jobCtx;
            items = jobItems;
        }

        for (std::size_t i = self; i < items; i += workers)
            call(ctx, i);

        {
            std::lock_guard<std::mutex> lk(m);
            if (--pending == 0)
                cvDone.notify_one();
        }
    }
}

TaskPool::TaskPool(unsigned workers_, std::size_t maxBacklog_)
    : workers(workers_ ? workers_ : 1),
      maxBacklog(maxBacklog_ ? maxBacklog_ : 4 * (workers_ ? workers_ : 1))
{
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    drain();
    {
        std::lock_guard<std::mutex> lk(m);
        stopping = true;
    }
    cvTask.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
TaskPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lk(m);
        cvSpace.wait(lk, [this] { return queue.size() < maxBacklog; });
        queue.push_back(std::move(task));
    }
    cvTask.notify_one();
}

void
TaskPool::drain()
{
    std::unique_lock<std::mutex> lk(m);
    cvIdle.wait(lk, [this] { return queue.empty() && running == 0; });
}

void
TaskPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(m);
            cvTask.wait(lk, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, and nothing left to run
            task = std::move(queue.front());
            queue.pop_front();
            ++running;
        }
        cvSpace.notify_one();

        task();

        {
            std::lock_guard<std::mutex> lk(m);
            --running;
            if (queue.empty() && running == 0)
                cvIdle.notify_all();
        }
    }
}

} // namespace bop
