#include "sim/parallel.hh"

#include <algorithm>

#include "common/fault.hh"

namespace bop
{

WorkerPool::WorkerPool(unsigned workers_) : workers(workers_ ? workers_ : 1)
{
    for (unsigned w = 1; w < workers; ++w)
        helpers.emplace_back([this, w] { helperLoop(w); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(m);
        stopping = true;
    }
    cvStart.notify_all();
    for (std::thread &t : helpers)
        t.join();
}

void
WorkerPool::recordFailure(std::size_t item)
{
    std::lock_guard<std::mutex> lk(m);
    if (!failure || item < failureItem) {
        failure = std::current_exception();
        failureItem = item;
    }
}

void
WorkerPool::runImpl(std::size_t items, Trampoline call, void *ctx)
{
    if (workers == 1 || items <= 1) {
        for (std::size_t i = 0; i < items; ++i)
            call(ctx, i);
        return;
    }

    {
        std::lock_guard<std::mutex> lk(m);
        job = call;
        jobCtx = ctx;
        jobItems = items;
        pending = workers - 1;
        failure = nullptr;
        failureItem = 0;
        ++epoch;
    }
    cvStart.notify_all();

    // The caller is worker 0: it takes its own item stripe instead of
    // blocking, so a 1-item phase never pays a thread hand-off. A
    // throwing item must not abandon the epoch — the helpers still
    // expect the barrier — so the exception is parked and rethrown
    // after everyone arrives.
    for (std::size_t i = 0; i < items; i += workers) {
        try {
            call(ctx, i);
        } catch (...) {
            recordFailure(i);
            break;
        }
    }

    std::unique_lock<std::mutex> lk(m);
    cvDone.wait(lk, [this] { return pending == 0; });
    job = nullptr;
    jobCtx = nullptr;
    if (failure) {
        std::exception_ptr e = failure;
        failure = nullptr;
        lk.unlock();
        std::rethrow_exception(e);
    }
}

void
WorkerPool::helperLoop(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        Trampoline call = nullptr;
        void *ctx = nullptr;
        std::size_t items = 0;
        {
            std::unique_lock<std::mutex> lk(m);
            cvStart.wait(lk, [this, seen] {
                return stopping || epoch != seen;
            });
            if (stopping)
                return;
            seen = epoch;
            call = job;
            ctx = jobCtx;
            items = jobItems;
        }

        // As in runImpl: park the exception, finish the barrier. The
        // helper drops the rest of its stripe — with one item already
        // failed the epoch's result is void anyway — but it must still
        // report done or the caller would wait forever.
        for (std::size_t i = self; i < items; i += workers) {
            try {
                call(ctx, i);
            } catch (...) {
                recordFailure(i);
                break;
            }
        }

        {
            std::lock_guard<std::mutex> lk(m);
            if (--pending == 0)
                cvDone.notify_one();
        }
    }
}

TaskPool::TaskPool(unsigned workers_, std::size_t maxBacklog_)
    : workers(workers_ ? workers_ : 1),
      maxBacklog(maxBacklog_ ? maxBacklog_ : 4 * (workers_ ? workers_ : 1))
{
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool()
{
    drain();
    {
        std::lock_guard<std::mutex> lk(m);
        stopping = true;
    }
    cvTask.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
TaskPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lk(m);
        cvSpace.wait(lk, [this] { return queue.size() < maxBacklog; });
        queue.push_back(Queued{nextOrdinal++, std::move(task)});
    }
    cvTask.notify_one();
}

void
TaskPool::drain()
{
    std::unique_lock<std::mutex> lk(m);
    cvIdle.wait(lk, [this] { return queue.empty() && running == 0; });
}

std::vector<JobError>
TaskPool::takeErrors()
{
    std::vector<JobError> out;
    {
        std::lock_guard<std::mutex> lk(m);
        out.swap(errors);
    }
    std::sort(out.begin(), out.end(),
              [](const JobError &a, const JobError &b) {
                  return a.index < b.index;
              });
    return out;
}

void
TaskPool::workerLoop()
{
    for (;;) {
        Queued item;
        {
            std::unique_lock<std::mutex> lk(m);
            cvTask.wait(lk, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, and nothing left to run
            item = std::move(queue.front());
            queue.pop_front();
            ++running;
        }
        cvSpace.notify_one();

        // Containment: a task that escapes with an exception becomes
        // a JobError instead of terminating the process, and the
        // --running bookkeeping below must run regardless or drain()
        // would wait forever on a failed task.
        try {
            item.task();
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lk(m);
            errors.push_back(JobError{static_cast<std::size_t>(item.ordinal),
                                      faultKindOf(e), e.what()});
        } catch (...) {
            std::lock_guard<std::mutex> lk(m);
            errors.push_back(JobError{static_cast<std::size_t>(item.ordinal),
                                      "simulation", "unknown exception"});
        }

        {
            std::lock_guard<std::mutex> lk(m);
            --running;
            if (queue.empty() && running == 0)
                cvIdle.notify_all();
        }
    }
}

} // namespace bop
