/**
 * @file
 * Virtual-to-physical address translation (paper Sec. 5.1).
 *
 * The paper "simulate[s] virtual-to-physical address translation by
 * applying a randomizing hash function on the virtual page number", so
 * that core 0's physical addresses are independent of other cores'
 * activity. We do the same: the physical page number is a splitmix64
 * hash of (VPN, address-space id), truncated to the physical address
 * width; the page offset passes through unchanged.
 */

#ifndef BOP_SIM_VMEM_HH
#define BOP_SIM_VMEM_HH

#include <bit>
#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"

namespace bop
{

/** Randomizing page-table stand-in for one address space. */
class VirtualMemory
{
  public:
    /** Physical address width in bits (64GB physical space). */
    static constexpr unsigned physBits = 36;

    /**
     * @param page_size page size used for translation granularity
     * @param asid      address-space id (differs per core)
     * @param seed      per-run randomisation seed
     */
    VirtualMemory(PageSize page_size, std::uint64_t asid,
                  std::uint64_t seed)
        : pageShift(static_cast<unsigned>(
              std::countr_zero(pageBytes(page_size)))),
          mixin(splitmix64(seed ^ (asid * 0x9e3779b97f4a7c15ull)))
    {
    }

    /** Virtual page number of an address. */
    Addr
    vpn(Addr vaddr) const
    {
        return vaddr >> pageShift;
    }

    /** Translate a virtual byte address to a physical byte address. */
    Addr
    translate(Addr vaddr) const
    {
        const Addr page = vpn(vaddr);
        const Addr offset = vaddr & (pageMask());
        const unsigned ppn_bits = physBits - pageShift;
        const Addr ppn = splitmix64(page ^ mixin) &
                         ((1ull << ppn_bits) - 1);
        return (ppn << pageShift) | offset;
    }

    unsigned pageShiftBits() const { return pageShift; }

  private:
    Addr pageMask() const { return (1ull << pageShift) - 1; }

    unsigned pageShift;
    std::uint64_t mixin;
};

} // namespace bop

#endif // BOP_SIM_VMEM_HH
