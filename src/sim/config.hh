/**
 * @file
 * Simulated-system configuration (paper Table 1 + Table 2).
 *
 * One SystemConfig value describes a complete experiment configuration:
 * core counts, page size, cache/DRAM parameters, which L2 prefetcher to
 * use and its parameters, L3 replacement policy, and the DL1 stride
 * prefetcher switch. The benchmark harness builds these per figure.
 */

#ifndef BOP_SIM_CONFIG_HH
#define BOP_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "core/best_offset.hh"
#include "core/best_offset_dpc2.hh"
#include "dram/dram_timing.hh"
#include "prefetch/fdp.hh"
#include "prefetch/ghb.hh"
#include "prefetch/sandbox.hh"
#include "prefetch/stream.hh"
#include "prefetch/stream_buffer.hh"
#include "prefetch/stride.hh"
#include "common/types.hh"

namespace bop
{

/** Which L2 prefetcher the system instantiates (Sec. 5.6 / 6). */
enum class L2PrefetcherKind
{
    None,        ///< no L2 prefetching
    NextLine,    ///< baseline next-line with prefetch bits
    FixedOffset, ///< fixed offset D (Figs. 7/8)
    BestOffset,  ///< the paper's contribution
    Sandbox,     ///< SBP comparison point
    Stream,      ///< extension: classical stream prefetcher (Sec. 2)
    Fdp,         ///< extension: feedback-directed prefetching [37]
    Acdc,        ///< extension: GHB CZone/delta-correlation [22]
    StreamBuffer,///< extension: Jouppi stream buffers [15]
    BestOffsetDpc2, ///< extension: DPC-2 tuned BO (footnote 1)
};

/** L3 replacement policy selection (Fig. 3). */
enum class L3PolicyKind
{
    P5,    ///< the paper's 5P baseline policy
    Lru,
    Drrip,
};

/** Core pipeline parameters (loosely Haswell, Table 1). */
struct CoreParams
{
    unsigned robSize = 256;
    unsigned dispatchWidth = 8;   ///< decode 8 instructions/cycle
    unsigned retireWidth = 12;    ///< retire 12 micro-ops/cycle
    unsigned loadPorts = 2;
    unsigned storePorts = 1;
    unsigned storeQueue = 42;
    unsigned loadQueue = 72;
    unsigned branchPenalty = 12;  ///< minimum redirect penalty
    unsigned intLatency = 1;
    unsigned fpLatency = 4;
};

/** Cache hierarchy latencies/sizes (Table 1). */
struct CacheParams
{
    std::uint64_t dl1Bytes = 32 * 1024;
    unsigned dl1Ways = 8;
    unsigned dl1Latency = 3;
    std::size_t dl1Mshrs = 32;

    std::uint64_t l2Bytes = 512 * 1024;
    unsigned l2Ways = 8;
    unsigned l2Latency = 11;
    unsigned l2TagLatency = 4;    ///< miss detection time
    std::size_t l2FillQueue = 16;

    std::uint64_t l3Bytes = 8 * 1024 * 1024;
    unsigned l3Ways = 16;
    unsigned l3Latency = 21;
    unsigned l3TagLatency = 10;   ///< miss detection time
    std::size_t l3FillQueue = 32;

    std::size_t prefetchQueue = 8;
};

/** Full system configuration. */
struct SystemConfig
{
    /**
     * Cores actually running a trace (the paper evaluates 1, 2 and 4,
     * Sec. 5.1; the reproduction accepts any count up to numCores).
     */
    int activeCores = 1;

    /**
     * Total cores in the chip topology — sizes every per-core uncore
     * structure (DRAM read/write queues, fairness counters, 5P per-core
     * miss counters). 0 means "same as activeCores".
     */
    int numCores = 0;

    /**
     * DRAM channels, each with its own independent controller. Must be
     * a power of two (the line-to-channel map XOR-folds address bits);
     * the paper's chip has 2 (Table 1).
     */
    int numChannels = 2;

    PageSize pageSize = PageSize::FourKB;

    CoreParams core;
    CacheParams caches;
    DramTiming dram;

    L3PolicyKind l3Policy = L3PolicyKind::P5;

    bool dl1StridePrefetcher = true;
    StrideConfig stride;

    L2PrefetcherKind l2Prefetcher = L2PrefetcherKind::NextLine;
    int fixedOffset = 1;          ///< for L2PrefetcherKind::FixedOffset
    BoConfig bo;
    SbpConfig sbp;
    StreamConfig stream;          ///< extension prefetcher parameters
    FdpConfig fdp;
    GhbConfig ghb;
    StreamBufferConfig streamBuf;
    BoDpc2Config boDpc2;

    std::uint64_t seed = 42;      ///< run seed (vmem, policies, traces)

    /**
     * Event-horizon fast-forward: System::step() jumps the clock over
     * cycles in which no component can possibly act (every component
     * reports a nextEventAt horizon and the step takes the minimum).
     * Provably cycle-exact — all simulated statistics and cycle counts
     * are bit-identical with this off — so it is a pure speed knob.
     * The BOP_DISABLE_FASTFORWARD environment variable (any non-empty
     * value except "0") forces it off at System construction, which is
     * how CI exercises the exactness gate.
     */
    bool fastForward = true;

    /**
     * Fill the shared L3 with (clean) placeholder lines at construction
     * so replacement behaviour is exercised from the first cycle. The
     * paper's 1B-instruction samples run with a long-filled cache; at
     * this repository's instruction budgets a cold 8MB L3 would act as
     * an infinite cache and mask the replacement policies entirely.
     */
    bool prewarmL3 = true;

    /**
     * Worker threads for the barrier-synchronized parallel epochs in
     * System::step(): cores and channel/bank pairs tick concurrently
     * on a fixed pool of this many workers, with cross-shard hand-offs
     * exchanged only at the epoch barriers — simulated statistics and
     * cycle counts are bit-identical for every value. 1 (the default)
     * runs today's serial path with no pool at all. The BOP_THREADS
     * environment variable (a positive integer) overrides this at
     * System construction. Deliberately NOT part of describe():
     * thread count is a host-side speed knob, not a configuration.
     */
    int numThreads = 1;

    /** Topology core count with the numCores=0 default resolved. */
    int
    coreCount() const
    {
        return numCores > 0 ? numCores : activeCores;
    }

    /**
     * Check the topology for consistency; throws std::invalid_argument
     * with a descriptive message on the first violated constraint.
     * System and MemHierarchy validate at construction so a bad
     * configuration fails loudly instead of indexing out of bounds.
     */
    void validate() const;

    /** Validated copy with the numCores=0 default resolved. */
    SystemConfig resolved() const;

    /** Short human-readable description of this configuration. */
    std::string describe() const;
};

} // namespace bop

#endif // BOP_SIM_CONFIG_HH
