/**
 * @file
 * Scaled-down TAGE conditional branch predictor.
 *
 * The paper's baseline core uses a 31KB TAGE (Table 1, [Seznec &
 * Michaud, JILP'06]). The simulator only needs branch outcomes to decide
 * whether dispatch stalls for the redirect penalty, so this is a compact
 * TAGE: a bimodal base predictor plus four partially-tagged tables with
 * geometrically increasing history lengths, usefulness counters, and
 * standard TAGE allocation on mispredictions. It captures the property
 * that matters for the workload model: loop/periodic patterns predict
 * almost perfectly, biased random branches mispredict at min(p, 1-p).
 */

#ifndef BOP_SIM_BRANCH_PRED_HH
#define BOP_SIM_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace bop
{

/** Compact TAGE predictor. */
class TagePredictor
{
  public:
    explicit TagePredictor(std::uint64_t seed = 0x7a6e);

    /**
     * Predict the direction of the conditional branch at @p pc. Must be
     * followed by update() for the same branch before the next predict.
     */
    bool predict(Addr pc);

    /** Train with the actual outcome and update global history. */
    void update(Addr pc, bool taken);

    // -- introspection ----------------------------------------------------
    std::uint64_t predictions() const { return numPredictions; }
    std::uint64_t mispredictions() const { return numMispredictions; }

    /**
     * Checkpoint tables, global history, the allocation RNG and the
     * predict()->update() hand-off state (a save can land between the
     * two when a branch is in flight).
     */
    void
    serialize(Serializer &s)
    {
        s.valueVec(bimodal);
        for (auto &table : tables) {
            s.seq(table, [](Serializer &sr, TaggedEntry &e) {
                sr.value(e.tag);
                sr.value(e.ctr);
                sr.value(e.useful);
            });
        }
        s.value(ghist);
        rng.serialize(s);
        s.value(providerTable);
        s.value(altTable);
        s.value(providerIndex);
        s.value(lastPrediction);
        s.value(altPrediction);
        s.value(lastPc);
        s.value(numPredictions);
        s.value(numMispredictions);
    }

  private:
    static constexpr int numTables = 4;          ///< tagged tables
    static constexpr unsigned tableBits = 10;    ///< 1K entries each
    static constexpr unsigned tagBits = 9;
    static constexpr unsigned bimodalBits = 12;  ///< 4K-entry base
    static constexpr int historyLengths[numTables] = {4, 8, 16, 32};

    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::int8_t ctr = 0;   ///< signed 3-bit: taken if >= 0
        std::uint8_t useful = 0;
    };

    unsigned tableIndex(Addr pc, int table) const;
    std::uint16_t tableTag(Addr pc, int table) const;
    std::uint64_t foldHistory(int length, unsigned width) const;

    std::vector<std::int8_t> bimodal;            ///< 2-bit counters
    std::vector<TaggedEntry> tables[numTables];
    std::uint64_t ghist = 0;
    Rng rng;

    // State captured by predict() for the following update().
    int providerTable = -1;      ///< -1: bimodal provided
    int altTable = -1;
    unsigned providerIndex = 0;
    bool lastPrediction = false;
    bool altPrediction = false;
    Addr lastPc = 0;

    std::uint64_t numPredictions = 0;
    std::uint64_t numMispredictions = 0;
};

} // namespace bop

#endif // BOP_SIM_BRANCH_PRED_HH
