#include "sim/config.hh"

#include <bit>
#include <sstream>
#include <stdexcept>

#include "dram/address_map.hh"

namespace bop
{

namespace
{

const char *
prefetcherName(L2PrefetcherKind kind)
{
    switch (kind) {
      case L2PrefetcherKind::None:
        return "none";
      case L2PrefetcherKind::NextLine:
        return "next-line";
      case L2PrefetcherKind::FixedOffset:
        return "fixed-offset";
      case L2PrefetcherKind::BestOffset:
        return "best-offset";
      case L2PrefetcherKind::Sandbox:
        return "sandbox";
      case L2PrefetcherKind::Stream:
        return "stream";
      case L2PrefetcherKind::Fdp:
        return "fdp";
      case L2PrefetcherKind::Acdc:
        return "acdc";
      case L2PrefetcherKind::StreamBuffer:
        return "streambuf";
      case L2PrefetcherKind::BestOffsetDpc2:
        return "bo-dpc2";
    }
    return "?";
}

const char *
policyName(L3PolicyKind kind)
{
    switch (kind) {
      case L3PolicyKind::P5:
        return "5P";
      case L3PolicyKind::Lru:
        return "LRU";
      case L3PolicyKind::Drrip:
        return "DRRIP";
    }
    return "?";
}

} // namespace

void
SystemConfig::validate() const
{
    std::ostringstream oss;
    if (numCores < 0) {
        oss << "SystemConfig: numCores must be >= 1 (or 0 for \"same as "
               "activeCores\"), got " << numCores;
        throw std::invalid_argument(oss.str());
    }
    if (activeCores < 1) {
        oss << "SystemConfig: activeCores must be >= 1, got "
            << activeCores;
        throw std::invalid_argument(oss.str());
    }
    if (activeCores > coreCount()) {
        oss << "SystemConfig: activeCores (" << activeCores
            << ") exceeds the chip topology's numCores (" << coreCount()
            << ")";
        throw std::invalid_argument(oss.str());
    }
    if (numChannels < 1 || numChannels > maxDramChannels ||
        !std::has_single_bit(static_cast<unsigned>(numChannels))) {
        oss << "SystemConfig: numChannels must be a power of two in [1, "
            << maxDramChannels << "] (the line-to-channel map XOR-folds "
            << "address bits), got " << numChannels;
        throw std::invalid_argument(oss.str());
    }
    if (numThreads < 1 || numThreads > 64) {
        oss << "SystemConfig: numThreads must be in [1, 64], got "
            << numThreads;
        throw std::invalid_argument(oss.str());
    }
}

SystemConfig
SystemConfig::resolved() const
{
    validate();
    SystemConfig out = *this;
    out.numCores = coreCount();
    return out;
}

std::string
SystemConfig::describe() const
{
    std::ostringstream oss;
    oss << activeCores << "-core";
    if (coreCount() != activeCores)
        oss << "/" << coreCount() << "cpu";
    if (numChannels != 2)
        oss << ", " << numChannels << "-chan";
    oss << ", "
        << (pageSize == PageSize::FourKB ? "4KB" : "4MB") << " pages, L2 "
        << prefetcherName(l2Prefetcher);
    if (l2Prefetcher == L2PrefetcherKind::FixedOffset)
        oss << "(D=" << fixedOffset << ")";
    oss << ", L3 " << policyName(l3Policy)
        << (dl1StridePrefetcher ? ", DL1 stride" : ", no DL1 prefetch");
    return oss.str();
}

} // namespace bop
