#include "sim/config.hh"

#include <sstream>

namespace bop
{

namespace
{

const char *
prefetcherName(L2PrefetcherKind kind)
{
    switch (kind) {
      case L2PrefetcherKind::None:
        return "none";
      case L2PrefetcherKind::NextLine:
        return "next-line";
      case L2PrefetcherKind::FixedOffset:
        return "fixed-offset";
      case L2PrefetcherKind::BestOffset:
        return "best-offset";
      case L2PrefetcherKind::Sandbox:
        return "sandbox";
      case L2PrefetcherKind::Stream:
        return "stream";
      case L2PrefetcherKind::Fdp:
        return "fdp";
      case L2PrefetcherKind::Acdc:
        return "acdc";
      case L2PrefetcherKind::StreamBuffer:
        return "streambuf";
      case L2PrefetcherKind::BestOffsetDpc2:
        return "bo-dpc2";
    }
    return "?";
}

const char *
policyName(L3PolicyKind kind)
{
    switch (kind) {
      case L3PolicyKind::P5:
        return "5P";
      case L3PolicyKind::Lru:
        return "LRU";
      case L3PolicyKind::Drrip:
        return "DRRIP";
    }
    return "?";
}

} // namespace

std::string
SystemConfig::describe() const
{
    std::ostringstream oss;
    oss << activeCores << "-core, "
        << (pageSize == PageSize::FourKB ? "4KB" : "4MB") << " pages, L2 "
        << prefetcherName(l2Prefetcher);
    if (l2Prefetcher == L2PrefetcherKind::FixedOffset)
        oss << "(D=" << fixedOffset << ")";
    oss << ", L3 " << policyName(l3Policy)
        << (dl1StridePrefetcher ? ", DL1 stride" : ", no DL1 prefetch");
    return oss.str();
}

} // namespace bop
