#include "sim/branch_pred.hh"

#include <cassert>

namespace bop
{

constexpr int TagePredictor::historyLengths[TagePredictor::numTables];

TagePredictor::TagePredictor(std::uint64_t seed)
    : bimodal(1u << bimodalBits, 0), rng(seed)
{
    for (auto &t : tables)
        t.resize(1u << tableBits);
}

std::uint64_t
TagePredictor::foldHistory(int length, unsigned width) const
{
    // XOR-fold the low `length` history bits down to `width` bits.
    std::uint64_t h = length >= 64 ? ghist
                                   : (ghist & ((1ull << length) - 1));
    std::uint64_t folded = 0;
    while (h) {
        folded ^= h & ((1ull << width) - 1);
        h >>= width;
    }
    return folded;
}

unsigned
TagePredictor::tableIndex(Addr pc, int table) const
{
    const std::uint64_t h = foldHistory(historyLengths[table], tableBits);
    const std::uint64_t mix = (pc >> 2) ^ (pc >> (tableBits + 2)) ^ h ^
                              (static_cast<std::uint64_t>(table) << 3);
    return static_cast<unsigned>(mix & ((1u << tableBits) - 1));
}

std::uint16_t
TagePredictor::tableTag(Addr pc, int table) const
{
    const std::uint64_t h = foldHistory(historyLengths[table], tagBits);
    const std::uint64_t mix = (pc >> 2) ^ (pc >> (tagBits + 4)) ^
                              (h << 1) ^ static_cast<std::uint64_t>(table);
    return static_cast<std::uint16_t>(mix & ((1u << tagBits) - 1));
}

bool
TagePredictor::predict(Addr pc)
{
    lastPc = pc;
    providerTable = -1;
    altTable = -1;

    const unsigned bi =
        static_cast<unsigned>((pc >> 2) & ((1u << bimodalBits) - 1));
    bool pred = bimodal[bi] >= 0;
    bool alt = pred;

    // Longest-history matching component provides the prediction; the
    // next matching one (or bimodal) is the alternate.
    for (int t = numTables - 1; t >= 0; --t) {
        const unsigned idx = tableIndex(pc, t);
        const TaggedEntry &e = tables[t][idx];
        if (e.tag == tableTag(pc, t)) {
            if (providerTable < 0) {
                providerTable = t;
                providerIndex = idx;
                pred = e.ctr >= 0;
            } else if (altTable < 0) {
                altTable = t;
                alt = e.ctr >= 0;
                break;
            }
        }
    }
    if (providerTable >= 0 && altTable < 0)
        alt = bimodal[bi] >= 0;
    if (providerTable < 0)
        alt = pred;

    lastPrediction = pred;
    altPrediction = alt;
    ++numPredictions;
    return pred;
}

void
TagePredictor::update(Addr pc, bool taken)
{
    assert(pc == lastPc && "update() must follow predict() for same pc");

    const bool mispredicted = lastPrediction != taken;
    if (mispredicted)
        ++numMispredictions;

    const unsigned bi =
        static_cast<unsigned>((pc >> 2) & ((1u << bimodalBits) - 1));

    if (providerTable >= 0) {
        TaggedEntry &e = tables[providerTable][providerIndex];
        // Usefulness: provider was right where the alternate was wrong.
        if (lastPrediction != altPrediction) {
            if (lastPrediction == taken) {
                if (e.useful < 3)
                    ++e.useful;
            } else if (e.useful > 0) {
                --e.useful;
            }
        }
        if (taken) {
            if (e.ctr < 3)
                ++e.ctr;
        } else {
            if (e.ctr > -4)
                --e.ctr;
        }
    } else {
        if (taken) {
            if (bimodal[bi] < 1)
                ++bimodal[bi];
        } else {
            if (bimodal[bi] > -2)
                --bimodal[bi];
        }
    }

    // Allocate a new entry in a longer-history table on misprediction.
    if (mispredicted && providerTable < numTables - 1) {
        const int start = providerTable + 1;
        bool allocated = false;
        for (int t = start; t < numTables && !allocated; ++t) {
            const unsigned idx = tableIndex(pc, t);
            TaggedEntry &e = tables[t][idx];
            if (e.useful == 0) {
                e.tag = tableTag(pc, t);
                e.ctr = taken ? 0 : -1;
                allocated = true;
            }
        }
        if (!allocated) {
            // All candidates useful: age one at random (TAGE-style
            // graceful degradation instead of a global useful reset).
            const int t = start + static_cast<int>(
                rng.below(static_cast<std::uint64_t>(numTables - start)));
            TaggedEntry &e = tables[t][tableIndex(pc, t)];
            if (e.useful > 0)
                --e.useful;
        }
    }

    ghist = (ghist << 1) | (taken ? 1 : 0);
}

} // namespace bop
