#include "sim/tlb.hh"

#include <cassert>

namespace bop
{

Tlb::Tlb(std::size_t entries, unsigned ways_)
    : numSets(entries / ways_), ways(ways_)
{
    assert(numSets > 0 && (numSets & (numSets - 1)) == 0);
    table.resize(entries);
}

bool
Tlb::lookup(Addr vpn)
{
    const std::size_t set = setOf(vpn);
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = table[set * ways + w];
        if (e.valid && e.vpn == vpn) {
            e.stamp = ++clock;
            return true;
        }
    }
    return false;
}

bool
Tlb::probe(Addr vpn) const
{
    const std::size_t set = setOf(vpn);
    for (unsigned w = 0; w < ways; ++w) {
        const Entry &e = table[set * ways + w];
        if (e.valid && e.vpn == vpn)
            return true;
    }
    return false;
}

void
Tlb::insert(Addr vpn)
{
    const std::size_t set = setOf(vpn);
    Entry *victim = &table[set * ways];
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = table[set * ways + w];
        if (e.valid && e.vpn == vpn) {
            e.stamp = ++clock;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < victim->stamp)
            victim = &e;
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->stamp = ++clock;
}

void
Tlb::flush()
{
    for (auto &e : table)
        e.valid = false;
}

unsigned
TlbHierarchy::demandAccess(Addr vpn, std::uint64_t &dtlb1_misses,
                           std::uint64_t &tlb2_misses)
{
    if (dtlb1.lookup(vpn))
        return 0;
    ++dtlb1_misses;
    if (tlb2.lookup(vpn)) {
        dtlb1.insert(vpn);
        return tlb2Latency;
    }
    ++tlb2_misses;
    tlb2.insert(vpn);
    dtlb1.insert(vpn);
    return tlb2Latency + walkLatency;
}

bool
TlbHierarchy::prefetchProbe(Addr vpn) const
{
    return dtlb1.probe(vpn) || tlb2.probe(vpn);
}

} // namespace bop
