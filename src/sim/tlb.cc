#include "sim/tlb.hh"

#include <cassert>

namespace bop
{

Tlb::Tlb(std::size_t entries, unsigned ways_)
    : numSets(entries / ways_), ways(ways_)
{
    assert(numSets > 0 && (numSets & (numSets - 1)) == 0);
    vpns.assign(entries, freeVpn);
    stamps.assign(entries, 0);
}

bool
Tlb::lookup(Addr vpn)
{
    const std::size_t base = setOf(vpn) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        if (vpns[base + w] == vpn) {
            stamps[base + w] = ++clock;
            return true;
        }
    }
    return false;
}

bool
Tlb::probe(Addr vpn) const
{
    const std::size_t base = setOf(vpn) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        if (vpns[base + w] == vpn)
            return true;
    }
    return false;
}

void
Tlb::insert(Addr vpn)
{
    assert(vpn != freeVpn && "vpn collides with the free-slot sentinel");
    const std::size_t base = setOf(vpn) * ways;
    std::size_t victim = base;
    for (unsigned w = 0; w < ways; ++w) {
        const std::size_t s = base + w;
        if (vpns[s] == vpn) {
            stamps[s] = ++clock;
            return;
        }
        if (vpns[s] == freeVpn) {
            victim = s;
            break;
        }
        if (stamps[s] < stamps[victim])
            victim = s;
    }
    vpns[victim] = vpn;
    stamps[victim] = ++clock;
}

void
Tlb::flush()
{
    for (auto &v : vpns)
        v = freeVpn;
}

unsigned
TlbHierarchy::demandAccess(Addr vpn, std::uint64_t &dtlb1_misses,
                           std::uint64_t &tlb2_misses)
{
    if (dtlb1.lookup(vpn))
        return 0;
    ++dtlb1_misses;
    if (tlb2.lookup(vpn)) {
        dtlb1.insert(vpn);
        return tlb2Latency;
    }
    ++tlb2_misses;
    tlb2.insert(vpn);
    dtlb1.insert(vpn);
    return tlb2Latency + walkLatency;
}

bool
TlbHierarchy::prefetchProbe(Addr vpn) const
{
    return dtlb1.probe(vpn) || tlb2.probe(vpn);
}

} // namespace bop
