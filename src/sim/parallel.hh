/**
 * @file
 * Fixed-size worker pool for System's barrier-synchronized parallel
 * epochs. The pool owns T-1 persistent helper threads; the calling
 * thread participates as worker 0, so run() costs no hand-off when
 * T == 1 and the main thread is never parked while helpers work.
 *
 * Work assignment is static and deterministic: item i runs on worker
 * i mod T. The items of one run() must be mutually independent (they
 * execute concurrently with no ordering); run() returns only after
 * every item completed, which is the epoch barrier.
 *
 * Helpers block on a condition variable between epochs rather than
 * spinning: the simulator often runs on machines (and CI containers)
 * with fewer hardware threads than workers, where a spinning helper
 * would steal the very CPU the active worker needs.
 */

#ifndef BOP_SIM_PARALLEL_HH
#define BOP_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace bop
{

/** T-worker pool with a blocking all-items-done barrier per run(). */
class WorkerPool
{
  public:
    /** @param workers total worker count including the caller (>= 1). */
    explicit WorkerPool(unsigned workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned workerCount() const { return workers; }

    /**
     * Execute fn(i) for every i in [0, items), item i on worker
     * i mod workerCount(), and return once all completed. The functor
     * is invoked by multiple threads concurrently and must only touch
     * state disjoint between items (or read-only).
     */
    template <typename F>
    void
    run(std::size_t items, F &&fn)
    {
        using Fn = std::remove_reference_t<F>;
        runImpl(items,
                [](void *ctx, std::size_t i) {
                    (*static_cast<Fn *>(ctx))(i);
                },
                &fn);
    }

  private:
    using Trampoline = void (*)(void *, std::size_t);

    void runImpl(std::size_t items, Trampoline call, void *ctx);
    void helperLoop(unsigned self);

    /**
     * Total workers including the caller. A plain member fixed before
     * any helper spawns: helpers derive their item stride from it, and
     * deriving it from helpers.size() instead would let an early
     * helper observe the vector mid-construction and stride over
     * other workers' items.
     */
    const unsigned workers;
    std::vector<std::thread> helpers;

    std::mutex m;
    std::condition_variable cvStart; ///< epoch published
    std::condition_variable cvDone;  ///< all helpers finished
    Trampoline job = nullptr;
    void *jobCtx = nullptr;
    std::size_t jobItems = 0;
    std::uint64_t epoch = 0; ///< bumped per runImpl; helpers track it
    unsigned pending = 0;    ///< helpers still working this epoch
    bool stopping = false;
};

} // namespace bop

#endif // BOP_SIM_PARALLEL_HH
