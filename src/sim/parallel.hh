/**
 * @file
 * Fixed-size worker pool for System's barrier-synchronized parallel
 * epochs. The pool owns T-1 persistent helper threads; the calling
 * thread participates as worker 0, so run() costs no hand-off when
 * T == 1 and the main thread is never parked while helpers work.
 *
 * Work assignment is static and deterministic: item i runs on worker
 * i mod T. The items of one run() must be mutually independent (they
 * execute concurrently with no ordering); run() returns only after
 * every item completed, which is the epoch barrier.
 *
 * Helpers block on a condition variable between epochs rather than
 * spinning: the simulator often runs on machines (and CI containers)
 * with fewer hardware threads than workers, where a spinning helper
 * would steal the very CPU the active worker needs.
 */

#ifndef BOP_SIM_PARALLEL_HH
#define BOP_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace bop
{

/**
 * A task that escaped its worker with an exception, surfaced at
 * drain() instead of terminating the process or wedging the pool.
 * `index` is the task's submission ordinal (0-based), which the
 * harness layers arrange to equal the job_index of their error
 * records; `kind` is faultKindOf() of the escaped exception.
 */
struct JobError
{
    std::size_t index;
    std::string kind;
    std::string what;
};

/** T-worker pool with a blocking all-items-done barrier per run(). */
class WorkerPool
{
  public:
    /** @param workers total worker count including the caller (>= 1). */
    explicit WorkerPool(unsigned workers);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    unsigned workerCount() const { return workers; }

    /**
     * Execute fn(i) for every i in [0, items), item i on worker
     * i mod workerCount(), and return once all completed. The functor
     * is invoked by multiple threads concurrently and must only touch
     * state disjoint between items (or read-only).
     *
     * If any item throws, the epoch still runs to its barrier (a
     * worker that catches stops executing its remaining stripe items,
     * but no worker leaves the epoch early, so the pool stays sound),
     * and run() rethrows the exception of the smallest-indexed failed
     * item on the calling thread. The pool remains usable for further
     * run() calls afterwards.
     */
    template <typename F>
    void
    run(std::size_t items, F &&fn)
    {
        using Fn = std::remove_reference_t<F>;
        runImpl(items,
                [](void *ctx, std::size_t i) {
                    (*static_cast<Fn *>(ctx))(i);
                },
                &fn);
    }

  private:
    using Trampoline = void (*)(void *, std::size_t);

    void runImpl(std::size_t items, Trampoline call, void *ctx);
    void helperLoop(unsigned self);

    /**
     * Total workers including the caller. A plain member fixed before
     * any helper spawns: helpers derive their item stride from it, and
     * deriving it from helpers.size() instead would let an early
     * helper observe the vector mid-construction and stride over
     * other workers' items.
     */
    const unsigned workers;
    std::vector<std::thread> helpers;

    std::mutex m;
    std::condition_variable cvStart; ///< epoch published
    std::condition_variable cvDone;  ///< all helpers finished
    Trampoline job = nullptr;
    void *jobCtx = nullptr;
    std::size_t jobItems = 0;
    std::uint64_t epoch = 0; ///< bumped per runImpl; helpers track it
    unsigned pending = 0;    ///< helpers still working this epoch
    bool stopping = false;

    /**
     * Exception of the smallest-indexed item that threw this epoch
     * (deterministic when several items fail concurrently); rethrown
     * by runImpl after the barrier. Guarded by m.
     */
    std::exception_ptr failure;
    std::size_t failureItem = 0;

    void recordFailure(std::size_t item);
};

/**
 * Dynamic task executor for coarse-grain jobs (whole simulations),
 * complementing WorkerPool's static per-epoch striping. N dedicated
 * worker threads pull tasks from a FIFO queue; the caller does NOT
 * participate — it keeps submitting while workers run, which is what
 * lets a sweep overlap job generation with simulation.
 *
 * submit() applies backpressure: it blocks while the queue already
 * holds maxBacklog tasks, bounding memory for arbitrarily long job
 * streams (the --serve front end feeds thousands of jobs through a
 * pool of a few workers). drain() is the shutdown-side barrier: it
 * returns once the queue is empty and every in-flight task finished —
 * but it does NOT stop the workers: submitting after a drain() is an
 * ordinary submit, and the pool drains again. The sweep farm's
 * bounded-retry path relies on this contract to re-enqueue
 * transient-failed jobs after the first drain pass.
 *
 * Tasks must synchronise any shared state themselves; the pool only
 * guarantees each task runs exactly once, on some worker thread.
 *
 * A task that throws does not kill its worker or wedge drain(): the
 * escaped exception is captured as a JobError (indexed by the task's
 * submission ordinal) and the worker moves on to the next task.
 * Callers collect the failures with takeErrors() after drain().
 */
class TaskPool
{
  public:
    /**
     * @param workers  worker thread count (>= 1).
     * @param maxBacklog  queued-task bound submit() blocks on
     *                    (0 means 4 * workers).
     */
    explicit TaskPool(unsigned workers, std::size_t maxBacklog = 0);
    ~TaskPool(); ///< drains, then stops and joins the workers

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    unsigned workerCount() const { return workers; }
    std::size_t backlogBound() const { return maxBacklog; }

    /** Enqueue a task; blocks while the queue is at the backlog bound. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void drain();

    /**
     * Remove and return the errors of every task that escaped with an
     * exception since the last call, ordered by submission ordinal.
     * Meaningful after drain(); may be called repeatedly.
     */
    std::vector<JobError> takeErrors();

  private:
    void workerLoop();

    const unsigned workers;
    const std::size_t maxBacklog;
    std::vector<std::thread> threads;

    struct Queued
    {
        std::uint64_t ordinal;
        std::function<void()> task;
    };

    std::mutex m;
    std::condition_variable cvTask;  ///< queue became non-empty
    std::condition_variable cvSpace; ///< queue dropped below the bound
    std::condition_variable cvIdle;  ///< queue empty and nothing running
    std::deque<Queued> queue;
    std::uint64_t nextOrdinal = 0; ///< submission counter, tags tasks
    unsigned running = 0;          ///< tasks currently executing
    bool stopping = false;
    std::vector<JobError> errors; ///< escaped exceptions, per task
};

} // namespace bop

#endif // BOP_SIM_PARALLEL_HH
