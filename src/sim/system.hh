/**
 * @file
 * Top-level simulated system: N active cores (the paper evaluates 1, 2
 * and 4, Sec. 5.1; the topology is runtime configuration), each driven
 * by its own trace source, sharing the uncore. All reported numbers are
 * for core 0; the other active cores run the cache-thrashing
 * micro-benchmark, as in the paper. The SystemConfig topology is
 * validated at construction (std::invalid_argument on inconsistency).
 */

#ifndef BOP_SIM_SYSTEM_HH
#define BOP_SIM_SYSTEM_HH

#include <chrono>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "sim/config.hh"
#include "sim/core_model.hh"
#include "sim/mem_hierarchy.hh"
#include "sim/parallel.hh"
#include "trace/trace.hh"

namespace bop
{

/**
 * Counter delta helper: subtract the cumulative counters in @p begin
 * from @p end (non-cumulative fields are copied from @p end).
 */
RunStats deltaStats(const RunStats &end, const RunStats &begin);

/** The simulated chip. */
class System
{
  public:
    /**
     * @param cfg     system configuration
     * @param traces  one trace source per active core (core 0 first)
     */
    System(const SystemConfig &cfg,
           std::vector<std::unique_ptr<TraceSource>> traces);

    /**
     * Warm up for @p warmup_instr core-0 instructions, then measure
     * @p measure_instr instructions and return the window's statistics.
     * Equivalent to warmup() followed by measure().
     */
    RunStats run(std::uint64_t warmup_instr, std::uint64_t measure_instr);

    /** Advance core 0 by @p warmup_instr retired instructions. */
    void warmup(std::uint64_t warmup_instr);

    /**
     * Measure the next @p measure_instr core-0 instructions. The
     * baseline counters are sampled at call time, so measuring after a
     * checkpoint restore yields the same deltas as an uninterrupted
     * warmup+measure run.
     */
    RunStats measure(std::uint64_t measure_instr);

    /**
     * Arm a wall-clock deadline @p seconds from now for the
     * run()/warmup()/measure() windows that follow: a window still
     * running past the deadline throws JobTimeout (common/fault.hh),
     * which the harness layers convert into a per-job error record
     * instead of letting one wedged simulation stall a whole batch.
     * Complements the per-core retire watchdog, which catches cores
     * that stop making progress but not runs that progress too slowly
     * to ever finish. seconds <= 0 disarms. The deadline is host-side
     * only: simulated statistics of runs that finish are unaffected.
     */
    void setJobDeadline(double seconds);

    /**
     * Write the complete warm microarchitectural state to @p path in
     * the BOPCKPT1 format (docs/CHECKPOINT_FORMAT.md). Defined in
     * src/harness/checkpoint.cc; link bop_harness to use.
     */
    void saveCheckpoint(const std::string &path);

    /** saveCheckpoint() into a byte buffer (tests, in-memory sharing). */
    std::vector<std::uint8_t> saveCheckpointBytes();

    /**
     * Restore state saved by saveCheckpoint(). The System must have
     * been constructed with the same topology/config fingerprint and
     * the same traces; throws CheckpointError (with the offending byte
     * offset) on any mismatch, truncation or corruption — the system
     * is not modified unless the whole checkpoint validates.
     */
    void restoreCheckpoint(const std::string &path);

    /** restoreCheckpoint() from a byte buffer. */
    void restoreCheckpointBytes(const std::vector<std::uint8_t> &bytes);

    /**
     * Advance the whole system to the next cycle in which anything can
     * happen. With fast-forward enabled (the default) that is the
     * event-horizon minimum over all components — the clock may jump
     * by more than one cycle over provably idle stretches, with
     * bit-identical simulated statistics; with it disabled (config or
     * BOP_DISABLE_FASTFORWARD) exactly one cycle.
     */
    void step();

    /**
     * The cycle the next step() will tick at: the minimum over every
     * component's nextEventAt horizon, clamped to at most
     * watchdogCycles + 1 ahead so a dead system still reaches the
     * deadlock trap. Refreshes the stale entries of the horizon cache
     * (hence not const). Exposed for the fast-forward soundness tests.
     */
    Cycle nextEventCycle();

    /** True when event-horizon fast-forward is active for this run. */
    bool fastForwardEnabled() const { return fastForward; }

    /**
     * Worker threads this System ticks on (cfg.numThreads, possibly
     * overridden by BOP_THREADS). 1 = the serial path, no pool.
     */
    int threadCount() const { return threads; }

    /** Progress window of the per-core deadlock watchdog. */
    static constexpr Cycle watchdogCycles = 1000000;

    Cycle currentCycle() const { return now; }
    MemHierarchy &hierarchy() { return hier; }
    CoreModel &core(CoreId id)
    {
        return *cores.at(static_cast<std::size_t>(id));
    }
    /** Trace source driving core @p id (checkpoint fingerprinting). */
    TraceSource &traceSource(CoreId id)
    {
        return *traces.at(static_cast<std::size_t>(id));
    }
    int coreCount() const { return static_cast<int>(cores.size()); }
    const SystemConfig &config() const { return cfg; }

  private:
    /** Run until core 0 has retired @p target instructions in total. */
    void runUntilRetired(std::uint64_t target);

    /**
     * Set the clock to @p at and tick every component whose horizon is
     * due (the single-event core of the fast-forward step, shared by
     * step() and the batched-epoch replay drain).
     */
    void stepAt(Cycle at);

    /**
     * Batched fast-forward core epochs: when the pool is active, a
     * retire target is set and the uncore is provably idle until
     * hierHorizon, one pool epoch advances every core through many
     * successive events instead of paying the two-condition-variable
     * epoch barrier per event. Each worker ticks its cores at their
     * own horizons while (a) the core hands the uncore no new work
     * (its toL2 depth is unchanged — cross-core timing stays exact)
     * and (b) core 0 has not hit the retire target. Afterwards the
     * clock rewinds to the earliest stop and the normal per-event path
     * replays from there, so simulated state and statistics are
     * bit-identical to the serial schedule. @p at is the entry event
     * cycle (== nextEventCycle()); requires hierHorizon > at.
     */
    void stepBatchedCores(Cycle at);

    /**
     * One clock tick as a barrier-synchronized parallel epoch on the
     * worker pool. Due cores and — when the hierarchy is due — the
     * per-core ingress phases tick concurrently, then the serial
     * ingress commit, then the channel/bank pairs in parallel, the
     * serial uncore drain, the per-core egress phases in parallel and
     * the serial egress commit. Bit-identical to the serial tick: the
     * parallel phases touch disjoint per-core/per-channel state and
     * every cross-shard hand-off moves at a serial commit point in
     * global arrival order.
     */
    void stepParallel(bool hier_due);

    SystemConfig cfg;
    std::vector<std::unique_ptr<TraceSource>> traces;
    MemHierarchy hier;
    std::vector<std::unique_ptr<CoreModel>> cores;
    Cycle now = 0;
    bool fastForward = true; ///< cfg.fastForward minus the env override
    int threads = 1;         ///< cfg.numThreads with BOP_THREADS applied
    std::unique_ptr<WorkerPool> pool; ///< null when threads == 1
    std::vector<char> coreDue; ///< per-core due flags for stepParallel

    /**
     * Cached per-component horizons (fast-forward only). A component's
     * cached value stays valid until its horizonStale() flag reports a
     * state change: its own tick, or a cross-component callback
     * (loadCompleted/storeCompleted into a core, coreLoad/coreStore
     * into the uncore). nextEventCycle() refreshes stale entries;
     * step() then ticks only the components whose horizon is due —
     * skipping a tick before a component's horizon is exactly the
     * no-op the horizon contract guarantees it would have been.
     */
    std::vector<Cycle> coreHorizon;
    Cycle hierHorizon = 0;

    /**
     * Core-0 retire target of the runUntilRetired() in progress (0 =
     * none). Batched epochs only fire while a target is set, so tests
     * driving step() directly keep the one-event-per-step contract.
     */
    std::uint64_t stopTarget = 0;
    /** Per-core batch stop cycles (neverCycle = ran to the limit). */
    std::vector<Cycle> batchStopAt;
    /** Cycle core 0 hit stopTarget within the batch, or neverCycle. */
    Cycle batchTargetAt = neverCycle;

    /** Wall-clock deadline armed by setJobDeadline() (unarmed: zero). */
    std::chrono::steady_clock::time_point jobDeadline{};
    double jobDeadlineSeconds = 0.0; ///< for the timeout message
};

} // namespace bop

#endif // BOP_SIM_SYSTEM_HH
