/**
 * @file
 * Top-level simulated system: N active cores (the paper evaluates 1, 2
 * and 4, Sec. 5.1; the topology is runtime configuration), each driven
 * by its own trace source, sharing the uncore. All reported numbers are
 * for core 0; the other active cores run the cache-thrashing
 * micro-benchmark, as in the paper. The SystemConfig topology is
 * validated at construction (std::invalid_argument on inconsistency).
 */

#ifndef BOP_SIM_SYSTEM_HH
#define BOP_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "sim/config.hh"
#include "sim/core_model.hh"
#include "sim/mem_hierarchy.hh"
#include "trace/trace.hh"

namespace bop
{

/**
 * Counter delta helper: subtract the cumulative counters in @p begin
 * from @p end (non-cumulative fields are copied from @p end).
 */
RunStats deltaStats(const RunStats &end, const RunStats &begin);

/** The simulated chip. */
class System
{
  public:
    /**
     * @param cfg     system configuration
     * @param traces  one trace source per active core (core 0 first)
     */
    System(const SystemConfig &cfg,
           std::vector<std::unique_ptr<TraceSource>> traces);

    /**
     * Warm up for @p warmup_instr core-0 instructions, then measure
     * @p measure_instr instructions and return the window's statistics.
     */
    RunStats run(std::uint64_t warmup_instr, std::uint64_t measure_instr);

    /**
     * Advance the whole system to the next cycle in which anything can
     * happen. With fast-forward enabled (the default) that is the
     * event-horizon minimum over all components — the clock may jump
     * by more than one cycle over provably idle stretches, with
     * bit-identical simulated statistics; with it disabled (config or
     * BOP_DISABLE_FASTFORWARD) exactly one cycle.
     */
    void step();

    /**
     * The cycle the next step() will tick at: the minimum over every
     * component's nextEventAt horizon, clamped to at most
     * watchdogCycles + 1 ahead so a dead system still reaches the
     * deadlock trap. Refreshes the stale entries of the horizon cache
     * (hence not const). Exposed for the fast-forward soundness tests.
     */
    Cycle nextEventCycle();

    /** True when event-horizon fast-forward is active for this run. */
    bool fastForwardEnabled() const { return fastForward; }

    /** Progress window of the per-core deadlock watchdog. */
    static constexpr Cycle watchdogCycles = 1000000;

    Cycle currentCycle() const { return now; }
    MemHierarchy &hierarchy() { return hier; }
    CoreModel &core(CoreId id)
    {
        return *cores.at(static_cast<std::size_t>(id));
    }
    int coreCount() const { return static_cast<int>(cores.size()); }
    const SystemConfig &config() const { return cfg; }

  private:
    /** Run until core 0 has retired @p target instructions in total. */
    void runUntilRetired(std::uint64_t target);

    SystemConfig cfg;
    std::vector<std::unique_ptr<TraceSource>> traces;
    MemHierarchy hier;
    std::vector<std::unique_ptr<CoreModel>> cores;
    Cycle now = 0;
    bool fastForward = true; ///< cfg.fastForward minus the env override

    /**
     * Cached per-component horizons (fast-forward only). A component's
     * cached value stays valid until its horizonStale() flag reports a
     * state change: its own tick, or a cross-component callback
     * (loadCompleted/storeCompleted into a core, coreLoad/coreStore
     * into the uncore). nextEventCycle() refreshes stale entries;
     * step() then ticks only the components whose horizon is due —
     * skipping a tick before a component's horizon is exactly the
     * no-op the horizon contract guarantees it would have been.
     */
    std::vector<Cycle> coreHorizon;
    Cycle hierHorizon = 0;
};

} // namespace bop

#endif // BOP_SIM_SYSTEM_HH
