#include "sim/mem_hierarchy.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#include "cache/drrip.hh"
#include "cache/policy_5p.hh"
#include "core/best_offset.hh"
#include "core/offset_list.hh"
#include "prefetch/fixed_offset.hh"
#include "prefetch/sandbox.hh"

namespace bop
{

std::unique_ptr<ReplacementPolicy>
makeL3Policy(const SystemConfig &cfg)
{
    switch (cfg.l3Policy) {
      case L3PolicyKind::P5:
        return std::make_unique<Policy5P>(cfg.seed ^ 0x5105,
                                          cfg.coreCount());
      case L3PolicyKind::Lru:
        return std::make_unique<LruPolicy>();
      case L3PolicyKind::Drrip:
        return std::make_unique<DrripPolicy>(cfg.seed ^ 0xd661);
    }
    return std::make_unique<LruPolicy>();
}

std::unique_ptr<L2Prefetcher>
makeL2Prefetcher(const SystemConfig &cfg)
{
    switch (cfg.l2Prefetcher) {
      case L2PrefetcherKind::None:
        return std::make_unique<NullPrefetcher>(cfg.pageSize);
      case L2PrefetcherKind::NextLine:
        return std::make_unique<NextLinePrefetcher>(cfg.pageSize);
      case L2PrefetcherKind::FixedOffset:
        return std::make_unique<FixedOffsetPrefetcher>(cfg.pageSize,
                                                       cfg.fixedOffset);
      case L2PrefetcherKind::BestOffset:
        return std::make_unique<BestOffsetPrefetcher>(cfg.pageSize,
                                                      cfg.bo);
      case L2PrefetcherKind::Sandbox:
        return std::make_unique<SandboxPrefetcher>(
            cfg.pageSize, makeOffsetList(cfg.bo.maxOffset), cfg.sbp);
      case L2PrefetcherKind::Stream:
        return std::make_unique<StreamPrefetcher>(cfg.pageSize,
                                                  cfg.stream);
      case L2PrefetcherKind::Fdp:
        return std::make_unique<FdpPrefetcher>(cfg.pageSize, cfg.fdp);
      case L2PrefetcherKind::Acdc:
        return std::make_unique<GhbAcdcPrefetcher>(cfg.pageSize,
                                                   cfg.ghb);
      case L2PrefetcherKind::StreamBuffer:
        return std::make_unique<StreamBufferPrefetcher>(cfg.pageSize,
                                                        cfg.streamBuf);
      case L2PrefetcherKind::BestOffsetDpc2:
        return std::make_unique<BestOffsetDpc2Prefetcher>(cfg.pageSize,
                                                          cfg.boDpc2);
    }
    return std::make_unique<NullPrefetcher>(cfg.pageSize);
}

MemHierarchy::CoreSide::CoreSide(const SystemConfig &cfg, CoreId id_)
    : id(id_),
      dl1("dl1." + std::to_string(id), cfg.caches.dl1Bytes,
          cfg.caches.dl1Ways, std::make_unique<LruPolicy>()),
      l2("l2." + std::to_string(id), cfg.caches.l2Bytes,
         cfg.caches.l2Ways, std::make_unique<LruPolicy>()),
      mshr(cfg.caches.dl1Mshrs),
      l2Fill("l2fq." + std::to_string(id), cfg.caches.l2FillQueue),
      prefetchQueue(cfg.caches.prefetchQueue),
      vmem(cfg.pageSize, static_cast<std::uint64_t>(id), cfg.seed)
{
    // All reported numbers are for core 0 (Sec. 5.1). The prefetcher
    // under test runs on core 0 only; the other active cores keep the
    // fixed baseline prefetchers (next-line + DL1 stride), so that a
    // configuration change isolates core 0's prefetcher instead of
    // also making the cache-thrashing micro-benchmarks fetch faster.
    if (id == 0) {
        l2pf = makeL2Prefetcher(cfg);
        if (cfg.dl1StridePrefetcher)
            stride.emplace(cfg.stride);
    } else {
        l2pf = std::make_unique<NextLinePrefetcher>(cfg.pageSize);
        stride.emplace(cfg.stride);
    }
}

std::vector<std::unique_ptr<ReplacementPolicy>>
MemHierarchy::makeL3BankPolicies(
    std::size_t num_banks,
    const std::vector<std::vector<std::size_t>> &bank_global_sets) const
{
    std::vector<std::unique_ptr<ReplacementPolicy>> out;
    if (num_banks == 1) {
        out.push_back(makeL3Policy(cfg));
        return out;
    }
    // Multi-bank: per-bank instances carry the per-set state, but the
    // LLC-global state (proportional counters, PSEL, the BIP RNG) is
    // one shared object so every draw and halving happens in the same
    // global order as in the monolithic cache. The leader-set layout
    // is rebuilt from the monolithic set ids via the translation
    // tables.
    switch (cfg.l3Policy) {
      case L3PolicyKind::P5: {
        auto shared = std::make_shared<Policy5PSharedState>(
            cfg.seed ^ 0x5105, cfg.coreCount(), 12u);
        for (std::size_t b = 0; b < num_banks; ++b)
            out.push_back(std::make_unique<Policy5P>(
                shared, bank_global_sets[b]));
        break;
      }
      case L3PolicyKind::Lru:
        for (std::size_t b = 0; b < num_banks; ++b)
            out.push_back(std::make_unique<LruPolicy>());
        break;
      case L3PolicyKind::Drrip: {
        auto shared =
            std::make_shared<DrripSharedState>(cfg.seed ^ 0xd661);
        for (std::size_t b = 0; b < num_banks; ++b)
            out.push_back(std::make_unique<DrripPolicy>(
                shared, bank_global_sets[b]));
        break;
      }
    }
    return out;
}

MemHierarchy::MemHierarchy(const SystemConfig &cfg_)
    : cfg(cfg_.resolved()),
      toL3(static_cast<std::size_t>(cfg.numChannels)),
      cores(static_cast<std::size_t>(cfg.numCores), nullptr),
      chanStalled(static_cast<std::size_t>(cfg.numChannels), 0)
{
    for (int c = 0; c < cfg.activeCores; ++c)
        sides.push_back(std::make_unique<CoreSide>(cfg, c));
    for (int ch = 0; ch < cfg.numChannels; ++ch) {
        mcs.push_back(std::make_unique<MemoryController>(cfg.dram, ch,
                                                         cfg.numCores));
    }

    // The fill queue bounds all in-flight DRAM reads (every queued
    // read holds a live entry until its data drains), so it must
    // grow with the channel count or it, not the channels, caps
    // memory-level parallelism. The paper's 2-channel chip keeps
    // the Table 1 capacity exactly. Banked or not, capacity and ids
    // are one shared group: backpressure and drain order are global.
    l3FillGroup = std::make_unique<FillQueueGroup>(
        cfg.caches.l3FillQueue * channelLanes());

    // Bank the L3 per channel when the channel XOR-fold (line bits
    // [2, 2+4k)) lies entirely inside the set index, i.e. the channel
    // — and hence the bank — is a pure function of the set. Otherwise
    // (e.g. 8 channels folding above the default 13 set bits) a
    // single bank keeps the monolithic layout.
    const std::size_t g_sets =
        cfg.caches.l3Bytes / lineBytes / cfg.caches.l3Ways;
    const unsigned set_bits =
        static_cast<unsigned>(std::countr_zero(g_sets));
    const unsigned k = static_cast<unsigned>(
        std::countr_zero(static_cast<unsigned>(cfg.numChannels)));
    const bool banked = cfg.numChannels > 1 && 2 + 4 * k <= set_bits;
    const std::size_t num_banks =
        banked ? static_cast<std::size_t>(cfg.numChannels) : 1;
    const std::size_t local_sets = g_sets / num_banks;

    // Local-to-monolithic set translation per bank: squeezing the
    // folded field f1 (line bits [2, 2+k)) out of the set index is a
    // bijection per bank, because fixing the bank pins f1 from the
    // other three fields.
    std::vector<std::vector<std::size_t>> bank_sets(num_banks);
    SetIndexFold fold = SetIndexFold::identity(g_sets);
    if (banked) {
        fold.shift = k;
        fold.lowMask = 0x3ull;
        fold.highMask = (local_sets - 1) & ~0x3ull;
        for (auto &v : bank_sets)
            v.resize(local_sets);
        for (std::size_t s = 0; s < g_sets; ++s) {
            const int b = channelOfLine(static_cast<LineAddr>(s),
                                        cfg.numChannels);
            const std::size_t local =
                (s & fold.lowMask) | ((s >> fold.shift) & fold.highMask);
            bank_sets[static_cast<std::size_t>(b)][local] = s;
        }
    }

    auto policies = makeL3BankPolicies(num_banks, bank_sets);
    for (std::size_t b = 0; b < num_banks; ++b) {
        l3Banks.push_back(std::make_unique<L3Bank>(
            num_banks == 1 ? std::string("l3")
                           : "l3.b" + std::to_string(b),
            local_sets, cfg.caches.l3Ways, std::move(policies[b]), fold,
            *l3FillGroup));
    }

    if (cfg.prewarmL3) {
        // Occupy every L3 way with a clean placeholder line from an
        // address region no workload touches (top of the physical
        // space), attributed round-robin across the active cores so
        // the core-aware policies start from a neutral state. The
        // loop walks monolithic set ids in the historical order, so
        // the (shared) policy counters see the exact same insertion
        // sequence however many banks there are.
        for (std::size_t set = 0; set < g_sets; ++set) {
            for (unsigned w = 0; w < cfg.caches.l3Ways; ++w) {
                const LineAddr junk =
                    (1ull << (VirtualMemory::physBits - lineShift)) +
                    (static_cast<LineAddr>(w + 1) << set_bits) + set;
                CacheFill fill;
                fill.core = static_cast<CoreId>(w) % cfg.activeCores;
                fill.demand = true;
                bankFor(junk).cache.insert(junk, fill);
            }
        }
    }
}

void
MemHierarchy::attachCore(CoreId core, CoreModel *model)
{
    cores.at(static_cast<std::size_t>(core)) = model;
}

int
MemHierarchy::channelOf(LineAddr line) const
{
    return channelOfLine(line, cfg.numChannels);
}

// ---------------------------------------------------------------------------
// Core-side entry points
// ---------------------------------------------------------------------------

LoadOutcome
MemHierarchy::coreLoad(CoreId core, Addr vaddr, Addr pc,
                       std::uint32_t rob_tag, Cycle now)
{
    horizonStaleFlag.store(true, std::memory_order_relaxed);
    CoreSide &cs = side(core);
    cs.horizonDirty = true;
    const LineAddr line = lineOf(cs.vmem.translate(vaddr));

    // Structural check first so a Retry has no side effects.
    if (!cs.dl1.probe(line) && !cs.mshr.find(line) && cs.mshr.full())
        return {LoadOutcome::Kind::Retry, 0};

    std::uint64_t dummy1 = 0, dummy2 = 0;
    const bool c0 = core == 0;
    const unsigned tlb_pen = cs.tlb.demandAccess(
        cs.vmem.vpn(vaddr), c0 ? stats.dtlb1Misses : dummy1,
        c0 ? stats.tlb2Misses : dummy2);

    if (c0)
        ++stats.dl1Accesses;

    const CacheAccessResult res = cs.dl1.access(line, false, true);
    const Cycle data_at = now + tlb_pen + cfg.caches.dl1Latency;

    LoadOutcome out;
    if (res.hit) {
        out = {LoadOutcome::Kind::Hit, data_at};
    } else {
        if (c0)
            ++stats.dl1Misses;
        if (MshrEntry *m = cs.mshr.find(line)) {
            m->waiters.push_back(rob_tag);
            m->prefetchOnly = false;
            out = {LoadOutcome::Kind::Pending, 0};
        } else {
            const std::uint32_t id = cs.mshr.allocate(line, false, now);
            MshrEntry *fresh = cs.mshr.find(line);
            fresh->waiters.push_back(rob_tag);

            ReqMeta meta;
            meta.core = core;
            meta.type = ReqType::DemandRead;
            meta.needL1 = true;
            meta.mshrId = id;
            meta.birth = now;
            cs.toL2.push_back({line, meta, data_at});
            out = {LoadOutcome::Kind::Pending, 0};
        }
    }

    if ((!res.hit || res.prefetchedHit) && cs.stride) {
        if (auto target = cs.stride->onAccess(pc, vaddr))
            issueL1Prefetch(cs, pc, *target, now);
    }
    return out;
}

StoreOutcome
MemHierarchy::coreStore(CoreId core, Addr vaddr, Addr pc, Cycle now)
{
    horizonStaleFlag.store(true, std::memory_order_relaxed);
    CoreSide &cs = side(core);
    cs.horizonDirty = true;
    const LineAddr line = lineOf(cs.vmem.translate(vaddr));

    if (!cs.dl1.probe(line) && !cs.mshr.find(line) && cs.mshr.full())
        return {false, false};

    std::uint64_t dummy1 = 0, dummy2 = 0;
    const bool c0 = core == 0;
    const unsigned tlb_pen = cs.tlb.demandAccess(
        cs.vmem.vpn(vaddr), c0 ? stats.dtlb1Misses : dummy1,
        c0 ? stats.tlb2Misses : dummy2);

    if (c0)
        ++stats.dl1Accesses;

    const CacheAccessResult res = cs.dl1.access(line, true, true);

    StoreOutcome out;
    if (res.hit) {
        out = {true, true};
    } else {
        if (c0)
            ++stats.dl1Misses;
        if (MshrEntry *m = cs.mshr.find(line)) {
            m->prefetchOnly = false;
            m->storeIntent = true;
            ++m->storeWaiters;
        } else {
            const std::uint32_t id = cs.mshr.allocate(line, false, now);
            MshrEntry *fresh = cs.mshr.find(line);
            fresh->storeIntent = true;
            fresh->storeWaiters = 1;

            ReqMeta meta;
            meta.core = core;
            meta.type = ReqType::DemandRead; // write-allocate fetch
            meta.needL1 = true;
            meta.mshrId = id;
            meta.birth = now;
            cs.toL2.push_back(
                {line, meta, now + tlb_pen + cfg.caches.dl1Latency});
        }
        out = {true, false};
    }

    if ((!res.hit || res.prefetchedHit) && cs.stride) {
        if (auto target = cs.stride->onAccess(pc, vaddr))
            issueL1Prefetch(cs, pc, *target, now);
    }
    return out;
}

void
MemHierarchy::retireMemOp(CoreId core, Addr pc, Addr vaddr)
{
    CoreSide &cs = side(core);
    if (cs.stride)
        cs.stride->onRetire(pc, vaddr);
}

void
MemHierarchy::issueL1Prefetch(CoreSide &cs, Addr pc, Addr vaddr, Cycle now)
{
    (void)pc;
    const bool c0 = cs.id == 0;

    // Sec. 5.5: the prefetch address goes through the TLB2; a miss
    // drops the request (no TLB prefetching).
    if (!cs.tlb.prefetchProbe(cs.vmem.vpn(vaddr))) {
        if (c0)
            ++stats.dl1PrefDropTlb;
        return;
    }
    const LineAddr line = lineOf(cs.vmem.translate(vaddr));
    if (cs.dl1.probe(line) || cs.mshr.find(line) || cs.mshr.full())
        return;

    const std::uint32_t id = cs.mshr.allocate(line, true, now);
    ReqMeta meta;
    meta.core = cs.id;
    meta.type = ReqType::L1Prefetch;
    meta.needL1 = true;
    meta.l1PrefetchBit = true;
    meta.mshrId = id;
    meta.birth = now;
    cs.toL2.push_back({line, meta, now + cfg.caches.dl1Latency});
    if (c0)
        ++stats.dl1PrefIssued;
}

// ---------------------------------------------------------------------------
// L2 stage
// ---------------------------------------------------------------------------

void
MemHierarchy::triggerL2Prefetcher(CoreSide &cs, const L2AccessEvent &ev)
{
    const bool c0 = cs.id == 0;
    cs.prefetchScratch.clear();
    cs.l2pf->onAccess(ev, cs.prefetchScratch);

    for (const LineAddr target : cs.prefetchScratch) {
        // Degree-N prefetchers (SBP) check the L2 tags before issuing.
        if (cs.l2pf->requiresTagCheck() && cs.l2.probe(target)) {
            if (c0)
                ++stats.l2PrefDropped;
            continue;
        }
        // Redundant-request removal: the fill queues, prefetch queue
        // and memory-controller read queues are searched (Sec. 6.3).
        if (cs.l2Fill.find(target) || cs.prefetchQueue.contains(target) ||
            controller(channelOf(target)).readQueueContains(target)) {
            if (c0)
                ++stats.l2PrefDropped;
            continue;
        }

        ReqMeta meta;
        meta.core = cs.id;
        meta.type = ReqType::L2Prefetch;
        meta.needL2 = true;
        meta.wasL2Prefetch = true;
        meta.prefetchOffset = cs.l2pf->currentOffset();
        meta.birth = ev.cycle;

        cs.horizonDirty = true;
        const bool cancelled =
            cs.prefetchQueue.insert({target, meta, ev.cycle + 1});
        if (c0) {
            ++stats.l2PrefIssued;
            if (cancelled)
                ++stats.l2PrefDropped;
        }
    }
}

void
MemHierarchy::processToL2(CoreSide &cs, Cycle now)
{
    const bool c0 = cs.id == 0;
    for (unsigned n = 0; n < l2ReqsPerCycle && !cs.toL2.empty(); ++n) {
        PendingReq &req = cs.toL2.front();
        if (req.readyAt > now)
            break;
        cs.horizonDirty = true;

        // Fill-queue CAM: an in-flight block absorbs this request.
        if (FillQueueEntry *e = cs.l2Fill.find(req.line)) {
            if (e->isPrefetch) {
                // Late-prefetch promotion (Sec. 5.4).
                e->isPrefetch = false;
                e->meta.needL1 = req.meta.needL1;
                e->meta.mshrId = req.meta.mshrId;
                e->meta.l1PrefetchBit = req.meta.type == ReqType::L1Prefetch;
                if (e->meta.wasL2Prefetch)
                    cs.l2pf->onLatePromotion(req.line, now);
                if (c0)
                    ++stats.l2LatePromotions;
            }
            // A demand entry for the same line cannot carry two MSHRs;
            // the DL1 MSHR coalescing prevents that case entirely.
            cs.toL2.pop_front();
            continue;
        }

        const CacheAccessResult res = cs.l2.access(req.line, false, true);
        if (c0)
            ++stats.l2Accesses;

        if (res.hit) {
            if (res.prefetchedHit && c0)
                ++stats.l2PrefetchedHits;
            deliverToDl1(cs, req.line, req.meta,
                         now + cfg.caches.l2Latency);
        } else {
            if (c0)
                ++stats.l2Misses;
            if (!cs.l2Fill.canAllocateWaiting())
                break; // backpressure: miss cannot issue yet
            ReqMeta meta = req.meta;
            meta.l2FillId = cs.l2Fill.allocate(req.line, meta, false);
            // Staged, not pushed: the global toL3 queues (and the seq
            // stamp) are shared across cores, so the hand-off happens
            // at the serial commitIngress barrier, in core order —
            // which is exactly the order the serial loop produced.
            cs.stagedToL3.push_back(
                {req.line, meta, now + cfg.caches.l2TagLatency, 0});
        }

        if (!res.hit || res.prefetchedHit) {
            triggerL2Prefetcher(
                cs, {req.line, !res.hit, res.prefetchedHit, now});
        }
        cs.toL2.pop_front();
    }
}

void
MemHierarchy::processWbToL2(CoreSide &cs, Cycle now)
{
    if (!cs.wbToL2.empty())
        cs.horizonDirty = true;
    for (unsigned n = 0; n < wbPerCycle && !cs.wbToL2.empty(); ++n) {
        const LineAddr line = cs.wbToL2.front();
        const CacheAccessResult res = cs.l2.access(line, true, false);
        if (!res.hit) {
            if (cs.l2Fill.full())
                break;
            ReqMeta meta;
            meta.core = cs.id;
            meta.type = ReqType::Writeback;
            cs.l2Fill.allocateWithData(line, meta, false, now + 1);
        }
        cs.wbToL2.pop_front();
    }
}

// ---------------------------------------------------------------------------
// L3 stage
// ---------------------------------------------------------------------------

void
MemHierarchy::processToL3(Cycle now)
{
    // Sharded L3 demand stage: every channel owns a queue, and the
    // arbiter serves channel heads in global arrival (seq) order so a
    // balanced stream behaves exactly like the historical single
    // queue. A structurally blocked head stalls only its own channel
    // for the rest of the cycle; requests bound for other channels
    // keep flowing, which is what lets the stage scale with the
    // channel count.
    const unsigned budget = l3DemandsPerCycle * channelLanes();
    std::fill(chanStalled.begin(), chanStalled.end(), 0);

    for (unsigned n = 0; n < budget; ++n) {
        // Oldest head among the channels still serviceable this cycle.
        std::size_t best = toL3.size();
        for (std::size_t ch = 0; ch < toL3.size(); ++ch) {
            if (chanStalled[ch] || toL3[ch].empty())
                continue;
            if (best == toL3.size() ||
                toL3[ch].front().seq < toL3[best].front().seq)
                best = ch;
        }
        if (best == toL3.size())
            break; // nothing serviceable left

        std::deque<PendingReq> &q = toL3[best];
        PendingReq &req = q.front();
        // Arrival order implies readyAt order, so if the globally
        // oldest head is not due yet nothing younger is either.
        if (req.readyAt > now)
            break;
        CoreSide &cs = side(req.meta.core);
        const bool c0 = req.meta.core == 0;
        L3Bank &bank = bankFor(req.line);

        // L3 fill-queue CAM: promote an in-flight prefetch of ours.
        // An in-flight entry for this line can only live in the
        // line's own bank, so the CAM probe stays bank-local.
        if (FillQueueEntry *e = bank.fill.find(req.line)) {
            if (e->isPrefetch && e->meta.core == req.meta.core) {
                e->isPrefetch = false;
                e->meta.needL2 = true;
                e->meta.needL1 = req.meta.needL1;
                e->meta.mshrId = req.meta.mshrId;
                e->meta.l1PrefetchBit = req.meta.l1PrefetchBit;
                // The demand's reserved L2 fill entry is dropped; the
                // promoted block allocates its own on arrival.
                cs.horizonDirty = true;
                cs.l2Fill.release(req.meta.l2FillId);
                if (e->meta.wasL2Prefetch)
                    cs.l2pf->onLatePromotion(req.line, now);
                if (c0)
                    ++stats.l2LatePromotions;
                q.pop_front();
                continue;
            }
            // Same line in flight for another core: fall through and
            // fetch a duplicate (cores do not share data in practice).
        }

        // Check the miss path's structural gates *before* touching the
        // cache, so a blocked request retries with no side effects
        // (no stat double-counting, no replacement churn). A full L3
        // fill queue is global backpressure — every channel's misses
        // need an entry, so the whole stage stops, as it always has. A
        // full per-core read queue is channel-local congestion: only
        // this channel stalls and the others keep draining.
        const bool will_hit = bank.cache.probe(req.line);
        if (!will_hit) {
            if (l3FillFull())
                break; // retry next cycle
            if (controller(static_cast<int>(best))
                    .readQueueFull(req.meta.core)) {
                chanStalled[best] = 1; // others continue
                ++bank.l3ChannelStalls;
                continue;
            }
        }

        bank.cache.access(req.line, false, false);
        if (c0)
            ++bank.l3Accesses;

        if (will_hit) {
            cs.horizonDirty = true;
            cs.l2Fill.fillData(req.meta.l2FillId,
                               now + cfg.caches.l3Latency);
        } else {
            if (c0)
                ++bank.l3Misses;
            // Sec. 5.4: on an L3 miss the L2 fill entry is released and
            // the request becomes an L1/L2/L3 miss.
            cs.horizonDirty = true;
            cs.l2Fill.release(req.meta.l2FillId);
            ReqMeta meta = req.meta;
            meta.l2FillId = invalidMshr;
            meta.needL2 = true;
            meta.l3FillId = bank.fill.allocate(req.line, meta, false);
            // Keep the fill-queue entry's own meta in sync with the id.
            bank.fill.entry(meta.l3FillId).meta = meta;
            controller(static_cast<int>(best))
                .enqueueRead(req.line, meta,
                             now + cfg.caches.l3TagLatency);
        }
        q.pop_front();
    }
}

void
MemHierarchy::processPrefetchQueues(Cycle now)
{
    // Prefetch issue is round-robin over the cores' prefetch queues (a
    // per-core resource); the per-cycle budget scales with the channel
    // count like the demand stage. A prefetch whose target channel is
    // congested stays queued without blocking other cores (continue,
    // not break), so the path is already channel-sharded.
    const unsigned budget = l3PrefetchesPerCycle * channelLanes();
    const unsigned active = static_cast<unsigned>(cfg.activeCores);
    for (unsigned n = 0; n < budget; ++n) {
        bool issued = false;
        for (int i = 0; i < cfg.activeCores && !issued; ++i) {
            // Round-robin wrap without the runtime-divisor modulo (this
            // scan runs every cycle): both operands are < active.
            unsigned rr = prefetchRr + static_cast<unsigned>(i);
            if (rr >= active)
                rr -= active;
            const CoreId c = static_cast<CoreId>(rr);
            CoreSide &cs = side(c);
            const PrefetchRequest *req = cs.prefetchQueue.peekReady(now);
            if (!req)
                continue;
            const bool c0 = c == 0;
            L3Bank &bank = bankFor(req->line);

            if (bank.fill.find(req->line)) {
                // Already being fetched: redundant prefetch.
                cs.horizonDirty = true;
                cs.prefetchQueue.popFront(now);
                if (c0)
                    ++stats.l2PrefDropped;
                issued = true;
                continue;
            }

            // Gate before accessing, so retries have no side effects.
            const bool will_hit = bank.cache.probe(req->line);
            if (will_hit) {
                if (cs.l2Fill.full())
                    continue; // leave in queue, retry
                bank.cache.access(req->line, false, false);
                cs.horizonDirty = true;
                cs.l2Fill.allocateWithData(req->line, req->meta, true,
                                           now + cfg.caches.l3Latency);
                cs.prefetchQueue.popFront(now);
                issued = true;
            } else {
                const int ch = channelOf(req->line);
                if (l3FillFull() || controller(ch).readQueueFull(c))
                    continue; // leave in queue, retry
                ReqMeta meta = req->meta;
                meta.l3FillId = bank.fill.allocate(req->line, meta, true);
                bank.fill.entry(meta.l3FillId).meta = meta;
                controller(ch).enqueueRead(req->line, meta,
                                           now + cfg.caches.l3TagLatency);
                cs.horizonDirty = true;
                cs.prefetchQueue.popFront(now);
                issued = true;
            }
        }
        if (++prefetchRr >= active)
            prefetchRr = 0;
        if (!issued)
            break;
    }
}

void
MemHierarchy::drainDramCompletions(Cycle now)
{
    for (auto &mc : mcs) {
        // Most completed reads sit with a future finishCycle (the data
        // burst is still on the bus); the min-finish gate spares both
        // the vector round trip and the erase scan until one is due.
        if (mc->nextCompletionAt() > now)
            continue;
        for (const CompletedRead &r : mc->popCompleted(now)) {
            assert(r.meta.l3FillId != invalidMshr);
            bankFor(r.line).fill.fillData(r.meta.l3FillId, now + 1);
        }
    }
}

bool
MemHierarchy::drainOneL3Fill(Cycle now)
{
    // The architectural (single) fill queue drains its oldest ready
    // entry. Banked, that is the minimum-id ready head across banks:
    // each bank's FIFO order is id order and ids are one global
    // monotonic sequence, so the merge reproduces the monolithic
    // drain order exactly. (Circular id compare, immune to wrap.)
    L3Bank *bank = nullptr;
    FillQueueEntry *e = nullptr;
    for (auto &b : l3Banks) {
        FillQueueEntry *cand = b->fill.peekReady(now);
        if (cand &&
            (!e || static_cast<std::int32_t>(cand->id - e->id) < 0)) {
            e = cand;
            bank = b.get();
        }
    }
    if (!e)
        return false;

    const LineAddr line = e->line;
    CoreSide &cs = side(e->meta.core);

    if (e->meta.needL2 && cs.l2Fill.full())
        return false; // forwarding target full: stall

    const bool will_insert = !bank->cache.probe(line);
    if (will_insert) {
        const CacheVictim victim = bank->cache.peekVictim(line);
        if (victim.valid && victim.dirty &&
            controller(channelOf(victim.line))
                .writeQueueFull(victim.core)) {
            return false; // cannot sink the dirty victim: stall
        }
    }

    const FillQueueEntry entry = *e;
    bank->fill.removeById(e->id);

    if (will_insert) {
        CacheFill fill;
        fill.core = entry.meta.core;
        fill.demand = !entry.isPrefetch &&
                      entry.meta.type != ReqType::Writeback;
        fill.markDirty = entry.meta.type == ReqType::Writeback;
        // A victim shares the fill's set, hence its bank — and the
        // bank's channel, so the dirty writeback sinks into the
        // bank's own controller.
        const CacheVictim victim = bank->cache.insert(line, fill);
        if (victim.valid && victim.dirty) {
            controller(channelOf(victim.line))
                .enqueueWrite(victim.line, victim.core, now);
        }
    }

    if (entry.meta.needL2) {
        cs.horizonDirty = true;
        cs.l2Fill.allocateWithData(line, entry.meta, entry.isPrefetch,
                                   now + 1);
    }
    return true;
}

void
MemHierarchy::processWbToL3(Cycle now)
{
    for (unsigned n = 0; n < wbPerCycle && !wbToL3.empty(); ++n) {
        if (l3FillFull())
            break;
        auto [line, core] = wbToL3.front();
        ReqMeta meta;
        meta.core = core;
        meta.type = ReqType::Writeback;
        bankFor(line).fill.allocateWithData(line, meta, false, now + 1);
        wbToL3.pop_front();
    }
}

// ---------------------------------------------------------------------------
// Fills into L2 / DL1
// ---------------------------------------------------------------------------

void
MemHierarchy::deliverToDl1(CoreSide &cs, LineAddr line, const ReqMeta &meta,
                           Cycle at)
{
    cs.horizonDirty = true;
    cs.dl1Due.push_back({line, meta, at});
}

void
MemHierarchy::drainL2Fill(CoreSide &cs, Cycle now)
{
    const bool c0 = cs.id == 0;
    for (unsigned n = 0; n < l2FillsPerCycle; ++n) {
        auto popped = cs.l2Fill.popReady(now);
        if (!popped)
            return;
        cs.horizonDirty = true;
        FillQueueEntry &entry = *popped;

        // Mandatory tag check before inserting (Sec. 5.4): redundant
        // prefetch paths may have filled the line already.
        if (!cs.l2.probe(entry.line)) {
            CacheFill fill;
            fill.core = entry.meta.core;
            fill.demand = !entry.isPrefetch &&
                          entry.meta.type != ReqType::Writeback;
            fill.markPrefetch = entry.isPrefetch;
            fill.markDirty = entry.meta.type == ReqType::Writeback;
            const CacheVictim victim = cs.l2.insert(entry.line, fill);
            // Staged: wbToL3 is global, so the hand-off crosses the
            // shard boundary at the serial commitEgress merge.
            if (victim.valid && victim.dirty)
                cs.stagedWbToL3.push_back({victim.line, entry.meta.core});
            if (victim.valid) {
                cs.l2pf->onEvict({victim.line, victim.prefetchBit,
                                  entry.isPrefetch, now});
                if (victim.prefetchBit && c0)
                    ++stats.l2PrefUselessEvicted;
            }

            if (entry.meta.type != ReqType::Writeback) {
                cs.l2pf->onFill(
                    {entry.line, entry.meta.wasL2Prefetch, now});
                if (entry.isPrefetch && c0)
                    ++stats.l2PrefFills;
            }
        }

        if (entry.meta.needL1)
            deliverToDl1(cs, entry.line, entry.meta, now + 1);
    }
}

void
MemHierarchy::processDl1Deliveries(CoreSide &cs, Cycle now)
{
    std::size_t keep = 0;
    for (std::size_t i = 0; i < cs.dl1Due.size(); ++i) {
        Dl1Delivery &d = cs.dl1Due[i];
        if (d.at > now) {
            cs.dl1Due[keep++] = d;
            continue;
        }
        cs.horizonDirty = true;

        // Deliveries are strictly core-local; the completion callback
        // below must target this side's own core (parallel egress).
        assert(d.meta.core == cs.id);
        auto m = cs.mshr.complete(d.line);
        const bool store_intent = m && m->storeIntent;
        const bool prefetch_only = m && m->prefetchOnly;

        if (!cs.dl1.probe(d.line)) {
            CacheFill fill;
            fill.core = d.meta.core;
            fill.demand = !prefetch_only;
            fill.markPrefetch = d.meta.l1PrefetchBit && prefetch_only;
            fill.markDirty = store_intent;
            const CacheVictim victim = cs.dl1.insert(d.line, fill);
            if (victim.valid && victim.dirty)
                cs.wbToL2.push_back(victim.line);
        } else if (store_intent) {
            cs.dl1.access(d.line, true, false);
        }

        if (m) {
            CoreModel *core = cores[static_cast<std::size_t>(d.meta.core)];
            for (const std::uint32_t tag : m->waiters)
                core->loadCompleted(tag, now);
            if (m->storeWaiters > 0)
                core->storeCompleted(m->storeWaiters);
        }
    }
    cs.dl1Due.resize(keep);
}

// ---------------------------------------------------------------------------
// Top-level tick + stats
// ---------------------------------------------------------------------------

void
MemHierarchy::tick(Cycle now)
{
    // The serial tick IS the phase sequence: the parallel epochs in
    // System run exactly these calls with the per-core / per-channel
    // phases spread over the worker pool, so threads=N and threads=1
    // execute the same state transitions in the same order.
    for (auto &sd : sides)
        tickCoreIngress(sd->id, now);
    commitIngress(now);
    for (int ch = 0; ch < channelCount(); ++ch)
        tickChannel(ch, now);
    drainUncore(now);
    for (auto &sd : sides)
        tickCoreEgress(sd->id, now);
    commitEgress(now);
}

void
MemHierarchy::tickCoreIngress(CoreId core, Cycle now)
{
    CoreSide &cs = side(core);
    processWbToL2(cs, now);
    processToL2(cs, now);
}

void
MemHierarchy::commitIngress(Cycle now)
{
    horizonStaleFlag.store(true, std::memory_order_relaxed);

    // Jump-safety for the one piece of per-tick state that advances
    // even when the uncore is idle: processPrefetchQueues moves the
    // round-robin pointer by exactly one on every tick that issues
    // nothing. A fast-forwarded stretch is by construction a run of
    // such ticks (no prefetch-queue entry was ready anywhere in it),
    // so catching the pointer up by the gap keeps the arbitration
    // order bit-identical to single-stepping.
    if (now > lastTicked + 1) {
        const Cycle gap = now - lastTicked - 1;
        const unsigned active = static_cast<unsigned>(cfg.activeCores);
        prefetchRr = static_cast<unsigned>(
            (prefetchRr + gap) % active);
    }
    lastTicked = now;

    // Merge the staged L2 misses into the global sharded queues in
    // core order — exactly the order the serial per-side loop used to
    // push them — stamping the global arrival seq at the merge point.
    for (auto &sd : sides) {
        for (PendingReq &req : sd->stagedToL3) {
            req.seq = toL3Seq++;
            toL3[static_cast<std::size_t>(channelOf(req.line))]
                .push_back(req);
        }
        sd->stagedToL3.clear();
    }

    processToL3(now);
    processPrefetchQueues(now);

    // Latched for the channel phase, which must not read the (shared)
    // fill-queue group while its siblings tick concurrently.
    l3FillWasFull = l3FillFull();
}

void
MemHierarchy::tickChannel(int channel, Cycle now)
{
    MemoryController &mc = controller(channel);
    mc.setL3FillQueueFull(l3FillWasFull);
    mc.tick(now);
}

void
MemHierarchy::drainUncore(Cycle now)
{
    drainDramCompletions(now);

    for (unsigned n = 0; n < l3FillsPerCycle; ++n) {
        if (!drainOneL3Fill(now))
            break;
    }
    processWbToL3(now);
}

void
MemHierarchy::tickCoreEgress(CoreId core, Cycle now)
{
    CoreSide &cs = side(core);
    drainL2Fill(cs, now);
    processDl1Deliveries(cs, now);
}

void
MemHierarchy::commitEgress(Cycle now)
{
    (void)now;
    // Merge the staged L2 victims in core order. The serial loop
    // pushed them directly, but nothing reads wbToL3 between the
    // egress stages and the end of the tick, so deferring the pushes
    // to the barrier leaves next cycle's processWbToL3 input
    // identical.
    for (auto &sd : sides) {
        for (const auto &wb : sd->stagedWbToL3)
            wbToL3.push_back(wb);
        sd->stagedWbToL3.clear();
    }
}

Cycle
MemHierarchy::nextEventAt(Cycle now) const
{
    const Cycle next = now + 1;
    Cycle ev = neverCycle;

    // Helper: fold in a time-gated event; a source already due (or due
    // next cycle) pins the horizon to next, which short-circuits the
    // caller via the `ev == next` checks below.
    const auto fold = [&](Cycle at) {
        ev = std::min(ev, std::max(next, at));
    };

    // Per-side horizon sub-cache: each side's contribution is the min
    // over its time-gated sources, kept in ABSOLUTE cycles (0 = "due
    // whenever ticked", an unconditionally draining writeback;
    // neverCycle = idle) so it stays valid as `now` advances. A side
    // recomputes only when some stage actually mutated it
    // (horizonDirty); untouched sides fold the cached value and skip
    // their queue scans entirely. Single-threaded by contract (the
    // fast-forward decision point), hence the plain mutation of the
    // cache fields through the const interface.
    for (const auto &sd : sides) {
        if (sd->horizonDirty) {
            Cycle raw = neverCycle;
            // DL1 dirty victims drain unconditionally while queued.
            if (!sd->wbToL2.empty()) {
                raw = 0;
            } else {
                // The DL1-miss path is strict FIFO: only the front
                // gates.
                if (!sd->toL2.empty())
                    raw = std::min(raw, sd->toL2.front().readyAt);
                // Fill-queue entries carrying data insert at their
                // readyAt; data-less entries wait on downstream
                // components' events.
                raw = std::min(raw, sd->l2Fill.minReadyAt());
                raw = std::min(raw, sd->prefetchQueue.minReadyAt());
                for (const Dl1Delivery &d : sd->dl1Due)
                    raw = std::min(raw, d.at);
            }
            sd->rawHorizon = raw;
            sd->horizonDirty = false;
        }
        fold(sd->rawHorizon);
        if (ev == next)
            return next;
    }

    // Sharded L3 demand queues: served in global arrival order, and
    // arrival order implies readyAt order within a shard, so the
    // shard heads bound the next serviceable request.
    for (const auto &q : toL3) {
        if (!q.empty())
            fold(q.front().readyAt);
    }
    if (!wbToL3.empty())
        return next;
    for (const auto &b : l3Banks) {
        fold(b->fill.minReadyAt());
        if (ev == next)
            return next;
    }

    for (const auto &mc : mcs) {
        fold(mc->nextEventAt(now));
        if (ev == next)
            return next;
    }
    return ev;
}

RunStats
MemHierarchy::collectStats() const
{
    RunStats out = stats;
    // L3 stats live in per-bank shards so the (serial, but
    // bank-routed) L3 stages never share a counter cache line;
    // the sums are order-independent, merged bank 0..N-1.
    for (const auto &b : l3Banks) {
        out.l3Accesses += b->l3Accesses;
        out.l3Misses += b->l3Misses;
        out.l3ChannelStalls += b->l3ChannelStalls;
    }
    for (const auto &mc : mcs) {
        const DramChannelStats &s = mc->stats();
        out.dramReads += s.reads;
        out.dramWrites += s.writes;
        out.dramRowHits += s.rowHits;
        out.dramRowMisses += s.rowMisses;
    }
    if (const auto *bo = dynamic_cast<const BestOffsetPrefetcher *>(
            sides[0]->l2pf.get())) {
        out.boLearningPhases = bo->learningPhases();
        out.boPrefetchOffPhases = bo->offPhases();
        out.boFinalOffset = bo->currentOffset();
        out.boFinalScore = bo->lastPhaseBestScore();
    }
    return out;
}

bool
MemHierarchy::anyToL3() const
{
    for (const auto &q : toL3) {
        if (!q.empty())
            return true;
    }
    return false;
}

bool
MemHierarchy::quiescent() const
{
    if (anyToL3() || !wbToL3.empty() || l3FillSize() > 0)
        return false;
    for (const auto &side : sides) {
        if (!side->toL2.empty() || !side->wbToL2.empty() ||
            !side->dl1Due.empty() || side->l2Fill.size() > 0 ||
            !side->prefetchQueue.empty() || side->mshr.size() > 0) {
            return false;
        }
    }
    for (const auto &mc : mcs) {
        if (mc->anyPending())
            return false;
    }
    return true;
}

void
MemHierarchy::serialize(Serializer &s)
{
    auto pending_req = [](Serializer &sr, PendingReq &r) {
        sr.value(r.line);
        r.meta.serialize(sr);
        sr.value(r.readyAt);
        sr.value(r.seq);
    };

    for (auto &sp : sides) {
        CoreSide &cs = *sp;
        // The staging buffers and prefetch scratch only carry state
        // *inside* one tick; a checkpoint is taken between ticks.
        assert(cs.stagedToL3.empty() && cs.stagedWbToL3.empty());
        cs.dl1.serialize(s);
        cs.l2.serialize(s);
        cs.mshr.serialize(s);
        cs.l2Fill.serialize(s);
        cs.prefetchQueue.serialize(s);
        cs.l2pf->serialize(s);
        if (cs.stride)
            cs.stride->serialize(s);
        cs.tlb.serialize(s);
        s.seq(cs.toL2, pending_req);
        s.seq(cs.wbToL2, [](Serializer &sr, LineAddr &l) {
            sr.value(l);
        });
        s.seq(cs.dl1Due, [](Serializer &sr, Dl1Delivery &d) {
            sr.value(d.line);
            d.meta.serialize(sr);
            sr.value(d.at);
        });
        if (s.loading())
            cs.horizonDirty = true;
    }

    // The shared fill-queue group exactly once, before the banks (whose
    // FillQueue::serialize skips it — they don't own it).
    std::uint64_t group_live = l3FillGroup->liveEntries;
    s.value(group_live);
    s.value(l3FillGroup->nextId);
    if (s.loading()) {
        if (group_live > l3FillGroup->capacity)
            s.fail("L3 fill-queue group occupancy out of range");
        l3FillGroup->liveEntries = static_cast<std::size_t>(group_live);
    }
    for (auto &bp : l3Banks) {
        L3Bank &b = *bp;
        b.cache.serialize(s);
        b.fill.serialize(s);
        s.value(b.l3Accesses);
        s.value(b.l3Misses);
        s.value(b.l3ChannelStalls);
    }

    const std::size_t channels = toL3.size();
    for (auto &q : toL3)
        s.seq(q, pending_req);
    s.value(toL3Seq);
    s.seq(wbToL3, [](Serializer &sr, std::pair<LineAddr, CoreId> &wb) {
        sr.value(wb.first);
        sr.value(wb.second);
    });
    s.value(prefetchRr);
    s.value(lastTicked);
    s.value(l3FillWasFull);
    stats.serialize(s);
    if (s.loading()) {
        if (toL3.size() != channels)
            s.fail("L3 demand shard count mismatch");
        horizonStaleFlag.store(true, std::memory_order_relaxed);
    }
}

void
MemHierarchy::serializeDram(Serializer &s)
{
    for (auto &mc : mcs)
        mc->serialize(s);
}

} // namespace bop
