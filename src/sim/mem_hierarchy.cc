#include "sim/mem_hierarchy.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#include "cache/drrip.hh"
#include "cache/policy_5p.hh"
#include "core/best_offset.hh"
#include "core/offset_list.hh"
#include "prefetch/fixed_offset.hh"
#include "prefetch/sandbox.hh"

namespace bop
{

std::unique_ptr<ReplacementPolicy>
makeL3Policy(const SystemConfig &cfg)
{
    switch (cfg.l3Policy) {
      case L3PolicyKind::P5:
        return std::make_unique<Policy5P>(cfg.seed ^ 0x5105,
                                          cfg.coreCount());
      case L3PolicyKind::Lru:
        return std::make_unique<LruPolicy>();
      case L3PolicyKind::Drrip:
        return std::make_unique<DrripPolicy>(cfg.seed ^ 0xd661);
    }
    return std::make_unique<LruPolicy>();
}

std::unique_ptr<L2Prefetcher>
makeL2Prefetcher(const SystemConfig &cfg)
{
    switch (cfg.l2Prefetcher) {
      case L2PrefetcherKind::None:
        return std::make_unique<NullPrefetcher>(cfg.pageSize);
      case L2PrefetcherKind::NextLine:
        return std::make_unique<NextLinePrefetcher>(cfg.pageSize);
      case L2PrefetcherKind::FixedOffset:
        return std::make_unique<FixedOffsetPrefetcher>(cfg.pageSize,
                                                       cfg.fixedOffset);
      case L2PrefetcherKind::BestOffset:
        return std::make_unique<BestOffsetPrefetcher>(cfg.pageSize,
                                                      cfg.bo);
      case L2PrefetcherKind::Sandbox:
        return std::make_unique<SandboxPrefetcher>(
            cfg.pageSize, makeOffsetList(cfg.bo.maxOffset), cfg.sbp);
      case L2PrefetcherKind::Stream:
        return std::make_unique<StreamPrefetcher>(cfg.pageSize,
                                                  cfg.stream);
      case L2PrefetcherKind::Fdp:
        return std::make_unique<FdpPrefetcher>(cfg.pageSize, cfg.fdp);
      case L2PrefetcherKind::Acdc:
        return std::make_unique<GhbAcdcPrefetcher>(cfg.pageSize,
                                                   cfg.ghb);
      case L2PrefetcherKind::StreamBuffer:
        return std::make_unique<StreamBufferPrefetcher>(cfg.pageSize,
                                                        cfg.streamBuf);
      case L2PrefetcherKind::BestOffsetDpc2:
        return std::make_unique<BestOffsetDpc2Prefetcher>(cfg.pageSize,
                                                          cfg.boDpc2);
    }
    return std::make_unique<NullPrefetcher>(cfg.pageSize);
}

MemHierarchy::CoreSide::CoreSide(const SystemConfig &cfg, CoreId id_)
    : id(id_),
      dl1("dl1." + std::to_string(id), cfg.caches.dl1Bytes,
          cfg.caches.dl1Ways, std::make_unique<LruPolicy>()),
      l2("l2." + std::to_string(id), cfg.caches.l2Bytes,
         cfg.caches.l2Ways, std::make_unique<LruPolicy>()),
      mshr(cfg.caches.dl1Mshrs),
      l2Fill("l2fq." + std::to_string(id), cfg.caches.l2FillQueue),
      prefetchQueue(cfg.caches.prefetchQueue),
      vmem(cfg.pageSize, static_cast<std::uint64_t>(id), cfg.seed)
{
    // All reported numbers are for core 0 (Sec. 5.1). The prefetcher
    // under test runs on core 0 only; the other active cores keep the
    // fixed baseline prefetchers (next-line + DL1 stride), so that a
    // configuration change isolates core 0's prefetcher instead of
    // also making the cache-thrashing micro-benchmarks fetch faster.
    if (id == 0) {
        l2pf = makeL2Prefetcher(cfg);
        if (cfg.dl1StridePrefetcher)
            stride.emplace(cfg.stride);
    } else {
        l2pf = std::make_unique<NextLinePrefetcher>(cfg.pageSize);
        stride.emplace(cfg.stride);
    }
}

MemHierarchy::MemHierarchy(const SystemConfig &cfg_)
    : cfg(cfg_.resolved()),
      l3Cache("l3", cfg.caches.l3Bytes, cfg.caches.l3Ways,
              makeL3Policy(cfg)),
      // The fill queue bounds all in-flight DRAM reads (every queued
      // read holds a live entry until its data drains), so it must
      // grow with the channel count or it, not the channels, caps
      // memory-level parallelism. The paper's 2-channel chip keeps
      // the Table 1 capacity exactly.
      l3Fill("l3fq", cfg.caches.l3FillQueue * channelLanes()),
      toL3(static_cast<std::size_t>(cfg.numChannels)),
      cores(static_cast<std::size_t>(cfg.numCores), nullptr),
      chanStalled(static_cast<std::size_t>(cfg.numChannels), 0)
{
    for (int c = 0; c < cfg.activeCores; ++c)
        sides.push_back(std::make_unique<CoreSide>(cfg, c));
    for (int ch = 0; ch < cfg.numChannels; ++ch) {
        mcs.push_back(std::make_unique<MemoryController>(cfg.dram, ch,
                                                         cfg.numCores));
    }

    if (cfg.prewarmL3) {
        // Occupy every L3 way with a clean placeholder line from an
        // address region no workload touches (top of the physical
        // space), attributed round-robin across the active cores so
        // the core-aware policies start from a neutral state.
        const std::size_t sets = l3Cache.numSets();
        const unsigned ways = l3Cache.numWays();
        const unsigned set_bits =
            static_cast<unsigned>(std::countr_zero(sets));
        for (std::size_t set = 0; set < sets; ++set) {
            for (unsigned w = 0; w < ways; ++w) {
                const LineAddr junk =
                    (1ull << (VirtualMemory::physBits - lineShift)) +
                    (static_cast<LineAddr>(w + 1) << set_bits) + set;
                CacheFill fill;
                fill.core = static_cast<CoreId>(w) % cfg.activeCores;
                fill.demand = true;
                l3Cache.insert(junk, fill);
            }
        }
    }
}

void
MemHierarchy::attachCore(CoreId core, CoreModel *model)
{
    cores.at(static_cast<std::size_t>(core)) = model;
}

int
MemHierarchy::channelOf(LineAddr line) const
{
    return channelOfLine(line, cfg.numChannels);
}

// ---------------------------------------------------------------------------
// Core-side entry points
// ---------------------------------------------------------------------------

LoadOutcome
MemHierarchy::coreLoad(CoreId core, Addr vaddr, Addr pc,
                       std::uint32_t rob_tag, Cycle now)
{
    horizonStaleFlag = true;
    CoreSide &cs = side(core);
    const LineAddr line = lineOf(cs.vmem.translate(vaddr));

    // Structural check first so a Retry has no side effects.
    if (!cs.dl1.probe(line) && !cs.mshr.find(line) && cs.mshr.full())
        return {LoadOutcome::Kind::Retry, 0};

    std::uint64_t dummy1 = 0, dummy2 = 0;
    const bool c0 = core == 0;
    const unsigned tlb_pen = cs.tlb.demandAccess(
        cs.vmem.vpn(vaddr), c0 ? stats.dtlb1Misses : dummy1,
        c0 ? stats.tlb2Misses : dummy2);

    if (c0)
        ++stats.dl1Accesses;

    const CacheAccessResult res = cs.dl1.access(line, false, true);
    const Cycle data_at = now + tlb_pen + cfg.caches.dl1Latency;

    LoadOutcome out;
    if (res.hit) {
        out = {LoadOutcome::Kind::Hit, data_at};
    } else {
        if (c0)
            ++stats.dl1Misses;
        if (MshrEntry *m = cs.mshr.find(line)) {
            m->waiters.push_back(rob_tag);
            m->prefetchOnly = false;
            out = {LoadOutcome::Kind::Pending, 0};
        } else {
            const std::uint32_t id = cs.mshr.allocate(line, false, now);
            MshrEntry *fresh = cs.mshr.find(line);
            fresh->waiters.push_back(rob_tag);

            ReqMeta meta;
            meta.core = core;
            meta.type = ReqType::DemandRead;
            meta.needL1 = true;
            meta.mshrId = id;
            meta.birth = now;
            cs.toL2.push_back({line, meta, data_at});
            out = {LoadOutcome::Kind::Pending, 0};
        }
    }

    if ((!res.hit || res.prefetchedHit) && cs.stride) {
        if (auto target = cs.stride->onAccess(pc, vaddr))
            issueL1Prefetch(cs, pc, *target, now);
    }
    return out;
}

StoreOutcome
MemHierarchy::coreStore(CoreId core, Addr vaddr, Addr pc, Cycle now)
{
    horizonStaleFlag = true;
    CoreSide &cs = side(core);
    const LineAddr line = lineOf(cs.vmem.translate(vaddr));

    if (!cs.dl1.probe(line) && !cs.mshr.find(line) && cs.mshr.full())
        return {false, false};

    std::uint64_t dummy1 = 0, dummy2 = 0;
    const bool c0 = core == 0;
    const unsigned tlb_pen = cs.tlb.demandAccess(
        cs.vmem.vpn(vaddr), c0 ? stats.dtlb1Misses : dummy1,
        c0 ? stats.tlb2Misses : dummy2);

    if (c0)
        ++stats.dl1Accesses;

    const CacheAccessResult res = cs.dl1.access(line, true, true);

    StoreOutcome out;
    if (res.hit) {
        out = {true, true};
    } else {
        if (c0)
            ++stats.dl1Misses;
        if (MshrEntry *m = cs.mshr.find(line)) {
            m->prefetchOnly = false;
            m->storeIntent = true;
            ++m->storeWaiters;
        } else {
            const std::uint32_t id = cs.mshr.allocate(line, false, now);
            MshrEntry *fresh = cs.mshr.find(line);
            fresh->storeIntent = true;
            fresh->storeWaiters = 1;

            ReqMeta meta;
            meta.core = core;
            meta.type = ReqType::DemandRead; // write-allocate fetch
            meta.needL1 = true;
            meta.mshrId = id;
            meta.birth = now;
            cs.toL2.push_back(
                {line, meta, now + tlb_pen + cfg.caches.dl1Latency});
        }
        out = {true, false};
    }

    if ((!res.hit || res.prefetchedHit) && cs.stride) {
        if (auto target = cs.stride->onAccess(pc, vaddr))
            issueL1Prefetch(cs, pc, *target, now);
    }
    return out;
}

void
MemHierarchy::retireMemOp(CoreId core, Addr pc, Addr vaddr)
{
    CoreSide &cs = side(core);
    if (cs.stride)
        cs.stride->onRetire(pc, vaddr);
}

void
MemHierarchy::issueL1Prefetch(CoreSide &cs, Addr pc, Addr vaddr, Cycle now)
{
    (void)pc;
    const bool c0 = cs.id == 0;

    // Sec. 5.5: the prefetch address goes through the TLB2; a miss
    // drops the request (no TLB prefetching).
    if (!cs.tlb.prefetchProbe(cs.vmem.vpn(vaddr))) {
        if (c0)
            ++stats.dl1PrefDropTlb;
        return;
    }
    const LineAddr line = lineOf(cs.vmem.translate(vaddr));
    if (cs.dl1.probe(line) || cs.mshr.find(line) || cs.mshr.full())
        return;

    const std::uint32_t id = cs.mshr.allocate(line, true, now);
    ReqMeta meta;
    meta.core = cs.id;
    meta.type = ReqType::L1Prefetch;
    meta.needL1 = true;
    meta.l1PrefetchBit = true;
    meta.mshrId = id;
    meta.birth = now;
    cs.toL2.push_back({line, meta, now + cfg.caches.dl1Latency});
    if (c0)
        ++stats.dl1PrefIssued;
}

// ---------------------------------------------------------------------------
// L2 stage
// ---------------------------------------------------------------------------

void
MemHierarchy::triggerL2Prefetcher(CoreSide &cs, const L2AccessEvent &ev)
{
    const bool c0 = cs.id == 0;
    prefetchScratch.clear();
    cs.l2pf->onAccess(ev, prefetchScratch);

    for (const LineAddr target : prefetchScratch) {
        // Degree-N prefetchers (SBP) check the L2 tags before issuing.
        if (cs.l2pf->requiresTagCheck() && cs.l2.probe(target)) {
            if (c0)
                ++stats.l2PrefDropped;
            continue;
        }
        // Redundant-request removal: the fill queues, prefetch queue
        // and memory-controller read queues are searched (Sec. 6.3).
        if (cs.l2Fill.find(target) || cs.prefetchQueue.contains(target) ||
            controller(channelOf(target)).readQueueContains(target)) {
            if (c0)
                ++stats.l2PrefDropped;
            continue;
        }

        ReqMeta meta;
        meta.core = cs.id;
        meta.type = ReqType::L2Prefetch;
        meta.needL2 = true;
        meta.wasL2Prefetch = true;
        meta.prefetchOffset = cs.l2pf->currentOffset();
        meta.birth = ev.cycle;

        const bool cancelled =
            cs.prefetchQueue.insert({target, meta, ev.cycle + 1});
        if (c0) {
            ++stats.l2PrefIssued;
            if (cancelled)
                ++stats.l2PrefDropped;
        }
    }
}

void
MemHierarchy::processToL2(CoreSide &cs, Cycle now)
{
    const bool c0 = cs.id == 0;
    for (unsigned n = 0; n < l2ReqsPerCycle && !cs.toL2.empty(); ++n) {
        PendingReq &req = cs.toL2.front();
        if (req.readyAt > now)
            break;

        // Fill-queue CAM: an in-flight block absorbs this request.
        if (FillQueueEntry *e = cs.l2Fill.find(req.line)) {
            if (e->isPrefetch) {
                // Late-prefetch promotion (Sec. 5.4).
                e->isPrefetch = false;
                e->meta.needL1 = req.meta.needL1;
                e->meta.mshrId = req.meta.mshrId;
                e->meta.l1PrefetchBit = req.meta.type == ReqType::L1Prefetch;
                if (e->meta.wasL2Prefetch)
                    cs.l2pf->onLatePromotion(req.line, now);
                if (c0)
                    ++stats.l2LatePromotions;
            }
            // A demand entry for the same line cannot carry two MSHRs;
            // the DL1 MSHR coalescing prevents that case entirely.
            cs.toL2.pop_front();
            continue;
        }

        const CacheAccessResult res = cs.l2.access(req.line, false, true);
        if (c0)
            ++stats.l2Accesses;

        if (res.hit) {
            if (res.prefetchedHit && c0)
                ++stats.l2PrefetchedHits;
            deliverToDl1(cs, req.line, req.meta,
                         now + cfg.caches.l2Latency);
        } else {
            if (c0)
                ++stats.l2Misses;
            if (!cs.l2Fill.canAllocateWaiting())
                break; // backpressure: miss cannot issue yet
            ReqMeta meta = req.meta;
            meta.l2FillId = cs.l2Fill.allocate(req.line, meta, false);
            toL3[static_cast<std::size_t>(channelOf(req.line))].push_back(
                {req.line, meta, now + cfg.caches.l2TagLatency,
                 toL3Seq++});
        }

        if (!res.hit || res.prefetchedHit) {
            triggerL2Prefetcher(
                cs, {req.line, !res.hit, res.prefetchedHit, now});
        }
        cs.toL2.pop_front();
    }
}

void
MemHierarchy::processWbToL2(CoreSide &cs, Cycle now)
{
    for (unsigned n = 0; n < wbPerCycle && !cs.wbToL2.empty(); ++n) {
        const LineAddr line = cs.wbToL2.front();
        const CacheAccessResult res = cs.l2.access(line, true, false);
        if (!res.hit) {
            if (cs.l2Fill.full())
                break;
            ReqMeta meta;
            meta.core = cs.id;
            meta.type = ReqType::Writeback;
            cs.l2Fill.allocateWithData(line, meta, false, now + 1);
        }
        cs.wbToL2.pop_front();
    }
}

// ---------------------------------------------------------------------------
// L3 stage
// ---------------------------------------------------------------------------

void
MemHierarchy::processToL3(Cycle now)
{
    // Sharded L3 demand stage: every channel owns a queue, and the
    // arbiter serves channel heads in global arrival (seq) order so a
    // balanced stream behaves exactly like the historical single
    // queue. A structurally blocked head stalls only its own channel
    // for the rest of the cycle; requests bound for other channels
    // keep flowing, which is what lets the stage scale with the
    // channel count.
    const unsigned budget = l3DemandsPerCycle * channelLanes();
    std::fill(chanStalled.begin(), chanStalled.end(), 0);

    for (unsigned n = 0; n < budget; ++n) {
        // Oldest head among the channels still serviceable this cycle.
        std::size_t best = toL3.size();
        for (std::size_t ch = 0; ch < toL3.size(); ++ch) {
            if (chanStalled[ch] || toL3[ch].empty())
                continue;
            if (best == toL3.size() ||
                toL3[ch].front().seq < toL3[best].front().seq)
                best = ch;
        }
        if (best == toL3.size())
            break; // nothing serviceable left

        std::deque<PendingReq> &q = toL3[best];
        PendingReq &req = q.front();
        // Arrival order implies readyAt order, so if the globally
        // oldest head is not due yet nothing younger is either.
        if (req.readyAt > now)
            break;
        CoreSide &cs = side(req.meta.core);
        const bool c0 = req.meta.core == 0;

        // L3 fill-queue CAM: promote an in-flight prefetch of ours.
        if (FillQueueEntry *e = l3Fill.find(req.line)) {
            if (e->isPrefetch && e->meta.core == req.meta.core) {
                e->isPrefetch = false;
                e->meta.needL2 = true;
                e->meta.needL1 = req.meta.needL1;
                e->meta.mshrId = req.meta.mshrId;
                e->meta.l1PrefetchBit = req.meta.l1PrefetchBit;
                // The demand's reserved L2 fill entry is dropped; the
                // promoted block allocates its own on arrival.
                cs.l2Fill.release(req.meta.l2FillId);
                if (e->meta.wasL2Prefetch)
                    cs.l2pf->onLatePromotion(req.line, now);
                if (c0)
                    ++stats.l2LatePromotions;
                q.pop_front();
                continue;
            }
            // Same line in flight for another core: fall through and
            // fetch a duplicate (cores do not share data in practice).
        }

        // Check the miss path's structural gates *before* touching the
        // cache, so a blocked request retries with no side effects
        // (no stat double-counting, no replacement churn). A full L3
        // fill queue is global backpressure — every channel's misses
        // need an entry, so the whole stage stops, as it always has. A
        // full per-core read queue is channel-local congestion: only
        // this channel stalls and the others keep draining.
        const bool will_hit = l3Cache.probe(req.line);
        if (!will_hit) {
            if (l3Fill.full())
                break; // retry next cycle
            if (controller(static_cast<int>(best))
                    .readQueueFull(req.meta.core)) {
                chanStalled[best] = 1; // others continue
                ++stats.l3ChannelStalls;
                continue;
            }
        }

        l3Cache.access(req.line, false, false);
        if (c0)
            ++stats.l3Accesses;

        if (will_hit) {
            cs.l2Fill.fillData(req.meta.l2FillId,
                               now + cfg.caches.l3Latency);
        } else {
            if (c0)
                ++stats.l3Misses;
            // Sec. 5.4: on an L3 miss the L2 fill entry is released and
            // the request becomes an L1/L2/L3 miss.
            cs.l2Fill.release(req.meta.l2FillId);
            ReqMeta meta = req.meta;
            meta.l2FillId = invalidMshr;
            meta.needL2 = true;
            meta.l3FillId = l3Fill.allocate(req.line, meta, false);
            // Keep the fill-queue entry's own meta in sync with the id.
            l3Fill.entry(meta.l3FillId).meta = meta;
            controller(static_cast<int>(best))
                .enqueueRead(req.line, meta,
                             now + cfg.caches.l3TagLatency);
        }
        q.pop_front();
    }
}

void
MemHierarchy::processPrefetchQueues(Cycle now)
{
    // Prefetch issue is round-robin over the cores' prefetch queues (a
    // per-core resource); the per-cycle budget scales with the channel
    // count like the demand stage. A prefetch whose target channel is
    // congested stays queued without blocking other cores (continue,
    // not break), so the path is already channel-sharded.
    const unsigned budget = l3PrefetchesPerCycle * channelLanes();
    const unsigned active = static_cast<unsigned>(cfg.activeCores);
    for (unsigned n = 0; n < budget; ++n) {
        bool issued = false;
        for (int i = 0; i < cfg.activeCores && !issued; ++i) {
            // Round-robin wrap without the runtime-divisor modulo (this
            // scan runs every cycle): both operands are < active.
            unsigned rr = prefetchRr + static_cast<unsigned>(i);
            if (rr >= active)
                rr -= active;
            const CoreId c = static_cast<CoreId>(rr);
            CoreSide &cs = side(c);
            const PrefetchRequest *req = cs.prefetchQueue.peekReady(now);
            if (!req)
                continue;
            const bool c0 = c == 0;

            if (l3Fill.find(req->line)) {
                // Already being fetched: redundant prefetch.
                cs.prefetchQueue.popFront(now);
                if (c0)
                    ++stats.l2PrefDropped;
                issued = true;
                continue;
            }

            // Gate before accessing, so retries have no side effects.
            const bool will_hit = l3Cache.probe(req->line);
            if (will_hit) {
                if (cs.l2Fill.full())
                    continue; // leave in queue, retry
                l3Cache.access(req->line, false, false);
                cs.l2Fill.allocateWithData(req->line, req->meta, true,
                                           now + cfg.caches.l3Latency);
                cs.prefetchQueue.popFront(now);
                issued = true;
            } else {
                const int ch = channelOf(req->line);
                if (l3Fill.full() || controller(ch).readQueueFull(c))
                    continue; // leave in queue, retry
                ReqMeta meta = req->meta;
                meta.l3FillId = l3Fill.allocate(req->line, meta, true);
                l3Fill.entry(meta.l3FillId).meta = meta;
                controller(ch).enqueueRead(req->line, meta,
                                           now + cfg.caches.l3TagLatency);
                cs.prefetchQueue.popFront(now);
                issued = true;
            }
        }
        if (++prefetchRr >= active)
            prefetchRr = 0;
        if (!issued)
            break;
    }
}

void
MemHierarchy::drainDramCompletions(Cycle now)
{
    for (auto &mc : mcs) {
        // Most completed reads sit with a future finishCycle (the data
        // burst is still on the bus); the min-finish gate spares both
        // the vector round trip and the erase scan until one is due.
        if (mc->nextCompletionAt() > now)
            continue;
        for (const CompletedRead &r : mc->popCompleted(now)) {
            assert(r.meta.l3FillId != invalidMshr);
            l3Fill.fillData(r.meta.l3FillId, now + 1);
        }
    }
}

bool
MemHierarchy::drainOneL3Fill(Cycle now)
{
    FillQueueEntry *e = l3Fill.peekReady(now);
    if (!e)
        return false;

    const LineAddr line = e->line;
    CoreSide &cs = side(e->meta.core);

    if (e->meta.needL2 && cs.l2Fill.full())
        return false; // forwarding target full: stall

    const bool will_insert = !l3Cache.probe(line);
    if (will_insert) {
        const CacheVictim victim = l3Cache.peekVictim(line);
        if (victim.valid && victim.dirty &&
            controller(channelOf(victim.line))
                .writeQueueFull(victim.core)) {
            return false; // cannot sink the dirty victim: stall
        }
    }

    const FillQueueEntry entry = *e;
    l3Fill.removeById(e->id);

    if (will_insert) {
        CacheFill fill;
        fill.core = entry.meta.core;
        fill.demand = !entry.isPrefetch &&
                      entry.meta.type != ReqType::Writeback;
        fill.markDirty = entry.meta.type == ReqType::Writeback;
        const CacheVictim victim = l3Cache.insert(line, fill);
        if (victim.valid && victim.dirty) {
            controller(channelOf(victim.line))
                .enqueueWrite(victim.line, victim.core, now);
        }
    }

    if (entry.meta.needL2) {
        cs.l2Fill.allocateWithData(line, entry.meta, entry.isPrefetch,
                                   now + 1);
    }
    return true;
}

void
MemHierarchy::processWbToL3(Cycle now)
{
    for (unsigned n = 0; n < wbPerCycle && !wbToL3.empty(); ++n) {
        if (l3Fill.full())
            break;
        auto [line, core] = wbToL3.front();
        ReqMeta meta;
        meta.core = core;
        meta.type = ReqType::Writeback;
        l3Fill.allocateWithData(line, meta, false, now + 1);
        wbToL3.pop_front();
    }
}

// ---------------------------------------------------------------------------
// Fills into L2 / DL1
// ---------------------------------------------------------------------------

void
MemHierarchy::deliverToDl1(CoreSide &cs, LineAddr line, const ReqMeta &meta,
                           Cycle at)
{
    cs.dl1Due.push_back({line, meta, at});
}

void
MemHierarchy::drainL2Fill(CoreSide &cs, Cycle now)
{
    const bool c0 = cs.id == 0;
    for (unsigned n = 0; n < l2FillsPerCycle; ++n) {
        auto popped = cs.l2Fill.popReady(now);
        if (!popped)
            return;
        FillQueueEntry &entry = *popped;

        // Mandatory tag check before inserting (Sec. 5.4): redundant
        // prefetch paths may have filled the line already.
        if (!cs.l2.probe(entry.line)) {
            CacheFill fill;
            fill.core = entry.meta.core;
            fill.demand = !entry.isPrefetch &&
                          entry.meta.type != ReqType::Writeback;
            fill.markPrefetch = entry.isPrefetch;
            fill.markDirty = entry.meta.type == ReqType::Writeback;
            const CacheVictim victim = cs.l2.insert(entry.line, fill);
            if (victim.valid && victim.dirty)
                wbToL3.push_back({victim.line, entry.meta.core});
            if (victim.valid) {
                cs.l2pf->onEvict({victim.line, victim.prefetchBit,
                                  entry.isPrefetch, now});
                if (victim.prefetchBit && c0)
                    ++stats.l2PrefUselessEvicted;
            }

            if (entry.meta.type != ReqType::Writeback) {
                cs.l2pf->onFill(
                    {entry.line, entry.meta.wasL2Prefetch, now});
                if (entry.isPrefetch && c0)
                    ++stats.l2PrefFills;
            }
        }

        if (entry.meta.needL1)
            deliverToDl1(cs, entry.line, entry.meta, now + 1);
    }
}

void
MemHierarchy::processDl1Deliveries(CoreSide &cs, Cycle now)
{
    std::size_t keep = 0;
    for (std::size_t i = 0; i < cs.dl1Due.size(); ++i) {
        Dl1Delivery &d = cs.dl1Due[i];
        if (d.at > now) {
            cs.dl1Due[keep++] = d;
            continue;
        }

        auto m = cs.mshr.complete(d.line);
        const bool store_intent = m && m->storeIntent;
        const bool prefetch_only = m && m->prefetchOnly;

        if (!cs.dl1.probe(d.line)) {
            CacheFill fill;
            fill.core = d.meta.core;
            fill.demand = !prefetch_only;
            fill.markPrefetch = d.meta.l1PrefetchBit && prefetch_only;
            fill.markDirty = store_intent;
            const CacheVictim victim = cs.dl1.insert(d.line, fill);
            if (victim.valid && victim.dirty)
                cs.wbToL2.push_back(victim.line);
        } else if (store_intent) {
            cs.dl1.access(d.line, true, false);
        }

        if (m) {
            CoreModel *core = cores[static_cast<std::size_t>(d.meta.core)];
            for (const std::uint32_t tag : m->waiters)
                core->loadCompleted(tag, now);
            if (m->storeWaiters > 0)
                core->storeCompleted(m->storeWaiters);
        }
    }
    cs.dl1Due.resize(keep);
}

// ---------------------------------------------------------------------------
// Top-level tick + stats
// ---------------------------------------------------------------------------

void
MemHierarchy::tick(Cycle now)
{
    horizonStaleFlag = true;
    // Jump-safety for the one piece of per-tick state that advances
    // even when the uncore is idle: processPrefetchQueues moves the
    // round-robin pointer by exactly one on every tick that issues
    // nothing. A fast-forwarded stretch is by construction a run of
    // such ticks (no prefetch-queue entry was ready anywhere in it),
    // so catching the pointer up by the gap keeps the arbitration
    // order bit-identical to single-stepping.
    if (now > lastTicked + 1) {
        const Cycle gap = now - lastTicked - 1;
        const unsigned active = static_cast<unsigned>(cfg.activeCores);
        prefetchRr = static_cast<unsigned>(
            (prefetchRr + gap) % active);
    }
    lastTicked = now;

    for (auto &side : sides) {
        processWbToL2(*side, now);
        processToL2(*side, now);
    }
    processToL3(now);
    processPrefetchQueues(now);

    for (auto &mc : mcs) {
        mc->setL3FillQueueFull(l3Fill.full());
        mc->tick(now);
    }
    drainDramCompletions(now);

    for (unsigned n = 0; n < l3FillsPerCycle; ++n) {
        if (!drainOneL3Fill(now))
            break;
    }
    processWbToL3(now);

    for (auto &side : sides) {
        drainL2Fill(*side, now);
        processDl1Deliveries(*side, now);
    }
}

Cycle
MemHierarchy::nextEventAt(Cycle now) const
{
    const Cycle next = now + 1;
    Cycle ev = neverCycle;

    // Helper: fold in a time-gated event; a source already due (or due
    // next cycle) pins the horizon to next, which short-circuits the
    // caller via the `ev == next` checks below.
    const auto fold = [&](Cycle at) {
        ev = std::min(ev, std::max(next, at));
    };

    for (const auto &side : sides) {
        // DL1 dirty victims drain unconditionally while queued.
        if (!side->wbToL2.empty())
            return next;
        // The DL1-miss path is strict FIFO: only the front gates.
        if (!side->toL2.empty())
            fold(side->toL2.front().readyAt);
        // Fill-queue entries carrying data insert at their readyAt;
        // data-less entries wait on downstream components' events.
        fold(side->l2Fill.minReadyAt());
        fold(side->prefetchQueue.minReadyAt());
        for (const Dl1Delivery &d : side->dl1Due)
            fold(d.at);
        if (ev == next)
            return next;
    }

    // Sharded L3 demand queues: served in global arrival order, and
    // arrival order implies readyAt order within a shard, so the
    // shard heads bound the next serviceable request.
    for (const auto &q : toL3) {
        if (!q.empty())
            fold(q.front().readyAt);
    }
    if (!wbToL3.empty())
        return next;
    fold(l3Fill.minReadyAt());
    if (ev == next)
        return next;

    for (const auto &mc : mcs) {
        fold(mc->nextEventAt(now));
        if (ev == next)
            return next;
    }
    return ev;
}

RunStats
MemHierarchy::collectStats() const
{
    RunStats out = stats;
    for (const auto &mc : mcs) {
        const DramChannelStats &s = mc->stats();
        out.dramReads += s.reads;
        out.dramWrites += s.writes;
        out.dramRowHits += s.rowHits;
        out.dramRowMisses += s.rowMisses;
    }
    if (const auto *bo = dynamic_cast<const BestOffsetPrefetcher *>(
            sides[0]->l2pf.get())) {
        out.boLearningPhases = bo->learningPhases();
        out.boPrefetchOffPhases = bo->offPhases();
        out.boFinalOffset = bo->currentOffset();
        out.boFinalScore = bo->lastPhaseBestScore();
    }
    return out;
}

bool
MemHierarchy::anyToL3() const
{
    for (const auto &q : toL3) {
        if (!q.empty())
            return true;
    }
    return false;
}

bool
MemHierarchy::quiescent() const
{
    if (anyToL3() || !wbToL3.empty() || l3Fill.size() > 0)
        return false;
    for (const auto &side : sides) {
        if (!side->toL2.empty() || !side->wbToL2.empty() ||
            !side->dl1Due.empty() || side->l2Fill.size() > 0 ||
            !side->prefetchQueue.empty() || side->mshr.size() > 0) {
            return false;
        }
    }
    for (const auto &mc : mcs) {
        if (mc->anyPending())
            return false;
    }
    return true;
}

} // namespace bop
