/**
 * @file
 * The full memory hierarchy of the simulated chip (paper Sec. 5): per
 * active core a DL1 + private L2 with fill queue, stride prefetcher, L2
 * prefetcher with 8-entry prefetch queue, two-level TLBs and a
 * randomised page table; a shared non-inclusive L3 with its own fill
 * queue and the 5P (or LRU/DRRIP) replacement policy; M DDR3 channels
 * with fairness-aware controllers. Core and channel counts are runtime
 * topology from SystemConfig (the paper's chip is 4 cores x 2
 * channels), validated at construction.
 *
 * The L2-miss-to-L3 demand path is sharded per DRAM channel: each
 * channel owns its own pending-request queue, and the L3 stage
 * arbitrates between the channel heads in global arrival order with a
 * per-cycle budget that scales with the channel count, as does the L3
 * fill queue capacity (it bounds all in-flight DRAM reads). A full
 * fill queue is global backpressure and stops the stage, exactly as
 * before; a full per-core read queue in one controller is
 * channel-local congestion and parks only that channel's shard for
 * the cycle (counted in RunStats::l3ChannelStalls), so imbalanced
 * traffic on wide chips no longer serializes the other channels.
 *
 * The L3 tag array itself is banked per DRAM channel whenever the
 * channel XOR-fold is a pure function of the set index (4 k-bit fields
 * at line bits [2, 2+4k) all inside the set index — true for the
 * default 8 MB cache up to 4 channels; wider chips fall back to one
 * bank). Each bank pairs with its channel's demand shard and memory
 * controller and owns its slice of the tag array, its replacement-
 * policy instance, its bank of the (architecturally single) fill
 * queue, victim-writeback routing to its own controller, and a stats
 * shard; the shards merge deterministically in collectStats(). State
 * that is architecturally global to the LLC — the 5P/DRRIP counters
 * and BIP RNG, fill-queue capacity/ids — stays shared across banks,
 * so a banked cache is bit-identical to the monolithic one.
 *
 * tick() is decomposed into barrier-friendly phases so System can run
 * the per-core and per-channel phases on a worker pool: tickCoreIngress
 * (core c only touches side c; L2 misses are staged per side),
 * commitIngress (serial: merge staged misses in core order, stamp
 * global seqs, L3 demand/prefetch arbitration), tickChannel (each
 * controller independent), drainUncore (serial: completions, L3 fill
 * drain in global id order, L2 writebacks), tickCoreEgress (L2/DL1
 * fills, per-side; L2 victims staged), commitEgress (serial merge).
 * Cross-shard hand-offs therefore move only at the serial commit
 * points, in global arrival order, which is what keeps the parallel
 * schedule bit-identical to the serial one.
 *
 * The fill-queue protocol is the paper's MSHR-free design (Sec. 5.4):
 * entries are allocated when a miss issues to the next level, released
 * when that level misses too, refilled when data returns, and CAM
 * searches promote in-flight prefetches hit by demand misses. Prefetch
 * requests have lowest priority into the L3 and can be cancelled any
 * time (oldest-first when the 8-entry prefetch queue overflows).
 *
 * Deadlock freedom: fill queues keep two slots in reserve that pure
 * "waiting" allocations may not use, dirty victims of the L2 drain into
 * an unbounded (in practice tiny) writeback buffer, and the memory
 * controllers drain independently — so every blocked queue eventually
 * observes progress downstream.
 */

#ifndef BOP_SIM_MEM_HIERARCHY_HH
#define BOP_SIM_MEM_HIERARCHY_HH

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "cache/fill_queue.hh"
#include "cache/mshr.hh"
#include "cache/prefetch_queue.hh"
#include "cache/req.hh"
#include "common/stats.hh"
#include "dram/mem_controller.hh"
#include "prefetch/l2_prefetcher.hh"
#include "prefetch/stride.hh"
#include "sim/config.hh"
#include "sim/core_model.hh"
#include "sim/tlb.hh"
#include "sim/vmem.hh"

namespace bop
{

/** Builds the L3 replacement policy selected by the config. */
std::unique_ptr<ReplacementPolicy> makeL3Policy(const SystemConfig &cfg);

/** Builds the L2 prefetcher selected by the config. */
std::unique_ptr<L2Prefetcher> makeL2Prefetcher(const SystemConfig &cfg);

/** The complete uncore + DL1s. */
class MemHierarchy : public CoreMemInterface
{
  public:
    explicit MemHierarchy(const SystemConfig &cfg);

    /** Register the core object completion callbacks are routed to. */
    void attachCore(CoreId core, CoreModel *model);

    // -- CoreMemInterface ---------------------------------------------------
    LoadOutcome coreLoad(CoreId core, Addr vaddr, Addr pc,
                         std::uint32_t rob_tag, Cycle now) override;
    StoreOutcome coreStore(CoreId core, Addr vaddr, Addr pc,
                           Cycle now) override;
    void retireMemOp(CoreId core, Addr pc, Addr vaddr) override;

    /** Advance the uncore one core cycle. */
    void tick(Cycle now);

    // -- parallel-epoch phases (System's worker pool) ------------------------
    // tick(now) == for all cores: tickCoreIngress; commitIngress;
    //              for all channels: tickChannel; drainUncore;
    //              for all cores: tickCoreEgress; commitEgress.
    // The per-core and per-channel phases touch only that core's /
    // channel's state (plus read-only probes of quiescent controllers
    // and thread-confined core-0 stats), so System may run them
    // concurrently between the serial commit phases.
    void tickCoreIngress(CoreId core, Cycle now);
    void commitIngress(Cycle now);
    void tickChannel(int channel, Cycle now);
    void drainUncore(Cycle now);
    void tickCoreEgress(CoreId core, Cycle now);
    void commitEgress(Cycle now);

    /**
     * Earliest cycle > @p now at which any uncore component can act
     * (event-horizon fast-forward); neverCycle when every queue is
     * empty and every controller idle. Time-gated queues (fill queues
     * with data, prefetch queues, DL1 deliveries, the inter-level
     * request queues) report their min-readyAt; anything occupied but
     * not purely time-gated (writeback buffers, a blocked-but-due
     * head) conservatively reports now + 1. Contract: ticking the
     * hierarchy at any cycle strictly between @p now and the returned
     * horizon would change no state.
     */
    Cycle nextEventAt(Cycle now) const;

    /** True when uncore state changed since clearHorizonStale() (own
     *  tick, or a core-side entry point pushed work in). Atomic only
     *  because concurrently ticking cores may all set it; reads happen
     *  on the serial path. */
    bool horizonStale() const
    {
        return horizonStaleFlag.load(std::memory_order_relaxed);
    }
    void clearHorizonStale()
    {
        horizonStaleFlag.store(false, std::memory_order_relaxed);
    }

    /**
     * Requests queued from @p core into the uncore (its toL2 FIFO
     * depth). Every core-tick entry point that hands the hierarchy
     * work (coreLoad, coreStore, the DL1 prefetcher) lands here, so a
     * depth change is exactly "this core's tick produced uncore work"
     * — the stop condition of System's batched fast-forward epochs.
     * Reads only the caller's own side, so concurrent per-core ticks
     * may poll it race-free.
     */
    std::size_t pendingCoreRequests(CoreId core) const
    {
        return sides[static_cast<std::size_t>(core)]->toL2.size();
    }

    /** Cumulative counters (take deltas across windows for results). */
    RunStats collectStats() const;

    /** True when no request is in flight anywhere (tests). */
    bool quiescent() const;

    /**
     * Checkpoint every core side (caches, MSHRs, queues, prefetchers,
     * TLBs), the L3 banks with their shared fill-queue group and
     * policy-global state, the inter-level queues and the cumulative
     * stats. The per-phase staging buffers are empty between ticks and
     * are not saved; the cached horizons are marked stale on restore.
     * DRAM controller state is a separate section: serializeDram().
     */
    void serialize(Serializer &s);

    /** Checkpoint all memory controllers (bus, banks, queues). */
    void serializeDram(Serializer &s);

    // -- component access (tests, examples) ---------------------------------
    SetAssocCache &dl1(CoreId core) { return side(core).dl1; }
    SetAssocCache &l2(CoreId core) { return side(core).l2; }
    /** The L3 bank holding @p line (the only bank when un-banked). */
    SetAssocCache &l3(LineAddr line = 0) { return bankFor(line).cache; }
    /** Number of L3 banks (numChannels when banked, else 1). */
    int l3BankCount() const { return static_cast<int>(l3Banks.size()); }
    /** Direct bank access (tests). */
    SetAssocCache &l3BankCache(int b)
    {
        return l3Banks[static_cast<std::size_t>(b)]->cache;
    }
    /** Bank index of @p line (0 when un-banked). */
    int l3BankOf(LineAddr line) const
    {
        return l3Banks.size() > 1 ? channelOf(line) : 0;
    }
    L2Prefetcher &l2Prefetcher(CoreId core) { return *side(core).l2pf; }
    MemoryController &controller(int channel)
    {
        return *mcs[static_cast<std::size_t>(channel)];
    }
    int channelCount() const { return static_cast<int>(mcs.size()); }
    const SystemConfig &config() const { return cfg; }

  private:
    /** A request travelling between cache levels. */
    struct PendingReq
    {
        LineAddr line = 0;
        ReqMeta meta;
        Cycle readyAt = 0;
        std::uint64_t seq = 0; ///< global arrival order (L3 path only)
    };

    /** A block scheduled to be written into a DL1. */
    struct Dl1Delivery
    {
        LineAddr line = 0;
        ReqMeta meta;
        Cycle at = 0;
    };

    /** Everything private to one core. */
    struct CoreSide
    {
        CoreSide(const SystemConfig &cfg, CoreId id);

        CoreId id;
        SetAssocCache dl1;
        SetAssocCache l2;
        MshrFile mshr;
        FillQueue l2Fill;
        PrefetchQueue prefetchQueue;
        std::unique_ptr<L2Prefetcher> l2pf;
        std::optional<StridePrefetcher> stride;
        TlbHierarchy tlb;
        VirtualMemory vmem;

        std::deque<PendingReq> toL2;     ///< DL1 misses / L1 prefetches
        std::deque<LineAddr> wbToL2;     ///< DL1 dirty victims
        std::deque<Dl1Delivery> dl1Due;  ///< blocks headed into the DL1

        /**
         * Cross-shard hand-offs produced by this side's parallel
         * phases, merged into the global queues (seq-stamped, core
         * order) at the next serial commit phase.
         */
        std::vector<PendingReq> stagedToL3;
        std::vector<std::pair<LineAddr, CoreId>> stagedWbToL3;

        /** Per-side scratch for the L2 prefetcher's proposals (must
         *  not be shared: sides tick concurrently). */
        std::vector<LineAddr> prefetchScratch;

        /**
         * Horizon sub-cache: min over this side's time-gated sources
         * (0 = due now, neverCycle = none), recomputed by nextEventAt
         * only when a stage actually mutated the side. Saves the
         * full per-side queue scans on the many calls where only one
         * or two sides moved.
         */
        Cycle rawHorizon = 0;
        bool horizonDirty = true;
    };

    /**
     * One L3 bank: a slice of the tag array paired with one DRAM
     * channel, its own replacement-policy instance (sharing LLC-global
     * counter/RNG state with its siblings), its bank of the fill queue
     * (sharing capacity/ids via FillQueueGroup), and a stats shard.
     */
    struct L3Bank
    {
        L3Bank(std::string name, std::size_t sets, unsigned ways,
               std::unique_ptr<ReplacementPolicy> policy,
               const SetIndexFold &fold, FillQueueGroup &group)
            : cache(std::move(name), sets, ways, std::move(policy), fold),
              fill(cache.cacheName() + ".fq", group)
        {
        }

        SetAssocCache cache;
        FillQueue fill;
        // Core-0-attributed counters (merged in collectStats).
        std::uint64_t l3Accesses = 0;
        std::uint64_t l3Misses = 0;
        std::uint64_t l3ChannelStalls = 0; ///< all-cores, like RunStats
    };

    // -- per-cycle stages ---------------------------------------------------
    void processWbToL2(CoreSide &cs, Cycle now);
    void processToL2(CoreSide &cs, Cycle now);
    void processToL3(Cycle now);
    void processPrefetchQueues(Cycle now);
    void drainDramCompletions(Cycle now);
    bool drainOneL3Fill(Cycle now);
    void processWbToL3(Cycle now);
    void drainL2Fill(CoreSide &cs, Cycle now);
    void processDl1Deliveries(CoreSide &cs, Cycle now);

    // -- helpers -------------------------------------------------------------
    void triggerL2Prefetcher(CoreSide &cs, const L2AccessEvent &ev);
    void issueL1Prefetch(CoreSide &cs, Addr pc, Addr vaddr, Cycle now);
    void deliverToDl1(CoreSide &cs, LineAddr line, const ReqMeta &meta,
                      Cycle at);
    int channelOf(LineAddr line) const;

    CoreSide &side(CoreId core)
    {
        return *sides[static_cast<std::size_t>(core)];
    }

    L3Bank &bankFor(LineAddr line)
    {
        return *l3Banks[static_cast<std::size_t>(l3BankOf(line))];
    }

    /** True when any bank's (i.e. the group's) fill queue is full. */
    bool l3FillFull() const
    {
        return l3FillGroup->liveEntries >= l3FillGroup->capacity;
    }

    /** Live entries across all fill-queue banks. */
    std::size_t l3FillSize() const { return l3FillGroup->liveEntries; }

    /** Build the per-bank replacement policies (shared global state). */
    std::vector<std::unique_ptr<ReplacementPolicy>>
    makeL3BankPolicies(std::size_t num_banks,
                       const std::vector<std::vector<std::size_t>>
                           &bank_global_sets) const;

    SystemConfig cfg;          ///< resolved topology (numCores concrete)
    std::vector<std::unique_ptr<CoreSide>> sides;
    /** Shared capacity/occupancy/ids of the banked L3 fill queue. */
    std::unique_ptr<FillQueueGroup> l3FillGroup;
    /** The L3, banked per channel when the channel map allows it. */
    std::vector<std::unique_ptr<L3Bank>> l3Banks;
    std::vector<std::unique_ptr<MemoryController>> mcs;

    /** Demand L2 misses, sharded per DRAM channel. */
    std::vector<std::deque<PendingReq>> toL3;
    std::uint64_t toL3Seq = 0; ///< global arrival-order stamp
    std::deque<std::pair<LineAddr, CoreId>> wbToL3; ///< L2 dirty victims

    std::vector<CoreModel *> cores;
    unsigned prefetchRr = 0;   ///< round-robin over cores' prefetch queues
    Cycle lastTicked = 0;      ///< gap detection (fast-forward catch-up)
    std::atomic<bool> horizonStaleFlag = true; ///< see horizonStale()
    /** l3FillFull() latched by commitIngress for the channel phase. */
    bool l3FillWasFull = false;
    RunStats stats;            ///< cumulative core-0 + chip counters
    std::vector<char> chanStalled; ///< per-channel scratch (processToL3)

    // per-cycle processing budgets; the L3-stage budgets are per
    // channel pair, so the paper's 2-channel chip gets exactly the
    // historical 4 demands + 2 prefetches per cycle and wider
    // topologies scale proportionally.
    static constexpr unsigned l2ReqsPerCycle = 3;
    static constexpr unsigned l3DemandsPerCycle = 4;
    static constexpr unsigned l3PrefetchesPerCycle = 2;
    static constexpr unsigned l3FillsPerCycle = 2;
    static constexpr unsigned l2FillsPerCycle = 2;
    static constexpr unsigned wbPerCycle = 2;

    /** Budget multiplier for the sharded L3 stage. */
    unsigned
    channelLanes() const
    {
        const unsigned ch = static_cast<unsigned>(cfg.numChannels);
        return ch > 2 ? ch / 2 : 1;
    }

    bool anyToL3() const;
};

} // namespace bop

#endif // BOP_SIM_MEM_HIERARCHY_HH
