/**
 * @file
 * The full memory hierarchy of the simulated chip (paper Sec. 5): per
 * active core a DL1 + private L2 with fill queue, stride prefetcher, L2
 * prefetcher with 8-entry prefetch queue, two-level TLBs and a
 * randomised page table; a shared non-inclusive L3 with its own fill
 * queue and the 5P (or LRU/DRRIP) replacement policy; M DDR3 channels
 * with fairness-aware controllers. Core and channel counts are runtime
 * topology from SystemConfig (the paper's chip is 4 cores x 2
 * channels), validated at construction.
 *
 * The L2-miss-to-L3 demand path is sharded per DRAM channel: each
 * channel owns its own pending-request queue, and the L3 stage
 * arbitrates between the channel heads in global arrival order with a
 * per-cycle budget that scales with the channel count, as does the L3
 * fill queue capacity (it bounds all in-flight DRAM reads). A full
 * fill queue is global backpressure and stops the stage, exactly as
 * before; a full per-core read queue in one controller is
 * channel-local congestion and parks only that channel's shard for
 * the cycle (counted in RunStats::l3ChannelStalls), so imbalanced
 * traffic on wide chips no longer serializes the other channels.
 *
 * The fill-queue protocol is the paper's MSHR-free design (Sec. 5.4):
 * entries are allocated when a miss issues to the next level, released
 * when that level misses too, refilled when data returns, and CAM
 * searches promote in-flight prefetches hit by demand misses. Prefetch
 * requests have lowest priority into the L3 and can be cancelled any
 * time (oldest-first when the 8-entry prefetch queue overflows).
 *
 * Deadlock freedom: fill queues keep two slots in reserve that pure
 * "waiting" allocations may not use, dirty victims of the L2 drain into
 * an unbounded (in practice tiny) writeback buffer, and the memory
 * controllers drain independently — so every blocked queue eventually
 * observes progress downstream.
 */

#ifndef BOP_SIM_MEM_HIERARCHY_HH
#define BOP_SIM_MEM_HIERARCHY_HH

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache.hh"
#include "cache/fill_queue.hh"
#include "cache/mshr.hh"
#include "cache/prefetch_queue.hh"
#include "cache/req.hh"
#include "common/stats.hh"
#include "dram/mem_controller.hh"
#include "prefetch/l2_prefetcher.hh"
#include "prefetch/stride.hh"
#include "sim/config.hh"
#include "sim/core_model.hh"
#include "sim/tlb.hh"
#include "sim/vmem.hh"

namespace bop
{

/** Builds the L3 replacement policy selected by the config. */
std::unique_ptr<ReplacementPolicy> makeL3Policy(const SystemConfig &cfg);

/** Builds the L2 prefetcher selected by the config. */
std::unique_ptr<L2Prefetcher> makeL2Prefetcher(const SystemConfig &cfg);

/** The complete uncore + DL1s. */
class MemHierarchy : public CoreMemInterface
{
  public:
    explicit MemHierarchy(const SystemConfig &cfg);

    /** Register the core object completion callbacks are routed to. */
    void attachCore(CoreId core, CoreModel *model);

    // -- CoreMemInterface ---------------------------------------------------
    LoadOutcome coreLoad(CoreId core, Addr vaddr, Addr pc,
                         std::uint32_t rob_tag, Cycle now) override;
    StoreOutcome coreStore(CoreId core, Addr vaddr, Addr pc,
                           Cycle now) override;
    void retireMemOp(CoreId core, Addr pc, Addr vaddr) override;

    /** Advance the uncore one core cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle > @p now at which any uncore component can act
     * (event-horizon fast-forward); neverCycle when every queue is
     * empty and every controller idle. Time-gated queues (fill queues
     * with data, prefetch queues, DL1 deliveries, the inter-level
     * request queues) report their min-readyAt; anything occupied but
     * not purely time-gated (writeback buffers, a blocked-but-due
     * head) conservatively reports now + 1. Contract: ticking the
     * hierarchy at any cycle strictly between @p now and the returned
     * horizon would change no state.
     */
    Cycle nextEventAt(Cycle now) const;

    /** True when uncore state changed since clearHorizonStale() (own
     *  tick, or a core-side entry point pushed work in). */
    bool horizonStale() const { return horizonStaleFlag; }
    void clearHorizonStale() { horizonStaleFlag = false; }

    /** Cumulative counters (take deltas across windows for results). */
    RunStats collectStats() const;

    /** True when no request is in flight anywhere (tests). */
    bool quiescent() const;

    // -- component access (tests, examples) ---------------------------------
    SetAssocCache &dl1(CoreId core) { return side(core).dl1; }
    SetAssocCache &l2(CoreId core) { return side(core).l2; }
    SetAssocCache &l3() { return l3Cache; }
    L2Prefetcher &l2Prefetcher(CoreId core) { return *side(core).l2pf; }
    MemoryController &controller(int channel)
    {
        return *mcs[static_cast<std::size_t>(channel)];
    }
    int channelCount() const { return static_cast<int>(mcs.size()); }
    const SystemConfig &config() const { return cfg; }

  private:
    /** A request travelling between cache levels. */
    struct PendingReq
    {
        LineAddr line = 0;
        ReqMeta meta;
        Cycle readyAt = 0;
        std::uint64_t seq = 0; ///< global arrival order (L3 path only)
    };

    /** A block scheduled to be written into a DL1. */
    struct Dl1Delivery
    {
        LineAddr line = 0;
        ReqMeta meta;
        Cycle at = 0;
    };

    /** Everything private to one core. */
    struct CoreSide
    {
        CoreSide(const SystemConfig &cfg, CoreId id);

        CoreId id;
        SetAssocCache dl1;
        SetAssocCache l2;
        MshrFile mshr;
        FillQueue l2Fill;
        PrefetchQueue prefetchQueue;
        std::unique_ptr<L2Prefetcher> l2pf;
        std::optional<StridePrefetcher> stride;
        TlbHierarchy tlb;
        VirtualMemory vmem;

        std::deque<PendingReq> toL2;     ///< DL1 misses / L1 prefetches
        std::deque<LineAddr> wbToL2;     ///< DL1 dirty victims
        std::deque<Dl1Delivery> dl1Due;  ///< blocks headed into the DL1
    };

    // -- per-cycle stages ---------------------------------------------------
    void processWbToL2(CoreSide &cs, Cycle now);
    void processToL2(CoreSide &cs, Cycle now);
    void processToL3(Cycle now);
    void processPrefetchQueues(Cycle now);
    void drainDramCompletions(Cycle now);
    bool drainOneL3Fill(Cycle now);
    void processWbToL3(Cycle now);
    void drainL2Fill(CoreSide &cs, Cycle now);
    void processDl1Deliveries(CoreSide &cs, Cycle now);

    // -- helpers -------------------------------------------------------------
    void triggerL2Prefetcher(CoreSide &cs, const L2AccessEvent &ev);
    void issueL1Prefetch(CoreSide &cs, Addr pc, Addr vaddr, Cycle now);
    void deliverToDl1(CoreSide &cs, LineAddr line, const ReqMeta &meta,
                      Cycle at);
    int channelOf(LineAddr line) const;

    CoreSide &side(CoreId core)
    {
        return *sides[static_cast<std::size_t>(core)];
    }

    SystemConfig cfg;          ///< resolved topology (numCores concrete)
    std::vector<std::unique_ptr<CoreSide>> sides;
    SetAssocCache l3Cache;
    FillQueue l3Fill;
    std::vector<std::unique_ptr<MemoryController>> mcs;

    /** Demand L2 misses, sharded per DRAM channel. */
    std::vector<std::deque<PendingReq>> toL3;
    std::uint64_t toL3Seq = 0; ///< global arrival-order stamp
    std::deque<std::pair<LineAddr, CoreId>> wbToL3; ///< L2 dirty victims

    std::vector<CoreModel *> cores;
    unsigned prefetchRr = 0;   ///< round-robin over cores' prefetch queues
    Cycle lastTicked = 0;      ///< gap detection (fast-forward catch-up)
    bool horizonStaleFlag = true; ///< see horizonStale()
    RunStats stats;            ///< cumulative core-0 + chip counters
    std::vector<LineAddr> prefetchScratch;
    std::vector<char> chanStalled; ///< per-channel scratch (processToL3)

    // per-cycle processing budgets; the L3-stage budgets are per
    // channel pair, so the paper's 2-channel chip gets exactly the
    // historical 4 demands + 2 prefetches per cycle and wider
    // topologies scale proportionally.
    static constexpr unsigned l2ReqsPerCycle = 3;
    static constexpr unsigned l3DemandsPerCycle = 4;
    static constexpr unsigned l3PrefetchesPerCycle = 2;
    static constexpr unsigned l3FillsPerCycle = 2;
    static constexpr unsigned l2FillsPerCycle = 2;
    static constexpr unsigned wbPerCycle = 2;

    /** Budget multiplier for the sharded L3 stage. */
    unsigned
    channelLanes() const
    {
        const unsigned ch = static_cast<unsigned>(cfg.numChannels);
        return ch > 2 ? ch / 2 : 1;
    }

    bool anyToL3() const;
};

} // namespace bop

#endif // BOP_SIM_MEM_HIERARCHY_HH
