/**
 * @file
 * Out-of-order core approximation (paper Table 1, loosely Haswell).
 *
 * The model captures what matters for prefetcher evaluation: a 256-entry
 * ROB bounding memory-level parallelism, dispatch/retire width limits,
 * load/store port limits, a store queue, the DL1 MSHR limit (enforced by
 * the hierarchy), TAGE-predicted branches with a 12-cycle minimum
 * redirect penalty, and data-dependent loads that serialise behind the
 * previous load (pointer chasing). Register renaming, functional units
 * and wrong-path fetch are not modeled — the paper's own simulator also
 * ignores wrong-path effects (Sec. 5).
 *
 * Mechanics per cycle: retire up to retireWidth completed entries from
 * the ROB head; issue loads whose dependences resolved (bounded by load
 * ports); dispatch up to dispatchWidth new trace instructions.
 */

#ifndef BOP_SIM_CORE_MODEL_HH
#define BOP_SIM_CORE_MODEL_HH

#include <cstdint>
#include <vector>

#include "sim/branch_pred.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace bop
{

/** Result of the hierarchy accepting (or not) a load access. */
struct LoadOutcome
{
    enum class Kind
    {
        Hit,     ///< completes at readyAt
        Pending, ///< completion delivered via loadCompleted()
        Retry,   ///< structural hazard (MSHRs full): retry next cycle
    };
    Kind kind = Kind::Retry;
    Cycle readyAt = 0;
};

/** Result of the hierarchy accepting (or not) a store access. */
struct StoreOutcome
{
    bool accepted = false;   ///< false: MSHRs full, retry
    bool completedNow = false; ///< DL1 hit: no store-queue pressure
};

/** Interface the core uses to talk to the memory hierarchy. */
class CoreMemInterface
{
  public:
    virtual ~CoreMemInterface() = default;
    virtual LoadOutcome coreLoad(CoreId core, Addr vaddr, Addr pc,
                                 std::uint32_t rob_tag, Cycle now) = 0;
    virtual StoreOutcome coreStore(CoreId core, Addr vaddr, Addr pc,
                                   Cycle now) = 0;
    /** Retirement-time hook (updates the DL1 stride table in order). */
    virtual void retireMemOp(CoreId core, Addr pc, Addr vaddr) = 0;
};

/** The trace-driven core model. */
class CoreModel
{
  public:
    CoreModel(CoreId id, const CoreParams &params, TraceSource &trace,
              CoreMemInterface &mem);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Earliest cycle > @p now at which this core can possibly act
     * (event-horizon fast-forward). neverCycle means the core is fully
     * blocked on hierarchy callbacks (loadCompleted / storeCompleted) —
     * the unblocking event belongs to another component's horizon, and
     * this core's horizon must be re-queried after it fires. The
     * contract: ticking the core at any cycle strictly between @p now
     * and the returned horizon would change no state — which also
     * means such ticks can be skipped outright (System does, caching
     * the horizon until horizonStale() reports a state change).
     */
    Cycle nextEventAt(Cycle now) const;

    /** True when state changed since the last clearHorizonStale() —
     *  a cached nextEventAt value is no longer trustworthy. */
    bool horizonStale() const { return horizonStaleFlag; }
    void clearHorizonStale() { horizonStaleFlag = false; }

    /** Hierarchy callback: a pending load's data arrived. */
    void loadCompleted(std::uint32_t rob_tag, Cycle when);

    /** Hierarchy callback: store-queue slots freed by a fill. */
    void storeCompleted(int count);

    // -- observability -----------------------------------------------------
    std::uint64_t retired() const { return retiredCount; }
    std::uint64_t branchCount() const { return branches; }
    std::uint64_t mispredictCount() const { return mispredicts; }
    std::size_t robOccupancy() const { return robCount; }
    CoreId id() const { return coreId; }

    /**
     * Checkpoint the full core state: ROB, waiting lists, dispatch
     * hold, port/queue occupancy, counters and the branch predictor.
     * The issueWaiting scratch buffers are empty between ticks and the
     * cached horizon is marked stale on restore instead of saved.
     */
    void serialize(Serializer &s);

  private:
    struct RobEntry
    {
        bool valid = false;
        InstrKind kind = InstrKind::IntOp;
        bool done = false;
        Cycle readyAt = 0;
        Addr pc = 0;
        Addr vaddr = 0;
        std::uint64_t gen = 0;       ///< generation (stale-dep detection)
        bool waitingDep = false;
        std::uint32_t depIdx = 0;
        std::uint64_t depGen = 0;
        bool issued = false;         ///< loads: access sent to the DL1
        bool mispredict = false;     ///< branches: redirect when resolved
    };

    /**
     * A parked ROB entry. The waiting list is split in two seq-sorted
     * halves: readyQ holds entries issueWaiting will (re)process next
     * tick (structural retries, woken dependents), blockedQ entries
     * parked on a live, not-yet-done producer load. Blocked entries
     * move to ready only through an explicit wake — the producer
     * completing as a cache hit mid-scan, or a loadCompleted()
     * callback — so the per-tick scan and the horizon test touch the
     * (typically tiny) ready half only. seq is the insertion stamp:
     * merging wakes in seq order reproduces the single-list scan's
     * processing order exactly (a dependent always dispatches, hence
     * stamps, after its producer).
     */
    struct WaitRef
    {
        std::uint32_t idx = 0;  ///< rob index
        std::uint64_t seq = 0;  ///< insertion order stamp
    };

    bool dispatchOne(const TraceInstr &instr, Cycle now);
    void issueWaiting(Cycle now);
    void retire(Cycle now);
    /** True when the dependence of @p e has resolved; sets dep time. */
    bool depResolved(const RobEntry &e, Cycle &dep_ready) const;

    /**
     * Move @p producer's (generation @p gen) blocked dependents into
     * @p into, keeping it seq-sorted from position @p from on. Used
     * with readyQ (callback wakes) and the mid-scan woken buffer.
     */
    void wakeDependents(std::uint32_t producer, std::uint64_t gen,
                        std::vector<WaitRef> &into, std::size_t from);

    CoreId coreId;
    CoreParams params;
    TraceSource &trace;
    CoreMemInterface &mem;
    TagePredictor predictor;

    std::vector<RobEntry> rob;
    std::uint32_t robHead = 0;
    std::uint32_t robTail = 0;
    std::size_t robCount = 0;
    std::uint64_t genCounter = 1;

    std::vector<WaitRef> readyQ;   ///< processable next tick (seq order)
    std::vector<WaitRef> blockedQ; ///< parked on a producer (seq order)
    std::uint64_t waitSeq = 0;     ///< next WaitRef::seq stamp
    std::vector<WaitRef> keepScratch;  ///< issueWaiting: survivors
    std::vector<WaitRef> wokenScratch; ///< issueWaiting: mid-scan wakes

    bool holdValid = false;   ///< instruction stalled at dispatch
    TraceInstr holdInstr;

    Cycle fetchStallUntil = 0;
    bool stalledOnBranchDep = false;

    std::uint32_t lastLoadIdx = 0;
    std::uint64_t lastLoadGen = 0;   ///< 0: no live previous load

    unsigned loadsThisCycle = 0;
    unsigned storesThisCycle = 0;
    std::size_t loadsInFlight = 0;   ///< load-queue occupancy
    std::size_t pendingStores = 0;   ///< store-queue occupancy

    std::uint64_t retiredCount = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    /** Set by tick() and the hierarchy callbacks; see horizonStale(). */
    bool horizonStaleFlag = true;
};

} // namespace bop

#endif // BOP_SIM_CORE_MODEL_HH
