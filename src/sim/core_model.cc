#include "sim/core_model.hh"

#include <algorithm>
#include <cassert>

namespace bop
{

CoreModel::CoreModel(CoreId id, const CoreParams &params_,
                     TraceSource &trace_, CoreMemInterface &mem_)
    : coreId(id),
      params(params_),
      trace(trace_),
      mem(mem_),
      predictor(0x7a6e + static_cast<std::uint64_t>(id))
{
    rob.resize(params.robSize);
}

bool
CoreModel::depResolved(const RobEntry &e, Cycle &dep_ready) const
{
    if (!e.waitingDep) {
        dep_ready = 0;
        return true;
    }
    const RobEntry &dep = rob[e.depIdx];
    if (!dep.valid || dep.gen != e.depGen) {
        // The producer already retired; its data has long been available.
        dep_ready = 0;
        return true;
    }
    if (dep.done) {
        dep_ready = dep.readyAt;
        return true;
    }
    return false;
}

void
CoreModel::retire(Cycle now)
{
    for (unsigned n = 0; n < params.retireWidth && robCount > 0; ++n) {
        RobEntry &head = rob[robHead];
        if (!head.done || head.readyAt > now)
            break;
        if (head.kind == InstrKind::Load ||
            head.kind == InstrKind::Store) {
            mem.retireMemOp(coreId, head.pc, head.vaddr);
        }
        if (head.kind == InstrKind::Load) {
            assert(loadsInFlight > 0);
            --loadsInFlight;
        }
        head.valid = false;
        // Wraparound without the runtime-divisor modulo: this runs for
        // every retired instruction.
        if (++robHead == params.robSize)
            robHead = 0;
        --robCount;
        ++retiredCount;
    }
}

void
CoreModel::wakeDependents(std::uint32_t producer, std::uint64_t gen,
                          std::vector<WaitRef> &into, std::size_t from)
{
    if (blockedQ.empty())
        return;
    std::size_t keep = 0;
    for (const WaitRef &w : blockedQ) {
        const RobEntry &e = rob[w.idx];
        if (e.valid && e.waitingDep && e.depIdx == producer &&
            e.depGen == gen) {
            // Sorted insert past the already-consumed prefix. Wakes
            // are rare and the queues tiny, so the insert's memmove
            // is noise next to the per-tick scans it saves.
            const auto it = std::lower_bound(
                into.begin() + static_cast<std::ptrdiff_t>(from),
                into.end(), w.seq,
                [](const WaitRef &a, std::uint64_t s) {
                    return a.seq < s;
                });
            into.insert(it, w);
        } else {
            blockedQ[keep++] = w;
        }
    }
    blockedQ.resize(keep);
}

void
CoreModel::issueWaiting(Cycle now)
{
    if (readyQ.empty())
        return;
    // Two-way merge in seq order of the ready list against entries
    // woken mid-scan: a load completing as a cache hit wakes its
    // blocked dependents, whose stamps are all greater than the
    // producer's (a dependent dispatches after its producer), so the
    // merged visit order is exactly the order the historical single
    // list scan processed these entries in.
    keepScratch.clear();
    wokenScratch.clear();
    std::size_t ri = 0;
    std::size_t wi = 0;
    for (;;) {
        const bool have_r = ri < readyQ.size();
        const bool have_w = wi < wokenScratch.size();
        if (!have_r && !have_w)
            break;
        WaitRef cur;
        if (!have_w ||
            (have_r && readyQ[ri].seq < wokenScratch[wi].seq))
            cur = readyQ[ri++];
        else
            cur = wokenScratch[wi++];

        const std::uint32_t idx = cur.idx;
        RobEntry &e = rob[idx];
        bool still_waiting = true;

        if (e.valid && !e.done) {
            Cycle dep_ready = 0;
            if (depResolved(e, dep_ready)) {
                const Cycle start = dep_ready > now ? dep_ready : now;
                if (e.kind == InstrKind::Load) {
                    if (start <= now &&
                        loadsThisCycle < params.loadPorts) {
                        ++loadsThisCycle;
                        const LoadOutcome out = mem.coreLoad(
                            coreId, e.vaddr, e.pc, idx, now);
                        if (out.kind == LoadOutcome::Kind::Hit) {
                            e.done = true;
                            e.readyAt = out.readyAt;
                            e.issued = true;
                            still_waiting = false;
                            wakeDependents(idx, e.gen, wokenScratch,
                                           wi);
                        } else if (out.kind == LoadOutcome::Kind::Pending) {
                            e.issued = true;
                            e.waitingDep = false;
                            still_waiting = false;
                        }
                        // Retry: stays in the ready list.
                    }
                } else if (e.kind == InstrKind::Branch) {
                    // Load-dependent branch: resolves when the load data
                    // arrives; a mispredict redirects fetch then.
                    e.done = true;
                    e.readyAt = start;
                    if (e.mispredict) {
                        fetchStallUntil = start + params.branchPenalty;
                        stalledOnBranchDep = false;
                    }
                    still_waiting = false;
                } else {
                    e.done = true;
                    e.readyAt = start + (e.kind == InstrKind::FpOp
                                             ? params.fpLatency
                                             : params.intLatency);
                    still_waiting = false;
                }
            }
        } else {
            still_waiting = false;
        }

        if (still_waiting)
            keepScratch.push_back(cur);
    }
    readyQ.swap(keepScratch);
}

bool
CoreModel::dispatchOne(const TraceInstr &instr, Cycle now)
{
    assert(robCount < params.robSize);

    const std::uint32_t idx = robTail;
    RobEntry &e = rob[idx];
    e = RobEntry{};
    e.valid = true;
    e.kind = instr.kind;
    e.pc = instr.pc;
    e.vaddr = instr.vaddr;
    e.gen = genCounter++;

    Cycle dep_ready = 0;
    bool dep_pending = false;
    if (instr.dependsOnPrevLoad && lastLoadGen != 0) {
        const RobEntry &dep = rob[lastLoadIdx];
        if (dep.valid && dep.gen == lastLoadGen) {
            if (dep.done) {
                dep_ready = dep.readyAt;
            } else {
                dep_pending = true;
                e.waitingDep = true;
                e.depIdx = lastLoadIdx;
                e.depGen = lastLoadGen;
            }
        }
    }

    switch (instr.kind) {
      case InstrKind::IntOp:
      case InstrKind::FpOp: {
        // Dependent ALU latency hides behind the in-order retirement of
        // the producing load, so it resolves at dep_ready + latency.
        const Cycle start = dep_ready > now ? dep_ready : now;
        const unsigned lat = instr.kind == InstrKind::FpOp
                                 ? params.fpLatency
                                 : params.intLatency;
        e.done = true;
        e.readyAt = start + lat;
        e.waitingDep = false;
        break;
      }

      case InstrKind::Load: {
        if (loadsInFlight >= params.loadQueue) {
            e.valid = false;
            return false; // load queue full: dispatch stalls
        }
        ++loadsInFlight;
        if (dep_pending) {
            blockedQ.push_back({idx, waitSeq++});
        } else if (loadsThisCycle >= params.loadPorts) {
            readyQ.push_back({idx, waitSeq++});
        } else {
            ++loadsThisCycle;
            const LoadOutcome out =
                mem.coreLoad(coreId, instr.vaddr, instr.pc, idx, now);
            if (out.kind == LoadOutcome::Kind::Hit) {
                e.done = true;
                e.readyAt = out.readyAt;
                e.issued = true;
            } else if (out.kind == LoadOutcome::Kind::Pending) {
                e.issued = true;
            } else {
                readyQ.push_back({idx, waitSeq++}); // MSHRs full: retry
            }
        }
        lastLoadIdx = idx;
        lastLoadGen = e.gen;
        break;
      }

      case InstrKind::Store: {
        if (pendingStores >= params.storeQueue ||
            storesThisCycle >= params.storePorts) {
            --genCounter;
            e.valid = false;
            return false; // store queue/port full: dispatch stalls
        }
        const StoreOutcome out =
            mem.coreStore(coreId, instr.vaddr, instr.pc, now);
        if (!out.accepted) {
            --genCounter;
            e.valid = false;
            return false; // MSHRs full: dispatch stalls
        }
        ++storesThisCycle;
        if (!out.completedNow)
            ++pendingStores;
        // Stores retire without waiting for the write to complete.
        e.done = true;
        e.readyAt = now + 1;
        e.waitingDep = false;
        break;
      }

      case InstrKind::Branch: {
        ++branches;
        const bool pred = predictor.predict(instr.pc);
        predictor.update(instr.pc, instr.taken);
        const bool mispredicted = pred != instr.taken;
        if (mispredicted)
            ++mispredicts;
        if (dep_pending) {
            e.mispredict = mispredicted;
            blockedQ.push_back({idx, waitSeq++});
            if (mispredicted) {
                // Redirect happens when the branch executes, i.e. when
                // the load it depends on returns.
                stalledOnBranchDep = true;
            }
        } else {
            const Cycle start = dep_ready > now ? dep_ready : now;
            e.done = true;
            e.readyAt = start + 1;
            if (mispredicted)
                fetchStallUntil = e.readyAt + params.branchPenalty;
        }
        break;
      }
    }

    if (++robTail == params.robSize)
        robTail = 0;
    ++robCount;
    return true;
}

Cycle
CoreModel::nextEventAt(Cycle now) const
{
    const Cycle next = now + 1;
    Cycle ev = neverCycle;

    // Dispatch. Unless fetch is redirect-stalled or the ROB is full,
    // the next tick attempts to dispatch — with side effects (at
    // minimum trace.next() when no instruction is held). The one
    // provably recurring stall: a held load/store that cannot enter
    // its full load/store queue, which only retirement (below) or a
    // hierarchy storeCompleted() callback can unblock.
    if (!stalledOnBranchDep && robCount < params.robSize) {
        const bool hold_blocked =
            holdValid &&
            ((holdInstr.kind == InstrKind::Load &&
              loadsInFlight >= params.loadQueue) ||
             (holdInstr.kind == InstrKind::Store &&
              pendingStores >= params.storeQueue));
        if (!hold_blocked) {
            if (fetchStallUntil <= next)
                return next;
            ev = fetchStallUntil;
        }
    }

    // Retirement: a completed ROB head retires at its readyAt. An
    // incomplete head is waiting on a loadCompleted() callback — that
    // event lives on the hierarchy's horizon, not ours.
    if (robCount > 0) {
        const RobEntry &head = rob[robHead];
        if (head.done) {
            if (head.readyAt <= next)
                return next;
            ev = std::min(ev, head.readyAt);
        }
    }

    // The waiting list is pre-partitioned: readyQ holds exactly the
    // entries issueWaiting will (re)process — with side effects — at
    // the very next tick, so its emptiness is the whole test. Blocked
    // entries wait for a wake (the producer's completion, an event on
    // the hierarchy's or this scan's own horizon) and contribute no
    // event of their own.
    if (!readyQ.empty())
        return next;

    return ev;
}

void
CoreModel::tick(Cycle now)
{
    horizonStaleFlag = true;
    loadsThisCycle = 0;
    storesThisCycle = 0;

    retire(now);
    issueWaiting(now);

    if (stalledOnBranchDep || now < fetchStallUntil)
        return;

    for (unsigned n = 0; n < params.dispatchWidth; ++n) {
        if (robCount >= params.robSize)
            break;
        if (stalledOnBranchDep || now < fetchStallUntil)
            break;

        if (!holdValid) {
            holdInstr = trace.next();
            holdValid = true;
        }
        if (!dispatchOne(holdInstr, now))
            break; // structural stall: retry the held instruction
        holdValid = false;
    }
}

void
CoreModel::loadCompleted(std::uint32_t rob_tag, Cycle when)
{
    RobEntry &e = rob[rob_tag];
    assert(e.valid && e.kind == InstrKind::Load && e.issued);
    e.done = true;
    e.readyAt = when;
    // Entries parked on this load become processable: merge them into
    // the ready list at their seq positions.
    wakeDependents(rob_tag, e.gen, readyQ, 0);
    horizonStaleFlag = true;
}

void
CoreModel::storeCompleted(int count)
{
    assert(pendingStores >= static_cast<std::size_t>(count));
    pendingStores -= static_cast<std::size_t>(count);
    horizonStaleFlag = true;
}

void
CoreModel::serialize(Serializer &s)
{
    const std::size_t rob_size = rob.size();
    predictor.serialize(s);
    s.seq(rob, [](Serializer &sr, RobEntry &e) {
        sr.value(e.valid);
        sr.value(e.kind);
        sr.value(e.done);
        sr.value(e.readyAt);
        sr.value(e.pc);
        sr.value(e.vaddr);
        sr.value(e.gen);
        sr.value(e.waitingDep);
        sr.value(e.depIdx);
        sr.value(e.depGen);
        sr.value(e.issued);
        sr.value(e.mispredict);
    });
    s.value(robHead);
    s.value(robTail);
    std::uint64_t rob_count = robCount;
    s.value(rob_count);
    s.value(genCounter);
    auto wait_ref = [](Serializer &sr, WaitRef &w) {
        sr.value(w.idx);
        sr.value(w.seq);
    };
    s.seq(readyQ, wait_ref);
    s.seq(blockedQ, wait_ref);
    s.value(waitSeq);
    s.value(holdValid);
    holdInstr.serialize(s);
    s.value(fetchStallUntil);
    s.value(stalledOnBranchDep);
    s.value(lastLoadIdx);
    s.value(lastLoadGen);
    s.value(loadsThisCycle);
    s.value(storesThisCycle);
    std::uint64_t loads64 = loadsInFlight;
    std::uint64_t stores64 = pendingStores;
    s.value(loads64);
    s.value(stores64);
    s.value(retiredCount);
    s.value(branches);
    s.value(mispredicts);
    if (s.loading()) {
        if (rob.size() != rob_size)
            s.fail("ROB size mismatch");
        if (rob_count > rob_size || robHead >= rob_size ||
            robTail >= rob_size)
            s.fail("ROB occupancy out of range");
        if (readyQ.size() > rob_size || blockedQ.size() > rob_size)
            s.fail("waiting-list length out of range");
        robCount = static_cast<std::size_t>(rob_count);
        loadsInFlight = static_cast<std::size_t>(loads64);
        pendingStores = static_cast<std::size_t>(stores64);
        // The cached event horizon is a pure function of the restored
        // state; force its recomputation rather than trusting a value
        // captured under the saving System's clock.
        horizonStaleFlag = true;
    }
}

} // namespace bop
