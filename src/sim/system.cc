#include "sim/system.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/fault.hh"

namespace bop
{

namespace
{

/** BOP_DISABLE_FASTFORWARD set to anything but "" or "0" forces the
 *  per-cycle reference loop (CI's exactness gate). */
bool
fastForwardDisabledByEnv()
{
    const char *v = std::getenv("BOP_DISABLE_FASTFORWARD");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

/** BOP_THREADS set to a positive integer overrides cfg.numThreads
 *  (host-side speed knob; simulated results are identical). */
int
threadsFromEnv(int cfg_threads)
{
    const char *v = std::getenv("BOP_THREADS");
    if (v == nullptr || v[0] == '\0')
        return cfg_threads;
    const int n = std::atoi(v);
    return n >= 1 ? n : cfg_threads;
}

} // namespace

RunStats
deltaStats(const RunStats &end, const RunStats &begin)
{
    RunStats d = end;
    d.cycles = end.cycles - begin.cycles;
    d.instructions = end.instructions - begin.instructions;
    d.dl1Accesses = end.dl1Accesses - begin.dl1Accesses;
    d.dl1Misses = end.dl1Misses - begin.dl1Misses;
    d.dl1PrefIssued = end.dl1PrefIssued - begin.dl1PrefIssued;
    d.dl1PrefDropTlb = end.dl1PrefDropTlb - begin.dl1PrefDropTlb;
    d.l2Accesses = end.l2Accesses - begin.l2Accesses;
    d.l2Misses = end.l2Misses - begin.l2Misses;
    d.l2PrefetchedHits = end.l2PrefetchedHits - begin.l2PrefetchedHits;
    d.l2PrefIssued = end.l2PrefIssued - begin.l2PrefIssued;
    d.l2PrefDropped = end.l2PrefDropped - begin.l2PrefDropped;
    d.l2PrefFills = end.l2PrefFills - begin.l2PrefFills;
    d.l2LatePromotions = end.l2LatePromotions - begin.l2LatePromotions;
    d.l2PrefUselessEvicted =
        end.l2PrefUselessEvicted - begin.l2PrefUselessEvicted;
    d.l3Accesses = end.l3Accesses - begin.l3Accesses;
    d.l3Misses = end.l3Misses - begin.l3Misses;
    d.l3ChannelStalls = end.l3ChannelStalls - begin.l3ChannelStalls;
    d.dtlb1Misses = end.dtlb1Misses - begin.dtlb1Misses;
    d.tlb2Misses = end.tlb2Misses - begin.tlb2Misses;
    d.branches = end.branches - begin.branches;
    d.branchMispredicts = end.branchMispredicts - begin.branchMispredicts;
    d.dramReads = end.dramReads - begin.dramReads;
    d.dramWrites = end.dramWrites - begin.dramWrites;
    d.dramRowHits = end.dramRowHits - begin.dramRowHits;
    d.dramRowMisses = end.dramRowMisses - begin.dramRowMisses;
    // boLearningPhases etc. are end-of-run state: keep end's values.
    return d;
}

System::System(const SystemConfig &cfg_,
               std::vector<std::unique_ptr<TraceSource>> traces_)
    : cfg(cfg_.resolved()), traces(std::move(traces_)), hier(cfg),
      fastForward(cfg.fastForward && !fastForwardDisabledByEnv()),
      threads(std::min(threadsFromEnv(cfg.numThreads), 64))
{
    if (static_cast<int>(traces.size()) != cfg.activeCores) {
        throw std::invalid_argument(
            "System: need exactly one trace per active core");
    }
    for (int c = 0; c < cfg.activeCores; ++c) {
        cores.push_back(std::make_unique<CoreModel>(
            c, cfg.core, *traces[static_cast<std::size_t>(c)], hier));
        hier.attachCore(c, cores.back().get());
    }
    // Every component starts with its staleness flag set, so these
    // placeholders are refreshed before they are ever consulted.
    coreHorizon.assign(cores.size(), 0);

    if (threads > 1) {
        pool = std::make_unique<WorkerPool>(
            static_cast<unsigned>(threads));
        coreDue.assign(cores.size(), 1);
    }
}

Cycle
System::nextEventCycle()
{
    // Refresh every stale cache entry — step() bases its tick-or-skip
    // decisions on these values, so none may be left stale here.
    for (std::size_t c = 0; c < cores.size(); ++c) {
        if (cores[c]->horizonStale()) {
            coreHorizon[c] = cores[c]->nextEventAt(now);
            cores[c]->clearHorizonStale();
        }
    }
    if (hier.horizonStale()) {
        hierHorizon = hier.nextEventAt(now);
        hier.clearHorizonStale();
    }

    Cycle ev = hierHorizon;
    for (const Cycle h : coreHorizon)
        ev = std::min(ev, h);
    const Cycle next = now + 1;
    if (ev <= next)
        return next;
    // A horizon of neverCycle means no component has any future work —
    // a genuine deadlock. Cap the jump just past the watchdog window so
    // the deadlock trap fires with its diagnostic instead of the clock
    // leaping to infinity.
    return std::min(ev, now + watchdogCycles + 1);
}

void
System::step()
{
    if (!fastForward) {
        // Reference semantics: tick everything, every cycle.
        ++now;
        if (pool) {
            std::fill(coreDue.begin(), coreDue.end(), 1);
            stepParallel(true);
            return;
        }
        for (auto &core : cores)
            core->tick(now);
        hier.tick(now);
        return;
    }

    const Cycle at = nextEventCycle();
    // When only cores are due for a while (the uncore is idle until
    // hierHorizon) and a retire target bounds the run, batch many core
    // events into one pool epoch instead of paying the epoch barrier
    // per event.
    if (pool && stopTarget != 0 && hierHorizon > at) {
        stepBatchedCores(at);
        return;
    }
    stepAt(at);
}

void
System::stepAt(Cycle at)
{
    now = at;
    // Tick only the components whose horizon is due. Skipped ticks are
    // exactly the ones the horizon contract proves are no-ops; ticking
    // anyway would be correct but wasted (the reference loop does, and
    // the equivalence tests pin the two modes against each other).
    if (pool) {
        for (std::size_t c = 0; c < cores.size(); ++c)
            coreDue[c] = coreHorizon[c] <= now ? 1 : 0;
        stepParallel(hierHorizon <= now);
        return;
    }
    for (std::size_t c = 0; c < cores.size(); ++c) {
        if (coreHorizon[c] <= now)
            cores[c]->tick(now);
    }
    if (hierHorizon <= now)
        hier.tick(now);
}

void
System::stepBatchedCores(Cycle at)
{
    // The uncore is quiescent until hierHorizon, so until a core tick
    // pushes it new work, every core's event schedule is independent:
    // a core only observes other cores through the shared uncore, and
    // its pre-batch in-flight requests complete at >= hierHorizon.
    // Each worker therefore advances its cores event-by-event at their
    // own horizons and stops the moment its core hands the uncore work
    // (toL2 depth change) or core 0 hits the retire target. Ticks a
    // core runs beyond the earliest stop are exactly the ticks the
    // serial schedule would run later, unchanged — no input can reach
    // the core in between. The cap keeps runUntilRetired's per-core
    // deadlock watchdog live when the uncore is idle forever.
    const Cycle limit = std::min(hierHorizon, at + watchdogCycles);
    batchStopAt.assign(cores.size(), neverCycle);
    batchTargetAt = neverCycle;

    pool->run(cores.size(), [&](std::size_t c) {
        CoreModel &core = *cores[c];
        const CoreId id = static_cast<CoreId>(c);
        const std::size_t work0 = hier.pendingCoreRequests(id);
        Cycle h = coreHorizon[c];
        while (h < limit) {
            core.tick(h);
            const Cycle ticked = h;
            h = core.nextEventAt(ticked);
            core.clearHorizonStale();
            // Both stop conditions are checked on every tick: the tick
            // that pushes uncore work may be the one that retires the
            // target instruction, and the final clock must honor both.
            bool stop = false;
            if (hier.pendingCoreRequests(id) != work0) {
                batchStopAt[c] = ticked;
                stop = true;
            }
            if (c == 0 && core.retired() >= stopTarget) {
                batchTargetAt = ticked; // item 0 runs on the caller
                stop = true;
            }
            if (stop)
                break;
        }
        coreHorizon[c] = h; // loop-final horizon; stale flag is clear
    });

    Cycle stale_min = neverCycle;
    for (const Cycle s : batchStopAt)
        stale_min = std::min(stale_min, s);

    if (batchTargetAt != neverCycle) {
        // Core 0 hit the target at t0. Another core may have handed
        // the uncore work before t0; the serial schedule would have
        // ticked the hierarchy (and the cores it feeds) in between, so
        // rewind to the earliest stop and replay per-event up to t0.
        // Stopped cores resume at their stored horizons; cores that
        // ran past t0 have horizons beyond it and are not re-ticked.
        const Cycle t0 = batchTargetAt;
        now = std::min(stale_min, t0);
        for (;;) {
            const Cycle next = nextEventCycle();
            if (next > t0)
                break;
            stepAt(next);
        }
        now = t0; // the cycle the run window ends on, exactly serial
        return;
    }

    // No target hit: resume per-event stepping at the earliest cycle a
    // core handed the uncore work (its reaction is due at >= that + 1),
    // or just short of the limit when no core did.
    now = stale_min != neverCycle ? stale_min : limit - 1;
}

void
System::stepParallel(bool hier_due)
{
    const Cycle at = now;

    // Epoch 1: due cores tick, and (hierarchy due) each core's ingress
    // stages run — both touch only that core's side of the hierarchy,
    // plus read-only probes of the quiescent controllers; L2 misses
    // are staged per side instead of crossing into the shared queues.
    pool->run(cores.size(), [&](std::size_t c) {
        if (coreDue[c])
            cores[c]->tick(at);
        if (hier_due)
            hier.tickCoreIngress(static_cast<CoreId>(c), at);
    });
    if (!hier_due)
        return;

    // Serial: merge staged misses in core order, L3 arbitration.
    hier.commitIngress(at);

    // Epoch 2: the channel/bank pairs are mutually independent.
    pool->run(static_cast<std::size_t>(hier.channelCount()),
              [&](std::size_t ch) {
                  hier.tickChannel(static_cast<int>(ch), at);
              });

    // Serial: DRAM completions, L3 fill drain in global id order.
    hier.drainUncore(at);

    // Epoch 3: per-core egress (L2/DL1 fills, completion callbacks —
    // strictly core-local; L2 victims staged per side).
    pool->run(cores.size(), [&](std::size_t c) {
        hier.tickCoreEgress(static_cast<CoreId>(c), at);
    });

    // Serial: merge staged L2 victims in core order.
    hier.commitEgress(at);
}

void
System::runUntilRetired(std::uint64_t target)
{
    // Watchdog over every active core: a wedged core is a simulator
    // bug wherever it sits, and blaming core 0 for core 3's stall
    // buries the diagnosis. (Thrasher cores retire continuously, so
    // per-core progress is the cheap invariant to watch.)
    const std::size_t n = cores.size();
    std::vector<std::uint64_t> last_retired(n);
    std::vector<Cycle> last_progress(n, now);
    for (std::size_t c = 0; c < n; ++c)
        last_retired[c] = cores[c]->retired();

    // Arm the batched-epoch stop condition for the loop's duration
    // (cleared again on every exit path: step() must never batch past
    // a retire boundary armed by a previous window).
    stopTarget = target;
    const bool deadlineArmed =
        jobDeadline != std::chrono::steady_clock::time_point{};
    std::uint64_t deadlineChecks = 0;
    try {
        while (cores[0]->retired() < target) {
            step();
            // The deadline check is time-based, so sample the clock
            // only every 256 steps — cheap enough to leave armed on
            // every farm job without skewing throughput numbers.
            if (deadlineArmed && (++deadlineChecks & 255) == 0 &&
                std::chrono::steady_clock::now() >= jobDeadline) {
                std::ostringstream oss;
                oss << "System: job exceeded its " << jobDeadlineSeconds
                    << "s wall-clock deadline at cycle " << now
                    << " (core 0 retired " << cores[0]->retired() << "/"
                    << target << ")";
                throw JobTimeout(oss.str());
            }
            for (std::size_t c = 0; c < n; ++c) {
                const std::uint64_t retired = cores[c]->retired();
                if (retired != last_retired[c]) {
                    last_retired[c] = retired;
                    last_progress[c] = now;
                } else if (now - last_progress[c] > watchdogCycles) {
                    std::ostringstream oss;
                    oss << "System: core " << c
                        << " made no progress for "
                        << "1M cycles at cycle " << now << " (retired "
                        << retired;
                    if (c == 0)
                        oss << ", target " << target;
                    oss << ") — deadlock?";
                    throw std::runtime_error(oss.str());
                }
            }
        }
    } catch (...) {
        stopTarget = 0;
        throw;
    }
    stopTarget = 0;
}

void
System::setJobDeadline(double seconds)
{
    jobDeadlineSeconds = seconds;
    jobDeadline =
        seconds > 0.0
            ? std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds))
            : std::chrono::steady_clock::time_point{};
}

RunStats
System::run(std::uint64_t warmup_instr, std::uint64_t measure_instr)
{
    warmup(warmup_instr);
    return measure(measure_instr);
}

void
System::warmup(std::uint64_t warmup_instr)
{
    runUntilRetired(cores[0]->retired() + warmup_instr);
}

RunStats
System::measure(std::uint64_t measure_instr)
{
    RunStats begin = hier.collectStats();
    begin.branches = cores[0]->branchCount();
    begin.branchMispredicts = cores[0]->mispredictCount();
    const Cycle start_cycle = now;
    const std::uint64_t start_instr = cores[0]->retired();

    runUntilRetired(start_instr + measure_instr);

    RunStats end = hier.collectStats();
    end.branches = cores[0]->branchCount();
    end.branchMispredicts = cores[0]->mispredictCount();

    RunStats d = deltaStats(end, begin);
    d.cycles = now - start_cycle;
    d.instructions = cores[0]->retired() - start_instr;
    return d;
}

} // namespace bop
