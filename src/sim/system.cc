#include "sim/system.hh"

#include <sstream>
#include <stdexcept>

namespace bop
{

RunStats
deltaStats(const RunStats &end, const RunStats &begin)
{
    RunStats d = end;
    d.cycles = end.cycles - begin.cycles;
    d.instructions = end.instructions - begin.instructions;
    d.dl1Accesses = end.dl1Accesses - begin.dl1Accesses;
    d.dl1Misses = end.dl1Misses - begin.dl1Misses;
    d.dl1PrefIssued = end.dl1PrefIssued - begin.dl1PrefIssued;
    d.dl1PrefDropTlb = end.dl1PrefDropTlb - begin.dl1PrefDropTlb;
    d.l2Accesses = end.l2Accesses - begin.l2Accesses;
    d.l2Misses = end.l2Misses - begin.l2Misses;
    d.l2PrefetchedHits = end.l2PrefetchedHits - begin.l2PrefetchedHits;
    d.l2PrefIssued = end.l2PrefIssued - begin.l2PrefIssued;
    d.l2PrefDropped = end.l2PrefDropped - begin.l2PrefDropped;
    d.l2PrefFills = end.l2PrefFills - begin.l2PrefFills;
    d.l2LatePromotions = end.l2LatePromotions - begin.l2LatePromotions;
    d.l2PrefUselessEvicted =
        end.l2PrefUselessEvicted - begin.l2PrefUselessEvicted;
    d.l3Accesses = end.l3Accesses - begin.l3Accesses;
    d.l3Misses = end.l3Misses - begin.l3Misses;
    d.l3ChannelStalls = end.l3ChannelStalls - begin.l3ChannelStalls;
    d.dtlb1Misses = end.dtlb1Misses - begin.dtlb1Misses;
    d.tlb2Misses = end.tlb2Misses - begin.tlb2Misses;
    d.branches = end.branches - begin.branches;
    d.branchMispredicts = end.branchMispredicts - begin.branchMispredicts;
    d.dramReads = end.dramReads - begin.dramReads;
    d.dramWrites = end.dramWrites - begin.dramWrites;
    d.dramRowHits = end.dramRowHits - begin.dramRowHits;
    d.dramRowMisses = end.dramRowMisses - begin.dramRowMisses;
    // boLearningPhases etc. are end-of-run state: keep end's values.
    return d;
}

System::System(const SystemConfig &cfg_,
               std::vector<std::unique_ptr<TraceSource>> traces_)
    : cfg(cfg_.resolved()), traces(std::move(traces_)), hier(cfg)
{
    if (static_cast<int>(traces.size()) != cfg.activeCores) {
        throw std::invalid_argument(
            "System: need exactly one trace per active core");
    }
    for (int c = 0; c < cfg.activeCores; ++c) {
        cores.push_back(std::make_unique<CoreModel>(
            c, cfg.core, *traces[static_cast<std::size_t>(c)], hier));
        hier.attachCore(c, cores.back().get());
    }
}

void
System::step()
{
    ++now;
    for (auto &core : cores)
        core->tick(now);
    hier.tick(now);
}

void
System::runUntilRetired(std::uint64_t target)
{
    std::uint64_t last_retired = cores[0]->retired();
    Cycle last_progress = now;

    while (cores[0]->retired() < target) {
        step();
        if (cores[0]->retired() != last_retired) {
            last_retired = cores[0]->retired();
            last_progress = now;
        } else if (now - last_progress > 1000000) {
            std::ostringstream oss;
            oss << "System: core 0 made no progress for 1M cycles at "
                << "cycle " << now << " (retired " << last_retired
                << ", target " << target << ") — deadlock?";
            throw std::runtime_error(oss.str());
        }
    }
}

RunStats
System::run(std::uint64_t warmup_instr, std::uint64_t measure_instr)
{
    runUntilRetired(cores[0]->retired() + warmup_instr);

    RunStats begin = hier.collectStats();
    begin.branches = cores[0]->branchCount();
    begin.branchMispredicts = cores[0]->mispredictCount();
    const Cycle start_cycle = now;
    const std::uint64_t start_instr = cores[0]->retired();

    runUntilRetired(start_instr + measure_instr);

    RunStats end = hier.collectStats();
    end.branches = cores[0]->branchCount();
    end.branchMispredicts = cores[0]->mispredictCount();

    RunStats d = deltaStats(end, begin);
    d.cycles = now - start_cycle;
    d.instructions = cores[0]->retired() - start_instr;
    return d;
}

} // namespace bop
