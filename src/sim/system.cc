#include "sim/system.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace bop
{

namespace
{

/** BOP_DISABLE_FASTFORWARD set to anything but "" or "0" forces the
 *  per-cycle reference loop (CI's exactness gate). */
bool
fastForwardDisabledByEnv()
{
    const char *v = std::getenv("BOP_DISABLE_FASTFORWARD");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

/** BOP_THREADS set to a positive integer overrides cfg.numThreads
 *  (host-side speed knob; simulated results are identical). */
int
threadsFromEnv(int cfg_threads)
{
    const char *v = std::getenv("BOP_THREADS");
    if (v == nullptr || v[0] == '\0')
        return cfg_threads;
    const int n = std::atoi(v);
    return n >= 1 ? n : cfg_threads;
}

} // namespace

RunStats
deltaStats(const RunStats &end, const RunStats &begin)
{
    RunStats d = end;
    d.cycles = end.cycles - begin.cycles;
    d.instructions = end.instructions - begin.instructions;
    d.dl1Accesses = end.dl1Accesses - begin.dl1Accesses;
    d.dl1Misses = end.dl1Misses - begin.dl1Misses;
    d.dl1PrefIssued = end.dl1PrefIssued - begin.dl1PrefIssued;
    d.dl1PrefDropTlb = end.dl1PrefDropTlb - begin.dl1PrefDropTlb;
    d.l2Accesses = end.l2Accesses - begin.l2Accesses;
    d.l2Misses = end.l2Misses - begin.l2Misses;
    d.l2PrefetchedHits = end.l2PrefetchedHits - begin.l2PrefetchedHits;
    d.l2PrefIssued = end.l2PrefIssued - begin.l2PrefIssued;
    d.l2PrefDropped = end.l2PrefDropped - begin.l2PrefDropped;
    d.l2PrefFills = end.l2PrefFills - begin.l2PrefFills;
    d.l2LatePromotions = end.l2LatePromotions - begin.l2LatePromotions;
    d.l2PrefUselessEvicted =
        end.l2PrefUselessEvicted - begin.l2PrefUselessEvicted;
    d.l3Accesses = end.l3Accesses - begin.l3Accesses;
    d.l3Misses = end.l3Misses - begin.l3Misses;
    d.l3ChannelStalls = end.l3ChannelStalls - begin.l3ChannelStalls;
    d.dtlb1Misses = end.dtlb1Misses - begin.dtlb1Misses;
    d.tlb2Misses = end.tlb2Misses - begin.tlb2Misses;
    d.branches = end.branches - begin.branches;
    d.branchMispredicts = end.branchMispredicts - begin.branchMispredicts;
    d.dramReads = end.dramReads - begin.dramReads;
    d.dramWrites = end.dramWrites - begin.dramWrites;
    d.dramRowHits = end.dramRowHits - begin.dramRowHits;
    d.dramRowMisses = end.dramRowMisses - begin.dramRowMisses;
    // boLearningPhases etc. are end-of-run state: keep end's values.
    return d;
}

System::System(const SystemConfig &cfg_,
               std::vector<std::unique_ptr<TraceSource>> traces_)
    : cfg(cfg_.resolved()), traces(std::move(traces_)), hier(cfg),
      fastForward(cfg.fastForward && !fastForwardDisabledByEnv()),
      threads(std::min(threadsFromEnv(cfg.numThreads), 64))
{
    if (static_cast<int>(traces.size()) != cfg.activeCores) {
        throw std::invalid_argument(
            "System: need exactly one trace per active core");
    }
    for (int c = 0; c < cfg.activeCores; ++c) {
        cores.push_back(std::make_unique<CoreModel>(
            c, cfg.core, *traces[static_cast<std::size_t>(c)], hier));
        hier.attachCore(c, cores.back().get());
    }
    // Every component starts with its staleness flag set, so these
    // placeholders are refreshed before they are ever consulted.
    coreHorizon.assign(cores.size(), 0);

    if (threads > 1) {
        pool = std::make_unique<WorkerPool>(
            static_cast<unsigned>(threads));
        coreDue.assign(cores.size(), 1);
    }
}

Cycle
System::nextEventCycle()
{
    // Refresh every stale cache entry — step() bases its tick-or-skip
    // decisions on these values, so none may be left stale here.
    for (std::size_t c = 0; c < cores.size(); ++c) {
        if (cores[c]->horizonStale()) {
            coreHorizon[c] = cores[c]->nextEventAt(now);
            cores[c]->clearHorizonStale();
        }
    }
    if (hier.horizonStale()) {
        hierHorizon = hier.nextEventAt(now);
        hier.clearHorizonStale();
    }

    Cycle ev = hierHorizon;
    for (const Cycle h : coreHorizon)
        ev = std::min(ev, h);
    const Cycle next = now + 1;
    if (ev <= next)
        return next;
    // A horizon of neverCycle means no component has any future work —
    // a genuine deadlock. Cap the jump just past the watchdog window so
    // the deadlock trap fires with its diagnostic instead of the clock
    // leaping to infinity.
    return std::min(ev, now + watchdogCycles + 1);
}

void
System::step()
{
    if (!fastForward) {
        // Reference semantics: tick everything, every cycle.
        ++now;
        if (pool) {
            std::fill(coreDue.begin(), coreDue.end(), 1);
            stepParallel(true);
            return;
        }
        for (auto &core : cores)
            core->tick(now);
        hier.tick(now);
        return;
    }

    now = nextEventCycle();
    // Tick only the components whose horizon is due. Skipped ticks are
    // exactly the ones the horizon contract proves are no-ops; ticking
    // anyway would be correct but wasted (the reference loop does, and
    // the equivalence tests pin the two modes against each other).
    if (pool) {
        for (std::size_t c = 0; c < cores.size(); ++c)
            coreDue[c] = coreHorizon[c] <= now ? 1 : 0;
        stepParallel(hierHorizon <= now);
        return;
    }
    for (std::size_t c = 0; c < cores.size(); ++c) {
        if (coreHorizon[c] <= now)
            cores[c]->tick(now);
    }
    if (hierHorizon <= now)
        hier.tick(now);
}

void
System::stepParallel(bool hier_due)
{
    const Cycle at = now;

    // Epoch 1: due cores tick, and (hierarchy due) each core's ingress
    // stages run — both touch only that core's side of the hierarchy,
    // plus read-only probes of the quiescent controllers; L2 misses
    // are staged per side instead of crossing into the shared queues.
    pool->run(cores.size(), [&](std::size_t c) {
        if (coreDue[c])
            cores[c]->tick(at);
        if (hier_due)
            hier.tickCoreIngress(static_cast<CoreId>(c), at);
    });
    if (!hier_due)
        return;

    // Serial: merge staged misses in core order, L3 arbitration.
    hier.commitIngress(at);

    // Epoch 2: the channel/bank pairs are mutually independent.
    pool->run(static_cast<std::size_t>(hier.channelCount()),
              [&](std::size_t ch) {
                  hier.tickChannel(static_cast<int>(ch), at);
              });

    // Serial: DRAM completions, L3 fill drain in global id order.
    hier.drainUncore(at);

    // Epoch 3: per-core egress (L2/DL1 fills, completion callbacks —
    // strictly core-local; L2 victims staged per side).
    pool->run(cores.size(), [&](std::size_t c) {
        hier.tickCoreEgress(static_cast<CoreId>(c), at);
    });

    // Serial: merge staged L2 victims in core order.
    hier.commitEgress(at);
}

void
System::runUntilRetired(std::uint64_t target)
{
    // Watchdog over every active core: a wedged core is a simulator
    // bug wherever it sits, and blaming core 0 for core 3's stall
    // buries the diagnosis. (Thrasher cores retire continuously, so
    // per-core progress is the cheap invariant to watch.)
    const std::size_t n = cores.size();
    std::vector<std::uint64_t> last_retired(n);
    std::vector<Cycle> last_progress(n, now);
    for (std::size_t c = 0; c < n; ++c)
        last_retired[c] = cores[c]->retired();

    while (cores[0]->retired() < target) {
        step();
        for (std::size_t c = 0; c < n; ++c) {
            const std::uint64_t retired = cores[c]->retired();
            if (retired != last_retired[c]) {
                last_retired[c] = retired;
                last_progress[c] = now;
            } else if (now - last_progress[c] > watchdogCycles) {
                std::ostringstream oss;
                oss << "System: core " << c << " made no progress for "
                    << "1M cycles at cycle " << now << " (retired "
                    << retired;
                if (c == 0)
                    oss << ", target " << target;
                oss << ") — deadlock?";
                throw std::runtime_error(oss.str());
            }
        }
    }
}

RunStats
System::run(std::uint64_t warmup_instr, std::uint64_t measure_instr)
{
    runUntilRetired(cores[0]->retired() + warmup_instr);

    RunStats begin = hier.collectStats();
    begin.branches = cores[0]->branchCount();
    begin.branchMispredicts = cores[0]->mispredictCount();
    const Cycle start_cycle = now;
    const std::uint64_t start_instr = cores[0]->retired();

    runUntilRetired(start_instr + measure_instr);

    RunStats end = hier.collectStats();
    end.branches = cores[0]->branchCount();
    end.branchMispredicts = cores[0]->mispredictCount();

    RunStats d = deltaStats(end, begin);
    d.cycles = now - start_cycle;
    d.instructions = cores[0]->retired() - start_instr;
    return d;
}

} // namespace bop
