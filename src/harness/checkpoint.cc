/**
 * @file
 * Checkpoint save/restore of a System's warm microarchitectural state
 * (container format: checkpoint.hh, normative spec:
 * docs/CHECKPOINT_FORMAT.md).
 *
 * The entry points are System member functions (full access to the
 * simulator's private state) defined here rather than in sim/ so the
 * container logic, like the experiment harness, stays in one place:
 * everything that links bop_harness can save and restore.
 *
 * Restore discipline: the fixed header and every section header and
 * CRC are validated against the byte buffer *before* any section
 * payload is applied to the System, so a truncated, corrupted or
 * mismatched checkpoint is rejected with a CheckpointError naming the
 * offending byte offset and the System is left untouched. Payload
 * decoding (after CRC validation) can still throw — e.g. a
 * semantically impossible field a CRC cannot catch because the file
 * was written by a buggy writer — which aborts mid-apply; callers
 * treat any CheckpointError as "this System is not usable" in that
 * case. The CRC pass makes the common failure modes (truncation, bit
 * rot, wrong file) fail before the first byte is applied.
 */

#include "harness/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/fault.hh"
#include "common/rng.hh"
#include "common/serializer.hh"
#include "harness/experiment.hh"
#include "sim/system.hh"

namespace bop
{

namespace
{

/** Little-endian scalar stores into the container header. */
void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Section tags, in on-disk order. */
constexpr const char *sectionTags[checkpointSectionCount] = {
    "META", "TRAC", "CORE", "HIER", "DRAM",
};

/** A located, CRC-validated section within a checkpoint buffer. */
struct SectionView
{
    const std::uint8_t *payload = nullptr;
    std::size_t length = 0;
    std::uint64_t offset = 0; ///< payload's absolute byte offset
};

/**
 * Validate the fixed header and every section header and CRC of
 * @p bytes against the expected fingerprint; returns the located
 * sections in on-disk order. Throws CheckpointError naming the byte
 * offset of the first inconsistency. Does not touch any System.
 */
std::vector<SectionView>
validateContainer(const std::vector<std::uint8_t> &bytes,
                  std::uint64_t expected_fingerprint)
{
    if (bytes.size() < checkpointHeaderBytes) {
        throw CheckpointError(
            "checkpoint truncated: " + std::to_string(bytes.size()) +
                " byte(s), header needs " +
                std::to_string(checkpointHeaderBytes),
            bytes.size());
    }
    if (std::memcmp(bytes.data(), checkpointMagic,
                    sizeof(checkpointMagic)) != 0) {
        throw CheckpointError("bad magic: not a BOPCKPT1 checkpoint", 0);
    }
    const std::uint32_t version = getU32(bytes.data() + 8);
    if (version != checkpointVersion) {
        throw CheckpointError(
            "unsupported checkpoint format version " +
                std::to_string(version) + " (expected " +
                std::to_string(checkpointVersion) + ")",
            8);
    }
    const std::uint64_t fingerprint = getU64(bytes.data() + 12);
    if (fingerprint != expected_fingerprint) {
        throw CheckpointError(
            "topology fingerprint mismatch: checkpoint was saved from "
            "an incompatible configuration or trace set",
            12);
    }
    const std::uint32_t sections = getU32(bytes.data() + 20);
    if (sections != checkpointSectionCount) {
        throw CheckpointError(
            "bad section count " + std::to_string(sections) +
                " (expected " +
                std::to_string(checkpointSectionCount) + ")",
            20);
    }

    std::vector<SectionView> views;
    std::size_t pos = checkpointHeaderBytes;
    for (std::uint32_t i = 0; i < sections; ++i) {
        if (bytes.size() - pos < checkpointSectionHeaderBytes) {
            throw CheckpointError(
                "checkpoint truncated inside section header " +
                    std::to_string(i),
                bytes.size());
        }
        if (std::memcmp(bytes.data() + pos, sectionTags[i], 4) != 0) {
            throw CheckpointError(
                std::string("bad section tag (expected \"") +
                    sectionTags[i] + "\")",
                pos);
        }
        const std::uint64_t length = getU64(bytes.data() + pos + 4);
        const std::uint32_t stored_crc = getU32(bytes.data() + pos + 12);
        const std::size_t payload_pos =
            pos + checkpointSectionHeaderBytes;
        if (length > bytes.size() - payload_pos) {
            throw CheckpointError(
                std::string("section \"") + sectionTags[i] +
                    "\" length " + std::to_string(length) +
                    " overruns the checkpoint",
                pos + 4);
        }
        const std::uint32_t actual_crc =
            crc32(bytes.data() + payload_pos,
                  static_cast<std::size_t>(length));
        if (actual_crc != stored_crc) {
            throw CheckpointError(
                std::string("section \"") + sectionTags[i] +
                    "\" CRC mismatch (payload corrupted)",
                pos + 12);
        }
        views.push_back({bytes.data() + payload_pos,
                         static_cast<std::size_t>(length), payload_pos});
        pos = payload_pos + static_cast<std::size_t>(length);
    }
    if (pos != bytes.size()) {
        throw CheckpointError(
            std::to_string(bytes.size() - pos) +
                " trailing byte(s) after the last section",
            pos);
    }
    return views;
}

} // namespace

std::uint64_t
checkpointFingerprint(System &sys)
{
    // splitmix64 chain over the config fingerprint string and the
    // trace names. numThreads and the fast-forward toggle are
    // host-side speed knobs under the determinism contract and are
    // deliberately absent (configFingerprint's describe() excludes
    // them), so a checkpoint restores across both.
    std::uint64_t h = 0x424f50434b505431ull; // "BOPCKPT1"
    auto mix = [&h](const std::string &str) {
        for (const char c : str)
            h = splitmix64(h ^ static_cast<std::uint8_t>(c));
        h = splitmix64(h ^ str.size());
    };
    mix(configFingerprint(sys.config()));
    for (int c = 0; c < sys.coreCount(); ++c)
        mix(sys.traceSource(c).name());
    return h;
}

std::vector<std::uint8_t>
System::saveCheckpointBytes()
{
    std::vector<std::uint8_t> payloads[checkpointSectionCount];

    { // META: the global clock.
        Serializer s(payloads[0]);
        s.value(now);
    }
    { // TRAC: every trace source's generator/replay state.
        Serializer s(payloads[1]);
        for (auto &t : traces)
            t->serialize(s);
    }
    { // CORE: per-core ROB, waiting lists, predictor, counters.
        Serializer s(payloads[2]);
        for (auto &c : cores)
            c->serialize(s);
    }
    { // HIER: caches, queues, prefetchers, TLBs, policy state.
        Serializer s(payloads[3]);
        hier.serialize(s);
    }
    { // DRAM: memory controller bus/bank/queue state.
        Serializer s(payloads[4]);
        hier.serializeDram(s);
    }

    std::vector<std::uint8_t> out;
    std::size_t total = checkpointHeaderBytes;
    for (const auto &p : payloads)
        total += checkpointSectionHeaderBytes + p.size();
    out.reserve(total);

    out.insert(out.end(), checkpointMagic,
               checkpointMagic + sizeof(checkpointMagic));
    putU32(out, checkpointVersion);
    putU64(out, checkpointFingerprint(*this));
    putU32(out, checkpointSectionCount);
    for (std::uint32_t i = 0; i < checkpointSectionCount; ++i) {
        const auto &p = payloads[i];
        out.insert(out.end(), sectionTags[i], sectionTags[i] + 4);
        putU64(out, p.size());
        putU32(out, crc32(p.data(), p.size()));
        out.insert(out.end(), p.begin(), p.end());
    }
    return out;
}

void
System::saveCheckpoint(const std::string &path)
{
    // Atomic save: write everything to path.tmp, fsync, then rename
    // over the target. A crash (or injected fault) anywhere before
    // the rename leaves the previous checkpoint intact and never a
    // plausible-looking truncated file at the target path; the tmp
    // file is removed on every failure path.
    const std::vector<std::uint8_t> bytes = saveCheckpointBytes();
    const std::string tmp = path + ".tmp";

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        throw std::runtime_error("cannot open checkpoint file for "
                                 "writing: " + tmp);
    }

    // Injection point ckpt_write_short (docs/ROBUSTNESS.md): behave
    // like a disk that filled up mid-save — half the bytes land, then
    // the write fails.
    std::size_t to_write = bytes.size();
    if (FaultPlan::global().fireCounted("ckpt_write_short"))
        to_write = bytes.size() / 2;

    const std::size_t written =
        std::fwrite(bytes.data(), 1, to_write, f);
    const bool flushed = std::fflush(f) == 0;
    const bool synced = flushed && ::fsync(fileno(f)) == 0;
    std::fclose(f);

    if (written != bytes.size() || !synced) {
        std::remove(tmp.c_str());
        throw std::runtime_error(
            "short write to checkpoint: " + path + " (" +
            std::to_string(written) + "/" +
            std::to_string(bytes.size()) + " bytes written)");
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename checkpoint into place: " +
                                 tmp + " -> " + path);
    }
}

void
System::restoreCheckpointBytes(const std::vector<std::uint8_t> &bytes)
{
    const std::vector<SectionView> sections =
        validateContainer(bytes, checkpointFingerprint(*this));

    auto loader = [&sections](std::uint32_t i) {
        return Serializer(sections[i].payload, sections[i].length,
                          sections[i].offset);
    };

    { // META
        Serializer s = loader(0);
        s.value(now);
        s.finish("META section");
    }
    { // TRAC
        Serializer s = loader(1);
        for (auto &t : traces)
            t->serialize(s);
        s.finish("TRAC section");
    }
    { // CORE
        Serializer s = loader(2);
        for (auto &c : cores)
            c->serialize(s);
        s.finish("CORE section");
    }
    { // HIER
        Serializer s = loader(3);
        hier.serialize(s);
        s.finish("HIER section");
    }
    { // DRAM
        Serializer s = loader(4);
        hier.serializeDram(s);
        s.finish("DRAM section");
    }

    // The run-control state belongs to a runUntilRetired() in flight,
    // never to a checkpoint (saves happen between runs); reset it and
    // drop every cached horizon for recomputation under the restored
    // clock.
    stopTarget = 0;
    batchTargetAt = neverCycle;
    for (auto &h : coreHorizon)
        h = 0;
    hierHorizon = 0;
}

void
System::restoreCheckpoint(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        throw std::runtime_error("cannot open checkpoint file: " +
                                 path);
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    restoreCheckpointBytes(bytes);
}

} // namespace bop
