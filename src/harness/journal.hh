/**
 * @file
 * Write-ahead NDJSON result journal (crash-durable sweeps).
 *
 * A thousand-job overnight sweep must not lose its completed work to a
 * power loss or `kill -9`: every committed run record or error record
 * is appended to the journal *before* the farm acknowledges it, with
 * fsync-on-commit framing, so `--resume` can replay the journal into
 * the runner's memo and only un-journaled jobs re-simulate.
 *
 * Framing (normative grammar in docs/ROBUSTNESS.md): one line per
 * entry —
 *
 *   <payload-json> @crc32=xxxxxxxx\n
 *
 * where the trailer carries the CRC-32 (serializer.hh polynomial) of
 * the payload bytes, lowercase hex. Line 1 is the header
 * `{"journal": "BOPJRNL1", "warmup": W, "measure": M}`; replaying
 * under different default budgets is refused with a named mismatch,
 * like checkpoint restore. Every other line is a json_report record
 * object (success or error grammar) extended with `journal_key` (the
 * runner's memo key) and, for success records, `journal_stats` (the
 * raw RunStats counters as a hex Serializer dump — re-serialisation is
 * bit-exact, so a resumed sweep's final JSON is byte-identical to an
 * uninterrupted one, timing fields aside).
 *
 * A final line without its newline is a *torn* line — the signature of
 * a producer killed mid-append — and is dropped on replay with a
 * warning (the same tolerance bench_diff extends to truncated NDJSON).
 * A complete line that fails its CRC or does not decode is corruption
 * and is refused with the line number and byte offset; a corrupt
 * journal must never silently skew results.
 */

#ifndef BOP_HARNESS_JOURNAL_HH
#define BOP_HARNESS_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "harness/json_report.hh"

namespace bop
{

/** One replayed journal entry: memo key plus reconstructed record. */
struct JournalEntry
{
    std::string key;
    RunRecord record;
};

/** Append-only writer / replay loader for the result journal. */
class ResultJournal
{
  public:
    ResultJournal() = default;
    ~ResultJournal();

    ResultJournal(const ResultJournal &) = delete;
    ResultJournal &operator=(const ResultJournal &) = delete;

    /**
     * Open @p path for appending under the given default budgets.
     * Writes the header line when the file is new or empty; otherwise
     * validates the existing header (budget drift between sessions is
     * refused with a named mismatch — one journal, one budget).
     * Throws std::runtime_error on open failure or header mismatch.
     */
    void open(const std::string &path, std::uint64_t warmup,
              std::uint64_t measure);

    bool isOpen() const { return file != nullptr; }

    /**
     * Append one committed record. Write + fflush + fsync under the
     * journal mutex: when this returns, the record is durable. A
     * failed write throws (a WAL that cannot persist must fail
     * loudly), leaving at most a torn final line that the next replay
     * drops. Injection points (docs/ROBUSTNESS.md):
     * `journal_write_short` (half the line lands, the append throws)
     * and `crash_hard` (half the line lands and the process `_exit`s
     * on the spot — the fork-based crash-recovery test and the CI
     * crash-resume smoke arm this).
     */
    void append(const std::string &key, const RunRecord &record);

    /**
     * Load and validate a journal for replay. Returns the decoded
     * entries in append order (a later entry for the same key
     * supersedes an earlier one when consumed as a map). Throws
     * std::runtime_error on header/budget mismatch or mid-stream
     * corruption (naming line and byte offset); a torn final line is
     * dropped with a warning on @p diag.
     */
    static std::vector<JournalEntry> load(const std::string &path,
                                          std::uint64_t warmup,
                                          std::uint64_t measure,
                                          std::ostream &diag);

    // --- framing / codec internals, exposed for the decode tests ---

    /** Append the " @crc32=xxxxxxxx" trailer to @p payload. */
    static std::string frame(const std::string &payload);

    /**
     * Validate one complete line's trailer and CRC. On success fills
     * @p payload and returns true; otherwise fills @p error.
     */
    static bool unframe(const std::string &line, std::string &payload,
                        std::string &error);

    /** Header payload for the given budgets. */
    static std::string headerPayload(std::uint64_t warmup,
                                     std::uint64_t measure);

    /** Record payload: json_report grammar + journal_key/_stats. */
    static std::string recordPayload(const std::string &key,
                                     const RunRecord &record);

    /** Inverse of recordPayload(). Throws std::runtime_error on a
     *  payload missing required journal fields. */
    static JournalEntry decodeRecordPayload(const std::string &payload);

    /** RunStats counters as a lowercase-hex Serializer dump. */
    static std::string encodeStatsHex(const RunStats &stats);

    /** Inverse of encodeStatsHex(); throws on bad hex or size. */
    static RunStats decodeStatsHex(const std::string &hex);

  private:
    /** Write one framed line + newline; m must be held. */
    void writeLine(const std::string &line);

    std::FILE *file = nullptr;
    std::string path_;
    std::mutex m;
};

} // namespace bop

#endif // BOP_HARNESS_JOURNAL_HH
