#include "harness/json_report.hh"

#include <cstdio>
#include <fstream>
#include <iomanip>

namespace bop
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeRunRecord(std::ostream &os, const RunRecord &record)
{
    if (record.errored()) {
        // Failed jobs keep their slot in the record stream (same
        // deterministic job_index, submission-order position) but
        // carry the error object grammar — never partial stats that
        // could be mistaken for a measured run. docs/ROBUSTNESS.md is
        // normative for this shape.
        os << "{"
           << "\"error\": \"job failed\", "
           << "\"kind\": \"" << jsonEscape(record.errorKind) << "\", "
           << "\"detail\": \"" << jsonEscape(record.errorDetail) << "\", "
           << "\"workload\": \"" << jsonEscape(record.workload) << "\", "
           << "\"config\": \"" << jsonEscape(record.config) << "\", "
           << "\"jobs\": " << record.jobs << ", "
           << "\"job_index\": " << record.jobIndex << ", "
           << "\"attempts\": " << record.attempts << "}";
        return;
    }

    const RunStats &s = record.stats;
    os << "{"
       << "\"workload\": \"" << jsonEscape(record.workload) << "\", "
       << "\"config\": \"" << jsonEscape(record.config) << "\", "
       << "\"trace_source\": \""
       << jsonEscape(record.traceSource.empty() ? "generator"
                                                : record.traceSource)
       << "\", "
       << std::setprecision(6) << std::fixed
       << "\"ipc\": " << s.ipc() << ", "
       << "\"cycles\": " << s.cycles << ", "
       << "\"instructions\": " << s.instructions << ", "
       << "\"l2_mpki\": " << s.l2Mpki() << ", "
       << "\"prefetch_coverage\": " << s.prefetchCoverage() << ", "
       << "\"prefetch_accuracy\": " << s.prefetchAccuracy() << ", "
       << "\"prefetch_timeliness\": " << s.prefetchTimeliness() << ", "
       << "\"dram_reads\": " << s.dramReads << ", "
       << "\"dram_writes\": " << s.dramWrites << ", "
       << "\"dram_per_1k_instr\": " << s.dramPer1kInstr() << ", "
       << "\"l3_channel_stalls\": " << s.l3ChannelStalls << ", "
       << "\"bo_final_offset\": " << s.boFinalOffset << ", "
       << "\"threads\": " << record.threads << ", "
       << "\"jobs\": " << record.jobs << ", "
       << "\"job_index\": " << record.jobIndex << ", "
       << "\"attempts\": " << record.attempts << ", "
       << "\"wall_seconds\": " << record.wallSeconds << ", "
       << "\"queue_wait_seconds\": " << record.queueWaitSeconds << ", "
       << "\"sim_mcycles_per_s\": " << record.mcyclesPerSecond() << ", "
       << "\"retired_minstr_per_s\": " << record.minstrPerSecond() << ", "
       << "\"checkpoint\": \""
       << jsonEscape(record.checkpoint.empty() ? "none"
                                               : record.checkpoint)
       << "\"}";
    os << std::defaultfloat;
}

void
writeRunRecords(std::ostream &os, const std::vector<RunRecord> &records)
{
    os << "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        os << "  ";
        writeRunRecord(os, records[i]);
        if (i + 1 < records.size())
            os << ",";
        os << "\n";
    }
    os << "]\n";
}

bool
writeRunRecordsFile(const std::string &path,
                    const std::vector<RunRecord> &records)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "json_report: cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    writeRunRecords(out, records);
    return static_cast<bool>(out);
}

} // namespace bop
