#include "harness/bench_diff.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bop
{

namespace
{

/** Minimal recursive-descent scanner over the json_report subset. */
class RecordParser
{
  public:
    explicit RecordParser(std::istream &in_) : in(in_) {}

    ParsedRunRecord parseOne()
    {
        ParsedRunRecord record = parseRecord();
        skipSpace();
        if (peek() != EOF)
            fail("trailing characters after the record");
        return record;
    }

    std::vector<ParsedRunRecord> parse()
    {
        std::vector<ParsedRunRecord> records;
        expect('[');
        skipSpace();
        if (peek() == ']') {
            get();
            return records;
        }
        while (true) {
            records.push_back(parseRecord());
            skipSpace();
            const int c = get();
            if (c == ']')
                break;
            if (c != ',')
                fail("expected ',' or ']' between records");
        }
        return records;
    }

  private:
    [[noreturn]] void fail(const std::string &what)
    {
        throw std::runtime_error("bench records: " + what +
                                 " at character offset " +
                                 std::to_string(pos));
    }

    int get()
    {
        const int c = in.get();
        if (c != EOF)
            ++pos;
        return c;
    }

    int peek() { return in.peek(); }

    void skipSpace()
    {
        while (std::isspace(peek()))
            get();
    }

    void expect(char want)
    {
        skipSpace();
        const int c = get();
        if (c != want)
            fail(std::string("expected '") + want + "'");
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            const int c = get();
            if (c == EOF)
                fail("unterminated string");
            if (c == '"')
                return out;
            if (c != '\\') {
                out += static_cast<char>(c);
                continue;
            }
            const int esc = get();
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += static_cast<char>(esc);
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                // json_report only emits \u00xx control escapes.
                char hex[5] = {};
                for (int i = 0; i < 4; ++i) {
                    const int h = get();
                    if (!std::isxdigit(h))
                        fail("bad \\u escape");
                    hex[i] = static_cast<char>(h);
                }
                out += static_cast<char>(
                    std::strtol(hex, nullptr, 16));
                break;
              }
              default:
                fail("unsupported escape");
            }
        }
    }

    double parseNumber()
    {
        std::string text;
        while (true) {
            const int c = peek();
            if (c == '-' || c == '+' || c == '.' || c == 'e' ||
                c == 'E' || std::isdigit(c)) {
                text += static_cast<char>(get());
            } else {
                break;
            }
        }
        if (text.empty())
            fail("expected a number");
        std::size_t used = 0;
        const double value = std::stod(text, &used);
        if (used != text.size())
            fail("malformed number '" + text + "'");
        return value;
    }

    ParsedRunRecord parseRecord()
    {
        ParsedRunRecord record;
        expect('{');
        skipSpace();
        if (peek() == '}') {
            get();
            return record;
        }
        while (true) {
            const std::string name = parseString();
            expect(':');
            skipSpace();
            if (peek() == '"')
                record.strings[name] = parseString();
            else
                record.numbers[name] = parseNumber();
            skipSpace();
            const int c = get();
            if (c == '}')
                return record;
            if (c != ',')
                fail("expected ',' or '}' inside a record");
            skipSpace();
        }
    }

    std::istream &in;
    std::size_t pos = 0;
};

std::string
lookupString(const ParsedRunRecord &record, const std::string &name)
{
    const auto it = record.strings.find(name);
    return it == record.strings.end() ? std::string() : it->second;
}

double
lookupNumber(const ParsedRunRecord &record, const std::string &name,
             double fallback)
{
    const auto it = record.numbers.find(name);
    return it == record.numbers.end() ? fallback : it->second;
}

std::string
checkpointOrDefault(const ParsedRunRecord &record)
{
    // Artifacts written before the checkpoint field existed are cold
    // runs, which modern writers serialise as "none".
    const std::string value = lookupString(record, "checkpoint");
    return value.empty() ? "none" : value;
}

std::string
traceSourceOrDefault(const ParsedRunRecord &record)
{
    // Artifacts written before the trace_source field existed must
    // keep matching their modern counterparts, which serialise
    // generator-driven runs as "generator".
    const std::string value = lookupString(record, "trace_source");
    return value.empty() ? "generator" : value;
}

/** Flag |new-old| (relative to @p base when > 0) beyond threshold. */
void
compareMetric(const ParsedRunRecord &oldRecord,
              const ParsedRunRecord &newRecord, const std::string &key,
              const std::string &metric, bool relative, double threshold,
              std::vector<BenchDelta> &flagged)
{
    const auto oldIt = oldRecord.numbers.find(metric);
    const auto newIt = newRecord.numbers.find(metric);
    if (oldIt == oldRecord.numbers.end() ||
        newIt == newRecord.numbers.end())
        return;
    const double oldValue = oldIt->second;
    const double newValue = newIt->second;
    double magnitude = std::fabs(newValue - oldValue);
    if (relative) {
        if (oldValue == 0.0) {
            // Any movement off a zero baseline is an infinite
            // relative change: flag it unconditionally.
            if (magnitude == 0.0)
                return;
            flagged.push_back(
                {key, metric, oldValue, newValue, newValue - oldValue});
            return;
        }
        magnitude /= std::fabs(oldValue);
    }
    if (magnitude > threshold) {
        flagged.push_back(
            {key, metric, oldValue, newValue, newValue - oldValue});
    }
}

/** Flag a one-sided relative *drop* in @p metric. Records without the
 *  metric (or with a zero value — "not measured") are skipped, so
 *  artifacts from before the field existed keep diffing cleanly. */
void
compareDropMetric(const ParsedRunRecord &oldRecord,
                  const ParsedRunRecord &newRecord,
                  const std::string &key, const std::string &metric,
                  double threshold, std::vector<BenchDelta> &flagged)
{
    if (threshold <= 0.0)
        return;
    const auto oldIt = oldRecord.numbers.find(metric);
    const auto newIt = newRecord.numbers.find(metric);
    if (oldIt == oldRecord.numbers.end() ||
        newIt == newRecord.numbers.end())
        return;
    const double oldValue = oldIt->second;
    const double newValue = newIt->second;
    if (oldValue <= 0.0 || newValue <= 0.0)
        return;
    if ((oldValue - newValue) / oldValue > threshold) {
        flagged.push_back(
            {key, metric, oldValue, newValue, newValue - oldValue});
    }
}

} // namespace

std::string
ParsedRunRecord::key() const
{
    return lookupString(*this, "workload") + " | " +
           lookupString(*this, "config") + " | " +
           traceSourceOrDefault(*this);
}

std::vector<ParsedRunRecord>
parseRunRecords(std::istream &in)
{
    return RecordParser(in).parse();
}

ParsedRunRecord
parseFlatRecord(std::istream &in)
{
    return RecordParser(in).parseOne();
}

std::vector<ParsedRunRecord>
parseRunRecordsFile(const std::string &path, std::string *warning)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open bench records: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    // Sniff the shape: a json_report artifact opens with '['; anything
    // else is treated as NDJSON (the --serve output stream).
    std::size_t p = 0;
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p])))
        ++p;

    if (p >= text.size() || text[p] == '[') {
        std::istringstream is(text);
        try {
            return parseRunRecords(is);
        } catch (const std::runtime_error &e) {
            throw std::runtime_error(path + ": " + e.what());
        }
    }

    // NDJSON: parse line by line. A malformed line in the middle is
    // corruption and fails the comparison; a malformed LAST line is a
    // truncated trailing record from a crashed producer — tolerated
    // and reported so the surviving records stay comparable.
    std::vector<ParsedRunRecord> records;
    std::vector<std::pair<long, std::string>> lines;
    {
        std::istringstream is(text);
        std::string line;
        for (long lineNo = 1; std::getline(is, line); ++lineNo) {
            bool blank = true;
            for (const char c : line) {
                if (!std::isspace(static_cast<unsigned char>(c))) {
                    blank = false;
                    break;
                }
            }
            if (!blank)
                lines.emplace_back(lineNo, line);
        }
    }

    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::istringstream is(lines[i].second);
        try {
            records.push_back(RecordParser(is).parseOne());
        } catch (const std::runtime_error &e) {
            if (i + 1 == lines.size()) {
                if (warning) {
                    *warning = path + ": line " +
                               std::to_string(lines[i].first) +
                               ": truncated trailing record ignored (" +
                               e.what() + ")";
                }
                break;
            }
            throw std::runtime_error(path + ": line " +
                                     std::to_string(lines[i].first) +
                                     ": " + e.what());
        }
    }
    return records;
}

namespace
{

/** "kind" of an error record ("unknown" when the field is missing —
 *  serve rejection objects from before the kind field existed). */
std::string
errorKindOrDefault(const ParsedRunRecord &record)
{
    const std::string kind = lookupString(record, "kind");
    return kind.empty() ? "unknown" : kind;
}

/** Pair the error records of both artifacts by job_index and report
 *  kind mismatches; a mismatch is a non-clean finding. Records
 *  without a job_index (-1) cannot be paired and are listed as
 *  one-sided. Last record per index wins, matching the journal's
 *  replay rule. */
void
diffErrorRecords(const std::vector<const ParsedRunRecord *> &oldErrors,
                 const std::vector<const ParsedRunRecord *> &newErrors,
                 BenchDiffResult &result)
{
    std::map<long, std::string> oldByIndex;
    for (const ParsedRunRecord *record : oldErrors) {
        const long index =
            static_cast<long>(lookupNumber(*record, "job_index", -1.0));
        if (index >= 0)
            oldByIndex[index] = errorKindOrDefault(*record);
        else
            result.errorOnlyOld.push_back(
                "job ? (" + errorKindOrDefault(*record) + ")");
    }
    std::map<long, bool> seen;
    for (const ParsedRunRecord *record : newErrors) {
        const long index =
            static_cast<long>(lookupNumber(*record, "job_index", -1.0));
        const std::string kind = errorKindOrDefault(*record);
        if (index < 0) {
            result.errorOnlyNew.push_back("job ? (" + kind + ")");
            continue;
        }
        const auto it = oldByIndex.find(index);
        if (it == oldByIndex.end()) {
            result.errorOnlyNew.push_back(
                "job " + std::to_string(index) + " (" + kind + ")");
            continue;
        }
        seen[index] = true;
        ++result.errorsCompared;
        if (it->second != kind)
            result.errorMismatches.push_back({index, it->second, kind});
    }
    for (const auto &[index, kind] : oldByIndex) {
        if (!seen.count(index))
            result.errorOnlyOld.push_back(
                "job " + std::to_string(index) + " (" + kind + ")");
    }
}

} // namespace

BenchDiffResult
diffRunRecords(const std::vector<ParsedRunRecord> &oldRecords,
               const std::vector<ParsedRunRecord> &newRecords,
               const BenchDiffOptions &options)
{
    BenchDiffResult result;

    // Error records never enter the metric comparison: an errored run
    // has no IPC/coverage/throughput to compare, and letting its key
    // match a success record's would silently skew the stats. They
    // are split off here and paired by job_index below.
    std::vector<const ParsedRunRecord *> oldErrors, newErrors;
    std::map<std::string, const ParsedRunRecord *> byKey;
    for (const ParsedRunRecord &record : oldRecords) {
        if (record.isError())
            oldErrors.push_back(&record);
        else
            byKey[record.key()] = &record;
    }

    std::map<std::string, bool> seen;
    for (const ParsedRunRecord &newRecord : newRecords) {
        if (newRecord.isError()) {
            newErrors.push_back(&newRecord);
            continue;
        }
        const std::string key = newRecord.key();
        const auto it = byKey.find(key);
        if (it == byKey.end()) {
            result.onlyNew.push_back(key);
            continue;
        }
        seen[key] = true;
        ++result.compared;
        const ParsedRunRecord &oldRecord = *it->second;
        compareMetric(oldRecord, newRecord, key, "ipc",
                      /*relative=*/true, options.ipcRelative,
                      result.flagged);
        compareMetric(oldRecord, newRecord, key, "prefetch_coverage",
                      /*relative=*/false, options.coverageAbsolute,
                      result.flagged);
        compareMetric(oldRecord, newRecord, key, "dram_per_1k_instr",
                      /*relative=*/true, options.dramRelative,
                      result.flagged);
        // Engine throughput is only comparable between runs ticked on
        // the same number of worker threads AND scheduled under the
        // same sweep-farm jobs count — both oversubscribe the host the
        // same way wall clock notices (records predating either field
        // read as 1) — AND with the same checkpoint provenance: a
        // warm-restored run skips the warmup, so its wall clock is
        // incommensurable with a cold run's even though the simulated
        // statistics are bit-identical.
        if (lookupNumber(oldRecord, "threads", 1.0) ==
                lookupNumber(newRecord, "threads", 1.0) &&
            lookupNumber(oldRecord, "jobs", 1.0) ==
                lookupNumber(newRecord, "jobs", 1.0) &&
            checkpointOrDefault(oldRecord) ==
                checkpointOrDefault(newRecord)) {
            compareDropMetric(oldRecord, newRecord, key,
                              "sim_mcycles_per_s",
                              options.throughputDropRelative,
                              result.flagged);
        }
    }
    for (const ParsedRunRecord &record : oldRecords) {
        if (record.isError())
            continue;
        const std::string key = record.key();
        if (!seen.count(key))
            result.onlyOld.push_back(key);
    }

    diffErrorRecords(oldErrors, newErrors, result);
    return result;
}

} // namespace bop
