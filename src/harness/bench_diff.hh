/**
 * @file
 * Bench-record trajectory diffing (ROADMAP: JSON trajectory diffing).
 *
 * CI uploads the `bench-json-records` artifact on every push; this
 * module compares two such artifacts and flags the runs whose key
 * metrics moved beyond a threshold, so a PR that regresses IPC,
 * prefetch coverage or DRAM traffic on any benchmark is caught from
 * the records alone — including the new trace-driven runs, which are
 * matched by their `trace_source` tag as well as workload + config.
 *
 * The parser accepts exactly the JSON the json_report writer emits
 * (an array of flat objects with string and number values); it is not
 * a general JSON library and rejects anything nested.
 */

#ifndef BOP_HARNESS_BENCH_DIFF_HH
#define BOP_HARNESS_BENCH_DIFF_HH

#include <istream>
#include <map>
#include <string>
#include <vector>

namespace bop
{

/** One parsed run record: flat string and numeric fields. */
struct ParsedRunRecord
{
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;

    /** Identity of the run inside an artifact:
     *  "workload | config | trace_source". A missing or empty
     *  trace_source reads as "generator" so pre-trace_source
     *  artifacts keep matching modern ones. */
    std::string key() const;

    /** True for error records (farm error records and serve rejection
     *  objects both carry an "error" string field). Error records
     *  carry no simulated metrics: the differ pairs them by job_index
     *  instead of comparing IPC/coverage/throughput. */
    bool isError() const { return strings.count("error") != 0; }
};

/**
 * Parse a json_report-style array of flat records. Throws
 * std::runtime_error (with a character offset) on malformed input.
 */
std::vector<ParsedRunRecord> parseRunRecords(std::istream &in);

/**
 * Parse a single flat JSON object ("{...}", same subset as the array
 * parser). The `bopsim --serve` front end uses this for its
 * newline-delimited job lines. Throws std::runtime_error on
 * malformed input or trailing garbage after the object.
 */
ParsedRunRecord parseFlatRecord(std::istream &in);

/**
 * Parse a records file: either a json_report array artifact or an
 * NDJSON stream (one flat object per line — the `bopsim --serve`
 * output shape), sniffed from the first non-space character. Throws
 * when the file cannot be read or a record is malformed — except a
 * malformed FINAL line of an NDJSON stream, the signature of a
 * producer that crashed (or was cut off) mid-record: that line is
 * dropped, the surviving records are returned, and when @p warning is
 * non-null it receives a one-line description naming the line number.
 * Blank lines and serve rejection objects ({"error", "line"}) parse
 * fine and simply diff as metric-less records.
 */
std::vector<ParsedRunRecord>
parseRunRecordsFile(const std::string &path,
                    std::string *warning = nullptr);

/** Thresholds for flagging a metric movement as a regression. */
struct BenchDiffOptions
{
    double ipcRelative = 0.02;      ///< |ΔIPC| / old IPC
    double coverageAbsolute = 0.02; ///< |Δ prefetch_coverage|
    double dramRelative = 0.05;     ///< |Δ dram_per_1k_instr| / old
    /**
     * Relative drop in sim_mcycles_per_s (engine throughput) before a
     * run is flagged. One-sided — getting faster is never a
     * regression — and compared only when both artifacts carry a
     * non-zero measurement (older artifacts predate the field, and
     * CI machine noise dwarfs the simulated-metric thresholds, hence
     * the deliberately loose default). Set <= 0 to disable.
     */
    double throughputDropRelative = 0.5;
};

/** One flagged metric movement. */
struct BenchDelta
{
    std::string key;    ///< run identity (ParsedRunRecord::key())
    std::string metric; ///< "ipc", "prefetch_coverage", ...
    double oldValue = 0.0;
    double newValue = 0.0;
    double delta = 0.0; ///< newValue - oldValue
};

/** Two error records paired by job_index whose failure kind differs —
 *  a behavioural change (e.g. a timeout became an io error) that must
 *  not hide inside an otherwise-clean metric diff. */
struct ErrorKindMismatch
{
    long jobIndex = -1;
    std::string oldKind;
    std::string newKind;
};

/** Outcome of diffing two artifacts. */
struct BenchDiffResult
{
    std::vector<BenchDelta> flagged; ///< beyond-threshold movements
    std::vector<std::string> onlyOld; ///< runs that disappeared
    std::vector<std::string> onlyNew; ///< runs that appeared
    std::size_t compared = 0;         ///< success runs present in both

    /** Error records (isError()) are excluded from the metric
     *  comparisons above and paired by job_index instead. */
    std::size_t errorsCompared = 0; ///< error pairs present in both
    std::vector<ErrorKindMismatch> errorMismatches; ///< kind changed
    std::vector<std::string> errorOnlyOld; ///< "job N (kind)" gone
    std::vector<std::string> errorOnlyNew; ///< "job N (kind)" appeared

    bool clean() const
    {
        return flagged.empty() && errorMismatches.empty();
    }
};

/** Compare two artifacts run-by-run (matched on key()). */
BenchDiffResult diffRunRecords(const std::vector<ParsedRunRecord> &oldRecords,
                               const std::vector<ParsedRunRecord> &newRecords,
                               const BenchDiffOptions &options);

} // namespace bop

#endif // BOP_HARNESS_BENCH_DIFF_HH
