/**
 * @file
 * `bopsim --serve`: a batch simulation service front end.
 *
 * Reads newline-delimited JSON job objects from a stream (stdin, or a
 * socket bridged to stdin via `nc`/`socat`), schedules them on the
 * sweep farm's worker pool with bounded in-flight backpressure, and
 * streams one run-record JSON object back per job as it completes.
 * This is the "thousands of submitted jobs" shape from the roadmap:
 * the reader thread blocks on TaskPool::submit when the backlog is
 * full, so memory stays bounded no matter how long the job stream is.
 *
 * Job object subset (flat strings/numbers, same grammar bench_diff
 * parses; only "workload" is required):
 *
 *   {"workload": "462.libquantum", "prefetcher": "bo", "cores": 2,
 *    "page": "4m", "seed": 7, "warmup": 20000, "instr": 80000}
 *
 * Responses carry `job_index` (the job's ordinal among accepted lines
 * — deterministic, scheduling-independent) and arrive in completion
 * order. Malformed lines are rejected with a diagnostic on @p diag
 * and an {"error", "kind": "parse", "line"} object on the response
 * stream; accepted jobs that fail mid-simulation answer with the
 * {"error", "kind", "detail", "job_index", "line"} error object
 * (docs/ROBUSTNESS.md). Either way the batch keeps going. Duplicate
 * design points within a batch simulate once (the runner's in-flight
 * latch) but still answer one record each.
 */

#ifndef BOP_HARNESS_SERVE_HH
#define BOP_HARNESS_SERVE_HH

#include <atomic>
#include <istream>
#include <ostream>
#include <string>

#include "harness/experiment.hh"

namespace bop
{

/** Parse an L2 prefetcher name (bopsim's --prefetcher vocabulary). */
bool parseL2PrefetcherName(const std::string &name,
                           L2PrefetcherKind &kind);

/** Scheduling knobs for one serve session. */
struct ServeOptions
{
    int jobs = 1;            ///< worker threads
    std::size_t backlog = 0; ///< in-flight bound (0 means 4 * jobs)
    Budget defaultBudget;    ///< for jobs without warmup/instr fields

    /**
     * Graceful-drain trigger: when non-null and set (by a SIGINT/
     * SIGTERM handler), the reader stops accepting new lines, the
     * in-flight jobs finish and answer, and serveLoop returns as if
     * the input had hit EOF.
     */
    const std::atomic<bool> *stopRequested = nullptr;
};

/**
 * Run the service loop until @p in hits EOF (or options.stopRequested
 * is raised), then drain gracefully — every accepted job answers.
 * A job that fails (simulation error, deadline, injected fault)
 * answers with the error object {"error", "kind", "detail",
 * "job_index", "attempts", "line"} (docs/ROBUSTNESS.md) while the
 * rest of the batch keeps running; a transient failure ("io") retries
 * in place up to runner.retries() more times with exponential backoff
 * before answering. Always prints a final summary line to @p diag:
 * `serve: <A> accepted, <R> rejected, <F> failed, <T> retried,
 * <J> replayed` — T counts retry attempts, J counts jobs answered
 * from a journal replay (--resume) instead of simulation — so
 * unattended logs are auditable. Returns the number of rejected or
 * failed jobs (0 = clean batch; bopsim exits nonzero otherwise).
 */
int serveLoop(std::istream &in, std::ostream &out,
              ExperimentRunner &runner, const ServeOptions &options,
              std::ostream &diag);

} // namespace bop

#endif // BOP_HARNESS_SERVE_HH
