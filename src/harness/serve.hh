/**
 * @file
 * `bopsim --serve`: a batch simulation service front end.
 *
 * Reads newline-delimited JSON job objects from a stream (stdin, or a
 * socket bridged to stdin via `nc`/`socat`), schedules them on the
 * sweep farm's worker pool with bounded in-flight backpressure, and
 * streams one run-record JSON object back per job as it completes.
 * This is the "thousands of submitted jobs" shape from the roadmap:
 * the reader thread blocks on TaskPool::submit when the backlog is
 * full, so memory stays bounded no matter how long the job stream is.
 *
 * Job object subset (flat strings/numbers, same grammar bench_diff
 * parses; only "workload" is required):
 *
 *   {"workload": "462.libquantum", "prefetcher": "bo", "cores": 2,
 *    "page": "4m", "seed": 7, "warmup": 20000, "instr": 80000}
 *
 * Responses carry `job_index` (the job's ordinal among accepted lines
 * — deterministic, scheduling-independent) and arrive in completion
 * order. Malformed lines are rejected with a diagnostic on @p diag
 * and an {"error", "line"} object on the response stream; the batch
 * keeps going. Duplicate design points within a batch simulate once
 * (the runner's in-flight latch) but still answer one record each.
 */

#ifndef BOP_HARNESS_SERVE_HH
#define BOP_HARNESS_SERVE_HH

#include <istream>
#include <ostream>
#include <string>

#include "harness/experiment.hh"

namespace bop
{

/** Parse an L2 prefetcher name (bopsim's --prefetcher vocabulary). */
bool parseL2PrefetcherName(const std::string &name,
                           L2PrefetcherKind &kind);

/** Scheduling knobs for one serve session. */
struct ServeOptions
{
    int jobs = 1;            ///< worker threads
    std::size_t backlog = 0; ///< in-flight bound (0 means 4 * jobs)
    Budget defaultBudget;    ///< for jobs without warmup/instr fields
};

/**
 * Run the service loop until @p in hits EOF, then drain gracefully.
 * Returns the number of rejected or failed jobs (0 = clean batch).
 */
int serveLoop(std::istream &in, std::ostream &out,
              ExperimentRunner &runner, const ServeOptions &options,
              std::ostream &diag);

} // namespace bop

#endif // BOP_HARNESS_SERVE_HH
