/**
 * @file
 * Experiment harness shared by all bench binaries.
 *
 * Provides the paper's six baseline configurations (1/2/4 active cores
 * x 4KB/4MB pages, Sec. 5.1), workload/trace assembly (core 0 runs the
 * benchmark; other active cores run the cache-thrashing
 * micro-benchmark), instruction budgets (overridable through the
 * BOP_WARMUP / BOP_INSTR environment variables), and a memoising runner
 * so figures that share baselines do not re-simulate them.
 *
 * The runner is thread-safe: the sweep farm (sweep_farm.hh) and the
 * `bopsim --serve` front end call it from worker threads. A single
 * mutex guards the memo cache and record vector, and a per-key
 * in-flight latch makes concurrent run() calls for the same design
 * point simulate it exactly once (late arrivals block until the
 * winner commits).
 */

#ifndef BOP_HARNESS_EXPERIMENT_HH
#define BOP_HARNESS_EXPERIMENT_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/json_report.hh"
#include "sim/config.hh"
#include "sim/system.hh"

namespace bop
{

/** Instruction budgets for one simulation run. */
struct Budget
{
    std::uint64_t warmup = 100000;
    std::uint64_t measure = 400000;

    /** Defaults overridden by BOP_WARMUP / BOP_INSTR. */
    static Budget fromEnv();
};

/**
 * The paper's baseline: next-line L2 prefetcher, 5P L3 policy, DL1
 * stride prefetcher on. Any core count is accepted; beyond the paper's
 * 4-core chip the channel count is scaled so each channel keeps
 * serving at most 2 cores (8 cores -> 4 channels, 16 -> 8).
 */
SystemConfig baselineConfig(int cores, PageSize page);

/** All six (cores, page) baseline combinations, in paper order. */
std::vector<std::pair<int, PageSize>> baselineGrid();

/**
 * Core counts for contention/scaling studies: the paper's 1/2/4 plus
 * the beyond-paper 8 and 16 (Shakerinava et al., arXiv:2009.00715,
 * motivate revisiting prefetcher interference at server core counts).
 */
std::vector<int> scalingCoreCounts();

/** Human-readable label like "1-core/4KB". */
std::string gridLabel(int cores, PageSize page);

/** Unique key of a configuration (for memoisation). */
std::string configFingerprint(const SystemConfig &cfg);

/** Assemble traces: benchmark on core 0, thrashers elsewhere. */
std::vector<std::unique_ptr<TraceSource>>
makeTraces(const std::string &benchmark, const SystemConfig &cfg);

/** Memoising, thread-safe simulation runner. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(Budget budget_ = Budget::fromEnv())
        : budget(budget_), shareWarmup(sharingFromEnv()),
          jobTimeout(timeoutFromEnv())
    {
    }

    /** Run (or recall) one benchmark under one configuration. */
    const RunStats &run(const std::string &benchmark,
                        const SystemConfig &cfg);

    /**
     * Same, with an explicit per-job budget (the --serve front end
     * carries budgets per job line) and the full memoised record.
     * Safe to call concurrently: the in-flight latch guarantees each
     * distinct (benchmark, config, budget) simulates exactly once.
     */
    const RunRecord &run(const std::string &benchmark,
                         const SystemConfig &cfg, const Budget &b);

    /** Same, with an explicit warmup-prefix-sharing choice for this
     *  job (overriding the runner-wide setting). */
    const RunRecord &run(const std::string &benchmark,
                         const SystemConfig &cfg, const Budget &b,
                         bool share_warmup);

    /** Speedup of @p cfg over @p base for one benchmark (IPC ratio). */
    double speedup(const std::string &benchmark, const SystemConfig &cfg,
                   const SystemConfig &base);

    /** Geometric-mean speedup over a set of benchmarks. */
    double geomeanSpeedup(const std::vector<std::string> &benchmarks,
                          const SystemConfig &cfg,
                          const SystemConfig &base);

    const Budget &budgets() const { return budget; }

    /**
     * Warmup-prefix sharing: when enabled, jobs sharing a (benchmark,
     * config, warmup budget) prefix simulate the warmup exactly once —
     * the first arrival saves an in-memory checkpoint at the
     * measurement boundary, later arrivals restore it and only pay
     * the measurement window. Bit-identity of checkpoint restore
     * (tests/test_checkpoint.cc) guarantees the resulting stats equal
     * a cold run's. Default: off, or the BOP_CKPT_SHARE environment
     * variable (unset/"0" = off, anything else = on).
     */
    void setCheckpointSharing(bool on) { shareWarmup = on; }
    bool checkpointSharing() const { return shareWarmup; }

    /**
     * Per-job wall-clock deadline in seconds (0 = none). A job still
     * simulating past it throws JobTimeout, which the farm/serve
     * layers convert into a per-job error record while the rest of
     * the batch keeps running. Default: off, or BOP_JOB_TIMEOUT
     * seconds; `bopsim --serve --job-timeout` sets it per session.
     */
    void setJobTimeout(double seconds) { jobTimeout = seconds; }
    double jobTimeoutSeconds() const { return jobTimeout; }

    /**
     * Warmup prefixes actually simulated so far (each shared prefix
     * counts once, however many jobs consumed it). Only read this
     * when no jobs are in flight.
     */
    std::uint64_t prefixSimulations() const
    {
        std::lock_guard<std::mutex> lk(m);
        return prefixSims;
    }

    /** Memo key of one design point (benchmark, config, budget). */
    static std::string runKey(const std::string &benchmark,
                              const SystemConfig &cfg, const Budget &b);

    /**
     * Memo key under this runner's own budget and sharing mode. The
     * sharing marker keeps warm-shared records from ever aliasing
     * cold ones in the memo cache (their stats are bit-identical,
     * but their `checkpoint` provenance field is not).
     */
    std::string
    runKey(const std::string &benchmark, const SystemConfig &cfg) const
    {
        return jobKey(benchmark, cfg, budget, shareWarmup);
    }

    /** Cached record for @p key, or nullptr (pointer stays valid). */
    const RunRecord *memoised(const std::string &key) const;

    /**
     * Next farm job index (monotone per runner). Reserved at
     * submission time so job_index depends only on submission order,
     * never on worker scheduling.
     */
    long reserveJobIndex();

    /**
     * Simulate one design point without touching any shared state:
     * the leaf the sweep farm runs on worker threads. Returns a
     * record with stats, threads and wall clock filled in; memo/
     * record bookkeeping is the caller's job (commitJob()).
     */
    RunRecord simulateRecord(const std::string &benchmark,
                             const SystemConfig &cfg,
                             const Budget &b) const
    {
        return simulateRecord(benchmark, cfg, b, shareWarmup);
    }

    /** Same, with an explicit warmup-prefix-sharing choice. */
    RunRecord simulateRecord(const std::string &benchmark,
                             const SystemConfig &cfg, const Budget &b,
                             bool share_warmup) const;

    RunRecord
    simulateRecord(const std::string &benchmark,
                   const SystemConfig &cfg) const
    {
        return simulateRecord(benchmark, cfg, budget);
    }

    /** Commit a farm job: append its record and memoise it under key. */
    void commitJob(const std::string &key, RunRecord record);

    /**
     * Commit a failed farm job: append its error record (see
     * RunRecord::errored()) WITHOUT memoising — failures are never
     * cached, so resubmitting the design point re-simulates it.
     */
    void commitError(RunRecord record);

    /**
     * One record per actual (non-memoised) simulation, in commit
     * order. Only read this when no jobs are in flight (after a farm
     * drain / worker join); the reference bypasses the runner lock.
     */
    const std::vector<RunRecord> &records() const { return runRecords; }

    /** Append a record produced outside run() (e.g. direct System use). */
    void addRecord(RunRecord record)
    {
        std::lock_guard<std::mutex> lk(m);
        runRecords.push_back(std::move(record));
    }

    /** Write all records to @p path as JSON (see json_report.hh). */
    bool writeJson(const std::string &path) const
    {
        std::lock_guard<std::mutex> lk(m);
        return writeRunRecordsFile(path, runRecords);
    }

  private:
    /** Memo key including the warmup-sharing marker. */
    static std::string
    jobKey(const std::string &benchmark, const SystemConfig &cfg,
           const Budget &b, bool share_warmup)
    {
        return runKey(benchmark, cfg, b) +
               (share_warmup ? "##ckpt-share" : "");
    }

    /** Shared-warmup-prefix cache key. */
    static std::string prefixKey(const std::string &benchmark,
                                 const SystemConfig &cfg,
                                 const Budget &b);

    /** BOP_CKPT_SHARE default: unset or "0" = off. */
    static bool sharingFromEnv();

    /** BOP_JOB_TIMEOUT seconds, 0 when unset. */
    static double timeoutFromEnv();

    Budget budget;
    bool shareWarmup = false;  ///< ctor reads BOP_CKPT_SHARE
    double jobTimeout = 0.0;   ///< ctor reads BOP_JOB_TIMEOUT

    mutable std::mutex m;
    /** Latch release / cache commit; also the prefix latch. Mutable:
     *  simulateRecord() is const but waits on shared prefixes. */
    mutable std::condition_variable cv;
    std::set<std::string> inflight; ///< keys being simulated right now
    std::map<std::string, RunRecord> cache;
    std::vector<RunRecord> runRecords;
    long nextJobIndex = 0;

    /**
     * Warm-state bytes per prefix key. Node-stable (std::map, never
     * erased): consumers hold pointers into it outside the lock.
     */
    mutable std::map<std::string, std::vector<std::uint8_t>> prefixCache;
    mutable std::set<std::string> prefixInflight;
    mutable std::uint64_t prefixSims = 0;
};

} // namespace bop

#endif // BOP_HARNESS_EXPERIMENT_HH
