/**
 * @file
 * Experiment harness shared by all bench binaries.
 *
 * Provides the paper's six baseline configurations (1/2/4 active cores
 * x 4KB/4MB pages, Sec. 5.1), workload/trace assembly (core 0 runs the
 * benchmark; other active cores run the cache-thrashing
 * micro-benchmark), instruction budgets (overridable through the
 * BOP_WARMUP / BOP_INSTR environment variables), and a memoising runner
 * so figures that share baselines do not re-simulate them.
 *
 * The runner is thread-safe: the sweep farm (sweep_farm.hh) and the
 * `bopsim --serve` front end call it from worker threads. A single
 * mutex guards the memo cache and record vector, and a per-key
 * in-flight latch makes concurrent run() calls for the same design
 * point simulate it exactly once (late arrivals block until the
 * winner commits).
 */

#ifndef BOP_HARNESS_EXPERIMENT_HH
#define BOP_HARNESS_EXPERIMENT_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "harness/journal.hh"
#include "harness/json_report.hh"
#include "sim/config.hh"
#include "sim/system.hh"

namespace bop
{

/** Instruction budgets for one simulation run. */
struct Budget
{
    std::uint64_t warmup = 100000;
    std::uint64_t measure = 400000;

    /** Defaults overridden by BOP_WARMUP / BOP_INSTR. */
    static Budget fromEnv();
};

/**
 * The paper's baseline: next-line L2 prefetcher, 5P L3 policy, DL1
 * stride prefetcher on. Any core count is accepted; beyond the paper's
 * 4-core chip the channel count is scaled so each channel keeps
 * serving at most 2 cores (8 cores -> 4 channels, 16 -> 8).
 */
SystemConfig baselineConfig(int cores, PageSize page);

/** All six (cores, page) baseline combinations, in paper order. */
std::vector<std::pair<int, PageSize>> baselineGrid();

/**
 * Core counts for contention/scaling studies: the paper's 1/2/4 plus
 * the beyond-paper 8 and 16 (Shakerinava et al., arXiv:2009.00715,
 * motivate revisiting prefetcher interference at server core counts).
 */
std::vector<int> scalingCoreCounts();

/** Human-readable label like "1-core/4KB". */
std::string gridLabel(int cores, PageSize page);

/** Unique key of a configuration (for memoisation). */
std::string configFingerprint(const SystemConfig &cfg);

/** Assemble traces: benchmark on core 0, thrashers elsewhere. */
std::vector<std::unique_ptr<TraceSource>>
makeTraces(const std::string &benchmark, const SystemConfig &cfg);

/** Memoising, thread-safe simulation runner. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(Budget budget_ = Budget::fromEnv())
        : budget(budget_), shareWarmup(sharingFromEnv()),
          jobTimeout(timeoutFromEnv()), retries_(retriesFromEnv()),
          retryBackoffBase(backoffFromEnv()), ckptDir(ckptDirFromEnv())
    {
    }

    /** Run (or recall) one benchmark under one configuration. */
    const RunStats &run(const std::string &benchmark,
                        const SystemConfig &cfg);

    /**
     * Same, with an explicit per-job budget (the --serve front end
     * carries budgets per job line) and the full memoised record.
     * Safe to call concurrently: the in-flight latch guarantees each
     * distinct (benchmark, config, budget) simulates exactly once.
     */
    const RunRecord &run(const std::string &benchmark,
                         const SystemConfig &cfg, const Budget &b);

    /** Same, with an explicit warmup-prefix-sharing choice for this
     *  job (overriding the runner-wide setting). */
    const RunRecord &run(const std::string &benchmark,
                         const SystemConfig &cfg, const Budget &b,
                         bool share_warmup);

    /** Speedup of @p cfg over @p base for one benchmark (IPC ratio). */
    double speedup(const std::string &benchmark, const SystemConfig &cfg,
                   const SystemConfig &base);

    /** Geometric-mean speedup over a set of benchmarks. */
    double geomeanSpeedup(const std::vector<std::string> &benchmarks,
                          const SystemConfig &cfg,
                          const SystemConfig &base);

    const Budget &budgets() const { return budget; }

    /**
     * Warmup-prefix sharing: when enabled, jobs sharing a (benchmark,
     * config, warmup budget) prefix simulate the warmup exactly once —
     * the first arrival saves an in-memory checkpoint at the
     * measurement boundary, later arrivals restore it and only pay
     * the measurement window. Bit-identity of checkpoint restore
     * (tests/test_checkpoint.cc) guarantees the resulting stats equal
     * a cold run's. Default: off, or the BOP_CKPT_SHARE environment
     * variable (unset/"0" = off, anything else = on).
     */
    void setCheckpointSharing(bool on) { shareWarmup = on; }
    bool checkpointSharing() const { return shareWarmup; }

    /**
     * Per-job wall-clock deadline in seconds (0 = none). A job still
     * simulating past it throws JobTimeout, which the farm/serve
     * layers convert into a per-job error record while the rest of
     * the batch keeps running. Default: off, or BOP_JOB_TIMEOUT
     * seconds; `bopsim --serve --job-timeout` sets it per session.
     */
    void setJobTimeout(double seconds) { jobTimeout = seconds; }
    double jobTimeoutSeconds() const { return jobTimeout; }

    /**
     * Bounded retry for transient failures (`--retries N` /
     * BOP_RETRIES): a job whose error kind is transient
     * (transientFaultKind(), currently "io") is re-enqueued through
     * the never-memoise path up to N more times with exponential
     * backoff; records carry the final `attempts` count. Deterministic
     * failure kinds (timeout/checkpoint/simulation) never retry —
     * docs/ROBUSTNESS.md has the decision table.
     */
    void setRetries(int n) { retries_ = n < 0 ? 0 : n; }
    int retries() const { return retries_; }

    /**
     * Backoff before retry attempt @p attempt (2 = first retry):
     * base * 2^(attempt-2) seconds, base 50 ms or BOP_RETRY_BACKOFF.
     */
    double retryBackoffSeconds(int attempt) const
    {
        double backoff = retryBackoffBase;
        for (int i = 2; i < attempt; ++i)
            backoff *= 2.0;
        return backoff;
    }

    /**
     * Attach a write-ahead result journal (`--journal FILE`): every
     * committed run/error record is appended with fsync-on-commit
     * framing before the farm acknowledges it (journal.hh). Throws on
     * open failure or a budget mismatch with an existing journal.
     */
    void attachJournal(const std::string &path)
    {
        journal.open(path, budget.warmup, budget.measure);
    }

    /**
     * Replay a journal into the memo (`--resume FILE`): journaled
     * success records become memo hits (flagged journalReplayed) and
     * both success and error records become pending replays the farm
     * commits verbatim instead of re-simulating, so a killed sweep
     * resumed under the same config produces byte-identical final
     * output (timing fields aside). Config drift is refused with a
     * named mismatch: budgets via the journal header, everything else
     * via the fingerprint-bearing memo key (a drifted design point
     * simply never matches and re-simulates). Returns the number of
     * replayed entries.
     */
    std::size_t resumeFromJournal(const std::string &path,
                                  std::ostream &diag);

    /**
     * Claim the pending replay for @p key, if any (last journal entry
     * wins). The farm calls this before considering simulation; a
     * claimed record is gone, so a key replays into the record stream
     * exactly once per resume.
     */
    bool consumeReplayed(const std::string &key, RunRecord &out);

    /** Entries loaded by resumeFromJournal() (consumed or not). */
    std::uint64_t replayedCount() const
    {
        std::lock_guard<std::mutex> lk(m);
        return replayCount;
    }

    /**
     * Disk-backed checkpoint cache directory (BOP_CKPT_DIR): shared
     * warmup prefixes are persisted atomically (tmp+fsync+rename)
     * under their (workload, config fingerprint, warmup budget) key
     * and reloaded across processes — the in-memory warmup-prefix
     * latch, promoted to disk. Corrupt or mismatched entries are
     * refused (validate-before-apply, byte-offset diagnostics) and
     * fall back to a cold warmup that overwrites the entry. Empty
     * disables. Only consulted when checkpoint sharing is on.
     */
    void setCheckpointDir(const std::string &dir) { ckptDir = dir; }
    const std::string &checkpointDir() const { return ckptDir; }

    /**
     * Warmup prefixes actually simulated so far (each shared prefix
     * counts once, however many jobs consumed it). Only read this
     * when no jobs are in flight.
     */
    std::uint64_t prefixSimulations() const
    {
        std::lock_guard<std::mutex> lk(m);
        return prefixSims;
    }

    /** Memo key of one design point (benchmark, config, budget). */
    static std::string runKey(const std::string &benchmark,
                              const SystemConfig &cfg, const Budget &b);

    /**
     * Memo key under this runner's own budget and sharing mode. The
     * sharing marker keeps warm-shared records from ever aliasing
     * cold ones in the memo cache (their stats are bit-identical,
     * but their `checkpoint` provenance field is not).
     */
    std::string
    runKey(const std::string &benchmark, const SystemConfig &cfg) const
    {
        return jobKey(benchmark, cfg, budget, shareWarmup);
    }

    /** Cached record for @p key, or nullptr (pointer stays valid). */
    const RunRecord *memoised(const std::string &key) const;

    /**
     * Next farm job index (monotone per runner). Reserved at
     * submission time so job_index depends only on submission order,
     * never on worker scheduling.
     */
    long reserveJobIndex();

    /**
     * Simulate one design point without touching any shared state:
     * the leaf the sweep farm runs on worker threads. Returns a
     * record with stats, threads and wall clock filled in; memo/
     * record bookkeeping is the caller's job (commitJob()).
     */
    RunRecord simulateRecord(const std::string &benchmark,
                             const SystemConfig &cfg,
                             const Budget &b) const
    {
        return simulateRecord(benchmark, cfg, b, shareWarmup);
    }

    /** Same, with an explicit warmup-prefix-sharing choice. */
    RunRecord simulateRecord(const std::string &benchmark,
                             const SystemConfig &cfg, const Budget &b,
                             bool share_warmup) const;

    RunRecord
    simulateRecord(const std::string &benchmark,
                   const SystemConfig &cfg) const
    {
        return simulateRecord(benchmark, cfg, budget);
    }

    /** Commit a farm job: append its record and memoise it under key
     *  (and journal it, unless it was itself replayed from the
     *  journal). */
    void commitJob(const std::string &key, RunRecord record);

    /**
     * Commit a failed farm job: append its error record (see
     * RunRecord::errored()) WITHOUT memoising — failures are never
     * cached, so resubmitting the design point re-simulates it. The
     * key is journal bookkeeping only.
     */
    void commitError(const std::string &key, RunRecord record);

    /**
     * One record per actual (non-memoised) simulation, in commit
     * order. Only read this when no jobs are in flight (after a farm
     * drain / worker join); the reference bypasses the runner lock.
     */
    const std::vector<RunRecord> &records() const { return runRecords; }

    /** Append a record produced outside run() (e.g. direct System use). */
    void addRecord(RunRecord record)
    {
        std::lock_guard<std::mutex> lk(m);
        runRecords.push_back(std::move(record));
    }

    /** Write all records to @p path as JSON (see json_report.hh). */
    bool writeJson(const std::string &path) const
    {
        std::lock_guard<std::mutex> lk(m);
        return writeRunRecordsFile(path, runRecords);
    }

  private:
    /** Memo key including the warmup-sharing marker. */
    static std::string
    jobKey(const std::string &benchmark, const SystemConfig &cfg,
           const Budget &b, bool share_warmup)
    {
        return runKey(benchmark, cfg, b) +
               (share_warmup ? "##ckpt-share" : "");
    }

    /** Shared-warmup-prefix cache key. */
    static std::string prefixKey(const std::string &benchmark,
                                 const SystemConfig &cfg,
                                 const Budget &b);

    /** BOP_CKPT_SHARE default: unset or "0" = off. */
    static bool sharingFromEnv();

    /** BOP_JOB_TIMEOUT seconds, 0 when unset. */
    static double timeoutFromEnv();

    /** BOP_RETRIES, 0 when unset. */
    static int retriesFromEnv();

    /** BOP_RETRY_BACKOFF seconds, 0.05 when unset. */
    static double backoffFromEnv();

    /** BOP_CKPT_DIR, empty when unset. */
    static std::string ckptDirFromEnv();

    /** Journal-append one committed record; no-op when detached or
     *  when the record was itself replayed from the journal. */
    void journalCommit(const std::string &key, const RunRecord &record)
    {
        if (journal.isOpen() && !record.journalReplayed)
            journal.append(key, record);
    }

    /**
     * Disk checkpoint-cache entry for @p pkey, or false. Throws
     * CheckpointError (byte-offset diagnostics) on a corrupt or
     * key-mismatched entry — validate-before-apply, the caller falls
     * back to a cold warmup.
     */
    bool loadCacheEntry(const std::string &pkey,
                        std::vector<std::uint8_t> &container) const;

    /** Persist a warm prefix atomically (tmp+fsync+rename);
     *  best-effort — failures warn on stderr, the cache is only an
     *  optimisation. */
    void saveCacheEntry(const std::string &pkey,
                        const std::vector<std::uint8_t> &container) const;

    /** Cache-entry file path for a prefix key (FNV-1a name). */
    std::string cacheEntryPath(const std::string &pkey) const;

    Budget budget;
    bool shareWarmup = false;  ///< ctor reads BOP_CKPT_SHARE
    double jobTimeout = 0.0;   ///< ctor reads BOP_JOB_TIMEOUT
    int retries_ = 0;          ///< ctor reads BOP_RETRIES
    double retryBackoffBase = 0.05; ///< ctor reads BOP_RETRY_BACKOFF
    std::string ckptDir;       ///< ctor reads BOP_CKPT_DIR

    mutable std::mutex m;
    /** Latch release / cache commit; also the prefix latch. Mutable:
     *  simulateRecord() is const but waits on shared prefixes. */
    mutable std::condition_variable cv;
    std::set<std::string> inflight; ///< keys being simulated right now
    std::map<std::string, RunRecord> cache;
    std::vector<RunRecord> runRecords;
    long nextJobIndex = 0;

    ResultJournal journal; ///< write-ahead record log (--journal)
    /** Journal entries awaiting their submission slot (--resume);
     *  consumeReplayed() pops them. */
    std::map<std::string, RunRecord> replayed;
    std::uint64_t replayCount = 0;

    /**
     * Warm-state bytes per prefix key. Node-stable (std::map, never
     * erased): consumers hold pointers into it outside the lock.
     */
    mutable std::map<std::string, std::vector<std::uint8_t>> prefixCache;
    mutable std::set<std::string> prefixInflight;
    mutable std::uint64_t prefixSims = 0;
};

} // namespace bop

#endif // BOP_HARNESS_EXPERIMENT_HH
