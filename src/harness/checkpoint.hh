/**
 * @file
 * Checkpoint container format constants and helpers.
 *
 * A checkpoint captures the complete warm microarchitectural state of
 * a System — caches with replacement metadata, MSHRs, fill/prefetch
 * queues, TLBs, prefetcher tables, DRAM controller state, core ROBs,
 * RNG streams and per-component clocks — so a measurement window can
 * resume from it bit-identically to an uninterrupted run.
 *
 * Container layout (everything little-endian; the normative byte-level
 * specification with a hexdump example is docs/CHECKPOINT_FORMAT.md):
 *
 *   offset 0   8 bytes  magic "BOPCKPT1"
 *   offset 8   u32      format version (currently 1)
 *   offset 12  u64      topology fingerprint
 *   offset 20  u32      section count
 *   then per section:
 *              4 bytes  ASCII section tag
 *              u64      payload length in bytes
 *              u32      CRC-32 of the payload
 *              ...      payload
 *
 * Sections (fixed order): "META" (save-time clock), "TRAC" (trace
 * source positions), "CORE" (per-core state), "HIER" (caches and
 * queues), "DRAM" (memory controllers). The header and every
 * section's CRC are validated before any section is applied, so a
 * corrupted checkpoint can never leave a System partially restored.
 *
 * The topology fingerprint hashes configFingerprint() plus the trace
 * names; it deliberately excludes numThreads and the fast-forward
 * toggle — both are host-side speed knobs under the determinism
 * contract, and a checkpoint must restore across them.
 *
 * The save/restore entry points are System member functions
 * (System::saveCheckpoint / restoreCheckpoint, declared in
 * sim/system.hh) whose definitions live in checkpoint.cc.
 */

#ifndef BOP_HARNESS_CHECKPOINT_HH
#define BOP_HARNESS_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>

namespace bop
{

class System;

/** Magic bytes at the start of every checkpoint. */
constexpr char checkpointMagic[8] = {'B', 'O', 'P', 'C', 'K', 'P',
                                     'T', '1'};

/** Current checkpoint format version. */
constexpr std::uint32_t checkpointVersion = 1;

/** Fixed header size: magic + version + fingerprint + section count. */
constexpr std::size_t checkpointHeaderBytes = 8 + 4 + 8 + 4;

/** Per-section header size: tag + payload length + CRC. */
constexpr std::size_t checkpointSectionHeaderBytes = 4 + 8 + 4;

/** Number of sections in a version-1 checkpoint. */
constexpr std::uint32_t checkpointSectionCount = 5;

/**
 * Topology fingerprint of a System: a splitmix64 chain over the
 * config fingerprint string and the trace names. Exposed for the
 * format tests.
 */
std::uint64_t checkpointFingerprint(System &sys);

} // namespace bop

#endif // BOP_HARNESS_CHECKPOINT_HH
