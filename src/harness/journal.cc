#include "harness/journal.hh"

#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include "common/fault.hh"
#include "common/serializer.hh"
#include "harness/bench_diff.hh"

namespace bop
{

namespace
{

/** " @crc32=" + 8 hex digits. */
constexpr std::size_t trailerSize = 16;
constexpr char trailerTag[] = " @crc32=";

std::string
hexU32(std::uint32_t v)
{
    char buf[9];
    std::snprintf(buf, sizeof buf, "%08x", v);
    return buf;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    return -1;
}

/** Required lookups into a parsed payload; throw naming the field so
 *  a hand-edited or foreign line never decodes into a half-empty
 *  record. */
const std::string &
needString(const ParsedRunRecord &fields, const std::string &key)
{
    auto it = fields.strings.find(key);
    if (it == fields.strings.end())
        throw std::runtime_error("missing string field \"" + key + "\"");
    return it->second;
}

double
needNumber(const ParsedRunRecord &fields, const std::string &key)
{
    auto it = fields.numbers.find(key);
    if (it == fields.numbers.end())
        throw std::runtime_error("missing numeric field \"" + key + "\"");
    return it->second;
}

double
numberOr(const ParsedRunRecord &fields, const std::string &key,
         double fallback)
{
    auto it = fields.numbers.find(key);
    return it == fields.numbers.end() ? fallback : it->second;
}

} // namespace

ResultJournal::~ResultJournal()
{
    if (file)
        std::fclose(file);
}

std::string
ResultJournal::frame(const std::string &payload)
{
    const std::uint32_t crc =
        crc32(reinterpret_cast<const std::uint8_t *>(payload.data()),
              payload.size());
    return payload + trailerTag + hexU32(crc);
}

bool
ResultJournal::unframe(const std::string &line, std::string &payload,
                       std::string &error)
{
    if (line.size() < trailerSize + 2) {
        error = "line too short for a CRC trailer";
        return false;
    }
    const std::size_t split = line.size() - trailerSize;
    if (line.compare(split, sizeof trailerTag - 1, trailerTag) != 0) {
        error = "missing \" @crc32=\" trailer";
        return false;
    }
    std::uint32_t stored = 0;
    for (std::size_t i = split + sizeof trailerTag - 1; i < line.size();
         ++i) {
        const int nibble = hexNibble(line[i]);
        if (nibble < 0) {
            error = "non-hex digit in CRC trailer";
            return false;
        }
        stored = (stored << 4) | static_cast<std::uint32_t>(nibble);
    }
    const std::uint32_t computed =
        crc32(reinterpret_cast<const std::uint8_t *>(line.data()), split);
    if (stored != computed) {
        error = "CRC mismatch (stored " + hexU32(stored) + ", computed " +
                hexU32(computed) + ")";
        return false;
    }
    payload = line.substr(0, split);
    return true;
}

std::string
ResultJournal::headerPayload(std::uint64_t warmup, std::uint64_t measure)
{
    std::ostringstream oss;
    oss << "{\"journal\": \"BOPJRNL1\", \"warmup\": " << warmup
        << ", \"measure\": " << measure << "}";
    return oss.str();
}

std::string
ResultJournal::encodeStatsHex(const RunStats &stats)
{
    std::vector<std::uint8_t> bytes;
    Serializer s(bytes);
    RunStats copy = stats;
    copy.serialize(s);
    std::string hex;
    hex.reserve(bytes.size() * 2);
    static const char digits[] = "0123456789abcdef";
    for (const std::uint8_t b : bytes) {
        hex += digits[b >> 4];
        hex += digits[b & 0xf];
    }
    return hex;
}

RunStats
ResultJournal::decodeStatsHex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        throw std::runtime_error("journal_stats: odd hex length");
    std::vector<std::uint8_t> bytes;
    bytes.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hexNibble(hex[i]);
        const int lo = hexNibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            throw std::runtime_error("journal_stats: non-hex digit");
        bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    Serializer s(bytes.data(), bytes.size(), 0);
    RunStats stats;
    stats.serialize(s);
    s.finish("journal_stats");
    return stats;
}

std::string
ResultJournal::recordPayload(const std::string &key,
                             const RunRecord &record)
{
    std::ostringstream oss;
    writeRunRecord(oss, record);
    std::string payload = oss.str();
    // Splice the replay-only fields in before the closing brace: the
    // payload stays exactly the json_report grammar plus journal_key
    // (the memo key --resume replays under) and, for success records,
    // the bit-exact counter dump the human-readable fields round off.
    payload.pop_back();
    payload += ", \"journal_key\": \"" + jsonEscape(key) + "\"";
    if (!record.errored())
        payload +=
            ", \"journal_stats\": \"" + encodeStatsHex(record.stats) + "\"";
    payload += "}";
    return payload;
}

JournalEntry
ResultJournal::decodeRecordPayload(const std::string &payload)
{
    ParsedRunRecord fields;
    {
        std::istringstream is(payload);
        fields = parseFlatRecord(is);
    }

    JournalEntry entry;
    entry.key = needString(fields, "journal_key");
    RunRecord &r = entry.record;
    if (fields.strings.count("error") != 0) {
        r.errorKind = needString(fields, "kind");
        r.errorDetail = needString(fields, "detail");
        r.workload = needString(fields, "workload");
        r.config = needString(fields, "config");
        r.jobs = static_cast<int>(needNumber(fields, "jobs"));
        r.jobIndex = static_cast<long>(needNumber(fields, "job_index"));
        r.attempts = static_cast<int>(numberOr(fields, "attempts", 1.0));
        return entry;
    }

    r.workload = needString(fields, "workload");
    r.config = needString(fields, "config");
    // "generator"/"none" are the serialised spellings of empty
    // fields; keeping them verbatim re-serialises identically.
    r.traceSource = needString(fields, "trace_source");
    r.checkpoint = needString(fields, "checkpoint");
    r.stats = decodeStatsHex(needString(fields, "journal_stats"));
    r.threads = static_cast<int>(needNumber(fields, "threads"));
    r.jobs = static_cast<int>(needNumber(fields, "jobs"));
    r.jobIndex = static_cast<long>(needNumber(fields, "job_index"));
    r.attempts = static_cast<int>(numberOr(fields, "attempts", 1.0));
    r.wallSeconds = needNumber(fields, "wall_seconds");
    r.queueWaitSeconds = needNumber(fields, "queue_wait_seconds");
    return entry;
}

void
ResultJournal::writeLine(const std::string &line)
{
    FaultPlan &faults = FaultPlan::global();
    if (faults.fireCounted("journal_write_short")) {
        // Disk full mid-append: half the line lands, the commit is
        // never acknowledged. The torn line is the journal's final
        // line (this throw kills the sweep), so the next replay drops
        // it and re-simulates the job.
        std::fwrite(line.data(), 1, line.size() / 2, file);
        std::fflush(file);
        throw std::runtime_error(
            "journal: short write to '" + path_ + "' (" +
            std::to_string(line.size() / 2) + "/" +
            std::to_string(line.size()) + " bytes)");
    }
    if (faults.fireCounted("crash_hard")) {
        // kill -9 / power loss mid-commit: half the line reaches the
        // disk and the process dies on the spot — no unwinding, no
        // destructor flushes anywhere else. _exit, not exit, so the
        // torn state is exactly what a real crash leaves.
        std::fwrite(line.data(), 1, line.size() / 2, file);
        std::fflush(file);
        ::fsync(::fileno(file));
        ::_exit(137);
    }
    if (std::fwrite(line.data(), 1, line.size(), file) != line.size())
        throw std::runtime_error("journal: write to '" + path_ +
                                 "' failed");
    // fsync-on-commit: once append() returns, the record survives any
    // way this process can die.
    if (std::fflush(file) != 0 || ::fsync(::fileno(file)) != 0)
        throw std::runtime_error("journal: flush/fsync of '" + path_ +
                                 "' failed");
}

void
ResultJournal::open(const std::string &path, std::uint64_t warmup,
                    std::uint64_t measure)
{
    std::lock_guard<std::mutex> lk(m);
    if (file)
        throw std::runtime_error("journal: already open ('" + path_ +
                                 "')");

    bool needHeader = true;
    {
        std::ifstream in(path, std::ios::binary);
        std::string first;
        if (in && std::getline(in, first) && !first.empty()) {
            // Appending to an existing journal: its header must match
            // this session's budgets, or the mixed file would replay
            // records taken under a different design grid.
            std::string payload, error;
            if (!unframe(first, payload, error))
                throw std::runtime_error(
                    "journal: '" + path +
                    "' does not start with a valid header line (" +
                    error + ") — not a result journal?");
            if (payload != headerPayload(warmup, measure))
                throw std::runtime_error(
                    "journal: budget mismatch appending to '" + path +
                    "': header is " + payload + " but this run uses " +
                    headerPayload(warmup, measure) +
                    " — refusing (set BOP_WARMUP/BOP_INSTR to match or "
                    "start a fresh journal)");
            needHeader = false;
        }
    }

    file = std::fopen(path.c_str(), "ab");
    if (!file)
        throw std::runtime_error("journal: cannot open '" + path +
                                 "' for appending");
    path_ = path;
    if (needHeader)
        writeLine(frame(headerPayload(warmup, measure)) + "\n");
}

void
ResultJournal::append(const std::string &key, const RunRecord &record)
{
    std::lock_guard<std::mutex> lk(m);
    if (!file)
        return;
    writeLine(frame(recordPayload(key, record)) + "\n");
}

std::vector<JournalEntry>
ResultJournal::load(const std::string &path, std::uint64_t warmup,
                    std::uint64_t measure, std::ostream &diag)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("journal: cannot read '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    std::vector<JournalEntry> entries;
    std::size_t pos = 0;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    while (pos < text.size()) {
        const std::size_t offset = pos;
        const std::size_t nl = text.find('\n', pos);
        ++lineNo;
        if (nl == std::string::npos) {
            // Torn final line: the producer died mid-append (crash,
            // short write). PR 9's truncated-NDJSON tolerance: drop
            // it with a warning; the job it carried re-simulates.
            diag << "journal: dropping torn final line " << lineNo
                 << " of '" << path << "' (byte offset " << offset
                 << ", " << (text.size() - offset)
                 << " bytes, no newline)\n";
            break;
        }
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;

        std::string payload, error;
        if (!unframe(line, payload, error))
            throw std::runtime_error(
                "journal: '" + path + "' line " + std::to_string(lineNo) +
                " at byte offset " + std::to_string(offset) + ": " +
                error);
        if (!sawHeader) {
            if (payload != headerPayload(warmup, measure)) {
                if (payload.find("\"BOPJRNL1\"") == std::string::npos)
                    throw std::runtime_error(
                        "journal: '" + path +
                        "' header is not BOPJRNL1 — not a result "
                        "journal");
                throw std::runtime_error(
                    "journal: budget mismatch resuming from '" + path +
                    "': header is " + payload + " but this run uses " +
                    headerPayload(warmup, measure) +
                    " — refusing to resume (config drift)");
            }
            sawHeader = true;
            continue;
        }
        try {
            entries.push_back(decodeRecordPayload(payload));
        } catch (const std::exception &e) {
            throw std::runtime_error(
                "journal: '" + path + "' line " + std::to_string(lineNo) +
                " at byte offset " + std::to_string(offset) + ": " +
                e.what());
        }
    }
    if (!sawHeader && !text.empty())
        throw std::runtime_error("journal: '" + path +
                                 "' has no complete header line");
    return entries;
}

} // namespace bop
