#include "harness/experiment.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

#include "common/fault.hh"
#include "common/serializer.hh"
#include "dram/address_map.hh"
#include "trace/workloads.hh"

namespace bop
{

Budget
Budget::fromEnv()
{
    Budget b;
    if (const char *w = std::getenv("BOP_WARMUP"))
        b.warmup = std::strtoull(w, nullptr, 10);
    if (const char *m = std::getenv("BOP_INSTR"))
        b.measure = std::strtoull(m, nullptr, 10);
    return b;
}

SystemConfig
baselineConfig(int cores, PageSize page)
{
    SystemConfig cfg;
    cfg.activeCores = cores;
    cfg.pageSize = page;
    cfg.l2Prefetcher = L2PrefetcherKind::NextLine;
    cfg.l3Policy = L3PolicyKind::P5;
    cfg.dl1StridePrefetcher = true;
    // Paper topologies keep the 2-channel chip (Table 1); beyond 4
    // cores, grow the channel count so each channel serves at most 2
    // cores (8 cores -> 4 channels, 16 -> 8).
    while (cfg.numChannels * 2 < cores &&
           cfg.numChannels < maxDramChannels)
        cfg.numChannels *= 2;
    return cfg;
}

std::vector<std::pair<int, PageSize>>
baselineGrid()
{
    return {{1, PageSize::FourKB}, {2, PageSize::FourKB},
            {4, PageSize::FourKB}, {1, PageSize::FourMB},
            {2, PageSize::FourMB}, {4, PageSize::FourMB}};
}

std::vector<int>
scalingCoreCounts()
{
    return {1, 2, 4, 8, 16};
}

std::string
gridLabel(int cores, PageSize page)
{
    std::ostringstream oss;
    oss << cores << "-core/"
        << (page == PageSize::FourKB ? "4KB" : "4MB");
    return oss.str();
}

std::string
configFingerprint(const SystemConfig &cfg)
{
    std::ostringstream oss;
    oss << cfg.describe() << "|seed=" << cfg.seed
        << "|bo=" << cfg.bo.rrEntries << "," << cfg.bo.scoreMax << ","
        << cfg.bo.roundMax << "," << cfg.bo.badScore << ","
        << cfg.bo.maxOffset << "," << cfg.bo.degree << ","
        << cfg.bo.includeNegative << ","
        << cfg.bo.adaptiveBadScore << "," << cfg.bo.coverageWeight
        << "|sbp=" << cfg.sbp.evalPeriod << "," << cfg.sbp.maxActiveOffsets
        << "|fdp=" << cfg.fdp.initialLevel << "," << cfg.fdp.sampleInterval
        << "|ghb=" << cfg.ghb.adaptiveZones << ","
        << cfg.ghb.zoneLineBitsCandidates.front() << "," << cfg.ghb.degree
        << "|sbuf=" << cfg.streamBuf.buffers << "," << cfg.streamBuf.depth
        << "|dpc2=" << cfg.boDpc2.badScore << ","
        << cfg.boDpc2.delayCycles
        << "|D=" << cfg.fixedOffset;
    return oss.str();
}

std::vector<std::unique_ptr<TraceSource>>
makeTraces(const std::string &benchmark, const SystemConfig &cfg)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(makeWorkload(benchmark, cfg.seed));
    for (int c = 1; c < cfg.activeCores; ++c)
        traces.push_back(makeThrasher(cfg.seed + static_cast<unsigned>(c)));
    return traces;
}

std::string
ExperimentRunner::runKey(const std::string &benchmark,
                         const SystemConfig &cfg, const Budget &b)
{
    // Budgets are part of the design point: the --serve front end can
    // carry a different budget per job line, and memo hits must never
    // conflate a short run with a long one.
    return benchmark + "##" + configFingerprint(cfg) + "##" +
           std::to_string(b.warmup) + "+" + std::to_string(b.measure);
}

std::string
ExperimentRunner::prefixKey(const std::string &benchmark,
                            const SystemConfig &cfg, const Budget &b)
{
    // The warm state depends on everything the config fingerprint
    // covers (prefetcher choice included) plus the warmup length —
    // but NOT the measure budget, which is exactly what makes the
    // prefix shareable across jobs that differ only in it.
    return benchmark + "##" + configFingerprint(cfg) + "##warm" +
           std::to_string(b.warmup);
}

bool
ExperimentRunner::sharingFromEnv()
{
    const char *v = std::getenv("BOP_CKPT_SHARE");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

double
ExperimentRunner::timeoutFromEnv()
{
    const char *v = std::getenv("BOP_JOB_TIMEOUT");
    return v != nullptr ? std::strtod(v, nullptr) : 0.0;
}

int
ExperimentRunner::retriesFromEnv()
{
    const char *v = std::getenv("BOP_RETRIES");
    const int n = v != nullptr ? std::atoi(v) : 0;
    return n < 0 ? 0 : n;
}

double
ExperimentRunner::backoffFromEnv()
{
    const char *v = std::getenv("BOP_RETRY_BACKOFF");
    return v != nullptr ? std::strtod(v, nullptr) : 0.05;
}

std::string
ExperimentRunner::ckptDirFromEnv()
{
    const char *v = std::getenv("BOP_CKPT_DIR");
    return v != nullptr ? v : "";
}

std::string
ExperimentRunner::cacheEntryPath(const std::string &pkey) const
{
    // FNV-1a 64 of the prefix key names the file; the key itself is
    // embedded in the entry and verified on load, so a hash collision
    // can never restore the wrong warm state.
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : pkey) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.bopckpt",
                  static_cast<unsigned long long>(h));
    return ckptDir + "/" + name;
}

namespace
{
constexpr char cacheMagic[8] = {'B', 'O', 'P', 'C', 'A', 'C', 'H', '1'};
} // namespace

bool
ExperimentRunner::loadCacheEntry(const std::string &pkey,
                                 std::vector<std::uint8_t> &container) const
{
    const std::string path = cacheEntryPath(pkey);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false; // no entry: a plain cache miss, not an error
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    // Validate everything before handing anything to the caller; a
    // refused entry falls back to cold warmup (and is overwritten by
    // the fresh save), never restored.
    if (bytes.size() < sizeof cacheMagic + 4)
        throw CheckpointError("checkpoint-cache entry '" + path +
                                  "' truncated (" +
                                  std::to_string(bytes.size()) + " bytes)",
                              bytes.size());
    if (std::memcmp(bytes.data(), cacheMagic, sizeof cacheMagic) != 0)
        throw CheckpointError("checkpoint-cache entry '" + path +
                                  "' has bad magic",
                              0);
    std::uint32_t keyLen = 0;
    std::memcpy(&keyLen, bytes.data() + sizeof cacheMagic, 4);
    const std::size_t keyOff = sizeof cacheMagic + 4;
    if (keyLen > bytes.size() - keyOff)
        throw CheckpointError("checkpoint-cache entry '" + path +
                                  "' key length " +
                                  std::to_string(keyLen) +
                                  " overruns the file",
                              sizeof cacheMagic);
    const std::string storedKey(
        reinterpret_cast<const char *>(bytes.data() + keyOff), keyLen);
    if (storedKey != pkey)
        throw CheckpointError("checkpoint-cache entry '" + path +
                                  "' is keyed for \"" + storedKey +
                                  "\", not \"" + pkey + "\"",
                              keyOff);
    container.assign(bytes.begin() +
                         static_cast<std::ptrdiff_t>(keyOff + keyLen),
                     bytes.end());
    // Fault injection (docs/ROBUSTNESS.md): a bit-rotted entry — the
    // flipped byte trips the container's section CRC inside
    // restoreCheckpointBytes, which must refuse before applying.
    if (!container.empty() &&
        FaultPlan::global().fireCounted("ckpt_cache_corrupt"))
        container[container.size() / 2] ^= 0xff;
    return true;
}

void
ExperimentRunner::saveCacheEntry(
    const std::string &pkey,
    const std::vector<std::uint8_t> &container) const
{
    ::mkdir(ckptDir.c_str(), 0777); // best effort; EEXIST is fine
    const std::string path = cacheEntryPath(pkey);
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr,
                     "checkpoint-cache: cannot write '%s' (cache "
                     "disabled for this entry)\n",
                     tmp.c_str());
        return;
    }
    const std::uint32_t keyLen =
        static_cast<std::uint32_t>(pkey.size());
    bool ok = std::fwrite(cacheMagic, 1, sizeof cacheMagic, f) ==
                  sizeof cacheMagic &&
              std::fwrite(&keyLen, 1, 4, f) == 4 &&
              std::fwrite(pkey.data(), 1, pkey.size(), f) == pkey.size() &&
              std::fwrite(container.data(), 1, container.size(), f) ==
                  container.size() &&
              std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    ok = (std::fclose(f) == 0) && ok;
    // Atomic publish: the entry appears under its final name only
    // complete and fsynced, so a crashed writer leaves nothing a
    // reader could mistake for a checkpoint (same discipline as
    // System::saveCheckpoint).
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        std::fprintf(stderr,
                     "checkpoint-cache: failed to persist '%s' "
                     "(continuing without)\n",
                     path.c_str());
    }
}

std::size_t
ExperimentRunner::resumeFromJournal(const std::string &path,
                                    std::ostream &diag)
{
    std::vector<JournalEntry> entries =
        ResultJournal::load(path, budget.warmup, budget.measure, diag);
    std::lock_guard<std::mutex> lk(m);
    for (JournalEntry &entry : entries) {
        entry.record.journalReplayed = true;
        if (!entry.record.errored())
            cache[entry.key] = entry.record; // memo hit for run()
        // Success and error records both land in the pending-replay
        // map (last entry wins) so the farm re-emits a crashed
        // sweep's record stream — errors included — verbatim.
        replayed[entry.key] = std::move(entry.record);
    }
    replayCount += entries.size();
    diag << "journal: replayed " << entries.size() << " record"
         << (entries.size() == 1 ? "" : "s") << " from '" << path
         << "'\n";
    return entries.size();
}

bool
ExperimentRunner::consumeReplayed(const std::string &key, RunRecord &out)
{
    std::lock_guard<std::mutex> lk(m);
    auto it = replayed.find(key);
    if (it == replayed.end())
        return false;
    out = std::move(it->second);
    replayed.erase(it);
    return true;
}

const RunRecord *
ExperimentRunner::memoised(const std::string &key) const
{
    std::lock_guard<std::mutex> lk(m);
    auto it = cache.find(key);
    return it == cache.end() ? nullptr : &it->second;
}

long
ExperimentRunner::reserveJobIndex()
{
    std::lock_guard<std::mutex> lk(m);
    return nextJobIndex++;
}

RunRecord
ExperimentRunner::simulateRecord(const std::string &benchmark,
                                 const SystemConfig &cfg,
                                 const Budget &b,
                                 bool share_warmup) const
{
    // Fault injection (docs/ROBUSTNESS.md): job_wedge and job_throw
    // target the job by its deterministic farm/serve index, carried
    // by the FaultScope the submitting layer opened on this thread.
    const long fjob = FaultScope::currentJob();
    FaultPlan &faults = FaultPlan::global();
    if (fjob >= 0 &&
        faults.fireAt("job_wedge", static_cast<std::uint64_t>(fjob))) {
        // A "wedged" simulation: no progress, but bounded so an armed
        // plan can never hang the process even when no deadline is
        // configured — past the limit the wedge reports itself as the
        // timeout the deadline would have produced.
        const double limit = jobTimeout > 0.0 ? jobTimeout : 2.0;
        const auto until =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(limit);
        while (std::chrono::steady_clock::now() < until)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::ostringstream oss;
        oss << "injected fault job_wedge: job " << fjob
            << " exceeded its " << limit << "s wall-clock deadline";
        throw JobTimeout(oss.str());
    }
    auto throwInjected = [&faults, fjob] {
        if (fjob >= 0 &&
            faults.fireAt("job_throw",
                          static_cast<std::uint64_t>(fjob))) {
            throw std::runtime_error("injected fault job_throw at job " +
                                     std::to_string(fjob));
        }
        if (fjob >= 0 &&
            faults.fireAt("job_io", static_cast<std::uint64_t>(fjob))) {
            // Transient by definition (fireAt is exactly-once): a
            // retried attempt of the same job succeeds, which is what
            // lets the chaos battery pin the --retries path.
            throw TransientIoError("injected fault job_io at job " +
                                   std::to_string(fjob));
        }
    };

    System system(cfg, makeTraces(benchmark, cfg));
    system.setJobDeadline(jobTimeout);
    const auto t0 = std::chrono::steady_clock::now();

    RunStats stats;
    if (!share_warmup) {
        throwInjected();
        stats = system.run(b.warmup, b.measure);
    } else {
        // Shared warmup prefix: the first arrival for this (benchmark,
        // config, warmup) prefix simulates the warmup and publishes
        // the warm state as an in-memory checkpoint; later arrivals
        // restore it and pay only the measurement window. Restore
        // bit-identity makes both paths produce identical stats.
        const std::string pkey = prefixKey(benchmark, cfg, b);
        const std::vector<std::uint8_t> *bytes = nullptr;
        bool producer = false;
        {
            std::unique_lock<std::mutex> lk(m);
            for (;;) {
                auto it = prefixCache.find(pkey);
                if (it != prefixCache.end()) {
                    bytes = &it->second;
                    break;
                }
                if (prefixInflight.insert(pkey).second) {
                    producer = true;
                    break;
                }
                // Another worker is simulating this prefix: wait for
                // its publication instead of duplicating the warmup.
                cv.wait(lk);
            }
        }
        if (producer) {
            try {
                // Inside the try: an injected producer throw must
                // release the prefix latch exactly like a real warmup
                // failure, so waiters retry as producers (falling
                // back to a cold warmup) instead of deadlocking.
                throwInjected();
                bool fromDisk = false;
                std::vector<std::uint8_t> warm;
                if (!ckptDir.empty()) {
                    // Disk-backed prefix cache (BOP_CKPT_DIR): another
                    // process may have paid this warmup already.
                    // Validate-before-apply: a refused entry leaves
                    // the System untouched, so the cold-warmup
                    // fallback below starts from pristine state.
                    try {
                        std::vector<std::uint8_t> entry;
                        if (loadCacheEntry(pkey, entry)) {
                            system.restoreCheckpointBytes(entry);
                            warm = std::move(entry);
                            fromDisk = true;
                        }
                    } catch (const CheckpointError &e) {
                        std::fprintf(
                            stderr,
                            "checkpoint-cache: refusing entry for "
                            "\"%s\": %s — falling back to cold "
                            "warmup\n",
                            pkey.c_str(), e.what());
                    }
                }
                if (!fromDisk) {
                    system.warmup(b.warmup);
                    warm = system.saveCheckpointBytes();
                    if (!ckptDir.empty())
                        saveCacheEntry(pkey, warm); // overwrites a
                                                    // refused entry
                }
                std::lock_guard<std::mutex> lk(m);
                prefixCache.emplace(pkey, std::move(warm));
                prefixInflight.erase(pkey);
                if (!fromDisk)
                    ++prefixSims;
                cv.notify_all();
            } catch (...) {
                // Release the prefix latch so waiters retry (and hit
                // the same error themselves) instead of hanging.
                std::lock_guard<std::mutex> lk(m);
                prefixInflight.erase(pkey);
                cv.notify_all();
                throw;
            }
        } else {
            throwInjected();
            // prefixCache nodes are never erased, so the pointer
            // stays valid outside the lock.
            system.restoreCheckpointBytes(*bytes);
        }
        stats = system.measure(b.measure);
    }

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    RunRecord record{benchmark, cfg.describe(), stats,
                     /*traceSource=*/"", system.threadCount(), wall};
    if (share_warmup)
        record.checkpoint = "warm-shared";

    if (std::getenv("BOP_VERBOSE")) {
        std::fprintf(stderr, "  [run] %-16s %-44s IPC=%.3f\n",
                     benchmark.c_str(), cfg.describe().c_str(),
                     stats.ipc());
    }
    return record;
}

void
ExperimentRunner::commitJob(const std::string &key, RunRecord record)
{
    // Write-ahead: the journal line is durable before the record is
    // acknowledged in memory, so a crash after this point loses
    // nothing and a crash before it merely re-simulates the job.
    journalCommit(key, record);
    std::lock_guard<std::mutex> lk(m);
    runRecords.push_back(record);
    cache.emplace(key, std::move(record));
}

void
ExperimentRunner::commitError(const std::string &key, RunRecord record)
{
    journalCommit(key, record);
    std::lock_guard<std::mutex> lk(m);
    runRecords.push_back(std::move(record));
}

const RunStats &
ExperimentRunner::run(const std::string &benchmark, const SystemConfig &cfg)
{
    return run(benchmark, cfg, budget).stats;
}

const RunRecord &
ExperimentRunner::run(const std::string &benchmark, const SystemConfig &cfg,
                      const Budget &b)
{
    return run(benchmark, cfg, b, shareWarmup);
}

const RunRecord &
ExperimentRunner::run(const std::string &benchmark, const SystemConfig &cfg,
                      const Budget &b, bool share_warmup)
{
    const std::string key = jobKey(benchmark, cfg, b, share_warmup);

    std::unique_lock<std::mutex> lk(m);
    for (;;) {
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
        if (inflight.insert(key).second)
            break; // we won the latch; simulate outside the lock
        // Someone else is simulating this exact design point: wait
        // for their commit instead of duplicating the work.
        cv.wait(lk);
    }
    lk.unlock();

    RunRecord record;
    try {
        record = simulateRecord(benchmark, cfg, b, share_warmup);
    } catch (...) {
        // Release the latch so waiters retry (and likely rethrow the
        // same error themselves) instead of blocking forever.
        lk.lock();
        inflight.erase(key);
        cv.notify_all();
        throw;
    }

    try {
        // Write-ahead, still outside the memo lock; a failed journal
        // append must release the in-flight latch like any other
        // failure so waiters do not hang on a dead commit.
        journalCommit(key, record);
    } catch (...) {
        lk.lock();
        inflight.erase(key);
        cv.notify_all();
        throw;
    }
    lk.lock();
    runRecords.push_back(record);
    auto committed = cache.emplace(key, std::move(record)).first;
    inflight.erase(key);
    cv.notify_all();
    return committed->second;
}

double
ExperimentRunner::speedup(const std::string &benchmark,
                          const SystemConfig &cfg,
                          const SystemConfig &base)
{
    const double a = run(benchmark, cfg).ipc();
    const double b = run(benchmark, base).ipc();
    return b > 0.0 ? a / b : 0.0;
}

double
ExperimentRunner::geomeanSpeedup(const std::vector<std::string> &benchmarks,
                                 const SystemConfig &cfg,
                                 const SystemConfig &base)
{
    std::vector<double> speedups;
    speedups.reserve(benchmarks.size());
    for (const auto &bench : benchmarks)
        speedups.push_back(speedup(bench, cfg, base));
    return geomean(speedups);
}

} // namespace bop
