#include "harness/experiment.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/fault.hh"
#include "dram/address_map.hh"
#include "trace/workloads.hh"

namespace bop
{

Budget
Budget::fromEnv()
{
    Budget b;
    if (const char *w = std::getenv("BOP_WARMUP"))
        b.warmup = std::strtoull(w, nullptr, 10);
    if (const char *m = std::getenv("BOP_INSTR"))
        b.measure = std::strtoull(m, nullptr, 10);
    return b;
}

SystemConfig
baselineConfig(int cores, PageSize page)
{
    SystemConfig cfg;
    cfg.activeCores = cores;
    cfg.pageSize = page;
    cfg.l2Prefetcher = L2PrefetcherKind::NextLine;
    cfg.l3Policy = L3PolicyKind::P5;
    cfg.dl1StridePrefetcher = true;
    // Paper topologies keep the 2-channel chip (Table 1); beyond 4
    // cores, grow the channel count so each channel serves at most 2
    // cores (8 cores -> 4 channels, 16 -> 8).
    while (cfg.numChannels * 2 < cores &&
           cfg.numChannels < maxDramChannels)
        cfg.numChannels *= 2;
    return cfg;
}

std::vector<std::pair<int, PageSize>>
baselineGrid()
{
    return {{1, PageSize::FourKB}, {2, PageSize::FourKB},
            {4, PageSize::FourKB}, {1, PageSize::FourMB},
            {2, PageSize::FourMB}, {4, PageSize::FourMB}};
}

std::vector<int>
scalingCoreCounts()
{
    return {1, 2, 4, 8, 16};
}

std::string
gridLabel(int cores, PageSize page)
{
    std::ostringstream oss;
    oss << cores << "-core/"
        << (page == PageSize::FourKB ? "4KB" : "4MB");
    return oss.str();
}

std::string
configFingerprint(const SystemConfig &cfg)
{
    std::ostringstream oss;
    oss << cfg.describe() << "|seed=" << cfg.seed
        << "|bo=" << cfg.bo.rrEntries << "," << cfg.bo.scoreMax << ","
        << cfg.bo.roundMax << "," << cfg.bo.badScore << ","
        << cfg.bo.maxOffset << "," << cfg.bo.degree << ","
        << cfg.bo.includeNegative << ","
        << cfg.bo.adaptiveBadScore << "," << cfg.bo.coverageWeight
        << "|sbp=" << cfg.sbp.evalPeriod << "," << cfg.sbp.maxActiveOffsets
        << "|fdp=" << cfg.fdp.initialLevel << "," << cfg.fdp.sampleInterval
        << "|ghb=" << cfg.ghb.adaptiveZones << ","
        << cfg.ghb.zoneLineBitsCandidates.front() << "," << cfg.ghb.degree
        << "|sbuf=" << cfg.streamBuf.buffers << "," << cfg.streamBuf.depth
        << "|dpc2=" << cfg.boDpc2.badScore << ","
        << cfg.boDpc2.delayCycles
        << "|D=" << cfg.fixedOffset;
    return oss.str();
}

std::vector<std::unique_ptr<TraceSource>>
makeTraces(const std::string &benchmark, const SystemConfig &cfg)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(makeWorkload(benchmark, cfg.seed));
    for (int c = 1; c < cfg.activeCores; ++c)
        traces.push_back(makeThrasher(cfg.seed + static_cast<unsigned>(c)));
    return traces;
}

std::string
ExperimentRunner::runKey(const std::string &benchmark,
                         const SystemConfig &cfg, const Budget &b)
{
    // Budgets are part of the design point: the --serve front end can
    // carry a different budget per job line, and memo hits must never
    // conflate a short run with a long one.
    return benchmark + "##" + configFingerprint(cfg) + "##" +
           std::to_string(b.warmup) + "+" + std::to_string(b.measure);
}

std::string
ExperimentRunner::prefixKey(const std::string &benchmark,
                            const SystemConfig &cfg, const Budget &b)
{
    // The warm state depends on everything the config fingerprint
    // covers (prefetcher choice included) plus the warmup length —
    // but NOT the measure budget, which is exactly what makes the
    // prefix shareable across jobs that differ only in it.
    return benchmark + "##" + configFingerprint(cfg) + "##warm" +
           std::to_string(b.warmup);
}

bool
ExperimentRunner::sharingFromEnv()
{
    const char *v = std::getenv("BOP_CKPT_SHARE");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

double
ExperimentRunner::timeoutFromEnv()
{
    const char *v = std::getenv("BOP_JOB_TIMEOUT");
    return v != nullptr ? std::strtod(v, nullptr) : 0.0;
}

const RunRecord *
ExperimentRunner::memoised(const std::string &key) const
{
    std::lock_guard<std::mutex> lk(m);
    auto it = cache.find(key);
    return it == cache.end() ? nullptr : &it->second;
}

long
ExperimentRunner::reserveJobIndex()
{
    std::lock_guard<std::mutex> lk(m);
    return nextJobIndex++;
}

RunRecord
ExperimentRunner::simulateRecord(const std::string &benchmark,
                                 const SystemConfig &cfg,
                                 const Budget &b,
                                 bool share_warmup) const
{
    // Fault injection (docs/ROBUSTNESS.md): job_wedge and job_throw
    // target the job by its deterministic farm/serve index, carried
    // by the FaultScope the submitting layer opened on this thread.
    const long fjob = FaultScope::currentJob();
    FaultPlan &faults = FaultPlan::global();
    if (fjob >= 0 &&
        faults.fireAt("job_wedge", static_cast<std::uint64_t>(fjob))) {
        // A "wedged" simulation: no progress, but bounded so an armed
        // plan can never hang the process even when no deadline is
        // configured — past the limit the wedge reports itself as the
        // timeout the deadline would have produced.
        const double limit = jobTimeout > 0.0 ? jobTimeout : 2.0;
        const auto until =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(limit);
        while (std::chrono::steady_clock::now() < until)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::ostringstream oss;
        oss << "injected fault job_wedge: job " << fjob
            << " exceeded its " << limit << "s wall-clock deadline";
        throw JobTimeout(oss.str());
    }
    auto throwInjected = [&faults, fjob] {
        if (fjob >= 0 &&
            faults.fireAt("job_throw",
                          static_cast<std::uint64_t>(fjob))) {
            throw std::runtime_error("injected fault job_throw at job " +
                                     std::to_string(fjob));
        }
    };

    System system(cfg, makeTraces(benchmark, cfg));
    system.setJobDeadline(jobTimeout);
    const auto t0 = std::chrono::steady_clock::now();

    RunStats stats;
    if (!share_warmup) {
        throwInjected();
        stats = system.run(b.warmup, b.measure);
    } else {
        // Shared warmup prefix: the first arrival for this (benchmark,
        // config, warmup) prefix simulates the warmup and publishes
        // the warm state as an in-memory checkpoint; later arrivals
        // restore it and pay only the measurement window. Restore
        // bit-identity makes both paths produce identical stats.
        const std::string pkey = prefixKey(benchmark, cfg, b);
        const std::vector<std::uint8_t> *bytes = nullptr;
        bool producer = false;
        {
            std::unique_lock<std::mutex> lk(m);
            for (;;) {
                auto it = prefixCache.find(pkey);
                if (it != prefixCache.end()) {
                    bytes = &it->second;
                    break;
                }
                if (prefixInflight.insert(pkey).second) {
                    producer = true;
                    break;
                }
                // Another worker is simulating this prefix: wait for
                // its publication instead of duplicating the warmup.
                cv.wait(lk);
            }
        }
        if (producer) {
            try {
                // Inside the try: an injected producer throw must
                // release the prefix latch exactly like a real warmup
                // failure, so waiters retry as producers (falling
                // back to a cold warmup) instead of deadlocking.
                throwInjected();
                system.warmup(b.warmup);
                std::vector<std::uint8_t> warm =
                    system.saveCheckpointBytes();
                std::lock_guard<std::mutex> lk(m);
                prefixCache.emplace(pkey, std::move(warm));
                prefixInflight.erase(pkey);
                ++prefixSims;
                cv.notify_all();
            } catch (...) {
                // Release the prefix latch so waiters retry (and hit
                // the same error themselves) instead of hanging.
                std::lock_guard<std::mutex> lk(m);
                prefixInflight.erase(pkey);
                cv.notify_all();
                throw;
            }
        } else {
            throwInjected();
            // prefixCache nodes are never erased, so the pointer
            // stays valid outside the lock.
            system.restoreCheckpointBytes(*bytes);
        }
        stats = system.measure(b.measure);
    }

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    RunRecord record{benchmark, cfg.describe(), stats,
                     /*traceSource=*/"", system.threadCount(), wall};
    if (share_warmup)
        record.checkpoint = "warm-shared";

    if (std::getenv("BOP_VERBOSE")) {
        std::fprintf(stderr, "  [run] %-16s %-44s IPC=%.3f\n",
                     benchmark.c_str(), cfg.describe().c_str(),
                     stats.ipc());
    }
    return record;
}

void
ExperimentRunner::commitJob(const std::string &key, RunRecord record)
{
    std::lock_guard<std::mutex> lk(m);
    runRecords.push_back(record);
    cache.emplace(key, std::move(record));
}

void
ExperimentRunner::commitError(RunRecord record)
{
    std::lock_guard<std::mutex> lk(m);
    runRecords.push_back(std::move(record));
}

const RunStats &
ExperimentRunner::run(const std::string &benchmark, const SystemConfig &cfg)
{
    return run(benchmark, cfg, budget).stats;
}

const RunRecord &
ExperimentRunner::run(const std::string &benchmark, const SystemConfig &cfg,
                      const Budget &b)
{
    return run(benchmark, cfg, b, shareWarmup);
}

const RunRecord &
ExperimentRunner::run(const std::string &benchmark, const SystemConfig &cfg,
                      const Budget &b, bool share_warmup)
{
    const std::string key = jobKey(benchmark, cfg, b, share_warmup);

    std::unique_lock<std::mutex> lk(m);
    for (;;) {
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
        if (inflight.insert(key).second)
            break; // we won the latch; simulate outside the lock
        // Someone else is simulating this exact design point: wait
        // for their commit instead of duplicating the work.
        cv.wait(lk);
    }
    lk.unlock();

    RunRecord record;
    try {
        record = simulateRecord(benchmark, cfg, b, share_warmup);
    } catch (...) {
        // Release the latch so waiters retry (and likely rethrow the
        // same error themselves) instead of blocking forever.
        lk.lock();
        inflight.erase(key);
        cv.notify_all();
        throw;
    }

    lk.lock();
    runRecords.push_back(record);
    auto committed = cache.emplace(key, std::move(record)).first;
    inflight.erase(key);
    cv.notify_all();
    return committed->second;
}

double
ExperimentRunner::speedup(const std::string &benchmark,
                          const SystemConfig &cfg,
                          const SystemConfig &base)
{
    const double a = run(benchmark, cfg).ipc();
    const double b = run(benchmark, base).ipc();
    return b > 0.0 ? a / b : 0.0;
}

double
ExperimentRunner::geomeanSpeedup(const std::vector<std::string> &benchmarks,
                                 const SystemConfig &cfg,
                                 const SystemConfig &base)
{
    std::vector<double> speedups;
    speedups.reserve(benchmarks.size());
    for (const auto &bench : benchmarks)
        speedups.push_back(speedup(bench, cfg, base));
    return geomean(speedups);
}

} // namespace bop
