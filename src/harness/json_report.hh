/**
 * @file
 * Machine-readable run records (ROADMAP: benchmark JSON output).
 *
 * Every simulation run can be summarised as one flat JSON object —
 * workload, configuration describe-string, IPC, prefetch
 * coverage/accuracy/timeliness and DRAM traffic — so CI can archive
 * bench output and track BENCH_* trajectories across PRs. The writer
 * emits a JSON array with one object per run; no external JSON
 * dependency is used.
 */

#ifndef BOP_HARNESS_JSON_REPORT_HH
#define BOP_HARNESS_JSON_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace bop
{

/** One simulation run, flattened for reporting. */
struct RunRecord
{
    std::string workload; ///< core-0 benchmark name
    std::string config;   ///< SystemConfig::describe() string
    RunStats stats;
    /** Trace provenance: a FileTrace::sourceTag() string (file name +
     *  on-disk format) for trace-driven runs; empty for the built-in
     *  generators (serialised as "generator") — keeps bench artifacts
     *  comparable across workload sources. */
    std::string traceSource;

    /**
     * Worker threads the run ticked on (System::threadCount()). A
     * host-side speed knob: simulated statistics are identical for
     * every value, but wall clock is not, so throughput comparisons
     * are only meaningful between records with equal thread counts
     * (bench_diff --throughput enforces this).
     */
    int threads = 1;

    /**
     * Wall-clock seconds the simulation itself took (0 when not
     * measured, e.g. a hand-assembled record). Serialised together
     * with the derived engine-throughput rates (simulated Mcycles/s,
     * retired Minstr/s) so BENCH_perf trajectories track simulator
     * speed per benchmark, not just suite wall clock.
     */
    double wallSeconds = 0.0;

    /**
     * Sweep-farm worker count the run was scheduled under (1 =
     * serial). Like threads, a host-side knob: simulated statistics
     * and job_index are identical for every value, but wall clock is
     * not, so bench_diff only compares throughput between records
     * with equal jobs counts.
     */
    int jobs = 1;

    /**
     * Position of this job in farm submission order (-1 when the run
     * did not go through the farm). Deterministic: depends only on
     * the submission sequence, never on worker scheduling.
     */
    long jobIndex = -1;

    /** Seconds between farm submission and simulation start. */
    double queueWaitSeconds = 0.0;

    /**
     * Simulation attempts this job took (bounded retry, `--retries`):
     * 1 for a first-try success, N when N-1 transient-I/O failures
     * were re-enqueued first. Serialised on success and error records
     * alike so unattended logs show which jobs rode out flaky I/O.
     */
    int attempts = 1;

    /**
     * True when this record was replayed from a write-ahead journal
     * (`--resume`) instead of simulated in this process. Host-side
     * bookkeeping only — never serialised (a resumed sweep's output
     * must stay byte-identical to an uninterrupted one) — so the
     * serve loop can count `J replayed` and the runner can skip
     * re-journaling a record the journal already holds.
     */
    bool journalReplayed = false;

    /**
     * Checkpoint provenance: "" for an ordinary cold run (serialised
     * as "none"), "saved" / "restored" for bopsim
     * --save-checkpoint/--restore-checkpoint runs, "warm-shared" when
     * the run consumed or produced a shared warmup prefix
     * (ExperimentRunner checkpoint sharing). Restore bit-identity
     * keeps the simulated statistics equal across all values, but the
     * wall clock is not comparable, so bench_diff --throughput only
     * compares records with equal checkpoint provenance.
     */
    std::string checkpoint{};

    /**
     * Failure classification when the job did not complete: "" for a
     * successful run; "timeout" / "checkpoint" / "simulation"
     * (faultKindOf()) when it failed, with the exception message in
     * errorDetail. A failed record serialises as the error object
     * {"error", "kind", "detail", "job_index", ...} instead of a
     * stats record (grammar: docs/ROBUSTNESS.md); its stats fields
     * are meaningless and never emitted.
     */
    std::string errorKind{};
    std::string errorDetail{};

    /** True when this record reports a failed job, not a run. */
    bool errored() const { return !errorKind.empty(); }

    /** Simulated megacycles per wall second (0 when not measured). */
    double
    mcyclesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(stats.cycles) / wallSeconds / 1e6
                   : 0.0;
    }

    /** Retired mega-instructions per wall second (0 when unmeasured). */
    double
    minstrPerSecond() const
    {
        return wallSeconds > 0.0 ? static_cast<double>(stats.instructions) /
                                       wallSeconds / 1e6
                                 : 0.0;
    }
};

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Serialise one record as a JSON object (no trailing newline). */
void writeRunRecord(std::ostream &os, const RunRecord &record);

/** Serialise records as a JSON array (pretty-printed, one per line). */
void writeRunRecords(std::ostream &os,
                     const std::vector<RunRecord> &records);

/**
 * Write records to @p path as a JSON array. Returns false (and prints
 * to stderr) when the file cannot be opened.
 */
bool writeRunRecordsFile(const std::string &path,
                         const std::vector<RunRecord> &records);

} // namespace bop

#endif // BOP_HARNESS_JSON_REPORT_HH
