#include "harness/serve.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/fault.hh"
#include "harness/bench_diff.hh"
#include "harness/json_report.hh"
#include "sim/parallel.hh"
#include "trace/workloads.hh"

namespace bop
{

bool
parseL2PrefetcherName(const std::string &name, L2PrefetcherKind &kind)
{
    using K = L2PrefetcherKind;
    if (name == "none")
        kind = K::None;
    else if (name == "next-line" || name == "nl")
        kind = K::NextLine;
    else if (name == "fixed")
        kind = K::FixedOffset;
    else if (name == "bo")
        kind = K::BestOffset;
    else if (name == "bo-dpc2")
        kind = K::BestOffsetDpc2;
    else if (name == "sbp" || name == "sandbox")
        kind = K::Sandbox;
    else if (name == "stream")
        kind = K::Stream;
    else if (name == "streambuf")
        kind = K::StreamBuffer;
    else if (name == "fdp")
        kind = K::Fdp;
    else if (name == "acdc" || name == "ghb")
        kind = K::Acdc;
    else
        return false;
    return true;
}

namespace
{

/** One accepted job, ready to simulate. */
struct ServeJob
{
    std::string benchmark;
    SystemConfig cfg;
    Budget budget;
    bool shareSet = false; ///< line carried a "checkpoint" field
    bool share = false;    ///< ... requesting warmup-prefix sharing
};

bool
knownBenchmark(const std::string &name)
{
    for (const std::string &bench : benchmarkNames()) {
        if (bench == name)
            return true;
    }
    return false;
}

/**
 * Decode one job line into a ServeJob. The field vocabulary mirrors
 * bopsim's CLI options (snake_cased); unknown fields reject the line
 * so a typo never silently simulates the wrong design point.
 */
bool
parseJobLine(const std::string &line, const Budget &defaultBudget,
             ServeJob &job, std::string &error)
{
    ParsedRunRecord fields;
    try {
        std::istringstream is(line);
        fields = parseFlatRecord(is);
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }

    // bopsim's defaults: paper baseline topology, BO prefetcher.
    job.cfg = SystemConfig{};
    job.cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    job.budget = defaultBudget;
    job.benchmark.clear();

    for (const auto &kv : fields.strings) {
        const std::string &key = kv.first;
        const std::string &value = kv.second;
        if (key == "workload") {
            job.benchmark = value;
        } else if (key == "prefetcher") {
            if (!parseL2PrefetcherName(value, job.cfg.l2Prefetcher)) {
                error = "unknown prefetcher '" + value + "'";
                return false;
            }
        } else if (key == "page") {
            if (value == "4k" || value == "4K")
                job.cfg.pageSize = PageSize::FourKB;
            else if (value == "4m" || value == "4M")
                job.cfg.pageSize = PageSize::FourMB;
            else {
                error = "page must be \"4k\" or \"4m\"";
                return false;
            }
        } else if (key == "checkpoint") {
            // "share": join the runner's warmup-prefix cache (jobs
            // with the same workload/config/warmup simulate the
            // warmup once); "cold": force a full cold run even when
            // the runner default (BOP_CKPT_SHARE) is sharing.
            if (value == "share")
                job.share = true;
            else if (value == "cold")
                job.share = false;
            else {
                error = "checkpoint must be \"share\" or \"cold\"";
                return false;
            }
            job.shareSet = true;
        } else if (key == "l3") {
            if (value == "5p")
                job.cfg.l3Policy = L3PolicyKind::P5;
            else if (value == "lru")
                job.cfg.l3Policy = L3PolicyKind::Lru;
            else if (value == "drrip")
                job.cfg.l3Policy = L3PolicyKind::Drrip;
            else {
                error = "l3 must be \"5p\", \"lru\" or \"drrip\"";
                return false;
            }
        } else {
            error = "unknown string field \"" + key + "\"";
            return false;
        }
    }

    for (const auto &kv : fields.numbers) {
        const std::string &key = kv.first;
        const double value = kv.second;
        const auto asInt = static_cast<int>(value);
        const auto asU64 = static_cast<std::uint64_t>(value);
        if (key == "offset")
            job.cfg.fixedOffset = asInt;
        else if (key == "cores")
            job.cfg.activeCores = asInt;
        else if (key == "num_cores")
            job.cfg.numCores = asInt;
        else if (key == "channels")
            job.cfg.numChannels = asInt;
        else if (key == "dl1_stride")
            job.cfg.dl1StridePrefetcher = value != 0.0;
        else if (key == "seed")
            job.cfg.seed = asU64;
        else if (key == "threads")
            job.cfg.numThreads = asInt;
        else if (key == "bo_badscore")
            job.cfg.bo.badScore = asInt;
        else if (key == "bo_rr")
            job.cfg.bo.rrEntries = static_cast<std::size_t>(asU64);
        else if (key == "bo_degree")
            job.cfg.bo.degree = asInt;
        else if (key == "bo_adaptive")
            job.cfg.bo.adaptiveBadScore = value != 0.0;
        else if (key == "bo_coverage")
            job.cfg.bo.coverageWeight = asInt;
        else if (key == "warmup")
            job.budget.warmup = asU64;
        else if (key == "instr")
            job.budget.measure = asU64;
        else {
            error = "unknown numeric field \"" + key + "\"";
            return false;
        }
    }

    if (job.benchmark.empty()) {
        error = "missing required field \"workload\"";
        return false;
    }
    if (!knownBenchmark(job.benchmark)) {
        error = "unknown workload '" + job.benchmark + "'";
        return false;
    }
    return true;
}

bool
blankLine(const std::string &line)
{
    for (const char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

/** Report one rejected line on both streams (outMutex covers both:
 *  the diagnostic stream is written by reader and workers alike). */
void
reportRejected(std::ostream &out, std::ostream &diag, std::mutex &outMutex,
               const std::string &error, long lineNo)
{
    std::lock_guard<std::mutex> lk(outMutex);
    diag << "serve: line " << lineNo << ": " << error << "\n";
    out << "{\"error\": \"" << jsonEscape(error)
        << "\", \"kind\": \"parse\", \"line\": " << lineNo << "}"
        << std::endl;
}

/** Report one accepted-but-failed job: the error object keeps the
 *  job's deterministic job_index (and the attempts it burned) so
 *  batch post-processing can match it to its submission
 *  (docs/ROBUSTNESS.md). */
void
reportFailed(std::ostream &out, std::ostream &diag, std::mutex &outMutex,
             const std::exception &e, long jobIndex, int attempts,
             long lineNo)
{
    const std::string kind = faultKindOf(e);
    std::lock_guard<std::mutex> lk(outMutex);
    diag << "serve: line " << lineNo << ": job " << jobIndex
         << " failed (" << kind << ", attempt " << attempts
         << "): " << e.what() << "\n";
    out << "{\"error\": \"job failed\", \"kind\": \"" << jsonEscape(kind)
        << "\", \"detail\": \"" << jsonEscape(e.what())
        << "\", \"job_index\": " << jobIndex << ", \"attempts\": "
        << attempts << ", \"line\": " << lineNo << "}" << std::endl;
}

} // namespace

int
serveLoop(std::istream &in, std::ostream &out, ExperimentRunner &runner,
          const ServeOptions &options, std::ostream &diag)
{
    const unsigned workers =
        options.jobs < 1 ? 1u : static_cast<unsigned>(options.jobs);
    TaskPool pool(workers, options.backlog);

    std::mutex outMutex;
    std::atomic<int> failed{0};
    std::atomic<long> retried{0};
    std::atomic<long> replayed{0};
    int rejected = 0;
    long accepted = 0;
    long lineNo = 0;
    std::string line;

    while (!(options.stopRequested &&
             options.stopRequested->load(std::memory_order_relaxed)) &&
           std::getline(in, line)) {
        ++lineNo;
        if (blankLine(line))
            continue;

        ServeJob job;
        std::string error;
        if (!parseJobLine(line, options.defaultBudget, job, error)) {
            ++rejected;
            reportRejected(out, diag, outMutex, error, lineNo);
            continue;
        }

        const long jobIndex = accepted++;
        const auto submitted = std::chrono::steady_clock::now();
        // submit() blocks while the backlog is full: backpressure on
        // the reader bounds in-flight jobs (and so memory) for
        // arbitrarily long batches.
        pool.submit([&runner, &out, &outMutex, &diag, &failed, &retried,
                     &replayed, &options, job, jobIndex, lineNo,
                     submitted] {
            const double queueWait =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - submitted)
                    .count();
            FaultScope scope(jobIndex);
            for (int attempt = 1;; ++attempt) {
                try {
                    // The runner's in-flight latch dedups identical
                    // design points across concurrent jobs; memo hits
                    // answer without simulating — including records
                    // replayed from a journal (--resume), which are
                    // memo hits flagged journalReplayed.
                    RunRecord record =
                        job.shareSet
                            ? runner.run(job.benchmark, job.cfg,
                                         job.budget, job.share)
                            : runner.run(job.benchmark, job.cfg,
                                         job.budget);
                    if (record.journalReplayed)
                        ++replayed;
                    record.jobs = static_cast<int>(
                        options.jobs < 1 ? 1 : options.jobs);
                    record.jobIndex = jobIndex;
                    record.queueWaitSeconds = queueWait;
                    record.attempts = attempt;
                    std::lock_guard<std::mutex> lk(outMutex);
                    writeRunRecord(out, record);
                    out << std::endl;
                    return;
                } catch (const std::exception &e) {
                    // Bounded retry: transient I/O failures re-run in
                    // place through the never-memoise path (the
                    // runner released its latch on throw). Everything
                    // else is containment as before — this job
                    // answers with an error object and the batch
                    // keeps going.
                    if (transientFaultKind(faultKindOf(e)) &&
                        attempt <= runner.retries()) {
                        ++retried;
                        std::this_thread::sleep_for(
                            std::chrono::duration<double>(
                                runner.retryBackoffSeconds(attempt +
                                                           1)));
                        continue;
                    }
                    ++failed;
                    reportFailed(out, diag, outMutex, e, jobIndex,
                                 attempt, lineNo);
                    return;
                }
            }
        });
    }

    if (options.stopRequested &&
        options.stopRequested->load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lk(outMutex);
        diag << "serve: stop requested, draining in-flight jobs\n";
    }

    pool.drain(); // graceful shutdown: every accepted job answers

    {
        std::lock_guard<std::mutex> lk(outMutex);
        diag << "serve: " << accepted << " accepted, " << rejected
             << " rejected, " << failed.load() << " failed, "
             << retried.load() << " retried, " << replayed.load()
             << " replayed\n";
    }
    return rejected + failed.load();
}

} // namespace bop
