#include "harness/sweep_farm.hh"

#include <chrono>
#include <thread>

#include "common/fault.hh"

namespace bop
{

namespace
{

/** Error record for a design point whose simulation threw. */
RunRecord
errorRecord(const std::string &benchmark, const SystemConfig &cfg,
            int jobs, long jobIndex, const std::exception &e, int attempts)
{
    RunRecord record;
    record.workload = benchmark;
    record.config = cfg.describe();
    record.jobs = jobs;
    record.jobIndex = jobIndex;
    record.errorKind = faultKindOf(e);
    record.errorDetail = e.what();
    record.attempts = attempts;
    return record;
}

} // namespace

SweepFarm::SweepFarm(ExperimentRunner &runner, int jobs_,
                     std::size_t backlog)
    : runner_(runner), jobs(jobs_ < 1 ? 1 : jobs_)
{
    if (jobs > 1)
        pool = std::make_unique<TaskPool>(static_cast<unsigned>(jobs),
                                          backlog);
}

SweepFarm::~SweepFarm()
{
    drain();
}

void
SweepFarm::runSlot(Slot *slot, int attempt)
{
    const double queueWait =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      slot->submitted)
            .count();
    // Containment: catch here, in the slot, rather than leaning on
    // TaskPool's backstop — the error must land in this job's
    // submission-order slot so drain() commits it (and every
    // surviving record) exactly where a fault-free run would.
    FaultScope scope(slot->jobIndex);
    try {
        RunRecord record =
            runner_.simulateRecord(slot->benchmark, slot->cfg);
        record.jobs = jobs;
        record.jobIndex = slot->jobIndex;
        record.queueWaitSeconds = queueWait;
        record.attempts = attempt;
        slot->record = std::move(record);
    } catch (const std::exception &e) {
        slot->record = errorRecord(slot->benchmark, slot->cfg, jobs,
                                   slot->jobIndex, e, attempt);
    }
}

void
SweepFarm::submit(const std::string &benchmark, const SystemConfig &cfg)
{
    const std::string key = runner_.runKey(benchmark, cfg);
    if (!submitted.insert(key).second)
        return;

    // A journal replay claims this submission slot before the memo is
    // even consulted (replayed success records ARE memoised): the
    // journaled record — error records included — is committed
    // verbatim, and the job index still advances so the rest of the
    // sweep keeps the indices an uninterrupted run would produce.
    RunRecord replayedRecord;
    if (runner_.consumeReplayed(key, replayedRecord)) {
        runner_.reserveJobIndex();
        if (replayedRecord.errored())
            runner_.commitError(key, std::move(replayedRecord));
        else
            runner_.commitJob(key, std::move(replayedRecord));
        return;
    }
    if (runner_.memoised(key))
        return;

    const long jobIndex = runner_.reserveJobIndex();

    if (!pool) {
        // Inline serial path: identical to the pre-farm sweep, and the
        // memo is warm immediately (later duplicate submissions of the
        // same point short-circuit above). Containment and bounded
        // retry match the pool path, minus the queueing.
        Slot slot{key, benchmark, cfg, jobIndex,
                  std::chrono::steady_clock::now(), RunRecord{}};
        const int maxAttempts = 1 + runner_.retries();
        for (int attempt = 1;; ++attempt) {
            runSlot(&slot, attempt);
            if (!slot.record.errored() ||
                !transientFaultKind(slot.record.errorKind) ||
                attempt >= maxAttempts)
                break;
            std::this_thread::sleep_for(std::chrono::duration<double>(
                runner_.retryBackoffSeconds(attempt + 1)));
        }
        if (slot.record.errored())
            runner_.commitError(key, std::move(slot.record));
        else
            runner_.commitJob(key, std::move(slot.record));
        return;
    }

    slots.push_back(Slot{key, benchmark, cfg, jobIndex,
                         std::chrono::steady_clock::now(), RunRecord{}});
    Slot *slot = &slots.back();
    pool->submit([this, slot] { runSlot(slot, 1); });
}

void
SweepFarm::drain()
{
    if (!pool)
        return; // inline jobs committed at submit time
    pool->drain();

    // Bounded retry (docs/ROBUSTNESS.md decision table): re-enqueue
    // the slots that failed with a transient kind through the same
    // never-memoise path, with exponential backoff between rounds.
    // TaskPool workers persist across drain(), so re-submission after
    // a drain is an ordinary submit.
    const int maxAttempts = 1 + runner_.retries();
    for (int attempt = 2; attempt <= maxAttempts; ++attempt) {
        std::vector<Slot *> again;
        for (Slot &slot : slots) {
            if (slot.record.errored() &&
                transientFaultKind(slot.record.errorKind))
                again.push_back(&slot);
        }
        if (again.empty())
            break;
        std::this_thread::sleep_for(std::chrono::duration<double>(
            runner_.retryBackoffSeconds(attempt)));
        for (Slot *slot : again)
            pool->submit([this, slot, attempt] { runSlot(slot, attempt); });
        pool->drain();
    }

    for (Slot &slot : slots) {
        if (slot.record.errored())
            runner_.commitError(slot.key, std::move(slot.record));
        else
            runner_.commitJob(slot.key, std::move(slot.record));
    }
    slots.clear();
}

} // namespace bop
