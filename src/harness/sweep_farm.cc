#include "harness/sweep_farm.hh"

#include "common/fault.hh"

namespace bop
{

namespace
{

/** Error record for a design point whose simulation threw. */
RunRecord
errorRecord(const std::string &benchmark, const SystemConfig &cfg,
            int jobs, long jobIndex, const std::exception &e)
{
    RunRecord record;
    record.workload = benchmark;
    record.config = cfg.describe();
    record.jobs = jobs;
    record.jobIndex = jobIndex;
    record.errorKind = faultKindOf(e);
    record.errorDetail = e.what();
    return record;
}

} // namespace

SweepFarm::SweepFarm(ExperimentRunner &runner, int jobs_,
                     std::size_t backlog)
    : runner_(runner), jobs(jobs_ < 1 ? 1 : jobs_)
{
    if (jobs > 1)
        pool = std::make_unique<TaskPool>(static_cast<unsigned>(jobs),
                                          backlog);
}

SweepFarm::~SweepFarm()
{
    drain();
}

void
SweepFarm::submit(const std::string &benchmark, const SystemConfig &cfg)
{
    const std::string key = runner_.runKey(benchmark, cfg);
    if (runner_.memoised(key) || !submitted.insert(key).second)
        return;

    const long jobIndex = runner_.reserveJobIndex();

    if (!pool) {
        // Inline serial path: identical to the pre-farm sweep, and the
        // memo is warm immediately (later duplicate submissions of the
        // same point short-circuit above). Containment matches the
        // pool path: a throwing job becomes an error record, never an
        // escaped exception that would abort the rest of the sweep.
        FaultScope scope(jobIndex);
        try {
            RunRecord record = runner_.simulateRecord(benchmark, cfg);
            record.jobs = 1;
            record.jobIndex = jobIndex;
            runner_.commitJob(key, std::move(record));
        } catch (const std::exception &e) {
            runner_.commitError(errorRecord(benchmark, cfg, 1, jobIndex, e));
        }
        return;
    }

    slots.push_back(Slot{key, benchmark, cfg, jobIndex,
                         std::chrono::steady_clock::now(), RunRecord{}});
    Slot *slot = &slots.back();
    pool->submit([this, slot] {
        const double queueWait =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - slot->submitted)
                .count();
        // Containment: catch here, in the slot, rather than leaning on
        // TaskPool's backstop — the error must land in this job's
        // submission-order slot so drain() commits it (and every
        // surviving record) exactly where a fault-free run would.
        FaultScope scope(slot->jobIndex);
        try {
            RunRecord record =
                runner_.simulateRecord(slot->benchmark, slot->cfg);
            record.jobs = jobs;
            record.jobIndex = slot->jobIndex;
            record.queueWaitSeconds = queueWait;
            slot->record = std::move(record);
        } catch (const std::exception &e) {
            slot->record = errorRecord(slot->benchmark, slot->cfg, jobs,
                                       slot->jobIndex, e);
        }
    });
}

void
SweepFarm::drain()
{
    if (!pool)
        return; // inline jobs committed at submit time
    pool->drain();
    for (Slot &slot : slots) {
        if (slot.record.errored())
            runner_.commitError(std::move(slot.record));
        else
            runner_.commitJob(slot.key, std::move(slot.record));
    }
    slots.clear();
}

} // namespace bop
