#include "harness/sweep_farm.hh"

namespace bop
{

SweepFarm::SweepFarm(ExperimentRunner &runner, int jobs_,
                     std::size_t backlog)
    : runner_(runner), jobs(jobs_ < 1 ? 1 : jobs_)
{
    if (jobs > 1)
        pool = std::make_unique<TaskPool>(static_cast<unsigned>(jobs),
                                          backlog);
}

SweepFarm::~SweepFarm()
{
    drain();
}

void
SweepFarm::submit(const std::string &benchmark, const SystemConfig &cfg)
{
    const std::string key = runner_.runKey(benchmark, cfg);
    if (runner_.memoised(key) || !submitted.insert(key).second)
        return;

    const long jobIndex = runner_.reserveJobIndex();

    if (!pool) {
        // Inline serial path: identical to the pre-farm sweep, and the
        // memo is warm immediately (later duplicate submissions of the
        // same point short-circuit above).
        RunRecord record = runner_.simulateRecord(benchmark, cfg);
        record.jobs = 1;
        record.jobIndex = jobIndex;
        runner_.commitJob(key, std::move(record));
        return;
    }

    slots.push_back(Slot{key, benchmark, cfg, jobIndex,
                         std::chrono::steady_clock::now(), RunRecord{}});
    Slot *slot = &slots.back();
    pool->submit([this, slot] {
        const double queueWait =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - slot->submitted)
                .count();
        RunRecord record =
            runner_.simulateRecord(slot->benchmark, slot->cfg);
        record.jobs = jobs;
        record.jobIndex = slot->jobIndex;
        record.queueWaitSeconds = queueWait;
        slot->record = std::move(record);
    });
}

void
SweepFarm::drain()
{
    if (!pool)
        return; // inline jobs committed at submit time
    pool->drain();
    for (Slot &slot : slots)
        runner_.commitJob(slot.key, std::move(slot.record));
    slots.clear();
}

} // namespace bop
