/**
 * @file
 * Job-queue sweep engine over ExperimentRunner.
 *
 * A figure sweep is hundreds of independent (benchmark, config)
 * design points; each System is self-contained and deterministic, so
 * they parallelise perfectly at job granularity. SweepFarm accepts
 * submissions, deduplicates them through the runner's memo key, fans
 * unique jobs out across a TaskPool, and commits the resulting
 * RunRecords in submission order — so the runner's JSON output is
 * byte-identical to a serial sweep for every worker count (timing
 * fields aside).
 *
 * Determinism contract:
 *  - job_index is reserved at submission time, before any worker
 *    touches the job, so it depends only on the submission sequence;
 *  - records are committed at drain() in submission order, never in
 *    completion order;
 *  - with jobs == 1 each submission runs inline (no pool), which is
 *    exactly the old serial sweep;
 *  - a job whose simulation throws commits an error record (same
 *    job_index, same submission-order slot — docs/ROBUSTNESS.md) and
 *    is never memoised; every other job completes unaffected, so the
 *    surviving records stay byte-identical to a fault-free sweep;
 *  - a design point the runner replayed from a write-ahead journal
 *    (--resume) commits its journaled record verbatim into its
 *    submission slot without simulating — job indices still advance,
 *    so the un-journaled remainder of the sweep lands on exactly the
 *    indices an uninterrupted run would have given it;
 *  - jobs failing with a transient error kind ("io") are re-enqueued
 *    after the first drain pass with exponential backoff, up to
 *    1 + runner.retries() attempts (records carry `attempts`).
 *
 * Usage: submit the whole sweep (a "prefetch pass"), drain(), then
 * compute derived numbers (speedups, geomeans) through the runner's
 * now-warm memo cache.
 */

#ifndef BOP_HARNESS_SWEEP_FARM_HH
#define BOP_HARNESS_SWEEP_FARM_HH

#include <chrono>
#include <deque>
#include <memory>
#include <set>
#include <string>

#include "harness/experiment.hh"
#include "sim/parallel.hh"

namespace bop
{

/** Deduplicating, order-preserving parallel sweep executor. */
class SweepFarm
{
  public:
    /**
     * @param runner  shared memo/record store (outlives the farm).
     * @param jobs    worker count; 1 = run inline, serially.
     * @param backlog in-flight bound for TaskPool::submit backpressure
     *                (0 means 4 * jobs).
     */
    explicit SweepFarm(ExperimentRunner &runner, int jobs = 1,
                       std::size_t backlog = 0);
    ~SweepFarm(); ///< drains outstanding jobs

    SweepFarm(const SweepFarm &) = delete;
    SweepFarm &operator=(const SweepFarm &) = delete;

    int jobCount() const { return jobs; }
    ExperimentRunner &runner() { return runner_; }

    /**
     * Submit one design point under the runner's budget. Duplicates
     * (already memoised, or already submitted to this farm) are
     * dropped — a design point never simulates twice. Blocks when the
     * pool backlog is full.
     */
    void submit(const std::string &benchmark, const SystemConfig &cfg);

    /**
     * Wait for all submitted jobs, then commit their records to the
     * runner in submission order. After drain() every submitted
     * design point is memoised, so derived lookups through
     * ExperimentRunner::run() are pure cache hits.
     */
    void drain();

  private:
    struct Slot
    {
        std::string key;
        std::string benchmark;
        SystemConfig cfg;
        long jobIndex = -1;
        std::chrono::steady_clock::time_point submitted;
        RunRecord record;
    };

    /** Simulate one slot's design point into slot->record (attempt
     *  @p attempt); exceptions become error records in the slot. */
    void runSlot(Slot *slot, int attempt);

    ExperimentRunner &runner_;
    const int jobs;
    std::unique_ptr<TaskPool> pool; ///< null when jobs == 1
    /** Deque for reference stability: workers fill earlier slots
     *  while submit() keeps appending. Drained in order. */
    std::deque<Slot> slots;
    std::set<std::string> submitted; ///< keys queued this farm
};

} // namespace bop

#endif // BOP_HARNESS_SWEEP_FARM_HH
