/**
 * @file
 * The tuned Best-Offset variant modeled on the author's winning entry
 * to the 2nd Data Prefetching Championship (paper footnote 1).
 *
 * The DPC-2 submission kept the HPCA'16 learning algorithm but tuned
 * the machinery around it for the championship framework's scarcer
 * memory bandwidth. The functional differences reproduced here:
 *
 *  - *Dual-banked RR table*: two half-size banks selected by a line
 *    address bit, looked up in parallel. Same total capacity, fewer
 *    conflict evictions between the two insertion streams.
 *  - *Delay queue*: the base address of every eligible demand access
 *    enters a small FIFO and is written into the RR table only
 *    `delayCycles` later. A delayed entry means "this line was
 *    accessed at least one prefetch-latency ago", so the learner gets
 *    timeliness evidence that does not depend on the current offset D
 *    — in particular while prefetch is off (it replaces the base
 *    prefetcher's D=0 insert-on-fill rule) and during offset
 *    transitions.
 *  - *Aggressive throttling*: BADSCORE defaults to 10 (vs 1 in the
 *    HPCA'16 configuration, Sec. 6.1) — under tight bandwidth, weakly
 *    scoring offsets cost more than they return.
 *
 * Exact championship parameter values are used where the submission
 * documents them (bank count, delay-queue depth and delay, BADSCORE);
 * everything else is inherited from the paper's Table 2 defaults.
 */

#ifndef BOP_CORE_BEST_OFFSET_DPC2_HH
#define BOP_CORE_BEST_OFFSET_DPC2_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/offset_list.hh"
#include "core/rr_table.hh"
#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** Parameters of the DPC-2-style BO variant. */
struct BoDpc2Config
{
    std::size_t rrEntriesPerBank = 128; ///< 2 banks: 256 total (Table 2)
    unsigned rrTagBits = 12;
    int scoreMax = 31;
    int roundMax = 100;
    int badScore = 10;          ///< DPC-2 throttles much more eagerly
    int maxOffset = 256;

    std::size_t delayQueueEntries = 15;
    Cycle delayCycles = 60;     ///< models the latency of a timely fetch
};

/** Best-Offset prefetcher, DPC-2 tuned variant. */
class BestOffsetDpc2Prefetcher : public L2Prefetcher
{
  public:
    BestOffsetDpc2Prefetcher(PageSize page_size, BoDpc2Config cfg = {});

    void onAccess(const L2AccessEvent &ev,
                  std::vector<LineAddr> &out) override;
    void onFill(const L2FillEvent &ev) override;

    std::string name() const override { return "bo-dpc2"; }
    int currentOffset() const override { return prefetchOffset; }
    bool prefetchEnabled() const override { return prefetchOn; }

    // -- introspection (tests) --------------------------------------------
    const std::vector<int> &offsetList() const { return offsets; }
    std::uint64_t learningPhases() const { return phaseCount; }
    int lastPhaseBestScore() const { return lastBestScore; }
    std::size_t delayQueueSize() const { return delayQueue.size(); }
    bool rrContains(LineAddr line) const;

    /**
     * Checkpoint the learning state, both RR banks and the delay
     * queue (in-flight delayed inserts carry absolute due cycles).
     */
    void
    serialize(Serializer &s) override
    {
        const std::size_t n = scores.size();
        s.valueVec(scores);
        if (s.loading() && scores.size() != n)
            s.fail("BO-DPC2 score table size mismatch");
        rrBank0.serialize(s);
        rrBank1.serialize(s);
        s.seq(delayQueue, [](Serializer &sr, DelayedInsert &d) {
            sr.value(d.line);
            sr.value(d.due);
        });
        if (s.loading() && delayQueue.size() > cfg.delayQueueEntries)
            s.fail("BO-DPC2 delay queue over capacity");
        std::uint64_t test64 = testIndex;
        s.value(test64);
        if (s.loading()) {
            if (test64 >= n)
                s.fail("BO-DPC2 test index out of range");
            testIndex = static_cast<std::size_t>(test64);
        }
        s.value(round);
        s.value(scoreMaxHit);
        s.value(bestScoreInPhase);
        s.value(bestOffsetInPhase);
        s.value(prefetchOffset);
        s.value(prefetchOn);
        s.value(phaseCount);
        s.value(lastBestScore);
    }

  private:
    /** Which RR bank holds @p line. */
    RrTable &bankOf(LineAddr line)
    {
        return (line >> 1) & 1 ? rrBank1 : rrBank0;
    }
    const RrTable &
    bankOf(LineAddr line) const
    {
        return (line >> 1) & 1 ? rrBank1 : rrBank0;
    }

    /** Insert into the RR table (bank-selected). */
    void rrInsert(LineAddr line) { bankOf(line).insert(line); }

    /** Move due delay-queue entries into the RR table. */
    void drainDelayQueue(Cycle now);

    void learnStep(LineAddr x);
    void endPhase();

    BoDpc2Config cfg;
    std::vector<int> offsets;
    std::vector<int> scores;
    RrTable rrBank0;
    RrTable rrBank1;

    struct DelayedInsert
    {
        LineAddr line;
        Cycle due;
    };
    std::deque<DelayedInsert> delayQueue;

    std::size_t testIndex = 0;
    int round = 0;
    bool scoreMaxHit = false;
    int bestScoreInPhase = 0;
    int bestOffsetInPhase = 1;

    int prefetchOffset = 1;
    bool prefetchOn = true;

    std::uint64_t phaseCount = 0;
    int lastBestScore = 0;
};

} // namespace bop

#endif // BOP_CORE_BEST_OFFSET_DPC2_HH
