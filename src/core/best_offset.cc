#include "core/best_offset.hh"

#include <algorithm>
#include <cassert>

namespace bop
{

BestOffsetPrefetcher::BestOffsetPrefetcher(PageSize page_size, BoConfig cfg_)
    : L2Prefetcher(page_size),
      cfg(cfg_),
      rr(cfg_.rrEntries, cfg_.rrTagBits),
      rrAny(cfg_.rrEntries, cfg_.rrTagBits),
      dynBadScore(cfg_.badScore)
{
    if (!cfg.offsetOverride.empty())
        offsets = cfg.offsetOverride;
    else if (cfg.includeNegative)
        offsets = makeSignedOffsetList(cfg.maxOffset);
    else
        offsets = makeOffsetList(cfg.maxOffset);
    assert(!offsets.empty());
    scores.assign(offsets.size(), 0);
    bestOffsetInPhase = offsets.front();
}

void
BestOffsetPrefetcher::endPhase()
{
    ++phaseCount;
    const int scale = scoreScale();
    lastBestScore = bestScoreInPhase;
    lastBestOffset = bestOffsetInPhase;

    // Degree-2 extension: remember the runner-up offset of this phase.
    if (cfg.degree >= 2) {
        int second_score = -1;
        secondOffset = 0;
        for (std::size_t i = 0; i < offsets.size(); ++i) {
            if (offsets[i] == bestOffsetInPhase)
                continue;
            if (scores[i] > second_score) {
                second_score = scores[i];
                secondOffset = offsets[i];
            }
        }
        if (second_score <= dynBadScore * scale)
            secondOffset = 0;
    }

    // Adaptive-BADSCORE extension (Sec. 7 future work): phases that
    // produced mostly useless prefetches raise the threshold fast;
    // healthy phases relax it slowly.
    if (cfg.adaptiveBadScore) {
        if (prefetchOn && uselessInPhase > usefulInPhase) {
            dynBadScore = std::min(cfg.badScoreMax,
                                   std::max(dynBadScore * 2,
                                            dynBadScore + 1));
        } else {
            dynBadScore = std::max(cfg.badScoreMin, dynBadScore - 1);
        }
        usefulInPhase = 0;
        uselessInPhase = 0;
    }

    // Throttling: a best score not greater than BADSCORE means offset
    // prefetching is failing — turn prefetch off (learning continues).
    prefetchOn = bestScoreInPhase > dynBadScore * scale;
    if (prefetchOn)
        prefetchOffset = bestOffsetInPhase;
    else
        ++offPhaseCount;

    // Start a new phase.
    for (auto &s : scores)
        s = 0;
    round = 0;
    testIndex = 0;
    scoreMaxHit = false;
    bestScoreInPhase = 0;
    bestOffsetInPhase = offsets.front();
}

void
BestOffsetPrefetcher::learnStep(LineAddr x)
{
    const int d = offsets[testIndex];
    const std::int64_t candidate =
        static_cast<std::int64_t>(x) - static_cast<std::int64_t>(d);

    int increment = 0;
    if (candidate >= 0) {
        const LineAddr cand = static_cast<LineAddr>(candidate);
        if (cfg.coverageWeight > 0) {
            // Hybrid scoring (future work): full credit (2 half-points)
            // for a timely hit, partial credit for coverage-only — the
            // base address was accessed recently, so a prefetch with
            // offset d would have covered this access, perhaps late.
            if (rr.contains(cand))
                increment = 2;
            else if (rrAny.contains(cand))
                increment = cfg.coverageWeight;
        } else if (rr.contains(cand)) {
            increment = 1;
        }
    }

    if (increment > 0) {
        const int s = (scores[testIndex] += increment);
        // Incremental best tracking (paper footnote 3): strictly-greater
        // comparison means the first offset to reach a score wins ties.
        if (s > bestScoreInPhase) {
            bestScoreInPhase = s;
            bestOffsetInPhase = d;
        }
        if (s >= cfg.scoreMax * scoreScale())
            scoreMaxHit = true;
    }

    if (++testIndex >= offsets.size()) {
        // End of a round: each offset has been tested once.
        testIndex = 0;
        ++round;
        if (scoreMaxHit || round >= cfg.roundMax)
            endPhase();
    }
}

void
BestOffsetPrefetcher::onAccess(const L2AccessEvent &ev,
                               std::vector<LineAddr> &out)
{
    if (!ev.miss && !ev.prefetchedHit)
        return;

    if (ev.prefetchedHit)
        ++usefulInPhase;

    learnStep(ev.line);

    // The coverage table records every eligible access (after the
    // learning step, so an access never scores against itself).
    if (cfg.coverageWeight > 0)
        rrAny.insert(ev.line);

    if (!prefetchOn)
        return;

    const std::int64_t target =
        static_cast<std::int64_t>(ev.line) + prefetchOffset;
    if (target >= 0 &&
        inSamePage(ev.line, static_cast<LineAddr>(target))) {
        out.push_back(static_cast<LineAddr>(target));
    }

    if (cfg.degree >= 2 && secondOffset != 0) {
        const std::int64_t t2 =
            static_cast<std::int64_t>(ev.line) + secondOffset;
        if (t2 >= 0 && inSamePage(ev.line, static_cast<LineAddr>(t2)))
            out.push_back(static_cast<LineAddr>(t2));
    }
}

void
BestOffsetPrefetcher::onFill(const L2FillEvent &ev)
{
    if (prefetchOn) {
        // Record the base address Y-D of completed prefetches, using the
        // *current* offset D (paper Sec. 4.1: the base address is
        // obtained by subtracting the current prefetch offset from the
        // address of the prefetched line inserted into the L2).
        if (!ev.wasPrefetch)
            return;
        const std::int64_t base =
            static_cast<std::int64_t>(ev.line) - prefetchOffset;
        if (base >= 0 &&
            inSamePage(ev.line, static_cast<LineAddr>(base))) {
            rr.insert(static_cast<LineAddr>(base));
        }
    } else {
        // Prefetch off: record every fetched line Y (i.e. D = 0), so
        // learning keeps working and prefetch can be turned on again.
        rr.insert(ev.line);
    }
}

void
BestOffsetPrefetcher::onEvict(const L2EvictEvent &ev)
{
    if (ev.victimWasPrefetch)
        ++uselessInPhase;
}

void
BestOffsetPrefetcher::onLatePromotion(LineAddr line, Cycle now)
{
    (void)line;
    (void)now;
    ++usefulInPhase;
}

} // namespace bop
