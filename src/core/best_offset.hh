/**
 * @file
 * The Best-Offset (BO) prefetcher — the paper's contribution (Sec. 4).
 *
 * BO is an offset prefetcher: on an eligible L2 access to line X (miss
 * or prefetched hit) it prefetches X+D, where the offset D is re-learned
 * continuously. Learning tests every offset d in a fixed 52-entry list
 * round-robin, one offset per eligible access: d scores a point when
 * X-d hits in the Recent-Requests table, which records the base address
 * of *completed* prefetches — so a point means "a prefetch issued with
 * offset d for this very access would have been timely". A learning
 * phase ends at the end of a round once some score reaches SCOREMAX or
 * after ROUNDMAX rounds; the best-scoring offset becomes the new D.
 *
 * Throttling (Sec. 4.3): if the best score is not greater than BADSCORE
 * the prefetcher turns itself off — but learning continues, with the RR
 * table then recording every fetched line (as if D=0), so prefetching
 * can resume when the access pattern becomes regular again.
 */

#ifndef BOP_CORE_BEST_OFFSET_HH
#define BOP_CORE_BEST_OFFSET_HH

#include <cstdint>
#include <vector>

#include "core/offset_list.hh"
#include "core/rr_table.hh"
#include "prefetch/l2_prefetcher.hh"

namespace bop
{

/** BO prefetcher parameters; defaults are the paper's Table 2. */
struct BoConfig
{
    std::size_t rrEntries = 256;  ///< RR table entries
    unsigned rrTagBits = 12;      ///< RR partial tag width
    int scoreMax = 31;            ///< SCOREMAX (5-bit scores)
    int roundMax = 100;           ///< ROUNDMAX
    int badScore = 1;             ///< BADSCORE throttling threshold
    int maxOffset = 256;          ///< offset-list generation bound
    bool includeNegative = false; ///< extension: test negative offsets
    int degree = 1;               ///< 1 = paper; 2 = best + 2nd best
    /** Non-empty overrides the generated offset list. */
    std::vector<int> offsetOverride;

    // -- future-work extensions (paper Sec. 7), all off by default -------

    /**
     * Adjust the throttling threshold dynamically: when a learning
     * phase produced more useless prefetches (evicted with the
     * prefetch bit set) than useful ones (prefetched hits + late
     * promotions), BADSCORE doubles (throttle more eagerly); otherwise
     * it decays by one. The paper's conclusion names this adjustment
     * as future work ("Future work may try to adjust dynamically the
     * throttling parameter").
     */
    bool adaptiveBadScore = false;
    int badScoreMin = 0;          ///< adaptive floor
    int badScoreMax = 15;         ///< adaptive ceiling

    /**
     * Mix coverage into the timeliness-only score (the paper's other
     * future-work item: "striving for prefetch timeliness is not
     * always optimal", cf. the 462.libquantum analysis in Sec. 6).
     * When non-zero, scoring uses half-points: an RR (timely) hit
     * scores 2, and an offset whose prefetch would merely have
     * *covered* the access — the tested base address hits a second
     * table recording every recent eligible access — scores
     * `coverageWeight` (1 = half credit, 2 = equal credit). 0 keeps
     * the paper's scoring exactly.
     */
    int coverageWeight = 0;
};

/** The Best-Offset L2 prefetcher. */
class BestOffsetPrefetcher : public L2Prefetcher
{
  public:
    BestOffsetPrefetcher(PageSize page_size, BoConfig cfg = {});

    void onAccess(const L2AccessEvent &ev,
                  std::vector<LineAddr> &out) override;
    void onFill(const L2FillEvent &ev) override;
    void onEvict(const L2EvictEvent &ev) override;
    void onLatePromotion(LineAddr line, Cycle now) override;

    std::string name() const override { return "bo"; }
    int currentOffset() const override { return prefetchOffset; }
    bool prefetchEnabled() const override { return prefetchOn; }

    // -- introspection (tests, stats, examples) --------------------------
    const std::vector<int> &offsetList() const { return offsets; }
    const std::vector<int> &scoreTable() const { return scores; }
    const RrTable &rrTable() const { return rr; }
    int currentRound() const { return round; }
    std::uint64_t learningPhases() const { return phaseCount; }
    std::uint64_t offPhases() const { return offPhaseCount; }
    int lastPhaseBestScore() const { return lastBestScore; }
    int lastPhaseBestOffset() const { return lastBestOffset; }
    int secondBestOffset() const { return secondOffset; }
    /** Current throttling threshold (== cfg value unless adaptive). */
    int effectiveBadScore() const { return dynBadScore; }

    /** Directly seed the RR table (tests / standalone experiments). */
    void recordCompletedPrefetchBase(LineAddr base) { rr.insert(base); }

    /**
     * Checkpoint the learning state: score table, both RR tables, the
     * round-robin test position, the live offset/on-off decision and
     * the adaptive-threshold state. The offset list itself is
     * config-derived and not serialized.
     */
    void
    serialize(Serializer &s) override
    {
        const std::size_t n = scores.size();
        s.valueVec(scores);
        if (s.loading() && scores.size() != n)
            s.fail("BO score table size mismatch");
        rr.serialize(s);
        rrAny.serialize(s);
        std::uint64_t test64 = testIndex;
        s.value(test64);
        if (s.loading()) {
            if (test64 >= n)
                s.fail("BO test index out of range");
            testIndex = static_cast<std::size_t>(test64);
        }
        s.value(round);
        s.value(scoreMaxHit);
        s.value(bestScoreInPhase);
        s.value(bestOffsetInPhase);
        s.value(prefetchOffset);
        s.value(prefetchOn);
        s.value(secondOffset);
        s.value(phaseCount);
        s.value(offPhaseCount);
        s.value(lastBestScore);
        s.value(lastBestOffset);
        s.value(dynBadScore);
        s.value(usefulInPhase);
        s.value(uselessInPhase);
    }

  private:
    /** One best-offset learning step for the accessed line X. */
    void learnStep(LineAddr x);
    /** Close the current learning phase and start a new one. */
    void endPhase();

    /**
     * Score granularity: 1 in the paper's scheme, 2 under hybrid
     * coverage scoring (so a coverage-only hit can count half).
     */
    int scoreScale() const { return cfg.coverageWeight > 0 ? 2 : 1; }

    BoConfig cfg;
    std::vector<int> offsets;
    std::vector<int> scores;
    RrTable rr;
    RrTable rrAny;              ///< every recent eligible access (hybrid)

    std::size_t testIndex = 0;  ///< next offset to test in this round
    int round = 0;
    bool scoreMaxHit = false;   ///< some score reached SCOREMAX
    int bestScoreInPhase = 0;   ///< incremental best (paper footnote 3)
    int bestOffsetInPhase = 1;

    int prefetchOffset = 1;     ///< current D (starts as next-line)
    bool prefetchOn = true;
    int secondOffset = 0;       ///< degree-2 extension companion offset

    std::uint64_t phaseCount = 0;
    std::uint64_t offPhaseCount = 0;
    int lastBestScore = 0;
    int lastBestOffset = 1;

    // future-work extension state
    int dynBadScore;            ///< live threshold (adaptive extension)
    std::uint64_t usefulInPhase = 0;
    std::uint64_t uselessInPhase = 0;
};

} // namespace bop

#endif // BOP_CORE_BEST_OFFSET_HH
