#include "core/rr_table.hh"

#include <bit>
#include <cassert>

namespace bop
{

RrTable::RrTable(std::size_t entries, unsigned tag_bits)
    : indexBits(static_cast<unsigned>(std::countr_zero(entries))),
      numTagBits(tag_bits),
      tags(entries, 0),
      valid(entries, false)
{
    assert(entries >= 2 && (entries & (entries - 1)) == 0);
    assert(tag_bits >= 1 && tag_bits <= 32);
}

std::size_t
RrTable::indexOf(LineAddr line) const
{
    // Paper Sec. 4.4 (generalised from the 256-entry example): XOR the
    // low index-width line-address bits with the next index-width bits.
    const std::uint64_t mask = (1ull << indexBits) - 1;
    return static_cast<std::size_t>((line ^ (line >> indexBits)) & mask);
}

std::uint32_t
RrTable::tagOf(LineAddr line) const
{
    // Skip the low index bits, extract the next tag_bits bits.
    const std::uint64_t mask = (1ull << numTagBits) - 1;
    return static_cast<std::uint32_t>((line >> indexBits) & mask);
}

void
RrTable::insert(LineAddr line)
{
    const std::size_t idx = indexOf(line);
    tags[idx] = tagOf(line);
    valid[idx] = true;
}

bool
RrTable::contains(LineAddr line) const
{
    const std::size_t idx = indexOf(line);
    return valid[idx] && tags[idx] == tagOf(line);
}

void
RrTable::clear()
{
    valid.assign(valid.size(), false);
}

} // namespace bop
