/**
 * @file
 * The BO prefetcher's offset list (paper Sec. 4.2).
 *
 * The paper samples the offsets between 1 and 256 algorithmically: an
 * offset is included iff its prime factorization contains no prime
 * greater than 5 (i.e. offsets of the form 2^i * 3^j * 5^k). This gives
 * 52 offsets, biases the list towards small offsets, keeps the score
 * table small, and guarantees that the least common multiple of any two
 * listed offsets is also listed when it is not too large — which is what
 * makes interleaved streams (Sec. 3.3) prefetchable with one offset.
 */

#ifndef BOP_CORE_OFFSET_LIST_HH
#define BOP_CORE_OFFSET_LIST_HH

#include <vector>

namespace bop
{

/**
 * Build the offset list: all d in [1, max_offset] whose prime factors
 * are all <= @p max_prime. Defaults reproduce the paper's 52 offsets.
 */
std::vector<int> makeOffsetList(int max_offset = 256, int max_prime = 5);

/**
 * Same list extended with the negated offsets (paper Sec. 4.2 notes
 * negative offsets are possible but were not beneficial on CPU2006;
 * provided for experimentation). Order: 1, -1, 2, -2, ...
 */
std::vector<int> makeSignedOffsetList(int max_offset = 256,
                                      int max_prime = 5);

/** True iff all prime factors of n are <= max_prime (n >= 1). */
bool isSmooth(int n, int max_prime);

} // namespace bop

#endif // BOP_CORE_OFFSET_LIST_HH
