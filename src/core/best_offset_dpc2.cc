#include "core/best_offset_dpc2.hh"

#include <cassert>

namespace bop
{

BestOffsetDpc2Prefetcher::BestOffsetDpc2Prefetcher(PageSize page_size,
                                                   BoDpc2Config cfg_)
    : L2Prefetcher(page_size),
      cfg(cfg_),
      offsets(makeOffsetList(cfg_.maxOffset)),
      rrBank0(cfg_.rrEntriesPerBank, cfg_.rrTagBits),
      rrBank1(cfg_.rrEntriesPerBank, cfg_.rrTagBits)
{
    assert(!offsets.empty());
    scores.assign(offsets.size(), 0);
    bestOffsetInPhase = offsets.front();
}

bool
BestOffsetDpc2Prefetcher::rrContains(LineAddr line) const
{
    return bankOf(line).contains(line);
}

void
BestOffsetDpc2Prefetcher::drainDelayQueue(Cycle now)
{
    while (!delayQueue.empty() && delayQueue.front().due <= now) {
        rrInsert(delayQueue.front().line);
        delayQueue.pop_front();
    }
}

void
BestOffsetDpc2Prefetcher::endPhase()
{
    ++phaseCount;
    lastBestScore = bestScoreInPhase;

    prefetchOn = bestScoreInPhase > cfg.badScore;
    if (prefetchOn)
        prefetchOffset = bestOffsetInPhase;

    for (auto &s : scores)
        s = 0;
    round = 0;
    testIndex = 0;
    scoreMaxHit = false;
    bestScoreInPhase = 0;
    bestOffsetInPhase = offsets.front();
}

void
BestOffsetDpc2Prefetcher::learnStep(LineAddr x)
{
    const int d = offsets[testIndex];
    const std::int64_t candidate =
        static_cast<std::int64_t>(x) - static_cast<std::int64_t>(d);
    if (candidate >= 0 && rrContains(static_cast<LineAddr>(candidate))) {
        const int s = ++scores[testIndex];
        if (s > bestScoreInPhase) {
            bestScoreInPhase = s;
            bestOffsetInPhase = d;
        }
        if (s >= cfg.scoreMax)
            scoreMaxHit = true;
    }

    if (++testIndex >= offsets.size()) {
        testIndex = 0;
        ++round;
        if (scoreMaxHit || round >= cfg.roundMax)
            endPhase();
    }
}

void
BestOffsetDpc2Prefetcher::onAccess(const L2AccessEvent &ev,
                                   std::vector<LineAddr> &out)
{
    if (!ev.miss && !ev.prefetchedHit)
        return;

    drainDelayQueue(ev.cycle);
    learnStep(ev.line);

    // Feed the delay queue with this access: once `delayCycles` have
    // elapsed the address becomes timeliness evidence in the RR table.
    // A full queue drops the oldest entry (cheap hardware FIFO).
    if (delayQueue.size() >= cfg.delayQueueEntries)
        delayQueue.pop_front();
    delayQueue.push_back({ev.line, ev.cycle + cfg.delayCycles});

    if (!prefetchOn)
        return;

    const std::int64_t target =
        static_cast<std::int64_t>(ev.line) + prefetchOffset;
    if (target >= 0 &&
        inSamePage(ev.line, static_cast<LineAddr>(target))) {
        out.push_back(static_cast<LineAddr>(target));
    }
}

void
BestOffsetDpc2Prefetcher::onFill(const L2FillEvent &ev)
{
    // Completed-prefetch bases still train the RR table exactly as in
    // the base prefetcher; the delay queue adds to (rather than
    // replaces) this stream. The off-state D=0 rule is gone: delayed
    // demand inserts carry the learning signal instead.
    if (!prefetchOn || !ev.wasPrefetch)
        return;
    const std::int64_t base =
        static_cast<std::int64_t>(ev.line) - prefetchOffset;
    if (base >= 0 && inSamePage(ev.line, static_cast<LineAddr>(base)))
        rrInsert(static_cast<LineAddr>(base));
}

} // namespace bop
