#include "core/offset_list.hh"

namespace bop
{

bool
isSmooth(int n, int max_prime)
{
    if (n < 1)
        return false;
    for (int p = 2; p <= max_prime; ++p) {
        while (n % p == 0)
            n /= p;
    }
    return n == 1;
}

std::vector<int>
makeOffsetList(int max_offset, int max_prime)
{
    std::vector<int> offsets;
    for (int d = 1; d <= max_offset; ++d) {
        if (isSmooth(d, max_prime))
            offsets.push_back(d);
    }
    return offsets;
}

std::vector<int>
makeSignedOffsetList(int max_offset, int max_prime)
{
    std::vector<int> signed_offsets;
    for (int d : makeOffsetList(max_offset, max_prime)) {
        signed_offsets.push_back(d);
        signed_offsets.push_back(-d);
    }
    return signed_offsets;
}

} // namespace bop
