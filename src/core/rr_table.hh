/**
 * @file
 * Recent Requests (RR) table of the BO prefetcher (paper Secs. 4.1, 4.4).
 *
 * The RR table records the *base address* of prefetch requests that have
 * been completed: if the prefetched line is X+D, the base address X is
 * written when the line is inserted into the L2. A hit for X-d during
 * best-offset learning therefore means a prefetch with offset d would
 * have been issued early enough to complete by now — this is how BO
 * folds prefetch timeliness into offset selection.
 *
 * Implementation follows the paper's simplest choice: direct-mapped,
 * accessed through a hash (for the default 256 entries: XOR of the 8
 * least-significant line-address bits with the next 8 bits), holding a
 * 12-bit partial tag (the line-address bits just above the 8 skipped
 * LSBs).
 */

#ifndef BOP_CORE_RR_TABLE_HH
#define BOP_CORE_RR_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/serializer.hh"
#include "common/types.hh"

namespace bop
{

/** Direct-mapped recent-requests table with partial tags. */
class RrTable
{
  public:
    /**
     * @param entries  number of entries (power of two; paper: 256)
     * @param tag_bits partial tag width (paper: 12)
     */
    explicit RrTable(std::size_t entries = 256, unsigned tag_bits = 12);

    /** Record that @p line was the base of a completed prefetch. */
    void insert(LineAddr line);

    /** Was @p line recently recorded? (modulo partial-tag aliasing) */
    bool contains(LineAddr line) const;

    /** Invalidate all entries. */
    void clear();

    std::size_t numEntries() const { return valid.size(); }
    unsigned tagBits() const { return numTagBits; }

    /** Exposed for tests: index/tag computation. */
    std::size_t indexOf(LineAddr line) const;
    std::uint32_t tagOf(LineAddr line) const;

    /** Checkpoint tags and valid bits (geometry is config-derived). */
    void
    serialize(Serializer &s)
    {
        const std::size_t entries = valid.size();
        s.valueVec(tags);
        s.boolVec(valid);
        if (s.loading() &&
            (tags.size() != entries || valid.size() != entries))
            s.fail("RR table geometry mismatch");
    }

  private:
    unsigned indexBits;
    unsigned numTagBits;
    std::vector<std::uint32_t> tags;
    std::vector<bool> valid;
};

} // namespace bop

#endif // BOP_CORE_RR_TABLE_HH
