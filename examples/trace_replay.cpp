/**
 * @file
 * Trace-file workflow example: capture a workload generator into a
 * binary trace file, inspect it, replay it through the simulator, and
 * verify the replayed run is cycle-identical to driving the generator
 * directly — the property that makes file traces interchangeable with
 * built-in workloads (and external traces first-class citizens).
 *
 * Usage: trace_replay [benchmark] (default 462.libquantum)
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "harness/experiment.hh"
#include "sim/system.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace bop;

    const std::string bench = argc > 1 ? argv[1] : "462.libquantum";
    const std::string path = "/tmp/bop_example_" + shortName(bench)
                             + ".bt";
    const std::uint64_t warmup = 20000;
    const std::uint64_t measure = 60000;
    // The window may overshoot by up to a retire-width of instructions;
    // capture enough records that the file never wraps mid-comparison.
    const std::uint64_t records = warmup + measure + 1024;

    // 1. Capture.
    auto source = makeWorkload(bench, /*seed=*/42);
    captureTrace(*source, records, path);
    std::cout << "captured " << records << " instructions of " << bench
              << " to " << path << "\n";

    // 2. Inspect.
    FileTrace probe(path);
    std::uint64_t loads = 0, stores = 0, branches = 0;
    for (std::uint64_t i = 0; i < probe.records(); ++i) {
        switch (probe.next().kind) {
          case InstrKind::Load:
            ++loads;
            break;
          case InstrKind::Store:
            ++stores;
            break;
          case InstrKind::Branch:
            ++branches;
            break;
          default:
            break;
        }
    }
    std::printf("mix: %.1f%% loads, %.1f%% stores, %.1f%% branches\n",
                100.0 * static_cast<double>(loads) /
                    static_cast<double>(records),
                100.0 * static_cast<double>(stores) /
                    static_cast<double>(records),
                100.0 * static_cast<double>(branches) /
                    static_cast<double>(records));

    // 3. Replay through the simulator, against the live generator.
    SystemConfig cfg;
    cfg.activeCores = 1;
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;

    auto run = [&](std::unique_ptr<TraceSource> trace) {
        std::vector<std::unique_ptr<TraceSource>> traces;
        traces.push_back(std::move(trace));
        System sys(cfg, std::move(traces));
        return sys.run(warmup, measure);
    };
    const RunStats from_file = run(std::make_unique<FileTrace>(path));
    const RunStats from_gen = run(makeWorkload(bench, 42));

    std::printf("replayed file : IPC %.4f, %llu cycles\n",
                from_file.ipc(),
                static_cast<unsigned long long>(from_file.cycles));
    std::printf("live generator: IPC %.4f, %llu cycles\n",
                from_gen.ipc(),
                static_cast<unsigned long long>(from_gen.cycles));

    if (from_file.cycles == from_gen.cycles) {
        std::cout << "cycle-identical: file traces are a faithful "
                     "transport format.\n";
        std::remove(path.c_str());
        return 0;
    }
    std::cout << "MISMATCH — trace capture/replay diverged!\n";
    return 1;
}
