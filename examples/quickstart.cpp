/**
 * @file
 * Quickstart: drive the Best-Offset prefetcher standalone on a strided
 * access pattern and watch it learn the stride — no simulator needed.
 *
 * This is the 30-second tour of the public API:
 *   1. construct a BestOffsetPrefetcher (Table 2 defaults),
 *   2. feed it eligible L2 accesses (misses / prefetched hits),
 *   3. feed it fills (completed prefetches) so the RR table learns
 *      which offsets would have been timely,
 *   4. read back the prefetch requests it wants to issue.
 */

#include <cstdio>

#include "core/best_offset.hh"

int
main()
{
    using namespace bop;

    BestOffsetPrefetcher bo(PageSize::FourMB);
    std::printf("offset list has %zu entries; initial offset D=%d\n",
                bo.offsetList().size(), bo.currentOffset());

    // A program streaming through memory with a 3-line stride
    // (e.g. 192-byte records): lines X, X+3, X+6, ...
    const int stride = 3;
    LineAddr x = 1 << 20;
    std::vector<LineAddr> prefetches;

    for (int access = 0; access < 6000; ++access) {
        // The L2 sees a read access that misses.
        prefetches.clear();
        bo.onAccess({x, /*miss=*/true, /*prefetchedHit=*/false,
                     static_cast<Cycle>(access)},
                    prefetches);

        // Pretend every issued prefetch completes a little later: the
        // hierarchy then inserts the prefetched line into the L2, and
        // the BO prefetcher records the base address in its RR table.
        for (const LineAddr target : prefetches)
            bo.onFill({target, /*wasPrefetch=*/true,
                       static_cast<Cycle>(access)});

        x += stride;
    }

    std::printf("after %d strided accesses:\n", 6000);
    std::printf("  learned offset D = %d (stride was %d)\n",
                bo.currentOffset(), stride);
    std::printf("  learning phases  = %llu\n",
                static_cast<unsigned long long>(bo.learningPhases()));
    std::printf("  best score       = %d (SCOREMAX=31)\n",
                bo.lastPhaseBestScore());
    std::printf("  prefetch enabled = %s\n",
                bo.prefetchEnabled() ? "yes" : "no");

    if (bo.currentOffset() % stride == 0 && bo.currentOffset() > 0) {
        std::printf("OK: D is a multiple of the stride — 100%% coverage "
                    "with timeliness.\n");
        return 0;
    }
    std::printf("unexpected: D is not a multiple of the stride\n");
    return 1;
}
