/**
 * @file
 * Full-system example: run one benchmark through the complete simulated
 * quad-core (here: 1 active core) under the whole prefetcher zoo —
 * the paper's contenders (none / next-line / SBP / BO) plus the
 * extension baselines (stream buffers, FDP, AC/DC, DPC-2-tuned BO) —
 * and compare IPC, DRAM traffic, prefetch quality and the learned
 * offset.
 *
 * Usage: prefetcher_shootout [benchmark] (default 433.milc)
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "trace/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace bop;

    const std::string bench = argc > 1 ? argv[1] : "433.milc";
    std::cout << "Benchmark: " << bench << " (1 core, 4MB pages)\n\n";

    ExperimentRunner runner;
    TextTable table;
    table.row("L2 prefetcher", "IPC", "speedup", "L2 MPKI",
              "DRAM/1k-instr", "coverage", "timeliness", "learned D");

    SystemConfig base = baselineConfig(1, PageSize::FourMB);
    const double base_ipc = runner.run(bench, base).ipc();

    for (const auto kind :
         {L2PrefetcherKind::None, L2PrefetcherKind::NextLine,
          L2PrefetcherKind::StreamBuffer, L2PrefetcherKind::Fdp,
          L2PrefetcherKind::Acdc, L2PrefetcherKind::Sandbox,
          L2PrefetcherKind::BestOffset,
          L2PrefetcherKind::BestOffsetDpc2}) {
        SystemConfig cfg = base;
        cfg.l2Prefetcher = kind;
        const RunStats &s = runner.run(bench, cfg);
        std::string offset = "-";
        if (kind == L2PrefetcherKind::BestOffset)
            offset = std::to_string(s.boFinalOffset);
        else if (kind == L2PrefetcherKind::NextLine)
            offset = "1";
        table.row(cfg.describe(), TextTable::fmt(s.ipc()),
                  TextTable::fmt(s.ipc() / base_ipc),
                  TextTable::fmt(s.l2Mpki(), 1),
                  TextTable::fmt(s.dramPer1kInstr(), 1),
                  TextTable::fmt(s.prefetchCoverage()),
                  TextTable::fmt(s.prefetchTimeliness()), offset);
    }
    table.print(std::cout);
    std::cout << "\n(speedups are relative to the next-line baseline, "
                 "as in the paper)\n";
    return 0;
}
