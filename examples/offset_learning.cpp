/**
 * @file
 * Reproduces the Sec. 3 examples: sequential, strided and interleaved
 * streams, showing which offset the BO learning machinery converges to
 * for each and printing the score table of the final learning phase.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/best_offset.hh"

namespace
{

using namespace bop;

/** Bit-vector pattern of accessed lines, repeated over a region. */
struct PatternStream
{
    std::string bits;     ///< e.g. "110" = lines 0,1 skipped 2, ...
    LineAddr base;
    std::size_t position = 0;

    LineAddr
    next()
    {
        while (bits[position % bits.size()] == '0')
            ++position;
        return base + position++;
    }
};

/** Run BO on interleaved pattern streams and report the offset. */
void
runExample(const std::string &title, std::vector<PatternStream> streams,
           int accesses)
{
    BoConfig cfg;
    cfg.roundMax = 40;
    BestOffsetPrefetcher bo(PageSize::FourMB, cfg);
    std::vector<LineAddr> out;

    std::size_t turn = 0;
    for (int i = 0; i < accesses; ++i) {
        LineAddr x = streams[turn % streams.size()].next();
        ++turn;
        out.clear();
        bo.onAccess({x, true, false, static_cast<Cycle>(i)}, out);
        for (const LineAddr target : out)
            bo.onFill({target, true, static_cast<Cycle>(i)});
    }

    std::printf("%-28s -> learned offset D = %-3d (phases=%llu, "
                "best score=%d)\n",
                title.c_str(), bo.currentOffset(),
                static_cast<unsigned long long>(bo.learningPhases()),
                bo.lastPhaseBestScore());

    // Show the top-scoring offsets of the in-progress score table.
    std::vector<std::pair<int, int>> scored;
    for (std::size_t i = 0; i < bo.offsetList().size(); ++i)
        scored.push_back({bo.scoreTable()[i], bo.offsetList()[i]});
    std::sort(scored.rbegin(), scored.rend());
    std::printf("  current-phase top offsets:");
    for (int i = 0; i < 5 && scored[i].first > 0; ++i)
        std::printf("  D=%d(score %d)", scored[i].second,
                    scored[i].first);
    std::printf("\n\n");
}

} // namespace

int
main()
{
    std::printf("Paper Sec. 3 examples — what best-offset learning "
                "converges to:\n\n");

    // Example 1: sequential stream "1111...": any offset works; larger
    // offsets win on timeliness. (Here, every issued prefetch completes
    // before reuse, so D settles on an offset with a full score.)
    runExample("sequential (111111...)",
               {{std::string("1"), 1 << 10}}, 12000);

    // Example 2: +96B strided stream -> lines "110110...": offsets
    // multiple of 3 give 100% coverage.
    runExample("strided 96B (110110...)",
               {{std::string("110"), 1 << 12}}, 12000);

    // Example 3: interleaved "10" and "110" streams: multiples of 2
    // cover S1, multiples of 3 cover S2, multiples of 6 cover both.
    runExample("interleaved 10 + 110",
               {{std::string("10"), 1 << 14},
                {std::string("110"), 1 << 16}},
               12000);
    return 0;
}
