/**
 * @file
 * Full-system example reproducing the paper's multi-core methodology
 * (Sec. 5.1): core 0 runs a benchmark while cores 1..3 run the
 * cache-thrashing micro-benchmark. Shows how contention stretches the
 * L2 miss latency and how the Best-Offset prefetcher responds by
 * choosing larger offsets (Sec. 6: "The best offset is generally larger
 * with longer L2 miss latencies").
 *
 * Usage: multicore_contention [benchmark] (default 462.libquantum)
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "harness/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace bop;

    const std::string bench = argc > 1 ? argv[1] : "462.libquantum";
    std::cout << "Benchmark on core 0: " << bench
              << "; other active cores run the L3 thrasher.\n\n";

    ExperimentRunner runner;
    TextTable table;
    table.row("active cores", "channels", "baseline IPC", "BO IPC",
              "BO speedup", "BO offset", "DRAM/1k-instr");

    // 1/2/4 cores are the paper's configurations; 8 goes beyond them
    // (the topology is runtime configuration — the channel count grows
    // with the core count; see ext_scaling for the full 1-16 sweep).
    for (const int cores : {1, 2, 4, 8}) {
        SystemConfig base = baselineConfig(cores, PageSize::FourMB);
        SystemConfig bo = base;
        bo.l2Prefetcher = L2PrefetcherKind::BestOffset;

        const RunStats &sb = runner.run(bench, base);
        const RunStats &so = runner.run(bench, bo);
        table.row(cores, base.numChannels, TextTable::fmt(sb.ipc()),
                  TextTable::fmt(so.ipc()),
                  TextTable::fmt(so.ipc() / sb.ipc()),
                  so.boFinalOffset,
                  TextTable::fmt(so.dramPer1kInstr(), 1));
    }
    table.print(std::cout);
    std::cout << "\nExpected shape (paper Fig. 2 / Fig. 6): core-0 IPC "
                 "drops as thrashers join;\nBO's speedup over next-line "
                 "is typically larger at 2 cores than at 1.\n";
    return 0;
}
