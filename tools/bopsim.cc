/**
 * @file
 * bopsim — command-line driver for the simulator.
 *
 * Runs one workload (a built-in SPEC-like generator or a binary trace
 * file) under one configuration and prints the run's statistics,
 * including the prefetch quality metrics. This is the entry point a
 * downstream user reaches for before writing code against the library.
 *
 * Examples:
 *   bopsim --list
 *   bopsim --workload 462.libquantum --prefetcher bo
 *   bopsim --workload 433.milc --prefetcher fixed --offset 32 \
 *          --page 4m --cores 2
 *   bopsim --trace my.trace --prefetcher bo-dpc2 --instr 1000000
 *   bopsim --serve --jobs 4 < jobs.ndjson > records.ndjson
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include <iostream>

#include "harness/experiment.hh"
#include "harness/json_report.hh"
#include "harness/serve.hh"
#include "sim/system.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "workload selection (one of):\n"
        "  --workload NAME     built-in SPEC CPU2006-like generator\n"
        "  --trace FILE[,FILE...]\n"
        "                      trace file(s): BOPTRACE or ChampSim/DPC,\n"
        "                      .gz/.xz ok, format autodetected; with\n"
        "                      --cores N, file i drives core i and any\n"
        "                      remaining cores run the thrasher\n"
        "  --skip N            discard the first N trace instructions\n"
        "                      (a seek for BOPTRACE; ChampSim decodes\n"
        "                      and discards); requires --trace\n"
        "  --sample M          replay a window of at most M trace\n"
        "                      instructions (SimPoint-style slicing);\n"
        "                      requires --trace\n"
        "  --list              list built-in workloads and exit\n"
        "\n"
        "configuration (defaults: paper baseline, Table 1):\n"
        "  --prefetcher KIND   none | next-line | fixed | bo | bo-dpc2\n"
        "                      | sbp | stream | streambuf | fdp | acdc\n"
        "  --offset D          fixed-offset D (with --prefetcher fixed)\n"
        "  --cores N           active cores (default 1; paper: 1, 2, 4)\n"
        "  --num-cores N       chip topology core count (default: same\n"
        "                      as --cores)\n"
        "  --channels M        DRAM channels, power of two (default 2)\n"
        "  --page SIZE         4k or 4m (default 4k)\n"
        "  --l3 POLICY         5p | lru | drrip (default 5p)\n"
        "  --no-dl1-stride     disable the DL1 stride prefetcher\n"
        "\n"
        "BO parameters (Table 2 defaults):\n"
        "  --bo-badscore N     throttling threshold (default 1)\n"
        "  --bo-rr N           RR table entries (default 256)\n"
        "  --bo-degree N       1 or 2 (default 1)\n"
        "  --bo-adaptive       adaptive BADSCORE (Sec. 7 future work)\n"
        "  --bo-coverage W     hybrid coverage scoring weight (0-2)\n"
        "\n"
        "batch service:\n"
        "  --serve             read newline-delimited JSON job objects\n"
        "                      from stdin, stream one run record back\n"
        "                      per job as it completes; see README\n"
        "                      \"Sweep farm & serve mode\"\n"
        "  --jobs N            worker threads for --serve (default 1;\n"
        "                      also BOP_JOBS=N)\n"
        "  --backlog N         max in-flight jobs before the stdin\n"
        "                      reader blocks (default 4*jobs)\n"
        "  --job-timeout SEC   per-job wall-clock deadline; a job still\n"
        "                      simulating past it answers with an error\n"
        "                      record instead of stalling the batch\n"
        "                      (default off; also BOP_JOB_TIMEOUT=SEC)\n"
        "                      SIGINT/SIGTERM drain gracefully: no new\n"
        "                      lines accepted, in-flight jobs answer\n"
        "  --journal FILE      append every committed record to a\n"
        "                      crash-durable write-ahead journal\n"
        "                      (fsync-on-commit; docs/ROBUSTNESS.md)\n"
        "  --resume FILE       replay a journal first: journaled jobs\n"
        "                      answer verbatim, only the rest simulate\n"
        "  --retries N         retry transient (kind \"io\") job\n"
        "                      failures up to N times with exponential\n"
        "                      backoff (default BOP_RETRIES or 0)\n"
        "\n"
        "checkpointing (format: docs/CHECKPOINT_FORMAT.md):\n"
        "  --save-checkpoint FILE\n"
        "                      write the warm state to FILE at the\n"
        "                      warmup/measure boundary, then measure\n"
        "  --restore-checkpoint FILE\n"
        "                      restore the warm state from FILE instead\n"
        "                      of simulating the warmup, then measure;\n"
        "                      statistics are bit-identical to the\n"
        "                      uninterrupted run's\n"
        "\n"
        "run control:\n"
        "  --warmup N          warm-up instructions (default 100000)\n"
        "  --instr N           measured instructions (default 400000)\n"
        "  --seed S            run seed (default 42)\n"
        "  --no-fast-forward   tick every cycle (reference engine; the\n"
        "                      simulated stats are bit-identical either\n"
        "                      way — also BOP_DISABLE_FASTFORWARD=1)\n"
        "  --threads N         worker threads for the tick engine\n"
        "                      (default 1 = serial; stats are\n"
        "                      bit-identical for every N — also\n"
        "                      BOP_THREADS=N)\n"
        "  --json PATH         write a machine-readable run record\n",
        argv0);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "bopsim: %s\n", msg.c_str());
    std::exit(1);
}

/** Raised by SIGINT/SIGTERM; --serve drains gracefully when set. */
std::atomic<bool> stop_requested{false};

void
onStopSignal(int)
{
    stop_requested.store(true, std::memory_order_relaxed);
}

bop::L2PrefetcherKind
parsePrefetcher(const std::string &name)
{
    bop::L2PrefetcherKind kind;
    if (!bop::parseL2PrefetcherName(name, kind))
        die("unknown prefetcher '" + name + "'");
    return kind;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bop;

    std::string workload;
    std::string trace_file;
    std::string json_path;
    std::string save_ckpt;
    std::string restore_ckpt;
    SystemConfig cfg;
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    std::uint64_t warmup = 100000;
    std::uint64_t instr = 400000;
    std::uint64_t skip = 0;
    std::uint64_t sample = 0;
    bool serve = false;
    int jobs = 1;
    std::size_t backlog = 0;
    double job_timeout = -1.0; ///< <0 = not given; BOP_JOB_TIMEOUT rules
    std::string journal_path;
    std::string resume_path;
    int retries = -1; ///< <0 = not given; BOP_RETRIES rules
    if (const char *j = std::getenv("BOP_JOBS")) {
        const int env_jobs = std::atoi(j);
        if (env_jobs >= 1)
            jobs = env_jobs;
    }

    auto next_arg = [&](int &i) -> std::string {
        if (i + 1 >= argc)
            die(std::string(argv[i]) + " needs an argument");
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list") {
            for (const auto &name : benchmarkNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--workload") {
            workload = next_arg(i);
        } else if (arg == "--trace") {
            trace_file = next_arg(i);
        } else if (arg == "--skip") {
            skip = std::strtoull(next_arg(i).c_str(), nullptr, 10);
        } else if (arg == "--sample") {
            sample = std::strtoull(next_arg(i).c_str(), nullptr, 10);
        } else if (arg == "--serve") {
            serve = true;
        } else if (arg == "--jobs") {
            jobs = std::atoi(next_arg(i).c_str());
            if (jobs < 1)
                jobs = 1;
        } else if (arg == "--backlog") {
            backlog = static_cast<std::size_t>(
                std::strtoull(next_arg(i).c_str(), nullptr, 10));
        } else if (arg == "--job-timeout") {
            job_timeout = std::strtod(next_arg(i).c_str(), nullptr);
        } else if (arg == "--no-fast-forward") {
            cfg.fastForward = false;
        } else if (arg == "--prefetcher") {
            cfg.l2Prefetcher = parsePrefetcher(next_arg(i));
        } else if (arg == "--offset") {
            cfg.fixedOffset = std::atoi(next_arg(i).c_str());
        } else if (arg == "--cores") {
            cfg.activeCores = std::atoi(next_arg(i).c_str());
        } else if (arg == "--num-cores") {
            cfg.numCores = std::atoi(next_arg(i).c_str());
        } else if (arg == "--channels") {
            cfg.numChannels = std::atoi(next_arg(i).c_str());
        } else if (arg == "--page") {
            const std::string v = next_arg(i);
            if (v == "4k" || v == "4K")
                cfg.pageSize = PageSize::FourKB;
            else if (v == "4m" || v == "4M")
                cfg.pageSize = PageSize::FourMB;
            else
                die("--page must be 4k or 4m");
        } else if (arg == "--l3") {
            const std::string v = next_arg(i);
            if (v == "5p")
                cfg.l3Policy = L3PolicyKind::P5;
            else if (v == "lru")
                cfg.l3Policy = L3PolicyKind::Lru;
            else if (v == "drrip")
                cfg.l3Policy = L3PolicyKind::Drrip;
            else
                die("--l3 must be 5p, lru or drrip");
        } else if (arg == "--no-dl1-stride") {
            cfg.dl1StridePrefetcher = false;
        } else if (arg == "--bo-badscore") {
            cfg.bo.badScore = std::atoi(next_arg(i).c_str());
        } else if (arg == "--bo-rr") {
            cfg.bo.rrEntries =
                static_cast<std::size_t>(std::atoll(next_arg(i).c_str()));
        } else if (arg == "--bo-degree") {
            cfg.bo.degree = std::atoi(next_arg(i).c_str());
        } else if (arg == "--bo-adaptive") {
            cfg.bo.adaptiveBadScore = true;
        } else if (arg == "--bo-coverage") {
            cfg.bo.coverageWeight = std::atoi(next_arg(i).c_str());
        } else if (arg == "--warmup") {
            warmup = std::strtoull(next_arg(i).c_str(), nullptr, 10);
        } else if (arg == "--instr") {
            instr = std::strtoull(next_arg(i).c_str(), nullptr, 10);
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next_arg(i).c_str(), nullptr, 10);
        } else if (arg == "--threads") {
            cfg.numThreads = std::atoi(next_arg(i).c_str());
        } else if (arg == "--save-checkpoint") {
            save_ckpt = next_arg(i);
        } else if (arg == "--restore-checkpoint") {
            restore_ckpt = next_arg(i);
        } else if (arg == "--json") {
            json_path = next_arg(i);
        } else if (arg == "--journal") {
            journal_path = next_arg(i);
        } else if (arg == "--resume") {
            resume_path = next_arg(i);
        } else if (arg == "--retries") {
            retries = std::atoi(next_arg(i).c_str());
            if (retries < 0)
                retries = 0;
        } else {
            usage(argv[0]);
            die("unknown option '" + arg + "'");
        }
    }

    if (serve) {
        if (!workload.empty() || !trace_file.empty())
            die("--serve takes its workloads from the job stream, not "
                "--workload/--trace");
        if (!save_ckpt.empty() || !restore_ckpt.empty())
            die("--serve jobs opt into checkpointing per line "
                "(\"checkpoint\": \"share\"), not via "
                "--save/--restore-checkpoint");
        ExperimentRunner runner(Budget{warmup, instr});
        if (job_timeout >= 0.0)
            runner.setJobTimeout(job_timeout);
        if (retries >= 0)
            runner.setRetries(retries);
        try {
            if (!resume_path.empty())
                runner.resumeFromJournal(resume_path, std::cerr);
            if (!journal_path.empty())
                runner.attachJournal(journal_path);
        } catch (const std::exception &e) {
            die(e.what());
        }
        ServeOptions serve_opts;
        serve_opts.jobs = jobs;
        serve_opts.backlog = backlog;
        serve_opts.defaultBudget = Budget{warmup, instr};
        serve_opts.stopRequested = &stop_requested;

        // Graceful drain on SIGINT/SIGTERM: no SA_RESTART, so a
        // signal arriving while the reader blocks in getline makes
        // the read fail with EINTR and the loop falls through to the
        // drain instead of waiting for more input.
        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = onStopSignal;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGINT, &sa, nullptr);
        sigaction(SIGTERM, &sa, nullptr);

        const int failures = serveLoop(std::cin, std::cout, runner,
                                       serve_opts, std::cerr);
        if (failures) {
            std::fprintf(stderr, "bopsim: %d job(s) rejected or failed\n",
                         failures);
            return 1;
        }
        return 0;
    }

    if (!journal_path.empty() || !resume_path.empty() || retries >= 0)
        die("--journal/--resume/--retries apply to the batch service; "
            "combine them with --serve");
    if (workload.empty() == trace_file.empty())
        die("select exactly one of --workload / --trace (see --help)");
    if ((skip || sample) && trace_file.empty())
        die("--skip/--sample window trace replay; use them with --trace");

    try {
        std::vector<std::unique_ptr<TraceSource>> traces;
        std::string trace_source;
        if (!trace_file.empty()) {
            // Per-core assignment: file i drives core i.
            std::vector<std::string> files;
            std::size_t begin = 0;
            while (begin <= trace_file.size()) {
                const std::size_t comma = trace_file.find(',', begin);
                const std::size_t end = comma == std::string::npos
                                            ? trace_file.size()
                                            : comma;
                if (end > begin)
                    files.push_back(
                        trace_file.substr(begin, end - begin));
                if (comma == std::string::npos)
                    break;
                begin = comma + 1;
            }
            if (files.empty())
                die("--trace needs at least one file");
            if (static_cast<int>(files.size()) > cfg.activeCores) {
                die("--trace names " + std::to_string(files.size()) +
                    " files but only " +
                    std::to_string(cfg.activeCores) +
                    " cores are active (raise --cores)");
            }
            for (const std::string &file : files) {
                auto trace =
                    std::make_unique<FileTrace>(file, skip, sample);
                if (!trace_source.empty())
                    trace_source += "+";
                trace_source += trace->sourceTag();
                traces.push_back(std::move(trace));
            }
        } else {
            traces.push_back(makeWorkload(workload, cfg.seed));
        }
        for (int c = static_cast<int>(traces.size());
             c < cfg.activeCores; ++c) {
            traces.push_back(
                makeThrasher(cfg.seed + static_cast<unsigned>(c)));
        }
        const std::string label = traces.front()->name();

        System sys(cfg, std::move(traces));
        const auto t0 = std::chrono::steady_clock::now();
        if (restore_ckpt.empty())
            sys.warmup(warmup);
        else
            sys.restoreCheckpoint(restore_ckpt);
        if (!save_ckpt.empty())
            sys.saveCheckpoint(save_ckpt);
        const RunStats s = sys.measure(instr);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

        std::printf("workload     : %s\n", label.c_str());
        if (!trace_source.empty())
            std::printf("trace source : %s\n", trace_source.c_str());
        std::printf("config       : %s\n", cfg.describe().c_str());
        if (restore_ckpt.empty()) {
            std::printf("window       : %llu warm-up + %llu measured\n",
                        static_cast<unsigned long long>(warmup),
                        static_cast<unsigned long long>(instr));
        } else {
            std::printf("window       : restored %s + %llu measured\n",
                        restore_ckpt.c_str(),
                        static_cast<unsigned long long>(instr));
        }
        std::printf("\n");
        std::printf("IPC          : %.4f\n", s.ipc());
        std::printf("cycles       : %llu\n",
                    static_cast<unsigned long long>(s.cycles));
        std::printf("L2 accesses  : %llu  (MPKI %.2f)\n",
                    static_cast<unsigned long long>(s.l2Accesses),
                    s.l2Mpki());
        std::printf("L3 accesses  : %llu\n",
                    static_cast<unsigned long long>(s.l3Accesses));
        std::printf("DRAM acc/ki  : %.2f  (%llu reads, %llu writes)\n",
                    s.dramPer1kInstr(),
                    static_cast<unsigned long long>(s.dramReads),
                    static_cast<unsigned long long>(s.dramWrites));
        std::printf("\n");
        std::printf("L2 prefetches: %llu issued, %llu filled, "
                    "%llu dropped\n",
                    static_cast<unsigned long long>(s.l2PrefIssued),
                    static_cast<unsigned long long>(s.l2PrefFills),
                    static_cast<unsigned long long>(s.l2PrefDropped));
        std::printf("  useful     : %llu timely + %llu late\n",
                    static_cast<unsigned long long>(s.l2PrefetchedHits),
                    static_cast<unsigned long long>(s.l2LatePromotions));
        std::printf("  useless    : %llu (evicted unused)\n",
                    static_cast<unsigned long long>(
                        s.l2PrefUselessEvicted));
        std::printf("  coverage   : %.3f\n", s.prefetchCoverage());
        std::printf("  accuracy   : %.3f\n", s.prefetchAccuracy());
        std::printf("  timeliness : %.3f\n", s.prefetchTimeliness());
        if (cfg.l2Prefetcher == L2PrefetcherKind::BestOffset) {
            std::printf("\n");
            std::printf("BO phases    : %llu (%llu with prefetch off)\n",
                        static_cast<unsigned long long>(
                            s.boLearningPhases),
                        static_cast<unsigned long long>(
                            s.boPrefetchOffPhases));
            std::printf("BO offset    : %d (best score %d)\n",
                        s.boFinalOffset, s.boFinalScore);
        }
        RunRecord record{label, cfg.describe(), s, trace_source,
                         sys.threadCount(), wall};
        if (!restore_ckpt.empty())
            record.checkpoint = "restored";
        else if (!save_ckpt.empty())
            record.checkpoint = "saved";
        std::printf("engine       : %.3f s wall, %.2f Mcycles/s, "
                    "%.2f Minstr/s%s\n",
                    wall, record.mcyclesPerSecond(),
                    record.minstrPerSecond(),
                    sys.fastForwardEnabled() ? "" : " (no fast-forward)");
        if (!json_path.empty() &&
            !writeRunRecordsFile(json_path, {record})) {
            return 1;
        }
        return 0;
    } catch (const std::exception &e) {
        die(e.what());
    }
}
