/**
 * @file
 * bench_diff — compare two bench-JSON artifacts and flag regressions.
 *
 * CI uploads `bench-json-records` on every push (fig06/11/12/13,
 * ext_scaling, bopsim --json). Point this tool at two such files —
 * typically the artifact from main and the one from a PR — and it
 * flags every run whose IPC, prefetch coverage or DRAM traffic moved
 * beyond a threshold. Exit status: 0 clean, 1 regressions flagged,
 * 2 usage/parse error or a vacuous comparison (two non-empty
 * artifacts sharing no run) — so it slots straight into CI without
 * key-format drift silently disarming the guard.
 *
 * Examples:
 *   bench_diff old/fig06.json new/fig06.json
 *   bench_diff old.json new.json --ipc 0.05 --coverage 0.03 --dram 0.10
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "harness/bench_diff.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s OLD.json NEW.json [options]\n"
        "\n"
        "  --ipc FRAC       relative IPC threshold   (default 0.02)\n"
        "  --coverage ABS   absolute coverage threshold (default 0.02)\n"
        "  --dram FRAC      relative DRAM-traffic threshold (default 0.05)\n"
        "  --throughput FRAC\n"
        "                   relative sim_mcycles_per_s drop before an\n"
        "                   engine-speed regression is flagged; one-sided,\n"
        "                   skipped when either side lacks the field\n"
        "                   (default 0.5; 0 disables)\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string old_path;
    std::string new_path;
    bop::BenchDiffOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_arg = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_diff: %s needs an argument\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--ipc") {
            options.ipcRelative = std::atof(next_arg());
        } else if (arg == "--coverage") {
            options.coverageAbsolute = std::atof(next_arg());
        } else if (arg == "--dram") {
            options.dramRelative = std::atof(next_arg());
        } else if (arg == "--throughput") {
            options.throughputDropRelative = std::atof(next_arg());
        } else if (old_path.empty()) {
            old_path = arg;
        } else if (new_path.empty()) {
            new_path = arg;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (old_path.empty() || new_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    try {
        // NDJSON inputs tolerate a truncated trailing record (a
        // producer crash mid-write); it is dropped with a warning so
        // the surviving records still guard the comparison.
        std::string old_warning, new_warning;
        const auto old_records =
            bop::parseRunRecordsFile(old_path, &old_warning);
        const auto new_records =
            bop::parseRunRecordsFile(new_path, &new_warning);
        if (!old_warning.empty())
            std::fprintf(stderr, "bench_diff: warning: %s\n",
                         old_warning.c_str());
        if (!new_warning.empty())
            std::fprintf(stderr, "bench_diff: warning: %s\n",
                         new_warning.c_str());
        const bop::BenchDiffResult result =
            bop::diffRunRecords(old_records, new_records, options);

        std::printf("compared %zu runs, %zu error record pair(s) "
                    "(%s -> %s)\n",
                    result.compared, result.errorsCompared,
                    old_path.c_str(), new_path.c_str());
        for (const std::string &key : result.onlyOld)
            std::printf("  - disappeared: %s\n", key.c_str());
        for (const std::string &key : result.onlyNew)
            std::printf("  + new run    : %s\n", key.c_str());
        for (const std::string &what : result.errorOnlyOld)
            std::printf("  - error gone : %s\n", what.c_str());
        for (const std::string &what : result.errorOnlyNew)
            std::printf("  + new error  : %s\n", what.c_str());

        if (result.compared == 0 && result.errorsCompared == 0 &&
            !(old_records.empty() && new_records.empty())) {
            std::fprintf(stderr,
                         "bench_diff: the artifacts share no run — "
                         "key format drift? Nothing was guarded.\n");
            return 2;
        }
        if (result.clean()) {
            std::printf("no metric moved beyond thresholds "
                        "(ipc %.3f rel, coverage %.3f abs, dram %.3f rel)\n",
                        options.ipcRelative, options.coverageAbsolute,
                        options.dramRelative);
            return 0;
        }
        for (const bop::BenchDelta &d : result.flagged) {
            std::printf("REGRESSION %-18s %+.4f  (%.4f -> %.4f)  %s\n",
                        d.metric.c_str(), d.delta, d.oldValue,
                        d.newValue, d.key.c_str());
        }
        for (const bop::ErrorKindMismatch &m : result.errorMismatches) {
            std::printf("ERROR-KIND job %-6ld %s -> %s\n", m.jobIndex,
                        m.oldKind.c_str(), m.newKind.c_str());
        }
        std::printf("%zu metric movement(s) / %zu error-kind "
                    "mismatch(es) beyond thresholds\n",
                    result.flagged.size(), result.errorMismatches.size());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_diff: %s\n", e.what());
        return 2;
    }
}
