#!/usr/bin/env bash
# Tier-1 verify line, as run by CI and by developers locally:
# configure, build everything, run the full CTest suite.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build && ctest --output-on-failure -j "$(nproc)"
