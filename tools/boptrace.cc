/**
 * @file
 * boptrace — create, convert and inspect binary trace files.
 *
 * Subcommands:
 *   capture   dump a built-in workload generator to a trace file
 *   convert   re-serialise a trace into another on-disk format
 *   info      print a trace file's format, header and instruction mix
 *
 * Both the native BOPTRACE container and ChampSim/DPC input-instruction
 * traces are read with autodetection (and transparent .gz/.xz
 * decompression); see docs/TRACE_FORMATS.md for the byte-level specs.
 *
 * Examples:
 *   boptrace capture --workload 470.lbm --count 1000000 --out lbm.bt
 *   boptrace convert --in 605.mcf_s.champsimtrace.xz --out mcf.bt
 *   boptrace convert --in lbm.bt --out lbm.champsim
 *   boptrace info lbm.bt
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "trace/trace_io.hh"
#include "trace/trace_reader.hh"
#include "trace/workloads.hh"

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage:\n"
        "  %s capture --workload NAME --count N --out FILE [--seed S]\n"
        "  %s convert --in FILE --out FILE [--format boptrace|champsim]\n"
        "             [--count N]\n"
        "  %s info FILE\n"
        "  %s list\n"
        "\n"
        "Input format and .gz/.xz compression are autodetected; convert\n"
        "picks the output format from --format or the --out extension\n"
        "(.champsim/.champsimtrace/.trace -> ChampSim, else BOPTRACE).\n",
        argv0, argv0, argv0, argv0);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "boptrace: %s\n", msg.c_str());
    std::exit(1);
}

int
cmdCapture(int argc, char **argv)
{
    std::string workload;
    std::string out;
    std::uint64_t count = 0;
    std::uint64_t seed = 42;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_arg = [&]() -> std::string {
            if (i + 1 >= argc)
                die(arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "--workload")
            workload = next_arg();
        else if (arg == "--out")
            out = next_arg();
        else if (arg == "--count")
            count = std::strtoull(next_arg().c_str(), nullptr, 10);
        else if (arg == "--seed")
            seed = std::strtoull(next_arg().c_str(), nullptr, 10);
        else
            die("unknown capture option '" + arg + "'");
    }
    if (workload.empty() || out.empty() || count == 0)
        die("capture needs --workload, --count and --out");

    auto src = bop::makeWorkload(workload, seed);
    const std::uint64_t written = bop::captureTrace(*src, count, out);
    std::printf("wrote %llu records (%s, seed %llu) to %s\n",
                static_cast<unsigned long long>(written),
                workload.c_str(),
                static_cast<unsigned long long>(seed), out.c_str());
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    std::string in_path;
    std::string out_path;
    std::string format_name;
    std::uint64_t limit = 0;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_arg = [&]() -> std::string {
            if (i + 1 >= argc)
                die(arg + " needs an argument");
            return argv[++i];
        };
        if (arg == "--in")
            in_path = next_arg();
        else if (arg == "--out")
            out_path = next_arg();
        else if (arg == "--format")
            format_name = next_arg();
        else if (arg == "--count")
            limit = std::strtoull(next_arg().c_str(), nullptr, 10);
        else
            die("unknown convert option '" + arg + "'");
    }
    if (in_path.empty() || out_path.empty())
        die("convert needs --in and --out");

    bop::TraceFormat out_format = bop::traceFormatForPath(out_path);
    if (format_name == "boptrace")
        out_format = bop::TraceFormat::Boptrace;
    else if (format_name == "champsim")
        out_format = bop::TraceFormat::ChampSim;
    else if (!format_name.empty())
        die("--format must be boptrace or champsim");

    // Streaming: records never all live in memory, so converting
    // paper-scale (billions of instructions) traces is flat-memory.
    auto reader = bop::openTraceReader(in_path);
    auto sink = bop::makeTraceSink(out_path, out_format);
    bop::TraceInstr instr;
    while ((limit == 0 || sink->count() < limit) &&
           reader->next(instr))
        sink->append(instr);
    sink->close();

    std::printf("converted %llu records: %s (%s) -> %s (%s)\n",
                static_cast<unsigned long long>(sink->count()),
                in_path.c_str(),
                bop::traceFormatName(reader->format()),
                out_path.c_str(),
                bop::traceFormatName(out_format));
    return 0;
}

int
cmdInfo(const std::string &path)
{
    bop::FileTrace trace(path);
    const std::uint64_t n = trace.records();

    std::uint64_t kinds[5] = {};
    std::uint64_t deps = 0, taken = 0, branches = 0;
    std::uint64_t min_vaddr = ~0ull, max_vaddr = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const bop::TraceInstr instr = trace.next();
        ++kinds[static_cast<int>(instr.kind)];
        if (instr.dependsOnPrevLoad)
            ++deps;
        if (instr.kind == bop::InstrKind::Branch) {
            ++branches;
            if (instr.taken)
                ++taken;
        }
        if (instr.kind == bop::InstrKind::Load ||
            instr.kind == bop::InstrKind::Store) {
            min_vaddr = std::min(min_vaddr, instr.vaddr);
            max_vaddr = std::max(max_vaddr, instr.vaddr);
        }
    }

    const auto pct = [n](std::uint64_t c) {
        return n ? 100.0 * static_cast<double>(c) /
                       static_cast<double>(n)
                 : 0.0;
    };
    std::printf("trace        : %s\n", trace.name().c_str());
    std::printf("format       : %s",
                bop::traceFormatName(trace.format()));
    if (trace.compression() != bop::TraceCompression::None)
        std::printf(" (%s-compressed)",
                    bop::traceCompressionName(trace.compression()));
    std::printf("\n");
    std::printf("records      : %llu\n",
                static_cast<unsigned long long>(n));
    std::printf("int ops      : %5.1f%%\n", pct(kinds[0]));
    std::printf("fp ops       : %5.1f%%\n", pct(kinds[1]));
    std::printf("loads        : %5.1f%%\n", pct(kinds[2]));
    std::printf("stores       : %5.1f%%\n", pct(kinds[3]));
    std::printf("branches     : %5.1f%%  (%.1f%% taken)\n",
                pct(kinds[4]),
                branches ? 100.0 * static_cast<double>(taken) /
                               static_cast<double>(branches)
                         : 0.0);
    std::printf("dep on load  : %5.1f%%\n", pct(deps));
    if (max_vaddr >= min_vaddr && max_vaddr > 0) {
        std::printf("vaddr span   : [0x%llx, 0x%llx]  (%.1f MB)\n",
                    static_cast<unsigned long long>(min_vaddr),
                    static_cast<unsigned long long>(max_vaddr),
                    static_cast<double>(max_vaddr - min_vaddr) /
                        (1024.0 * 1024.0));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 1;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "capture")
            return cmdCapture(argc, argv);
        if (cmd == "convert")
            return cmdConvert(argc, argv);
        if (cmd == "info") {
            if (argc != 3)
                die("info needs exactly one FILE argument");
            return cmdInfo(argv[2]);
        }
        if (cmd == "list") {
            for (const auto &name : bop::benchmarkNames())
                std::printf("%s\n", name.c_str());
            return 0;
        }
        if (cmd == "--help" || cmd == "-h") {
            usage(argv[0]);
            return 0;
        }
        usage(argv[0]);
        die("unknown command '" + cmd + "'");
    } catch (const std::exception &e) {
        die(e.what());
    }
}
