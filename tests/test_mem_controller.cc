/**
 * @file
 * Tests for the fairness-aware memory controller (paper Sec. 5.3).
 */

#include <gtest/gtest.h>

#include "dram/mem_controller.hh"

namespace bop
{
namespace
{

ReqMeta
meta(CoreId core)
{
    ReqMeta m;
    m.core = core;
    m.l3FillId = 1;
    return m;
}

/** Line address landing on this channel with a given bank/row flavor. */
LineAddr
lineWithRow(std::uint64_t row, std::uint32_t off = 0)
{
    return ((row << 17) | (static_cast<std::uint64_t>(off) << 6)) >> 6;
}

TEST(MemController, ReadCompletes)
{
    MemoryController mc(DramTiming{}, 0, 4);
    mc.enqueueRead(lineWithRow(1), meta(0), 0);
    std::vector<CompletedRead> done;
    for (Cycle now = 0; now < 1000 && done.empty(); ++now) {
        mc.tick(now);
        auto v = mc.popCompleted(now);
        done.insert(done.end(), v.begin(), v.end());
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].line, lineWithRow(1));
    EXPECT_GT(done[0].finishCycle, 0u);
    EXPECT_EQ(mc.stats().reads, 1u);
}

TEST(MemController, QueueCapacityPerCore)
{
    MemoryController mc(DramTiming{}, 0, 4);
    for (std::size_t i = 0; i < MemoryController::queueCapacity; ++i) {
        EXPECT_FALSE(mc.readQueueFull(2));
        mc.enqueueRead(lineWithRow(i), meta(2), 0);
    }
    EXPECT_TRUE(mc.readQueueFull(2));
    EXPECT_FALSE(mc.readQueueFull(1)) << "queues are per core";
}

TEST(MemController, ReadQueueSearch)
{
    MemoryController mc(DramTiming{}, 0, 4);
    mc.enqueueRead(lineWithRow(7), meta(1), 0);
    EXPECT_TRUE(mc.readQueueContains(lineWithRow(7)));
    EXPECT_FALSE(mc.readQueueContains(lineWithRow(8)));
}

TEST(MemController, FrFcfsPrefersRowHits)
{
    MemoryController mc(DramTiming{}, 0, 4);
    // Open row 1 via an initial read, run it to completion.
    mc.enqueueRead(lineWithRow(1, 0), meta(0), 0);
    Cycle now = 0;
    while (mc.anyPending()) {
        mc.tick(now);
        mc.popCompleted(now);
        ++now;
    }
    // Now enqueue a row-conflict first, then a row-hit: FR-FCFS must
    // finish the row hit first despite its later arrival.
    mc.enqueueRead(lineWithRow(9, 0), meta(0), now);
    mc.enqueueRead(lineWithRow(1, 5), meta(0), now);
    std::vector<CompletedRead> done;
    while (done.size() < 2) {
        mc.tick(now);
        auto v = mc.popCompleted(now);
        done.insert(done.end(), v.begin(), v.end());
        ++now;
    }
    EXPECT_EQ(done[0].line, lineWithRow(1, 5));
    EXPECT_EQ(done[1].line, lineWithRow(9, 0));
    EXPECT_GE(mc.stats().rowHits, 1u);
}

TEST(MemController, RowHitsCounted)
{
    MemoryController mc(DramTiming{}, 0, 4);
    for (std::uint32_t i = 0; i < 8; ++i)
        mc.enqueueRead(lineWithRow(3, i), meta(0), 0);
    Cycle now = 0;
    while (mc.anyPending()) {
        mc.tick(now);
        mc.popCompleted(now);
        ++now;
    }
    EXPECT_EQ(mc.stats().reads, 8u);
    EXPECT_EQ(mc.stats().rowHits, 7u) << "first access opens the row";
}

TEST(MemController, WriteBatchOnFullQueue)
{
    MemoryController mc(DramTiming{}, 0, 4);
    for (std::size_t i = 0; i < MemoryController::queueCapacity; ++i)
        mc.enqueueWrite(lineWithRow(i), 0, 0);
    ASSERT_TRUE(mc.writeQueueFull(0));
    Cycle now = 0;
    while (mc.writeQueueFull(0) && now < 10000) {
        mc.tick(now);
        ++now;
    }
    EXPECT_FALSE(mc.writeQueueFull(0));
    EXPECT_GE(mc.stats().writeBatches, 1u);
    EXPECT_GE(mc.stats().writes, 1u);
}

TEST(MemController, IdleWritesDrainEventually)
{
    MemoryController mc(DramTiming{}, 0, 4);
    mc.enqueueWrite(lineWithRow(5), 1, 0);
    Cycle now = 0;
    while (mc.anyPending() && now < 10000) {
        mc.tick(now);
        ++now;
    }
    EXPECT_EQ(mc.stats().writes, 1u);
}

TEST(MemController, FairnessServesBothCores)
{
    MemoryController mc(DramTiming{}, 0, 4);
    // Core 1 floods row hits; core 0 has scattered reads. The
    // proportional counters + urgent mode must keep core 0 served.
    Cycle now = 0;
    std::uint64_t c0_done = 0;
    std::uint64_t row = 0;
    for (; now < 40000; ++now) {
        if (!mc.readQueueFull(1))
            mc.enqueueRead(lineWithRow(100, (now / 7) % 128),
                           meta(1), now);
        if (now % 200 == 0 && !mc.readQueueFull(0))
            mc.enqueueRead(lineWithRow(row += 3), meta(0), now);
        mc.tick(now);
        for (const auto &r : mc.popCompleted(now))
            c0_done += r.meta.core == 0;
    }
    EXPECT_GT(c0_done, 50u) << "core 0 must not be starved";
}

TEST(MemController, UrgentModeRequiresFillQueueSpace)
{
    MemoryController mc(DramTiming{}, 0, 4);
    mc.setL3FillQueueFull(true);
    // With the fill queue full, urgent issues are suppressed; steady
    // mode still works.
    mc.enqueueRead(lineWithRow(1), meta(0), 0);
    Cycle now = 0;
    while (mc.anyPending() && now < 5000) {
        mc.tick(now);
        mc.popCompleted(now);
        ++now;
    }
    EXPECT_EQ(mc.stats().reads, 1u);
    EXPECT_EQ(mc.stats().urgentIssues, 0u);
}

} // namespace
} // namespace bop
