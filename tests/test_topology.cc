/**
 * @file
 * Runtime-topology tests: SystemConfig validation, the generalized
 * N-core / M-channel uncore (beyond the paper's 4-core, 2-channel
 * chip), DRAM fairness with more than 4 requesters, and a pinned
 * regression that the paper-topology results are bit-identical to the
 * pre-refactor fixed-size-array implementation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "dram/mem_controller.hh"
#include "harness/experiment.hh"
#include "sim/system.hh"
#include "trace/generators.hh"
#include "trace/workloads.hh"

namespace bop
{
namespace
{

// ---------------------------------------------------------------------------
// SystemConfig validation
// ---------------------------------------------------------------------------

TEST(TopologyConfig, DefaultsAreValid)
{
    SystemConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.coreCount(), 1);
    cfg.activeCores = 4;
    EXPECT_EQ(cfg.coreCount(), 4) << "numCores=0 follows activeCores";
}

TEST(TopologyConfig, RejectsNonPositiveCores)
{
    SystemConfig cfg;
    cfg.activeCores = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.activeCores = -2;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.activeCores = 1;
    cfg.numCores = -1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TopologyConfig, RejectsActiveCoresBeyondTopology)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.activeCores = 8;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.numCores = 8;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(TopologyConfig, RejectsBadChannelCounts)
{
    SystemConfig cfg;
    for (const int bad : {0, -2, 3, 6, 12, 32}) {
        cfg.numChannels = bad;
        EXPECT_THROW(cfg.validate(), std::invalid_argument)
            << "numChannels=" << bad;
    }
    for (const int good : {1, 2, 4, 8, 16}) {
        cfg.numChannels = good;
        EXPECT_NO_THROW(cfg.validate()) << "numChannels=" << good;
    }
}

TEST(TopologyConfig, ValidationErrorsAreDescriptive)
{
    SystemConfig cfg;
    cfg.numChannels = 3;
    try {
        cfg.validate();
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("numChannels"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
    }
}

TEST(TopologyConfig, SystemConstructionValidates)
{
    SystemConfig cfg = baselineConfig(2, PageSize::FourKB);
    cfg.numChannels = 5;
    EXPECT_THROW(System(cfg, makeTraces("401.bzip2", cfg)),
                 std::invalid_argument);
    cfg.numChannels = 2;
    cfg.numCores = 1; // smaller than activeCores
    EXPECT_THROW(System(cfg, makeTraces("401.bzip2", cfg)),
                 std::invalid_argument);
}

TEST(TopologyConfig, MemHierarchyConstructionValidates)
{
    SystemConfig cfg;
    cfg.numChannels = 7;
    EXPECT_THROW(MemHierarchy hier(cfg), std::invalid_argument);
}

TEST(TopologyConfig, DescribeMentionsNonDefaultTopology)
{
    SystemConfig cfg = baselineConfig(8, PageSize::FourKB);
    EXPECT_EQ(cfg.numChannels, 4) << "channels scale with cores";
    const std::string d = cfg.describe();
    EXPECT_NE(d.find("8-core"), std::string::npos) << d;
    EXPECT_NE(d.find("4-chan"), std::string::npos) << d;
    // Paper topologies keep the historical describe string.
    const std::string legacy =
        baselineConfig(2, PageSize::FourKB).describe();
    EXPECT_EQ(legacy.find("chan"), std::string::npos) << legacy;
}

// ---------------------------------------------------------------------------
// Memory-controller fairness beyond 4 requesters
// ---------------------------------------------------------------------------

ReqMeta
reqFrom(CoreId core)
{
    ReqMeta m;
    m.core = core;
    m.l3FillId = 1;
    return m;
}

LineAddr
lineWithRow(std::uint64_t row, std::uint32_t off = 0)
{
    return ((row << 17) | (static_cast<std::uint64_t>(off) << 6)) >> 6;
}

TEST(TopologyMemController, EightCoreQueuesAreIndependent)
{
    MemoryController mc(DramTiming{}, 0, 8);
    EXPECT_EQ(mc.coreCount(), 8);
    for (std::size_t i = 0; i < MemoryController::queueCapacity; ++i)
        mc.enqueueRead(lineWithRow(i), reqFrom(7), 0);
    EXPECT_TRUE(mc.readQueueFull(7));
    for (CoreId c = 0; c < 7; ++c)
        EXPECT_FALSE(mc.readQueueFull(c)) << "core " << c;
}

TEST(TopologyMemController, FairnessServesAllEightCores)
{
    // One hungry row-hit core and seven occasional cores: the
    // proportional counters + urgent mode must keep all of them fed.
    MemoryController mc(DramTiming{}, 0, 8);
    std::uint64_t done[8] = {};
    std::uint64_t row = 0;
    for (Cycle now = 0; now < 60000; ++now) {
        if (!mc.readQueueFull(0))
            mc.enqueueRead(lineWithRow(100, (now / 7) % 128), reqFrom(0),
                           now);
        if (now % 160 == 0) {
            for (CoreId c = 1; c < 8; ++c) {
                if (!mc.readQueueFull(c))
                    mc.enqueueRead(lineWithRow(row += 3, 0), reqFrom(c),
                                   now);
            }
        }
        mc.tick(now);
        for (const auto &r : mc.popCompleted(now))
            ++done[r.meta.core];
    }
    // The flooding core must not monopolise the channel, and the seven
    // occasional cores must be served both materially and evenly.
    for (int c = 0; c < 8; ++c)
        EXPECT_GT(done[c], 30u) << "core " << c << " starved";
    std::uint64_t lo = done[1], hi = done[1];
    for (int c = 2; c < 8; ++c) {
        lo = std::min(lo, done[c]);
        hi = std::max(hi, done[c]);
    }
    EXPECT_LE(hi, 2 * lo) << "occasional cores served unevenly";
}

// ---------------------------------------------------------------------------
// 8-core, 4-channel end-to-end integration (zoo-style)
// ---------------------------------------------------------------------------

std::unique_ptr<TraceSource>
streamTrace(std::uint64_t seed)
{
    WorkloadSpec w;
    w.name = "topo-stream";
    w.memFraction = 0.5;
    w.branchFraction = 0.0;
    w.depFraction = 0.3;
    StreamSpec s;
    s.regionBytes = 32ull << 20;
    s.stepBytes = 8;
    w.streams = {s};
    return std::make_unique<SyntheticTrace>(w, seed);
}

RunStats
runEightCore(System &sys)
{
    return sys.run(5000, 20000);
}

SystemConfig
eightCoreConfig()
{
    SystemConfig cfg = baselineConfig(8, PageSize::FourKB);
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    cfg.seed = 11;
    return cfg;
}

std::vector<std::unique_ptr<TraceSource>>
eightCoreTraces(const SystemConfig &cfg)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(streamTrace(cfg.seed));
    for (int c = 1; c < cfg.activeCores; ++c)
        traces.push_back(makeThrasher(cfg.seed + static_cast<unsigned>(c)));
    return traces;
}

TEST(TopologyIntegration, EightCoreFourChannelRunsToCompletion)
{
    const SystemConfig cfg = eightCoreConfig();
    ASSERT_EQ(cfg.numChannels, 4);
    System sys(cfg, eightCoreTraces(cfg));
    const RunStats s = runEightCore(sys);

    EXPECT_GE(s.instructions, 20000u);
    EXPECT_GT(s.ipc(), 0.0);
    EXPECT_GT(s.dramReads, 0u) << "thrashers must reach DRAM";
    EXPECT_LE(s.l2PrefFills, s.l2PrefIssued);

    // Per-core stats: every one of the 8 cores must have progressed.
    ASSERT_EQ(sys.coreCount(), 8);
    for (int c = 0; c < sys.coreCount(); ++c)
        EXPECT_GT(sys.core(c).retired(), 0u) << "core " << c;

    // All four channels must have seen traffic (the XOR map spreads
    // the thrashers' streams).
    for (int ch = 0; ch < sys.hierarchy().channelCount(); ++ch) {
        EXPECT_GT(sys.hierarchy().controller(ch).stats().reads, 0u)
            << "channel " << ch;
    }
}

TEST(TopologyIntegration, EightCoreDeterministicAcrossRuns)
{
    const SystemConfig cfg = eightCoreConfig();
    System a(cfg, eightCoreTraces(cfg));
    System b(cfg, eightCoreTraces(cfg));
    const RunStats sa = runEightCore(a);
    const RunStats sb = runEightCore(b);
    EXPECT_EQ(sa.cycles, sb.cycles);
    EXPECT_EQ(sa.l2Misses, sb.l2Misses);
    EXPECT_EQ(sa.dramReads, sb.dramReads);
}

TEST(TopologyIntegration, ChannelLocalStallsOnlyOnWideChips)
{
    // A 64KB-strided stream keeps bits 8..15 constant within long
    // runs, so its lines pile onto few channels. On a 4-channel chip
    // the piled-on channel's per-core read queue fills while the
    // (channel-scaled) L3 fill queue still has room: the sharded
    // demand stage parks just that channel and keeps the others
    // draining. On the paper's 2-channel chip the shared fill queue
    // saturates first, so the channel-local path is structurally
    // unreachable and the counter must stay zero.
    WorkloadSpec w;
    w.name = "stride64k";
    w.memFraction = 0.6;
    w.branchFraction = 0.0;
    w.depFraction = 0.2;
    StreamSpec s;
    s.regionBytes = 256ull << 20;
    s.stepBytes = 65536;
    w.streams = {s};

    auto run = [&](int channels) {
        SystemConfig cfg;
        cfg.activeCores = 1;
        cfg.numChannels = channels;
        cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
        cfg.seed = 3;
        std::vector<std::unique_ptr<TraceSource>> traces;
        traces.push_back(std::make_unique<SyntheticTrace>(w, 3));
        System sys(cfg, std::move(traces));
        // No warm-up: the cold-start miss burst is exactly when the
        // piled-on channel backs up, and the counter is window-delta'd.
        return sys.run(0, 50000);
    };

    EXPECT_GT(run(4).l3ChannelStalls, 0u);
    EXPECT_EQ(run(2).l3ChannelStalls, 0u);
}

TEST(TopologyIntegration, SixteenCoreEightChannelRuns)
{
    SystemConfig cfg = baselineConfig(16, PageSize::FourKB);
    ASSERT_EQ(cfg.numChannels, 8);
    cfg.seed = 13;
    System sys(cfg, makeTraces("462.libquantum", cfg));
    const RunStats s = sys.run(2000, 6000);
    EXPECT_GE(s.instructions, 6000u);
    for (int c = 0; c < sys.coreCount(); ++c)
        EXPECT_GT(sys.core(c).retired(), 0u) << "core " << c;
}

// ---------------------------------------------------------------------------
// Pinned pre-refactor regression (paper topologies must be unchanged)
// ---------------------------------------------------------------------------

struct GoldenRow
{
    const char *bench;
    int cores;
    PageSize page;
    std::uint64_t cycles;
    std::uint64_t instructions;
};

/**
 * Captured on the pre-refactor tree (compile-time maxCores=4 /
 * numChannels=2 arrays) with the BO prefetcher, 20000 warm-up + 60000
 * measured instructions, default seed. The runtime-topology uncore
 * must reproduce every row bit-identically.
 */
const GoldenRow goldenRows[] = {
    {"462.libquantum", 1, PageSize::FourKB, 35182ull, 60008ull},
    {"462.libquantum", 1, PageSize::FourMB, 28647ull, 60008ull},
    {"462.libquantum", 2, PageSize::FourKB, 66866ull, 60008ull},
    {"462.libquantum", 2, PageSize::FourMB, 60430ull, 60008ull},
    {"462.libquantum", 4, PageSize::FourKB, 129814ull, 60008ull},
    {"462.libquantum", 4, PageSize::FourMB, 144466ull, 60008ull},
    {"429.mcf", 1, PageSize::FourKB, 309445ull, 60006ull},
    {"429.mcf", 1, PageSize::FourMB, 288042ull, 60005ull},
    {"429.mcf", 2, PageSize::FourKB, 388522ull, 60005ull},
    {"429.mcf", 2, PageSize::FourMB, 376464ull, 60000ull},
    {"429.mcf", 4, PageSize::FourKB, 576910ull, 60005ull},
    {"429.mcf", 4, PageSize::FourMB, 564572ull, 60000ull},
    {"470.lbm", 1, PageSize::FourKB, 68863ull, 60009ull},
    {"470.lbm", 1, PageSize::FourMB, 49108ull, 60006ull},
    {"470.lbm", 2, PageSize::FourKB, 118561ull, 60002ull},
    {"470.lbm", 2, PageSize::FourMB, 98691ull, 60009ull},
    {"470.lbm", 4, PageSize::FourKB, 227814ull, 60005ull},
    {"470.lbm", 4, PageSize::FourMB, 208842ull, 60006ull},
};

TEST(TopologyRegression, PaperTopologiesBitIdenticalToPreRefactor)
{
    for (const GoldenRow &row : goldenRows) {
        SystemConfig cfg = baselineConfig(row.cores, row.page);
        cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
        System sys(cfg, makeTraces(row.bench, cfg));
        const RunStats s = sys.run(20000, 60000);
        EXPECT_EQ(s.cycles, row.cycles)
            << row.bench << " " << row.cores << "-core "
            << (row.page == PageSize::FourKB ? "4KB" : "4MB");
        EXPECT_EQ(s.instructions, row.instructions)
            << row.bench << " " << row.cores << "-core";
    }
}

} // namespace
} // namespace bop
