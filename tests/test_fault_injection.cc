/**
 * @file
 * Resource-shrink tests: shrink every structural resource (fill
 * queues, MSHRs, prefetch queue, memory queues can't be shrunk — they
 * are Table 1 constants) to pathological sizes and verify the system
 * still makes forward progress (no deadlock, instruction targets hit).
 *
 * These stress the *simulated machine's* flow control under starved
 * configurations. They are distinct from the chaos battery in
 * tests/test_chaos.cc, which injects *host-side* faults (thrown jobs,
 * wedged jobs, short checkpoint writes, transient trace-read errors
 * via BOP_FAULT) and checks that the farm/serve/checkpoint stack
 * contains them.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/system.hh"
#include "trace/generators.hh"
#include "trace/workloads.hh"

namespace bop
{
namespace
{

std::unique_ptr<TraceSource>
mixedTrace(std::uint64_t seed)
{
    WorkloadSpec w;
    w.name = "mixed";
    w.memFraction = 0.45;
    w.branchFraction = 0.1;
    w.depFraction = 0.2;
    StreamSpec seq;
    seq.regionBytes = 16ull << 20;
    seq.stepBytes = 8;
    seq.storeRatio = 0.4;
    StreamSpec chase;
    chase.pattern = StreamPattern::PointerChase;
    chase.regionBytes = 8ull << 20;
    chase.weight = 0.5;
    w.streams = {seq, chase};
    return std::make_unique<SyntheticTrace>(w, seed);
}

RunStats
runWith(SystemConfig cfg, std::uint64_t instr = 15000)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(mixedTrace(7));
    for (int c = 1; c < cfg.activeCores; ++c)
        traces.push_back(makeThrasher(10 + static_cast<unsigned>(c)));
    System sys(cfg, std::move(traces));
    return sys.run(2000, instr);
}

TEST(FaultInjection, TinyL2FillQueue)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.caches.l2FillQueue = 3; // reserve is 2: one waiting slot only
    const RunStats s = runWith(cfg);
    EXPECT_GE(s.instructions, 15000u);
}

TEST(FaultInjection, TinyL3FillQueue)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.caches.l3FillQueue = 3;
    const RunStats s = runWith(cfg);
    EXPECT_GE(s.instructions, 15000u);
}

TEST(FaultInjection, BothFillQueuesTinyWithPrefetchers)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.caches.l2FillQueue = 3;
    cfg.caches.l3FillQueue = 3;
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    const RunStats s = runWith(cfg);
    EXPECT_GE(s.instructions, 15000u);
}

TEST(FaultInjection, SingleMshr)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.caches.dl1Mshrs = 1; // fully serialised misses
    const RunStats s = runWith(cfg);
    EXPECT_GE(s.instructions, 15000u);
    // With one MSHR the memory level parallelism collapses: the run
    // must be much slower than the healthy configuration.
    const RunStats healthy = runWith(baselineConfig(1, PageSize::FourKB));
    EXPECT_LT(healthy.cycles, s.cycles);
}

TEST(FaultInjection, OneEntryPrefetchQueue)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.caches.prefetchQueue = 1; // every second prefetch cancelled
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    const RunStats s = runWith(cfg);
    EXPECT_GE(s.instructions, 15000u);
}

TEST(FaultInjection, SbpWithTinyQueuesFourCores)
{
    SystemConfig cfg = baselineConfig(4, PageSize::FourKB);
    cfg.caches.l2FillQueue = 4;
    cfg.caches.l3FillQueue = 4;
    cfg.caches.prefetchQueue = 2;
    cfg.l2Prefetcher = L2PrefetcherKind::Sandbox;
    const RunStats s = runWith(cfg, 8000);
    EXPECT_GE(s.instructions, 8000u);
}

TEST(FaultInjection, MinimalCaches)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.caches.dl1Bytes = 4 * 1024;
    cfg.caches.l2Bytes = 16 * 1024;
    cfg.caches.l3Bytes = 64 * 1024;
    const RunStats s = runWith(cfg);
    EXPECT_GE(s.instructions, 15000u);
    EXPECT_GT(s.dramReads + s.dramWrites, 1000u);
}

TEST(FaultInjection, NarrowCore)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.core.robSize = 8;
    cfg.core.dispatchWidth = 1;
    cfg.core.retireWidth = 1;
    cfg.core.loadQueue = 4;
    cfg.core.storeQueue = 2;
    const RunStats s = runWith(cfg, 5000);
    EXPECT_GE(s.instructions, 5000u);
    EXPECT_LT(s.ipc(), 1.0);
}

TEST(FaultInjection, SlowDram)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.dram.tCL = 40;
    cfg.dram.tRCD = 40;
    cfg.dram.tRP = 40;
    cfg.dram.tRAS = 120;
    const RunStats slow = runWith(cfg);
    const RunStats normal = runWith(baselineConfig(1, PageSize::FourKB));
    EXPECT_GE(slow.instructions, 15000u);
    EXPECT_GT(slow.cycles, normal.cycles);
}

} // namespace
} // namespace bop
