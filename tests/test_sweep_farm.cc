/**
 * @file
 * Sweep-farm / batch-service tests: the job-queue layer must keep the
 * runner's JSON output byte-identical to a serial sweep for every
 * worker count (timing fields aside), keep record order and job_index
 * deterministic under arbitrary worker scheduling, simulate each
 * design point exactly once no matter how many concurrent duplicates
 * hammer the runner, honor the TaskPool backpressure bound, and make
 * `bopsim --serve` reject malformed job lines with diagnostics while
 * draining large batches gracefully.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "harness/json_report.hh"
#include "harness/serve.hh"
#include "harness/sweep_farm.hh"
#include "sim/parallel.hh"

namespace bop
{
namespace
{

/** Small budgets so a test sweep is dozens of milliseconds, not minutes. */
Budget
testBudget()
{
    Budget b;
    b.warmup = 2000;
    b.measure = 8000;
    return b;
}

/** The fig06 sweep shape on a two-benchmark, two-grid-point subset. */
const std::vector<std::string> &
subsetBenches()
{
    static const std::vector<std::string> benches = {"429.mcf",
                                                     "470.lbm"};
    return benches;
}

void
submitFig06Subset(SweepFarm &farm)
{
    for (const std::string &bench : subsetBenches()) {
        for (const int cores : {1, 2}) {
            const SystemConfig base =
                baselineConfig(cores, PageSize::FourKB);
            SystemConfig cfg = base;
            cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
            farm.submit(bench, cfg);
            farm.submit(bench, base);
        }
    }
    farm.drain();
}

/**
 * Serialize records with the host-timing fields masked: exactly the
 * keys the --jobs byte-identity contract excludes ("jobs" varies by
 * construction; the other four measure the host, not the simulation).
 * job_index is NOT masked — it must match across worker counts.
 */
std::string
maskedJson(const ExperimentRunner &runner)
{
    std::ostringstream os;
    writeRunRecords(os, runner.records());
    static const std::regex timing(
        "\"(jobs|wall_seconds|queue_wait_seconds|sim_mcycles_per_s|"
        "retired_minstr_per_s)\": [^,\\n}]+");
    return std::regex_replace(os.str(), timing, "\"$1\": X");
}

TEST(SweepFarm, JsonByteIdenticalAcrossJobCounts)
{
    std::string reference;
    for (const int jobs : {1, 2, 4, 8}) {
        ExperimentRunner runner(testBudget());
        {
            SweepFarm farm(runner, jobs);
            submitFig06Subset(farm);
        }
        const std::string json = maskedJson(runner);
        if (jobs == 1) {
            reference = json;
            ASSERT_FALSE(reference.empty());
        } else {
            EXPECT_EQ(json, reference) << "--jobs " << jobs
                                       << " diverged from serial";
        }
    }
}

TEST(SweepFarm, RecordOrderIsSubmissionOrder)
{
    // Many distinct design points with wildly different simulation
    // costs (core counts 1/2/4), so completion order under 8 workers
    // is effectively randomized — commit order must not care.
    ExperimentRunner runner(testBudget());
    std::vector<std::string> expect;
    {
        SweepFarm farm(runner, 8);
        for (const std::string &bench : subsetBenches()) {
            for (const int cores : {4, 1, 2}) {
                for (const std::uint64_t seed : {1ull, 2ull}) {
                    SystemConfig cfg =
                        baselineConfig(cores, PageSize::FourKB);
                    cfg.seed = seed;
                    farm.submit(bench, cfg);
                    expect.push_back(bench + "##" + cfg.describe());
                }
            }
        }
        farm.drain();
    }

    const std::vector<RunRecord> &records = runner.records();
    ASSERT_EQ(records.size(), expect.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].workload + "##" + records[i].config,
                  expect[i]);
        EXPECT_EQ(records[i].jobIndex, static_cast<long>(i));
        EXPECT_EQ(records[i].jobs, 8);
    }
}

TEST(SweepFarm, DuplicateSubmissionsSimulateOnce)
{
    ExperimentRunner runner(testBudget());
    const SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    {
        SweepFarm farm(runner, 4);
        for (int i = 0; i < 20; ++i)
            farm.submit("429.mcf", cfg);
        farm.drain();
        // A second round after the drain: the memo is warm now, so
        // nothing new may be enqueued either.
        for (int i = 0; i < 20; ++i)
            farm.submit("429.mcf", cfg);
        farm.drain();
    }
    EXPECT_EQ(runner.records().size(), 1u);
}

TEST(ExperimentRunner, ConcurrentDuplicateRunsSimulateOnce)
{
    // Hammer one design point from many threads: the in-flight latch
    // must collapse all of them onto a single simulation, and every
    // caller must see the committed record.
    ExperimentRunner runner(testBudget());
    const SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    const Budget b = testBudget();

    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 5; ++i) {
                const RunRecord &r = runner.run("429.mcf", cfg, b);
                // Retirement can overshoot the target by a few
                // instructions in the final superscalar tick, never
                // undershoot it.
                if (r.stats.instructions < b.measure)
                    ++mismatches;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(runner.records().size(), 1u);
}

TEST(SweepFarm, JsonByteIdenticalAcrossJobCountsWithSharing)
{
    // The fig06-with-shared-warmup-prefixes contract: with checkpoint
    // sharing enabled the farm JSON must still be byte-identical for
    // every --jobs count (timing fields aside) — the checkpoint
    // provenance field included, whichever worker happened to win the
    // prefix race.
    std::string reference;
    for (const int jobs : {1, 2, 4, 8}) {
        ExperimentRunner runner(testBudget());
        runner.setCheckpointSharing(true);
        {
            SweepFarm farm(runner, jobs);
            submitFig06Subset(farm);
        }
        for (const RunRecord &r : runner.records())
            EXPECT_EQ(r.checkpoint, "warm-shared");
        const std::string json = maskedJson(runner);
        if (jobs == 1) {
            reference = json;
            ASSERT_FALSE(reference.empty());
        } else {
            EXPECT_EQ(json, reference)
                << "--jobs " << jobs
                << " with checkpoint sharing diverged from serial";
        }
    }
}

TEST(SweepFarm, SharedWarmupStatsMatchColdRuns)
{
    // Restore bit-identity end to end through the runner: a sweep
    // with checkpoint sharing must report exactly the same simulated
    // statistics as a cold sweep (the records differ only in the
    // checkpoint provenance field and host timing).
    ExperimentRunner cold(testBudget());
    {
        SweepFarm farm(cold, 2);
        submitFig06Subset(farm);
    }
    ExperimentRunner shared(testBudget());
    shared.setCheckpointSharing(true);
    {
        SweepFarm farm(shared, 2);
        submitFig06Subset(farm);
    }
    ASSERT_EQ(shared.records().size(), cold.records().size());
    for (std::size_t i = 0; i < cold.records().size(); ++i) {
        EXPECT_TRUE(shared.records()[i].stats == cold.records()[i].stats)
            << "record " << i;
        EXPECT_EQ(shared.records()[i].checkpoint, "warm-shared");
        EXPECT_EQ(cold.records()[i].checkpoint, "");
    }
}

TEST(ExperimentRunner, SharedPrefixSimulatesWarmupExactlyOnce)
{
    // N jobs sharing one (benchmark, config, warmup) prefix but
    // differing in measure budget, hammered from 8 threads: the
    // prefix latch must collapse all their warmups onto a single
    // simulation, and each job's stats must equal its own cold run.
    ExperimentRunner runner(testBudget());
    const SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    const std::uint64_t measures[] = {3000, 4000, 5000, 6000,
                                      7000, 8000, 9000, 10000};

    std::vector<std::thread> threads;
    for (const std::uint64_t measure : measures) {
        threads.emplace_back([&runner, &cfg, measure] {
            const Budget b{2000, measure};
            runner.run("429.mcf", cfg, b, /*share_warmup=*/true);
        });
    }
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(runner.prefixSimulations(), 1u)
        << "8 jobs sharing one warmup prefix must warm up once";
    EXPECT_EQ(runner.records().size(), 8u);

    // Spot-check one budget against its cold twin.
    ExperimentRunner coldRunner(testBudget());
    const Budget b{2000, 6000};
    const RunRecord &shared = runner.run("429.mcf", cfg, b, true);
    const RunRecord &cold = coldRunner.run("429.mcf", cfg, b, false);
    EXPECT_TRUE(shared.stats == cold.stats)
        << "warm-shared stats must be bit-identical to a cold run";
    EXPECT_EQ(shared.checkpoint, "warm-shared");
    EXPECT_EQ(cold.checkpoint, "");

    // Distinct warmup budgets are distinct prefixes.
    runner.run("429.mcf", cfg, Budget{1000, 3000}, true);
    EXPECT_EQ(runner.prefixSimulations(), 2u);
}

TEST(Serve, CheckpointJobLines)
{
    // Per-line opt-in: three "share" jobs on one prefix (one warmup
    // simulation), one "cold" twin, one bad value (rejected). The
    // shared and cold runs must report identical simulated cycles.
    std::istringstream in(
        "{\"workload\": \"429.mcf\", \"warmup\": 2000, \"instr\": 4000,"
        " \"checkpoint\": \"share\"}\n"
        "{\"workload\": \"429.mcf\", \"warmup\": 2000, \"instr\": 6000,"
        " \"checkpoint\": \"share\"}\n"
        "{\"workload\": \"429.mcf\", \"warmup\": 2000, \"instr\": 8000,"
        " \"checkpoint\": \"share\"}\n"
        "{\"workload\": \"429.mcf\", \"warmup\": 2000, \"instr\": 6000,"
        " \"checkpoint\": \"cold\"}\n"
        "{\"workload\": \"429.mcf\", \"checkpoint\": \"sometimes\"}\n");
    std::ostringstream out, diag;
    ExperimentRunner runner(testBudget());
    ServeOptions options;
    options.jobs = 4;
    options.defaultBudget = testBudget();

    const int failures = serveLoop(in, out, runner, options, diag);
    EXPECT_EQ(failures, 1);
    EXPECT_NE(diag.str().find("checkpoint must be"), std::string::npos)
        << diag.str();
    EXPECT_EQ(runner.prefixSimulations(), 1u)
        << "the three share jobs must warm up exactly once";
    EXPECT_EQ(runner.records().size(), 4u);

    // Responses carry the provenance field.
    const std::string response = out.str();
    std::size_t warmShared = 0, none = 0;
    static const std::regex ckpt_re("\"checkpoint\": \"([a-z-]+)\"");
    for (auto it = std::sregex_iterator(response.begin(),
                                        response.end(), ckpt_re);
         it != std::sregex_iterator(); ++it) {
        if ((*it)[1].str() == "warm-shared")
            ++warmShared;
        else if ((*it)[1].str() == "none")
            ++none;
    }
    EXPECT_EQ(warmShared, 3u);
    EXPECT_EQ(none, 1u);

    // The shared 2000+6000 job and the cold 2000+6000 job simulated
    // the same design point: their cycle counts must be identical.
    std::vector<std::uint64_t> cycles;
    static const std::regex pair_re(
        "\"cycles\": ([0-9]+), \"instructions\": (6[0-9]+)");
    for (auto it = std::sregex_iterator(response.begin(),
                                        response.end(), pair_re);
         it != std::sregex_iterator(); ++it) {
        cycles.push_back(std::stoull((*it)[1].str()));
    }
    ASSERT_EQ(cycles.size(), 2u) << response;
    EXPECT_EQ(cycles[0], cycles[1])
        << "shared vs cold run of the same design point diverged";
}

TEST(TaskPool, RunsEverythingAndDrainsTwice)
{
    TaskPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&done] { ++done; });
    pool.drain();
    EXPECT_EQ(done.load(), 100);
    // The pool stays usable after a drain.
    for (int i = 0; i < 50; ++i)
        pool.submit([&done] { ++done; });
    pool.drain();
    EXPECT_EQ(done.load(), 150);
}

TEST(TaskPool, SubmitBlocksWhenBacklogFull)
{
    // One worker, backlog 2. A blocker task pins the worker; two
    // queued fillers reach the bound; a third submission must not
    // return until the blocker releases (this is the memory bound the
    // serve loop relies on for arbitrarily long job streams).
    TaskPool pool(1, 2);
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    bool blocker_running = false;

    pool.submit([&] {
        std::unique_lock<std::mutex> lk(m);
        blocker_running = true;
        cv.notify_all();
        cv.wait(lk, [&] { return release; });
    });
    {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return blocker_running; });
    }
    pool.submit([] {});
    pool.submit([] {});

    std::atomic<bool> fourth_submitted{false};
    std::thread submitter([&] {
        pool.submit([] {});
        fourth_submitted = true;
    });
    // The worker is pinned and the queue is at the bound, so the
    // fourth submit cannot have gone through yet.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(fourth_submitted.load());

    {
        std::lock_guard<std::mutex> lk(m);
        release = true;
    }
    cv.notify_all();
    submitter.join();
    EXPECT_TRUE(fourth_submitted.load());
    pool.drain();
}

TEST(TaskPool, WorkerExceptionsDeliveredAtDrain)
{
    // A throwing task must not take its worker (or the pool) down:
    // the exception is parked as a JobError, every other task still
    // runs, drain() returns, and takeErrors() hands the failures back
    // ordered by submission ordinal.
    TaskPool pool(4);
    std::atomic<int> done{0};
    for (int i = 0; i < 40; ++i) {
        if (i % 10 == 3) {
            pool.submit([i] {
                throw std::runtime_error("boom " + std::to_string(i));
            });
        } else {
            pool.submit([&done] { ++done; });
        }
    }
    pool.drain();
    EXPECT_EQ(done.load(), 36);

    std::vector<JobError> errors = pool.takeErrors();
    ASSERT_EQ(errors.size(), 4u);
    EXPECT_EQ(errors[0].index, 3u);
    EXPECT_EQ(errors[1].index, 13u);
    EXPECT_EQ(errors[2].index, 23u);
    EXPECT_EQ(errors[3].index, 33u);
    EXPECT_EQ(errors[0].kind, "simulation");
    EXPECT_NE(errors[0].what.find("boom 3"), std::string::npos);
    // takeErrors() drains: a second call is empty.
    EXPECT_TRUE(pool.takeErrors().empty());

    // The pool stays usable after failures.
    pool.submit([&done] { ++done; });
    pool.drain();
    EXPECT_EQ(done.load(), 37);
    EXPECT_TRUE(pool.takeErrors().empty());
}

TEST(TaskPool, BacklogKeepsDrainingAfterEarlyError)
{
    // One worker, backlog 2: the very first task throws while later
    // submissions are leaning on the backpressure bound. The error
    // must not wedge the bookkeeping — every queued task still runs
    // and drain() returns.
    TaskPool pool(1, 2);
    std::atomic<int> done{0};
    pool.submit([] { throw std::runtime_error("first task fails"); });
    for (int i = 0; i < 20; ++i)
        pool.submit([&done] { ++done; });
    pool.drain();
    EXPECT_EQ(done.load(), 20);

    std::vector<JobError> errors = pool.takeErrors();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_EQ(errors[0].index, 0u);
    EXPECT_NE(errors[0].what.find("first task fails"), std::string::npos);
}

TEST(Serve, MalformedLinesRejectedWithDiagnostics)
{
    std::istringstream in(
        "this is not json\n"
        "{\"workload\": \"429.mcf\", \"bogus_knob\": 3}\n"
        "{\"workload\": \"not-a-benchmark\"}\n"
        "{\"prefetcher\": \"bo\"}\n"
        "\n"
        "{\"workload\": \"429.mcf\"}\n");
    std::ostringstream out, diag;
    ExperimentRunner runner(testBudget());
    ServeOptions options;
    options.jobs = 2;
    options.defaultBudget = testBudget();

    const int failures = serveLoop(in, out, runner, options, diag);
    EXPECT_EQ(failures, 4);

    // One {"error", "line"} object per bad line, pointing at it.
    const std::string response = out.str();
    for (const int line : {1, 2, 3, 4}) {
        EXPECT_NE(response.find("\"line\": " + std::to_string(line)),
                  std::string::npos)
            << response;
        EXPECT_NE(diag.str().find("serve: line " + std::to_string(line)),
                  std::string::npos)
            << diag.str();
    }
    // The good line (6, after the blank) still simulated.
    EXPECT_NE(response.find("\"job_index\": 0"), std::string::npos);
    EXPECT_EQ(runner.records().size(), 1u);
}

TEST(Serve, ThousandJobBatchDedupsAndDrains)
{
    // 1000 jobs cycling over 4 distinct design points, 4 workers,
    // backlog 8: the reader must block on the bound (memory stays
    // O(backlog)), the latch must collapse the batch onto 4 actual
    // simulations, and every accepted job must answer exactly once.
    std::ostringstream batch;
    for (int i = 0; i < 1000; ++i) {
        batch << "{\"workload\": \"429.mcf\", \"seed\": " << (i % 4)
              << "}\n";
    }
    std::istringstream in(batch.str());
    std::ostringstream out, diag;
    ExperimentRunner runner(testBudget());
    ServeOptions options;
    options.jobs = 4;
    options.backlog = 8;
    options.defaultBudget = testBudget();

    const int failures = serveLoop(in, out, runner, options, diag);
    EXPECT_EQ(failures, 0);
    // The only diagnostic on a clean batch is the final summary line.
    EXPECT_EQ(diag.str(), "serve: 1000 accepted, 0 rejected, 0 failed, "
                          "0 retried, 0 replayed\n");
    EXPECT_EQ(runner.records().size(), 4u);

    // Every job_index 0..999 answered exactly once (completion order
    // is scheduling-dependent; coverage must not be).
    std::vector<int> seen(1000, 0);
    const std::string response = out.str();
    static const std::regex index_re("\"job_index\": ([0-9]+)");
    auto it = std::sregex_iterator(response.begin(), response.end(),
                                   index_re);
    std::size_t responses = 0;
    for (; it != std::sregex_iterator(); ++it, ++responses) {
        const int idx = std::stoi((*it)[1].str());
        ASSERT_LT(idx, 1000);
        ++seen[static_cast<std::size_t>(idx)];
    }
    EXPECT_EQ(responses, 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1) << i;
}

} // namespace
} // namespace bop
