/**
 * @file
 * Tests for the OOO core model, using a scripted trace and a mock
 * memory interface with controllable latencies.
 */

#include <gtest/gtest.h>

#include <deque>

#include "sim/core_model.hh"

namespace bop
{
namespace
{

/** Scripted trace: replays a fixed vector, then pads with IntOps. */
class ScriptTrace : public TraceSource
{
  public:
    explicit ScriptTrace(std::vector<TraceInstr> script)
        : script(std::move(script))
    {
    }

    TraceInstr
    next() override
    {
        if (pos < script.size())
            return script[pos++];
        TraceInstr nop;
        nop.kind = InstrKind::IntOp;
        nop.pc = 0x900000;
        return nop;
    }

    std::string name() const override { return "script"; }

  private:
    std::vector<TraceInstr> script;
    std::size_t pos = 0;
};

/** Mock memory: every load takes a fixed latency, delivered manually. */
class MockMem : public CoreMemInterface
{
  public:
    LoadOutcome
    coreLoad(CoreId, Addr vaddr, Addr, std::uint32_t rob_tag,
             Cycle now) override
    {
        ++loads;
        if (retries_left > 0) {
            --retries_left;
            return {LoadOutcome::Kind::Retry, 0};
        }
        if (hit_latency > 0)
            return {LoadOutcome::Kind::Hit, now + hit_latency};
        pending.push_back({rob_tag, now, vaddr});
        return {LoadOutcome::Kind::Pending, 0};
    }

    StoreOutcome
    coreStore(CoreId, Addr, Addr, Cycle) override
    {
        ++stores;
        return {true, store_hits};
    }

    void
    retireMemOp(CoreId, Addr, Addr) override
    {
        ++retired_mem;
    }

    struct Pending
    {
        std::uint32_t tag;
        Cycle issued;
        Addr vaddr;
    };

    unsigned hit_latency = 3;  ///< 0 = Pending mode
    bool store_hits = true;
    int retries_left = 0;
    int loads = 0;
    int stores = 0;
    int retired_mem = 0;
    std::deque<Pending> pending;
};

TraceInstr
load(Addr vaddr, bool dep = false)
{
    TraceInstr i;
    i.kind = InstrKind::Load;
    i.pc = 0x1000;
    i.vaddr = vaddr;
    i.dependsOnPrevLoad = dep;
    return i;
}

TraceInstr
op()
{
    TraceInstr i;
    i.kind = InstrKind::IntOp;
    i.pc = 0x2000;
    return i;
}

TEST(CoreModel, RetiresInstructionsInOrder)
{
    CoreParams params;
    ScriptTrace trace({op(), op(), load(0x100), op()});
    MockMem mem;
    CoreModel core(0, params, trace, mem);

    Cycle now = 0;
    while (core.retired() < 100 && now < 1000)
        core.tick(++now);
    EXPECT_GE(core.retired(), 100u);
    EXPECT_EQ(mem.retired_mem, 1) << "one memory op in the script";
}

TEST(CoreModel, IpcBoundedByDispatchWidth)
{
    CoreParams params;
    params.dispatchWidth = 4;
    ScriptTrace trace({});
    MockMem mem;
    CoreModel core(0, params, trace, mem);
    for (Cycle now = 1; now <= 1000; ++now)
        core.tick(now);
    EXPECT_LE(core.retired(), 4000u);
    EXPECT_GT(core.retired(), 3000u) << "pure-ALU IPC should be near 4";
}

TEST(CoreModel, PendingLoadBlocksRetirementUntilCompleted)
{
    CoreParams params;
    ScriptTrace trace({load(0x100)});
    MockMem mem;
    mem.hit_latency = 0; // pending mode
    CoreModel core(0, params, trace, mem);

    Cycle now = 0;
    for (; now < 50; ++now)
        core.tick(now + 1);
    ASSERT_EQ(mem.pending.size(), 1u);
    // ROB head (after any older ops) is stuck on the load; retirement
    // of younger instructions cannot pass it.
    const auto retired_before = core.retired();
    for (int i = 0; i < 20; ++i)
        core.tick(++now);
    EXPECT_EQ(core.retired(), retired_before);

    core.loadCompleted(mem.pending[0].tag, now);
    for (int i = 0; i < 20; ++i)
        core.tick(++now);
    EXPECT_GT(core.retired(), retired_before);
}

TEST(CoreModel, RobCapacityBoundsOutstandingWork)
{
    CoreParams params;
    params.robSize = 32;
    ScriptTrace trace({load(0x100)}); // then endless ops
    MockMem mem;
    mem.hit_latency = 0;
    CoreModel core(0, params, trace, mem);
    for (Cycle now = 1; now < 200; ++now)
        core.tick(now);
    // The un-completed load blocks the head: at most robSize-? ops sit
    // in the ROB; none retired beyond those dispatched before the load.
    EXPECT_LE(core.robOccupancy(), 32u);
    EXPECT_EQ(core.retired(), 0u) << "load was first and never completed";
}

TEST(CoreModel, DependentLoadsSerialize)
{
    // Two independent loads issue back-to-back; two dependent loads
    // issue serially. Compare the times of the DL1 accesses.
    CoreParams params;
    MockMem mem_ind;
    mem_ind.hit_latency = 0;
    ScriptTrace t_ind({load(0x100), load(0x200)});
    CoreModel core_ind(0, params, t_ind, mem_ind);
    Cycle now = 0;
    while (mem_ind.pending.size() < 2 && now < 100)
        core_ind.tick(++now);
    ASSERT_EQ(mem_ind.pending.size(), 2u);
    EXPECT_EQ(mem_ind.pending[0].issued, mem_ind.pending[1].issued)
        << "independent loads issue in the same cycle";

    MockMem mem_dep;
    mem_dep.hit_latency = 0;
    ScriptTrace t_dep({load(0x100), load(0x200, true)});
    CoreModel core_dep(0, params, t_dep, mem_dep);
    now = 0;
    while (mem_dep.pending.size() < 1 && now < 100)
        core_dep.tick(++now);
    // Second load must not issue before the first completes.
    for (int i = 0; i < 30; ++i)
        core_dep.tick(++now);
    ASSERT_EQ(mem_dep.pending.size(), 1u);
    const Cycle completed_at = now;
    core_dep.loadCompleted(mem_dep.pending[0].tag, completed_at);
    while (mem_dep.pending.size() < 2 && now < 500)
        core_dep.tick(++now);
    ASSERT_EQ(mem_dep.pending.size(), 2u);
    EXPECT_GT(mem_dep.pending[1].issued, mem_dep.pending[0].issued + 25);
}

TEST(CoreModel, RetryLoadsEventuallyIssue)
{
    CoreParams params;
    ScriptTrace trace({load(0x100)});
    MockMem mem;
    mem.retries_left = 5;
    CoreModel core(0, params, trace, mem);
    Cycle now = 0;
    while (core.retired() < 1 && now < 200)
        core.tick(++now);
    EXPECT_GE(core.retired(), 1u);
    EXPECT_GE(mem.loads, 6) << "5 retries + 1 success";
}

TEST(CoreModel, MispredictedBranchStallsDispatch)
{
    // An endless stream of unpredictable branches caps IPC near
    // 1/branchPenalty once the predictor stops guessing right.
    CoreParams params;
    std::vector<TraceInstr> script;
    Rng rng(5);
    for (int i = 0; i < 4000; ++i) {
        TraceInstr b;
        b.kind = InstrKind::Branch;
        b.pc = 0x3000;
        b.taken = rng.chance(0.5);
        script.push_back(b);
    }
    ScriptTrace trace(std::move(script));
    MockMem mem;
    CoreModel core(0, params, trace, mem);
    for (Cycle now = 1; now <= 8000; ++now)
        core.tick(now);
    ASSERT_GT(core.branchCount(), 500u);
    const double mr = static_cast<double>(core.mispredictCount()) /
                      static_cast<double>(core.branchCount());
    EXPECT_GT(mr, 0.3);
    // With ~50% mispredicts and a 12-cycle penalty, far fewer than the
    // dispatch-width-bound instructions retire.
    EXPECT_LT(core.retired(), 4000u);
}

TEST(CoreModel, StoresDoNotBlockRetirement)
{
    CoreParams params;
    std::vector<TraceInstr> script;
    for (int i = 0; i < 64; ++i) {
        TraceInstr s;
        s.kind = InstrKind::Store;
        s.pc = 0x4000;
        s.vaddr = 0x100000 + static_cast<Addr>(i) * 64;
        script.push_back(s);
    }
    ScriptTrace trace(std::move(script));
    MockMem mem;
    CoreModel core(0, params, trace, mem);
    Cycle now = 0;
    while (core.retired() < 64 && now < 300)
        core.tick(++now);
    EXPECT_GE(core.retired(), 64u);
    EXPECT_EQ(mem.stores, 64);
}

TEST(CoreModel, StoreQueueBackpressure)
{
    CoreParams params;
    params.storeQueue = 4;
    std::vector<TraceInstr> script;
    for (int i = 0; i < 32; ++i) {
        TraceInstr s;
        s.kind = InstrKind::Store;
        s.pc = 0x4000;
        s.vaddr = 0x100000 + static_cast<Addr>(i) * 64;
        script.push_back(s);
    }
    ScriptTrace trace(std::move(script));
    MockMem mem;
    mem.store_hits = false; // every store occupies the store queue
    CoreModel core(0, params, trace, mem);
    for (Cycle now = 1; now <= 100; ++now)
        core.tick(now);
    EXPECT_LE(mem.stores, 4) << "store queue must throttle at 4";
    core.storeCompleted(mem.stores);
    for (Cycle now = 101; now <= 120; ++now)
        core.tick(now);
    EXPECT_GT(mem.stores, 4);
}

} // namespace
} // namespace bop
