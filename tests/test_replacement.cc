/**
 * @file
 * Tests for the stack-based replacement policies (LRU, BIP).
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace bop
{
namespace
{

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru;
    lru.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(0, w, {});
    // Order of fills: 0,1,2,3 -> LRU is way 0.
    EXPECT_EQ(lru.victim(0), 0u);
    lru.onHit(0, 0);
    EXPECT_EQ(lru.victim(0), 1u);
}

TEST(Lru, VictimPeekAgreesWithVictim)
{
    LruPolicy lru;
    lru.reset(4, 8);
    for (unsigned w = 0; w < 8; ++w)
        lru.onFill(2, w, {});
    lru.onHit(2, 5);
    EXPECT_EQ(lru.victimPeek(2), lru.victim(2));
}

TEST(Lru, PositionTracking)
{
    LruPolicy lru;
    lru.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.onFill(0, w, {});
    EXPECT_EQ(lru.positionOf(0, 3), 0u); // most recent fill = MRU
    EXPECT_EQ(lru.positionOf(0, 0), 3u); // oldest = LRU
}

TEST(Bip, MostInsertionsGoToLru)
{
    BipPolicy bip(123, 32);
    bip.reset(1, 8);
    int lru_insertions = 0;
    const int trials = 1000;
    for (int i = 0; i < trials; ++i) {
        bip.onFill(0, 4, {});
        if (bip.positionOf(0, 4) == 7)
            ++lru_insertions;
    }
    // Expect ~31/32 of insertions at LRU position.
    EXPECT_GT(lru_insertions, trials * 9 / 10);
    EXPECT_LT(lru_insertions, trials);
}

TEST(Bip, OccasionallyInsertsAtMru)
{
    BipPolicy bip(99, 32);
    bip.reset(1, 8);
    bool saw_mru = false;
    for (int i = 0; i < 2000 && !saw_mru; ++i) {
        bip.onFill(0, 3, {});
        saw_mru = bip.positionOf(0, 3) == 0;
    }
    EXPECT_TRUE(saw_mru);
}

TEST(StackPolicy, HitPromotesToMru)
{
    LruPolicy lru;
    lru.reset(1, 4);
    lru.onHit(0, 2);
    EXPECT_EQ(lru.positionOf(0, 2), 0u);
}

TEST(StackPolicy, ResetRestoresIdentityOrder)
{
    LruPolicy lru;
    lru.reset(2, 4);
    lru.onHit(1, 3);
    lru.reset(2, 4);
    EXPECT_EQ(lru.positionOf(1, 0), 0u);
    EXPECT_EQ(lru.victim(1), 3u);
}

} // namespace
} // namespace bop
