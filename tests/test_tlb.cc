/**
 * @file
 * Tests for the TLB hierarchy.
 */

#include <gtest/gtest.h>

#include "sim/tlb.hh"

namespace bop
{
namespace
{

TEST(Tlb, InsertLookup)
{
    Tlb tlb(64, 4);
    EXPECT_FALSE(tlb.lookup(5));
    tlb.insert(5);
    EXPECT_TRUE(tlb.lookup(5));
}

TEST(Tlb, LruEvictionWithinSet)
{
    Tlb tlb(8, 2); // 4 sets, 2 ways
    // VPNs 0, 4, 8 all map to set 0.
    tlb.insert(0);
    tlb.insert(4);
    tlb.insert(8); // evicts 0
    EXPECT_FALSE(tlb.probe(0));
    EXPECT_TRUE(tlb.probe(4));
    EXPECT_TRUE(tlb.probe(8));
}

TEST(Tlb, LookupRefreshesRecency)
{
    Tlb tlb(8, 2);
    tlb.insert(0);
    tlb.insert(4);
    tlb.lookup(0); // 0 now MRU
    tlb.insert(8); // evicts 4
    EXPECT_TRUE(tlb.probe(0));
    EXPECT_FALSE(tlb.probe(4));
}

TEST(Tlb, ProbeDoesNotRefresh)
{
    Tlb tlb(8, 2);
    tlb.insert(0);
    tlb.insert(4);
    tlb.probe(0); // must NOT refresh
    tlb.insert(8);
    EXPECT_FALSE(tlb.probe(0)) << "0 stayed LRU and was evicted";
}

TEST(Tlb, FlushEmpties)
{
    Tlb tlb(64, 4);
    for (Addr v = 0; v < 32; ++v)
        tlb.insert(v);
    tlb.flush();
    for (Addr v = 0; v < 32; ++v)
        EXPECT_FALSE(tlb.probe(v));
}

TEST(TlbHierarchy, PenaltyStructure)
{
    TlbHierarchy h;
    std::uint64_t m1 = 0, m2 = 0;
    // Cold access: both miss -> walk penalty.
    EXPECT_EQ(h.demandAccess(42, m1, m2),
              TlbHierarchy::tlb2Latency + TlbHierarchy::walkLatency);
    EXPECT_EQ(m1, 1u);
    EXPECT_EQ(m2, 1u);
    // Now both levels hold it: free.
    EXPECT_EQ(h.demandAccess(42, m1, m2), 0u);
    EXPECT_EQ(m1, 1u);
}

TEST(TlbHierarchy, Tlb2HitCostsTlb2Latency)
{
    TlbHierarchy h;
    std::uint64_t m1 = 0, m2 = 0;
    h.demandAccess(42, m1, m2);
    // Evict 42 from the 64-entry DTLB1 by touching 64 conflicting VPNs
    // (same set: stride = number of sets = 16).
    for (Addr v = 42 + 16; v < 42 + 16 * 80; v += 16)
        h.level1().insert(v);
    ASSERT_FALSE(h.level1().probe(42));
    EXPECT_EQ(h.demandAccess(42, m1, m2), TlbHierarchy::tlb2Latency);
    EXPECT_EQ(m1, 2u);
    EXPECT_EQ(m2, 1u);
}

TEST(TlbHierarchy, PrefetchProbeNeverWalks)
{
    TlbHierarchy h;
    EXPECT_FALSE(h.prefetchProbe(100)) << "cold: prefetch dropped";
    std::uint64_t m1 = 0, m2 = 0;
    h.demandAccess(100, m1, m2);
    EXPECT_TRUE(h.prefetchProbe(100));
}

} // namespace
} // namespace bop
