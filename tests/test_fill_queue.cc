/**
 * @file
 * Tests for the fill queue + CAM (the paper's L2/L3 MSHR replacement,
 * Sec. 5.4).
 */

#include <gtest/gtest.h>

#include "cache/fill_queue.hh"

namespace bop
{
namespace
{

TEST(FillQueue, AllocateFillPop)
{
    FillQueue fq("t", 4);
    ReqMeta meta;
    meta.core = 1;
    const auto id = fq.allocate(100, meta, false);
    EXPECT_EQ(fq.size(), 1u);
    EXPECT_FALSE(fq.popReady(10).has_value()) << "no data yet";
    fq.fillData(id, 5);
    const auto e = fq.popReady(10);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->line, 100u);
    EXPECT_EQ(e->meta.core, 1);
    EXPECT_EQ(fq.size(), 0u);
}

TEST(FillQueue, PopRespectsReadyCycle)
{
    FillQueue fq("t", 4);
    const auto id = fq.allocate(7, {}, false);
    fq.fillData(id, 100);
    EXPECT_FALSE(fq.popReady(99).has_value());
    EXPECT_TRUE(fq.popReady(100).has_value());
}

TEST(FillQueue, ReleaseFreesEntry)
{
    FillQueue fq("t", 2);
    const auto a = fq.allocate(1, {}, false);
    fq.allocate(2, {}, false);
    EXPECT_TRUE(fq.full());
    fq.release(a);
    EXPECT_FALSE(fq.full());
    EXPECT_EQ(fq.find(1), nullptr);
    EXPECT_NE(fq.find(2), nullptr);
}

TEST(FillQueue, CamFindsByLine)
{
    FillQueue fq("t", 4);
    fq.allocate(42, {}, true);
    FillQueueEntry *e = fq.find(42);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->isPrefetch);
    EXPECT_EQ(fq.find(43), nullptr);
}

TEST(FillQueue, PromotionThroughCam)
{
    // The late-prefetch mechanism: a demand miss finds the in-flight
    // prefetch entry and promotes it in place.
    FillQueue fq("t", 4);
    ReqMeta meta;
    meta.wasL2Prefetch = true;
    const auto id = fq.allocateWithData(55, meta, true, 3);
    FillQueueEntry *e = fq.find(55);
    ASSERT_NE(e, nullptr);
    e->isPrefetch = false;
    e->meta.needL1 = true;
    e->meta.mshrId = 9;

    const auto popped = fq.popReady(3);
    ASSERT_TRUE(popped.has_value());
    EXPECT_FALSE(popped->isPrefetch);
    EXPECT_TRUE(popped->meta.needL1);
    EXPECT_EQ(popped->meta.mshrId, 9u);
    EXPECT_TRUE(popped->meta.wasL2Prefetch) << "history must survive";
    (void)id;
}

TEST(FillQueue, FifoDrainOrder)
{
    FillQueue fq("t", 4);
    fq.allocateWithData(1, {}, false, 0);
    fq.allocateWithData(2, {}, false, 0);
    fq.allocateWithData(3, {}, false, 0);
    EXPECT_EQ(fq.popReady(0)->line, 1u);
    EXPECT_EQ(fq.popReady(0)->line, 2u);
    EXPECT_EQ(fq.popReady(0)->line, 3u);
}

TEST(FillQueue, ReadyEntriesSkipWaitingHead)
{
    FillQueue fq("t", 4);
    fq.allocate(1, {}, false); // waiting, no data
    fq.allocateWithData(2, {}, false, 0);
    const auto e = fq.popReady(0);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->line, 2u);
    EXPECT_NE(fq.find(1), nullptr);
}

TEST(FillQueue, WaitingReserveThrottlesAllocations)
{
    FillQueue fq("t", 4);
    fq.allocate(1, {}, false);
    fq.allocate(2, {}, false);
    EXPECT_FALSE(fq.canAllocateWaiting())
        << "2 of 4 slots are reserved for returning data";
    EXPECT_FALSE(fq.full());
    fq.allocateWithData(3, {}, false, 0);
    fq.allocateWithData(4, {}, false, 0);
    EXPECT_TRUE(fq.full());
}

TEST(FillQueue, PeekThenRemove)
{
    FillQueue fq("t", 4);
    fq.allocateWithData(8, {}, false, 2);
    EXPECT_EQ(fq.peekReady(1), nullptr);
    FillQueueEntry *e = fq.peekReady(2);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->line, 8u);
    EXPECT_EQ(fq.size(), 1u) << "peek must not remove";
    fq.removeById(e->id);
    EXPECT_EQ(fq.size(), 0u);
}

TEST(FillQueue, IdsAreStableAcrossOtherReleases)
{
    FillQueue fq("t", 4);
    const auto a = fq.allocate(1, {}, false);
    const auto b = fq.allocate(2, {}, false);
    fq.release(a);
    fq.fillData(b, 7);
    EXPECT_EQ(fq.entry(b).line, 2u);
    EXPECT_TRUE(fq.entry(b).hasData);
}

} // namespace
} // namespace bop
