/**
 * @file
 * End-to-end "shape" tests: the qualitative results the paper reports,
 * checked on the actual workloads at reduced instruction budgets.
 * These are the repository's regression net for the figures.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "trace/workloads.hh"

namespace bop
{
namespace
{

class ShapeTest : public ::testing::Test
{
  protected:
    ShapeTest() : runner({50000, 120000}) {}

    double
    speedupOf(const std::string &bench, L2PrefetcherKind kind,
              PageSize page = PageSize::FourMB, int cores = 1)
    {
        const SystemConfig base = baselineConfig(cores, page);
        SystemConfig cfg = base;
        cfg.l2Prefetcher = kind;
        return runner.speedup(bench, cfg, base);
    }

    ExperimentRunner runner;
};

TEST_F(ShapeTest, BoBeatsNextLineOnLbm)
{
    // Fig. 6: 470.lbm is the paper's peak BO benchmark.
    EXPECT_GT(speedupOf("470.lbm", L2PrefetcherKind::BestOffset), 1.25);
}

TEST_F(ShapeTest, BoBeatsNextLineOnMilc)
{
    EXPECT_GT(speedupOf("433.milc", L2PrefetcherKind::BestOffset), 1.1);
}

TEST_F(ShapeTest, BoBeatsNextLineOnLibquantum)
{
    EXPECT_GT(speedupOf("462.libquantum", L2PrefetcherKind::BestOffset),
              1.05);
}

TEST_F(ShapeTest, BoCrushesSbpOnMilc)
{
    // Fig. 12: the BO-vs-SBP ratio peaks on 433.milc-like benchmarks
    // because SBP's accuracy-only scores favour small, late offsets.
    const double bo = speedupOf("433.milc", L2PrefetcherKind::BestOffset);
    const double sbp = speedupOf("433.milc", L2PrefetcherKind::Sandbox);
    EXPECT_GT(bo / sbp, 1.3);
}

TEST_F(ShapeTest, GeomeanOrderingBoSbpNextline)
{
    // Fig. 11: BO > SBP-or-baseline on the geomean of a memory-heavy
    // subset (full 29-benchmark geomeans live in the bench binaries).
    const std::vector<std::string> subset = {
        "433.milc", "459.GemsFDTD", "462.libquantum", "470.lbm",
        "436.cactusADM", "434.zeusmp"};
    const SystemConfig base = baselineConfig(1, PageSize::FourMB);
    SystemConfig bo = base;
    bo.l2Prefetcher = L2PrefetcherKind::BestOffset;
    SystemConfig sbp = base;
    sbp.l2Prefetcher = L2PrefetcherKind::Sandbox;

    const double g_bo = runner.geomeanSpeedup(subset, bo, base);
    const double g_sbp = runner.geomeanSpeedup(subset, sbp, base);
    EXPECT_GT(g_bo, 1.1);
    EXPECT_GT(g_bo, g_sbp);
}

TEST_F(ShapeTest, LargePagesEnableLargerOffsets)
{
    // Sec. 6: with 4KB pages offsets are capped at 63; 433.milc needs
    // very large offsets, so its learned offset must be bigger with
    // superpages.
    const SystemConfig base4k = baselineConfig(1, PageSize::FourKB);
    SystemConfig bo4k = base4k;
    bo4k.l2Prefetcher = L2PrefetcherKind::BestOffset;
    const SystemConfig base4m = baselineConfig(1, PageSize::FourMB);
    SystemConfig bo4m = base4m;
    bo4m.l2Prefetcher = L2PrefetcherKind::BestOffset;

    const int off4k = runner.run("433.milc", bo4k).boFinalOffset;
    const int off4m = runner.run("433.milc", bo4m).boFinalOffset;
    EXPECT_LE(off4k, 63);
    EXPECT_GT(off4m, 32);
    EXPECT_EQ(off4m % 32, 0)
        << "milc peaks at multiples of 32 (Fig. 8)";
}

TEST_F(ShapeTest, LbmLearnsMultipleOfFive)
{
    const SystemConfig base = baselineConfig(1, PageSize::FourMB);
    SystemConfig bo = base;
    bo.l2Prefetcher = L2PrefetcherKind::BestOffset;
    const int off = runner.run("470.lbm", bo).boFinalOffset;
    EXPECT_EQ(off % 5, 0) << "lbm peaks at multiples of 5 (Fig. 8)";
}

TEST_F(ShapeTest, NextLineMattersOnStreams)
{
    // Fig. 5: disabling next-line hurts streaming benchmarks.
    const double s =
        speedupOf("462.libquantum", L2PrefetcherKind::None);
    EXPECT_LT(s, 0.99);
}

TEST_F(ShapeTest, StridePrefetcherMattersOnTonto)
{
    // Fig. 4: 465.tonto is the DL1 stride prefetcher's best customer.
    const SystemConfig base = baselineConfig(1, PageSize::FourMB);
    SystemConfig off = base;
    off.dl1StridePrefetcher = false;
    EXPECT_LT(runner.speedup("465.tonto", off, base), 0.97);
}

TEST_F(ShapeTest, BoAndNextLineSimilarDramTraffic)
{
    // Fig. 13: BO's degree-1 discipline keeps its traffic close to
    // next-line's on the memory-heavy set.
    const SystemConfig base = baselineConfig(1, PageSize::FourKB);
    SystemConfig bo = base;
    bo.l2Prefetcher = L2PrefetcherKind::BestOffset;
    for (const auto &bench :
         {"462.libquantum", "470.lbm", "437.leslie3d"}) {
        const double d_nl = runner.run(bench, base).dramPer1kInstr();
        const double d_bo = runner.run(bench, bo).dramPer1kInstr();
        EXPECT_LT(d_bo, d_nl * 1.35) << bench;
        EXPECT_GT(d_bo, d_nl * 0.65) << bench;
    }
}

TEST_F(ShapeTest, ThrashersIncreaseBoAdvantageAtTwoCores)
{
    // Sec. 6: BO's edge over next-line typically grows from 1 to 2
    // active cores (longer L2 miss latency favours larger offsets).
    const double s1 = speedupOf("470.lbm", L2PrefetcherKind::BestOffset,
                                PageSize::FourMB, 1);
    const double s2 = speedupOf("470.lbm", L2PrefetcherKind::BestOffset,
                                PageSize::FourMB, 2);
    EXPECT_GT(s2, 1.0);
    EXPECT_GT(s1, 1.0);
}

} // namespace
} // namespace bop
