/**
 * @file
 * Tests for the fundamental address arithmetic in common/types.hh.
 * Every prefetcher's same-page filtering and every cache's line math
 * rests on these four functions, so their edge cases (page boundaries,
 * top-of-address-space, both page sizes) are pinned exactly.
 */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace bop
{
namespace
{

TEST(Types, LineAddressRoundTrip)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);      // last byte of line 0
    EXPECT_EQ(lineOf(64), 1u);      // first byte of line 1
    EXPECT_EQ(lineToAddr(1), 64u);
    for (const Addr a : {0ull, 64ull, 4096ull, 0xdeadbeefc0ull}) {
        EXPECT_EQ(lineToAddr(lineOf(a)), a & ~63ull);
        EXPECT_LE(lineToAddr(lineOf(a)), a);
    }
}

TEST(Types, PageGeometry)
{
    EXPECT_EQ(pageBytes(PageSize::FourKB), 4096u);
    EXPECT_EQ(pageBytes(PageSize::FourMB), 4u * 1024 * 1024);
    EXPECT_EQ(pageLines(PageSize::FourKB), 64u);   // Sec. 4.2
    EXPECT_EQ(pageLines(PageSize::FourMB), 65536u);
}

TEST(Types, SamePageAtBoundaries4KB)
{
    const auto pl = pageLines(PageSize::FourKB); // 64 lines
    // Lines 0..63 share a page; line 64 starts the next one.
    EXPECT_TRUE(samePage(0, pl - 1, PageSize::FourKB));
    EXPECT_FALSE(samePage(pl - 1, pl, PageSize::FourKB));
    EXPECT_TRUE(samePage(pl, 2 * pl - 1, PageSize::FourKB));
    // Adjacent lines across the boundary are different pages even
    // though their distance is 1 — the case the paper's same-page
    // rule exists for.
    EXPECT_FALSE(samePage(63, 64, PageSize::FourKB));
}

TEST(Types, SamePageAtBoundaries4MB)
{
    const auto pl = pageLines(PageSize::FourMB);
    EXPECT_TRUE(samePage(0, pl - 1, PageSize::FourMB));
    EXPECT_FALSE(samePage(pl - 1, pl, PageSize::FourMB));
    // The paper's Sec. 4.2 point: offset 256 stays in a 4MB page but
    // cannot stay in a 4KB page.
    EXPECT_TRUE(samePage(1000, 1000 + 256, PageSize::FourMB));
    EXPECT_FALSE(samePage(1000, 1000 + 256, PageSize::FourKB));
}

TEST(Types, SamePageIsReflexiveAndSymmetric)
{
    for (const LineAddr x :
         {0ull, 63ull, 64ull, 1ull << 20, ~0ull >> 8}) {
        for (const auto ps : {PageSize::FourKB, PageSize::FourMB}) {
            EXPECT_TRUE(samePage(x, x, ps));
            EXPECT_EQ(samePage(x, x + 100, ps),
                      samePage(x + 100, x, ps));
        }
    }
}

TEST(Types, SamePageNearTopOfAddressSpace)
{
    // No overflow surprises at the top of the 64-bit line space.
    const LineAddr top = ~0ull;
    EXPECT_TRUE(samePage(top, top, PageSize::FourKB));
    EXPECT_FALSE(samePage(top, top - pageLines(PageSize::FourKB),
                          PageSize::FourKB));
}

/** Property sweep: every line maps into exactly one page. */
class PagePartitionProperty : public ::testing::TestWithParam<PageSize>
{
};

TEST_P(PagePartitionProperty, PagesPartitionTheLineSpace)
{
    const PageSize ps = GetParam();
    const LineAddr pl = pageLines(ps);
    const LineAddr bases[] = {0, 7 * pl, 123456 * pl};
    for (const LineAddr base : bases) {
        // All lines of a page agree with the page's first line...
        for (LineAddr off = 0; off < pl; off += pl / 8)
            EXPECT_TRUE(samePage(base, base + off, ps));
        // ...and disagree with both neighbours.
        if (base > 0) {
            EXPECT_FALSE(samePage(base, base - 1, ps));
        }
        EXPECT_FALSE(samePage(base, base + pl, ps));
    }
}

INSTANTIATE_TEST_SUITE_P(Pages, PagePartitionProperty,
                         ::testing::Values(PageSize::FourKB,
                                           PageSize::FourMB));

} // namespace
} // namespace bop
