/**
 * @file
 * End-to-end integration sweep of the full prefetcher zoo through the
 * simulated system: every prefetcher kind x page size runs to
 * completion, respects the accounting invariants, is deterministic,
 * and the trained/feedback prefetchers actually profit from a
 * sequential stream (not just "don't crash").
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.hh"
#include "sim/system.hh"
#include "trace/generators.hh"
#include "trace/workloads.hh"

namespace bop
{
namespace
{

std::unique_ptr<TraceSource>
streamTrace(std::uint64_t seed)
{
    WorkloadSpec w;
    w.name = "zoo-stream";
    w.memFraction = 0.5;
    w.branchFraction = 0.0;
    w.depFraction = 0.3;
    StreamSpec s;
    s.regionBytes = 32ull << 20;
    s.stepBytes = 8;
    w.streams = {s};
    return std::make_unique<SyntheticTrace>(w, seed);
}

RunStats
runStream(L2PrefetcherKind kind, PageSize page, std::uint64_t seed = 5,
          std::uint64_t warm = 30000, std::uint64_t meas = 60000)
{
    SystemConfig cfg;
    cfg.activeCores = 1;
    cfg.pageSize = page;
    cfg.l2Prefetcher = kind;
    cfg.fixedOffset = 4;
    cfg.seed = seed;
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(streamTrace(seed));
    System sys(cfg, std::move(traces));
    return sys.run(warm, meas);
}

using ZooParam = std::tuple<L2PrefetcherKind, PageSize>;

class ZooIntegration : public ::testing::TestWithParam<ZooParam>
{
};

TEST_P(ZooIntegration, RunsToCompletionWithSaneCounters)
{
    const auto [kind, page] = GetParam();
    const RunStats s = runStream(kind, page);

    EXPECT_GE(s.instructions, 60000u);
    EXPECT_GT(s.ipc(), 0.0);
    EXPECT_LE(s.l2PrefFills, s.l2PrefIssued);
    EXPECT_LE(s.l2PrefetchedHits + s.l2PrefUselessEvicted,
              s.l2PrefFills + s.l2LatePromotions);
    EXPECT_LE(s.l2LatePromotions, s.l2Misses);
    EXPECT_GE(s.prefetchCoverage(), 0.0);
    EXPECT_LE(s.prefetchCoverage(), 1.0);
}

TEST_P(ZooIntegration, DeterministicAcrossIdenticalRuns)
{
    const auto [kind, page] = GetParam();
    const RunStats a = runStream(kind, page, 9);
    const RunStats b = runStream(kind, page, 9);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l2PrefIssued, b.l2PrefIssued);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

TEST_P(ZooIntegration, PrefetchingProfitsOnSequentialStream)
{
    const auto [kind, page] = GetParam();
    if (kind == L2PrefetcherKind::None)
        GTEST_SKIP() << "no-prefetch is the reference here";
    const RunStats none = runStream(L2PrefetcherKind::None, page);
    const RunStats s = runStream(kind, page);
    // Every real prefetcher must find the sequential stream and at
    // least not lose to no-prefetch; the useful count must be material.
    EXPECT_GT(s.l2PrefUseful(), 100u);
    EXPECT_GT(s.ipc(), none.ipc() * 0.98);
}

std::string
zooParamName(const ::testing::TestParamInfo<ZooParam> &info)
{
    static const char *names[] = {"none",   "nextline", "fixed",
                                  "bo",     "sbp",      "stream",
                                  "fdp",    "acdc",     "streambuf",
                                  "bodpc2"};
    const int k = static_cast<int>(std::get<0>(info.param));
    const bool big = std::get<1>(info.param) == PageSize::FourMB;
    return std::string(names[k]) + (big ? "_4MB" : "_4KB");
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndPages, ZooIntegration,
    ::testing::Combine(
        ::testing::Values(L2PrefetcherKind::None,
                          L2PrefetcherKind::NextLine,
                          L2PrefetcherKind::FixedOffset,
                          L2PrefetcherKind::BestOffset,
                          L2PrefetcherKind::Sandbox,
                          L2PrefetcherKind::Stream,
                          L2PrefetcherKind::Fdp,
                          L2PrefetcherKind::Acdc,
                          L2PrefetcherKind::StreamBuffer,
                          L2PrefetcherKind::BestOffsetDpc2),
        ::testing::Values(PageSize::FourKB, PageSize::FourMB)),
    zooParamName);

/** The zoo, two thrasher cores active: contention must not wedge. */
class ZooMultiCore : public ::testing::TestWithParam<L2PrefetcherKind>
{
};

TEST_P(ZooMultiCore, TwoCoreContentionCompletes)
{
    SystemConfig cfg = baselineConfig(2, PageSize::FourKB);
    cfg.l2Prefetcher = GetParam();
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(streamTrace(3));
    traces.push_back(makeThrasher(4));
    System sys(cfg, std::move(traces));
    const RunStats s = sys.run(10000, 30000);
    EXPECT_GE(s.instructions, 30000u);
    EXPECT_GT(s.dramReads, 0u); // the thrasher guarantees traffic
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ZooMultiCore,
    ::testing::Values(L2PrefetcherKind::Fdp, L2PrefetcherKind::Acdc,
                      L2PrefetcherKind::StreamBuffer,
                      L2PrefetcherKind::BestOffsetDpc2));

} // namespace
} // namespace bop
