/**
 * @file
 * Tests for the xorshift128+ RNG every stochastic component of the
 * simulator is seeded from (virtual-memory randomisation, BIP/DRRIP
 * insertion throws, workload generators). Determinism across
 * construction paths is what makes whole-system runs reproducible, so
 * it is pinned here explicitly.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace bop
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsTheSequence)
{
    Rng rng(77);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(rng.next());
    rng.reseed(77);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, ZeroSeedIsValid)
{
    // xorshift dies on an all-zero state; the splitmix expansion and
    // the explicit guard must keep seed 0 usable.
    Rng rng(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 64; ++i)
        seen.insert(rng.next());
    EXPECT_GT(seen.size(), 60u);
}

TEST(Rng, BitsAreRoughlyBalanced)
{
    // Not a statistical test battery — just a tripwire against a
    // catastrophic state-update regression (stuck bits).
    Rng rng(0xbeef);
    int ones[64] = {};
    const int n = 4096;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t v = rng.next();
        for (int b = 0; b < 64; ++b)
            ones[b] += (v >> b) & 1;
    }
    for (int b = 0; b < 64; ++b) {
        EXPECT_GT(ones[b], n / 3) << "bit " << b << " mostly 0";
        EXPECT_LT(ones[b], 2 * n / 3) << "bit " << b << " mostly 1";
    }
}

TEST(Rng, SplitmixAvalanche)
{
    // Consecutive seeds must not produce correlated first outputs —
    // cores are seeded as (seed + core id).
    std::set<std::uint64_t> firsts;
    for (std::uint64_t s = 0; s < 256; ++s)
        firsts.insert(Rng(s).next());
    EXPECT_EQ(firsts.size(), 256u);
}

TEST(BufferedRng, DrawStreamMatchesPlainRng)
{
    // The refill buffer must be invisible: a mixed next/below/range/
    // chance sequence draws bit-identically to an unbuffered Rng, at
    // every phase of the 16-entry buffer.
    Rng plain(0xabcd);
    BufferedRng buffered(0xabcd);
    for (int i = 0; i < 1000; ++i) {
        switch (i % 4) {
        case 0:
            ASSERT_EQ(buffered.next(), plain.next()) << i;
            break;
        case 1:
            ASSERT_EQ(buffered.below(7 + i % 13), plain.below(7 + i % 13))
                << i;
            break;
        case 2:
            ASSERT_EQ(buffered.range(10, 20 + i % 5),
                      plain.range(10, 20 + i % 5))
                << i;
            break;
        default:
            ASSERT_EQ(buffered.chance(0.3), plain.chance(0.3)) << i;
            break;
        }
    }
}

TEST(BufferedRng, ReseedRestartsLikeFreshRng)
{
    // reseed() drops the undrawn tail of the buffer: the generator
    // workloads reset their streams mid-run and expect a clean start.
    BufferedRng buffered(9);
    for (int i = 0; i < 5; ++i) // mid-buffer
        buffered.next();
    buffered.reseed(42);
    Rng fresh(42);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(buffered.next(), fresh.next()) << i;
}

} // namespace
} // namespace bop
