/**
 * @file
 * Tests for the 8-entry L2 prefetch queue (Sec. 5.4).
 */

#include <gtest/gtest.h>

#include "cache/prefetch_queue.hh"

namespace bop
{
namespace
{

PrefetchRequest
req(LineAddr line, Cycle ready = 0)
{
    PrefetchRequest r;
    r.line = line;
    r.readyAt = ready;
    return r;
}

TEST(PrefetchQueue, FifoOrder)
{
    PrefetchQueue q(8);
    q.insert(req(1));
    q.insert(req(2));
    EXPECT_EQ(q.popReady(0)->line, 1u);
    EXPECT_EQ(q.popReady(0)->line, 2u);
    EXPECT_FALSE(q.popReady(0).has_value());
}

TEST(PrefetchQueue, OldestCancelledOnOverflow)
{
    PrefetchQueue q(3);
    EXPECT_FALSE(q.insert(req(1)));
    EXPECT_FALSE(q.insert(req(2)));
    EXPECT_FALSE(q.insert(req(3)));
    EXPECT_TRUE(q.insert(req(4))) << "oldest (1) must be cancelled";
    EXPECT_EQ(q.size(), 3u);
    EXPECT_FALSE(q.contains(1));
    EXPECT_TRUE(q.contains(4));
    EXPECT_EQ(q.popReady(0)->line, 2u);
}

TEST(PrefetchQueue, ContainsSearch)
{
    PrefetchQueue q(4);
    q.insert(req(77));
    EXPECT_TRUE(q.contains(77));
    EXPECT_FALSE(q.contains(78));
}

TEST(PrefetchQueue, ReadyCycleGating)
{
    PrefetchQueue q(4);
    q.insert(req(5, 10));
    EXPECT_EQ(q.peekReady(9), nullptr);
    EXPECT_FALSE(q.popReady(9).has_value());
    ASSERT_NE(q.peekReady(10), nullptr);
    EXPECT_EQ(q.peekReady(10)->line, 5u);
}

TEST(PrefetchQueue, PeekThenPopFront)
{
    PrefetchQueue q(4);
    q.insert(req(1, 100));
    q.insert(req(2, 0));
    // Oldest *ready* request is 2 (1 not ready yet).
    const PrefetchRequest *p = q.peekReady(0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->line, 2u);
    q.popFront(0);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_TRUE(q.contains(1));
}

} // namespace
} // namespace bop
