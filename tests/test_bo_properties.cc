/**
 * @file
 * Property-style parameterized tests of the Best-Offset prefetcher:
 * invariants that must hold across strides, page sizes, and RR sizes.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/best_offset.hh"

namespace bop
{
namespace
{

/** Drive BO on an ideal strided pattern where prefetches complete. */
void
driveStride(BestOffsetPrefetcher &bo, int stride, int accesses,
            LineAddr base = 1 << 20)
{
    std::vector<LineAddr> out;
    LineAddr x = base;
    for (int i = 0; i < accesses; ++i) {
        out.clear();
        bo.onAccess({x, true, false, static_cast<Cycle>(i)}, out);
        for (const LineAddr t : out)
            bo.onFill({t, true, static_cast<Cycle>(i)});
        x += static_cast<LineAddr>(stride);
    }
}

class BoStrideSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BoStrideSweep, LearnedOffsetIsMultipleOfStride)
{
    // On a perfect stride-S stream where every prefetch completes
    // before the next access, only offsets that are multiples of S can
    // score: a multiple of S must be learned (Sec. 3.2).
    const int stride = GetParam();
    BoConfig cfg;
    cfg.roundMax = 30;
    BestOffsetPrefetcher bo(PageSize::FourMB, cfg);
    driveStride(bo, stride, 9000);
    ASSERT_GT(bo.learningPhases(), 0u);
    EXPECT_TRUE(bo.prefetchEnabled()) << "stride " << stride;
    EXPECT_EQ(bo.currentOffset() % stride, 0) << "stride " << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, BoStrideSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 16));

class BoPageSweep
    : public ::testing::TestWithParam<std::pair<PageSize, int>>
{
};

TEST_P(BoPageSweep, PrefetchesNeverCrossPages)
{
    const auto [page, stride] = GetParam();
    BoConfig cfg;
    cfg.roundMax = 10;
    BestOffsetPrefetcher bo(page, cfg);
    std::vector<LineAddr> out;
    LineAddr x = 0;
    for (int i = 0; i < 20000; ++i) {
        out.clear();
        bo.onAccess({x, true, false, static_cast<Cycle>(i)}, out);
        for (const LineAddr t : out) {
            EXPECT_TRUE(samePage(x, t, page))
                << "X=" << x << " target=" << t;
            bo.onFill({t, true, static_cast<Cycle>(i)});
        }
        x += static_cast<LineAddr>(stride);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PagesAndStrides, BoPageSweep,
    ::testing::Values(std::pair{PageSize::FourKB, 1},
                      std::pair{PageSize::FourKB, 3},
                      std::pair{PageSize::FourKB, 7},
                      std::pair{PageSize::FourMB, 1},
                      std::pair{PageSize::FourMB, 5},
                      std::pair{PageSize::FourMB, 97}));

TEST(BoInvariants, ScoresNeverExceedScoreMax)
{
    BoConfig cfg;
    cfg.scoreMax = 10;
    cfg.roundMax = 50;
    BestOffsetPrefetcher bo(PageSize::FourMB, cfg);
    std::vector<LineAddr> out;
    LineAddr x = 4096;
    for (int i = 0; i < 30000; ++i) {
        bo.recordCompletedPrefetchBase(x - 1);
        bo.recordCompletedPrefetchBase(x - 2);
        out.clear();
        bo.onAccess({x, true, false, 0}, out);
        for (const int s : bo.scoreTable())
            ASSERT_LE(s, cfg.scoreMax);
        ++x;
    }
    EXPECT_GT(bo.learningPhases(), 0u);
}

TEST(BoInvariants, PhaseLengthBoundedByRoundMax)
{
    // With no RR hits at all, a phase is exactly roundMax rounds.
    BoConfig cfg;
    cfg.roundMax = 7;
    BestOffsetPrefetcher bo(PageSize::FourKB, cfg);
    const std::size_t per_round = bo.offsetList().size();
    std::vector<LineAddr> out;
    for (std::size_t i = 0; i < 3 * 7 * per_round; ++i) {
        out.clear();
        bo.onAccess({64 * (i + 1), true, false, 0}, out);
    }
    EXPECT_EQ(bo.learningPhases(), 3u);
}

class BoRrSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BoRrSizes, LearningWorksAtAnyRrSize)
{
    // Fig. 10's sweep: every RR size must still learn a clean stride.
    BoConfig cfg;
    cfg.rrEntries = GetParam();
    cfg.roundMax = 30;
    BestOffsetPrefetcher bo(PageSize::FourMB, cfg);
    driveStride(bo, 4, 9000);
    EXPECT_EQ(bo.currentOffset() % 4, 0);
    EXPECT_TRUE(bo.prefetchEnabled());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BoRrSizes,
                         ::testing::Values(32, 64, 128, 256, 512));

TEST(BoInvariants, RandomAccessesEventuallyThrottleOff)
{
    // A pattern with no offset structure must turn prefetch off
    // (Sec. 4.3) — the RR table sees incoherent base addresses.
    BoConfig cfg;
    cfg.roundMax = 20;
    BestOffsetPrefetcher bo(PageSize::FourKB, cfg);
    Rng rng(99);
    std::vector<LineAddr> out;
    for (int i = 0; i < 30000 && bo.offPhases() == 0; ++i) {
        const LineAddr x = rng.next() & 0x3fffffff;
        out.clear();
        bo.onAccess({x, true, false, 0}, out);
        // Fills come back for the random demands, not prefetches.
        bo.onFill({x, false, 0});
    }
    EXPECT_GT(bo.offPhases(), 0u);
    EXPECT_FALSE(bo.prefetchEnabled());
}

TEST(BoInvariants, OffsetAlwaysFromList)
{
    BoConfig cfg;
    cfg.roundMax = 5;
    BestOffsetPrefetcher bo(PageSize::FourMB, cfg);
    Rng rng(3);
    std::vector<LineAddr> out;
    LineAddr x = 0;
    for (int i = 0; i < 50000; ++i) {
        // Mixed stride pattern to keep learning churning.
        x += 1 + (rng.next() % 3);
        out.clear();
        bo.onAccess({x, true, false, 0}, out);
        for (const LineAddr t : out)
            bo.onFill({t, true, 0});
        const auto &list = bo.offsetList();
        ASSERT_NE(std::find(list.begin(), list.end(),
                            bo.currentOffset()),
                  list.end())
            << "offset " << bo.currentOffset() << " not in list";
    }
}

TEST(BoInvariants, DeterministicGivenSameInputs)
{
    BoConfig cfg;
    cfg.roundMax = 15;
    BestOffsetPrefetcher a(PageSize::FourMB, cfg);
    BestOffsetPrefetcher b(PageSize::FourMB, cfg);
    driveStride(a, 6, 8000);
    driveStride(b, 6, 8000);
    EXPECT_EQ(a.currentOffset(), b.currentOffset());
    EXPECT_EQ(a.learningPhases(), b.learningPhases());
    EXPECT_EQ(a.lastPhaseBestScore(), b.lastPhaseBestScore());
}

} // namespace
} // namespace bop
