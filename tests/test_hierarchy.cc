/**
 * @file
 * Integration tests of the memory hierarchy through a full System with
 * scripted single-pattern workloads.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/system.hh"
#include "trace/generators.hh"

namespace bop
{
namespace
{

std::unique_ptr<TraceSource>
seqTrace(std::uint64_t region = 32ull << 20, std::int64_t step = 8,
         double stores = 0.0, int accesses_per_element = 1)
{
    WorkloadSpec w;
    w.name = "seq";
    w.memFraction = 0.5;
    w.branchFraction = 0.0;
    // Address-generation dependences bound the core's spontaneous MLP,
    // which is what leaves prefetchers room to matter (see DESIGN.md).
    w.depFraction = 0.3;
    StreamSpec s;
    s.regionBytes = region;
    s.stepBytes = step;
    s.storeRatio = stores;
    s.accessesPerElement = accesses_per_element;
    w.streams = {s};
    return std::make_unique<SyntheticTrace>(w, 123);
}

SystemConfig
cfg1core(L2PrefetcherKind pf = L2PrefetcherKind::NextLine)
{
    SystemConfig cfg;
    cfg.activeCores = 1;
    cfg.l2Prefetcher = pf;
    return cfg;
}

TEST(Hierarchy, SequentialRunCompletes)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace());
    System sys(cfg1core(), std::move(traces));
    const RunStats stats = sys.run(2000, 20000);
    // Retirement is up to retireWidth per cycle, so the window may
    // overshoot the target by a few instructions.
    EXPECT_GE(stats.instructions, 20000u);
    EXPECT_LT(stats.instructions, 20000u + 12u);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.dl1Accesses, 8000u);
    EXPECT_GT(stats.dramReads, 0u);
}

TEST(Hierarchy, CacheResidentWorkloadStopsMissing)
{
    // 64KB working set fits the 512KB L2: after warmup, DRAM traffic
    // must be (nearly) zero.
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace(64 << 10));
    System sys(cfg1core(L2PrefetcherKind::None), std::move(traces));
    const RunStats stats = sys.run(50000, 20000);
    EXPECT_LT(stats.dramPer1kInstr(), 1.0);
    EXPECT_LT(stats.l2Mpki(), 1.0);
}

TEST(Hierarchy, NextLineProducesPrefetchedHits)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace());
    System sys(cfg1core(), std::move(traces));
    const RunStats stats = sys.run(5000, 30000);
    EXPECT_GT(stats.l2PrefIssued, 100u);
    EXPECT_GT(stats.l2PrefetchedHits + stats.l2LatePromotions, 50u)
        << "a sequential stream must profit from next-line prefetching";
}

TEST(Hierarchy, PrefetchingReducesCyclesOnStream)
{
    auto run = [](L2PrefetcherKind kind) {
        std::vector<std::unique_ptr<TraceSource>> traces;
        traces.push_back(seqTrace(32ull << 20, 8, 0.0, 3));
        System sys(cfg1core(kind), std::move(traces));
        return sys.run(60000, 120000); // BO needs phases to converge
    };
    const RunStats none = run(L2PrefetcherKind::None);
    const RunStats nl = run(L2PrefetcherKind::NextLine);
    const RunStats bo = run(L2PrefetcherKind::BestOffset);
    EXPECT_GT(nl.ipc(), none.ipc() * 1.02)
        << "next-line must beat no-prefetch on a sequential stream";
    EXPECT_GT(bo.ipc(), nl.ipc() * 1.02)
        << "BO must beat next-line via larger, timely offsets";
}

TEST(Hierarchy, BoLearnsLargeOffsetOnStream)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace());
    SystemConfig cfg = cfg1core(L2PrefetcherKind::BestOffset);
    System sys(cfg, std::move(traces));
    const RunStats stats = sys.run(20000, 50000);
    EXPECT_GT(stats.boLearningPhases, 0u);
    EXPECT_GT(stats.boFinalOffset, 1)
        << "timeliness-aware learning must move beyond next-line";
}

TEST(Hierarchy, WritebacksReachDram)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace(32ull << 20, 8, 1.0)); // all stores
    // Shrink the caches so dirty data cascades to DRAM within the
    // budget of a unit test (the default 8MB L3 absorbs ~130K lines).
    SystemConfig cfg = cfg1core();
    cfg.caches.l2Bytes = 64 * 1024;
    cfg.caches.l3Bytes = 64 * 1024;
    System sys(cfg, std::move(traces));
    const RunStats stats = sys.run(5000, 60000);
    EXPECT_GT(stats.dramWrites, 100u)
        << "streaming stores must generate DRAM writebacks";
}

TEST(Hierarchy, StridedPatternBenefitsFromBo)
{
    // Line stride 4: next-line covers nothing, BO should find offset 4
    // (or a multiple) and win. 8 accesses per element keep the miss
    // rate realistic (latency-bound, not bandwidth-bound).
    auto mk = [] { return seqTrace(32ull << 20, 4 * 64, 0.0, 8); };
    auto run = [&](L2PrefetcherKind kind) {
        std::vector<std::unique_ptr<TraceSource>> traces;
        traces.push_back(mk());
        SystemConfig cfg = cfg1core(kind);
        cfg.dl1StridePrefetcher = false; // isolate the L2 prefetcher
        System sys(cfg, std::move(traces));
        return sys.run(60000, 120000);
    };
    const RunStats nl = run(L2PrefetcherKind::NextLine);
    const RunStats bo = run(L2PrefetcherKind::BestOffset);
    EXPECT_GT(bo.ipc(), nl.ipc() * 1.05);
    EXPECT_EQ(bo.boFinalOffset % 4, 0)
        << "learned offset must be a multiple of the stride";
}

TEST(Hierarchy, TlbMissesCountedWith4KbPages)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace());
    System sys(cfg1core(), std::move(traces));
    const RunStats stats = sys.run(2000, 30000);
    EXPECT_GT(stats.dtlb1Misses, 10u);
}

TEST(Hierarchy, SuperpagesEliminateTlbMisses)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace());
    SystemConfig cfg = cfg1core();
    cfg.pageSize = PageSize::FourMB;
    System sys(cfg, std::move(traces));
    const RunStats stats = sys.run(2000, 30000);
    EXPECT_LT(stats.tlb2Misses, 20u);
}

TEST(Hierarchy, MultiCoreThrasherReducesCore0Ipc)
{
    auto run = [](int cores) {
        SystemConfig cfg;
        cfg.activeCores = cores;
        std::vector<std::unique_ptr<TraceSource>> traces;
        traces.push_back(seqTrace());
        for (int c = 1; c < cores; ++c) {
            WorkloadSpec t = makeThrasherSpec();
            traces.push_back(std::make_unique<SyntheticTrace>(t, 55 + c));
        }
        System sys(cfg, std::move(traces));
        return sys.run(5000, 20000);
    };
    const double ipc1 = run(1).ipc();
    const double ipc4 = run(4).ipc();
    EXPECT_LT(ipc4, ipc1)
        << "L3/bandwidth contention must hurt core 0 (paper Fig. 2)";
}

TEST(Hierarchy, QuiescesAfterDrain)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace(64 << 10)); // small, cache resident
    System sys(cfg1core(L2PrefetcherKind::None), std::move(traces));
    sys.run(1000, 5000);
    // Spin the uncore without new work until everything drains.
    for (int i = 0; i < 20000 && !sys.hierarchy().quiescent(); ++i)
        sys.hierarchy().tick(sys.currentCycle() + static_cast<Cycle>(i));
    EXPECT_TRUE(sys.hierarchy().quiescent());
}

TEST(Hierarchy, DeadlockDetectorFires)
{
    // A pathological config: an L2 fill queue of size 3 with reserve 2
    // still progresses; instead test the detector by requesting a
    // trace that never lets core 0 retire: not constructible here, so
    // assert the guard exists by checking a normal run does NOT throw.
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(seqTrace());
    System sys(cfg1core(), std::move(traces));
    EXPECT_NO_THROW(sys.run(1000, 5000));
}

} // namespace
} // namespace bop
