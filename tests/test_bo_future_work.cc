/**
 * @file
 * Tests for the two future-work extensions the paper's conclusion
 * calls for (Sec. 7): dynamically adjusted BADSCORE, and hybrid
 * timeliness/coverage scoring (the 462.libquantum weakness).
 * Defaults-off behaviour is pinned so the paper configuration is
 * bit-exact with and without the extension code paths.
 */

#include <gtest/gtest.h>

#include "core/best_offset.hh"

namespace bop
{
namespace
{

std::vector<LineAddr>
access(BestOffsetPrefetcher &pf, LineAddr line, bool pref_hit = false)
{
    std::vector<LineAddr> out;
    pf.onAccess({line, !pref_hit, pref_hit, 0}, out);
    return out;
}

// -- defaults keep the paper behaviour --------------------------------------

TEST(BoFutureWork, ExtensionsOffByDefault)
{
    const BoConfig cfg;
    EXPECT_FALSE(cfg.adaptiveBadScore);
    EXPECT_EQ(cfg.coverageWeight, 0);
}

TEST(BoFutureWork, FeedbackEventsAreInertWhenDisabled)
{
    BoConfig cfg; // defaults: both extensions off
    BestOffsetPrefetcher pf(PageSize::FourMB, cfg);
    for (int i = 0; i < 100; ++i) {
        pf.onEvict({static_cast<LineAddr>(i), true, true, 0});
        pf.onLatePromotion(static_cast<LineAddr>(i), 0);
    }
    EXPECT_EQ(pf.effectiveBadScore(), cfg.badScore);
}

// -- adaptive BADSCORE -------------------------------------------------------

TEST(BoAdaptiveBadScore, RaisesThresholdOnUselessPhases)
{
    BoConfig cfg;
    cfg.adaptiveBadScore = true;
    cfg.badScore = 1;
    cfg.badScoreMax = 15;
    cfg.roundMax = 2;
    BestOffsetPrefetcher pf(PageSize::FourMB, cfg);

    // Phase producing only useless prefetches: evictions with the
    // prefetch bit set and no prefetched hits.
    std::uint64_t state = 99;
    while (pf.learningPhases() < 1) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        access(pf, (state >> 24) & 0xfffff);
        pf.onEvict({state & 0xffff, true, true, 0});
    }
    EXPECT_GT(pf.effectiveBadScore(), 1);
}

TEST(BoAdaptiveBadScore, RelaxesThresholdOnHealthyPhases)
{
    BoConfig cfg;
    cfg.adaptiveBadScore = true;
    cfg.badScore = 8;
    cfg.badScoreMin = 1;
    cfg.roundMax = 2;
    BestOffsetPrefetcher pf(PageSize::FourMB, cfg);

    // Healthy phases: plenty of prefetched hits, no useless evictions.
    LineAddr x = 0;
    const std::uint64_t start = pf.learningPhases();
    while (pf.learningPhases() < start + 3)
        access(pf, ++x, true);
    EXPECT_LT(pf.effectiveBadScore(), 8);
}

TEST(BoAdaptiveBadScore, ThresholdStaysWithinBounds)
{
    BoConfig cfg;
    cfg.adaptiveBadScore = true;
    cfg.badScore = 4;
    cfg.badScoreMin = 2;
    cfg.badScoreMax = 12;
    cfg.roundMax = 1;
    BestOffsetPrefetcher pf(PageSize::FourMB, cfg);

    // Alternate stretches of terrible and perfect feedback; the
    // threshold must never leave [min, max].
    std::uint64_t state = 7;
    for (int phase = 0; phase < 30; ++phase) {
        const bool bad = phase % 2 == 0;
        const std::uint64_t until = pf.learningPhases() + 1;
        LineAddr x = static_cast<LineAddr>(phase) << 20;
        while (pf.learningPhases() < until) {
            if (bad) {
                state = state * 6364136223846793005ull + 12345;
                access(pf, (state >> 24) & 0xfffff);
                pf.onEvict({state & 0xffff, true, true, 0});
            } else {
                access(pf, ++x, true);
            }
        }
        EXPECT_GE(pf.effectiveBadScore(), 2);
        EXPECT_LE(pf.effectiveBadScore(), 12);
    }
}

// -- hybrid coverage scoring --------------------------------------------------

TEST(BoCoverage, CoverageOnlyEvidenceCanSustainPrefetching)
{
    // Construct the 462.libquantum situation of Sec. 6: accesses come
    // so fast that *no* offset in the list is ever timely (the RR
    // table stays empty), but small offsets would have full coverage.
    // Pure timeliness scoring turns prefetch off; hybrid scoring must
    // keep it on using coverage credit.
    BoConfig timely;
    timely.roundMax = 4;
    timely.badScore = 1;
    BestOffsetPrefetcher pure(PageSize::FourMB, timely);

    BoConfig hybrid = timely;
    hybrid.coverageWeight = 1;
    BestOffsetPrefetcher hyb(PageSize::FourMB, hybrid);

    LineAddr x = 0;
    for (int i = 0; i < 52 * 10; ++i) {
        ++x;
        std::vector<LineAddr> out;
        pure.onAccess({x, true, false, 0}, out);
        out.clear();
        hyb.onAccess({x, true, false, 0}, out);
        // No onFill at all: no prefetch ever completes in time.
    }
    ASSERT_GE(pure.learningPhases(), 1u);
    ASSERT_GE(hyb.learningPhases(), 1u);
    EXPECT_FALSE(pure.prefetchEnabled());
    EXPECT_TRUE(hyb.prefetchEnabled());
}

TEST(BoCoverage, TimelyOffsetsStillBeatCoverageOnlyOffsets)
{
    // Feed timely evidence for offset 8 (completed prefetches) while
    // every offset gets coverage evidence: the timely offset must win
    // because a timely hit scores twice a coverage-only hit.
    BoConfig cfg;
    cfg.coverageWeight = 1;
    cfg.roundMax = 6;
    BestOffsetPrefetcher pf(PageSize::FourMB, cfg);

    LineAddr x = 1000;
    for (int i = 0; i < 52 * 7; ++i) {
        ++x;
        // Simulate completed prefetches with offset 8: the RR table
        // holds bases up to X-8, so offsets >= 8 test as timely and 8
        // is the first of them in list order (it wins score ties).
        pf.recordCompletedPrefetchBase(x - 8);
        std::vector<LineAddr> out;
        pf.onAccess({x, true, false, 0}, out);
    }
    EXPECT_EQ(pf.lastPhaseBestOffset() % 8, 0);
}

TEST(BoCoverage, HalfPointScoresScaleScoreMax)
{
    // With coverageWeight on, SCOREMAX semantics double internally; a
    // phase saturated by coverage-only hits must still terminate (via
    // SCOREMAX) and report a best score.
    BoConfig cfg;
    cfg.coverageWeight = 2; // equal credit
    cfg.scoreMax = 8;
    cfg.roundMax = 100;
    BestOffsetPrefetcher pf(PageSize::FourMB, cfg);

    LineAddr x = 0;
    int guard = 0;
    while (pf.learningPhases() < 1 && ++guard < 52 * 60)
        access(pf, ++x);
    ASSERT_GE(pf.learningPhases(), 1u);
    // Saturation happened via SCOREMAX, well before ROUNDMAX rounds.
    EXPECT_LT(guard, 52 * 40);
    EXPECT_GE(pf.lastPhaseBestScore(), 16); // 8 * scale(2)
}

TEST(BoCoverage, AccessNeverScoresAgainstItself)
{
    // A single access repeated must not self-hit through the coverage
    // table (insertion happens after the learning step).
    BoConfig cfg;
    cfg.coverageWeight = 2;
    cfg.roundMax = 1;
    BestOffsetPrefetcher pf(PageSize::FourMB, cfg);
    for (int i = 0; i < 52; ++i)
        access(pf, 4096); // same line every time; X-d never equals X
    EXPECT_EQ(pf.lastPhaseBestScore(), 0);
}

/**
 * Property sweep over coverage weights: on a stream where timeliness
 * is achievable, the learned offset must be stride-compatible for
 * every weight (the hybrid never *loses* the timely solution).
 */
class BoCoverageWeightProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BoCoverageWeightProperty, LearnsStrideCompatibleOffset)
{
    BoConfig cfg;
    cfg.coverageWeight = GetParam();
    cfg.roundMax = 8;
    BestOffsetPrefetcher pf(PageSize::FourMB, cfg);

    LineAddr x = 0;
    for (int i = 0; i < 52 * 18; ++i) {
        x += 2;
        std::vector<LineAddr> out;
        pf.onAccess({x, true, false, 0}, out);
        for (const LineAddr t : out)
            pf.onFill({t, true, 0});
    }
    ASSERT_GE(pf.learningPhases(), 1u);
    EXPECT_TRUE(pf.prefetchEnabled());
    EXPECT_EQ(pf.currentOffset() % 2, 0)
        << "offset " << pf.currentOffset() << " with weight "
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Weights, BoCoverageWeightProperty,
                         ::testing::Values(0, 1, 2));

} // namespace
} // namespace bop
