/**
 * @file
 * Tests for the workload-generator locality mechanisms added during
 * calibration (DESIGN.md §3b): temporal-reuse rings, per-field PCs,
 * sub-element accesses, and pointer-chase allocation locality.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generators.hh"

namespace bop
{
namespace
{

WorkloadSpec
chaseOnly(double locality, int ape = 3)
{
    WorkloadSpec w;
    w.name = "chase";
    w.memFraction = 1.0;
    w.branchFraction = 0.0;
    StreamSpec s;
    s.pattern = StreamPattern::PointerChase;
    s.regionBytes = 8 << 20;
    s.accessesPerElement = ape;
    s.chaseLocality = locality;
    w.streams = {s};
    return w;
}

/** Fraction of element transitions landing within 4 lines forward. */
double
nearFraction(SyntheticTrace &t, int samples)
{
    LineAddr prev = 0;
    int near = 0, total = 0;
    for (int i = 0; i < samples; ++i) {
        const TraceInstr in = t.next();
        const LineAddr line = lineOf(in.vaddr);
        if (prev != 0 && line != prev) {
            const std::int64_t d = static_cast<std::int64_t>(line) -
                                   static_cast<std::int64_t>(prev);
            near += d >= 1 && d <= 4;
            ++total;
        }
        prev = line;
    }
    return total ? static_cast<double>(near) / total : 0.0;
}

TEST(ChaseLocality, ZeroMeansUniformJumps)
{
    SyntheticTrace t(chaseOnly(0.0, 1), 5);
    EXPECT_LT(nearFraction(t, 20000), 0.02);
}

TEST(ChaseLocality, KnobRaisesNeighbourTransitions)
{
    SyntheticTrace t(chaseOnly(0.5, 1), 5);
    const double f = nearFraction(t, 20000);
    EXPECT_GT(f, 0.35);
    EXPECT_LT(f, 0.65);
}

/**
 * Regression for the dead chase-locality branch: the
 * accessesPerElement == 1 path used to call patternAddr without ever
 * recording the previous chase element, so the locality guard never
 * fired and the knob was a no-op (neighbour fraction ~0.0001). Both
 * paths must now produce statistically similar neighbour fractions.
 */
TEST(ChaseLocality, SingleAndMultiAccessPathsMatch)
{
    SyntheticTrace single(chaseOnly(0.5, 1), 7);
    SyntheticTrace multi(chaseOnly(0.5, 3), 7);
    const double fs = nearFraction(single, 30000);
    const double fm = nearFraction(multi, 30000);
    EXPECT_GT(fs, 0.35);
    EXPECT_LT(fs, 0.65);
    EXPECT_GT(fm, 0.35);
    EXPECT_LT(fm, 0.65);
    EXPECT_NEAR(fs, fm, 0.06);
}

TEST(ChaseLocality, KnobScalesNeighbourFraction)
{
    SyntheticTrace lo(chaseOnly(0.2, 1), 11);
    SyntheticTrace hi(chaseOnly(0.8, 1), 11);
    EXPECT_NEAR(nearFraction(lo, 30000), 0.2, 0.08);
    EXPECT_NEAR(nearFraction(hi, 30000), 0.8, 0.08);
}

TEST(ChaseLocality, StillDependentLoads)
{
    SyntheticTrace t(chaseOnly(0.5), 5);
    for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(t.next().dependsOnPrevLoad);
}

TEST(ReuseRing, ReuseHitsRecentElements)
{
    WorkloadSpec w;
    w.name = "reuse";
    w.memFraction = 1.0;
    w.branchFraction = 0.0;
    StreamSpec s;
    s.pattern = StreamPattern::Sequential;
    s.regionBytes = 1 << 22;
    s.stepBytes = 64;
    s.reuseFraction = 0.5;
    w.streams = {s};
    SyntheticTrace t(w, 9);

    // Every reused address must match one of the last 16 elements.
    std::set<Addr> recent;
    std::vector<Addr> order;
    int reuses = 0, violations = 0;
    Addr frontier = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = t.next().vaddr & ~63ull; // element base
        if (a > frontier) {
            frontier = a; // new element (monotone for sequential)
            order.push_back(a);
        } else if (a < frontier) {
            ++reuses;
            // must be within the last ~17 distinct elements
            bool found = false;
            for (std::size_t k = order.size() > 20 ? order.size() - 20 : 0;
                 k < order.size(); ++k) {
                found |= order[k] == a;
            }
            violations += !found;
        }
    }
    EXPECT_GT(reuses, 5000);
    EXPECT_EQ(violations, 0);
}

TEST(FieldPcs, EachFieldHasItsOwnPc)
{
    WorkloadSpec w;
    w.name = "fields";
    w.memFraction = 1.0;
    w.branchFraction = 0.0;
    StreamSpec s;
    s.regionBytes = 1 << 22;
    s.stepBytes = 256;
    s.pattern = StreamPattern::Strided;
    s.accessesPerElement = 4;
    w.streams = {s};
    SyntheticTrace t(w, 9);

    // Group addresses by PC: each PC must observe a constant stride.
    std::map<Addr, std::vector<Addr>> by_pc;
    for (int i = 0; i < 4000; ++i) {
        const TraceInstr in = t.next();
        by_pc[in.pc].push_back(in.vaddr);
    }
    EXPECT_EQ(by_pc.size(), 4u);
    for (const auto &[pc, addrs] : by_pc) {
        ASSERT_GT(addrs.size(), 10u);
        const std::int64_t stride =
            static_cast<std::int64_t>(addrs[1]) -
            static_cast<std::int64_t>(addrs[0]);
        EXPECT_EQ(stride, 256);
        for (std::size_t k = 2; k < addrs.size(); ++k) {
            const std::int64_t d =
                static_cast<std::int64_t>(addrs[k]) -
                static_cast<std::int64_t>(addrs[k - 1]);
            if (d != stride)
                break; // region wrap allowed once
        }
    }
}

TEST(FieldPcs, ReuseAccessesUseSeparatePcRange)
{
    WorkloadSpec w;
    w.name = "reusepc";
    w.memFraction = 1.0;
    w.branchFraction = 0.0;
    StreamSpec s;
    s.regionBytes = 1 << 22;
    s.stepBytes = 128;
    s.pattern = StreamPattern::Strided;
    s.accessesPerElement = 2;
    s.reuseFraction = 0.4;
    w.streams = {s};
    SyntheticTrace t(w, 9);

    std::set<Addr> pcs;
    for (int i = 0; i < 10000; ++i)
        pcs.insert(t.next().pc);
    // 2 stream-field PCs plus up to 8 reuse-field PCs (offset 0x800).
    int reuse_pcs = 0;
    for (const Addr pc : pcs)
        reuse_pcs += (pc & 0x800) != 0;
    EXPECT_GT(reuse_pcs, 0) << "reuse accesses must not share stream PCs";
    EXPECT_LE(pcs.size() - static_cast<std::size_t>(reuse_pcs), 2u);
}

TEST(SubElementAccesses, StayWithinElementLine)
{
    WorkloadSpec w;
    w.name = "sub";
    w.memFraction = 1.0;
    w.branchFraction = 0.0;
    StreamSpec s;
    s.regionBytes = 1 << 22;
    s.stepBytes = 512;
    s.pattern = StreamPattern::Strided;
    s.accessesPerElement = 8;
    w.streams = {s};
    SyntheticTrace t(w, 9);

    // 8 consecutive accesses share the element's first line.
    for (int e = 0; e < 100; ++e) {
        const LineAddr first = lineOf(t.next().vaddr);
        for (int j = 1; j < 8; ++j)
            EXPECT_EQ(lineOf(t.next().vaddr), first);
    }
}

} // namespace
} // namespace bop
