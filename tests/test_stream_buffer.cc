/**
 * @file
 * Tests for the Jouppi stream buffers (extension; paper ref [15]):
 * allocation on miss, head-hit advance, scrambling squash, LRU buffer
 * recycling, and page-boundary behaviour.
 */

#include <gtest/gtest.h>

#include "prefetch/stream_buffer.hh"

namespace bop
{
namespace
{

std::vector<LineAddr>
access(StreamBufferPrefetcher &pf, LineAddr line, bool miss = true)
{
    std::vector<LineAddr> out;
    pf.onAccess({line, miss, false, 0}, out);
    return out;
}

TEST(StreamBuffer, MissAllocatesAndFillsBuffer)
{
    StreamBufferConfig cfg;
    cfg.depth = 4;
    StreamBufferPrefetcher pf(PageSize::FourMB, cfg);

    const auto out = access(pf, 100);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 101u);
    EXPECT_EQ(out[3], 104u);
    EXPECT_EQ(pf.activeBuffers(), 1);
}

TEST(StreamBuffer, HeadHitAdvancesByOne)
{
    StreamBufferConfig cfg;
    cfg.depth = 4;
    StreamBufferPrefetcher pf(PageSize::FourMB, cfg);

    access(pf, 100);                     // buffer holds 101..104
    const auto out = access(pf, 101);    // head hit
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 105u);             // top-up to stay full
    const auto lines = pf.bufferLines(0);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines.front(), 102u);
}

TEST(StreamBuffer, HitWorksForCacheHitsToo)
{
    // Once a stream is established, prefetched-hit accesses (miss ==
    // false) must keep advancing it: the lines land in the L2, so
    // stream continuation arrives as hits.
    StreamBufferConfig cfg;
    cfg.depth = 4;
    StreamBufferPrefetcher pf(PageSize::FourMB, cfg);
    access(pf, 100);
    const auto out = access(pf, 101, false);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 105u);
}

TEST(StreamBuffer, ScramblingSquashesSkippedEntries)
{
    StreamBufferConfig cfg;
    cfg.depth = 6;
    StreamBufferPrefetcher pf(PageSize::FourMB, cfg);

    access(pf, 100);                     // holds 101..106
    const auto out = access(pf, 103);    // deep hit: 101,102 squashed
    ASSERT_EQ(out.size(), 3u);           // refill back to depth 6
    EXPECT_EQ(out[0], 107u);
    EXPECT_EQ(pf.bufferLines(0).front(), 104u);
}

TEST(StreamBuffer, NonHitNonMissDoesNothing)
{
    StreamBufferPrefetcher pf(PageSize::FourMB);
    access(pf, 100);
    // A plain cache hit outside every buffer must not allocate.
    const auto out = access(pf, 5000, false);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.activeBuffers(), 1);
}

TEST(StreamBuffer, InterleavedStreamsOccupySeparateBuffers)
{
    StreamBufferConfig cfg;
    cfg.buffers = 4;
    cfg.depth = 4;
    StreamBufferPrefetcher pf(PageSize::FourMB, cfg);

    access(pf, 1000);
    access(pf, 2000);
    access(pf, 3000);
    EXPECT_EQ(pf.activeBuffers(), 3);

    // Each stream advances independently.
    EXPECT_EQ(access(pf, 1001).front(), 1005u);
    EXPECT_EQ(access(pf, 2001).front(), 2005u);
    EXPECT_EQ(access(pf, 3001).front(), 3005u);
}

TEST(StreamBuffer, LruBufferIsRecycled)
{
    StreamBufferConfig cfg;
    cfg.buffers = 2;
    cfg.depth = 2;
    StreamBufferPrefetcher pf(PageSize::FourMB, cfg);

    access(pf, 1000); // buffer A
    access(pf, 2000); // buffer B
    access(pf, 1001); // touch A: B becomes LRU
    access(pf, 3000); // allocates over B

    // Stream A still alive, stream B gone.
    EXPECT_FALSE(access(pf, 1002).empty());
    EXPECT_TRUE(access(pf, 2001, false).empty());
}

TEST(StreamBuffer, AllocationFilterAvoidsDuplicateStreams)
{
    StreamBufferConfig cfg;
    cfg.buffers = 4;
    cfg.depth = 4;
    cfg.allocationFilter = true;
    StreamBufferPrefetcher pf(PageSize::FourMB, cfg);

    access(pf, 100); // holds 101..104
    // A miss on 102 is already covered (103 is tracked): hit path pops
    // to it. But a miss on 100 again (101 tracked) must not allocate
    // a second buffer.
    std::vector<LineAddr> out;
    pf.onAccess({100, true, false, 0}, out);
    EXPECT_EQ(pf.activeBuffers(), 1);
}

TEST(StreamBuffer, StopsAtPageBoundary)
{
    StreamBufferConfig cfg;
    cfg.depth = 8;
    StreamBufferPrefetcher pf(PageSize::FourKB, cfg); // 64-line pages

    const auto out = access(pf, 60);
    // Only 61, 62, 63 fit in the page.
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out.back(), 63u);

    // Head hits near the boundary cannot run past it either.
    EXPECT_TRUE(access(pf, 61).empty());
    EXPECT_TRUE(access(pf, 62).empty());
}

TEST(StreamBuffer, RequiresTagCheck)
{
    StreamBufferPrefetcher pf(PageSize::FourKB);
    EXPECT_TRUE(pf.requiresTagCheck());
}

/** Property: buffer contents are always consecutive ascending lines. */
class StreamBufferProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(StreamBufferProperty, FifoAlwaysConsecutive)
{
    StreamBufferConfig cfg;
    cfg.buffers = 2;
    cfg.depth = GetParam();
    StreamBufferPrefetcher pf(PageSize::FourMB, cfg);

    LineAddr x = 7000;
    std::vector<LineAddr> out;
    pf.onAccess({x, true, false, 0}, out);
    for (int i = 0; i < 40; ++i) {
        ++x;
        out.clear();
        pf.onAccess({x, true, false, 0}, out);
        const auto lines = pf.bufferLines(0);
        for (std::size_t j = 1; j < lines.size(); ++j)
            EXPECT_EQ(lines[j], lines[j - 1] + 1);
        if (!lines.empty())
            EXPECT_GT(lines.front(), x);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, StreamBufferProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace bop
