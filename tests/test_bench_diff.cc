/**
 * @file
 * Tests for bench-record parsing and trajectory diffing: the parser
 * accepts exactly what json_report emits, runs are matched on
 * workload+config+trace_source, and IPC/coverage/DRAM movements are
 * flagged only beyond their thresholds.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/bench_diff.hh"
#include "harness/json_report.hh"

namespace bop
{
namespace
{

std::vector<ParsedRunRecord>
parse(const std::string &text)
{
    std::istringstream in(text);
    return parseRunRecords(in);
}

std::string
record(const std::string &workload, double ipc, double coverage,
       double dram, const std::string &traceSource = "generator")
{
    std::ostringstream os;
    os << "{\"workload\": \"" << workload << "\", "
       << "\"config\": \"baseline\", "
       << "\"trace_source\": \"" << traceSource << "\", "
       << "\"ipc\": " << ipc << ", "
       << "\"prefetch_coverage\": " << coverage << ", "
       << "\"dram_per_1k_instr\": " << dram << "}";
    return os.str();
}

std::string
artifact(const std::vector<std::string> &records)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        out += "  " + records[i];
        if (i + 1 < records.size())
            out += ",";
        out += "\n";
    }
    return out + "]\n";
}

// -- parsing ------------------------------------------------------------------

TEST(BenchDiff, ParsesWriterOutput)
{
    RunStats stats;
    stats.cycles = 100;
    stats.instructions = 250;
    std::ostringstream os;
    writeRunRecords(os, {{"470.lbm", "cfg \"quoted\"", stats,
                          "smoke.champsim (champsim)"}});

    const auto records = parse(os.str());
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].strings.at("workload"), "470.lbm");
    EXPECT_EQ(records[0].strings.at("config"), "cfg \"quoted\"");
    EXPECT_EQ(records[0].strings.at("trace_source"),
              "smoke.champsim (champsim)");
    EXPECT_DOUBLE_EQ(records[0].numbers.at("ipc"), 2.5);
    EXPECT_EQ(records[0].key(),
              "470.lbm | cfg \"quoted\" | smoke.champsim (champsim)");
}

TEST(BenchDiff, EmptyArrayParses)
{
    EXPECT_TRUE(parse("[]").empty());
    EXPECT_TRUE(parse(" [ ] ").empty());
}

TEST(BenchDiff, MalformedInputRejectedWithOffset)
{
    for (const std::string bad :
         {"", "[", "[{\"a\": }]", "[{\"a\": 1}", "[{\"a\" 1}]",
          "[{\"a\": [1]}]"}) {
        EXPECT_THROW(parse(bad), std::runtime_error) << bad;
    }
}

// -- diffing ------------------------------------------------------------------

TEST(BenchDiff, SelfDiffIsClean)
{
    const auto records = parse(artifact(
        {record("a", 1.0, 0.5, 10.0), record("b", 2.0, 0.9, 0.0)}));
    const BenchDiffResult result =
        diffRunRecords(records, records, BenchDiffOptions{});
    EXPECT_TRUE(result.clean());
    EXPECT_EQ(result.compared, 2u);
    EXPECT_TRUE(result.onlyOld.empty());
    EXPECT_TRUE(result.onlyNew.empty());
}

TEST(BenchDiff, FlagsIpcBeyondRelativeThreshold)
{
    const auto before = parse(artifact({record("a", 1.00, 0.5, 10.0)}));
    const auto ok = parse(artifact({record("a", 1.01, 0.5, 10.0)}));
    const auto bad = parse(artifact({record("a", 0.90, 0.5, 10.0)}));

    EXPECT_TRUE(
        diffRunRecords(before, ok, BenchDiffOptions{}).clean());
    const BenchDiffResult result =
        diffRunRecords(before, bad, BenchDiffOptions{});
    ASSERT_EQ(result.flagged.size(), 1u);
    EXPECT_EQ(result.flagged[0].metric, "ipc");
    EXPECT_NEAR(result.flagged[0].delta, -0.10, 1e-9);
}

TEST(BenchDiff, FlagsCoverageBeyondAbsoluteThreshold)
{
    const auto before = parse(artifact({record("a", 1.0, 0.50, 10.0)}));
    const auto ok = parse(artifact({record("a", 1.0, 0.515, 10.0)}));
    const auto bad = parse(artifact({record("a", 1.0, 0.40, 10.0)}));

    EXPECT_TRUE(
        diffRunRecords(before, ok, BenchDiffOptions{}).clean());
    const BenchDiffResult result =
        diffRunRecords(before, bad, BenchDiffOptions{});
    ASSERT_EQ(result.flagged.size(), 1u);
    EXPECT_EQ(result.flagged[0].metric, "prefetch_coverage");
}

TEST(BenchDiff, FlagsDramTrafficAppearingFromZero)
{
    // Off a zero baseline any movement is an infinite relative
    // change, so even a tiny absolute delta must be flagged.
    const auto before = parse(artifact({record("a", 1.0, 0.5, 0.0)}));
    for (const double traffic : {3.0, 0.04}) {
        const auto after =
            parse(artifact({record("a", 1.0, 0.5, traffic)}));
        const BenchDiffResult result =
            diffRunRecords(before, after, BenchDiffOptions{});
        ASSERT_EQ(result.flagged.size(), 1u) << traffic;
        EXPECT_EQ(result.flagged[0].metric, "dram_per_1k_instr");
    }
}

TEST(BenchDiff, MissingTraceSourceDefaultsToGenerator)
{
    // Artifacts produced before the trace_source field existed must
    // keep matching their modern generator-driven counterparts.
    const auto old_style = parse(
        "[{\"workload\": \"a\", \"config\": \"baseline\", "
        "\"ipc\": 1.0}]");
    const auto new_style = parse(artifact({record("a", 1.2, 0.5, 0.0)}));
    EXPECT_EQ(old_style[0].key(), "a | baseline | generator");

    const BenchDiffResult result =
        diffRunRecords(old_style, new_style, BenchDiffOptions{});
    EXPECT_EQ(result.compared, 1u);
    ASSERT_EQ(result.flagged.size(), 1u);
    EXPECT_EQ(result.flagged[0].metric, "ipc");
}

TEST(BenchDiff, TraceSourceIsPartOfRunIdentity)
{
    // The same workload+config driven by a generator and by a trace
    // file are different runs; they must not be diffed against each
    // other.
    const auto gen = parse(artifact({record("a", 1.0, 0.5, 10.0)}));
    const auto traced = parse(artifact(
        {record("a", 2.0, 0.9, 20.0, "a.champsim (champsim)")}));
    const BenchDiffResult result =
        diffRunRecords(gen, traced, BenchDiffOptions{});
    EXPECT_EQ(result.compared, 0u);
    EXPECT_TRUE(result.clean());
    ASSERT_EQ(result.onlyOld.size(), 1u);
    ASSERT_EQ(result.onlyNew.size(), 1u);
}

TEST(BenchDiff, FlagsEngineThroughputDropsOneSided)
{
    auto rec = [](double mcps) {
        std::ostringstream os;
        os << "{\"workload\": \"a\", \"config\": \"baseline\", "
           << "\"trace_source\": \"generator\", \"ipc\": 1.0, "
           << "\"sim_mcycles_per_s\": " << mcps << "}";
        return os.str();
    };
    const auto before = parse(artifact({rec(10.0)}));
    const auto faster = parse(artifact({rec(30.0)}));
    const auto slower = parse(artifact({rec(4.0)}));
    const auto unmeasured = parse(artifact({rec(0.0)}));

    // Speedups and small movements are never flagged.
    EXPECT_TRUE(
        diffRunRecords(before, faster, BenchDiffOptions{}).clean());
    // A beyond-threshold drop is.
    const BenchDiffResult result =
        diffRunRecords(before, slower, BenchDiffOptions{});
    ASSERT_EQ(result.flagged.size(), 1u);
    EXPECT_EQ(result.flagged[0].metric, "sim_mcycles_per_s");
    // Unmeasured sides (0, or the field absent in old artifacts) and a
    // disabled threshold compare clean.
    EXPECT_TRUE(
        diffRunRecords(before, unmeasured, BenchDiffOptions{}).clean());
    EXPECT_TRUE(
        diffRunRecords(unmeasured, before, BenchDiffOptions{}).clean());
    EXPECT_TRUE(diffRunRecords(parse(artifact({record("a", 1.0, 0.5,
                                                      1.0)})),
                               slower, BenchDiffOptions{})
                    .clean());
    BenchDiffOptions off;
    off.throughputDropRelative = 0.0;
    EXPECT_TRUE(diffRunRecords(before, slower, off).clean());
}

TEST(BenchDiff, ReportsAddedAndRemovedRuns)
{
    const auto before = parse(
        artifact({record("a", 1.0, 0.5, 10.0), record("b", 1.0, 0.5, 1.0)}));
    const auto after = parse(
        artifact({record("b", 1.0, 0.5, 1.0), record("c", 1.0, 0.5, 2.0)}));
    const BenchDiffResult result =
        diffRunRecords(before, after, BenchDiffOptions{});
    EXPECT_EQ(result.compared, 1u);
    ASSERT_EQ(result.onlyOld.size(), 1u);
    EXPECT_EQ(result.onlyOld[0].substr(0, 1), "a");
    ASSERT_EQ(result.onlyNew.size(), 1u);
    EXPECT_EQ(result.onlyNew[0].substr(0, 1), "c");
}

// -- file parsing (array vs NDJSON, crash tolerance) --------------------------

class TempFile
{
  public:
    explicit TempFile(const std::string &tag, const std::string &text)
        : path_("/tmp/bop_bench_diff_test_" + tag)
    {
        std::ofstream out(path_);
        out << text;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(BenchDiffFile, ArrayArtifactParsesWithoutWarning)
{
    TempFile file("array.json",
                  artifact({record("a", 1.0, 0.5, 10.0),
                            record("b", 1.2, 0.4, 8.0)}));
    std::string warning;
    const auto records = parseRunRecordsFile(file.path(), &warning);
    EXPECT_EQ(records.size(), 2u);
    EXPECT_TRUE(warning.empty()) << warning;
}

TEST(BenchDiffFile, NdjsonStreamParsesLineByLine)
{
    TempFile file("ndjson.json", record("a", 1.0, 0.5, 10.0) + "\n" +
                                     "\n" + // blank lines are fine
                                     record("b", 1.2, 0.4, 8.0) + "\n");
    std::string warning;
    const auto records = parseRunRecordsFile(file.path(), &warning);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].key().substr(0, 1), "a");
    EXPECT_TRUE(warning.empty()) << warning;
}

TEST(BenchDiffFile, TruncatedTrailingNdjsonLineToleratedWithWarning)
{
    // A producer killed mid-write leaves a half-record on the last
    // line; the survivors must stay comparable, and the warning names
    // the dropped line.
    TempFile file("truncated.ndjson",
                  record("a", 1.0, 0.5, 10.0) + "\n" +
                      record("b", 1.2, 0.4, 8.0) + "\n" +
                      "{\"workload\": \"c\", \"ipc\": 0.9");
    std::string warning;
    const auto records = parseRunRecordsFile(file.path(), &warning);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_NE(warning.find("line 3"), std::string::npos) << warning;
    EXPECT_NE(warning.find("truncated trailing record ignored"),
              std::string::npos)
        << warning;
}

TEST(BenchDiffFile, MidStreamCorruptionRejectedWithLineNumber)
{
    // Corruption anywhere BEFORE the last line is not a crash
    // signature — it fails the comparison, naming the line.
    TempFile file("corrupt.ndjson", record("a", 1.0, 0.5, 10.0) + "\n" +
                                        "{\"workload\": \"b\"\n" +
                                        record("c", 1.2, 0.4, 8.0) +
                                        "\n");
    try {
        parseRunRecordsFile(file.path());
        FAIL() << "mid-stream corruption parsed cleanly";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(BenchDiffFile, MissingFileRejected)
{
    EXPECT_THROW(
        parseRunRecordsFile("/tmp/bop_bench_diff_test_nonexistent"),
        std::runtime_error);
}

} // namespace
} // namespace bop
