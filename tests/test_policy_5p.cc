/**
 * @file
 * Tests for the paper's 5P L3 replacement policy (Sec. 5.2).
 */

#include <gtest/gtest.h>

#include "cache/policy_5p.hh"

namespace bop
{
namespace
{

TEST(Policy5P, OneLeaderPerPolicyPerConstituency)
{
    Policy5P p;
    p.reset(1024, 16);
    int counts[numInsertionPolicies] = {};
    int followers = 0;
    for (std::size_t set = 0; set < 128; ++set) {
        const int leader = p.leaderPolicyOf(set);
        if (leader >= 0)
            ++counts[leader];
        else
            ++followers;
    }
    for (int i = 0; i < numInsertionPolicies; ++i)
        EXPECT_EQ(counts[i], 1) << "policy " << i;
    EXPECT_EQ(followers, 128 - numInsertionPolicies);
}

TEST(Policy5P, LeaderPatternRepeatsAcrossConstituencies)
{
    Policy5P p;
    p.reset(8192, 16);
    for (std::size_t set = 0; set < 128; ++set) {
        EXPECT_EQ(p.leaderPolicyOf(set), p.leaderPolicyOf(set + 128));
        EXPECT_EQ(p.leaderPolicyOf(set), p.leaderPolicyOf(set + 4096));
    }
}

TEST(Policy5P, DemandMissInLeaderSetVotesAgainstIt)
{
    Policy5P p;
    p.reset(1024, 16);
    // Find the IP1 leader set and hammer it with demand fills.
    std::size_t ip1_set = 0;
    for (std::size_t set = 0; set < 128; ++set) {
        if (p.leaderPolicyOf(set) == 0)
            ip1_set = set;
    }
    const auto before = p.policyCounter(0);
    p.onFill(ip1_set, 0, FillInfo{0, true});
    EXPECT_EQ(p.policyCounter(0), before + 1);
    // Prefetch fills do not vote.
    p.onFill(ip1_set, 1, FillInfo{0, false});
    EXPECT_EQ(p.policyCounter(0), before + 1);
}

TEST(Policy5P, FollowerUsesLowestCounterPolicy)
{
    Policy5P p;
    p.reset(1024, 16);
    // Load counters: give IP1..IP4 some demand misses, leave IP5 at 0.
    std::size_t leaders[numInsertionPolicies] = {};
    for (std::size_t set = 0; set < 128; ++set) {
        const int l = p.leaderPolicyOf(set);
        if (l >= 0)
            leaders[l] = set;
    }
    for (int i = 0; i < 4; ++i)
        for (int n = 0; n < 10; ++n)
            p.onFill(leaders[i], 0, FillInfo{0, true});
    EXPECT_EQ(static_cast<int>(p.followerPolicy()), 4);
}

TEST(Policy5P, Ip3InsertsPrefetchesAtLru)
{
    Policy5P p;
    p.reset(1024, 16);
    std::size_t ip3_set = 0;
    for (std::size_t set = 0; set < 128; ++set) {
        if (p.leaderPolicyOf(set) == 2)
            ip3_set = set;
    }
    // Prefetch fill -> LRU position; demand fill -> MRU position.
    p.onFill(ip3_set, 5, FillInfo{0, false});
    EXPECT_EQ(p.positionOf(ip3_set, 5), 15u);
    p.onFill(ip3_set, 6, FillInfo{0, true});
    EXPECT_EQ(p.positionOf(ip3_set, 6), 0u);
}

TEST(Policy5P, CoreMissRateClassification)
{
    Policy5P p;
    p.reset(1024, 16);
    // Core 1 inserts a lot; core 0 a little: core 0 is low-miss-rate.
    for (int n = 0; n < 100; ++n)
        p.onFill(1, n % 16, FillInfo{1, true});
    for (int n = 0; n < 5; ++n)
        p.onFill(2, n % 16, FillInfo{0, true});
    EXPECT_TRUE(p.coreHasLowMissRate(0));
    EXPECT_FALSE(p.coreHasLowMissRate(1));
}

TEST(Policy5P, Ip4ProtectsLowMissRateCores)
{
    Policy5P p;
    p.reset(1024, 16);
    std::size_t ip4_set = 0;
    for (std::size_t set = 0; set < 128; ++set) {
        if (p.leaderPolicyOf(set) == 3)
            ip4_set = set;
    }
    // Make core 1 high-miss-rate.
    for (int n = 0; n < 200; ++n)
        p.onFill(1, n % 16, FillInfo{1, true});

    p.onFill(ip4_set, 2, FillInfo{0, true});  // low-miss core -> MRU
    EXPECT_EQ(p.positionOf(ip4_set, 2), 0u);
    p.onFill(ip4_set, 3, FillInfo{1, true});  // high-miss core -> LRU
    EXPECT_EQ(p.positionOf(ip4_set, 3), 15u);
}

TEST(Policy5P, HitAlwaysPromotesToMru)
{
    Policy5P p;
    p.reset(1024, 16);
    p.onFill(200, 7, FillInfo{0, false}); // follower set, maybe LRU
    p.onHit(200, 7);
    EXPECT_EQ(p.positionOf(200, 7), 0u);
}

} // namespace
} // namespace bop
