/**
 * @file
 * Checkpoint/restore differential battery.
 *
 * The checkpoint subsystem's contract is bit-identity: save at cycle
 * N, restore into a freshly constructed System, run to the end — the
 * RunStats, final cycle count and RNG draw order must equal an
 * uninterrupted run's exactly. The tests here are differential proofs
 * of that contract across the pinned golden topology grid (the 18
 * bench x cores x page combinations of tests/test_topology.cc), the
 * prefetcher zoo, fast-forward on/off, worker thread counts, and
 * save points taken mid-burst (non-quiescent uncore), plus the two
 * latent serialization hazards (BufferedRng refill-buffer position,
 * cached fast-forward horizons) pinned by focused regressions.
 *
 * The container-level rejection paths (truncation, corruption,
 * version skew) live in tests/test_checkpoint_format.cc.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/serializer.hh"
#include "harness/checkpoint.hh"
#include "harness/experiment.hh"
#include "sim/system.hh"

namespace bop
{
namespace
{

/** Small budgets: the whole battery must stay CI-sized. */
constexpr std::uint64_t kWarm = 2000;
constexpr std::uint64_t kMeasure = 6000;

struct RunOutcome
{
    RunStats stats;
    Cycle finalCycle = 0;
};

/** Uninterrupted reference run. */
RunOutcome
coldRun(const std::string &bench, const SystemConfig &cfg,
        std::uint64_t warmup = kWarm, std::uint64_t measure = kMeasure)
{
    System sys(cfg, makeTraces(bench, cfg));
    RunOutcome out;
    out.stats = sys.run(warmup, measure);
    out.finalCycle = sys.currentCycle();
    return out;
}

/**
 * Warm one System, checkpoint it, restore into a second freshly
 * constructed System (possibly under a different host-side speed
 * configuration @p restore_cfg), and measure there.
 */
RunOutcome
checkpointedRun(const std::string &bench, const SystemConfig &save_cfg,
                const SystemConfig &restore_cfg,
                std::uint64_t warmup = kWarm,
                std::uint64_t measure = kMeasure)
{
    System saver(save_cfg, makeTraces(bench, save_cfg));
    saver.warmup(warmup);
    const std::vector<std::uint8_t> bytes = saver.saveCheckpointBytes();

    System restored(restore_cfg, makeTraces(bench, restore_cfg));
    restored.restoreCheckpointBytes(bytes);
    RunOutcome out;
    out.stats = restored.measure(measure);
    out.finalCycle = restored.currentCycle();
    return out;
}

void
expectOutcomesEqual(const RunOutcome &a, const RunOutcome &b,
                    const std::string &label)
{
    EXPECT_TRUE(a.stats == b.stats) << label;
    EXPECT_EQ(a.finalCycle, b.finalCycle) << label;
    // Spot-check fields a broken operator== could vacuously pass on.
    EXPECT_EQ(a.stats.cycles, b.stats.cycles) << label;
    EXPECT_EQ(a.stats.instructions, b.stats.instructions) << label;
    EXPECT_EQ(a.stats.dramReads, b.stats.dramReads) << label;
    EXPECT_EQ(a.stats.l2PrefIssued, b.stats.l2PrefIssued) << label;
}

// ---------------------------------------------------------------------------
// Golden topology grid x fast-forward on/off
// ---------------------------------------------------------------------------

TEST(CheckpointEquivalence, GoldenTopologiesBitIdentical)
{
    // The bench x cores x page grid pinned in tests/test_topology.cc,
    // each under fast-forward on AND off: save at the warmup/measure
    // boundary, restore into a fresh System, measure — bit-identical
    // to the uninterrupted run in stats and final cycle.
    const char *benches[] = {"462.libquantum", "429.mcf", "470.lbm"};
    for (const char *bench : benches) {
        for (const int cores : {1, 2, 4}) {
            for (const PageSize page :
                 {PageSize::FourKB, PageSize::FourMB}) {
                for (const bool ff : {true, false}) {
                    SystemConfig cfg = baselineConfig(cores, page);
                    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
                    cfg.fastForward = ff;
                    const std::string label =
                        std::string(bench) + " " +
                        gridLabel(cores, page) +
                        (ff ? " ff" : " no-ff");
                    expectOutcomesEqual(
                        coldRun(bench, cfg),
                        checkpointedRun(bench, cfg, cfg), label);
                }
            }
        }
    }
}

TEST(CheckpointEquivalence, RestoreAcrossFastForwardToggle)
{
    // numThreads and fastForward are host-side speed knobs excluded
    // from the topology fingerprint: a checkpoint saved under one
    // fast-forward setting restores under the other, bit-identically.
    SystemConfig on = baselineConfig(2, PageSize::FourKB);
    on.l2Prefetcher = L2PrefetcherKind::BestOffset;
    on.fastForward = true;
    SystemConfig off = on;
    off.fastForward = false;

    const RunOutcome cold = coldRun("429.mcf", on);
    expectOutcomesEqual(cold, checkpointedRun("429.mcf", on, off),
                        "saved ff-on, restored ff-off");
    expectOutcomesEqual(cold, checkpointedRun("429.mcf", off, on),
                        "saved ff-off, restored ff-on");
}

TEST(CheckpointEquivalence, RestoreAcrossThreadCounts)
{
    SystemConfig cfg = baselineConfig(4, PageSize::FourKB);
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    const RunOutcome cold = coldRun("462.libquantum", cfg);

    for (const int save_threads : {1, 4}) {
        for (const int restore_threads : {1, 2, 4}) {
            SystemConfig save_cfg = cfg;
            save_cfg.numThreads = save_threads;
            SystemConfig restore_cfg = cfg;
            restore_cfg.numThreads = restore_threads;
            expectOutcomesEqual(
                cold,
                checkpointedRun("462.libquantum", save_cfg,
                                restore_cfg),
                "saved threads=" + std::to_string(save_threads) +
                    ", restored threads=" +
                    std::to_string(restore_threads));
        }
    }
}

// ---------------------------------------------------------------------------
// Prefetcher zoo: every prefetcher's tables must round-trip
// ---------------------------------------------------------------------------

TEST(CheckpointEquivalence, PrefetcherZooBitIdentical)
{
    for (const auto kind :
         {L2PrefetcherKind::None, L2PrefetcherKind::NextLine,
          L2PrefetcherKind::FixedOffset, L2PrefetcherKind::BestOffset,
          L2PrefetcherKind::BestOffsetDpc2, L2PrefetcherKind::Sandbox,
          L2PrefetcherKind::Stream, L2PrefetcherKind::StreamBuffer,
          L2PrefetcherKind::Fdp, L2PrefetcherKind::Acdc}) {
        SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
        cfg.l2Prefetcher = kind;
        const std::string label =
            "prefetcher kind " + std::to_string(static_cast<int>(kind));
        expectOutcomesEqual(coldRun("429.mcf", cfg),
                            checkpointedRun("429.mcf", cfg, cfg), label);
    }
}

TEST(CheckpointEquivalence, L3PolicySweepBitIdentical)
{
    // DRRIP's PSEL/BRRIP rng and 5P's proportional counters are
    // policy-global state shared across the banked L3.
    for (const auto policy :
         {L3PolicyKind::P5, L3PolicyKind::Lru, L3PolicyKind::Drrip}) {
        SystemConfig cfg = baselineConfig(2, PageSize::FourKB);
        cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
        cfg.l3Policy = policy;
        const std::string label =
            "l3 policy " + std::to_string(static_cast<int>(policy));
        expectOutcomesEqual(coldRun("470.lbm", cfg),
                            checkpointedRun("470.lbm", cfg, cfg), label);
    }
}

// ---------------------------------------------------------------------------
// Mid-burst save points and round-trip byte identity
// ---------------------------------------------------------------------------

TEST(CheckpointEquivalence, MidBurstSaveIsNotQuiescent)
{
    // A save at a runUntilRetired() boundary lands mid-burst: the
    // pointer-chasing benchmark keeps MSHRs, fill queues and the DRAM
    // bus window occupied essentially always. Assert the save point
    // really is non-quiescent (so the battery genuinely covers
    // in-flight state), then prove restore equivalence from it — and
    // that the saver itself continues identically (saving perturbs
    // nothing).
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;

    System saver(cfg, makeTraces("429.mcf", cfg));
    saver.warmup(2500);
    ASSERT_FALSE(saver.hierarchy().quiescent())
        << "save point must land mid-burst for this test to bite";
    const std::vector<std::uint8_t> bytes = saver.saveCheckpointBytes();

    System restored(cfg, makeTraces("429.mcf", cfg));
    restored.restoreCheckpointBytes(bytes);

    const RunStats continued = saver.measure(kMeasure);
    const RunStats after_restore = restored.measure(kMeasure);
    EXPECT_TRUE(continued == after_restore);
    EXPECT_EQ(saver.currentCycle(), restored.currentCycle());

    const RunOutcome cold = coldRun("429.mcf", cfg, 2500, kMeasure);
    EXPECT_TRUE(cold.stats == after_restore);
    EXPECT_EQ(cold.finalCycle, restored.currentCycle());
}

TEST(CheckpointEquivalence, SaveRestoreSaveByteIdentical)
{
    // Round-trip determinism: the bytes saved by a restored System
    // must equal the bytes it was restored from — for every zoo
    // prefetcher (GHB's prediction set must serialise in a canonical
    // order for this to hold).
    for (const auto kind :
         {L2PrefetcherKind::BestOffset, L2PrefetcherKind::Acdc,
          L2PrefetcherKind::StreamBuffer, L2PrefetcherKind::Fdp,
          L2PrefetcherKind::Sandbox, L2PrefetcherKind::BestOffsetDpc2}) {
        SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
        cfg.l2Prefetcher = kind;

        System saver(cfg, makeTraces("429.mcf", cfg));
        saver.warmup(kWarm);
        const std::vector<std::uint8_t> first =
            saver.saveCheckpointBytes();

        System restored(cfg, makeTraces("429.mcf", cfg));
        restored.restoreCheckpointBytes(first);
        const std::vector<std::uint8_t> second =
            restored.saveCheckpointBytes();
        EXPECT_EQ(first, second)
            << "prefetcher kind " << static_cast<int>(kind);
    }
}

TEST(CheckpointEquivalence, FileRoundTrip)
{
    // The on-disk path (bopsim --save-checkpoint/--restore-checkpoint)
    // must behave exactly like the byte-buffer path.
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    const std::string path =
        testing::TempDir() + "bop_test_checkpoint.ckpt";

    System saver(cfg, makeTraces("470.lbm", cfg));
    saver.warmup(kWarm);
    saver.saveCheckpoint(path);

    System restored(cfg, makeTraces("470.lbm", cfg));
    restored.restoreCheckpoint(path);
    RunOutcome out;
    out.stats = restored.measure(kMeasure);
    out.finalCycle = restored.currentCycle();
    expectOutcomesEqual(coldRun("470.lbm", cfg), out, "file round-trip");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Topology refusal
// ---------------------------------------------------------------------------

TEST(CheckpointRefusal, IncompatibleTopologyRejected)
{
    SystemConfig one = baselineConfig(1, PageSize::FourKB);
    System saver(one, makeTraces("429.mcf", one));
    saver.warmup(500);
    const std::vector<std::uint8_t> bytes = saver.saveCheckpointBytes();

    // Different core count, different page size, different benchmark,
    // different seed: each changes the topology fingerprint and must
    // be refused at byte offset 12 (the fingerprint field) with the
    // target System untouched.
    SystemConfig two = baselineConfig(2, PageSize::FourKB);
    SystemConfig big_page = baselineConfig(1, PageSize::FourMB);
    SystemConfig reseeded = one;
    reseeded.seed = 7;

    struct Case
    {
        const char *label;
        const char *bench;
        SystemConfig cfg;
    };
    const Case cases[] = {
        {"core count", "429.mcf", two},
        {"page size", "429.mcf", big_page},
        {"benchmark", "470.lbm", one},
        {"seed", "429.mcf", reseeded},
    };
    for (const Case &c : cases) {
        System target(c.cfg, makeTraces(c.bench, c.cfg));
        try {
            target.restoreCheckpointBytes(bytes);
            FAIL() << c.label << ": incompatible restore succeeded";
        } catch (const CheckpointError &e) {
            EXPECT_EQ(e.byteOffset(), 12u) << c.label;
            EXPECT_NE(std::string(e.what()).find("fingerprint"),
                      std::string::npos)
                << c.label << ": " << e.what();
            EXPECT_NE(std::string(e.what()).find("byte offset 12"),
                      std::string::npos)
                << c.label << ": " << e.what();
        }
        // The refused System is untouched and still runs.
        EXPECT_EQ(target.currentCycle(), 0u) << c.label;
        const RunStats s = target.run(500, 1000);
        EXPECT_GE(s.instructions, 1000u) << c.label;
    }
}

// ---------------------------------------------------------------------------
// Latent-hazard regressions
// ---------------------------------------------------------------------------

TEST(CheckpointHazards, BufferedRngSavedMidRefillBuffer)
{
    // BufferedRng batches 16 draws per refill; a checkpoint landing
    // mid-buffer must capture the undrawn values and the consumption
    // position, or restore would skip part of the stream (the draw
    // order every golden stat pins).
    BufferedRng original(1234);
    for (int i = 0; i < 5; ++i)
        original.next(); // park pos mid-buffer

    std::vector<std::uint8_t> bytes;
    {
        Serializer s(bytes);
        original.serialize(s);
    }

    BufferedRng restored(999); // deliberately different seed
    {
        Serializer s(bytes.data(), bytes.size(), 0);
        restored.serialize(s);
        s.finish("BufferedRng");
    }
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(restored.next(), original.next()) << "draw " << i;

    // An out-of-range position must be rejected, not replayed.
    ASSERT_GE(bytes.size(), 4u);
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[corrupt.size() - 4] = 0xff; // pos is the last u32 field
    BufferedRng victim(1);
    Serializer s(corrupt.data(), corrupt.size(), 0);
    EXPECT_THROW(victim.serialize(s), CheckpointError);
}

TEST(CheckpointHazards, CachedHorizonsRebuiltAfterRestore)
{
    // Run the saver under fast-forward until its horizon caches are
    // warm, checkpoint, restore, then single-step both systems in
    // lockstep: every jump target must match. A restored System whose
    // horizon caches were not invalidated/rebuilt would jump to stale
    // cycles here.
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    ASSERT_TRUE(cfg.fastForward);

    System saver(cfg, makeTraces("429.mcf", cfg));
    saver.warmup(1500); // horizon caches now hold live entries
    const std::vector<std::uint8_t> bytes = saver.saveCheckpointBytes();

    System restored(cfg, makeTraces("429.mcf", cfg));
    restored.restoreCheckpointBytes(bytes);
    ASSERT_EQ(restored.currentCycle(), saver.currentCycle());

    for (int i = 0; i < 2000; ++i) {
        saver.step();
        restored.step();
        ASSERT_EQ(restored.currentCycle(), saver.currentCycle())
            << "fast-forward jump diverged at step " << i;
        ASSERT_EQ(restored.core(0).retired(), saver.core(0).retired())
            << "retire stream diverged at step " << i;
    }
}

// ---------------------------------------------------------------------------
// Fingerprint sanity
// ---------------------------------------------------------------------------

TEST(CheckpointFingerprint, SpeedKnobsExcludedTopologyIncluded)
{
    SystemConfig cfg = baselineConfig(2, PageSize::FourKB);
    System base(cfg, makeTraces("429.mcf", cfg));
    const std::uint64_t fp = checkpointFingerprint(base);

    SystemConfig threads_cfg = cfg;
    threads_cfg.numThreads = 4;
    SystemConfig ff_cfg = cfg;
    ff_cfg.fastForward = false;
    System threads_sys(threads_cfg, makeTraces("429.mcf", threads_cfg));
    System ff_sys(ff_cfg, makeTraces("429.mcf", ff_cfg));
    EXPECT_EQ(checkpointFingerprint(threads_sys), fp)
        << "numThreads is a host-side knob";
    EXPECT_EQ(checkpointFingerprint(ff_sys), fp)
        << "fastForward is a host-side knob";

    SystemConfig other = cfg;
    other.l2Prefetcher = L2PrefetcherKind::Acdc;
    System other_sys(other, makeTraces("429.mcf", other));
    EXPECT_NE(checkpointFingerprint(other_sys), fp)
        << "the prefetcher is simulated state";

    System other_bench(cfg, makeTraces("470.lbm", cfg));
    EXPECT_NE(checkpointFingerprint(other_bench), fp)
        << "the trace set is simulated state";
}

} // namespace
} // namespace bop
