/**
 * @file
 * Tests for the fixed-offset / next-line L2 prefetchers.
 */

#include <gtest/gtest.h>

#include "prefetch/fixed_offset.hh"

namespace bop
{
namespace
{

TEST(FixedOffset, PrefetchesXPlusD)
{
    FixedOffsetPrefetcher pf(PageSize::FourMB, 5);
    std::vector<LineAddr> out;
    pf.onAccess({1000, true, false, 0}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 1005u);
    EXPECT_EQ(pf.currentOffset(), 5);
}

TEST(FixedOffset, TriggersOnPrefetchedHitsToo)
{
    FixedOffsetPrefetcher pf(PageSize::FourMB, 2);
    std::vector<LineAddr> out;
    pf.onAccess({1000, false, true, 0}, out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(FixedOffset, IgnoresPlainHits)
{
    FixedOffsetPrefetcher pf(PageSize::FourMB, 2);
    std::vector<LineAddr> out;
    pf.onAccess({1000, false, false, 0}, out);
    EXPECT_TRUE(out.empty());
}

TEST(FixedOffset, SamePageConstraint4KB)
{
    // 4KB page = 64 lines. Line 60 with D=8 would cross: no prefetch.
    FixedOffsetPrefetcher pf(PageSize::FourKB, 8);
    std::vector<LineAddr> out;
    pf.onAccess({60, true, false, 0}, out);
    EXPECT_TRUE(out.empty());
    pf.onAccess({48, true, false, 0}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 56u);
}

TEST(FixedOffset, SamePageConstraint4MB)
{
    // 4MB page = 65536 lines: offset 8 fits almost everywhere.
    FixedOffsetPrefetcher pf(PageSize::FourMB, 8);
    std::vector<LineAddr> out;
    pf.onAccess({60, true, false, 0}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 68u);
}

TEST(NextLine, IsOffsetOne)
{
    NextLinePrefetcher pf(PageSize::FourKB);
    EXPECT_EQ(pf.currentOffset(), 1);
    EXPECT_EQ(pf.name(), "next-line");
    std::vector<LineAddr> out;
    pf.onAccess({10, true, false, 0}, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 11u);
}

TEST(NullPrefetcher, NeverPrefetches)
{
    NullPrefetcher pf(PageSize::FourKB);
    std::vector<LineAddr> out;
    pf.onAccess({10, true, false, 0}, out);
    pf.onAccess({11, false, true, 0}, out);
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(pf.prefetchEnabled());
}

class FixedOffsetSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FixedOffsetSweep, OffsetsStayInPage)
{
    const int d = GetParam();
    FixedOffsetPrefetcher pf(PageSize::FourKB, d);
    std::vector<LineAddr> out;
    for (LineAddr x = 0; x < 64; ++x)
        pf.onAccess({x, true, false, 0}, out);
    for (const LineAddr t : out) {
        EXPECT_LT(t, 64u) << "target escaped the first 4KB page";
    }
    // Exactly 64-d in-page triggers produce prefetches.
    EXPECT_EQ(out.size(), static_cast<std::size_t>(64 - d));
}

INSTANTIATE_TEST_SUITE_P(PageSweep, FixedOffsetSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 63));

} // namespace
} // namespace bop
