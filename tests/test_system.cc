/**
 * @file
 * System-level tests: determinism, stat-window deltas, config plumbing.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "sim/system.hh"
#include "trace/workloads.hh"

namespace bop
{
namespace
{

RunStats
runBench(const std::string &bench, SystemConfig cfg,
         std::uint64_t warm = 3000, std::uint64_t measure = 15000)
{
    System sys(cfg, makeTraces(bench, cfg));
    return sys.run(warm, measure);
}

TEST(System, DeterministicAcrossRuns)
{
    const SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    const RunStats a = runBench("456.hmmer", cfg);
    const RunStats b = runBench("456.hmmer", cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dl1Misses, b.dl1Misses);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.l2PrefIssued, b.l2PrefIssued);
}

TEST(System, MeasuredWindowHitsInstructionTarget)
{
    const SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    const RunStats s = runBench("401.bzip2", cfg, 1000, 7777);
    // The final cycle may retire up to retireWidth instructions, so
    // the window can overshoot slightly but never undershoot.
    EXPECT_GE(s.instructions, 7777u);
    EXPECT_LT(s.instructions, 7777u + cfg.core.retireWidth);
}

TEST(System, StatsAreWindowDeltas)
{
    // A short window's counts must be (much) smaller than a long one.
    const SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    const RunStats small = runBench("437.leslie3d", cfg, 5000, 5000);
    const RunStats big = runBench("437.leslie3d", cfg, 5000, 30000);
    EXPECT_LT(small.dl1Accesses, big.dl1Accesses);
    EXPECT_LT(small.cycles, big.cycles);
}

TEST(System, RejectsTraceCountMismatch)
{
    SystemConfig cfg = baselineConfig(2, PageSize::FourKB);
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.push_back(makeWorkload("429.mcf", 1));
    EXPECT_THROW(System(cfg, std::move(traces)), std::invalid_argument);
}

TEST(System, DeltaStatsSubtractsCounters)
{
    RunStats end, begin;
    end.dl1Accesses = 100;
    begin.dl1Accesses = 40;
    end.dramReads = 10;
    begin.dramReads = 4;
    end.boFinalOffset = 12;
    const RunStats d = deltaStats(end, begin);
    EXPECT_EQ(d.dl1Accesses, 60u);
    EXPECT_EQ(d.dramReads, 6u);
    EXPECT_EQ(d.boFinalOffset, 12) << "end-state fields copied";
}

TEST(System, BranchStatsPopulated)
{
    const SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    const RunStats s = runBench("445.gobmk", cfg);
    EXPECT_GT(s.branches, 1000u);
    EXPECT_GT(s.branchMispredicts, 0u);
    EXPECT_LT(s.branchMispredicts, s.branches);
}

TEST(System, ConfigDescribeMentionsKeyFields)
{
    SystemConfig cfg = baselineConfig(2, PageSize::FourMB);
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    const std::string d = cfg.describe();
    EXPECT_NE(d.find("2-core"), std::string::npos);
    EXPECT_NE(d.find("4MB"), std::string::npos);
    EXPECT_NE(d.find("best-offset"), std::string::npos);
    EXPECT_NE(d.find("5P"), std::string::npos);
}

TEST(System, AllPrefetcherKindsRun)
{
    for (const auto kind :
         {L2PrefetcherKind::None, L2PrefetcherKind::NextLine,
          L2PrefetcherKind::FixedOffset, L2PrefetcherKind::BestOffset,
          L2PrefetcherKind::Sandbox, L2PrefetcherKind::Stream,
          L2PrefetcherKind::Fdp, L2PrefetcherKind::Acdc,
          L2PrefetcherKind::StreamBuffer,
          L2PrefetcherKind::BestOffsetDpc2}) {
        SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
        cfg.l2Prefetcher = kind;
        cfg.fixedOffset = 5;
        const RunStats s = runBench("482.sphinx3", cfg, 1000, 5000);
        EXPECT_GE(s.instructions, 5000u) << cfg.describe();
    }
}

TEST(System, AllL3PoliciesRun)
{
    for (const auto policy : {L3PolicyKind::P5, L3PolicyKind::Lru,
                              L3PolicyKind::Drrip}) {
        SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
        cfg.l3Policy = policy;
        const RunStats s = runBench("403.gcc", cfg, 1000, 5000);
        EXPECT_GE(s.instructions, 5000u);
    }
}

TEST(System, FourCoreConfigRuns)
{
    const SystemConfig cfg = baselineConfig(4, PageSize::FourMB);
    const RunStats s = runBench("462.libquantum", cfg, 2000, 8000);
    EXPECT_GE(s.instructions, 8000u);
    EXPECT_GT(s.dramReads + s.dramWrites, 100u)
        << "thrashers must generate DRAM traffic";
}

} // namespace
} // namespace bop
