/**
 * @file
 * Tests for the compact TAGE branch predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/branch_pred.hh"

namespace bop
{
namespace
{

double
mispredictRate(TagePredictor &bp, Addr pc, const std::vector<bool> &outs,
               int reps)
{
    std::uint64_t miss = 0, total = 0;
    for (int r = 0; r < reps; ++r) {
        for (const bool taken : outs) {
            const bool pred = bp.predict(pc);
            bp.update(pc, taken);
            miss += pred != taken;
            ++total;
        }
    }
    return static_cast<double>(miss) / static_cast<double>(total);
}

TEST(Tage, AlwaysTakenIsLearned)
{
    TagePredictor bp;
    const double rate = mispredictRate(bp, 0x1000, {true}, 500);
    EXPECT_LT(rate, 0.02);
}

TEST(Tage, ShortLoopPatternLearned)
{
    // Pattern TTTN (loop of 4): within the 4..32-bit histories.
    TagePredictor bp;
    mispredictRate(bp, 0x2000, {true, true, true, false}, 200); // warm
    const double rate =
        mispredictRate(bp, 0x2000, {true, true, true, false}, 200);
    EXPECT_LT(rate, 0.05);
}

TEST(Tage, LongishPeriodicPatternLearned)
{
    // Period-16 pattern: needs the 16/32-bit history tables.
    std::vector<bool> pattern(16, true);
    pattern[15] = false;
    TagePredictor bp;
    mispredictRate(bp, 0x3000, pattern, 300);
    const double rate = mispredictRate(bp, 0x3000, pattern, 300);
    EXPECT_LT(rate, 0.08);
}

TEST(Tage, RandomBranchesMispredictNearBias)
{
    TagePredictor bp;
    Rng rng(123);
    std::uint64_t miss = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const bool taken = rng.chance(0.7);
        const bool pred = bp.predict(0x4000);
        bp.update(0x4000, taken);
        miss += pred != taken;
    }
    const double rate = static_cast<double>(miss) / n;
    // Ideal is min(p,1-p)=0.30; allow learning slack.
    EXPECT_GT(rate, 0.20);
    EXPECT_LT(rate, 0.45);
}

TEST(Tage, DistinctBranchesDoNotDestroyEachOther)
{
    TagePredictor bp;
    // Interleave an always-taken and an always-not-taken branch.
    std::uint64_t miss = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        const Addr pc = (i % 2 == 0) ? 0x5000 : 0x6000;
        const bool taken = pc == 0x5000;
        const bool pred = bp.predict(pc);
        bp.update(pc, taken);
        if (i > 200)
            miss += pred != taken;
    }
    EXPECT_LT(static_cast<double>(miss) / (n - 200), 0.02);
}

TEST(Tage, CountersExposed)
{
    TagePredictor bp;
    bp.predict(0x7000);
    bp.update(0x7000, true);
    EXPECT_EQ(bp.predictions(), 1u);
    EXPECT_LE(bp.mispredictions(), 1u);
}

} // namespace
} // namespace bop
