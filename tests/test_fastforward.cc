/**
 * @file
 * Event-horizon fast-forward tests.
 *
 * The fast-forward is gated hard on cycle-exactness, so the tests here
 * are equivalence proofs, not behavior checks:
 *
 *  - golden equivalence: every pinned topology config (the 18
 *    bench x cores x page combinations of tests/test_topology.cc) and
 *    a prefetcher sweep produce bit-identical RunStats and final cycle
 *    counts with fast-forward on and off;
 *  - horizon soundness: single-stepping a reference (fast-forward off)
 *    system, the published nextEventCycle() must never claim a jump
 *    across a cycle in which observable state then changes;
 *  - per-component contracts: MemoryController::nextEventAt against
 *    brute-force single-stepping, and the min-readyAt gates of
 *    FillQueue / PrefetchQueue that feed the hierarchy horizon.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/fill_queue.hh"
#include "cache/prefetch_queue.hh"
#include "dram/mem_controller.hh"
#include "harness/experiment.hh"
#include "sim/system.hh"
#include "trace/generators.hh"
#include "trace/workloads.hh"

namespace bop
{
namespace
{

// ---------------------------------------------------------------------------
// Golden equivalence: fast-forward on vs off
// ---------------------------------------------------------------------------

struct RunOutcome
{
    RunStats stats;
    Cycle finalCycle = 0;
};

RunOutcome
runBench(const std::string &bench, SystemConfig cfg, bool fast_forward,
         std::uint64_t warmup, std::uint64_t measure)
{
    cfg.fastForward = fast_forward;
    System sys(cfg, makeTraces(bench, cfg));
    RunOutcome out;
    out.stats = sys.run(warmup, measure);
    out.finalCycle = sys.currentCycle();
    return out;
}

void
expectEquivalent(const std::string &bench, const SystemConfig &cfg,
                 std::uint64_t warmup, std::uint64_t measure,
                 const std::string &label)
{
    const RunOutcome on = runBench(bench, cfg, true, warmup, measure);
    const RunOutcome off = runBench(bench, cfg, false, warmup, measure);
    EXPECT_TRUE(on.stats == off.stats) << label;
    EXPECT_EQ(on.finalCycle, off.finalCycle) << label;
    // Spot-check a couple of fields so a broken operator== cannot
    // silently vacuously pass.
    EXPECT_EQ(on.stats.cycles, off.stats.cycles) << label;
    EXPECT_EQ(on.stats.dramReads, off.stats.dramReads) << label;
}

TEST(FastForwardEquivalence, PinnedTopologyConfigsBitIdentical)
{
    // The bench x cores x page grid pinned in tests/test_topology.cc
    // (which separately asserts the fast-forward-on cycle counts
    // against the pre-refactor goldens).
    const char *benches[] = {"462.libquantum", "429.mcf", "470.lbm"};
    for (const char *bench : benches) {
        for (const int cores : {1, 2, 4}) {
            for (const PageSize page :
                 {PageSize::FourKB, PageSize::FourMB}) {
                SystemConfig cfg = baselineConfig(cores, page);
                cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
                expectEquivalent(
                    bench, cfg, 5000, 20000,
                    std::string(bench) + " " + gridLabel(cores, page));
            }
        }
    }
}

TEST(FastForwardEquivalence, PrefetcherSweepBitIdentical)
{
    // Every prefetcher exercises a different idle/busy pattern (and
    // bo-dpc2 a delay queue); each must be jump-exact.
    for (const auto kind :
         {L2PrefetcherKind::None, L2PrefetcherKind::NextLine,
          L2PrefetcherKind::Sandbox, L2PrefetcherKind::Fdp,
          L2PrefetcherKind::StreamBuffer,
          L2PrefetcherKind::BestOffsetDpc2}) {
        SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
        cfg.l2Prefetcher = kind;
        expectEquivalent("429.mcf", cfg, 3000, 12000,
                         "prefetcher kind " +
                             std::to_string(static_cast<int>(kind)));
    }
}

TEST(FastForwardEquivalence, EnvOverrideDisables)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    ASSERT_TRUE(cfg.fastForward) << "fast-forward defaults on";
    ::setenv("BOP_DISABLE_FASTFORWARD", "1", 1);
    System forced(cfg, makeTraces("470.lbm", cfg));
    EXPECT_FALSE(forced.fastForwardEnabled());
    ::setenv("BOP_DISABLE_FASTFORWARD", "0", 1);
    System zero(cfg, makeTraces("470.lbm", cfg));
    EXPECT_TRUE(zero.fastForwardEnabled()) << "\"0\" means not disabled";
    ::unsetenv("BOP_DISABLE_FASTFORWARD");
    cfg.fastForward = false;
    System off(cfg, makeTraces("470.lbm", cfg));
    EXPECT_FALSE(off.fastForwardEnabled()) << "config switch";
}

// ---------------------------------------------------------------------------
// Horizon soundness against brute-force single-stepping
// ---------------------------------------------------------------------------

/** Everything the stats surface can see about a system. */
std::vector<std::uint64_t>
observableState(System &sys)
{
    const RunStats s = sys.hierarchy().collectStats();
    std::vector<std::uint64_t> v = {
        s.dl1Accesses, s.dl1Misses,  s.dl1PrefIssued, s.l2Accesses,
        s.l2Misses,    s.l2PrefIssued, s.l2PrefFills, s.l2PrefDropped,
        s.l2LatePromotions, s.l3Accesses, s.l3Misses, s.dramReads,
        s.dramWrites,  s.dtlb1Misses};
    for (int c = 0; c < sys.coreCount(); ++c) {
        v.push_back(sys.core(c).retired());
        v.push_back(sys.core(c).robOccupancy());
        v.push_back(sys.core(c).branchCount());
    }
    return v;
}

void
expectHorizonSound(SystemConfig cfg, const std::string &bench,
                   std::uint64_t instrs)
{
    cfg.fastForward = false; // brute-force reference stepping
    System sys(cfg, makeTraces(bench, cfg));
    while (sys.core(0).retired() < instrs) {
        const Cycle now = sys.currentCycle();
        const Cycle horizon = sys.nextEventCycle();
        ASSERT_GT(horizon, now);
        const auto before = observableState(sys);
        sys.step();
        if (horizon > now + 1) {
            ASSERT_EQ(before, observableState(sys))
                << "horizon computed at cycle " << now << " claimed the "
                << "next event at " << horizon << ", but the tick at "
                << sys.currentCycle() << " changed observable state";
        }
    }
}

TEST(FastForwardSoundness, SingleCorePointerChase)
{
    SystemConfig cfg = baselineConfig(1, PageSize::FourKB);
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    expectHorizonSound(cfg, "429.mcf", 12000);
}

TEST(FastForwardSoundness, FourCoreContention)
{
    SystemConfig cfg = baselineConfig(4, PageSize::FourKB);
    cfg.l2Prefetcher = L2PrefetcherKind::BestOffset;
    expectHorizonSound(cfg, "462.libquantum", 8000);
}

// ---------------------------------------------------------------------------
// MemoryController::nextEventAt against brute-force ticking
// ---------------------------------------------------------------------------

ReqMeta
readMeta(CoreId core)
{
    ReqMeta meta;
    meta.core = core;
    meta.type = ReqType::DemandRead;
    meta.l3FillId = 1; // drainDramCompletions asserts a live id
    return meta;
}

TEST(MemControllerHorizon, IdleControllerHasNoEvents)
{
    MemoryController mc(DramTiming{}, 0, 1);
    EXPECT_EQ(mc.nextEventAt(0), neverCycle);
    EXPECT_EQ(mc.nextEventAt(12345), neverCycle);
    EXPECT_EQ(mc.nextCompletionAt(), neverCycle);
}

TEST(MemControllerHorizon, PendingReadWakesAtBusEdges)
{
    const DramTiming timing;
    MemoryController mc(timing, 0, 1);
    mc.enqueueRead(0x1000, readMeta(0), 5);

    const Cycle h = mc.nextEventAt(5);
    ASSERT_NE(h, neverCycle);
    EXPECT_GT(h, 5u);
    EXPECT_EQ(h % timing.busRatio, 0u) << "scheduling is edge-aligned";

    // Ticks strictly before the horizon must not issue anything.
    for (Cycle t = 6; t < h; ++t) {
        mc.tick(t);
        EXPECT_EQ(mc.stats().reads, 0u) << "tick at " << t;
    }
    mc.tick(h);
    EXPECT_EQ(mc.stats().reads, 1u) << "the horizon tick issues";
    // The finished read is now waiting for its data burst to end.
    EXPECT_TRUE(mc.hasCompletedReads());
    EXPECT_EQ(mc.nextEventAt(h), mc.nextCompletionAt());
    EXPECT_TRUE(mc.popCompleted(mc.nextCompletionAt() - 1).empty());
    EXPECT_EQ(mc.popCompleted(mc.nextCompletionAt()).size(), 1u);
    EXPECT_EQ(mc.nextCompletionAt(), neverCycle);
}

TEST(MemControllerHorizon, HorizonTickingMatchesBruteForce)
{
    // Drive two identical controllers with the same request stream:
    // one ticked every cycle, one only at its advertised horizons.
    // Completions (line, finishCycle) and stats must match exactly.
    const DramTiming timing;
    MemoryController brute(timing, 0, 2);
    MemoryController jump(timing, 0, 2);

    std::vector<std::pair<LineAddr, Cycle>> bruteDone, jumpDone;
    Cycle jumpNext = 1;
    std::uint64_t rng = 0x2545f4914f6cdd1dull;
    auto rand = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };

    for (Cycle t = 1; t <= 4000; ++t) {
        // Sparse, bursty arrivals across banks/rows and both cores.
        if (rand() % 17 == 0) {
            const LineAddr line = (rand() % 64) << 7;
            const CoreId core = static_cast<CoreId>(rand() % 2);
            if (!brute.readQueueFull(core)) {
                brute.enqueueRead(line, readMeta(core), t);
                jump.enqueueRead(line, readMeta(core), t);
            }
        }
        if (rand() % 97 == 0) {
            const LineAddr line = (rand() % 64) << 7;
            if (!brute.writeQueueFull(0)) {
                brute.enqueueWrite(line, 0, t);
                jump.enqueueWrite(line, 0, t);
            }
        }

        brute.tick(t);
        for (const CompletedRead &r : brute.popCompleted(t))
            bruteDone.push_back({r.line, r.finishCycle});

        // Enqueues change the horizon; conservatively re-ask when due.
        if (t >= jumpNext || jump.nextEventAt(t - 1) <= t) {
            jump.tick(t);
            for (const CompletedRead &r : jump.popCompleted(t))
                jumpDone.push_back({r.line, r.finishCycle});
            jumpNext = jump.nextEventAt(t);
        }
    }

    EXPECT_EQ(bruteDone, jumpDone);
    EXPECT_EQ(brute.stats().reads, jump.stats().reads);
    EXPECT_EQ(brute.stats().writes, jump.stats().writes);
    EXPECT_EQ(brute.stats().rowHits, jump.stats().rowHits);
    EXPECT_EQ(brute.stats().rowMisses, jump.stats().rowMisses);
    EXPECT_GT(brute.stats().reads, 0u) << "the stream must do work";
}

// ---------------------------------------------------------------------------
// Queue min-readyAt gates
// ---------------------------------------------------------------------------

TEST(FillQueueMinReady, TracksDataEntriesOnly)
{
    FillQueue fq("test", 8);
    EXPECT_EQ(fq.minReadyAt(), neverCycle);

    ReqMeta meta;
    const std::uint32_t waiting = fq.allocate(0x10, meta, false);
    EXPECT_EQ(fq.minReadyAt(), neverCycle)
        << "data-less entries have no self-scheduled event";

    const std::uint32_t late = fq.allocateWithData(0x20, meta, false, 90);
    EXPECT_EQ(fq.minReadyAt(), 90u);
    fq.allocateWithData(0x30, meta, false, 40);
    EXPECT_EQ(fq.minReadyAt(), 40u);

    fq.fillData(waiting, 25);
    EXPECT_EQ(fq.minReadyAt(), 25u);

    // Popping the minimum re-derives the next one.
    auto popped = fq.popReady(25);
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->line, 0x10u);
    EXPECT_EQ(fq.minReadyAt(), 40u);

    // Releasing the current minimum re-derives too.
    auto ready40 = fq.peekReady(40);
    ASSERT_NE(ready40, nullptr);
    fq.removeById(ready40->id);
    EXPECT_EQ(fq.minReadyAt(), 90u);

    fq.release(late);
    EXPECT_EQ(fq.minReadyAt(), neverCycle);
}

TEST(FillQueueMinReady, ReleasingTheMinimumMidQueueRecomputes)
{
    // Regression: release() must remove the dying entry from the FIFO
    // *before* re-deriving the minimum, or the stale value survives
    // forever (no later pop ever matches it) and pins the hierarchy
    // horizon at now + 1 for the rest of the run.
    FillQueue fq("test", 8);
    ReqMeta meta;
    const std::uint32_t early = fq.allocateWithData(0x10, meta, false, 10);
    fq.allocateWithData(0x20, meta, false, 50);
    ASSERT_EQ(fq.minReadyAt(), 10u);
    fq.release(early);
    EXPECT_EQ(fq.minReadyAt(), 50u);
    ASSERT_TRUE(fq.popReady(50).has_value());
    EXPECT_EQ(fq.minReadyAt(), neverCycle);
}

TEST(PrefetchQueueMinReady, MaintainedAcrossOverflowCancel)
{
    PrefetchQueue pq(2);
    EXPECT_EQ(pq.minReadyAt(), neverCycle);
    pq.insert({0x1, ReqMeta{}, 30});
    pq.insert({0x2, ReqMeta{}, 10});
    EXPECT_EQ(pq.minReadyAt(), 10u);
    // Overflow cancels the oldest (readyAt 30) and keeps the min.
    EXPECT_TRUE(pq.insert({0x3, ReqMeta{}, 20}));
    EXPECT_EQ(pq.minReadyAt(), 10u);
    pq.popFront(10);
    EXPECT_EQ(pq.minReadyAt(), 20u);
    pq.popFront(20);
    EXPECT_EQ(pq.minReadyAt(), neverCycle);
}

} // namespace
} // namespace bop
