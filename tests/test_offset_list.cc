/**
 * @file
 * Tests for the BO offset list (paper Sec. 4.2).
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/offset_list.hh"

namespace bop
{
namespace
{

TEST(OffsetList, MatchesPaperList)
{
    // The exact 52 offsets printed in Sec. 4.2 of the paper.
    const std::vector<int> paper = {
        1,   2,   3,   4,   5,   6,   8,   9,   10,  12,  15,  16,  18,
        20,  24,  25,  27,  30,  32,  36,  40,  45,  48,  50,  54,  60,
        64,  72,  75,  80,  81,  90,  96,  100, 108, 120, 125, 128, 135,
        144, 150, 160, 162, 180, 192, 200, 216, 225, 240, 243, 250, 256};
    EXPECT_EQ(makeOffsetList(), paper);
}

TEST(OffsetList, HasExactly52Entries)
{
    EXPECT_EQ(makeOffsetList().size(), 52u);
}

TEST(OffsetList, SortedAscendingAndUnique)
{
    const auto list = makeOffsetList();
    const std::set<int> unique(list.begin(), list.end());
    EXPECT_EQ(unique.size(), list.size());
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
}

TEST(OffsetList, AllEntriesAreSmooth)
{
    for (int d : makeOffsetList()) {
        EXPECT_TRUE(isSmooth(d, 5)) << d;
        int n = d;
        for (int p : {2, 3, 5})
            while (n % p == 0)
                n /= p;
        EXPECT_EQ(n, 1) << d;
    }
}

TEST(OffsetList, NoSevenSmoothIntruders)
{
    const auto list = makeOffsetList();
    const std::set<int> s(list.begin(), list.end());
    // 7, 14, 21, 49, 63... must be absent.
    for (int d : {7, 14, 21, 28, 49, 63, 77, 91, 119, 133})
        EXPECT_FALSE(s.count(d)) << d;
}

TEST(OffsetList, LcmClosureProperty)
{
    // Sec. 4.2: if two offsets are in the list, so is their LCM
    // (provided it is not too large). Verify for all pairs with
    // LCM <= 256.
    const auto list = makeOffsetList();
    const std::set<int> s(list.begin(), list.end());
    for (int a : list) {
        for (int b : list) {
            const int l = std::lcm(a, b);
            if (l <= 256) {
                EXPECT_TRUE(s.count(l)) << a << " " << b;
            }
        }
    }
}

TEST(OffsetList, SmallMaxOffset)
{
    const auto list = makeOffsetList(10);
    const std::vector<int> expected = {1, 2, 3, 4, 5, 6, 8, 9, 10};
    EXPECT_EQ(list, expected);
}

TEST(OffsetList, SignedListInterleavesNegatives)
{
    const auto list = makeSignedOffsetList(6);
    const std::vector<int> expected = {1, -1, 2, -2, 3, -3,
                                       4, -4, 5, -5, 6, -6};
    EXPECT_EQ(list, expected);
}

TEST(OffsetList, IsSmoothEdgeCases)
{
    EXPECT_TRUE(isSmooth(1, 5));
    EXPECT_FALSE(isSmooth(0, 5));
    EXPECT_FALSE(isSmooth(-4, 5));
    EXPECT_TRUE(isSmooth(243, 5)); // 3^5
    EXPECT_FALSE(isSmooth(7, 5));
    EXPECT_TRUE(isSmooth(7, 7));
}

} // namespace
} // namespace bop
