/**
 * @file
 * Randomized equivalence tests for the flat-state replacement engine.
 *
 * The packed one-word-per-set recency stacks / RRPV arrays (and the
 * wide fallbacks for >16-way geometries) must behave exactly like the
 * naive data structures they replaced: per-set vector recency stacks
 * and nested RRPV vectors. Each test drives the real policy and a
 * reference model (a transliteration of the pre-flat implementation)
 * through identical randomized fill/hit/victim sequences — with
 * identically seeded RNGs where the policy is stochastic — and asserts
 * identical victims, peeks and recency positions throughout.
 *
 * A second group does the same at the tag-array level: the
 * structure-of-arrays SetAssocCache against a naive array-of-structs
 * model, over random access/insert/invalidate sequences.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "cache/drrip.hh"
#include "cache/policy_5p.hh"
#include "cache/replacement.hh"
#include "common/prop_counter.hh"
#include "common/rng.hh"

namespace bop
{
namespace
{

// ---------------------------------------------------------------------------
// Reference models: the pre-flat (naive) implementations.
// ---------------------------------------------------------------------------

/** Naive per-set recency stacks (vector-of-vectors, find/erase/insert). */
class RefStack
{
  public:
    void
    reset(std::size_t sets, unsigned ways)
    {
        numWays = ways;
        stacks.assign(sets, {});
        for (auto &stack : stacks) {
            stack.resize(ways);
            for (unsigned w = 0; w < ways; ++w)
                stack[w] = static_cast<std::uint8_t>(w);
        }
    }

    unsigned victim(std::size_t set) const { return stacks[set].back(); }

    unsigned
    positionOf(std::size_t set, unsigned way) const
    {
        const auto &stack = stacks[set];
        for (unsigned p = 0; p < stack.size(); ++p) {
            if (stack[p] == way)
                return p;
        }
        ADD_FAILURE() << "way " << way << " missing from reference stack";
        return 0;
    }

    void
    touchMru(std::size_t set, unsigned way)
    {
        auto &stack = stacks[set];
        stack.erase(std::find(stack.begin(), stack.end(),
                              static_cast<std::uint8_t>(way)));
        stack.insert(stack.begin(), static_cast<std::uint8_t>(way));
    }

    void
    touchLru(std::size_t set, unsigned way)
    {
        auto &stack = stacks[set];
        stack.erase(std::find(stack.begin(), stack.end(),
                              static_cast<std::uint8_t>(way)));
        stack.push_back(static_cast<std::uint8_t>(way));
    }

    unsigned numWays = 0;
    std::vector<std::vector<std::uint8_t>> stacks;
};

/** Reference LRU on the naive stack. */
struct RefLru : RefStack
{
    void onHit(std::size_t set, unsigned way) { touchMru(set, way); }
    void onFill(std::size_t set, unsigned way, const FillInfo &)
    {
        touchMru(set, way);
    }
};

/** Reference BIP with its own identically seeded RNG. */
struct RefBip : RefStack
{
    explicit RefBip(std::uint64_t seed, unsigned inv_prob = 32)
        : rng(seed), invProb(inv_prob)
    {
    }

    void onHit(std::size_t set, unsigned way) { touchMru(set, way); }

    void
    onFill(std::size_t set, unsigned way, const FillInfo &)
    {
        if (rng.below(invProb) == 0)
            touchMru(set, way);
        else
            touchLru(set, way);
    }

    Rng rng;
    unsigned invProb;
};

/** Reference 5P: the full selection logic on the naive stack. */
struct Ref5P : RefStack
{
    explicit Ref5P(std::uint64_t seed, int num_cores = 4,
                   std::size_t constituency = 128)
        : rng(seed),
          constituencySize(constituency),
          policyCounters(static_cast<std::size_t>(numInsertionPolicies), 12),
          coreMissCounters(static_cast<std::size_t>(num_cores), 12)
    {
    }

    void
    reset(std::size_t sets, unsigned ways)
    {
        RefStack::reset(sets, ways);
        policyCounters.reset();
        coreMissCounters.reset();
    }

    int
    leaderPolicyOf(std::size_t set) const
    {
        const std::size_t pos = set % constituencySize;
        for (int i = 0; i < numInsertionPolicies; ++i) {
            if (pos == static_cast<std::size_t>(i) *
                           (constituencySize / numInsertionPolicies))
                return i;
        }
        return -1;
    }

    bool
    coreHasLowMissRate(CoreId core) const
    {
        return coreMissCounters.value(static_cast<std::size_t>(core)) <
               coreMissCounters.maxValue() / 4;
    }

    void
    applyInsertion(int ip, std::size_t set, unsigned way,
                   const FillInfo &info)
    {
        bool mru = false;
        switch (static_cast<InsertionPolicy>(ip)) {
          case InsertionPolicy::IP1_Mru:
            mru = true;
            break;
          case InsertionPolicy::IP2_Bip:
            mru = rng.below(32) == 0;
            break;
          case InsertionPolicy::IP3_DemandMru:
            mru = info.demand;
            break;
          case InsertionPolicy::IP4_LowMissCoreMru:
            mru = coreHasLowMissRate(info.core);
            break;
          case InsertionPolicy::IP5_DemandLowMissCoreMru:
            mru = info.demand && coreHasLowMissRate(info.core);
            break;
        }
        if (mru)
            touchMru(set, way);
        else
            touchLru(set, way);
    }

    void onHit(std::size_t set, unsigned way) { touchMru(set, way); }

    void
    onFill(std::size_t set, unsigned way, const FillInfo &info)
    {
        coreMissCounters.increment(static_cast<std::size_t>(info.core));
        const int leader = leaderPolicyOf(set);
        if (leader >= 0) {
            if (info.demand)
                policyCounters.increment(static_cast<std::size_t>(leader));
            applyInsertion(leader, set, way, info);
        } else {
            applyInsertion(static_cast<int>(policyCounters.argMin()), set,
                           way, info);
        }
    }

    Rng rng;
    std::size_t constituencySize;
    PropCounterGroup policyCounters;
    PropCounterGroup coreMissCounters;
};

/** Reference DRRIP on nested RRPV vectors. */
struct RefDrrip
{
    explicit RefDrrip(std::uint64_t seed, std::size_t constituency = 64)
        : rng(seed), constituencySize(constituency)
    {
    }

    static constexpr std::uint8_t rrpvMax = 3;
    static constexpr int pselMax = 1023;

    void
    reset(std::size_t sets, unsigned ways)
    {
        rrpv.assign(sets, std::vector<std::uint8_t>(ways, rrpvMax));
        psel = pselMax / 2;
    }

    bool
    isSrripLeader(std::size_t set) const
    {
        return (set % constituencySize) == 0;
    }

    bool
    isBrripLeader(std::size_t set) const
    {
        return (set % constituencySize) == constituencySize / 2;
    }

    unsigned
    victim(std::size_t set)
    {
        auto &vals = rrpv[set];
        for (;;) {
            for (unsigned w = 0; w < vals.size(); ++w) {
                if (vals[w] == rrpvMax)
                    return w;
            }
            for (auto &v : vals)
                ++v;
        }
    }

    unsigned
    victimPeek(std::size_t set) const
    {
        const auto &vals = rrpv[set];
        unsigned best = 0;
        for (unsigned w = 1; w < vals.size(); ++w) {
            if (vals[w] > vals[best])
                best = w;
        }
        return best;
    }

    void onHit(std::size_t set, unsigned way) { rrpv[set][way] = 0; }

    void
    onFill(std::size_t set, unsigned way, const FillInfo &info)
    {
        if (info.demand) {
            if (isSrripLeader(set) && psel < pselMax)
                ++psel;
            else if (isBrripLeader(set) && psel > 0)
                --psel;
        }
        bool brrip;
        if (isSrripLeader(set))
            brrip = false;
        else if (isBrripLeader(set))
            brrip = true;
        else
            brrip = psel > pselMax / 2;
        if (brrip)
            rrpv[set][way] = (rng.below(32) == 0) ? rrpvMax - 1 : rrpvMax;
        else
            rrpv[set][way] = rrpvMax - 1;
    }

    Rng rng;
    std::size_t constituencySize;
    int psel = pselMax / 2;
    std::vector<std::vector<std::uint8_t>> rrpv;
};

// ---------------------------------------------------------------------------
// Randomized policy-level equivalence drivers.
// ---------------------------------------------------------------------------

/**
 * Drive @p real and @p ref through an identical random op sequence and
 * compare victims and (for stack policies) every recency position.
 */
template <typename Real, typename Ref>
void
drivePolicies(Real &real, Ref &ref, std::size_t sets, unsigned ways,
              int iterations, std::uint64_t op_seed, bool check_positions)
{
    real.reset(sets, ways);
    ref.reset(sets, ways);
    Rng ops(op_seed);

    for (int i = 0; i < iterations; ++i) {
        const std::size_t set = ops.below(sets);
        const unsigned way = static_cast<unsigned>(ops.below(ways));
        const std::uint64_t op = ops.below(100);

        if (op < 45) {
            const FillInfo info{static_cast<CoreId>(ops.below(4)),
                                ops.below(2) == 0};
            real.onFill(set, way, info);
            ref.onFill(set, way, info);
        } else if (op < 70) {
            real.onHit(set, way);
            ref.onHit(set, way);
        } else if (op < 85) {
            ASSERT_EQ(real.victim(set), ref.victim(set))
                << "victim diverged at op " << i << " set " << set;
        } else {
            ASSERT_EQ(real.victimPeek(set), ref.victimPeek(set))
                << "victimPeek diverged at op " << i << " set " << set;
        }

        if constexpr (requires {
                          real.positionOf(set, way);
                          ref.positionOf(set, way);
                      }) {
            if (check_positions && i % 7 == 0) {
                for (unsigned w = 0; w < ways; ++w) {
                    ASSERT_EQ(real.positionOf(set, w),
                              ref.positionOf(set, w))
                        << "position of way " << w << " diverged at op "
                        << i << " set " << set;
                }
            }
        }
    }
}

/** RefStack exposes victim() only; adapt to the driver's interface. */
template <typename RefT>
struct PeekAdapter : RefT
{
    using RefT::RefT;
    unsigned victimPeek(std::size_t set) const { return this->victim(set); }
};

// Geometries: packed paths (<=16 ways, including the 16-way boundary
// where the filler-nibble trick has no slack) and the wide fallback.
struct Geometry
{
    std::size_t sets;
    unsigned ways;
};

const Geometry geometries[] = {
    {256, 2}, {256, 4}, {128, 8}, {256, 15}, {256, 16}, {64, 24},
};

TEST(ReplacementEquivalence, LruMatchesNaiveStacks)
{
    for (const auto &g : geometries) {
        LruPolicy real;
        PeekAdapter<RefLru> ref;
        drivePolicies(real, ref, g.sets, g.ways, 20000,
                      0xabc0 + g.ways, true);
    }
}

TEST(ReplacementEquivalence, BipMatchesNaiveStacksWithSameRngStream)
{
    for (const auto &g : geometries) {
        BipPolicy real(0xb1b0);
        PeekAdapter<RefBip> ref(0xb1b0);
        drivePolicies(real, ref, g.sets, g.ways, 20000,
                      0xabc1 + g.ways, true);
    }
}

TEST(ReplacementEquivalence, Policy5PMatchesNaiveStacksWithSameRngStream)
{
    for (const auto &g : geometries) {
        Policy5P real(0x5105);
        PeekAdapter<Ref5P> ref(0x5105);
        drivePolicies(real, ref, g.sets, g.ways, 20000,
                      0xabc2 + g.ways, true);
    }
}

TEST(ReplacementEquivalence, DrripMatchesNaiveRrpvWithSameRngStream)
{
    for (const auto &g : geometries) {
        DrripPolicy real(0xdead);
        RefDrrip ref(0xdead);
        drivePolicies(real, ref, g.sets, g.ways, 20000,
                      0xabc3 + g.ways, false);
    }
}

TEST(ReplacementEquivalence, SurvivesRepeatedResets)
{
    LruPolicy real;
    PeekAdapter<RefLru> ref;
    // Reset between geometry changes, packed <-> wide both directions.
    drivePolicies(real, ref, 64, 16, 3000, 0x11, true);
    drivePolicies(real, ref, 32, 24, 3000, 0x22, true);
    drivePolicies(real, ref, 64, 8, 3000, 0x33, true);
}

// ---------------------------------------------------------------------------
// Tag-array (SetAssocCache) equivalence against a naive AoS model.
// ---------------------------------------------------------------------------

/** One line of the naive reference tag array. */
struct RefLine
{
    bool valid = false;
    LineAddr line = 0;
    bool dirty = false;
    bool prefetchBit = false;
    CoreId fillCore = 0;
};

/**
 * Naive array-of-structs tag array (a transliteration of the pre-SoA
 * SetAssocCache), parameterized on a caller-owned replacement policy.
 */
class RefTagArray
{
  public:
    RefTagArray(std::size_t sets_, unsigned ways_,
                ReplacementPolicy &policy_)
        : sets(sets_), ways(ways_), policy(policy_)
    {
        lines.assign(sets * ways, {});
        policy.reset(sets, ways);
    }

    std::size_t setOf(LineAddr line) const { return line & (sets - 1); }

    RefLine *
    lookup(LineAddr line, unsigned &way_out)
    {
        const std::size_t set = setOf(line);
        for (unsigned w = 0; w < ways; ++w) {
            RefLine &ls = lines[set * ways + w];
            if (ls.valid && ls.line == line) {
                way_out = w;
                return &ls;
            }
        }
        return nullptr;
    }

    CacheAccessResult
    access(LineAddr line, bool is_write, bool from_core_side)
    {
        CacheAccessResult res;
        unsigned way = 0;
        RefLine *ls = lookup(line, way);
        if (!ls)
            return res;
        res.hit = true;
        res.way = way;
        if (from_core_side) {
            res.prefetchedHit = ls->prefetchBit;
            ls->prefetchBit = false;
        }
        if (is_write)
            ls->dirty = true;
        policy.onHit(setOf(line), way);
        return res;
    }

    bool
    probe(LineAddr line) const
    {
        unsigned way = 0;
        return const_cast<RefTagArray *>(this)->lookup(line, way) !=
               nullptr;
    }

    CacheVictim
    insert(LineAddr line, const CacheFill &fill)
    {
        const std::size_t set = setOf(line);
        CacheVictim victim;
        unsigned way = ways;
        for (unsigned w = 0; w < ways; ++w) {
            if (!lines[set * ways + w].valid) {
                way = w;
                break;
            }
        }
        if (way == ways) {
            way = policy.victim(set);
            const RefLine &old = lines[set * ways + way];
            victim.valid = true;
            victim.line = old.line;
            victim.dirty = old.dirty;
            victim.core = old.fillCore;
            victim.prefetchBit = old.prefetchBit;
        }
        RefLine &ls = lines[set * ways + way];
        ls.valid = true;
        ls.line = line;
        ls.dirty = fill.markDirty;
        ls.prefetchBit = fill.markPrefetch;
        ls.fillCore = fill.core;
        policy.onFill(set, way, FillInfo{fill.core, fill.demand});
        return victim;
    }

    CacheVictim
    peekVictim(LineAddr line) const
    {
        const std::size_t set = setOf(line);
        CacheVictim victim;
        for (unsigned w = 0; w < ways; ++w) {
            if (!lines[set * ways + w].valid)
                return victim;
        }
        const unsigned way = policy.victimPeek(set);
        const RefLine &old = lines[set * ways + way];
        victim.valid = true;
        victim.line = old.line;
        victim.dirty = old.dirty;
        victim.core = old.fillCore;
        victim.prefetchBit = old.prefetchBit;
        return victim;
    }

    bool
    invalidate(LineAddr line)
    {
        unsigned way = 0;
        RefLine *ls = lookup(line, way);
        if (!ls)
            return false;
        ls->valid = false;
        ls->dirty = false;
        ls->prefetchBit = false;
        return true;
    }

  private:
    std::size_t sets;
    unsigned ways;
    ReplacementPolicy &policy;
    std::vector<RefLine> lines;
};

void
expectVictimsEqual(const CacheVictim &a, const CacheVictim &b, int op)
{
    ASSERT_EQ(a.valid, b.valid) << "victim.valid diverged at op " << op;
    ASSERT_EQ(a.line, b.line) << "victim.line diverged at op " << op;
    ASSERT_EQ(a.dirty, b.dirty) << "victim.dirty diverged at op " << op;
    ASSERT_EQ(a.core, b.core) << "victim.core diverged at op " << op;
    ASSERT_EQ(a.prefetchBit, b.prefetchBit)
        << "victim.prefetchBit diverged at op " << op;
}

/**
 * Drive the SoA cache and the naive model (each owning an identically
 * seeded policy instance) through identical access/insert/invalidate
 * sequences.
 */
void
driveCacheEquivalence(std::unique_ptr<ReplacementPolicy> real_policy,
                      std::unique_ptr<ReplacementPolicy> ref_policy,
                      std::uint64_t op_seed)
{
    constexpr std::size_t sets = 64;
    constexpr unsigned ways = 8;
    SetAssocCache real("equiv", sets * ways * lineBytes, ways,
                       std::move(real_policy));
    ReplacementPolicy &refpol = *ref_policy;
    RefTagArray ref(sets, ways, refpol);

    Rng ops(op_seed);
    // Lines from a space ~4x the cache keeps sets contended without
    // making every access a miss.
    const LineAddr space = sets * ways * 4;

    for (int i = 0; i < 40000; ++i) {
        const LineAddr line = ops.below(space);
        const std::uint64_t op = ops.below(100);
        if (op < 40) {
            const bool write = ops.below(4) == 0;
            const bool core_side = ops.below(8) != 0;
            const CacheAccessResult a = real.access(line, write, core_side);
            const CacheAccessResult b = ref.access(line, write, core_side);
            ASSERT_EQ(a.hit, b.hit) << "hit diverged at op " << i;
            ASSERT_EQ(a.way, b.way) << "way diverged at op " << i;
            ASSERT_EQ(a.prefetchedHit, b.prefetchedHit)
                << "prefetchedHit diverged at op " << i;
        } else if (op < 75) {
            ASSERT_EQ(real.probe(line), ref.probe(line));
            if (!real.probe(line)) {
                CacheFill fill;
                fill.core = static_cast<CoreId>(ops.below(4));
                fill.demand = ops.below(2) == 0;
                fill.markPrefetch = ops.below(3) == 0;
                fill.markDirty = ops.below(5) == 0;
                expectVictimsEqual(real.insert(line, fill),
                                   ref.insert(line, fill), i);
            }
        } else if (op < 85) {
            CacheVictim a = real.peekVictim(line);
            CacheVictim b = ref.peekVictim(line);
            expectVictimsEqual(a, b, i);
        } else if (op < 92) {
            ASSERT_EQ(real.invalidate(line), ref.invalidate(line))
                << "invalidate diverged at op " << i;
        } else {
            const auto ls = real.findLine(line);
            ASSERT_EQ(ls.has_value(), ref.probe(line))
                << "findLine presence diverged at op " << i;
        }
    }
}

TEST(CacheEquivalence, SoaMatchesNaiveAosWithLru)
{
    driveCacheEquivalence(std::make_unique<LruPolicy>(),
                          std::make_unique<LruPolicy>(), 0xcafe01);
}

TEST(CacheEquivalence, SoaMatchesNaiveAosWithBip)
{
    driveCacheEquivalence(std::make_unique<BipPolicy>(0xb1b0),
                          std::make_unique<BipPolicy>(0xb1b0), 0xcafe02);
}

TEST(CacheEquivalence, SoaMatchesNaiveAosWith5P)
{
    driveCacheEquivalence(std::make_unique<Policy5P>(0x5105),
                          std::make_unique<Policy5P>(0x5105), 0xcafe03);
}

TEST(CacheEquivalence, SoaMatchesNaiveAosWithDrrip)
{
    driveCacheEquivalence(std::make_unique<DrripPolicy>(0xdead),
                          std::make_unique<DrripPolicy>(0xdead), 0xcafe04);
}

} // namespace
} // namespace bop
