/**
 * @file
 * Tests for the text-table printer the bench harness renders every
 * figure with: alignment, header underline, the heterogeneous row()
 * helper, double formatting, and the CSV mode (including RFC-4180
 * quoting and the BOP_CSV switch).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/table.hh"

namespace bop
{
namespace
{

TEST(TextTable, EmptyTablePrintsNothing)
{
    TextTable t;
    std::ostringstream oss;
    t.print(oss);
    EXPECT_TRUE(oss.str().empty());
    t.printCsv(oss);
    EXPECT_TRUE(oss.str().empty());
    EXPECT_EQ(t.dataRows(), 0u);
}

TEST(TextTable, AlignsColumnsAndUnderlinesHeader)
{
    TextTable t;
    t.row("name", "v");
    t.row("long-benchmark-name", 7);
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();

    // Three lines: header, rule, one data row.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
    // The rule line is dashes sized to the widest row.
    const auto first_nl = out.find('\n');
    const auto second_nl = out.find('\n', first_nl + 1);
    const std::string rule =
        out.substr(first_nl + 1, second_nl - first_nl - 1);
    EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
    EXPECT_GE(rule.size(), std::string("long-benchmark-name  v").size());
    // Columns align: "v" starts at the same offset in both rows.
    EXPECT_EQ(out.find("v"), out.find("name") + 21);
}

TEST(TextTable, RowHelperFormatsMixedTypes)
{
    TextTable t;
    t.row("h1", "h2", "h3", "h4");
    t.row("x", 42, 1.5, 7u);
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("1.500"), std::string::npos); // fmt default: 3
    EXPECT_EQ(t.dataRows(), 1u);
}

TEST(TextTable, FmtPrecision)
{
    EXPECT_EQ(TextTable::fmt(1.23456), "1.235");
    EXPECT_EQ(TextTable::fmt(1.23456, 1), "1.2");
    EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(TextTable, CsvBasic)
{
    TextTable t;
    t.row("benchmark", "speedup");
    t.row("433.milc", 1.25);
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "benchmark,speedup\n433.milc,1.250\n");
}

TEST(TextTable, CsvQuotesSpecialCells)
{
    TextTable t;
    t.addRow({"a,b", "plain"});
    t.addRow({"say \"hi\"", "nl\nin cell"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(),
              "\"a,b\",plain\n\"say \"\"hi\"\"\",\"nl\nin cell\"\n");
}

TEST(TextTable, BopCsvEnvSwitchesPrintToCsv)
{
    TextTable t;
    t.row("h", "v");
    t.row("x", 1);

    ::setenv("BOP_CSV", "1", 1);
    std::ostringstream csv;
    t.print(csv);
    ::unsetenv("BOP_CSV");
    std::ostringstream text;
    t.print(text);

    EXPECT_EQ(csv.str(), "h,v\nx,1\n");
    EXPECT_NE(text.str(), csv.str());
    EXPECT_NE(text.str().find("---"), std::string::npos);
}

} // namespace
} // namespace bop
