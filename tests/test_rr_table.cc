/**
 * @file
 * Tests for the Recent Requests table (paper Secs. 4.1 / 4.4).
 */

#include <gtest/gtest.h>

#include "core/rr_table.hh"

namespace bop
{
namespace
{

TEST(RrTable, InsertThenContains)
{
    RrTable rr;
    EXPECT_FALSE(rr.contains(0x12345));
    rr.insert(0x12345);
    EXPECT_TRUE(rr.contains(0x12345));
}

TEST(RrTable, DefaultGeometryMatchesPaper)
{
    RrTable rr;
    EXPECT_EQ(rr.numEntries(), 256u);
    EXPECT_EQ(rr.tagBits(), 12u);
}

TEST(RrTable, IndexIsXorOfLowBytes)
{
    // Sec. 4.4: for 256 entries, XOR the 8 LSBs of the line address
    // with the next 8 bits.
    RrTable rr(256, 12);
    const LineAddr line = 0xabcdef;
    const std::size_t expected = ((line & 0xff) ^ ((line >> 8) & 0xff));
    EXPECT_EQ(rr.indexOf(line), expected);
}

TEST(RrTable, TagSkipsIndexBits)
{
    // Sec. 4.4: skip the 8 LSBs, extract the next 12 bits.
    RrTable rr(256, 12);
    const LineAddr line = 0xdeadbeef;
    EXPECT_EQ(rr.tagOf(line), (line >> 8) & 0xfff);
}

TEST(RrTable, DirectMappedConflictEvicts)
{
    RrTable rr(256, 12);
    // Two lines with the same index but different tags.
    const LineAddr a = 0x00012; // index = 0x12
    LineAddr b = 0;
    bool found = false;
    for (LineAddr cand = a + 1; cand < a + 2000000 && !found; ++cand) {
        if (rr.indexOf(cand) == rr.indexOf(a) &&
            rr.tagOf(cand) != rr.tagOf(a)) {
            b = cand;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    rr.insert(a);
    EXPECT_TRUE(rr.contains(a));
    rr.insert(b);
    EXPECT_TRUE(rr.contains(b));
    EXPECT_FALSE(rr.contains(a)) << "direct-mapped entry must be evicted";
}

TEST(RrTable, PartialTagAliasing)
{
    // Lines whose index and 12-bit tag agree alias — by design, the
    // partial tag is "sufficient" (Sec. 4.1) but not exact.
    RrTable rr(256, 12);
    const LineAddr a = 0x1234;
    const LineAddr aliased = a + (1ull << 20); // beyond index+tag bits
    ASSERT_EQ(rr.indexOf(a), rr.indexOf(aliased));
    ASSERT_EQ(rr.tagOf(a), rr.tagOf(aliased));
    rr.insert(a);
    EXPECT_TRUE(rr.contains(aliased));
}

TEST(RrTable, ClearInvalidatesEverything)
{
    RrTable rr(64, 10);
    for (LineAddr l = 0; l < 512; l += 3)
        rr.insert(l);
    rr.clear();
    for (LineAddr l = 0; l < 512; ++l)
        EXPECT_FALSE(rr.contains(l));
}

class RrTableSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RrTableSizes, FillAndProbeAnySize)
{
    // Fig. 10 sweeps the RR size from 32 to 512; all sizes must work.
    RrTable rr(GetParam(), 12);
    // Insert a distinct-index sample and check immediate recall.
    for (LineAddr l = 1000; l < 1000 + GetParam(); ++l) {
        rr.insert(l);
        EXPECT_TRUE(rr.contains(l)) << l;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RrTableSizes,
                         ::testing::Values(32, 64, 128, 256, 512));

} // namespace
} // namespace bop
