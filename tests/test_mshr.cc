/**
 * @file
 * Tests for the DL1 MSHR file.
 */

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace bop
{
namespace
{

TEST(Mshr, AllocateFindComplete)
{
    MshrFile m(4);
    EXPECT_EQ(m.find(10), nullptr);
    m.allocate(10, false, 5);
    ASSERT_NE(m.find(10), nullptr);
    EXPECT_EQ(m.find(10)->issuedAt, 5u);

    const auto done = m.complete(10);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(m.find(10), nullptr);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Mshr, CoalescingWaiters)
{
    MshrFile m(4);
    m.allocate(20, true, 0);
    MshrEntry *e = m.find(20);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->prefetchOnly);
    e->waiters.push_back(11);
    e->waiters.push_back(12);
    e->prefetchOnly = false;

    const auto done = m.complete(20);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->waiters.size(), 2u);
    EXPECT_FALSE(done->prefetchOnly);
}

TEST(Mshr, FullnessTracking)
{
    MshrFile m(2);
    EXPECT_FALSE(m.full());
    m.allocate(1, false, 0);
    m.allocate(2, false, 0);
    EXPECT_TRUE(m.full());
    m.complete(1);
    EXPECT_FALSE(m.full());
}

TEST(Mshr, CompleteUnknownLineReturnsNothing)
{
    MshrFile m(2);
    EXPECT_FALSE(m.complete(99).has_value());
}

TEST(Mshr, CompleteById)
{
    MshrFile m(4);
    const auto id = m.allocate(30, false, 0);
    m.allocate(31, false, 0);
    const auto done = m.completeById(id);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->line, 30u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(Mshr, StoreWaitersResetOnReuse)
{
    MshrFile m(1);
    m.allocate(1, false, 0);
    m.find(1)->storeWaiters = 5;
    m.find(1)->storeIntent = true;
    m.complete(1);
    m.allocate(2, false, 0);
    EXPECT_EQ(m.find(2)->storeWaiters, 0);
    EXPECT_FALSE(m.find(2)->storeIntent);
}

} // namespace
} // namespace bop
