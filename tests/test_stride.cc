/**
 * @file
 * Tests for the DL1 stride prefetcher (paper Sec. 5.5).
 */

#include <gtest/gtest.h>

#include "prefetch/stride.hh"

namespace bop
{
namespace
{

TEST(Stride, LearnsConstantStride)
{
    StridePrefetcher sp;
    const Addr pc = 0x400100;
    for (int i = 0; i <= 16; ++i)
        sp.onRetire(pc, 0x1000 + static_cast<Addr>(i) * 96);
    EXPECT_EQ(sp.strideOf(pc), 96);
    EXPECT_EQ(sp.confidenceOf(pc), 15);
}

TEST(Stride, IssuesAtDistance16)
{
    StridePrefetcher sp;
    const Addr pc = 0x400100;
    for (int i = 0; i <= 16; ++i)
        sp.onRetire(pc, 0x1000 + static_cast<Addr>(i) * 96);
    const Addr cur = 0x1000 + 17 * 96;
    const auto target = sp.onAccess(pc, cur);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, cur + 16 * 96);
}

TEST(Stride, NoIssueBelowFullConfidence)
{
    StridePrefetcher sp;
    const Addr pc = 0x400200;
    for (int i = 0; i < 10; ++i)
        sp.onRetire(pc, 0x2000 + static_cast<Addr>(i) * 64);
    ASSERT_LT(sp.confidenceOf(pc), 15);
    EXPECT_FALSE(sp.onAccess(pc, 0x2000 + 10 * 64).has_value());
}

TEST(Stride, ConfidenceResetsOnStrideChange)
{
    StridePrefetcher sp;
    const Addr pc = 0x400300;
    for (int i = 0; i <= 16; ++i)
        sp.onRetire(pc, 0x3000 + static_cast<Addr>(i) * 64);
    ASSERT_EQ(sp.confidenceOf(pc), 15);
    sp.onRetire(pc, 0x9000000); // wild jump
    EXPECT_EQ(sp.confidenceOf(pc), 0);
    EXPECT_FALSE(sp.onAccess(pc, 0x9000040).has_value());
}

TEST(Stride, ZeroStrideNeverIssues)
{
    StridePrefetcher sp;
    const Addr pc = 0x400400;
    for (int i = 0; i < 20; ++i)
        sp.onRetire(pc, 0x4000); // same address repeatedly
    EXPECT_FALSE(sp.onAccess(pc, 0x4000).has_value());
}

TEST(Stride, NegativeStridesWork)
{
    StridePrefetcher sp;
    const Addr pc = 0x400500;
    for (int i = 0; i <= 16; ++i)
        sp.onRetire(pc, 0x100000 - static_cast<Addr>(i) * 128);
    EXPECT_EQ(sp.strideOf(pc), -128);
    const Addr cur = 0x100000 - 17 * 128;
    const auto target = sp.onAccess(pc, cur);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, cur - 16 * 128);
}

TEST(Stride, FilterSuppressesRepeatedLines)
{
    StridePrefetcher sp;
    const Addr pc = 0x400600;
    for (int i = 0; i <= 16; ++i)
        sp.onRetire(pc, 0x5000 + static_cast<Addr>(i) * 8);
    // Stride 8: consecutive accesses prefetch into the same line; the
    // 16-entry filter must drop the duplicates.
    const Addr cur = 0x5000 + 17 * 8;
    ASSERT_TRUE(sp.onAccess(pc, cur).has_value());
    EXPECT_FALSE(sp.onAccess(pc, cur + 8).has_value())
        << "same target line must be filtered";
}

TEST(Stride, InterleavedStreamsOnOnePcDefeatIt)
{
    // Two regions alternating through one PC: the stride flips sign
    // every access, so confidence never builds (this is how 433.milc
    // defeats PC-indexed stride prefetching, paper fn. 11).
    StridePrefetcher sp;
    const Addr pc = 0x400700;
    for (int i = 0; i < 64; ++i) {
        const Addr a = (i % 2 == 0) ? 0x10000 + static_cast<Addr>(i) * 32
                                    : 0x90000 + static_cast<Addr>(i) * 32;
        sp.onRetire(pc, a);
    }
    EXPECT_LT(sp.confidenceOf(pc), 15);
}

TEST(Stride, DistinctPcsTrackIndependently)
{
    StridePrefetcher sp;
    for (int i = 0; i <= 16; ++i) {
        sp.onRetire(0x400800, 0x10000 + static_cast<Addr>(i) * 64);
        sp.onRetire(0x400900, 0x80000 + static_cast<Addr>(i) * 256);
    }
    EXPECT_EQ(sp.strideOf(0x400800), 64);
    EXPECT_EQ(sp.strideOf(0x400900), 256);
    EXPECT_EQ(sp.confidenceOf(0x400800), 15);
    EXPECT_EQ(sp.confidenceOf(0x400900), 15);
}

TEST(Stride, TableEvictsLru)
{
    StrideConfig cfg;
    cfg.tableEntries = 8;
    cfg.ways = 2;
    StridePrefetcher sp(cfg);
    // Three PCs mapping to the same set (same (pc>>2) & 3): evict LRU.
    const Addr base = 0x400000;
    const Addr pcs[3] = {base, base + (4 << 2), base + (8 << 2)};
    sp.onRetire(pcs[0], 1);
    sp.onRetire(pcs[1], 2);
    sp.onRetire(pcs[2], 3); // evicts pcs[0]
    EXPECT_EQ(sp.confidenceOf(pcs[0]), -1);
    EXPECT_NE(sp.confidenceOf(pcs[1]), -1);
    EXPECT_NE(sp.confidenceOf(pcs[2]), -1);
}

} // namespace
} // namespace bop
