/**
 * @file
 * Tests for the Feedback-Directed Prefetcher (extension; paper ref
 * [37]): stream training, degree/distance presets, and the three
 * feedback loops (accuracy, lateness, pollution).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "prefetch/fdp.hh"

namespace bop
{
namespace
{

std::vector<LineAddr>
access(FdpPrefetcher &pf, LineAddr line, bool miss = true,
       bool pref_hit = false, Cycle cycle = 0)
{
    std::vector<LineAddr> out;
    pf.onAccess({line, miss, pref_hit, cycle}, out);
    return out;
}

TEST(Fdp, LevelsAreTheFivePresets)
{
    const auto &lv = FdpPrefetcher::levels();
    ASSERT_EQ(lv.size(), 5u);
    EXPECT_EQ(lv.front().distance, 4);
    EXPECT_EQ(lv.front().degree, 1);
    EXPECT_EQ(lv.back().distance, 64);
    EXPECT_EQ(lv.back().degree, 4);
    for (std::size_t i = 1; i < lv.size(); ++i)
        EXPECT_GE(lv[i].distance, lv[i - 1].distance);
}

TEST(Fdp, NoPrefetchBeforeTraining)
{
    FdpPrefetcher pf(PageSize::FourKB);
    EXPECT_TRUE(access(pf, 100).empty());
    EXPECT_TRUE(access(pf, 200).empty()); // different zone, no stream
}

TEST(Fdp, AscendingStreamTrainsAndIssues)
{
    FdpPrefetcher pf(PageSize::FourMB);
    access(pf, 1000);                  // allocate
    access(pf, 1001);                  // confidence 1
    const auto out = access(pf, 1002); // confidence 2 -> trained
    ASSERT_FALSE(out.empty());
    // Level 2 preset: distance 16, degree 2.
    EXPECT_EQ(out[0], 1002u + 16);
    EXPECT_EQ(out[1], 1002u + 17);
    EXPECT_EQ(pf.trainedStreams(), 1);
}

TEST(Fdp, DescendingStreamIssuesBackwards)
{
    FdpPrefetcher pf(PageSize::FourMB);
    const LineAddr base = 1u << 16; // comfortably inside a 4MB page
    access(pf, base);
    access(pf, base - 1);
    const auto out = access(pf, base - 2);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], base - 2 - 16);
}

TEST(Fdp, DirectionFlipRetrains)
{
    FdpPrefetcher pf(PageSize::FourMB);
    access(pf, 500);
    access(pf, 501);
    access(pf, 502);
    EXPECT_EQ(pf.trainedStreams(), 1);
    // Reverse: confidence resets, no issue until re-trained.
    EXPECT_TRUE(access(pf, 501).empty());
    EXPECT_EQ(pf.trainedStreams(), 0);
}

TEST(Fdp, PrefetchesStopAtPageBoundary)
{
    FdpPrefetcher pf(PageSize::FourKB); // 64 lines per page
    access(pf, 60);
    access(pf, 61);
    const auto out = access(pf, 62); // 62+16 = 78 crosses the page
    EXPECT_TRUE(out.empty());
}

TEST(Fdp, InterleavedStreamsUseSeparateTrackers)
{
    FdpPrefetcher pf(PageSize::FourMB);
    const LineAddr a = 0, b = 1u << 14; // far apart: separate trackers
    access(pf, a);
    access(pf, b);
    access(pf, a + 1);
    access(pf, b + 1);
    auto out_a = access(pf, a + 2);
    auto out_b = access(pf, b + 2);
    ASSERT_FALSE(out_a.empty());
    ASSERT_FALSE(out_b.empty());
    EXPECT_EQ(out_a[0], a + 2 + 16);
    EXPECT_EQ(out_b[0], b + 2 + 16);
    EXPECT_EQ(pf.trainedStreams(), 2);
}

TEST(Fdp, HighAccuracyRaisesAggressiveness)
{
    FdpConfig cfg;
    cfg.sampleInterval = 64;
    FdpPrefetcher pf(PageSize::FourMB, cfg);
    const int start = pf.aggressivenessLevel();

    // Sequential stream where every prefetch is (fictitiously) used:
    // feed prefetched hits so used/issued stays high.
    LineAddr x = 0;
    for (int i = 0; i < 64; ++i)
        access(pf, x++, true, i > 4); // prefetched hits after warmup
    EXPECT_EQ(pf.intervalsElapsed(), 1u);
    EXPECT_GT(pf.lastAccuracy(), 0.0);
    EXPECT_GE(pf.aggressivenessLevel(), start);
}

TEST(Fdp, LowAccuracyLowersAggressiveness)
{
    FdpConfig cfg;
    cfg.sampleInterval = 128;
    FdpPrefetcher pf(PageSize::FourMB, cfg);
    const int start = pf.aggressivenessLevel();

    // Train a stream (so prefetches are issued) but never report a
    // prefetched hit: accuracy measures 0.
    LineAddr x = 0;
    for (int i = 0; i < 128; ++i)
        access(pf, x++, true, false);
    EXPECT_EQ(pf.intervalsElapsed(), 1u);
    EXPECT_LT(pf.aggressivenessLevel(), start);
}

TEST(Fdp, LatenessFeedbackCountsPromotions)
{
    FdpConfig cfg;
    cfg.sampleInterval = 64;
    FdpPrefetcher pf(PageSize::FourMB, cfg);
    LineAddr x = 0;
    for (int i = 0; i < 63; ++i) {
        access(pf, x++);
        pf.onLatePromotion(x, 0); // every prefetch arrives late
    }
    access(pf, x++);
    EXPECT_EQ(pf.intervalsElapsed(), 1u);
    EXPECT_GT(pf.lastLateness(), 0.9);
}

TEST(Fdp, PollutionFilterFlagsPrefetchEvictions)
{
    FdpConfig cfg;
    cfg.sampleInterval = 32;
    FdpPrefetcher pf(PageSize::FourMB, cfg);

    // Evict lines 1..8 via prefetch fills, then demand-miss on them.
    for (LineAddr v = 1; v <= 8; ++v)
        pf.onEvict({v, false, true, 0});
    for (LineAddr v = 1; v <= 8; ++v)
        access(pf, v);
    for (int i = 8; i < 32; ++i)
        access(pf, 1000 + static_cast<LineAddr>(i) * 50);
    EXPECT_EQ(pf.intervalsElapsed(), 1u);
    EXPECT_GT(pf.lastPollution(), 0.2);
}

TEST(Fdp, DemandEvictionsDoNotPollute)
{
    FdpConfig cfg;
    cfg.sampleInterval = 32;
    FdpPrefetcher pf(PageSize::FourMB, cfg);
    for (LineAddr v = 1; v <= 8; ++v)
        pf.onEvict({v, false, false, 0}); // demand-fill evictions
    for (LineAddr v = 1; v <= 8; ++v)
        access(pf, v);
    for (int i = 8; i < 32; ++i)
        access(pf, 1000 + static_cast<LineAddr>(i) * 50);
    EXPECT_EQ(pf.lastPollution(), 0.0);
}

TEST(Fdp, LevelClampsAtExtremes)
{
    FdpConfig cfg;
    cfg.sampleInterval = 32;
    cfg.initialLevel = 0;
    FdpPrefetcher pf(PageSize::FourMB, cfg);
    // Repeated bad intervals cannot push the level below 0.
    for (int k = 0; k < 4; ++k) {
        LineAddr x = static_cast<LineAddr>(k) * 4096;
        for (int i = 0; i < 32; ++i)
            access(pf, x++);
        EXPECT_GE(pf.aggressivenessLevel(), 0);
    }
}

TEST(Fdp, CurrentOffsetTracksDistance)
{
    FdpConfig cfg;
    cfg.initialLevel = 3;
    FdpPrefetcher pf(PageSize::FourKB, cfg);
    EXPECT_EQ(pf.currentOffset(), 32);
}

/** Property sweep: trained streams never issue across a page. */
class FdpPageProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FdpPageProperty, NeverCrossesPage)
{
    const int start_line = GetParam();
    FdpConfig cfg;
    cfg.initialLevel = 4; // most aggressive: distance 64, degree 4
    FdpPrefetcher pf(PageSize::FourKB, cfg);
    const auto page_lines =
        static_cast<LineAddr>(pageLines(PageSize::FourKB));

    LineAddr x = static_cast<LineAddr>(start_line);
    for (int i = 0; i < 32; ++i) {
        std::vector<LineAddr> out;
        pf.onAccess({x, true, false, 0}, out);
        for (const LineAddr t : out)
            EXPECT_EQ(t / page_lines, x / page_lines);
        ++x;
    }
}

INSTANTIATE_TEST_SUITE_P(StartPositions, FdpPageProperty,
                         ::testing::Values(0, 17, 40, 62, 63, 100, 127));

} // namespace
} // namespace bop
