/**
 * @file
 * Tests for the DRRIP policy used in the Fig. 3 comparison.
 */

#include <gtest/gtest.h>

#include "cache/drrip.hh"

namespace bop
{
namespace
{

TEST(Drrip, LeaderSetsAreDisjoint)
{
    DrripPolicy p;
    p.reset(1024, 16);
    int srrip = 0, brrip = 0;
    for (std::size_t set = 0; set < 1024; ++set) {
        EXPECT_FALSE(p.isSrripLeader(set) && p.isBrripLeader(set));
        srrip += p.isSrripLeader(set);
        brrip += p.isBrripLeader(set);
    }
    EXPECT_EQ(srrip, 16);
    EXPECT_EQ(brrip, 16);
}

TEST(Drrip, HitResetsRrpvAndProtects)
{
    DrripPolicy p;
    p.reset(64, 4);
    for (unsigned w = 0; w < 4; ++w)
        p.onFill(1, w, {0, true});
    p.onHit(1, 2);
    // Way 2 has RRPV 0; the victim must be another way.
    EXPECT_NE(p.victim(1), 2u);
}

TEST(Drrip, VictimPeekAgreesWithVictim)
{
    DrripPolicy p;
    p.reset(64, 8);
    for (unsigned w = 0; w < 8; ++w)
        p.onFill(3, w, {0, true});
    p.onHit(3, 1);
    p.onHit(3, 6);
    EXPECT_EQ(p.victimPeek(3), p.victim(3));
}

TEST(Drrip, SrripLeaderInsertsAtDistantMinusOne)
{
    DrripPolicy p;
    p.reset(1024, 4);
    std::size_t srrip_set = 0; // set 0 is an SRRIP leader
    ASSERT_TRUE(p.isSrripLeader(srrip_set));
    p.onFill(srrip_set, 0, {0, true});
    // RRPV = 2 after SRRIP insertion; untouched ways stay at 3, so the
    // victim is one of them.
    EXPECT_NE(p.victim(srrip_set), 0u);
}

TEST(Drrip, PselMovesTowardBrripOnSrripLeaderMisses)
{
    DrripPolicy p;
    p.reset(1024, 4);
    const int before = p.pselValue();
    for (int n = 0; n < 50; ++n)
        p.onFill(0, n % 4, {0, true}); // SRRIP leader demand fills
    EXPECT_GT(p.pselValue(), before);
}

TEST(Drrip, PselMovesTowardSrripOnBrripLeaderMisses)
{
    DrripPolicy p;
    p.reset(1024, 4);
    const int before = p.pselValue();
    for (int n = 0; n < 50; ++n)
        p.onFill(32, n % 4, {0, true}); // BRRIP leader demand fills
    EXPECT_LT(p.pselValue(), before);
}

TEST(Drrip, VictimAlwaysFoundEvenWhenAllNear)
{
    DrripPolicy p;
    p.reset(64, 4);
    for (unsigned w = 0; w < 4; ++w) {
        p.onFill(5, w, {0, true});
        p.onHit(5, w); // all RRPV 0
    }
    // victim() must still terminate by aging all ways.
    const unsigned v = p.victim(5);
    EXPECT_LT(v, 4u);
}

} // namespace
} // namespace bop
