/**
 * @file
 * Randomised stress tests: adversarial access streams driven straight
 * into each prefetcher model (no simulator in the loop, so millions of
 * events are cheap), checking the structural invariants every L2
 * prefetcher must uphold (paper Sec. 5.6):
 *
 *   - candidates never cross the page of the triggering access;
 *   - candidates are valid line addresses (no wraparound);
 *   - bounded issue rate per access;
 *   - no crashes/hangs on pathological patterns (page-boundary
 *     ping-pong, aliasing storms, monotone jumps, random noise).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "core/best_offset.hh"
#include "core/best_offset_dpc2.hh"
#include "core/offset_list.hh"
#include "prefetch/ampm.hh"
#include "prefetch/fdp.hh"
#include "prefetch/ghb.hh"
#include "prefetch/fixed_offset.hh"
#include "prefetch/l2_prefetcher.hh"
#include "prefetch/sandbox.hh"
#include "prefetch/stream.hh"
#include "prefetch/stream_buffer.hh"

namespace bop
{
namespace
{

/** Build every prefetcher in the zoo for @p page. */
std::vector<std::unique_ptr<L2Prefetcher>>
makeZoo(PageSize page)
{
    std::vector<std::unique_ptr<L2Prefetcher>> zoo;
    zoo.push_back(std::make_unique<NextLinePrefetcher>(page));
    zoo.push_back(std::make_unique<FixedOffsetPrefetcher>(page, 7));
    zoo.push_back(std::make_unique<BestOffsetPrefetcher>(page));
    {
        BoConfig cov;
        cov.coverageWeight = 1;
        cov.adaptiveBadScore = true;
        zoo.push_back(std::make_unique<BestOffsetPrefetcher>(page, cov));
    }
    zoo.push_back(std::make_unique<BestOffsetDpc2Prefetcher>(page));
    zoo.push_back(std::make_unique<SandboxPrefetcher>(
        page, makeOffsetList()));
    zoo.push_back(std::make_unique<StreamPrefetcher>(page));
    zoo.push_back(std::make_unique<StreamBufferPrefetcher>(page));
    zoo.push_back(std::make_unique<FdpPrefetcher>(page));
    zoo.push_back(std::make_unique<GhbAcdcPrefetcher>(page));
    zoo.push_back(std::make_unique<AmpmPrefetcher>(page));
    return zoo;
}

/** Drive @p lines through @p pf, checking invariants per event. */
void
driveAndCheck(L2Prefetcher &pf, const std::vector<LineAddr> &lines,
              PageSize page)
{
    Rng rng(0xf22);
    std::vector<LineAddr> out;
    const LineAddr page_lines = pageLines(page);
    Cycle now = 0;

    for (const LineAddr x : lines) {
        out.clear();
        const std::uint64_t r = rng.next();
        const bool miss = (r & 3) != 0;         // 75% misses
        const bool pref_hit = !miss && (r & 4); // some prefetched hits
        now += 1 + (r % 7);
        pf.onAccess({x, miss, pref_hit, now}, out);

        EXPECT_LE(out.size(), 8u)
            << pf.name() << ": unbounded issue burst";
        for (const LineAddr t : out) {
            EXPECT_EQ(t / page_lines, x / page_lines)
                << pf.name() << ": crossed page at line " << x;
        }

        // Random feedback keeps the feedback-driven models exercised.
        if (!out.empty() && (r & 8))
            pf.onFill({out.front(), true, now + 20});
        if (r % 13 == 0)
            pf.onEvict({x ^ (r & 0xff), (r & 16) != 0, (r & 32) != 0,
                        now});
        if (r % 17 == 0)
            pf.onLatePromotion(x, now);
    }
}

std::vector<LineAddr>
randomLines(std::uint64_t seed, std::size_t n, LineAddr span)
{
    Rng rng(seed);
    std::vector<LineAddr> lines;
    lines.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        lines.push_back(rng.next() % span);
    return lines;
}

class FuzzZoo : public ::testing::TestWithParam<PageSize>
{
};

TEST_P(FuzzZoo, RandomNoise)
{
    for (auto &pf : makeZoo(GetParam()))
        driveAndCheck(*pf, randomLines(0xa1, 20000, 1u << 22),
                      GetParam());
}

TEST_P(FuzzZoo, PageBoundaryPingPong)
{
    // Alternate between the last line of page k and the first line of
    // page k+1 — the worst case for same-page filtering.
    const LineAddr pl = pageLines(GetParam());
    std::vector<LineAddr> lines;
    for (int k = 0; k < 4000; ++k) {
        const LineAddr page = static_cast<LineAddr>(k % 37);
        lines.push_back(page * pl + pl - 1);
        lines.push_back((page + 1) * pl);
    }
    for (auto &pf : makeZoo(GetParam()))
        driveAndCheck(*pf, lines, GetParam());
}

TEST_P(FuzzZoo, MonotoneJumps)
{
    // Large monotone jumps: stresses stream trackers and the GHB's
    // delta arithmetic without ever forming a prefetchable pattern.
    std::vector<LineAddr> lines;
    LineAddr x = 0;
    Rng rng(0xb2);
    for (int i = 0; i < 15000; ++i) {
        x += 1000 + (rng.next() % 5000);
        lines.push_back(x);
    }
    for (auto &pf : makeZoo(GetParam()))
        driveAndCheck(*pf, lines, GetParam());
}

TEST_P(FuzzZoo, AliasingStorm)
{
    // Many addresses sharing low bits (RR-table / Bloom / GHB-index
    // collision storm).
    std::vector<LineAddr> lines;
    Rng rng(0xc3);
    for (int i = 0; i < 15000; ++i)
        lines.push_back((rng.next() % 64) << 14);
    for (auto &pf : makeZoo(GetParam()))
        driveAndCheck(*pf, lines, GetParam());
}

TEST_P(FuzzZoo, InterleavedStrideSoup)
{
    // Eight interleaved strided streams with co-prime strides: a
    // realistic-but-hard pattern every model must survive (and the
    // offset prefetchers should even learn something from).
    static constexpr int strides[8] = {1, 2, 3, 5, 7, 11, 13, 17};
    std::vector<LineAddr> lines;
    LineAddr heads[8];
    for (int s = 0; s < 8; ++s)
        heads[s] = static_cast<LineAddr>(s) << 18;
    for (int i = 0; i < 15000; ++i) {
        const int s = i % 8;
        heads[s] += static_cast<LineAddr>(strides[s]);
        lines.push_back(heads[s]);
    }
    for (auto &pf : makeZoo(GetParam()))
        driveAndCheck(*pf, lines, GetParam());
}

TEST_P(FuzzZoo, NearZeroAddresses)
{
    // Accesses at the very bottom of the address space: X - d
    // underflow handling.
    std::vector<LineAddr> lines;
    Rng rng(0xd4);
    for (int i = 0; i < 10000; ++i)
        lines.push_back(rng.next() % 8);
    for (auto &pf : makeZoo(GetParam()))
        driveAndCheck(*pf, lines, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Pages, FuzzZoo,
                         ::testing::Values(PageSize::FourKB,
                                           PageSize::FourMB),
                         [](const auto &info) {
                             return info.param == PageSize::FourKB
                                        ? "page4KB"
                                        : "page4MB";
                         });

} // namespace
} // namespace bop
